//! The stable text format round-trips every module the compiler can
//! produce: serialize → parse → re-serialize is a fixpoint, the parsed
//! module verifies, and it simulates to the same result and cycle count.

use ilp_compiler::harness::compile::compile;
use ilp_compiler::ir::text::{parse, serialize};
use ilp_compiler::prelude::*;
use ilp_compiler::sim::{memory_from_init, simulate};

#[test]
fn all_workloads_roundtrip_at_lev4() {
    for w in build_all(0.04) {
        let machine = Machine::issue(8);
        let compiled = compile(&w, Level::Lev4, &machine);
        let text = serialize(&compiled.module);
        let back = parse(&text).unwrap_or_else(|e| panic!("{}: {e}", w.meta.name));
        ilp_compiler::ir::verify::verify_module(&back)
            .unwrap_or_else(|e| panic!("{}: {e}", w.meta.name));
        assert_eq!(
            text,
            serialize(&back),
            "{}: serialization not a fixpoint",
            w.meta.name
        );

        // Identical semantics *and* identical timing.
        let mem = memory_from_init(&compiled.module.symtab, &w.init);
        let r1 = simulate(&compiled.module, &machine, mem.clone(), 50_000_000)
            .unwrap();
        let r2 = simulate(&back, &machine, mem, 50_000_000).unwrap();
        assert_eq!(r1.cycles, r2.cycles, "{}", w.meta.name);
        assert_eq!(r1.dyn_insts, r2.dyn_insts, "{}", w.meta.name);
        assert_eq!(r1.memory, r2.memory, "{}", w.meta.name);
    }
}

#[test]
fn conv_modules_roundtrip_too() {
    for name in ["add", "maxval", "NAS-6", "doduc-1"] {
        let meta = table2().into_iter().find(|m| m.name == name).unwrap();
        let w = build(&meta, 0.04);
        let compiled = compile(&w, Level::Conv, &Machine::issue(1));
        let text = serialize(&compiled.module);
        let back = parse(&text).unwrap();
        assert_eq!(text, serialize(&back), "{name}");
    }
}
