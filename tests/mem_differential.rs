//! Differential guarantees for the `ilpc-mem` subsystem.
//!
//! 1. `MemConfig::Perfect` (the default) and a zero-penalty cache must
//!    reproduce the legacy simulator **cycle-for-cycle** across the full
//!    40-workload × level × width grid — the memory model hook may not
//!    perturb timing when it charges no cycles. (The golden figure and
//!    paper-shape tests separately pin the perfect-memory cycle counts to
//!    the pre-subsystem values.)
//! 2. A finite cache with real penalties may only *slow* execution, never
//!    change architectural results (the differential check inside
//!    `evaluate` enforces the latter), and its statistics must stay
//!    consistent (`accesses == hits + misses`) on every grid point.

use ilp_compiler::prelude::*;

/// Zero-penalty cache: misses are tracked but cost nothing.
fn free_cache() -> MemConfig {
    MemConfig::cache(CacheParams::new(4, 16, 2, 0, 0))
}

#[test]
fn perfect_mem_is_cycle_identical_to_zero_penalty_cache_on_full_grid() {
    let workloads = build_all(0.04);
    assert_eq!(workloads.len(), 40);
    let mut checked = 0usize;
    for w in &workloads {
        for level in Level::ALL {
            for width in [1u32, 4, 8] {
                let perfect = evaluate(w, level, &Machine::issue(width))
                    .unwrap_or_else(|e| panic!("{} {level} issue-{width}: {e}", w.meta.name));
                let free = evaluate(w, level, &Machine::issue(width).with_mem(free_cache()))
                    .unwrap_or_else(|e| panic!("{} {level} issue-{width}: {e}", w.meta.name));
                assert_eq!(
                    perfect.cycles, free.cycles,
                    "{} {level} issue-{width}: zero-cost misses changed timing",
                    w.meta.name
                );
                assert_eq!(perfect.dyn_insts, free.dyn_insts);
                // Perfect memory never misses; the zero-penalty cache still
                // records the same access stream and real miss counts.
                assert_eq!(perfect.mem.misses(), 0);
                assert_eq!(perfect.mem.miss_cycles, 0);
                assert_eq!(perfect.mem.accesses(), free.mem.accesses());
                assert_eq!(free.mem.miss_cycles, 0);
                checked += 1;
            }
        }
    }
    assert_eq!(checked, 40 * Level::ALL.len() * 3);
}

#[test]
fn finite_cache_only_slows_and_keeps_consistent_stats() {
    let cache = MemConfig::cache(CacheParams::new(4, 8, 2, 30, 10));
    for w in build_all(0.04) {
        for level in [Level::Conv, Level::Lev2, Level::Lev4] {
            for width in [1u32, 8] {
                let perfect = evaluate(&w, level, &Machine::issue(width)).unwrap();
                // evaluate() differentially verifies architectural results
                // against the AST interpreter, so a clean return already
                // proves the cache changed timing only.
                let cached = evaluate(&w, level, &Machine::issue(width).with_mem(cache))
                    .unwrap_or_else(|e| panic!("{} {level} issue-{width}: {e}", w.meta.name));
                assert!(
                    cached.cycles >= perfect.cycles,
                    "{} {level} issue-{width}: cache sped things up ({} < {})",
                    w.meta.name,
                    cached.cycles,
                    perfect.cycles
                );
                let s = cached.mem;
                assert_eq!(
                    s.accesses(),
                    s.hits() + s.misses(),
                    "{} {level} issue-{width}: {s:?}",
                    w.meta.name
                );
                assert_eq!(s.accesses(), perfect.mem.accesses());
                assert!(s.hit_rate() <= 1.0 && s.hit_rate() >= 0.0);
                // Charged miss cycles must explain any slowdown's source.
                if cached.cycles > perfect.cycles {
                    assert!(s.miss_cycles > 0, "{}: slower with no misses", w.meta.name);
                }
            }
        }
    }
}

#[test]
fn deeper_hierarchy_and_bigger_caches_help_monotonically() {
    // A streaming DOALL loop: tiny L1 thrashes, a big L1 mostly hits, and
    // an L2 behind the tiny L1 recovers part of the gap.
    let meta = table2().into_iter().find(|m| m.name == "add").unwrap();
    let w = build(&meta, 0.2);
    let machine = |mem: MemConfig| Machine::issue(8).with_mem(mem);
    let tiny = evaluate(&w, Level::Lev2, &machine(MemConfig::cache(CacheParams::new(4, 2, 1, 60, 60)))).unwrap();
    let tiny_l2 = evaluate(
        &w,
        Level::Lev2,
        &machine(MemConfig::cache(CacheParams::new(4, 2, 1, 60, 60).with_l2(4, 256, 4, 8))),
    )
    .unwrap();
    let big = evaluate(&w, Level::Lev2, &machine(MemConfig::cache(CacheParams::new(4, 512, 2, 60, 60)))).unwrap();
    let perfect = evaluate(&w, Level::Lev2, &Machine::issue(8)).unwrap();
    assert!(tiny.cycles >= tiny_l2.cycles, "{} < {}", tiny.cycles, tiny_l2.cycles);
    assert!(tiny.cycles >= big.cycles, "{} < {}", tiny.cycles, big.cycles);
    assert!(tiny_l2.cycles >= perfect.cycles);
    assert!(big.cycles >= perfect.cycles);
    // The hit-rate ordering matches: streaming misses once per line in the
    // tiny cache, and the big cache can only do better.
    assert!(tiny.mem.hit_rate() <= big.mem.hit_rate());
    assert!(tiny.mem.misses() > 0, "streaming loop must miss a 8-line L1");
}
