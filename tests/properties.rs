//! Property-based tests (ilpc-testkit `prop`) over the whole compiler.
//!
//! The strongest property available is *differential correctness*: for a
//! randomly generated mini-FORTRAN program, the simulated result of the
//! fully transformed code (Lev4, superblocks, scheduling) must equal the
//! AST interpreter's result on random data. This exercises unrolling with
//! arbitrary runtime trip counts, renaming, all three expansions, operation
//! combining, strength reduction, tree height reduction, speculation and
//! the simulator in one shot.

use ilp_compiler::prelude::*;
use ilpc_ir::ast::{ArrId, VarId};
use ilpc_testkit::prop::{check, Config, Source};

/// Case count per property — matches the proptest originals.
const CASES: u32 = 48;

/// A recipe for one random statement in the loop body.
#[derive(Debug, Clone)]
enum StmtKind {
    /// `D(i+off) = <expr over sources>`.
    Store { dst: usize, off: i64, expr: ExprKind },
    /// `s = s + <expr>` (accumulation).
    Accum { acc: usize, expr: ExprKind },
    /// `if (A(i) > big) big = A(i)` (search).
    Search { src: usize },
    /// `X(i) = X(i-1)*0.5 + <expr>` (true recurrence).
    Recur { expr: ExprKind },
}

/// A recipe for a random arithmetic expression over the source arrays.
#[derive(Debug, Clone)]
enum ExprKind {
    Load { src: usize, off: i64 },
    Const(i32),
    Add(Box<ExprKind>, Box<ExprKind>),
    Sub(Box<ExprKind>, Box<ExprKind>),
    Mul(Box<ExprKind>, Box<ExprKind>),
    /// Division by a constant (keeps values well-conditioned).
    DivC(Box<ExprKind>, i32),
}

/// Random expression tree of depth at most `depth` (leaves at depth 0;
/// the choice-0 alternative is a leaf, so shrinking collapses trees).
fn gen_expr(s: &mut Source, depth: u32) -> ExprKind {
    let leaf = depth == 0 || s.weighted(&[2, 3]) == 0;
    if leaf {
        match s.weighted(&[1, 1]) {
            0 => ExprKind::Load { src: s.range_usize(0, 3), off: s.range_i64(-2, 3) },
            _ => ExprKind::Const(s.range_i64(1, 9) as i32),
        }
    } else {
        match s.weighted(&[1, 1, 1, 1]) {
            0 => ExprKind::Add(
                Box::new(gen_expr(s, depth - 1)),
                Box::new(gen_expr(s, depth - 1)),
            ),
            1 => ExprKind::Sub(
                Box::new(gen_expr(s, depth - 1)),
                Box::new(gen_expr(s, depth - 1)),
            ),
            2 => ExprKind::Mul(
                Box::new(gen_expr(s, depth - 1)),
                Box::new(gen_expr(s, depth - 1)),
            ),
            _ => ExprKind::DivC(
                Box::new(gen_expr(s, depth - 1)),
                s.range_i64(2, 9) as i32,
            ),
        }
    }
}

fn gen_stmt(s: &mut Source) -> StmtKind {
    match s.weighted(&[4, 2, 1, 1]) {
        0 => StmtKind::Store {
            dst: s.range_usize(0, 2),
            off: s.range_i64(0, 3),
            expr: gen_expr(s, 4),
        },
        1 => StmtKind::Accum { acc: s.range_usize(0, 2), expr: gen_expr(s, 4) },
        2 => StmtKind::Search { src: s.range_usize(0, 3) },
        _ => StmtKind::Recur { expr: gen_expr(s, 4) },
    }
}

/// Materialize a recipe as a `Program` plus data.
fn materialize(stmts: &[StmtKind], n: i64) -> (Program, DataInit) {
    let mut p = Program::new("prop");
    let len = (n + 16) as usize;
    let srcs: Vec<ArrId> = (0..3).map(|k| p.flt_arr(&format!("S{k}"), len)).collect();
    let dsts: Vec<ArrId> = (0..2).map(|k| p.flt_arr(&format!("D{k}"), len)).collect();
    let x = p.flt_arr("X", len);
    let accs: Vec<VarId> = (0..2).map(|k| p.flt_var(&format!("acc{k}"))).collect();
    let big = p.flt_var("big");
    let i = p.int_var("i");

    fn lower_expr(e: &ExprKind, srcs: &[ArrId], i: VarId) -> Expr {
        match e {
            ExprKind::Load { src, off } => {
                Expr::at(srcs[*src], Index::var(i).offset(off + 4))
            }
            ExprKind::Const(c) => Expr::Cf(*c as f64 * 0.25),
            ExprKind::Add(a, b) => {
                Expr::add(lower_expr(a, srcs, i), lower_expr(b, srcs, i))
            }
            ExprKind::Sub(a, b) => {
                Expr::sub(lower_expr(a, srcs, i), lower_expr(b, srcs, i))
            }
            ExprKind::Mul(a, b) => {
                Expr::mul(lower_expr(a, srcs, i), lower_expr(b, srcs, i))
            }
            ExprKind::DivC(a, c) => {
                Expr::div(lower_expr(a, srcs, i), Expr::Cf(*c as f64))
            }
        }
    }

    let body: Vec<Stmt> = stmts
        .iter()
        .map(|s| match s {
            StmtKind::Store { dst, off, expr } => Stmt::SetArr(
                dsts[*dst],
                Index::var(i).offset(off + 4),
                lower_expr(expr, &srcs, i),
            ),
            StmtKind::Accum { acc, expr } => Stmt::SetScalar(
                accs[*acc],
                Expr::add(Expr::Var(accs[*acc]), lower_expr(expr, &srcs, i)),
            ),
            StmtKind::Search { src } => Stmt::If {
                cond: (
                    Cond::Gt,
                    Expr::at(srcs[*src], Index::var(i).offset(4)),
                    Expr::Var(big),
                ),
                then: vec![Stmt::SetScalar(
                    big,
                    Expr::at(srcs[*src], Index::var(i).offset(4)),
                )],
                els: vec![],
                prob: 0.1,
            },
            StmtKind::Recur { expr } => Stmt::SetArr(
                x,
                Index::var(i).offset(4),
                Expr::add(
                    Expr::mul(Expr::at(x, Index::var(i).offset(3)), Expr::Cf(0.5)),
                    lower_expr(expr, &srcs, i),
                ),
            ),
        })
        .collect();

    p.body = vec![Stmt::For {
        var: i,
        lo: Bound::Const(0),
        hi: Bound::Const(n - 1),
        body,
    }];

    // Deterministic pseudo-random data derived from the statement count.
    let mut init = DataInit::new();
    let mut state = 0x9E3779B97F4A7C15u64 ^ (stmts.len() as u64);
    let mut nextf = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        0.5 + ((state >> 20) & 0xFFFF) as f64 / 65536.0 // in [0.5, 1.5)
    };
    for a in &srcs {
        init = init.with_array(*a, ArrayVal::F((0..len).map(|_| nextf()).collect()));
    }
    init = init.with_array(x, ArrayVal::F((0..len).map(|_| nextf()).collect()));
    (p, init)
}

/// Random programs compile and simulate to the interpreter's result at
/// every level on issue-8.
#[test]
fn random_programs_differential() {
    check("random_programs_differential", &Config::cases(CASES), |s| {
        let stmts = s.vec_of(1, 6, gen_stmt);
        let n = s.range_i64(3, 40);
        let (program, init) = materialize(&stmts, n);
        let w = Workload { meta: table2()[0].clone(), program, init };
        for level in [Level::Conv, Level::Lev2, Level::Lev4] {
            evaluate(&w, level, &Machine::issue(8))
                .map_err(|e| format!("{level}: {e}\nstmts: {stmts:#?}"))?;
        }
        Ok(())
    });
}

/// Every runtime trip count (including those not divisible by the
/// unroll factor) survives preconditioned unrolling.
#[test]
fn trip_counts_exhaustive() {
    check("trip_counts_exhaustive", &Config::cases(CASES), |s| {
        let n = s.range_i64(1, 36);
        let (program, init) = materialize(
            &[StmtKind::Accum {
                acc: 0,
                expr: ExprKind::Load { src: 0, off: 0 },
            }],
            n,
        );
        let w = Workload { meta: table2()[0].clone(), program, init };
        for level in [Level::Lev1, Level::Lev4] {
            evaluate(&w, level, &Machine::issue(4))
                .map_err(|e| format!("n={n} {level}: {e}"))?;
        }
        Ok(())
    });
}

/// Integer multiply strength reduction is exact for arbitrary operands.
#[test]
fn strength_reduction_semantics() {
    check("strength_reduction_semantics", &Config::cases(CASES), |s| {
        let c = s.range_i64(-20, 20);
        let xs = s.vec_of(4, 5, |s| s.range_i64(-1000, 1000));
        let mut p = Program::new("sr");
        let a = p.int_arr("A", 8);
        let d = p.int_arr("D", 8);
        let i = p.int_var("i");
        p.body = vec![Stmt::For {
            var: i,
            lo: Bound::Const(0),
            hi: Bound::Const(3),
            body: vec![Stmt::SetArr(
                d,
                Index::var(i),
                Expr::mul(Expr::at(a, Index::var(i)), Expr::Ci(c)),
            )],
        }];
        let mut data = xs.clone();
        data.resize(8, 0);
        let init = DataInit::new().with_array(a, ArrayVal::I(data));
        let w = Workload { meta: table2()[0].clone(), program: p, init };
        evaluate(&w, Level::Lev3, &Machine::issue(8))
            .map_err(|e| format!("c={c} xs={xs:?}: {e}"))?;
        Ok(())
    });
}
