//! Property-based tests (proptest) over the whole compiler.
//!
//! The strongest property available is *differential correctness*: for a
//! randomly generated mini-FORTRAN program, the simulated result of the
//! fully transformed code (Lev4, superblocks, scheduling) must equal the
//! AST interpreter's result on random data. This exercises unrolling with
//! arbitrary runtime trip counts, renaming, all three expansions, operation
//! combining, strength reduction, tree height reduction, speculation and
//! the simulator in one shot.

use ilp_compiler::prelude::*;
use ilpc_ir::ast::{ArrId, VarId};
use proptest::prelude::*;

/// A recipe for one random statement in the loop body.
#[derive(Debug, Clone)]
enum StmtKind {
    /// `D(i+off) = <expr over sources>`.
    Store { dst: usize, off: i64, expr: ExprKind },
    /// `s = s + <expr>` (accumulation).
    Accum { acc: usize, expr: ExprKind },
    /// `if (A(i) > big) big = A(i)` (search).
    Search { src: usize },
    /// `X(i) = X(i-1)*0.5 + <expr>` (true recurrence).
    Recur { expr: ExprKind },
}

/// A recipe for a random arithmetic expression over the source arrays.
#[derive(Debug, Clone)]
enum ExprKind {
    Load { src: usize, off: i64 },
    Const(i32),
    Add(Box<ExprKind>, Box<ExprKind>),
    Sub(Box<ExprKind>, Box<ExprKind>),
    Mul(Box<ExprKind>, Box<ExprKind>),
    /// Division by a constant (keeps values well-conditioned).
    DivC(Box<ExprKind>, i32),
}

fn expr_strategy() -> impl Strategy<Value = ExprKind> {
    let leaf = prop_oneof![
        (0usize..3, -2i64..3).prop_map(|(src, off)| ExprKind::Load { src, off }),
        (1i32..9).prop_map(ExprKind::Const),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| ExprKind::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| ExprKind::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| ExprKind::Mul(Box::new(a), Box::new(b))),
            (inner, 2i32..9).prop_map(|(a, c)| ExprKind::DivC(Box::new(a), c)),
        ]
    })
}

fn stmt_strategy() -> impl Strategy<Value = StmtKind> {
    prop_oneof![
        4 => (0usize..2, 0i64..3, expr_strategy())
            .prop_map(|(dst, off, expr)| StmtKind::Store { dst, off, expr }),
        2 => (0usize..2, expr_strategy())
            .prop_map(|(acc, expr)| StmtKind::Accum { acc, expr }),
        1 => (0usize..3).prop_map(|src| StmtKind::Search { src }),
        1 => expr_strategy().prop_map(|expr| StmtKind::Recur { expr }),
    ]
}

/// Materialize a recipe as a `Program` plus data.
fn materialize(stmts: &[StmtKind], n: i64) -> (Program, DataInit) {
    let mut p = Program::new("prop");
    let len = (n + 16) as usize;
    let srcs: Vec<ArrId> = (0..3).map(|k| p.flt_arr(&format!("S{k}"), len)).collect();
    let dsts: Vec<ArrId> = (0..2).map(|k| p.flt_arr(&format!("D{k}"), len)).collect();
    let x = p.flt_arr("X", len);
    let accs: Vec<VarId> = (0..2).map(|k| p.flt_var(&format!("acc{k}"))).collect();
    let big = p.flt_var("big");
    let i = p.int_var("i");

    fn lower_expr(e: &ExprKind, srcs: &[ArrId], i: VarId) -> Expr {
        match e {
            ExprKind::Load { src, off } => {
                Expr::at(srcs[*src], Index::var(i).offset(off + 4))
            }
            ExprKind::Const(c) => Expr::Cf(*c as f64 * 0.25),
            ExprKind::Add(a, b) => {
                Expr::add(lower_expr(a, srcs, i), lower_expr(b, srcs, i))
            }
            ExprKind::Sub(a, b) => {
                Expr::sub(lower_expr(a, srcs, i), lower_expr(b, srcs, i))
            }
            ExprKind::Mul(a, b) => {
                Expr::mul(lower_expr(a, srcs, i), lower_expr(b, srcs, i))
            }
            ExprKind::DivC(a, c) => {
                Expr::div(lower_expr(a, srcs, i), Expr::Cf(*c as f64))
            }
        }
    }

    let body: Vec<Stmt> = stmts
        .iter()
        .map(|s| match s {
            StmtKind::Store { dst, off, expr } => Stmt::SetArr(
                dsts[*dst],
                Index::var(i).offset(off + 4),
                lower_expr(expr, &srcs, i),
            ),
            StmtKind::Accum { acc, expr } => Stmt::SetScalar(
                accs[*acc],
                Expr::add(Expr::Var(accs[*acc]), lower_expr(expr, &srcs, i)),
            ),
            StmtKind::Search { src } => Stmt::If {
                cond: (
                    Cond::Gt,
                    Expr::at(srcs[*src], Index::var(i).offset(4)),
                    Expr::Var(big),
                ),
                then: vec![Stmt::SetScalar(
                    big,
                    Expr::at(srcs[*src], Index::var(i).offset(4)),
                )],
                els: vec![],
                prob: 0.1,
            },
            StmtKind::Recur { expr } => Stmt::SetArr(
                x,
                Index::var(i).offset(4),
                Expr::add(
                    Expr::mul(Expr::at(x, Index::var(i).offset(3)), Expr::Cf(0.5)),
                    lower_expr(expr, &srcs, i),
                ),
            ),
        })
        .collect();

    p.body = vec![Stmt::For {
        var: i,
        lo: Bound::Const(0),
        hi: Bound::Const(n - 1),
        body,
    }];

    // Deterministic pseudo-random data derived from the statement count.
    let mut init = DataInit::new();
    let mut state = 0x9E3779B97F4A7C15u64 ^ (stmts.len() as u64);
    let mut nextf = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        0.5 + ((state >> 20) & 0xFFFF) as f64 / 65536.0 // in [0.5, 1.5)
    };
    for a in &srcs {
        init = init.with_array(*a, ArrayVal::F((0..len).map(|_| nextf()).collect()));
    }
    init = init.with_array(x, ArrayVal::F((0..len).map(|_| nextf()).collect()));
    (p, init)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    /// Random programs compile and simulate to the interpreter's result at
    /// every level on issue-8.
    #[test]
    fn random_programs_differential(
        stmts in prop::collection::vec(stmt_strategy(), 1..6),
        n in 3i64..40,
    ) {
        let (program, init) = materialize(&stmts, n);
        let w = Workload {
            meta: table2()[0].clone(),
            program,
            init,
        };
        for level in [Level::Conv, Level::Lev2, Level::Lev4] {
            evaluate(&w, level, &Machine::issue(8))
                .unwrap_or_else(|e| panic!("{level}: {e}\nstmts: {stmts:#?}"));
        }
    }

    /// Every runtime trip count (including those not divisible by the
    /// unroll factor) survives preconditioned unrolling.
    #[test]
    fn trip_counts_exhaustive(n in 1i64..36) {
        let (program, init) = materialize(
            &[StmtKind::Accum {
                acc: 0,
                expr: ExprKind::Load { src: 0, off: 0 },
            }],
            n,
        );
        let w = Workload { meta: table2()[0].clone(), program, init };
        for level in [Level::Lev1, Level::Lev4] {
            evaluate(&w, level, &Machine::issue(4))
                .unwrap_or_else(|e| panic!("n={n} {level}: {e}"));
        }
    }

    /// Integer multiply strength reduction is exact for arbitrary operands.
    #[test]
    fn strength_reduction_semantics(c in -20i64..20, xs in prop::collection::vec(-1000i64..1000, 4)) {
        let mut p = Program::new("sr");
        let a = p.int_arr("A", 8);
        let d = p.int_arr("D", 8);
        let i = p.int_var("i");
        p.body = vec![Stmt::For {
            var: i,
            lo: Bound::Const(0),
            hi: Bound::Const(3),
            body: vec![Stmt::SetArr(
                d,
                Index::var(i),
                Expr::mul(Expr::at(a, Index::var(i)), Expr::Ci(c)),
            )],
        }];
        let mut data = xs.clone();
        data.resize(8, 0);
        let init = DataInit::new().with_array(a, ArrayVal::I(data));
        let w = Workload { meta: table2()[0].clone(), program: p, init };
        evaluate(&w, Level::Lev3, &Machine::issue(8))
            .unwrap_or_else(|e| panic!("c={c}: {e}"));
    }
}
