//! Adversarial mapping from the firewall's injectable fault classes to
//! the static analyzer: every structural fault class is either caught
//! *statically* by `ilpc-lint` (module lints or pass-delta rules, no
//! execution) for at least one injection site, or is explicitly declared
//! dynamic-only below — and the declaration is enforced in both
//! directions, so the mapping can never silently rot.
//!
//! Also pins the healthy-pipeline contract the 600-point grid audit
//! relies on: compiled artifacts at every level are free of
//! error-severity lints, their schedules audit clean, and every
//! trip-preserving pass-delta over the healthy pipeline is accepted.

use ilp_compiler::guard::inject::{inject, FaultKind};
use ilp_compiler::ir::Module;
use ilp_compiler::lint::{check_step, has_errors, TRIP_PRESERVING};
use ilp_compiler::prelude::*;
use ilpc_testkit::TestRng;

/// Fault classes no static rule can see: they corrupt values and
/// metadata, not structure. `ExtDisp` skews a memory displacement (the
/// address is wrong but perfectly well-formed — only the differential
/// spot-check can tell), and `ProbMeta` perturbs branch-probability
/// metadata (performance-only; by design not a legality property).
const DYNAMIC_ONLY: &[FaultKind] = &[FaultKind::ExtDisp, FaultKind::ProbMeta];

/// "Caught statically": the module lints report an error, or some
/// trip-preserving pass-delta rule rejects the before → after pair.
fn statically_caught(before: &Module, after: &Module) -> bool {
    if has_errors(&lint_module(after)) {
        return true;
    }
    TRIP_PRESERVING.iter().any(|p| !check_step(before, after, p).is_empty())
}

fn compiled_dotprod() -> Module {
    let meta = table2().into_iter().find(|m| m.name == "dotprod").unwrap();
    let w = build(&meta, 0.05);
    compile(&w, Level::Lev2, &Machine::issue(8)).module
}

/// A vectorized artifact — `VecLane` faults need vector instructions to
/// strike; every scalar fault class still has sites here too.
fn compiled_dotprod_vectorized() -> Module {
    let meta = table2().into_iter().find(|m| m.name == "dotprod").unwrap();
    let w = build(&meta, 0.05);
    compile(&w, Level::Lev6, &Machine::issue(8).with_vlen(4)).module
}

#[test]
fn every_fault_class_is_statically_caught_or_declared_dynamic() {
    let scalar = compiled_dotprod();
    let vector = compiled_dotprod_vectorized();
    assert!(!has_errors(&lint_module(&scalar)), "the scalar baseline must be lint-clean");
    assert!(!has_errors(&lint_module(&vector)), "the vector baseline must be lint-clean");

    for kind in FaultKind::ALL {
        let clean = if kind == FaultKind::VecLane { &vector } else { &scalar };
        let mut injected = 0usize;
        let mut caught = 0usize;
        for seed in 0..32u64 {
            let mut m = clean.clone();
            if inject(&mut m, kind, &mut TestRng::seed_from_u64(seed)).is_none() {
                continue;
            }
            injected += 1;
            if statically_caught(clean, &m) {
                caught += 1;
            }
        }
        assert!(injected > 0, "{kind}: no injection site in the test module");
        if DYNAMIC_ONLY.contains(&kind) {
            assert_eq!(
                caught, 0,
                "{kind} is declared dynamic-only, but a static lint caught it — \
                 move it out of DYNAMIC_ONLY"
            );
        } else {
            assert!(
                caught > 0,
                "{kind}: {injected} injections, none caught statically — \
                 either add a lint or declare the class dynamic-only"
            );
        }
    }
}

/// The healthy pipeline is statically legal end to end: module lints
/// carry no errors, retained schedules audit clean against the machine
/// model, and no trip-preserving delta rule rejects a healthy step.
#[test]
fn healthy_artifacts_are_lint_clean_across_levels() {
    for name in ["dotprod", "maxval", "merge", "SDS-4"] {
        let meta = table2().into_iter().find(|m| m.name == name).unwrap();
        let w = build(&meta, 0.04);
        for level in Level::ALL {
            for machine in [Machine::issue(1), Machine::issue(8), Machine::issue(8).with_vlen(4)] {
                let c = compile(&w, level, &machine);
                let diags = lint_module(&c.module);
                assert!(
                    !has_errors(&diags),
                    "{name}/{level}/{}: {diags:?}", machine.name()
                );
                let audit = audit_schedules(&c.module, &c.schedules, &machine);
                assert!(audit.is_empty(), "{name}/{level}/{}: {audit:?}", machine.name());
            }
        }
    }
}

/// An identity delta over a fully-compiled artifact passes every rule for
/// every registered pass name — the delta rules never reject "nothing
/// happened", at any pipeline position.
#[test]
fn identity_deltas_are_accepted_for_all_passes() {
    let m = compiled_dotprod();
    let names = ilp_compiler::core_transforms::level::passes(Level::Lev6)
        .map(|p| p.name)
        .chain(["superblock-formation", "list-schedule"]);
    for pass in names {
        let diags = check_step(&m, &m, pass);
        assert!(diags.is_empty(), "{pass}: {diags:?}");
    }
}
