//! Graph-coloring register assignment, validated on real compiled code:
//! rewriting every workload onto physical registers must preserve simulated
//! results and cycle counts exactly, and the color count must match the
//! MAXLIVE bound the figures report (greedy coloring on these interference
//! graphs achieves the lower bound; a regression here means the allocator
//! started wasting registers).

use ilp_compiler::harness::compile::compile;
use ilp_compiler::prelude::*;
use ilp_compiler::regalloc::{assign_registers, measure};
use ilp_compiler::sim::{memory_from_init, simulate};

#[test]
fn physical_assignment_preserves_results_and_timing() {
    for w in build_all(0.04) {
        let machine = Machine::issue(8);
        let compiled = compile(&w, Level::Lev4, &machine);
        let mem = memory_from_init(&compiled.module.symtab, &w.init);
        let before = simulate(&compiled.module, &machine, mem.clone(), 50_000_000)
            .unwrap();

        let mut phys = compiled.module.clone();
        let usage = assign_registers(&mut phys.func);
        ilp_compiler::ir::verify::verify_module(&phys)
            .unwrap_or_else(|e| panic!("{}: {e}", w.meta.name));

        let after = simulate(&phys, &machine, mem, 50_000_000).unwrap();
        assert_eq!(before.memory, after.memory, "{}", w.meta.name);
        assert_eq!(before.cycles, after.cycles, "{}", w.meta.name);
        assert_eq!(before.dyn_insts, after.dyn_insts, "{}", w.meta.name);

        // Colors stay close to the MAXLIVE lower bound (loop-carried
        // ranges wrap the back edge, so the graph is not a pure interval
        // graph; allow a small slack and flag anything worse).
        let bound = measure(&compiled.module.func);
        let slack = |b: u32| b + 2 + b / 8;
        assert!(
            usage.int <= slack(bound.int) && usage.flt <= slack(bound.flt),
            "{}: colored {usage:?} vs maxlive {bound:?}",
            w.meta.name
        );
        // And the physical code's own MAXLIVE equals its register count.
        let phys_bound = measure(&phys.func);
        assert!(phys_bound.total() <= usage.total(), "{}", w.meta.name);
    }
}

#[test]
fn assignment_is_idempotent() {
    let meta = table2().into_iter().find(|m| m.name == "dotprod").unwrap();
    let w = build(&meta, 0.05);
    let compiled = compile(&w, Level::Lev4, &Machine::issue(8));
    let mut once = compiled.module.clone();
    let u1 = assign_registers(&mut once.func);
    let mut twice = once.clone();
    let u2 = assign_registers(&mut twice.func);
    assert_eq!(u1.total(), u2.total());
}
