//! Differential guarantee for the pre-decoded execution engine.
//!
//! The fast engine (`ilpc_sim::decoded`, the default behind
//! `simulate_limited`) must be indistinguishable from the legacy
//! tree-walking interpreter (`ilpc_sim::reference`, the executable
//! specification) on *every observable*: cycle count, dynamic instruction
//! count, final memory image, branch profile, and memory-hierarchy
//! statistics — across the full 40-workload × 5-level × 3-width grid,
//! under perfect memory and under a finite cache (whose extra-latency
//! callbacks are order-sensitive, so cycle identity here also proves the
//! engines issue accesses in the same order). Structural corruption must
//! produce the *same typed error* from both engines, coordinates included.

use ilp_compiler::harness::compile::compile;
use ilp_compiler::harness::run::cycle_budget;
use ilp_compiler::prelude::*;
use ilp_compiler::sim::reference::simulate_limited_reference;
use ilp_compiler::sim::{memory_from_init, simulate_limited, SimLimits};

fn assert_engines_agree_on_grid(mem_cfg: MemConfig) {
    let workloads = build_all(0.04);
    assert_eq!(workloads.len(), 40);
    let mut checked = 0usize;
    for w in &workloads {
        let reference_exec = interpret(&w.program, &w.init);
        let limits = SimLimits::cycles(cycle_budget(reference_exec.stmts_executed));
        for level in Level::ALL {
            for width in [1u32, 4, 8] {
                let machine = Machine::issue(width).with_mem(mem_cfg);
                let compiled = compile(w, level, &machine);
                let mem = memory_from_init(&compiled.module.symtab, &w.init);
                let fast = simulate_limited(&compiled.module, &machine, mem.clone(), limits)
                    .unwrap_or_else(|e| {
                        panic!("{} {level} issue-{width} (fast): {e}", w.meta.name)
                    });
                let oracle =
                    simulate_limited_reference(&compiled.module, &machine, mem, limits)
                        .unwrap_or_else(|e| {
                            panic!("{} {level} issue-{width} (oracle): {e}", w.meta.name)
                        });
                let tag = format!("{} {level} issue-{width}", w.meta.name);
                assert_eq!(fast.cycles, oracle.cycles, "{tag}: cycles");
                assert_eq!(fast.dyn_insts, oracle.dyn_insts, "{tag}: dyn_insts");
                assert_eq!(fast.memory, oracle.memory, "{tag}: memory image");
                assert_eq!(fast.branch_profile, oracle.branch_profile, "{tag}: profile");
                assert_eq!(fast.mem, oracle.mem, "{tag}: mem stats");
                checked += 1;
            }
        }
    }
    assert_eq!(checked, 40 * Level::ALL.len() * 3);
}

#[test]
fn engines_identical_on_full_grid_under_perfect_memory() {
    assert_engines_agree_on_grid(MemConfig::Perfect);
}

#[test]
fn engines_identical_on_full_grid_under_finite_cache() {
    // A small cache with asymmetric penalties: load misses retime results,
    // store misses stall issue — both paths must interleave identically.
    assert_engines_agree_on_grid(MemConfig::cache(CacheParams::new(4, 8, 2, 30, 10)));
}

/// Structural corruption (the decode-time trap path of the fast engine)
/// yields the same `SimError` — reason string *and* coordinates — as the
/// legacy engine's lazy per-instruction checks.
#[test]
fn engines_report_identical_errors_on_corrupted_modules() {
    use ilp_compiler::ir::inst::Inst;
    use ilp_compiler::ir::Opcode;

    let meta = table2().into_iter().find(|m| m.name == "dotprod").unwrap();
    let w = build(&meta, 0.04);
    let machine = Machine::issue(4);
    let tampers: [(&str, fn(&mut Inst) -> bool); 5] = [
        ("strip load dst", |i| {
            (i.op == Opcode::Load && i.dst.is_some()) && {
                i.dst = None;
                true
            }
        }),
        ("strip mem tags", |i| {
            (i.mem.is_some()) && {
                i.mem = None;
                true
            }
        }),
        ("strip branch targets", |i| {
            (i.target.is_some()) && {
                i.target = None;
                true
            }
        }),
        ("empty ALU operand", |i| {
            (i.op == Opcode::Add) && {
                i.src[0] = ilp_compiler::ir::Operand::None;
                true
            }
        }),
        ("out-of-range register", |i| {
            (i.op == Opcode::Add && i.dst.is_some()) && {
                i.dst = Some(ilp_compiler::ir::Reg::int(1 << 20));
                true
            }
        }),
    ];
    for level in [Level::Conv, Level::Lev2, Level::Lev4] {
        for (name, tamper) in tampers {
            let mut compiled = compile(&w, level, &machine);
            let mut hits = 0usize;
            let blocks: Vec<_> = compiled.module.func.layout_order().to_vec();
            for b in blocks {
                for inst in &mut compiled.module.func.block_mut(b).insts {
                    hits += tamper(inst) as usize;
                }
            }
            assert!(hits > 0, "{level}/{name}: tamper matched nothing");
            let mem = memory_from_init(&compiled.module.symtab, &w.init);
            let limits = SimLimits::cycles(2_000_000);
            let fast = simulate_limited(&compiled.module, &machine, mem.clone(), limits);
            let oracle =
                simulate_limited_reference(&compiled.module, &machine, mem, limits);
            let fast = fast.expect_err(name);
            let oracle = oracle.expect_err(name);
            assert_eq!(fast, oracle, "{level}/{name}");
        }
    }
}
