//! Integration tests for the transformation firewall (`ilpc-guard`).
//!
//! Three system-level guarantees:
//!
//! 1. **Zero overhead on healthy input**: a guarded compile of unfaulted
//!    IR is byte-identical to the bare pipeline — the firewall changes
//!    nothing unless something is wrong.
//! 2. **Grid isolation**: one deliberately-faulted point in the full
//!    600-point evaluation grid degrades to a typed error while the other
//!    599 points complete.
//! 3. **No silent escapes**: a deterministic seeded fault campaign never
//!    produces wrong architectural results without a flag.

use ilp_compiler::guard::GuardConfig;
use ilp_compiler::harness::campaign::{run_campaign, CampaignConfig};
use ilp_compiler::harness::compile::{compile, compile_guarded};
use ilp_compiler::harness::grid::{
    run_grid, GridConfig, PointError, Sabotage, SabotageMode,
};
use ilp_compiler::ir::text::serialize;
use ilp_compiler::prelude::*;

/// Guarding an unfaulted compilation is invisible: same module bytes,
/// same transformation counts, clean report — across workloads, levels
/// and widths.
#[test]
fn guarded_compile_is_byte_identical_on_healthy_input() {
    for name in ["add", "dotprod", "maxval", "merge", "SDS-4"] {
        let meta = table2().into_iter().find(|m| m.name == name).unwrap();
        let w = build(&meta, 0.04);
        for level in Level::ALL {
            for width in [1u32, 8] {
                let machine = Machine::issue(width);
                let plain = compile(&w, level, &machine);
                let guarded =
                    compile_guarded(&w, level, &machine, GuardConfig::default(), None);
                assert!(
                    guarded.guard.clean(),
                    "{name} {level} issue-{width}: {:#?}",
                    guarded.guard.incidents
                );
                assert_eq!(guarded.guard.achieved, Some(level), "{name} {level}");
                assert_eq!(
                    serialize(&guarded.compiled.module),
                    serialize(&plain.module),
                    "{name} {level} issue-{width}: guarded module diverged"
                );
                assert_eq!(guarded.compiled.report, plain.report, "{name} {level}");
                assert_eq!(
                    guarded.compiled.static_insts, plain.static_insts,
                    "{name} {level}"
                );
            }
        }
    }
}

/// The full 40 × 5 × 3 = 600-point grid with one sabotaged point: the
/// fault becomes a typed error and the remaining 599 points complete.
#[test]
fn full_grid_survives_a_faulted_point() {
    let levels = Level::ALL.to_vec();
    let widths = vec![1u32, 4, 8];
    let cfg = GridConfig {
        scale: 0.02,
        levels: levels.clone(),
        widths: widths.clone(),
        sabotage: Some(Sabotage {
            workload: "dotprod".to_string(),
            level: Level::Lev3,
            width: 4,
            mode: SabotageMode::Panic,
        }),
        ..GridConfig::default()
    };
    let grid = run_grid(&cfg).expect("grid config rejected");
    assert_eq!(grid.meta.len(), 40);

    // Exactly one typed failure, at the sabotaged coordinates.
    assert_eq!(grid.errors.len(), 1, "{:#?}", grid.errors);
    let err = &grid.errors[0];
    assert_eq!(err.workload, "dotprod");
    assert_eq!((err.level, err.width), (Level::Lev3, 4));
    assert!(
        matches!(&err.error, PointError::Panic(msg) if msg.contains("sabotaged")),
        "{err}"
    );

    // The other 599 points all completed.
    let mut present = 0;
    for m in &grid.meta {
        for &level in &levels {
            for &width in &widths {
                present += grid.point(m.name, level, width).is_some() as usize;
            }
        }
    }
    assert_eq!(present, 40 * levels.len() * widths.len() - 1);
    assert!(grid.point("dotprod", Level::Lev3, 4).is_none());

    // Aggregations see the hole instead of passing for complete: the
    // sabotaged point punches a visible 39/40 coverage hole in the
    // all-loops mean at exactly (Lev3, issue-4).
    let names: Vec<&str> = grid.meta.iter().map(|m| m.name).collect();
    let agg = grid.mean_speedup(names.iter().copied(), Level::Lev3, 4);
    assert_eq!(agg.requested(), names.len());
    assert_eq!(agg.covered(), names.len() - 1);
    assert!(!agg.is_complete());
    assert_eq!(agg.complete(), None);
    assert!(agg.partial().unwrap() > 1.0);
    // Any other coordinate is untouched and aggregates completely — as
    // does the DOALL subset, which the Serial dotprod never belonged to.
    assert!(grid.mean_speedup(names.iter().copied(), Level::Lev3, 8).is_complete());
    let doall: Vec<&str> =
        grid.meta.iter().filter(|m| m.ltype.is_doall()).map(|m| m.name).collect();
    assert!(grid.mean_speedup(doall.iter().copied(), Level::Lev3, 4).is_complete());
}

/// A seeded campaign across all fault classes: deterministic and free of
/// silent escapes. (The `fault-campaign` binary runs the full ≥500-fault
/// version; this keeps debug-build test time bounded.)
#[test]
fn fault_campaign_never_escapes_silently() {
    let cfg = CampaignConfig { faults: 96, seed: 0xDEC0DE, ..CampaignConfig::default() };
    let report = run_campaign(&cfg);
    assert_eq!(report.records.len(), 96);
    assert_eq!(report.silent_escapes(), 0, "\n{}", report.render());

    // Determinism: identical reruns, fault for fault.
    let again = run_campaign(&cfg);
    assert_eq!(report.render(), again.render());
    for (a, b) in report.records.iter().zip(&again.records) {
        assert_eq!(
            (a.workload, a.kind, a.step, &a.fault, a.outcome),
            (b.workload, b.kind, b.step, &b.fault, b.outcome)
        );
    }

    // Breadth: every fault class was exercised.
    for kind in ilp_compiler::guard::inject::FaultKind::ALL {
        assert!(
            report.records.iter().any(|r| r.kind == kind.name()),
            "fault class {kind} never drawn — seed/count too small"
        );
    }
    assert!(report.records.iter().any(|r| r.kind == "latency"));
}
