//! Vector-subsystem differential guarantees: `Lev6` (SLP vectorization)
//! must be an observably pure performance transformation.
//!
//! * Against the AST interpreter: every workload, at every vector length,
//!   at every issue width, produces the reference architectural result
//!   (FP within the same relative tolerance the scalar grid uses —
//!   `vreduce` reassociates reductions exactly like accumulator
//!   expansion does).
//! * `VLEN = 1` is not "vectorization turned down", it is *bit- and
//!   cycle-identical* to `Lev4`: the SLP pass is a structural no-op and
//!   the whole pipeline downstream sees the same module.
//! * The guarded pipeline accepts healthy SLP output — zero incidents —
//!   so the firewall's verifier, static delta lints and differential
//!   spot-check all agree the pass is legal.

use ilp_compiler::guard::GuardConfig;
use ilp_compiler::harness::compile::{compile, compile_guarded};
use ilp_compiler::prelude::*;
use ilp_compiler::sim::{memory_from_init, simulate};

/// Full grid: 40 loops × VLEN {2, 4, 8} × issue width {4, 8}, all equal
/// to the interpreter reference. (VLEN 1 is covered bit-exactly below;
/// width 1 adds nothing vectorization-specific and keeps the suite fast.)
#[test]
fn all_workloads_vectorized_match_reference() {
    let workloads = build_all(0.05);
    let mut checked = 0usize;
    let mut failures = Vec::new();
    for w in &workloads {
        for vlen in [2u32, 4, 8] {
            for width in [4u32, 8] {
                let m = Machine::issue(width).with_vlen(vlen);
                if let Err(e) = evaluate(w, Level::Lev6, &m) {
                    failures.push(format!("{} {}: {e}", w.meta.name, m.name()));
                }
                checked += 1;
            }
        }
    }
    assert!(failures.is_empty(), "{} failures:\n{}", failures.len(), failures.join("\n"));
    assert_eq!(checked, 40 * 3 * 2);
}

/// VLEN = 1 disables packing entirely: the compiled module, its cycle
/// count, and its final memory image are identical to Lev4's.
#[test]
fn vlen_one_is_cycle_identical_to_lev4() {
    for w in build_all(0.04) {
        for width in [1u32, 4, 8] {
            let scalar = Machine::issue(width);
            let vector = Machine::issue(width).with_vlen(1);
            let c4 = compile(&w, Level::Lev4, &scalar);
            let c6 = compile(&w, Level::Lev6, &vector);
            assert_eq!(c6.report.packs_formed, 0, "{} w{width}", w.meta.name);
            assert_eq!(c4.static_insts, c6.static_insts, "{} w{width}", w.meta.name);

            let budget = 50_000_000;
            let m4 = memory_from_init(&c4.module.symtab, &w.init);
            let m6 = memory_from_init(&c6.module.symtab, &w.init);
            let r4 = simulate(&c4.module, &scalar, m4, budget).unwrap();
            let r6 = simulate(&c6.module, &vector, m6, budget).unwrap();
            assert_eq!(
                r4.cycles, r6.cycles,
                "{} w{width}: Lev6/v1 not cycle-identical to Lev4",
                w.meta.name
            );
            assert_eq!(r4.memory, r6.memory, "{} w{width}: memory image differs", w.meta.name);
        }
    }
}

/// SLP actually fires where it should: the uniform-accumulator dot
/// product kernels pack loads, multiplies and accumulators.
#[test]
fn slp_packs_form_on_vectorizable_kernels() {
    let mut vectorized = 0usize;
    for w in build_all(0.04) {
        let c = compile(&w, Level::Lev6, &Machine::issue(8).with_vlen(4));
        if c.report.packs_formed > 0 {
            vectorized += 1;
            assert!(
                c.report.stmts_vectorized >= c.report.packs_formed,
                "{}: {} packs but only {} stmts",
                w.meta.name,
                c.report.packs_formed,
                c.report.stmts_vectorized
            );
        }
    }
    // Not every Table 2 loop is packable (reductions with non-uniform
    // init, pointer-chasing shapes stay scalar) — but a healthy SLP pass
    // vectorizes a meaningful slice of the suite.
    assert!(vectorized >= 10, "only {vectorized}/40 workloads formed any pack");
}

/// The firewall keeps healthy vectorized pipelines intact: every guarded
/// step is kept, no incidents, requested level achieved.
#[test]
fn guarded_lev6_runs_clean() {
    for name in ["dotprod", "maxval", "merge", "SDS-4", "NAS-6"] {
        let meta = table2().into_iter().find(|m| m.name == name).unwrap();
        let w = build(&meta, 0.04);
        for vlen in [1u32, 4, 8] {
            let machine = Machine::issue(8).with_vlen(vlen);
            let g = compile_guarded(&w, Level::Lev6, &machine, GuardConfig::default(), None);
            assert!(
                g.guard.incidents.is_empty(),
                "{name}/v{vlen}: {:?}",
                g.guard.incidents
            );
            assert_eq!(g.guard.achieved, Some(Level::Lev6), "{name}/v{vlen}");
            assert_eq!(g.guard.steps_attempted, g.guard.steps_kept, "{name}/v{vlen}");
        }
    }
}
