//! The §2 worked examples of the paper must reproduce exactly: same
//! transformations, same machine model, same cycle counts.

use ilp_compiler::harness::examples_paper::{all_examples, measure};

#[test]
fn all_twelve_kernels_match_paper_cycles() {
    let examples = all_examples();
    assert_eq!(examples.len(), 13);
    for e in &examples {
        assert_eq!(
            measure(e),
            e.paper_cycles,
            "{}: {}",
            e.name,
            e.description
        );
    }
}

#[test]
fn transformations_strictly_improve_each_example() {
    // Within each figure, the "after" kernel is faster per iteration.
    let ex = all_examples();
    let cyc = |name: &str| {
        let e = ex.iter().find(|e| e.name == name).unwrap();
        measure(e) as f64 / e.iterations as f64
    };
    assert!(cyc("fig1d") < cyc("fig1c"));
    assert!(cyc("fig1d") < cyc("fig1b"));
    assert!(cyc("fig3d") < cyc("fig3c"));
    assert!(cyc("fig5d") < cyc("fig5c"));
    assert!(cyc("fig6c") < cyc("fig6b"));
    assert!(cyc("fig7c") < cyc("fig7b"));
}
