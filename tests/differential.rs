//! The central correctness guarantee of the reproduction: for **every**
//! Table 2 loop nest, at **every** transformation level, on **every**
//! machine width, the architectural result of simulating the compiled code
//! equals the AST interpreter's result (FP compared with a tight relative
//! tolerance, since the expansion transformations reassociate reductions).
//!
//! Trip counts are scaled down here to keep the suite fast; the figure
//! binaries run the same differential checks at full scale.

use ilp_compiler::prelude::*;

#[test]
fn all_workloads_all_levels_all_widths() {
    let workloads = build_all(0.08);
    let mut checked = 0usize;
    for w in &workloads {
        for level in Level::ALL {
            for width in [1u32, 2, 8] {
                evaluate(w, level, &Machine::issue(width)).unwrap_or_else(|e| {
                    panic!("{} {level} issue-{width}: {e}", w.meta.name)
                });
                checked += 1;
            }
        }
    }
    assert_eq!(checked, 40 * Level::ALL.len() * 3);
}

#[test]
fn unusual_trip_counts_survive_preconditioning() {
    // Trip counts around the unroll factor exercise every preconditioning
    // path: rem = 0, rem = n-1, main loop skipped entirely.
    for meta in table2() {
        if !matches!(meta.name, "add" | "dotprod" | "maxval" | "LWS-1") {
            continue;
        }
        for scale in [0.001, 0.007, 0.009] {
            // max(8, iters*scale) in the builder keeps this >= 8; vary a
            // few small sizes near the unroll factor.
            let w = build(&meta, scale);
            for level in [Level::Lev1, Level::Lev4] {
                evaluate(&w, level, &Machine::issue(4)).unwrap_or_else(|e| {
                    panic!("{} scale {scale} {level}: {e}", meta.name)
                });
            }
        }
    }
}

#[test]
fn wider_issue_never_slows_down() {
    for w in build_all(0.04) {
        for level in [Level::Conv, Level::Lev2, Level::Lev4] {
            let c1 = evaluate(&w, level, &Machine::issue(1)).unwrap().cycles;
            let c4 = evaluate(&w, level, &Machine::issue(4)).unwrap().cycles;
            let c8 = evaluate(&w, level, &Machine::issue(8)).unwrap().cycles;
            assert!(
                c8 <= c4 && c4 <= c1,
                "{} {level}: {c1} / {c4} / {c8}",
                w.meta.name
            );
        }
    }
}

#[test]
fn results_identical_across_widths() {
    // Issue width must never change architectural results, only timing.
    use ilp_compiler::harness::compile::compile;
    use ilp_compiler::sim::{memory_from_init, simulate};
    for name in ["merge", "tomcatv-2", "NAS-6"] {
        let meta = table2().into_iter().find(|m| m.name == name).unwrap();
        let w = build(&meta, 0.05);
        let mut mems = Vec::new();
        for width in [1u32, 8] {
            let m = Machine::issue(width);
            let c = compile(&w, Level::Lev4, &m);
            let mem = memory_from_init(&c.module.symtab, &w.init);
            let r = simulate(&c.module, &m, mem, 50_000_000).unwrap();
            mems.push(r.memory);
        }
        assert_eq!(mems[0], mems[1], "{name}: memory image differs by width");
    }
}
