//! Property tests over the list scheduler: for randomly generated blocks
//! and machine configurations, the produced schedule must pass the
//! independent validator (permutation correctness, monotone issue times,
//! issue-width / branch-slot / functional-unit limits, and every dependence
//! edge's minimum delay).

use ilp_compiler::machine::Machine;
use ilp_compiler::sched::{schedule_insts, validate_schedule};
use ilpc_ir::inst::{Inst, MemLoc};
use ilpc_ir::{BlockId, Cond, Opcode, Operand, Reg, SymId};
use ilpc_testkit::prop::{check, Config, Source};

/// Case count per property — matches the proptest originals.
const CASES: u32 = 256;

/// A recipe for one random instruction over a small register pool.
#[derive(Debug, Clone)]
enum InstKind {
    IntAlu { op: u8, dst: u8, a: u8, b: u8 },
    Flt { op: u8, dst: u8, a: u8, b: u8 },
    Load { dst: u8, sym: u8, off: i8 },
    Store { val: u8, sym: u8, off: i8 },
    Branch { cond: u8, a: u8, b: u8 },
}

fn gen_inst(s: &mut Source) -> InstKind {
    match s.weighted(&[4, 4, 3, 2, 1]) {
        0 => InstKind::IntAlu {
            op: s.range_i64(0, 4) as u8,
            dst: s.range_i64(0, 6) as u8,
            a: s.range_i64(0, 6) as u8,
            b: s.range_i64(0, 6) as u8,
        },
        1 => InstKind::Flt {
            op: s.range_i64(0, 4) as u8,
            dst: s.range_i64(0, 6) as u8,
            a: s.range_i64(0, 6) as u8,
            b: s.range_i64(0, 6) as u8,
        },
        2 => InstKind::Load {
            dst: s.range_i64(0, 6) as u8,
            sym: s.range_i64(0, 2) as u8,
            off: s.range_i64(-4, 8) as i8,
        },
        3 => InstKind::Store {
            val: s.range_i64(0, 6) as u8,
            sym: s.range_i64(0, 2) as u8,
            off: s.range_i64(-4, 8) as i8,
        },
        _ => InstKind::Branch {
            cond: s.range_i64(0, 4) as u8,
            a: s.range_i64(0, 6) as u8,
            b: s.range_i64(0, 6) as u8,
        },
    }
}

fn materialize(kinds: &[InstKind]) -> Vec<Inst> {
    let int_ops = [Opcode::Add, Opcode::Sub, Opcode::Mul, Opcode::Div];
    let flt_ops = [Opcode::FAdd, Opcode::FSub, Opcode::FMul, Opcode::FDiv];
    let conds = [Cond::Lt, Cond::Ge, Cond::Eq, Cond::Ne];
    kinds
        .iter()
        .map(|k| match *k {
            InstKind::IntAlu { op, dst, a, b } => Inst::alu(
                int_ops[op as usize],
                Reg::int(dst as u32),
                Reg::int(a as u32).into(),
                Reg::int(b as u32).into(),
            ),
            InstKind::Flt { op, dst, a, b } => Inst::alu(
                flt_ops[op as usize],
                Reg::flt(dst as u32),
                Reg::flt(a as u32).into(),
                Reg::flt(b as u32).into(),
            ),
            InstKind::Load { dst, sym, off } => Inst::load(
                Reg::flt(dst as u32),
                Operand::Sym(SymId(sym as u32)),
                Operand::ImmI(off as i64),
                MemLoc::affine(SymId(sym as u32), 1, off as i64),
            ),
            InstKind::Store { val, sym, off } => Inst::store(
                Operand::Sym(SymId(sym as u32)),
                Operand::ImmI(off as i64),
                Reg::flt(val as u32).into(),
                MemLoc::affine(SymId(sym as u32), 1, off as i64),
            ),
            InstKind::Branch { cond, a, b } => Inst::br(
                conds[cond as usize],
                Reg::int(a as u32).into(),
                Reg::int(b as u32).into(),
                BlockId(0),
            ),
        })
        .collect()
}

#[test]
fn random_schedules_validate() {
    check("random_schedules_validate", &Config::cases(CASES), |s| {
        let kinds = s.vec_of(1, 40, gen_inst);
        let width = s.range_u32(1, 10);
        let branch_slots = s.range_u32(1, 3);
        let mem_ports =
            if s.flag() { u32::MAX } else { s.range_u32(1, 4) };
        let fp_units =
            if s.flag() { u32::MAX } else { s.range_u32(1, 4) };
        let spec_loads = s.flag();

        let insts = materialize(&kinds);
        let mut machine = Machine::issue(width);
        machine.branch_slots = branch_slots;
        machine.fu.mem = mem_ports;
        machine.fu.fp = fp_units;
        machine.nonexcepting_loads = spec_loads;

        // The same policy the scheduler uses internally (empty live sets:
        // everything dead at targets, so speculation hinges on op class).
        let can_cross = move |_b: &Inst, later: &Inst| {
            later.can_speculate(spec_loads)
        };
        let sched = schedule_insts(&insts, &machine, &|_| {
            ilp_compiler::analysis::RegSet::new()
        });
        validate_schedule(&insts, &sched, &machine, &can_cross).map_err(|e| {
            format!(
                "{e}\nwidth={width} branch_slots={branch_slots} \
                 mem_ports={mem_ports} fp_units={fp_units} \
                 spec_loads={spec_loads}\nkinds: {kinds:#?}"
            )
        })
    });
}

/// The schedule never regresses: makespan under a wider machine is at
/// most the makespan under a narrower one.
#[test]
fn wider_machines_never_lengthen_schedules() {
    check(
        "wider_machines_never_lengthen_schedules",
        &Config::cases(CASES),
        |s| {
            let kinds = s.vec_of(1, 30, gen_inst);
            let insts = materialize(&kinds);
            let mut prev = u32::MAX;
            for width in [1u32, 2, 4, 8, 16] {
                let m = Machine::issue(width);
                let sched = schedule_insts(&insts, &m, &|_| {
                    ilp_compiler::analysis::RegSet::new()
                });
                let len = sched.length();
                if len > prev {
                    return Err(format!(
                        "width {width}: {len} > {prev}\nkinds: {kinds:#?}"
                    ));
                }
                prev = len;
            }
            Ok(())
        },
    );
}
