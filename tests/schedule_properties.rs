//! Property tests over the list scheduler: for randomly generated blocks
//! and machine configurations, the produced schedule must pass the
//! independent validator (permutation correctness, monotone issue times,
//! issue-width / branch-slot / functional-unit limits, and every dependence
//! edge's minimum delay).

use ilp_compiler::machine::Machine;
use ilp_compiler::sched::{schedule_insts, validate_schedule};
use ilpc_ir::inst::{Inst, MemLoc};
use ilpc_ir::{BlockId, Cond, Opcode, Operand, Reg, SymId};
use proptest::prelude::*;

/// A recipe for one random instruction over a small register pool.
#[derive(Debug, Clone)]
enum InstKind {
    IntAlu { op: u8, dst: u8, a: u8, b: u8 },
    Flt { op: u8, dst: u8, a: u8, b: u8 },
    Load { dst: u8, sym: u8, off: i8 },
    Store { val: u8, sym: u8, off: i8 },
    Branch { cond: u8, a: u8, b: u8 },
}

fn inst_strategy() -> impl Strategy<Value = InstKind> {
    prop_oneof![
        4 => (0u8..4, 0u8..6, 0u8..6, 0u8..6)
            .prop_map(|(op, dst, a, b)| InstKind::IntAlu { op, dst, a, b }),
        4 => (0u8..4, 0u8..6, 0u8..6, 0u8..6)
            .prop_map(|(op, dst, a, b)| InstKind::Flt { op, dst, a, b }),
        3 => (0u8..6, 0u8..2, -4i8..8)
            .prop_map(|(dst, sym, off)| InstKind::Load { dst, sym, off }),
        2 => (0u8..6, 0u8..2, -4i8..8)
            .prop_map(|(val, sym, off)| InstKind::Store { val, sym, off }),
        1 => (0u8..4, 0u8..6, 0u8..6)
            .prop_map(|(cond, a, b)| InstKind::Branch { cond, a, b }),
    ]
}

fn materialize(kinds: &[InstKind]) -> Vec<Inst> {
    let int_ops = [Opcode::Add, Opcode::Sub, Opcode::Mul, Opcode::Div];
    let flt_ops = [Opcode::FAdd, Opcode::FSub, Opcode::FMul, Opcode::FDiv];
    let conds = [Cond::Lt, Cond::Ge, Cond::Eq, Cond::Ne];
    kinds
        .iter()
        .map(|k| match *k {
            InstKind::IntAlu { op, dst, a, b } => Inst::alu(
                int_ops[op as usize],
                Reg::int(dst as u32),
                Reg::int(a as u32).into(),
                Reg::int(b as u32).into(),
            ),
            InstKind::Flt { op, dst, a, b } => Inst::alu(
                flt_ops[op as usize],
                Reg::flt(dst as u32),
                Reg::flt(a as u32).into(),
                Reg::flt(b as u32).into(),
            ),
            InstKind::Load { dst, sym, off } => Inst::load(
                Reg::flt(dst as u32),
                Operand::Sym(SymId(sym as u32)),
                Operand::ImmI(off as i64),
                MemLoc::affine(SymId(sym as u32), 1, off as i64),
            ),
            InstKind::Store { val, sym, off } => Inst::store(
                Operand::Sym(SymId(sym as u32)),
                Operand::ImmI(off as i64),
                Reg::flt(val as u32).into(),
                MemLoc::affine(SymId(sym as u32), 1, off as i64),
            ),
            InstKind::Branch { cond, a, b } => Inst::br(
                conds[cond as usize],
                Reg::int(a as u32).into(),
                Reg::int(b as u32).into(),
                BlockId(0),
            ),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn random_schedules_validate(
        kinds in prop::collection::vec(inst_strategy(), 1..40),
        width in 1u32..10,
        branch_slots in 1u32..3,
        mem_ports in prop_oneof![Just(u32::MAX), (1u32..4).prop_map(|x| x)],
        fp_units in prop_oneof![Just(u32::MAX), (1u32..4).prop_map(|x| x)],
        spec_loads in any::<bool>(),
    ) {
        let insts = materialize(&kinds);
        let mut machine = Machine::issue(width);
        machine.branch_slots = branch_slots;
        machine.fu.mem = mem_ports;
        machine.fu.fp = fp_units;
        machine.nonexcepting_loads = spec_loads;

        // The same policy the scheduler uses internally (empty live sets:
        // everything dead at targets, so speculation hinges on op class).
        let can_cross = move |_b: &Inst, later: &Inst| {
            later.can_speculate(spec_loads)
        };
        let sched = schedule_insts(&insts, &machine, &|_| {
            ilp_compiler::analysis::RegSet::new()
        });
        validate_schedule(&insts, &sched, &machine, &can_cross)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
    }

    /// The schedule never regresses: makespan under a wider machine is at
    /// most the makespan under a narrower one.
    #[test]
    fn wider_machines_never_lengthen_schedules(
        kinds in prop::collection::vec(inst_strategy(), 1..30),
    ) {
        let insts = materialize(&kinds);
        let mut prev = u32::MAX;
        for width in [1u32, 2, 4, 8, 16] {
            let m = Machine::issue(width);
            let s = schedule_insts(&insts, &m, &|_| {
                ilp_compiler::analysis::RegSet::new()
            });
            let len = s.length();
            prop_assert!(len <= prev, "width {width}: {len} > {prev}");
            prev = len;
        }
    }
}
