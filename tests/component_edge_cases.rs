//! Edge-case coverage across components, exercised through the public API:
//! unusual loop bounds, degenerate expressions, empty-ish programs, deep
//! nesting, tag disambiguation corners, and simulator interlock corners
//! that the main workloads do not hit.

use ilp_compiler::harness::compile::compile;
use ilp_compiler::prelude::*;
use ilp_compiler::sim::{memory_from_init, read_symbol, simulate};
use ilpc_ir::ast::ArrId;
use ilpc_workloads::Workload;

fn run_all_levels(p: Program, init: DataInit) {
    let w = Workload { meta: table2()[0].clone(), program: p, init };
    for level in Level::ALL {
        evaluate(&w, level, &Machine::issue(8))
            .unwrap_or_else(|e| panic!("{level}: {e}"));
    }
}

#[test]
fn empty_body_program() {
    let mut p = Program::new("empty");
    let _a = p.flt_arr("A", 4);
    p.body = vec![];
    run_all_levels(p, DataInit::new());
}

#[test]
fn loop_with_one_iteration() {
    let mut p = Program::new("one");
    let i = p.int_var("i");
    let a = p.flt_arr("A", 8);
    p.body = vec![Stmt::For {
        var: i,
        lo: Bound::Const(3),
        hi: Bound::Const(3),
        body: vec![Stmt::SetArr(a, Index::var(i), Expr::Cf(7.0))],
    }];
    run_all_levels(p, DataInit::new());
}

#[test]
fn negative_loop_bounds() {
    // DO i = -5, 5 writing A(i+6).
    let mut p = Program::new("neg");
    let i = p.int_var("i");
    let a = p.flt_arr("A", 16);
    p.body = vec![Stmt::For {
        var: i,
        lo: Bound::Const(-5),
        hi: Bound::Const(5),
        body: vec![Stmt::SetArr(
            a,
            Index::var(i).offset(6),
            Expr::Cvt(Box::new(Expr::Var(i))),
        )],
    }];
    run_all_levels(p, DataInit::new());
}

#[test]
fn four_deep_nest() {
    let mut p = Program::new("deep");
    let vars: Vec<_> = (0..4).map(|k| p.int_var(&format!("v{k}"))).collect();
    let a = p.flt_arr("A", 64);
    let mut body = vec![Stmt::SetArr(
        a,
        Index::var(vars[3]).plus(vars[0], 16),
        Expr::add(
            Expr::at(a, Index::var(vars[3]).plus(vars[0], 16)),
            Expr::Cf(1.0),
        ),
    )];
    for v in vars.iter().rev() {
        body = vec![Stmt::For {
            var: *v,
            lo: Bound::Const(0),
            hi: Bound::Const(2),
            body,
        }];
    }
    p.body = body;
    run_all_levels(p, DataInit::new());
}

#[test]
fn nested_ifs_in_loop() {
    let mut p = Program::new("nested_if");
    let i = p.int_var("i");
    let s = p.flt_var("s");
    let a = p.flt_arr("A", 40);
    p.body = vec![Stmt::For {
        var: i,
        lo: Bound::Const(0),
        hi: Bound::Const(31),
        body: vec![Stmt::If {
            cond: (Cond::Gt, Expr::at(a, Index::var(i)), Expr::Cf(0.5)),
            then: vec![Stmt::If {
                cond: (Cond::Lt, Expr::at(a, Index::var(i)), Expr::Cf(0.8)),
                then: vec![Stmt::SetScalar(
                    s,
                    Expr::add(Expr::Var(s), Expr::at(a, Index::var(i))),
                )],
                els: vec![Stmt::SetScalar(
                    s,
                    Expr::sub(Expr::Var(s), Expr::Cf(0.1)),
                )],
                prob: 0.5,
            }],
            els: vec![],
            prob: 0.5,
        }],
    }];
    let init = DataInit::new().with_array(
        ArrId(0),
        ArrayVal::F((0..40).map(|k| (k % 10) as f64 / 10.0).collect()),
    );
    run_all_levels(p, init);
}

#[test]
fn integer_workload_with_division() {
    let mut p = Program::new("intdiv");
    let i = p.int_var("i");
    let a = p.int_arr("A", 32);
    let d = p.int_arr("D", 32);
    p.body = vec![Stmt::For {
        var: i,
        lo: Bound::Const(0),
        hi: Bound::Const(31),
        body: vec![
            Stmt::SetArr(
                d,
                Index::var(i),
                Expr::add(
                    Expr::div(Expr::at(a, Index::var(i)), Expr::Ci(3)),
                    Expr::rem(Expr::at(a, Index::var(i)), Expr::Ci(5)),
                ),
            ),
        ],
    }];
    let init = DataInit::new().with_array(
        ArrId(0),
        ArrayVal::I((0..32).map(|k| k * 7 - 50).collect()),
    );
    run_all_levels(p, init);
}

#[test]
fn same_array_read_write_distinct_strides() {
    // A(2i) = A(2i+1): strided in-place, tags with coef 2 and offsets 0/1.
    let mut p = Program::new("stride2");
    let i = p.int_var("i");
    let a = p.flt_arr("A", 80);
    p.body = vec![Stmt::For {
        var: i,
        lo: Bound::Const(0),
        hi: Bound::Const(30),
        body: vec![Stmt::SetArr(
            a,
            Index::default().plus(i, 2),
            Expr::at(a, Index::default().plus(i, 2).offset(1)),
        )],
    }];
    let init = DataInit::new().with_array(
        ArrId(0),
        ArrayVal::F((0..80).map(|k| k as f64).collect()),
    );
    run_all_levels(p, init);
}

#[test]
fn scalar_chain_through_loop_body() {
    // t feeds the next statement within an iteration (no carry).
    let mut p = Program::new("chain");
    let i = p.int_var("i");
    let t = p.flt_var("t");
    let u = p.flt_var("u");
    let a = p.flt_arr("A", 40);
    let d = p.flt_arr("D", 40);
    p.body = vec![Stmt::For {
        var: i,
        lo: Bound::Const(0),
        hi: Bound::Const(31),
        body: vec![
            Stmt::SetScalar(t, Expr::mul(Expr::at(a, Index::var(i)), Expr::Cf(2.0))),
            Stmt::SetScalar(u, Expr::add(Expr::Var(t), Expr::Cf(1.0))),
            Stmt::SetArr(d, Index::var(i), Expr::mul(Expr::Var(u), Expr::Var(t))),
        ],
    }];
    let init = DataInit::new().with_array(
        ArrId(0),
        ArrayVal::F((0..40).map(|k| 0.25 * k as f64).collect()),
    );
    run_all_levels(p, init);
}

#[test]
fn compiled_code_static_growth_is_bounded() {
    // Unrolling multiplies code size; the cap keeps it bounded.
    for name in ["add", "NAS-5", "doduc-1"] {
        let meta = table2().into_iter().find(|m| m.name == name).unwrap();
        let w = build(&meta, 0.1);
        let conv = compile(&w, Level::Conv, &Machine::issue(8));
        let lev4 = compile(&w, Level::Lev4, &Machine::issue(8));
        let growth = lev4.static_insts as f64 / conv.static_insts as f64;
        assert!(
            growth < 30.0,
            "{name}: static growth {growth:.1}x ({} -> {})",
            conv.static_insts,
            lev4.static_insts
        );
    }
}

#[test]
fn simulator_waw_interlock_orders_completions() {
    // div (10 cycles) then mov to the same register: the mov's write must
    // not be overtaken; a dependent store sees the mov's value, and the
    // read cannot issue before the div completes.
    use ilpc_ir::inst::{Inst, MemLoc};
    use ilpc_ir::{Opcode, Operand, RegClass};
    let mut m = Module::new("waw");
    let out = m.symtab.declare("out", 1, RegClass::Int);
    let f = &mut m.func;
    let x = f.new_reg(RegClass::Int);
    let b = f.add_block("b");
    f.block_mut(b).insts.extend([
        Inst::alu(Opcode::Div, x, Operand::ImmI(100), Operand::ImmI(3)),
        Inst::mov(x, Operand::ImmI(7)),
        Inst::store(Operand::Sym(out), Operand::ImmI(0), x.into(), MemLoc::affine(out, 0, 0)),
        Inst::halt(),
    ]);
    let machine = Machine::issue(8);
    let r = simulate(&m, &machine, vec![0], 100).unwrap();
    assert_eq!(read_symbol(&m.symtab, &r.memory, out), ArrayVal::I(vec![7]));
    // div at 0 (ready 10); mov must complete after: issue >= 10; store >= 11.
    assert!(r.cycles >= 12, "cycles = {}", r.cycles);
}

#[test]
fn memory_image_helpers_roundtrip() {
    let mut p = Program::new("img");
    let a = p.int_arr("A", 3);
    let b = p.flt_arr("B", 2);
    p.body = vec![];
    let init = DataInit::new()
        .with_array(a, ArrayVal::I(vec![1, -2, 3]))
        .with_array(b, ArrayVal::F(vec![0.5, -0.25]));
    let l = ilp_compiler::ir::lower::lower(&p);
    let mem = memory_from_init(&l.module.symtab, &init);
    assert_eq!(
        read_symbol(&l.module.symtab, &mem, l.arr_syms[0]),
        ArrayVal::I(vec![1, -2, 3])
    );
    assert_eq!(
        read_symbol(&l.module.symtab, &mem, l.arr_syms[1]),
        ArrayVal::F(vec![0.5, -0.25])
    );
}
