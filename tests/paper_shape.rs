//! Qualitative reproduction of the paper's §3.2 findings on a scaled grid.
//!
//! The absolute numbers depend on the synthesized loop bodies; these tests
//! pin the *shape* of the results — which configuration wins, where the
//! gains come from, and how register pressure moves — which is what the
//! paper's conclusions rest on.

use ilp_compiler::harness::grid::{run_grid, Grid, GridConfig};
use ilp_compiler::prelude::*;

fn grid() -> Grid {
    let cfg = GridConfig {
        scale: 0.15,
        levels: Level::ALL.to_vec(),
        widths: vec![1, 2, 4, 8],
        threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
        ..GridConfig::default()
    };
    let g = run_grid(&cfg).expect("grid config rejected");
    assert!(g.errors.is_empty(), "{:#?}", g.errors);
    g
}

fn mean<'a>(
    g: &Grid,
    names: impl Iterator<Item = &'a str>,
    level: Level,
    width: u32,
) -> f64 {
    g.mean_speedup(names, level, width)
        .complete()
        .expect("clean grid must aggregate completely")
}

#[test]
fn paper_findings_hold() {
    let g = grid();
    let all = || g.meta.iter().map(|m| m.name);
    let doall = || g.meta.iter().filter(|m| m.ltype.is_doall()).map(|m| m.name);
    let nondoall =
        || g.meta.iter().filter(|m| !m.ltype.is_doall()).map(|m| m.name);

    // 1. "Increasing execution resources yields little performance
    //    improvement unless loop unrolling and register renaming are
    //    applied": Conv on issue-8 gains far less than Lev2 on issue-8.
    let conv8 = mean(&g, all(), Level::Conv, 8);
    let lev2_8 = mean(&g, all(), Level::Lev2, 8);
    assert!(
        lev2_8 > conv8 * 1.6,
        "Lev2 {lev2_8:.2} should far exceed Conv {conv8:.2} on issue-8"
    );

    // 2. "These two transformations are sufficient for DOALL loops":
    //    Lev4 adds little over Lev2 for DOALL...
    let d2 = mean(&g, doall(), Level::Lev2, 8);
    let d4 = mean(&g, doall(), Level::Lev4, 8);
    assert!(d4 <= d2 * 1.45, "DOALL Lev2 {d2:.2} -> Lev4 {d4:.2}");
    // ... and DOALL loops approach the issue-8 bound with Lev2 alone.
    assert!(d2 > 4.0, "DOALL Lev2 speedup {d2:.2}");

    // 3. "More advanced transformations are required in order for serial
    //    and DOACROSS loops to fully benefit": Lev4 gives non-DOALL loops a
    //    much bigger relative boost over Lev2 than it gives DOALL loops.
    let n2 = mean(&g, nondoall(), Level::Lev2, 8);
    let n4 = mean(&g, nondoall(), Level::Lev4, 8);
    assert!(
        n4 / n2 > 1.25,
        "non-DOALL Lev4/{n4:.2} over Lev2/{n2:.2} should exceed 1.25x"
    );
    // DOALL still beats non-DOALL at every level (paper Figures 12 vs 14).
    assert!(d2 > n2 && d4 > n4);

    // 4. Levels are cumulative on average: each adds (or at least does not
    //    lose) performance at issue-8.
    let means: Vec<f64> = Level::ALL
        .iter()
        .map(|&l| mean(&g, all(), l, 8))
        .collect();
    for pair in means.windows(2) {
        assert!(pair[1] >= pair[0] * 0.97, "level means {means:?}");
    }

    // 5. "The need for higher levels of transformations increases as the
    //    processor issue rate increases": the Lev4-over-Lev2 gain grows
    //    with width.
    let gain = |w: u32| mean(&g, all(), Level::Lev4, w) / mean(&g, all(), Level::Lev2, w);
    assert!(
        gain(8) > gain(2) * 0.98,
        "lev4 gain at 8 ({:.2}) vs at 2 ({:.2})",
        gain(8),
        gain(2)
    );

    // 6. "The largest increase [in register usage] is due to register
    //    renaming" — the Lev1 -> Lev2 jump dominates all others.
    let regs: Vec<f64> = Level::ALL
        .iter()
        .map(|&l| g.mean_regs(all(), l, 8).complete().expect("complete grid"))
        .collect();
    let jumps: Vec<f64> = regs.windows(2).map(|w| w[1] - w[0]).collect();
    let lev2_jump = jumps[1];
    assert!(
        jumps.iter().all(|&j| j <= lev2_jump),
        "renaming jump should dominate: regs {regs:?}"
    );
    // Overall growth is in the paper's ~2-3.5x band.
    let growth = regs[4] / regs[0];
    assert!(
        (1.8..=4.0).contains(&growth),
        "register growth {growth:.2}x out of band"
    );

    // 7. Register usage stays practical (paper: 37/40 under 128 total).
    let under128 = g
        .meta
        .iter()
        .filter(|m| {
            g.point(m.name, Level::Lev4, 8)
                .map(|p| p.regs.total() < 128)
                .unwrap_or(false)
        })
        .count();
    assert!(under128 >= 36, "only {under128}/40 loops under 128 registers");

    // 8. Unbreakable recurrences stay slow even at Lev4 (LWS-2 is the
    //    first-order linear recurrence): ILP transformations cannot break
    //    true dependences.
    let lws2 = g.speedup("LWS-2", Level::Lev4, 8).unwrap();
    assert!(lws2 < 3.0, "LWS-2 should stay recurrence-bound, got {lws2:.2}");

    // 9. The expansion transformations rescue reductions: dotprod gains a
    //    lot from Lev4 relative to Lev2.
    let dp2 = g.speedup("dotprod", Level::Lev2, 8).unwrap();
    let dp4 = g.speedup("dotprod", Level::Lev4, 8).unwrap();
    assert!(dp4 > dp2 * 1.5, "dotprod {dp2:.2} -> {dp4:.2}");
}
