//! End-to-end supervision tests: a real `ilpc-pool` supervisor driving
//! real `ilpc-serve` worker *processes* armed with deterministic chaos
//! plans. These are the top-of-the-stack robustness checks for DESIGN.md
//! §18 — everything below (protocol, chaos plan, supervisor state
//! machine) has unit coverage in `crates/serve`; here we assert the
//! whole-system contract: one typed reply per request, no matter what
//! the workers do.
//!
//! The worker binary is `target/<profile>/ilpc-serve`; if the test
//! harness didn't build it (root `cargo test` only builds the root
//! package), we build it once via `cargo build -p ilpc-serve`.

use ilpc_serve::json::{parse, Json};
use ilpc_serve::{pool_lines, pool_script, BackoffCfg, PoolConfig};
use ilpc_testkit::{ChannelReader, SharedBuf};
use std::collections::BTreeMap;
use std::io::BufReader;
use std::path::PathBuf;
use std::sync::Once;

/// Make sure the `ilpc-serve` worker binary exists next to the test
/// profile dir, building it on first use. `PoolConfig::default()`
/// discovers it from there (`default_worker_exe`).
fn ensure_worker_built() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let exe = std::env::current_exe().expect("test exe path");
        // target/<profile>/deps/<test-bin> -> target/<profile>
        let profile_dir: PathBuf =
            exe.parent().and_then(|d| d.parent()).expect("target profile dir").to_path_buf();
        let worker = profile_dir.join("ilpc-serve");
        if worker.exists() {
            return;
        }
        let mut cmd = std::process::Command::new(env!("CARGO"));
        cmd.args(["build", "-p", "ilpc-serve", "--bin", "ilpc-serve", "--offline", "--quiet"])
            .current_dir(env!("CARGO_MANIFEST_DIR"));
        if profile_dir.file_name().is_some_and(|n| n == "release") {
            cmd.arg("--release");
        }
        let status = cmd.status().expect("cargo build ilpc-serve");
        assert!(status.success(), "building the ilpc-serve worker binary failed");
        assert!(worker.exists(), "worker binary missing after build: {}", worker.display());
    });
}

/// Fast supervision timings for tests: tight ticks and pings, near-zero
/// backoff so respawns don't dominate wall-clock.
fn fast_cfg() -> PoolConfig {
    PoolConfig {
        ping_interval_ms: 50,
        ping_misses: 2,
        tick_ms: 5,
        backoff: BackoffCfg { base_ms: 10, max_ms: 50, jitter_ms: 5, seed: 0x5EED },
        ..Default::default()
    }
}

fn index_by_id(replies: &[String]) -> BTreeMap<String, Vec<Json>> {
    let mut map: BTreeMap<String, Vec<Json>> = BTreeMap::new();
    for line in replies {
        let v = parse(line).unwrap_or_else(|e| panic!("unparseable reply {line:?}: {e}"));
        let id = match v.get("id") {
            Some(Json::Num(n)) => format!("{n}"),
            Some(Json::Str(s)) => s.clone(),
            _ => "null".to_string(),
        };
        map.entry(id).or_default().push(v);
    }
    map
}

fn error_kind(v: &Json) -> Option<String> {
    v.get("error")?.get("kind")?.as_str().map(str::to_string)
}

/// Deterministic kill campaign: every worker generation aborts while
/// handling its 3rd request. With 12 requests over 3 shards at least one
/// generation reaches its kill point, and retries land on other workers
/// — yet every id must get exactly one reply, every failure typed.
#[test]
fn kill_campaign_never_loses_or_duplicates_replies() {
    ensure_worker_built();
    let requests = 12usize;
    let cfg = PoolConfig {
        shards: 3,
        worker_args: vec![
            "--workers".into(),
            "1".into(),
            "--queue".into(),
            "32".into(),
            "--chaos".into(),
            "kill-nth=3,salt={shard}g{gen}".into(),
        ],
        queue: requests + 4,
        deadline_ms: 60_000,
        max_attempts: 2,
        ..fast_cfg()
    };

    // Drive interactively so the final `status` probe observes the
    // campaign's incidents (batch input would answer it at admission).
    let (tx, reader) = ChannelReader::new();
    let out = SharedBuf::new();
    let pool = {
        let cfg = cfg.clone();
        let mut sink = out.clone();
        std::thread::spawn(move || {
            let mut input = BufReader::new(reader);
            pool_lines(&cfg, &mut input, &mut sink).expect("pool run");
        })
    };
    let mut script = String::new();
    for id in 0..requests {
        let w = ["add", "sum", "dotprod", "maxval"][id % 4];
        script.push_str(&format!(
            "{{\"id\":{id},\"op\":\"simulate\",\"workload\":\"{w}\",\"level\":\"Lev2\",\"width\":4,\"scale\":0.02}}\n"
        ));
    }
    tx.send(script.into_bytes()).expect("pool alive");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    while out.lines().len() < requests {
        assert!(
            std::time::Instant::now() < deadline,
            "pool produced {}/{requests} replies before the test deadline (lost replies)",
            out.lines().len()
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    tx.send(format!("{{\"id\":{requests},\"op\":\"status\"}}\n").into_bytes())
        .expect("pool alive");
    drop(tx);
    pool.join().expect("pool thread");

    let by_id = index_by_id(&out.lines());
    for id in 0..=requests {
        let replies = by_id.get(&id.to_string()).map_or(0, Vec::len);
        assert_eq!(replies, 1, "id {id}: expected exactly one reply, got {replies}");
    }
    for (id, replies) in &by_id {
        let v = &replies[0];
        if v.get("ok") != Some(&Json::Bool(true)) {
            let kind = error_kind(v).unwrap_or_default();
            assert!(
                matches!(kind.as_str(), "timeout" | "unavailable" | "overloaded"),
                "id {id}: chaos must surface as a typed pool failure, got kind {kind:?}"
            );
        }
    }
    // Visibility: at least one shard saw 3 eligible requests (pigeonhole
    // over 12 requests / 3 shards), so at least one crash was recorded.
    let status = &by_id[&requests.to_string()][0];
    let incidents = status
        .get("result")
        .and_then(|r| r.get("incidents_total"))
        .and_then(Json::as_f64)
        .expect("status carries incidents_total");
    assert!(incidents >= 1.0, "kill campaign recorded no shard incidents");
}

/// A stalled worker (stops reading input, stops ponging — the SIGSTOP
/// analogue) must be detected by missed pings and its requests answered
/// with typed `timeout`/`unavailable`; the pool must still terminate.
#[test]
fn stalled_worker_is_detected_and_requests_fail_typed() {
    ensure_worker_built();
    let cfg = PoolConfig {
        shards: 1,
        worker_args: vec![
            "--workers".into(),
            "1".into(),
            "--queue".into(),
            "8".into(),
            "--chaos".into(),
            "stall=1.0".into(),
        ],
        queue: 8,
        deadline_ms: 1_500,
        max_attempts: 2,
        ..fast_cfg()
    };
    let script = concat!(
        r#"{"id":0,"op":"simulate","workload":"add","level":"Lev2","width":4,"scale":0.02}"#,
        "\n",
        r#"{"id":1,"op":"simulate","workload":"sum","level":"Lev2","width":4,"scale":0.02}"#,
        "\n",
    );
    let replies = pool_script(&cfg, script);
    let by_id = index_by_id(&replies);
    for id in 0..2 {
        let replies = by_id.get(&id.to_string()).map_or(0, Vec::len);
        assert_eq!(replies, 1, "id {id}: expected exactly one reply");
        let v = &by_id[&id.to_string()][0];
        assert_eq!(v.get("ok"), Some(&Json::Bool(false)), "id {id}: stall cannot produce ok");
        let kind = error_kind(v).unwrap_or_default();
        assert!(
            matches!(kind.as_str(), "timeout" | "unavailable"),
            "id {id}: expected timeout/unavailable, got {kind:?}"
        );
    }
}

/// Per-shard chaos arming: shard 1 kills itself on any sweep scenario,
/// and with the retry budget at 1 the split sweep must still merge —
/// with `shards:{covered:1,requested:2}` and a typed `shard_error` on
/// the lost scenario instead of a silently shrunken reply.
#[test]
fn sweep_on_a_dying_shard_degrades_to_partial_coverage() {
    ensure_worker_built();
    let cfg = PoolConfig {
        shards: 2,
        worker_args: vec!["--workers".into(), "1".into(), "--queue".into(), "8".into()],
        worker_extra: vec![Vec::new(), vec!["--chaos".into(), "kill-op=sweep".into()]],
        queue: 8,
        deadline_ms: 60_000,
        max_attempts: 1,
        ..fast_cfg()
    };
    let script = concat!(
        r#"{"id":7,"op":"sweep","scale":0.02,"levels":["Conv","Lev2"],"widths":[1,4],"#,
        r#""mems":[{"kind":"perfect"},{"kind":"cache","sets":16}]}"#,
        "\n",
    );
    let replies = pool_script(&cfg, script);
    let by_id = index_by_id(&replies);
    assert_eq!(by_id.get("7").map_or(0, Vec::len), 1, "split sweep must merge to one reply");
    let v = &by_id["7"][0];
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "degraded sweep still answers ok");
    let result = v.get("result").expect("sweep result");
    let coverage = result.get("shards").expect("coverage object");
    assert_eq!(coverage.get("covered").and_then(Json::as_f64), Some(1.0));
    assert_eq!(coverage.get("requested").and_then(Json::as_f64), Some(2.0));
    let scenarios = result.get("scenarios").and_then(Json::as_arr).expect("scenarios");
    assert_eq!(scenarios.len(), 2, "both scenario slots present even when one shard died");
    let errored: Vec<&Json> =
        scenarios.iter().filter(|s| s.get("shard_error").is_some()).collect();
    assert_eq!(errored.len(), 1, "exactly one scenario lost to the dying shard");
    let kind = errored[0]
        .get("shard_error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
        .unwrap_or("");
    assert_eq!(kind, "unavailable", "past the retry budget the scenario is unavailable");
    let healthy = scenarios.iter().find(|s| s.get("shard_error").is_none()).expect("one ok part");
    assert!(healthy.get("label").is_some(), "surviving scenario carries real sweep data");
}

/// `status` is answered by the pool itself and reports supervision
/// state: role, per-shard phase/generation, healthy count.
#[test]
fn status_reports_pool_role_and_shard_states() {
    ensure_worker_built();
    let cfg = PoolConfig {
        shards: 2,
        worker_args: vec!["--workers".into(), "1".into(), "--queue".into(), "8".into()],
        ..fast_cfg()
    };
    let replies =
        pool_script(&cfg, "{\"id\":0,\"op\":\"ping\"}\n{\"id\":1,\"op\":\"status\"}\n");
    let by_id = index_by_id(&replies);
    let pong = &by_id["0"][0];
    assert_eq!(pong.get("ok"), Some(&Json::Bool(true)));
    let status = &by_id["1"][0];
    let result = status.get("result").expect("status result");
    assert_eq!(result.get("role").and_then(Json::as_str), Some("pool"));
    let shards = result.get("shards").and_then(Json::as_arr).expect("shards array");
    assert_eq!(shards.len(), 2);
    for (i, s) in shards.iter().enumerate() {
        assert_eq!(s.get("shard").and_then(Json::as_f64), Some(i as f64));
        assert_eq!(s.get("phase").and_then(Json::as_str), Some("up"), "shard {i} is up");
        assert!(s.get("generation").and_then(Json::as_f64).unwrap_or(0.0) >= 1.0);
    }
    assert_eq!(result.get("healthy").and_then(Json::as_f64), Some(2.0));
}

/// Unparseable client lines get a typed `bad-request` reply from the
/// pool itself — they never reach (or crash) a worker.
#[test]
fn garbage_client_line_gets_a_typed_bad_request() {
    ensure_worker_built();
    let cfg = PoolConfig {
        shards: 1,
        worker_args: vec!["--workers".into(), "1".into(), "--queue".into(), "8".into()],
        ..fast_cfg()
    };
    let replies = pool_script(&cfg, "this is not json\n{\"id\":9,\"op\":\"ping\"}\n");
    let by_id = index_by_id(&replies);
    let bad = &by_id["null"][0];
    assert_eq!(bad.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(error_kind(bad).as_deref(), Some("bad-request"));
    assert_eq!(by_id["9"][0].get("ok"), Some(&Json::Bool(true)), "pool keeps serving after");
}
