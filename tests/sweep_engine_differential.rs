//! Differential guarantee for the work-stealing grid engine.
//!
//! `run_grid` (per-worker deques, steal-half) replaced the fork-join
//! atomic-counter loop as the default engine; `run_grid_forkjoin` stays as
//! the executable oracle. The two must be indistinguishable on every
//! observable — the deterministic `(name, level, width)` point stream, the
//! measured [`EvalPoint`]s, the typed per-point error list, and every
//! coverage-carrying aggregate — across the full grid
//! (40 workloads × every level × widths {1, 4, 8}), under perfect memory,
//! under a finite cache, and with a sabotaged point degrading both engines
//! identically. One shared [`ArtifactCache`] feeds all six runs, so this
//! suite also proves scheduling order never leaks into compile artifacts.

use ilp_compiler::harness::{ArtifactCache, Grid};
use ilp_compiler::prelude::*;
use std::sync::Arc;

const SCALE: f64 = 0.02;
const WIDTHS: [u32; 3] = [1, 4, 8];
const POINTS: usize = 40 * Level::ALL.len() * 3;

fn full_cfg(
    mem: MemConfig,
    sabotage: Option<Sabotage>,
    cache: &Arc<ArtifactCache>,
) -> GridConfig {
    GridConfig {
        scale: SCALE,
        levels: Level::ALL.to_vec(),
        widths: WIDTHS.to_vec(),
        threads: 4,
        mem,
        sabotage,
        artifacts: Some(Arc::clone(cache)),
    }
}

/// Every observable of the two grids must match exactly.
fn assert_grids_identical(tag: &str, ws: &Grid, fj: &Grid) {
    assert_eq!(ws.levels, fj.levels, "{tag}: levels");
    assert_eq!(ws.widths, fj.widths, "{tag}: widths");
    assert_eq!(ws.completed(), fj.completed(), "{tag}: completed count");

    let ws_points: Vec<_> = ws.iter_points().collect();
    let fj_points: Vec<_> = fj.iter_points().collect();
    assert_eq!(ws_points.len(), fj_points.len(), "{tag}: point stream length");
    for (a, b) in ws_points.iter().zip(&fj_points) {
        assert_eq!(a, b, "{tag}: point stream diverged");
    }

    let sort_key =
        |e: &ilp_compiler::harness::grid::GridError| (e.workload.clone(), e.level, e.width);
    let mut ws_errors = ws.errors.clone();
    let mut fj_errors = fj.errors.clone();
    ws_errors.sort_by_key(sort_key);
    fj_errors.sort_by_key(sort_key);
    assert_eq!(ws_errors, fj_errors, "{tag}: typed error list");

    // Aggregates (value AND coverage) agree at every coordinate.
    let names: Vec<&str> = ws.meta.iter().map(|m| m.name).collect();
    for &level in Level::ALL.iter() {
        for width in WIDTHS {
            assert_eq!(
                ws.mean_speedup(names.iter().copied(), level, width),
                fj.mean_speedup(names.iter().copied(), level, width),
                "{tag}: mean_speedup at ({level}, issue-{width})"
            );
            assert_eq!(
                ws.mean_regs(names.iter().copied(), level, width),
                fj.mean_regs(names.iter().copied(), level, width),
                "{tag}: mean_regs at ({level}, issue-{width})"
            );
        }
    }
}

/// The one differential drive: six full grids (work-stealing and fork-join
/// under perfect memory, a finite cache, and panic sabotage) off a single
/// shared artifact cache. Sequential on purpose — sharing the cache across
/// all runs is itself under test.
#[test]
fn worksteal_equals_forkjoin_on_full_grid() {
    let cache = Arc::new(ArtifactCache::new());

    // Perfect memory: the paper's model.
    let cfg = full_cfg(MemConfig::Perfect, None, &cache);
    let ws = run_grid(&cfg).expect("valid config");
    let fj = run_grid_forkjoin(&cfg).expect("valid config");
    assert_eq!(ws.completed(), POINTS, "perfect: full grid completes");
    assert!(ws.errors.is_empty(), "perfect: {:?}", ws.errors);
    assert_grids_identical("perfect", &ws, &fj);

    // Finite cache: miss latencies perturb every cycle count, and the
    // engines must still agree point for point.
    let cfg = full_cfg(MemConfig::Cache(CacheParams::small()), None, &cache);
    let ws = run_grid(&cfg).expect("valid config");
    let fj = run_grid_forkjoin(&cfg).expect("valid config");
    assert_eq!(ws.completed(), POINTS, "cached: full grid completes");
    assert!(ws.errors.is_empty(), "cached: {:?}", ws.errors);
    assert_grids_identical("cached", &ws, &fj);
    // Memory hierarchy is not compile-relevant, so the cached grids reuse
    // the perfect grids' artifacts instead of recompiling.
    let counters = cache.counters();
    assert!(
        counters.hits >= counters.compiles,
        "cross-run artifact reuse missing: {counters:?}"
    );

    // A sabotaged point must degrade both engines to the same typed error
    // while every other point stays identical.
    let sabotage = Sabotage {
        workload: "dotprod".to_string(),
        level: Level::Lev3,
        width: 8,
        mode: SabotageMode::Panic,
    };
    let cfg = full_cfg(MemConfig::Perfect, Some(sabotage), &cache);
    let ws = run_grid(&cfg).expect("valid config");
    let fj = run_grid_forkjoin(&cfg).expect("valid config");
    assert_eq!(ws.completed(), POINTS - 1, "sabotage: one hole");
    assert_eq!(ws.errors.len(), 1);
    assert_eq!(ws.errors[0].workload, "dotprod");
    assert!(matches!(
        ws.errors[0].error,
        ilp_compiler::harness::grid::PointError::Panic(_)
    ));
    assert_grids_identical("sabotaged", &ws, &fj);
    assert!(ws.point("dotprod", Level::Lev3, 8).is_none());
    // Coverage accounting carries the hole identically in both engines.
    let names: Vec<&str> = ws.meta.iter().map(|m| m.name).collect();
    let agg = ws.mean_speedup(names.iter().copied(), Level::Lev3, 8);
    assert_eq!((agg.covered(), agg.requested()), (39, 40));
}
