//! Per-run memory-hierarchy statistics.

/// Counters accumulated by a [`crate::MemModel`] over one simulation.
///
/// The structural invariant `accesses() == hits() + misses()` holds by
/// construction: hits are derived, never counted independently.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MemStats {
    /// Executed loads routed through the model.
    pub loads: u64,
    /// Executed stores routed through the model.
    pub stores: u64,
    /// Loads that missed the first-level cache.
    pub load_misses: u64,
    /// Stores that missed the first-level cache.
    pub store_misses: u64,
    /// Valid lines displaced from the L1 by a fill.
    pub evictions: u64,
    /// Dirty lines written back (L1 and L2) on displacement.
    pub writebacks: u64,
    /// Total extra stall cycles charged to misses.
    pub miss_cycles: u64,
    /// L1-miss accesses that probed the L2 (0 when no L2 is configured).
    pub l2_accesses: u64,
    /// L2 probes that missed (went to memory).
    pub l2_misses: u64,
}

impl MemStats {
    /// Total accesses (loads + stores).
    pub fn accesses(&self) -> u64 {
        self.loads + self.stores
    }

    /// First-level misses (load + store misses).
    pub fn misses(&self) -> u64 {
        self.load_misses + self.store_misses
    }

    /// First-level hits (`accesses - misses`).
    pub fn hits(&self) -> u64 {
        self.accesses() - self.misses()
    }

    /// First-level hit rate in [0, 1]; 1.0 for an access-free run.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            1.0
        } else {
            self.hits() as f64 / self.accesses() as f64
        }
    }

    /// Merge another run's counters into this one (grid aggregation).
    pub fn merge(&mut self, other: &MemStats) {
        self.loads += other.loads;
        self.stores += other.stores;
        self.load_misses += other.load_misses;
        self.store_misses += other.store_misses;
        self.evictions += other.evictions;
        self.writebacks += other.writebacks;
        self.miss_cycles += other.miss_cycles;
        self.l2_accesses += other.l2_accesses;
        self.l2_misses += other.l2_misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_counters_and_merge() {
        let a = MemStats { loads: 10, stores: 5, load_misses: 3, store_misses: 1, ..Default::default() };
        assert_eq!(a.accesses(), 15);
        assert_eq!(a.misses(), 4);
        assert_eq!(a.hits(), 11);
        assert_eq!(a.accesses(), a.hits() + a.misses());
        assert!((a.hit_rate() - 11.0 / 15.0).abs() < 1e-12);

        let mut sum = MemStats::default();
        assert_eq!(sum.hit_rate(), 1.0, "empty run counts as all-hit");
        sum.merge(&a);
        sum.merge(&a);
        assert_eq!(sum.accesses(), 30);
        assert_eq!(sum.misses(), 8);
    }
}
