//! Set-associative write-back, write-allocate cache model (L1 + optional
//! unified L2), LRU replacement, deterministic by construction.
//!
//! Geometry is given in *words* (the simulator's memory is word-addressed):
//! a line of `line_words = 4` is 32 bytes on a 64-bit machine. All geometry
//! fields are normalized to powers of two and clamped to at least 1 — a
//! "zero-way" or "zero-set" cache is meaningless, not a crash.

use crate::stats::MemStats;
use crate::{Access, MemModel};

/// Geometry of one cache level: `line_words × sets × ways`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    /// Words per line (rounded up to a power of two, min 1).
    pub line_words: u32,
    /// Number of sets (rounded up to a power of two, min 1).
    pub sets: u32,
    /// Associativity (clamped to min 1 — the "zero-way clamp").
    pub ways: u32,
}

impl CacheGeometry {
    pub fn new(line_words: u32, sets: u32, ways: u32) -> CacheGeometry {
        CacheGeometry { line_words, sets, ways }
    }

    /// Power-of-two / non-zero normalization applied before use.
    pub fn normalized(self) -> CacheGeometry {
        CacheGeometry {
            line_words: self.line_words.max(1).next_power_of_two(),
            sets: self.sets.max(1).next_power_of_two(),
            ways: self.ways.max(1),
        }
    }

    /// Total capacity in words (after normalization).
    pub fn size_words(&self) -> u64 {
        let g = self.normalized();
        g.line_words as u64 * g.sets as u64 * g.ways as u64
    }
}

/// Parameters for [`CacheMem`]: L1 geometry, miss latencies, optional L2.
///
/// Miss latencies are the *extra* cycles an access stalls beyond its
/// pipeline latency when serviced from main memory. An access that misses
/// L1 but hits a configured L2 pays [`L2Params::hit_latency`] instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheParams {
    pub l1: CacheGeometry,
    /// Extra cycles for a load serviced from memory.
    pub load_miss_latency: u32,
    /// Extra cycles for a store serviced from memory (write-allocate).
    pub store_miss_latency: u32,
    /// Optional unified second-level cache.
    pub l2: Option<L2Params>,
}

/// Unified L2: geometry plus the (cheaper) L1-miss/L2-hit latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct L2Params {
    pub geom: CacheGeometry,
    /// Extra cycles for an access that misses L1 but hits L2.
    pub hit_latency: u32,
}

impl CacheParams {
    pub fn new(
        line_words: u32,
        sets: u32,
        ways: u32,
        load_miss_latency: u32,
        store_miss_latency: u32,
    ) -> CacheParams {
        CacheParams {
            l1: CacheGeometry::new(line_words, sets, ways),
            load_miss_latency,
            store_miss_latency,
            l2: None,
        }
    }

    /// Add a unified L2 behind the L1.
    pub fn with_l2(mut self, line_words: u32, sets: u32, ways: u32, hit_latency: u32) -> CacheParams {
        self.l2 = Some(L2Params { geom: CacheGeometry::new(line_words, sets, ways), hit_latency });
        self
    }

    /// A small L1: 4-word lines × 16 sets × 2 ways = 128 words (1 KiB),
    /// 30-cycle load miss / 10-cycle store miss.
    pub fn small() -> CacheParams {
        CacheParams::new(4, 16, 2, 30, 10)
    }

    /// Short display name (`L1:4x16x2/m30` or `...+L2:8x64x4/h8`).
    pub fn name(&self) -> String {
        let g = self.l1.normalized();
        let mut n = format!("L1:{}x{}x{}/m{}", g.line_words, g.sets, g.ways, self.load_miss_latency);
        if let Some(l2) = self.l2 {
            let g2 = l2.geom.normalized();
            n.push_str(&format!("+L2:{}x{}x{}/h{}", g2.line_words, g2.sets, g2.ways, l2.hit_latency));
        }
        n
    }
}

/// One cache line's bookkeeping (the model stores no data — the simulator's
/// flat memory is always architecturally current). Recency is positional:
/// within a set, way 0 is the most recently used and the last way the
/// least, so no per-line timestamp is needed.
#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    /// Full line address (`word_addr >> line_shift`) — unambiguous tag.
    tag: u64,
}

/// What one level did with an access.
struct Fill {
    hit: bool,
    /// A valid line was displaced by the fill.
    evicted: bool,
    /// The displaced line was dirty (write-back traffic).
    writeback: bool,
}

/// One set-associative level.
#[derive(Debug, Clone)]
struct Level {
    line_shift: u32,
    set_mask: u64,
    ways: usize,
    lines: Vec<Line>,
}

impl Level {
    fn new(geom: CacheGeometry) -> Level {
        let g = geom.normalized();
        Level {
            line_shift: g.line_words.trailing_zeros(),
            set_mask: (g.sets - 1) as u64,
            ways: g.ways as usize,
            lines: vec![Line::default(); (g.sets * g.ways) as usize],
        }
    }

    fn clear(&mut self) {
        self.lines.fill(Line::default());
    }

    /// Probe for `addr`; on miss, allocate (write-allocate) via LRU.
    ///
    /// Each set keeps its ways in recency order (way 0 = most recently
    /// used), which is observably identical to timestamp LRU: valid lines
    /// stay contiguous at the front, so "first invalid way, else the
    /// least-recently-used" is always the last way, and a hit is usually
    /// one compare against the front way.
    #[inline]
    fn access(&mut self, addr: u64, dirty: bool) -> Fill {
        let line_addr = addr >> self.line_shift;
        let set = (line_addr & self.set_mask) as usize * self.ways;
        let slots = &mut self.lines[set..set + self.ways];
        // Front-way hit: already most recently used, nothing moves.
        if slots[0].valid && slots[0].tag == line_addr {
            slots[0].dirty |= dirty;
            return Fill { hit: true, evicted: false, writeback: false };
        }
        for k in 1..slots.len() {
            if slots[k].valid && slots[k].tag == line_addr {
                let mut l = slots[k];
                l.dirty |= dirty;
                slots.copy_within(0..k, 1);
                slots[0] = l;
                return Fill { hit: true, evicted: false, writeback: false };
            }
        }
        // Miss: the victim is the last way — an invalid one if the set is
        // not yet full (insertions keep valid lines in front), else the
        // least recently used.
        let victim = slots[slots.len() - 1];
        let evicted = victim.valid;
        let writeback = evicted && victim.dirty;
        slots.copy_within(0..slots.len() - 1, 1);
        slots[0] = Line { valid: true, dirty, tag: line_addr };
        Fill { hit: false, evicted, writeback }
    }

    /// Install a line without a demand access (buffered L1 write-back into
    /// the L2). Counts as most-recently-used; returns whether a dirty
    /// victim was displaced to memory.
    fn install_dirty(&mut self, addr: u64) -> bool {
        self.access(addr, true).writeback
    }
}

/// Set-associative write-back L1 data cache with an optional unified L2.
#[derive(Debug)]
pub struct CacheMem {
    params: CacheParams,
    l1: Level,
    l2: Option<Level>,
    stats: MemStats,
}

impl CacheMem {
    pub fn new(params: CacheParams) -> CacheMem {
        CacheMem {
            params,
            l1: Level::new(params.l1),
            l2: params.l2.map(|p| Level::new(p.geom)),
            stats: MemStats::default(),
        }
    }

    pub fn params(&self) -> &CacheParams {
        &self.params
    }
}

impl MemModel for CacheMem {
    #[inline]
    fn access(&mut self, kind: Access, addr: u64) -> u64 {
        let is_store = kind == Access::Store;
        match kind {
            Access::Load => self.stats.loads += 1,
            Access::Store => self.stats.stores += 1,
        }
        let fill = self.l1.access(addr, is_store);
        if fill.hit {
            return 0;
        }
        match kind {
            Access::Load => self.stats.load_misses += 1,
            Access::Store => self.stats.store_misses += 1,
        }
        if fill.evicted {
            self.stats.evictions += 1;
        }
        if fill.writeback {
            self.stats.writebacks += 1;
        }
        let memory_latency = if is_store {
            self.params.store_miss_latency
        } else {
            self.params.load_miss_latency
        } as u64;
        let extra = match (&mut self.l2, self.params.l2) {
            (Some(l2), Some(p)) => {
                self.stats.l2_accesses += 1;
                // A dirty L1 victim lands in the L2 (buffered, no stall);
                // if that displaces a dirty L2 line it goes to memory.
                if fill.writeback && l2.install_dirty(addr) {
                    self.stats.writebacks += 1;
                }
                let f2 = l2.access(addr, false);
                if f2.hit {
                    p.hit_latency as u64
                } else {
                    self.stats.l2_misses += 1;
                    if f2.writeback {
                        self.stats.writebacks += 1;
                    }
                    memory_latency
                }
            }
            _ => memory_latency,
        };
        self.stats.miss_cycles += extra;
        extra
    }

    fn stats(&self) -> MemStats {
        self.stats
    }

    fn reset(&mut self) {
        self.stats = MemStats::default();
        self.l1.clear();
        if let Some(l2) = &mut self.l2 {
            l2.clear();
        }
    }

    fn name(&self) -> String {
        self.params.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loads(c: &mut CacheMem, addrs: &[u64]) -> Vec<u64> {
        addrs.iter().map(|&a| c.access(Access::Load, a)).collect()
    }

    #[test]
    fn cold_miss_then_hits_within_a_line() {
        // 4-word lines: addr 0..=3 share a line, addr 4 crosses into the
        // next line (the "line-crossing" edge case).
        let mut c = CacheMem::new(CacheParams::new(4, 8, 1, 30, 10));
        assert_eq!(loads(&mut c, &[0, 1, 2, 3, 4]), vec![30, 0, 0, 0, 30]);
        let s = c.stats();
        assert_eq!(s.accesses(), 5);
        assert_eq!(s.misses(), 2);
        assert_eq!(s.hits(), 3);
        assert_eq!(s.miss_cycles, 60);
        assert_eq!(s.accesses(), s.hits() + s.misses());
    }

    #[test]
    fn aliasing_sets_conflict_in_direct_mapped() {
        // Direct-mapped, 8 sets × 4-word lines: addresses 32 words apart
        // alias to the same set and evict each other forever.
        let mut c = CacheMem::new(CacheParams::new(4, 8, 1, 30, 10));
        assert_eq!(loads(&mut c, &[0, 32, 0, 32]), vec![30, 30, 30, 30]);
        assert_eq!(c.stats().evictions, 3); // all but the cold fill displace
        // The same pattern in a 2-way cache coexists.
        let mut c2 = CacheMem::new(CacheParams::new(4, 8, 2, 30, 10));
        assert_eq!(loads(&mut c2, &[0, 32, 0, 32]), vec![30, 30, 0, 0]);
        assert_eq!(c2.stats().evictions, 0);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_way() {
        // 1 set × 2 ways, 1-word lines: A, B fill; touching A makes B the
        // LRU victim when C arrives; A (recently used) survives, B is gone.
        let mut c = CacheMem::new(CacheParams::new(1, 1, 2, 30, 10));
        assert_eq!(loads(&mut c, &[10, 20, 10, 30]), vec![30, 30, 0, 30]);
        assert_eq!(loads(&mut c, &[10, 20]), vec![0, 30]);
    }

    #[test]
    fn zero_geometry_is_clamped_not_a_crash() {
        let g = CacheGeometry::new(0, 0, 0).normalized();
        assert_eq!((g.line_words, g.sets, g.ways), (1, 1, 1));
        let mut c = CacheMem::new(CacheParams::new(0, 0, 0, 5, 5));
        // A 1×1×1 cache: repeated same-word access hits, alternation misses.
        assert_eq!(loads(&mut c, &[7, 7, 8, 7]), vec![5, 0, 5, 5]);
        // Non-power-of-two geometry rounds up.
        let g = CacheGeometry::new(3, 12, 2).normalized();
        assert_eq!((g.line_words, g.sets, g.ways), (4, 16, 2));
        assert_eq!(CacheGeometry::new(3, 12, 2).size_words(), 128);
    }

    #[test]
    fn write_back_counts_writebacks_only_for_dirty_victims() {
        // Direct-mapped 1-set cache: store to A (dirty), load B evicts A
        // → writeback; load A evicts clean B → eviction, no writeback.
        let mut c = CacheMem::new(CacheParams::new(1, 1, 1, 30, 10));
        assert_eq!(c.access(Access::Store, 0), 10); // write-allocate miss
        assert_eq!(c.access(Access::Load, 1), 30);
        assert_eq!(c.access(Access::Load, 0), 30);
        let s = c.stats();
        assert_eq!(s.store_misses, 1);
        assert_eq!(s.load_misses, 2);
        assert_eq!(s.evictions, 2);
        assert_eq!(s.writebacks, 1);
        // A load hit on a dirty line keeps it dirty.
        let mut c = CacheMem::new(CacheParams::new(1, 1, 1, 30, 10));
        c.access(Access::Store, 0);
        c.access(Access::Load, 0);
        c.access(Access::Load, 1);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn l2_serves_l1_misses_cheaper_than_memory() {
        // Tiny L1 (1 line), big L2: the second touch of a line misses L1
        // (displaced) but hits L2 at the cheaper latency.
        let p = CacheParams::new(1, 1, 1, 100, 100).with_l2(1, 64, 4, 8);
        let mut c = CacheMem::new(p);
        assert_eq!(c.access(Access::Load, 0), 100); // cold: L1 miss, L2 miss
        assert_eq!(c.access(Access::Load, 1), 100);
        assert_eq!(c.access(Access::Load, 0), 8); // L1 victim, but L2 hit
        let s = c.stats();
        assert_eq!(s.l2_accesses, 3);
        assert_eq!(s.l2_misses, 2);
        assert_eq!(s.miss_cycles, 208);
        assert_eq!(s.accesses(), s.hits() + s.misses());
    }

    #[test]
    fn dirty_l1_victim_lands_in_l2() {
        // Store A (dirty in L1), touch B (displaces A's dirty line into
        // L2), reload A: L2 hit — the write-back was absorbed, and no
        // memory writeback happened.
        let p = CacheParams::new(1, 1, 1, 100, 100).with_l2(1, 64, 4, 8);
        let mut c = CacheMem::new(p);
        c.access(Access::Store, 0);
        c.access(Access::Load, 1);
        assert_eq!(c.access(Access::Load, 0), 8);
        assert_eq!(c.stats().writebacks, 1); // L1→L2 transfer counted once
    }

    #[test]
    fn reset_clears_contents_and_stats() {
        let mut c = CacheMem::new(CacheParams::small());
        loads(&mut c, &[0, 0, 64, 128]);
        assert!(c.stats().accesses() > 0);
        c.reset();
        assert_eq!(c.stats(), MemStats::default());
        assert_eq!(c.access(Access::Load, 0), 30, "cache is cold again");
    }

    #[test]
    fn determinism_same_sequence_same_stats() {
        let addrs: Vec<u64> = (0..500u64).map(|k| (k * 37) % 271).collect();
        let run = || {
            let mut c = CacheMem::new(CacheParams::small().with_l2(8, 32, 2, 6));
            for (k, &a) in addrs.iter().enumerate() {
                let kind = if k % 3 == 0 { Access::Store } else { Access::Load };
                c.access(kind, a);
            }
            c.stats()
        };
        let a = run();
        assert_eq!(a, run());
        assert_eq!(a.accesses(), a.hits() + a.misses());
    }
}
