//! # ilpc-mem — pluggable memory-hierarchy model for the cycle simulator
//!
//! The paper's node processor (§3.1) assumes a 100 % data-cache hit rate, so
//! every speedup the reproduction reports is an upper bound that ignores the
//! memory system. This crate makes the memory system a first-class,
//! swappable component: the simulator asks a [`MemModel`] for the *extra*
//! stall cycles of every load and store, beyond the pipeline latencies of
//! Table 1.
//!
//! Two models ship in-tree:
//!
//! * [`PerfectMem`] — every access hits; zero extra cycles. Bit-for-bit
//!   identical timing to the simulator before this subsystem existed (the
//!   paper's evaluated model, and the default).
//! * [`CacheMem`] — a parameterized set-associative write-back,
//!   write-allocate L1 data cache (configurable line size, sets, ways, LRU
//!   replacement, load-/store-miss latencies) with an optional unified L2.
//!
//! Everything is deterministic: model state is a pure function of the
//! access sequence, so simulation results are reproducible across runs and
//! platforms. Addresses are *word* addresses — the simulator's memory is a
//! flat `Vec<u64>` of words, so a "line" of `line_words = 4` covers 32
//! bytes of a 64-bit machine.
//!
//! The configuration type [`MemConfig`] is plain copyable data; it lives on
//! `ilpc_machine::Machine` so a machine description fully determines
//! timing. [`MemConfig::build`] instantiates the model it describes.

pub mod cache;
pub mod stats;

pub use cache::{CacheGeometry, CacheMem, CacheParams, L2Params};
pub use stats::MemStats;

/// Kind of one data-memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    Load,
    Store,
}

/// A deterministic memory-hierarchy timing model.
///
/// The simulator calls [`MemModel::access`] once per executed load/store
/// with the effective *word* address; the model returns the extra stall
/// cycles that access suffers beyond the pipeline latency (0 = hit in the
/// first-level cache / perfect memory). Models keep their own statistics.
pub trait MemModel {
    /// Extra stall cycles for one access at word address `addr`.
    fn access(&mut self, kind: Access, addr: u64) -> u64;

    /// Statistics accumulated since construction (or [`MemModel::reset`]).
    fn stats(&self) -> MemStats;

    /// Clear statistics and cache contents.
    fn reset(&mut self);

    /// Short display name (`perfect`, `L1:64x2x4+l2`).
    fn name(&self) -> String;
}

/// The paper's §3.1 memory system: a 100 % data-cache hit rate.
///
/// Every access costs zero extra cycles, so a simulator wired through this
/// model reproduces the pre-`ilpc-mem` simulator cycle-for-cycle.
#[derive(Debug, Default, Clone)]
pub struct PerfectMem {
    stats: MemStats,
}

impl PerfectMem {
    pub fn new() -> PerfectMem {
        PerfectMem::default()
    }
}

impl MemModel for PerfectMem {
    #[inline]
    fn access(&mut self, kind: Access, _addr: u64) -> u64 {
        match kind {
            Access::Load => self.stats.loads += 1,
            Access::Store => self.stats.stores += 1,
        }
        0
    }

    fn stats(&self) -> MemStats {
        self.stats
    }

    fn reset(&mut self) {
        self.stats = MemStats::default();
    }

    fn name(&self) -> String {
        "perfect".to_string()
    }
}

/// Memory-hierarchy configuration carried by a machine description.
///
/// Plain copyable data (so `Machine` stays `Copy + Eq`); [`MemConfig::build`]
/// turns it into a live [`MemModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemConfig {
    /// 100 % hit rate — the paper's evaluated model (the default).
    Perfect,
    /// Set-associative write-back L1 (+ optional unified L2).
    Cache(CacheParams),
}

impl Default for MemConfig {
    fn default() -> MemConfig {
        MemConfig::Perfect
    }
}

impl MemConfig {
    /// The paper's 100 %-hit memory system.
    pub fn perfect() -> MemConfig {
        MemConfig::Perfect
    }

    /// A finite L1 cache (see [`CacheParams`]).
    pub fn cache(params: CacheParams) -> MemConfig {
        MemConfig::Cache(params)
    }

    /// Instantiate the model this configuration describes.
    pub fn build(&self) -> Box<dyn MemModel> {
        match self {
            MemConfig::Perfect => Box::new(PerfectMem::new()),
            MemConfig::Cache(p) => Box::new(CacheMem::new(*p)),
        }
    }

    /// Short display name (`perfect`, `L1:64x2x4/m30`).
    pub fn name(&self) -> String {
        match self {
            MemConfig::Perfect => "perfect".to_string(),
            MemConfig::Cache(p) => p.name(),
        }
    }

    /// True for the default 100 %-hit configuration.
    pub fn is_perfect(&self) -> bool {
        matches!(self, MemConfig::Perfect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_mem_never_stalls_and_counts_accesses() {
        let mut m = PerfectMem::new();
        for a in 0..100u64 {
            assert_eq!(m.access(Access::Load, a * 17), 0);
        }
        for a in 0..40u64 {
            assert_eq!(m.access(Access::Store, a), 0);
        }
        let s = m.stats();
        assert_eq!(s.loads, 100);
        assert_eq!(s.stores, 40);
        assert_eq!(s.accesses(), 140);
        assert_eq!(s.hits(), 140);
        assert_eq!(s.misses(), 0);
        assert_eq!(s.miss_cycles, 0);
        assert_eq!(s.accesses(), s.hits() + s.misses());
        m.reset();
        assert_eq!(m.stats().accesses(), 0);
    }

    #[test]
    fn config_is_copy_eq_and_builds_the_right_model() {
        let p = MemConfig::perfect();
        let c = MemConfig::cache(CacheParams::small());
        assert_eq!(p, MemConfig::default());
        assert!(p.is_perfect());
        assert!(!c.is_perfect());
        assert_ne!(p, c);
        let copy = c; // Copy
        assert_eq!(copy, c);
        assert_eq!(p.build().name(), "perfect");
        assert_eq!(c.build().name(), c.name());
    }
}
