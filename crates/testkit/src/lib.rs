//! # ilpc-testkit — hermetic, std-only testing infrastructure
//!
//! The workspace builds and tests with **zero external crates** so the
//! tier-1 verify (`cargo build --release --offline && cargo test -q
//! --offline`) works in fully sandboxed environments. This crate vendors
//! the three pieces of infrastructure that used to come from crates.io:
//!
//! * [`rng`] — a deterministic, seedable SplitMix64/xoshiro256++ PRNG
//!   replacing `rand::StdRng` for workload data synthesis. Output is
//!   pinned by golden-value tests so the generated inputs are identical
//!   across platforms and Rust versions.
//! * [`prop`] — a minimal property-testing framework (generator
//!   combinators over a recorded choice sequence, bounded shrinking,
//!   seed reporting on failure) replacing `proptest` for the random
//!   differential and scheduler suites.
//! * [`bench`] — a wall-clock bench harness (warmup + N iterations,
//!   median/p95, machine-readable JSON output) replacing `criterion`
//!   for the `ilpc-bench` targets.

//! * [`stream`] — channel-backed `Read`/`Write` streams for driving
//!   line-protocol services interactively (pace requests off replies).

pub mod bench;
pub mod prop;
pub mod rng;
pub mod stream;

pub use rng::TestRng;
pub use stream::{ChannelReader, SharedBuf};
