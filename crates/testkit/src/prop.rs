//! Minimal property-testing framework (in-tree `proptest` replacement).
//!
//! ## Model
//!
//! A property is a closure `Fn(&mut Source) -> Result<(), String>`. The
//! [`Source`] is a stream of 64-bit *choices*: during generation it draws
//! from a seeded [`TestRng`] and records every draw; during shrinking the
//! recorded sequence is mutated (truncated, chunk-deleted, values reduced
//! toward zero) and the property is *replayed* against the mutated
//! sequence. Because every generator maps choice `0` to its minimal value
//! (range start, minimum length, first alternative), reducing the
//! sequence reduces the generated input — shrinking works through
//! arbitrary user combinators, including recursive ones, with no
//! per-type shrink code (the hypothesis "internal shrinking" idea).
//!
//! ## Reporting
//!
//! On failure the runner shrinks within a bounded budget, then panics
//! with the property name, the base seed, the failing case index and the
//! (minimal) failure message. Runs are deterministic by default; set
//! `ILPC_PROP_SEED` to explore a different universe and
//! `ILPC_PROP_CASES` to scale the case count.

use crate::rng::{splitmix64, TestRng};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run.
    pub cases: u32,
    /// Base seed; per-case seeds are derived from it.
    pub seed: u64,
    /// Maximum number of candidate replays during shrinking.
    pub max_shrink_iters: u32,
}

impl Config {
    /// `cases` random cases with the default (deterministic) seed, both
    /// overridable via `ILPC_PROP_CASES` / `ILPC_PROP_SEED`.
    pub fn cases(cases: u32) -> Config {
        let cases = std::env::var("ILPC_PROP_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(cases);
        let seed = std::env::var("ILPC_PROP_SEED")
            .ok()
            .and_then(|v| u64::from_str_radix(v.trim_start_matches("0x"), 16).ok())
            .unwrap_or(0x1CE_C0DE);
        Config { cases, seed, max_shrink_iters: 512 }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config::cases(256)
    }
}

/// A recorded/replayed stream of choices that generators draw from.
pub struct Source {
    /// Recorded draws (generation) or the sequence under replay.
    choices: Vec<u64>,
    /// Replay cursor; unused during generation.
    pos: usize,
    /// `Some` while generating fresh cases, `None` while replaying.
    rng: Option<TestRng>,
}

impl Source {
    fn random(seed: u64) -> Source {
        Source { choices: Vec::new(), pos: 0, rng: Some(TestRng::seed_from_u64(seed)) }
    }

    fn replay(choices: &[u64]) -> Source {
        Source { choices: choices.to_vec(), pos: 0, rng: None }
    }

    /// Next raw choice. Replays past the end of a (shrunk) sequence
    /// yield `0`, i.e. every generator's minimal value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        match &mut self.rng {
            Some(rng) => {
                let v = rng.next_u64();
                self.choices.push(v);
                v
            }
            None => {
                let v = self.choices.get(self.pos).copied().unwrap_or(0);
                self.pos += 1;
                v
            }
        }
    }

    /// Uniform `i64` in `[lo, hi)`; choice 0 maps to `lo`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range");
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add((self.next_u64() % span) as i64)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_i64(lo as i64, hi as i64) as usize
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_i64(lo as i64, hi as i64) as u32
    }

    /// Uniform `f64` in `[lo, hi)`; choice 0 maps to `lo`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range");
        lo + (hi - lo) * ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64))
    }

    /// A bool; choice 0 maps to `false`.
    pub fn flag(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Pick an alternative index with the given relative weights
    /// (`prop_oneof!` equivalent); choice 0 maps to alternative 0.
    pub fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| w as u64).sum();
        assert!(total > 0, "all weights zero");
        let mut x = self.next_u64() % total;
        for (k, &w) in weights.iter().enumerate() {
            if x < w as u64 {
                return k;
            }
            x -= w as u64;
        }
        unreachable!()
    }

    /// A vector of `lo..hi` (half-open) elements from `g`; the length is
    /// drawn first so shrinking the sequence shortens the vector.
    pub fn vec_of<T>(
        &mut self,
        lo: usize,
        hi: usize,
        mut g: impl FnMut(&mut Source) -> T,
    ) -> Vec<T> {
        let n = self.range_usize(lo, hi);
        (0..n).map(|_| g(self)).collect()
    }
}

/// Run `prop` against one choice sequence, converting panics to `Err`.
fn run_replay<F>(prop: &F, choices: &[u64]) -> Result<(), String>
where
    F: Fn(&mut Source) -> Result<(), String>,
{
    let mut src = Source::replay(choices);
    match catch_unwind(AssertUnwindSafe(|| prop(&mut src))) {
        Ok(r) => r,
        Err(payload) => Err(panic_message(payload)),
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

/// Shrink a failing choice sequence within `budget` replays. Returns the
/// smallest still-failing sequence found, its failure message, and the
/// number of replays spent.
fn shrink<F>(
    prop: &F,
    mut best: Vec<u64>,
    mut best_msg: String,
    budget: u32,
) -> (Vec<u64>, String, u32)
where
    F: Fn(&mut Source) -> Result<(), String>,
{
    let mut spent = 0u32;
    let try_candidate =
        |cand: Vec<u64>, best: &mut Vec<u64>, best_msg: &mut String, spent: &mut u32| -> bool {
            if *spent >= budget || cand == *best {
                return false;
            }
            *spent += 1;
            if let Err(msg) = run_replay(prop, &cand) {
                *best = cand;
                *best_msg = msg;
                true
            } else {
                false
            }
        };

    let mut improved = true;
    while improved && spent < budget {
        improved = false;
        // 1. Truncations (aggressive first).
        for keep in [best.len() / 2, best.len() * 3 / 4, best.len().saturating_sub(1)] {
            if keep < best.len()
                && try_candidate(best[..keep].to_vec(), &mut best, &mut best_msg, &mut spent)
            {
                improved = true;
            }
        }
        // 2. Chunk deletions.
        for chunk in [8usize, 4, 2, 1] {
            let mut k = 0;
            while k + chunk <= best.len() && spent < budget {
                let mut cand = best.clone();
                cand.drain(k..k + chunk);
                if try_candidate(cand, &mut best, &mut best_msg, &mut spent) {
                    improved = true;
                    // best shrank; retry the same position.
                } else {
                    k += chunk;
                }
            }
        }
        // 3. Point reductions toward zero.
        for k in 0..best.len() {
            if spent >= budget {
                break;
            }
            let v = best[k];
            for next in [0u64, v >> 32, v >> 1, v.saturating_sub(1)] {
                if next >= v {
                    continue;
                }
                let mut cand = best.clone();
                cand[k] = next;
                if try_candidate(cand, &mut best, &mut best_msg, &mut spent) {
                    improved = true;
                    break;
                }
            }
        }
    }
    (best, best_msg, spent)
}

/// Run `prop` for `cfg.cases` random cases; on failure, shrink and panic
/// with a reproducible report.
pub fn check<F>(name: &str, cfg: &Config, prop: F)
where
    F: Fn(&mut Source) -> Result<(), String>,
{
    for case in 0..cfg.cases {
        let mut st = cfg.seed ^ (case as u64).wrapping_mul(0xA076_1D64_78BD_642F);
        let case_seed = splitmix64(&mut st);
        let mut src = Source::random(case_seed);
        let outcome = match catch_unwind(AssertUnwindSafe(|| prop(&mut src))) {
            Ok(r) => r,
            Err(payload) => Err(panic_message(payload)),
        };
        if let Err(first_msg) = outcome {
            let choices = std::mem::take(&mut src.choices);
            let (min_choices, msg, spent) =
                shrink(&prop, choices, first_msg, cfg.max_shrink_iters);
            panic!(
                "property '{name}' failed at case {case}/{} \
                 (seed {:#x}, case seed {case_seed:#x}):\n  {msg}\n\
                 minimal failing choice sequence has {} draws \
                 (after {spent} shrink replays); rerun deterministically \
                 with ILPC_PROP_SEED={:x} ILPC_PROP_CASES={}",
                cfg.cases,
                cfg.seed,
                min_choices.len(),
                cfg.seed,
                cfg.cases,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let counter = std::cell::Cell::new(0u32);
        check("trivial", &Config::cases(64), |s| {
            counter.set(counter.get() + 1);
            let x = s.range_i64(0, 100);
            if (0..100).contains(&x) {
                Ok(())
            } else {
                Err(format!("out of range: {x}"))
            }
        });
        assert_eq!(counter.get(), 64);
    }

    #[test]
    fn failing_property_panics_with_seed_report() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            check("always-fails", &Config::cases(16), |s| {
                let x = s.range_i64(0, 100);
                Err(format!("x = {x}"))
            })
        }))
        .unwrap_err();
        let msg = panic_message(err);
        assert!(msg.contains("always-fails"), "{msg}");
        assert!(msg.contains("ILPC_PROP_SEED"), "{msg}");
    }

    #[test]
    fn shrinking_reduces_vec_to_minimal_counterexample() {
        // Property: no vector contains an element >= 500. Minimal
        // counterexample is a single element; shrinking must find a
        // sequence no longer than (length draw + 1 element draw).
        let min_len = std::cell::Cell::new(usize::MAX);
        let err = catch_unwind(AssertUnwindSafe(|| {
            check("vec-bound", &Config::cases(64), |s| {
                let v = s.vec_of(0, 40, |s| s.range_i64(0, 1000));
                if v.iter().any(|&x| x >= 500) {
                    min_len.set(min_len.get().min(v.len()));
                    Err(format!("bad vec: {v:?}"))
                } else {
                    Ok(())
                }
            })
        }))
        .unwrap_err();
        let msg = panic_message(err);
        // The reported minimal sequence: 1 length draw + 1 element draw.
        assert!(
            msg.contains("minimal failing choice sequence has 2 draws"),
            "{msg}"
        );
    }

    #[test]
    fn replay_past_end_yields_minimal_values() {
        let mut s = Source::replay(&[]);
        assert_eq!(s.range_i64(-5, 10), -5);
        assert_eq!(s.range_usize(3, 9), 3);
        assert_eq!(s.weighted(&[1, 2, 3]), 0);
        assert!(!s.flag());
        assert_eq!(s.range_f64(0.5, 1.5), 0.5);
        assert_eq!(s.vec_of(2, 8, |s| s.range_i64(0, 10)), vec![0, 0]);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let draw = |seed| {
            let mut s = Source::random(seed);
            (s.range_i64(0, 1000), s.range_f64(0.0, 1.0), s.vec_of(0, 10, |s| s.next_u64()))
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10));
    }
}
