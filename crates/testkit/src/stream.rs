//! Channel-backed in-memory streams for driving line-protocol services.
//!
//! A JSON-lines service like `ilpc-serve` (and its `--pool` supervisor)
//! reads requests from a `BufRead` and writes replies to a `Write`. Tests
//! that only need batch semantics can use a `Cursor` — but *interactive*
//! tests (send some requests, wait for their replies, then send more,
//! e.g. a `status` probe that must observe the faults injected by the
//! first wave) need a client that can pace its input off the output. This
//! module provides both halves:
//!
//! * [`ChannelReader`] — a `Read` fed by an `mpsc` channel; `recv`-blocks
//!   at quiet moments (like a real pipe), yields EOF when every sender is
//!   dropped;
//! * [`SharedBuf`] — a `Write` into an `Arc<Mutex<Vec<u8>>>` the test can
//!   inspect *while the service runs* (count reply lines, then decide
//!   what to send next).

use std::io::Read;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

/// A blocking `Read` fed line-chunks through an `mpsc` channel. EOF once
/// all senders are dropped and the buffer is drained.
pub struct ChannelReader {
    rx: mpsc::Receiver<Vec<u8>>,
    buf: Vec<u8>,
    pos: usize,
}

impl ChannelReader {
    /// A `(sender, reader)` pair. Send request bytes (include the
    /// newline); drop the sender to signal EOF.
    pub fn new() -> (mpsc::Sender<Vec<u8>>, ChannelReader) {
        let (tx, rx) = mpsc::channel();
        (tx, ChannelReader { rx, buf: Vec::new(), pos: 0 })
    }
}

impl Read for ChannelReader {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        while self.pos == self.buf.len() {
            match self.rx.recv() {
                Ok(chunk) => {
                    self.buf = chunk;
                    self.pos = 0;
                }
                Err(_) => return Ok(0), // all senders gone: EOF
            }
        }
        let n = (self.buf.len() - self.pos).min(out.len());
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// A `Write` into a shared, inspectable byte buffer.
#[derive(Clone)]
pub struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    pub fn new() -> SharedBuf {
        SharedBuf(Arc::new(Mutex::new(Vec::new())))
    }

    /// Snapshot of the bytes written so far.
    pub fn contents(&self) -> Vec<u8> {
        self.0.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    /// Complete lines written so far (a trailing unterminated fragment is
    /// excluded — it is still being written).
    pub fn lines(&self) -> Vec<String> {
        let bytes = self.contents();
        let text = String::from_utf8_lossy(&bytes);
        let mut lines: Vec<String> = text.split('\n').map(str::to_string).collect();
        lines.pop(); // "" after the final newline, or an incomplete tail
        lines
    }
}

impl Default for SharedBuf {
    fn default() -> SharedBuf {
        SharedBuf::new()
    }
}

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap_or_else(|p| p.into_inner()).extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};

    #[test]
    fn channel_reader_blocks_then_eofs() {
        let (tx, reader) = ChannelReader::new();
        let mut r = BufReader::new(reader);
        tx.send(b"alpha\nbe".to_vec()).unwrap();
        tx.send(b"ta\n".to_vec()).unwrap();
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        assert_eq!(line, "alpha\n");
        line.clear();
        r.read_line(&mut line).unwrap();
        assert_eq!(line, "beta\n", "chunks may split lines arbitrarily");
        drop(tx);
        line.clear();
        assert_eq!(r.read_line(&mut line).unwrap(), 0, "EOF after senders drop");
    }

    #[test]
    fn shared_buf_is_inspectable_mid_stream() {
        let mut w = SharedBuf::new();
        let peek = w.clone();
        writeln!(w, "one").unwrap();
        write!(w, "two-incompl").unwrap();
        assert_eq!(peek.lines(), vec!["one".to_string()]);
        writeln!(w, "ete").unwrap();
        assert_eq!(peek.lines(), vec!["one".to_string(), "two-incomplete".to_string()]);
    }
}
