//! Wall-clock bench harness (in-tree `criterion` replacement).
//!
//! Each bench target (`harness = false`) builds a [`Harness`], registers
//! labelled closures, and calls [`Harness::finish`]. Every benchmark runs
//! a warmup, then N timed iterations, and reports min / mean / median /
//! p95 wall time. `finish` prints a human table and writes the raw
//! statistics as JSON to `BENCH_<harness>.json` in the working directory
//! (the workspace root under `cargo bench`), so perf PRs can diff
//! machine-readable numbers across commits.
//!
//! Iteration counts are wall-clock-budget-free and explicit — override
//! globally with `ILPC_BENCH_ITERS` / `ILPC_BENCH_WARMUP`, or per
//! benchmark via [`Harness::bench_n`].

use std::hint::black_box;
use std::time::Instant;

/// Default timed iterations per benchmark.
const DEFAULT_ITERS: u32 = 30;
/// Default warmup iterations per benchmark.
const DEFAULT_WARMUP: u32 = 3;

/// Statistics for one benchmark, all times in nanoseconds.
#[derive(Debug, Clone)]
pub struct Stats {
    pub name: String,
    pub iters: u32,
    pub min_ns: u64,
    pub mean_ns: u64,
    pub median_ns: u64,
    pub p95_ns: u64,
    pub max_ns: u64,
    /// Elements processed per iteration (throughput benches), if set.
    pub elems: Option<u64>,
}

impl Stats {
    /// Elements per second at the median, for throughput benches.
    pub fn elems_per_sec(&self) -> Option<f64> {
        self.elems
            .map(|e| e as f64 / (self.median_ns.max(1) as f64 / 1e9))
    }
}

/// A named collection of benchmarks.
pub struct Harness {
    name: String,
    iters: u32,
    warmup: u32,
    results: Vec<Stats>,
}

fn env_u32(key: &str, default: u32) -> u32 {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns}ns"),
        10_000..=9_999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        10_000_000..=9_999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

impl Harness {
    /// A harness named after its bench target (`BENCH_<name>.json`).
    pub fn new(name: &str) -> Harness {
        Harness {
            name: name.to_string(),
            iters: env_u32("ILPC_BENCH_ITERS", DEFAULT_ITERS),
            warmup: env_u32("ILPC_BENCH_WARMUP", DEFAULT_WARMUP),
            results: Vec::new(),
        }
    }

    /// Benchmark `f` with the harness-default iteration count.
    pub fn bench<T>(&mut self, label: &str, f: impl FnMut() -> T) {
        self.run(label, self.iters, None, f);
    }

    /// Benchmark with an explicit iteration count (slow benches).
    pub fn bench_n<T>(&mut self, label: &str, iters: u32, f: impl FnMut() -> T) {
        self.run(label, iters.min(self.iters), None, f);
    }

    /// Throughput benchmark: `elems` elements processed per iteration.
    pub fn bench_elems<T>(&mut self, label: &str, elems: u64, f: impl FnMut() -> T) {
        self.run(label, self.iters, Some(elems), f);
    }

    fn run<T>(
        &mut self,
        label: &str,
        iters: u32,
        elems: Option<u64>,
        mut f: impl FnMut() -> T,
    ) {
        let iters = iters.max(1);
        for _ in 0..self.warmup {
            black_box(f());
        }
        let mut samples: Vec<u64> = Vec::with_capacity(iters as usize);
        for _ in 0..iters {
            let t0 = Instant::now();
            black_box(f());
            samples.push(t0.elapsed().as_nanos() as u64);
        }
        samples.sort_unstable();
        let idx = |q: f64| samples[((samples.len() - 1) as f64 * q) as usize];
        let stats = Stats {
            name: label.to_string(),
            iters,
            min_ns: samples[0],
            mean_ns: samples.iter().sum::<u64>() / samples.len() as u64,
            median_ns: idx(0.5),
            p95_ns: idx(0.95),
            max_ns: *samples.last().unwrap(),
            elems,
        };
        let thr = stats
            .elems_per_sec()
            .map(|e| format!("  {:.1} Melem/s", e / 1e6))
            .unwrap_or_default();
        println!(
            "{:<44} median {:>9}  p95 {:>9}  ({} iters){thr}",
            stats.name,
            fmt_ns(stats.median_ns),
            fmt_ns(stats.p95_ns),
            stats.iters,
        );
        self.results.push(stats);
    }

    /// JSON for all collected results (hand-rolled: std-only workspace).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{{\n  \"harness\": \"{}\",\n  \"results\": [", self.name));
        for (k, s) in self.results.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"iters\": {}, \"min_ns\": {}, \
                 \"mean_ns\": {}, \"median_ns\": {}, \"p95_ns\": {}, \
                 \"max_ns\": {}, \"elems\": {}}}",
                s.name.replace('"', "'"),
                s.iters,
                s.min_ns,
                s.mean_ns,
                s.median_ns,
                s.p95_ns,
                s.max_ns,
                s.elems.map(|e| e.to_string()).unwrap_or_else(|| "null".into()),
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Print the summary and write `BENCH_<name>.json`.
    pub fn finish(self) {
        let path = format!("BENCH_{}.json", self.name);
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => println!("\nwrote {} results to {path}", self.results.len()),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_ordered_and_json_is_well_formed() {
        let mut h = Harness::new("selftest");
        h.bench_n("noop", 5, || 1 + 1);
        h.bench_elems("spin", 1000, || {
            (0..1000u64).map(black_box).sum::<u64>()
        });
        let s = &h.results[0];
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.p95_ns && s.p95_ns <= s.max_ns);
        let json = h.to_json();
        assert!(json.contains("\"harness\": \"selftest\""));
        assert!(json.contains("\"name\": \"noop\""));
        assert!(json.contains("\"elems\": 1000"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn elems_per_sec_uses_median() {
        let s = Stats {
            name: "x".into(),
            iters: 1,
            min_ns: 1,
            mean_ns: 2,
            median_ns: 1_000_000, // 1ms
            p95_ns: 3,
            max_ns: 4,
            elems: Some(10_000),
        };
        let eps = s.elems_per_sec().unwrap();
        assert!((eps - 10_000_000.0).abs() < 1.0, "{eps}");
    }
}
