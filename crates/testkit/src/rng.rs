//! Deterministic, seedable PRNG: SplitMix64 seeding into xoshiro256++.
//!
//! This is the workspace's only source of pseudo-randomness. The stream
//! for a given seed is **pinned forever** by the golden-value test below:
//! workload input data, and therefore every simulated cycle count in the
//! paper-reproduction grid, must be bit-identical across platforms,
//! endianness and compiler versions. Do not change the algorithm without
//! updating every golden value that depends on it.
//!
//! The generator is Blackman & Vigna's xoshiro256++ (public domain), with
//! the state expanded from a 64-bit seed by SplitMix64 exactly as the
//! reference implementation recommends — a seed of 0 is fine.

use std::ops::Range;

/// One SplitMix64 step: advances `state` and returns the next output.
///
/// Used for seed expansion and for deriving per-case seeds in the
/// property-test runner; also a perfectly serviceable PRNG on its own.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic xoshiro256++ generator.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed the full 256-bit state from a 64-bit seed via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> TestRng {
        let mut st = seed;
        TestRng {
            s: [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ],
        }
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `range` (half-open). Supported element types:
    /// `f64`, `i64`, `u64`, `u32`, `usize`.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

/// A half-open range [`TestRng::gen_range`] can sample from.
pub trait SampleRange {
    type Output;
    fn sample(self, rng: &mut TestRng) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl SampleRange for Range<i64> {
    type Output = i64;
    fn sample(self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty range");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add((rng.next_u64() % span) as i64)
    }
}

impl SampleRange for Range<u64> {
    type Output = u64;
    fn sample(self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.next_u64() % (self.end - self.start)
    }
}

impl SampleRange for Range<u32> {
    type Output = u32;
    fn sample(self, rng: &mut TestRng) -> u32 {
        rng.gen_range(self.start as u64..self.end as u64) as u32
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.start as u64..self.end as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden values: the first 16 draws for seed 42, pinned so workload
    /// input data can never drift silently. Regenerate (and audit every
    /// downstream golden) only if the algorithm deliberately changes.
    #[test]
    fn golden_first_16_draws_seed_42() {
        let mut r = TestRng::seed_from_u64(42);
        let draws: Vec<u64> = (0..16).map(|_| r.next_u64()).collect();
        assert_eq!(
            draws,
            [
                0xD076_4D4F_4476_689F,
                0x519E_4174_576F_3791,
                0xFBE0_7CFB_0C24_ED8C,
                0xB37D_9F60_0CD8_35B8,
                0xCB23_1C38_7484_6A73,
                0x968D_9F00_4E50_DE7D,
                0x2017_18FF_221A_3556,
                0x9AE9_4E07_0ED8_CB46,
                0x352C_F3DA_F095_CCC7,
                0xEEEF_D632_19B4_A0D4,
                0x8F3D_FA98_020E_7942,
                0xD99B_8E00_792F_360D,
                0xAE14_E770_5435_9B98,
                0x11CC_BFBB_3659_0DBD,
                0x672F_CFD4_EFD0_E0BD,
                0x8BC6_E858_D050_1168,
            ]
        );
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> =
            (0..8).map({ let mut r = TestRng::seed_from_u64(7); move |_| r.next_u64() }).collect();
        let b: Vec<u64> =
            (0..8).map({ let mut r = TestRng::seed_from_u64(7); move |_| r.next_u64() }).collect();
        let c: Vec<u64> =
            (0..8).map({ let mut r = TestRng::seed_from_u64(8); move |_| r.next_u64() }).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn f64_range_stays_in_bounds() {
        let mut r = TestRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(0.25..1.75);
            assert!((0.25..1.75).contains(&x), "{x}");
        }
    }

    #[test]
    fn i64_range_stays_in_bounds_and_hits_endpoints() {
        let mut r = TestRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..10_000 {
            let x = r.gen_range(-2i64..3);
            assert!((-2..3).contains(&x), "{x}");
            seen[(x + 2) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = TestRng::seed_from_u64(0);
        let draws: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert!(draws.iter().any(|&d| d != 0));
    }
}
