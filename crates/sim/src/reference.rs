//! # Legacy tree-walking interpreter — the differential oracle
//!
//! The original cycle simulator: it walks the nested `Block`/`Inst` IR per
//! dynamic instruction, resolving operands, latencies and structural
//! validity on every visit. Superseded as the default engine by the
//! pre-decoded engine in [`crate::decoded`] (~10× faster on the grid hot
//! path), it is kept — feature-gated behind `oracle`, default on — as the
//! executable specification: the differential suite
//! (`tests/engine_differential.rs` at the workspace root) asserts the two
//! engines agree cycle-for-cycle and result-for-result across the full
//! evaluation grid under both perfect and cached memory.
//!
//! The issue model is documented at the crate root. This file is
//! intentionally boring and changes only when the *specification* changes;
//! the one post-freeze optimization is the dense per-branch counter array
//! (replacing a per-branch `HashMap` in the hot loop), which is invisible
//! in the profile the caller receives.

use crate::{SimError, SimLimits, SimResult};
use ilpc_ir::semantics::{eval_flt, eval_int};
use ilpc_ir::value::Value;
use ilpc_ir::inst::MAX_VLEN;
use ilpc_ir::{BlockId, Inst, MemLoc, Module, Opcode, Operand, Reg, RegClass};
use ilpc_machine::{fu_kind, FuKind, Machine};
use ilpc_mem::Access;
use std::collections::HashMap;

struct Cpu {
    int: Vec<i64>,
    flt: Vec<f64>,
    vec: Vec<[f64; MAX_VLEN as usize]>,
    ready: [Vec<u64>; 3],
    bases: Vec<usize>,
    mem: Vec<u64>,
    /// Stores issued recently: `(tag, issue_time)`.
    recent_stores: Vec<(MemLoc, u64)>,
    cycles: u64,
    dyn_insts: u64,
}

impl Cpu {
    // Every accessor is total: a malformed module (empty operand slot,
    // out-of-range register id, wrong-class operand) surfaces as a reason
    // string that the interpreter wraps into `SimError::Malformed` with the
    // instruction's coordinates, never as a panic.
    fn reg_value(&self, r: Reg) -> Result<Value, &'static str> {
        match r.class {
            RegClass::Int => {
                self.int.get(r.id as usize).map(|&v| Value::I(v)).ok_or("register id out of range")
            }
            RegClass::Flt => {
                self.flt.get(r.id as usize).map(|&v| Value::F(v)).ok_or("register id out of range")
            }
            RegClass::Vec => Err("vector register where scalar expected"),
        }
    }

    fn vec_operand(&self, o: Operand) -> Result<[f64; MAX_VLEN as usize], &'static str> {
        match o {
            Operand::Reg(r) if r.class == RegClass::Vec => self
                .vec
                .get(r.id as usize)
                .copied()
                .ok_or("register id out of range"),
            Operand::None => Err("reading empty operand"),
            _ => Err("scalar operand where vector expected"),
        }
    }

    fn write_vec(
        &mut self,
        r: Reg,
        v: [f64; MAX_VLEN as usize],
        ready_at: u64,
    ) -> Result<(), &'static str> {
        if r.class != RegClass::Vec {
            return Err("class mismatch on register write");
        }
        *self.vec.get_mut(r.id as usize).ok_or("register id out of range")? = v;
        self.ready[r.class.index()][r.id as usize] = ready_at;
        Ok(())
    }

    fn operand(&self, o: Operand) -> Result<Value, &'static str> {
        match o {
            Operand::Reg(r) => self.reg_value(r),
            Operand::ImmI(v) => Ok(Value::I(v)),
            Operand::ImmF(v) => Ok(Value::F(v)),
            Operand::Sym(s) => self
                .bases
                .get(s.0 as usize)
                .map(|&b| Value::I(b as i64))
                .ok_or("unknown symbol operand"),
            Operand::None => Err("reading empty operand"),
        }
    }

    fn int_operand(&self, o: Operand) -> Result<i64, &'static str> {
        match self.operand(o)? {
            Value::I(v) => Ok(v),
            Value::F(_) => Err("float operand where integer expected"),
        }
    }

    fn flt_operand(&self, o: Operand) -> Result<f64, &'static str> {
        match self.operand(o)? {
            Value::F(v) => Ok(v),
            Value::I(_) => Err("integer operand where float expected"),
        }
    }

    fn write(&mut self, r: Reg, v: Value, ready_at: u64) -> Result<(), &'static str> {
        match (r.class, v) {
            (RegClass::Int, Value::I(x)) => {
                *self.int.get_mut(r.id as usize).ok_or("register id out of range")? = x;
            }
            (RegClass::Flt, Value::F(x)) => {
                *self.flt.get_mut(r.id as usize).ok_or("register id out of range")? = x;
            }
            _ => return Err("class mismatch on register write"),
        }
        self.ready[r.class.index()][r.id as usize] = ready_at;
        Ok(())
    }

    fn ready_at(&self, r: Reg) -> Result<u64, &'static str> {
        self.ready[r.class.index()]
            .get(r.id as usize)
            .copied()
            .ok_or("register id out of range")
    }

    /// Effective address of a memory instruction.
    fn address(&self, inst: &Inst) -> Result<i64, &'static str> {
        let base = self.int_operand(inst.src[0])?;
        let off = self.int_operand(inst.src[1])?;
        Ok(base.wrapping_add(off).wrapping_add(inst.ext))
    }
}

/// Execute `m` with the legacy interpreter, with a cycle budget and the
/// default work watchdog (see [`SimLimits::cycles`]).
pub fn simulate_reference(
    m: &Module,
    machine: &Machine,
    init_mem: Vec<u64>,
    max_cycles: u64,
) -> Result<SimResult, SimError> {
    simulate_limited_reference(m, machine, init_mem, SimLimits::cycles(max_cycles))
}

/// Execute `m` with the legacy interpreter under explicit limits.
pub fn simulate_limited_reference(
    m: &Module,
    machine: &Machine,
    init_mem: Vec<u64>,
    limits: SimLimits,
) -> Result<SimResult, SimError> {
    let max_cycles = limits.max_cycles;
    let f = &m.func;
    let (bases, total) = m.symtab.layout();
    let mut init_mem = init_mem;
    if init_mem.len() < total {
        init_mem.resize(total, 0);
    }
    let mut cpu = Cpu {
        int: vec![0; f.vreg_count(RegClass::Int) as usize],
        flt: vec![0.0; f.vreg_count(RegClass::Flt) as usize],
        vec: vec![[0.0; MAX_VLEN as usize]; f.vreg_count(RegClass::Vec) as usize],
        ready: [
            vec![0; f.vreg_count(RegClass::Int) as usize],
            vec![0; f.vreg_count(RegClass::Flt) as usize],
            vec![0; f.vreg_count(RegClass::Vec) as usize],
        ],
        bases,
        mem: init_mem,
        recent_stores: Vec::new(),
        cycles: 0,
        dyn_insts: 0,
    };

    let mut cur = f.entry();
    // The data-memory hierarchy (perfect by default — zero extra cycles).
    let mut memsys = machine.mem.build();
    // Guard against degenerate machines built by hand (pub fields).
    let issue_width = machine.issue_width.max(1);
    let branch_slot_limit = machine.branch_slots.max(1);
    // Issue bookkeeping: cursor cycle + slots consumed within it.
    let mut cursor: u64 = 0;
    let mut slots: u32 = 0;
    let mut branch_slots: u32 = 0;
    let mut fu_slots = [0u32; 5]; // IntAlu, IntMulDiv, Fp, Mem, Vec
    let fu_index = |k: FuKind| match k {
        FuKind::IntAlu => Some(0usize),
        FuKind::IntMulDiv => Some(1),
        FuKind::Fp => Some(2),
        FuKind::Mem => Some(3),
        FuKind::Vec => Some(4),
        FuKind::Branch => None,
    };

    // Dense per-instruction branch counters (`(executed, taken)` indexed by
    // flat instruction position); the profile map the caller sees is built
    // once at exit from the non-zero entries.
    let nb = f.num_blocks();
    let mut br_off = vec![0usize; nb + 1];
    for id in 0..nb {
        br_off[id + 1] = br_off[id] + f.block(BlockId(id as u32)).insts.len();
    }
    let mut br_counts = vec![(0u64, 0u64); br_off[nb]];

    'blocks: loop {
        let block = f.block(cur);
        for (inst_idx, inst) in block.insts.iter().enumerate() {
            if inst.op == Opcode::Nop {
                continue;
            }
            // Structured errors for malformed modules (hand-edited or
            // truncated `.ilpc` input) instead of panics.
            let malformed = move |reason: &'static str| SimError::Malformed {
                block: cur,
                index: inst_idx,
                reason,
            };
            let dst =
                || inst.dst.ok_or_else(|| malformed("missing destination register"));
            let mem_tag = || inst.mem.ok_or_else(|| malformed("missing memory tag"));
            let target =
                || inst.target.ok_or_else(|| malformed("missing branch target"));
            let lat = machine.latency.of(inst) as u64;

            // Earliest issue by interlocks.
            let mut t = cursor;
            for r in inst.uses() {
                t = t.max(cpu.ready_at(r).map_err(malformed)?);
            }
            if let Some(d) = inst.def() {
                // WAW: completion order (t + lat >= prev_ready + 1).
                t = t.max((cpu.ready_at(d).map_err(malformed)? + 1).saturating_sub(lat));
            }
            if inst.op.is_mem_read() {
                // Same-cycle aliasing store forces +1 (store visible at
                // issue+1). Earlier-cycle stores are already visible.
                let tag = mem_tag()?;
                while cpu
                    .recent_stores
                    .iter()
                    .any(|(s, ts)| *ts == t && s.may_alias(&tag))
                {
                    t += 1;
                }
            }

            // Slot accounting (in-order issue, issue_width per cycle,
            // one branch slot, per-class functional unit limits).
            if t > cursor {
                cursor = t;
                slots = 0;
                branch_slots = 0;
                fu_slots = [0; 5];
            }
            let kind = fu_kind(inst);
            loop {
                let slot_full = slots >= issue_width;
                let branch_full =
                    inst.op.is_branch() && branch_slots >= branch_slot_limit;
                let fu_full = fu_index(kind)
                    .is_some_and(|fi| fu_slots[fi] >= machine.fu.of(kind));
                if slot_full || branch_full || fu_full {
                    cursor += 1;
                    slots = 0;
                    branch_slots = 0;
                    fu_slots = [0; 5];
                } else {
                    break;
                }
            }
            let t = cursor;
            slots += 1;
            if inst.op.is_branch() {
                branch_slots += 1;
            }
            if let Some(fi) = fu_index(kind) {
                fu_slots[fi] += 1;
            }
            if t > max_cycles {
                return Err(SimError::CycleLimit(max_cycles));
            }
            cpu.dyn_insts += 1;
            if cpu.dyn_insts > limits.max_dyn_insts {
                return Err(SimError::DynInstLimit(limits.max_dyn_insts));
            }

            // Execute.
            match inst.op {
                Opcode::Mov => {
                    let v = cpu.operand(inst.src[0]).map_err(malformed)?;
                    cpu.write(dst()?, v, t + lat).map_err(malformed)?;
                }
                Opcode::Add
                | Opcode::Sub
                | Opcode::And
                | Opcode::Or
                | Opcode::Xor
                | Opcode::Shl
                | Opcode::Shr
                | Opcode::Mul
                | Opcode::Div
                | Opcode::Rem => {
                    let a = cpu.int_operand(inst.src[0]).map_err(malformed)?;
                    let b = cpu.int_operand(inst.src[1]).map_err(malformed)?;
                    cpu.write(dst()?, Value::I(eval_int(inst.op, a, b)), t + lat)
                        .map_err(malformed)?;
                }
                Opcode::FAdd | Opcode::FSub | Opcode::FMul | Opcode::FDiv => {
                    let a = cpu.flt_operand(inst.src[0]).map_err(malformed)?;
                    let b = cpu.flt_operand(inst.src[1]).map_err(malformed)?;
                    cpu.write(dst()?, Value::F(eval_flt(inst.op, a, b)), t + lat)
                        .map_err(malformed)?;
                }
                Opcode::CvtIF => {
                    let a = cpu.int_operand(inst.src[0]).map_err(malformed)?;
                    cpu.write(dst()?, Value::F(a as f64), t + lat).map_err(malformed)?;
                }
                Opcode::CvtFI => {
                    let a = cpu.flt_operand(inst.src[0]).map_err(malformed)?;
                    cpu.write(dst()?, Value::I(a as i64), t + lat).map_err(malformed)?;
                }
                Opcode::Load => {
                    let d = dst()?;
                    let addr = cpu.address(inst).map_err(malformed)?;
                    // Non-excepting: out-of-range reads return zero.
                    let bits = if addr >= 0 && (addr as usize) < cpu.mem.len() {
                        cpu.mem[addr as usize]
                    } else {
                        0
                    };
                    // A cache miss delays only this load's result (the
                    // cache is non-blocking for loads); issue continues.
                    let extra = memsys.access(Access::Load, addr as u64);
                    cpu.write(d, Value::from_bits(bits, d.class), t + lat + extra)
                        .map_err(malformed)?;
                }
                Opcode::Store => {
                    let addr = cpu.address(inst).map_err(malformed)?;
                    let val = cpu.operand(inst.src[2]).map_err(malformed)?;
                    if addr >= 0 && (addr as usize) < cpu.mem.len() {
                        cpu.mem[addr as usize] = val.to_bits();
                    }
                    let tag = mem_tag()?;
                    cpu.recent_stores.push((tag, t));
                    if cpu.recent_stores.len() > 64 {
                        cpu.recent_stores.drain(..32);
                    }
                    // A store miss blocks in-order issue until the
                    // write-allocate fill completes (extra = 0 under
                    // perfect memory: bit-for-bit legacy timing).
                    let extra = memsys.access(Access::Store, addr as u64);
                    if extra > 0 {
                        cursor = t + extra;
                        slots = 0;
                        branch_slots = 0;
                        fu_slots = [0; 5];
                    }
                }
                Opcode::VAdd | Opcode::VMul => {
                    let a = cpu.vec_operand(inst.src[0]).map_err(malformed)?;
                    let b = cpu.vec_operand(inst.src[1]).map_err(malformed)?;
                    let scalar_op = if inst.op == Opcode::VAdd {
                        Opcode::FAdd
                    } else {
                        Opcode::FMul
                    };
                    let mut out = [0.0; MAX_VLEN as usize];
                    for l in 0..(inst.lanes as usize).min(MAX_VLEN as usize) {
                        out[l] = eval_flt(scalar_op, a[l], b[l]);
                    }
                    cpu.write_vec(dst()?, out, t + lat).map_err(malformed)?;
                }
                Opcode::VSplat => {
                    let v = cpu.flt_operand(inst.src[0]).map_err(malformed)?;
                    let mut out = [0.0; MAX_VLEN as usize];
                    for l in 0..(inst.lanes as usize).min(MAX_VLEN as usize) {
                        out[l] = v;
                    }
                    cpu.write_vec(dst()?, out, t + lat).map_err(malformed)?;
                }
                Opcode::VReduce => {
                    let a = cpu.vec_operand(inst.src[0]).map_err(malformed)?;
                    // Lane-order summation: the packs being reduced were
                    // adjacent statements, so this matches their source order.
                    let mut acc = 0.0;
                    for l in 0..(inst.lanes as usize).min(MAX_VLEN as usize) {
                        acc = eval_flt(Opcode::FAdd, acc, a[l]);
                    }
                    cpu.write(dst()?, Value::F(acc), t + lat).map_err(malformed)?;
                }
                Opcode::VLoad => {
                    let d = dst()?;
                    let addr = cpu.address(inst).map_err(malformed)?;
                    let mut out = [0.0; MAX_VLEN as usize];
                    // Each lane is a full per-word access so MemStats count
                    // every element; the widest miss delays the whole result.
                    let mut extra = 0u64;
                    for l in 0..(inst.lanes as usize).min(MAX_VLEN as usize) {
                        let a = addr.wrapping_add(l as i64);
                        let bits = if a >= 0 && (a as usize) < cpu.mem.len() {
                            cpu.mem[a as usize]
                        } else {
                            0
                        };
                        out[l] = f64::from_bits(bits);
                        extra = extra.max(memsys.access(Access::Load, a as u64));
                    }
                    cpu.write_vec(d, out, t + lat + extra).map_err(malformed)?;
                }
                Opcode::VStore => {
                    let addr = cpu.address(inst).map_err(malformed)?;
                    let val = cpu.vec_operand(inst.src[2]).map_err(malformed)?;
                    let mut extra = 0u64;
                    for l in 0..(inst.lanes as usize).min(MAX_VLEN as usize) {
                        let a = addr.wrapping_add(l as i64);
                        if a >= 0 && (a as usize) < cpu.mem.len() {
                            cpu.mem[a as usize] = val[l].to_bits();
                        }
                        extra = extra.max(memsys.access(Access::Store, a as u64));
                    }
                    let tag = mem_tag()?;
                    cpu.recent_stores.push((tag, t));
                    if cpu.recent_stores.len() > 64 {
                        cpu.recent_stores.drain(..32);
                    }
                    if extra > 0 {
                        cursor = t + extra;
                        slots = 0;
                        branch_slots = 0;
                        fu_slots = [0; 5];
                    }
                }
                Opcode::Br(c) => {
                    let lhs = cpu.operand(inst.src[0]).map_err(malformed)?;
                    let rhs = cpu.operand(inst.src[1]).map_err(malformed)?;
                    let taken = match (lhs, rhs) {
                        (Value::I(a), Value::I(b)) => c.eval(a, b),
                        (Value::F(a), Value::F(b)) => c.eval(a, b),
                        _ => return Err(malformed("mixed-class branch comparison")),
                    };
                    {
                        let e = &mut br_counts[br_off[cur.0 as usize] + inst_idx];
                        e.0 += 1;
                        if taken {
                            e.1 += 1;
                        }
                    }
                    if taken {
                        cur = target()?;
                        cursor = t + lat;
                        slots = 0;
                        branch_slots = 0;
                        fu_slots = [0; 5];
                        continue 'blocks;
                    }
                }
                Opcode::Jump => {
                    cur = target()?;
                    cursor = t + lat;
                    slots = 0;
                    branch_slots = 0;
                    fu_slots = [0; 5];
                    continue 'blocks;
                }
                Opcode::Halt => {
                    cpu.dyn_insts -= 1; // halt is not work
                    cpu.cycles = t + 1;
                    let mut branch_profile = HashMap::new();
                    for id in 0..nb {
                        let base = br_off[id];
                        for (idx, &(e, tk)) in
                            br_counts[base..br_off[id + 1]].iter().enumerate()
                        {
                            if e > 0 {
                                branch_profile.insert((id as u32, idx), (e, tk));
                            }
                        }
                    }
                    return Ok(SimResult {
                        cycles: cpu.cycles,
                        dyn_insts: cpu.dyn_insts,
                        memory: cpu.mem,
                        branch_profile,
                        mem: memsys.stats(),
                    });
                }
                Opcode::Nop => unreachable!(),
            }
        }
        // Fall through to the next layout block.
        match f.fallthrough(cur) {
            Some(next) => cur = next,
            None => return Err(SimError::FellOffEnd(cur)),
        }
    }
}
