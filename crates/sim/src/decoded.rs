//! Pre-decoded execution engine: the hot path of the simulator.
//!
//! [`decode`] lowers a [`Module`] once into a flat [`DecodedProgram`];
//! [`simulate_decoded`] then runs it with none of the per-dynamic-
//! instruction work the tree-walking interpreter pays:
//!
//! * **Operand resolution.** Every operand becomes an index into one
//!   unified 64-bit register file: integer vregs first, then float vregs,
//!   then a constant pool holding every immediate and symbol base the
//!   program mentions. Constants are ordinary file entries whose ready
//!   time is permanently 0, so the interlock loop is three array reads —
//!   no `Operand` matching, no `Option` unwrapping.
//! * **Packed records.** The per-record fields the run loop touches every
//!   dynamic instruction (dispatch kind, flags, FU class, latency, operand
//!   and destination indices, branch target) live in one 28-byte [`Slot`],
//!   so fetching an instruction is a single bounds-checked load from one
//!   array instead of a dozen. Cold fields (addressing displacement,
//!   memory tags, source coordinates) stay in side arrays indexed by pc.
//! * **Fused dispatch.** The opcode is decoded all the way down: `Add` and
//!   `FMul` are distinct [`DOp`] variants, so executing an ALU op is one
//!   jump-table dispatch, not an opcode match nested inside a class match.
//! * **Latency and FU class.** Baked in at decode time from the machine's
//!   latency table ([`DecodedProgram`] records which table it was built
//!   for; running it under a machine with a different table is a logic
//!   error caught by a debug assertion).
//! * **Validation.** Structural errors (missing destination register,
//!   missing memory tag, wrong-class operands, out-of-range register ids)
//!   are found at decode time but reported *lazily*: a malformed
//!   instruction decodes to a trap record that returns the exact legacy
//!   [`SimError::Malformed`] when — and only when — control reaches it.
//!   Trap records keep the real operand indices, latency and FU class, so
//!   interlock timing up to the error is also bit-identical.
//! * **Control flow.** Branch targets are pre-resolved instruction
//!   indices. Each block ends in a zero-cost `Goto` (fall-through to the
//!   layout successor) or `FellOff` record, reproducing the legacy
//!   block-walking loop including detached-block dead ends.
//! * **Branch profiling.** Dense per-instruction executed/taken counter
//!   arrays indexed by pc; the `SimResult` profile map is built once at
//!   exit from the non-zero entries.
//! * **Memory hierarchy.** The run loop is generic over
//!   [`ilpc_mem::MemModel`] and monomorphized per configuration, so the
//!   perfect-memory path inlines to two counter increments instead of a
//!   virtual call per access.
//!
//! The legacy interpreter survives behind the `oracle` feature (default
//! on) as `reference::simulate_limited_reference`; the differential test
//! suite proves the two engines cycle- and result-identical across the
//! full evaluation grid.

use crate::{SimError, SimLimits, SimResult};
use ilpc_ir::inst::MAX_VLEN;
use ilpc_ir::{BlockId, Cond, MemLoc, Module, Opcode, Operand, RegClass, SymId};

/// Vector register stride in the unified file (words per vector register).
const VL: u32 = MAX_VLEN as u32;
use ilpc_machine::{fu_kind, FuKind, LatencyTable, Machine, MemConfig};
use ilpc_mem::{Access, CacheMem, MemModel, PerfectMem};
use std::collections::HashMap;

// Trap reasons — the exact strings the legacy engine reports.
const R_MISSING_DST: u8 = 0;
const R_MISSING_TAG: u8 = 1;
const R_MISSING_TARGET: u8 = 2;
const R_EMPTY: u8 = 3;
const R_UNKNOWN_SYM: u8 = 4;
const R_FLT_WHERE_INT: u8 = 5;
const R_INT_WHERE_FLT: u8 = 6;
const R_WRITE_MISMATCH: u8 = 7;
const R_MIXED_BRANCH: u8 = 8;
const R_RANGE: u8 = 9;
const R_VEC_WHERE_SCALAR: u8 = 10;
const R_SCALAR_WHERE_VEC: u8 = 11;

const TRAP_REASONS: [&str; 12] = [
    "missing destination register",
    "missing memory tag",
    "missing branch target",
    "reading empty operand",
    "unknown symbol operand",
    "float operand where integer expected",
    "integer operand where float expected",
    "class mismatch on register write",
    "mixed-class branch comparison",
    "register id out of range",
    "vector register where scalar expected",
    "scalar operand where vector expected",
];

// `target` sentinels for branches whose target only matters when taken.
const TARGET_MISSING: u32 = u32::MAX;
const TARGET_OOB: u32 = u32::MAX - 1;

// Per-record flags.
const F_HAS_DST: u8 = 1 << 0;
const F_IS_BRANCH: u8 = 1 << 1;
const F_IS_LOAD: u8 = 1 << 2;

/// Dispatch kind of one decoded record. Operand classes are validated at
/// decode time, so execution needs no per-class operand checks: `Mov`,
/// `Load` and `Store` move raw 64-bit images. Arithmetic is fully fused —
/// one variant per operation — so the run loop dispatches exactly once
/// per dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DOp {
    // Two-source integer ALU ops.
    Add,
    Sub,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Mul,
    Div,
    Rem,
    // Two-source float ALU ops.
    FAdd,
    FSub,
    FMul,
    FDiv,
    /// Register/constant copy (classes match; a bit copy).
    Mov,
    CvtIF,
    CvtFI,
    Load,
    Store,
    // Vector (SLP) operations; the payload is the live lane count,
    // clamped to MAX_VLEN at decode time.
    VAdd(u8),
    VMul(u8),
    VSplat(u8),
    VReduce(u8),
    VLoad(u8),
    VStore(u8),
    /// Conditional branch comparing two integer-class operands.
    BrI(Cond),
    /// Conditional branch comparing two float-class operands.
    BrF(Cond),
    Jump,
    Halt,
    /// Zero-cost fall-through redirect to `target` (end of block).
    Goto,
    /// Control fell off the end of the block (no layout successor).
    FellOff,
    /// Structurally invalid instruction caught before the legacy engine's
    /// interlock stage (out-of-range register id, load without a memory
    /// tag): errors immediately when reached.
    TrapEarly(u8),
    /// Structurally invalid instruction caught at the legacy engine's
    /// execute stage: goes through interlocks, slot accounting and budget
    /// checks first, then errors — preserving error precedence.
    Trap(u8),
}

/// The hot per-record fields, packed so the run loop fetches one record
/// with one bounds check. 28 bytes.
#[derive(Debug, Clone, Copy)]
struct Slot {
    op: DOp,
    flags: u8,
    /// Functional-unit index (0 IntAlu, 1 IntMulDiv, 2 Fp, 3 Mem,
    /// 4 branch/none — slot 4 is never limited).
    fu: u8,
    lat: u32,
    a: u32,
    b: u32,
    c: u32,
    /// Destination register file index (valid when `F_HAS_DST`).
    dst: u32,
    /// Branch / jump / goto target pc (or a `TARGET_*` sentinel).
    target: u32,
}

/// A module lowered to flat array form, ready for repeated simulation.
/// Build one with [`decode`]; run it with [`simulate_decoded`]. All
/// arrays are indexed by decoded pc.
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    /// Hot per-record fields (see [`Slot`]).
    code: Vec<Slot>,
    /// Addressing displacement for loads/stores.
    ext: Vec<i64>,
    /// Memory disambiguation tag (loads/stores; dummy elsewhere).
    tags: Vec<MemLoc>,
    /// `(block id, instruction index)` for error reports and the branch
    /// profile.
    coord: Vec<(u32, u32)>,
    /// Initial unified register file: `int vregs ++ flt vregs ++ consts`.
    file_init: Vec<u64>,
    /// Total data-memory words (symbol-table layout size).
    mem_words: usize,
    /// Latency table the program was decoded against.
    latency: LatencyTable,
}

impl DecodedProgram {
    /// Number of decoded records (instructions + block terminators).
    pub fn num_records(&self) -> usize {
        self.code.len()
    }

    /// Size of the unified register file (vregs + constant pool).
    pub fn file_len(&self) -> usize {
        self.file_init.len()
    }

    /// The latency table baked into this program at decode time.
    pub fn latency(&self) -> &LatencyTable {
        &self.latency
    }

    fn malformed(&self, pc: usize, reason: u8) -> SimError {
        let (block, index) = self.coord[pc];
        SimError::Malformed {
            block: BlockId(block),
            index: index as usize,
            reason: TRAP_REASONS[reason as usize],
        }
    }
}

/// Constant pool interner: raw 64-bit images appended after the vregs.
struct Pool {
    map: HashMap<u64, u32>,
    vals: Vec<u64>,
    base: u32,
}

impl Pool {
    fn intern(&mut self, bits: u64) -> u32 {
        if let Some(&idx) = self.map.get(&bits) {
            return idx;
        }
        let idx = self.base + self.vals.len() as u32;
        self.vals.push(bits);
        self.map.insert(bits, idx);
        idx
    }
}

/// One resolved operand slot: a file index plus the value class it
/// provides (`None` class/`err` for unresolvable slots — empty or
/// unknown-symbol operands keep the legacy reason string).
struct Rslot {
    idx: u32,
    class: Option<RegClass>,
    err: Option<u8>,
}

fn slot_ok(s: &Rslot) -> Result<(), u8> {
    match s.err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

fn slot_class(s: &Rslot, want: RegClass) -> Result<(), u8> {
    slot_ok(s)?;
    if s.class == Some(want) {
        Ok(())
    } else {
        Err(match (want, s.class) {
            // Scalar accessors surface a vector register before any
            // int/float distinction — mirror the legacy reason exactly.
            (RegClass::Int | RegClass::Flt, Some(RegClass::Vec)) => R_VEC_WHERE_SCALAR,
            (RegClass::Int, _) => R_FLT_WHERE_INT,
            (RegClass::Flt, _) => R_INT_WHERE_FLT,
            (RegClass::Vec, _) => R_SCALAR_WHERE_VEC,
        })
    }
}

fn fu_idx(kind: FuKind) -> u8 {
    match kind {
        FuKind::IntAlu => 0,
        FuKind::IntMulDiv => 1,
        FuKind::Fp => 2,
        FuKind::Mem => 3,
        FuKind::Vec => 4,
        FuKind::Branch => 5,
    }
}

/// Fused [`DOp`] for a validated two-source integer ALU opcode.
fn int_dop(op: Opcode) -> DOp {
    match op {
        Opcode::Add => DOp::Add,
        Opcode::Sub => DOp::Sub,
        Opcode::And => DOp::And,
        Opcode::Or => DOp::Or,
        Opcode::Xor => DOp::Xor,
        Opcode::Shl => DOp::Shl,
        Opcode::Shr => DOp::Shr,
        Opcode::Mul => DOp::Mul,
        Opcode::Div => DOp::Div,
        Opcode::Rem => DOp::Rem,
        _ => unreachable!("int_dop on non-integer opcode {op}"),
    }
}

/// Fused [`DOp`] for a validated two-source float ALU opcode.
fn flt_dop(op: Opcode) -> DOp {
    match op {
        Opcode::FAdd => DOp::FAdd,
        Opcode::FSub => DOp::FSub,
        Opcode::FMul => DOp::FMul,
        Opcode::FDiv => DOp::FDiv,
        _ => unreachable!("flt_dop on non-float opcode {op}"),
    }
}

/// One decoded record in assembly order (split into the hot [`Slot`]
/// array and the cold side arrays at the end of [`decode`]).
struct Rec {
    op: DOp,
    flags: u8,
    fu: u8,
    lat: u32,
    dst: u32,
    target: u32,
    a: u32,
    b: u32,
    c: u32,
    ext: i64,
    tag: MemLoc,
    coord: (u32, u32),
}

/// Lower `m` into a [`DecodedProgram`] for `machine`'s latency table.
///
/// Decode never rejects a module: structurally invalid instructions
/// become trap records that reproduce the legacy engine's lazy
/// `SimError::Malformed` (an invalid instruction on a never-executed path
/// is harmless, exactly as before).
pub fn decode(m: &Module, machine: &Machine) -> DecodedProgram {
    let f = &m.func;
    let (bases, mem_words) = m.symtab.layout();
    let ni = f.vreg_count(RegClass::Int);
    let nf = f.vreg_count(RegClass::Flt);
    let nv = f.vreg_count(RegClass::Vec);
    // Vector registers occupy MAX_VLEN consecutive file words each; their
    // scoreboard entry is the first word's index.
    let base_len = ni + nf + nv * VL;
    // Panics on an empty layout, like the legacy engine's `f.entry()`.
    let entry = f.entry();

    // Decode order: layout first-occurrences (entry first), then blocks
    // outside the layout (branch targets mid-insertion / dead ends).
    let nb = f.num_blocks();
    let mut order: Vec<BlockId> = Vec::with_capacity(nb);
    let mut seen = vec![false; nb];
    for &b in f.layout_order() {
        if !seen[b.0 as usize] {
            seen[b.0 as usize] = true;
            order.push(b);
        }
    }
    for id in 0..nb {
        if !seen[id] {
            order.push(BlockId(id as u32));
        }
    }
    debug_assert_eq!(order.first(), Some(&entry));

    // Start pc of every block: live instructions + one terminator each.
    let mut start = vec![0u32; nb];
    let mut n = 0u32;
    for &b in &order {
        start[b.0 as usize] = n;
        let live = f.block(b).insts.iter().filter(|i| i.op != Opcode::Nop).count();
        n += live as u32 + 1;
    }

    let mut pool = Pool { map: HashMap::new(), vals: Vec::new(), base: base_len };
    let const0 = pool.intern(0);
    let unified = |r: ilpc_ir::Reg| -> u32 {
        match r.class {
            RegClass::Int => r.id,
            RegClass::Flt => ni + r.id,
            RegClass::Vec => ni + nf + r.id * VL,
        }
    };
    let mut resolve = |o: Operand| -> Rslot {
        match o {
            Operand::None => Rslot { idx: const0, class: None, err: Some(R_EMPTY) },
            Operand::Reg(r) => {
                // Range-checked by the caller's early stage.
                Rslot { idx: unified(r), class: Some(r.class), err: None }
            }
            Operand::ImmI(v) => {
                Rslot { idx: pool.intern(v as u64), class: Some(RegClass::Int), err: None }
            }
            Operand::ImmF(v) => {
                Rslot { idx: pool.intern(v.to_bits()), class: Some(RegClass::Flt), err: None }
            }
            Operand::Sym(s) => match bases.get(s.0 as usize) {
                Some(&b) => Rslot {
                    idx: pool.intern(b as i64 as u64),
                    class: Some(RegClass::Int),
                    err: None,
                },
                None => Rslot { idx: const0, class: None, err: Some(R_UNKNOWN_SYM) },
            },
        }
    };

    let dummy_tag = MemLoc::opaque(SymId(0));
    let mut recs: Vec<Rec> = Vec::with_capacity(n as usize);

    for &bid in &order {
        let block = f.block(bid);
        for (idx, inst) in block.insts.iter().enumerate() {
            if inst.op == Opcode::Nop {
                continue;
            }
            let mut rec = Rec {
                op: DOp::Halt, // placeholder, always overwritten below
                flags: 0,
                fu: fu_idx(fu_kind(inst)),
                lat: machine.latency.of(inst),
                dst: 0,
                target: 0,
                a: const0,
                b: const0,
                c: const0,
                ext: inst.ext,
                tag: inst.mem.unwrap_or(dummy_tag),
                coord: (bid.0, idx as u32),
            };
            if inst.op.is_branch() {
                rec.flags |= F_IS_BRANCH;
            }

            // Errors the legacy engine finds before its execute stage
            // (interlock register-range checks, a load's tag lookup for
            // the alias stall): these fire immediately on reach, before
            // slot accounting and budget checks.
            let mut early: Option<u8> = None;
            let class_count = |c: RegClass| match c {
                RegClass::Int => ni,
                RegClass::Flt => nf,
                RegClass::Vec => nv,
            };
            for o in inst.src {
                if let Operand::Reg(r) = o {
                    if r.id >= class_count(r.class) {
                        early = Some(R_RANGE);
                        break;
                    }
                }
            }
            if early.is_none() {
                if let Some(d) = inst.dst {
                    if d.id >= class_count(d.class) {
                        early = Some(R_RANGE);
                    }
                }
            }
            if early.is_none() && inst.op.is_mem_read() && inst.mem.is_none() {
                early = Some(R_MISSING_TAG);
            }
            if let Some(r) = early {
                rec.op = DOp::TrapEarly(r);
                recs.push(rec);
                continue;
            }

            // From here on every register operand is range-valid; resolve
            // all slots (trap records keep real indices so interlock and
            // WAW timing stay identical up to the error).
            if let Some(d) = inst.dst {
                rec.dst = unified(d);
                rec.flags |= F_HAS_DST;
            }
            let s0 = resolve(inst.src[0]);
            let s1 = resolve(inst.src[1]);
            let s2 = resolve(inst.src[2]);
            rec.a = s0.idx;
            rec.b = s1.idx;
            rec.c = s2.idx;
            if inst.op.is_mem_read() {
                rec.flags |= F_IS_LOAD;
            }

            // Validate in the legacy engine's execute-stage order, so a
            // multiply-malformed instruction reports the same reason.
            let lanes = inst.lanes.min(MAX_VLEN);
            let decoded: Result<DOp, u8> = (|| match inst.op {
                Opcode::Mov => {
                    slot_ok(&s0)?;
                    // The legacy scalar operand read rejects a vector
                    // register before the destination is examined.
                    if s0.class == Some(RegClass::Vec) {
                        return Err(R_VEC_WHERE_SCALAR);
                    }
                    let d = inst.dst.ok_or(R_MISSING_DST)?;
                    if s0.class != Some(d.class) {
                        return Err(R_WRITE_MISMATCH);
                    }
                    Ok(DOp::Mov)
                }
                Opcode::Add
                | Opcode::Sub
                | Opcode::And
                | Opcode::Or
                | Opcode::Xor
                | Opcode::Shl
                | Opcode::Shr
                | Opcode::Mul
                | Opcode::Div
                | Opcode::Rem => {
                    slot_class(&s0, RegClass::Int)?;
                    slot_class(&s1, RegClass::Int)?;
                    let d = inst.dst.ok_or(R_MISSING_DST)?;
                    if d.class != RegClass::Int {
                        return Err(R_WRITE_MISMATCH);
                    }
                    Ok(int_dop(inst.op))
                }
                Opcode::FAdd | Opcode::FSub | Opcode::FMul | Opcode::FDiv => {
                    slot_class(&s0, RegClass::Flt)?;
                    slot_class(&s1, RegClass::Flt)?;
                    let d = inst.dst.ok_or(R_MISSING_DST)?;
                    if d.class != RegClass::Flt {
                        return Err(R_WRITE_MISMATCH);
                    }
                    Ok(flt_dop(inst.op))
                }
                Opcode::CvtIF => {
                    slot_class(&s0, RegClass::Int)?;
                    let d = inst.dst.ok_or(R_MISSING_DST)?;
                    if d.class != RegClass::Flt {
                        return Err(R_WRITE_MISMATCH);
                    }
                    Ok(DOp::CvtIF)
                }
                Opcode::CvtFI => {
                    slot_class(&s0, RegClass::Flt)?;
                    let d = inst.dst.ok_or(R_MISSING_DST)?;
                    if d.class != RegClass::Int {
                        return Err(R_WRITE_MISMATCH);
                    }
                    Ok(DOp::CvtFI)
                }
                Opcode::Load => {
                    // Legacy checks the destination before the address.
                    let d = inst.dst.ok_or(R_MISSING_DST)?;
                    slot_class(&s0, RegClass::Int)?;
                    slot_class(&s1, RegClass::Int)?;
                    if d.class == RegClass::Vec {
                        return Err(R_WRITE_MISMATCH);
                    }
                    Ok(DOp::Load)
                }
                Opcode::Store => {
                    slot_class(&s0, RegClass::Int)?;
                    slot_class(&s1, RegClass::Int)?;
                    slot_ok(&s2)?;
                    if s2.class == Some(RegClass::Vec) {
                        return Err(R_VEC_WHERE_SCALAR);
                    }
                    if inst.mem.is_none() {
                        return Err(R_MISSING_TAG);
                    }
                    Ok(DOp::Store)
                }
                Opcode::Br(c) => {
                    slot_ok(&s0)?;
                    if s0.class == Some(RegClass::Vec) {
                        return Err(R_VEC_WHERE_SCALAR);
                    }
                    slot_ok(&s1)?;
                    if s1.class == Some(RegClass::Vec) {
                        return Err(R_VEC_WHERE_SCALAR);
                    }
                    match (s0.class, s1.class) {
                        (Some(RegClass::Int), Some(RegClass::Int)) => Ok(DOp::BrI(c)),
                        (Some(RegClass::Flt), Some(RegClass::Flt)) => Ok(DOp::BrF(c)),
                        _ => Err(R_MIXED_BRANCH),
                    }
                }
                Opcode::Jump => {
                    // A jump always takes its target: a missing one errors
                    // at the execute stage, like the legacy engine.
                    if inst.target.is_none() {
                        return Err(R_MISSING_TARGET);
                    }
                    Ok(DOp::Jump)
                }
                Opcode::VAdd | Opcode::VMul => {
                    slot_class(&s0, RegClass::Vec)?;
                    slot_class(&s1, RegClass::Vec)?;
                    let d = inst.dst.ok_or(R_MISSING_DST)?;
                    if d.class != RegClass::Vec {
                        return Err(R_WRITE_MISMATCH);
                    }
                    Ok(if inst.op == Opcode::VAdd {
                        DOp::VAdd(lanes)
                    } else {
                        DOp::VMul(lanes)
                    })
                }
                Opcode::VSplat => {
                    slot_class(&s0, RegClass::Flt)?;
                    let d = inst.dst.ok_or(R_MISSING_DST)?;
                    if d.class != RegClass::Vec {
                        return Err(R_WRITE_MISMATCH);
                    }
                    Ok(DOp::VSplat(lanes))
                }
                Opcode::VReduce => {
                    slot_class(&s0, RegClass::Vec)?;
                    let d = inst.dst.ok_or(R_MISSING_DST)?;
                    if d.class != RegClass::Flt {
                        return Err(R_WRITE_MISMATCH);
                    }
                    Ok(DOp::VReduce(lanes))
                }
                Opcode::VLoad => {
                    let d = inst.dst.ok_or(R_MISSING_DST)?;
                    slot_class(&s0, RegClass::Int)?;
                    slot_class(&s1, RegClass::Int)?;
                    if d.class != RegClass::Vec {
                        return Err(R_WRITE_MISMATCH);
                    }
                    Ok(DOp::VLoad(lanes))
                }
                Opcode::VStore => {
                    slot_class(&s0, RegClass::Int)?;
                    slot_class(&s1, RegClass::Int)?;
                    slot_class(&s2, RegClass::Vec)?;
                    if inst.mem.is_none() {
                        return Err(R_MISSING_TAG);
                    }
                    Ok(DOp::VStore(lanes))
                }
                Opcode::Halt => Ok(DOp::Halt),
                Opcode::Nop => unreachable!("nops are skipped above"),
            })();

            if matches!(inst.op, Opcode::Br(_) | Opcode::Jump) {
                // Targets are resolved lazily at run time: a conditional
                // branch with a missing target only errors when taken.
                rec.target = match inst.target {
                    None => TARGET_MISSING,
                    Some(t) if (t.0 as usize) >= nb => TARGET_OOB,
                    Some(t) => start[t.0 as usize],
                };
            }
            rec.op = match decoded {
                Ok(op) => op,
                Err(r) => DOp::Trap(r),
            };
            recs.push(rec);
        }

        // Block terminator: fall through to the layout successor, or a
        // dead end (detached block / end of layout).
        recs.push(match f.fallthrough(bid) {
            Some(next) => Rec {
                op: DOp::Goto,
                target: start[next.0 as usize],
                flags: 0,
                fu: 4,
                lat: 0,
                dst: 0,
                a: const0,
                b: const0,
                c: const0,
                ext: 0,
                tag: dummy_tag,
                coord: (bid.0, block.insts.len() as u32),
            },
            None => Rec {
                op: DOp::FellOff,
                target: 0,
                flags: 0,
                fu: 4,
                lat: 0,
                dst: 0,
                a: const0,
                b: const0,
                c: const0,
                ext: 0,
                tag: dummy_tag,
                coord: (bid.0, block.insts.len() as u32),
            },
        });
    }
    debug_assert_eq!(recs.len(), n as usize);

    // Unified initial file: vregs all zero (0u64 is both 0i64 and 0.0f64),
    // constants after.
    let mut file_init = vec![0u64; base_len as usize];
    file_init.extend_from_slice(&pool.vals);

    let mut p = DecodedProgram {
        code: Vec::with_capacity(recs.len()),
        ext: Vec::with_capacity(recs.len()),
        tags: Vec::with_capacity(recs.len()),
        coord: Vec::with_capacity(recs.len()),
        file_init,
        mem_words,
        latency: machine.latency,
    };
    for r in recs {
        p.code.push(Slot {
            op: r.op,
            flags: r.flags,
            fu: r.fu,
            lat: r.lat,
            a: r.a,
            b: r.b,
            c: r.c,
            dst: r.dst,
            target: r.target,
        });
        p.ext.push(r.ext);
        p.tags.push(r.tag);
        p.coord.push(r.coord);
    }
    p
}

/// Execute a decoded program under explicit limits.
///
/// `machine` supplies the *runtime* parameters — issue width, branch
/// slots, FU limits and memory hierarchy; the latency table must be the
/// one the program was decoded with.
pub fn simulate_decoded(
    p: &DecodedProgram,
    machine: &Machine,
    init_mem: Vec<u64>,
    limits: SimLimits,
) -> Result<SimResult, SimError> {
    debug_assert_eq!(
        p.latency, machine.latency,
        "decoded program was built for a different latency table"
    );
    // Monomorphize per memory model: the perfect path inlines to two
    // counter bumps, the cache path skips the Box<dyn> indirection.
    match machine.mem {
        MemConfig::Perfect => run(p, machine, init_mem, limits, PerfectMem::new()),
        MemConfig::Cache(params) => run(p, machine, init_mem, limits, CacheMem::new(params)),
    }
}

fn run<M: MemModel>(
    p: &DecodedProgram,
    machine: &Machine,
    mem: Vec<u64>,
    limits: SimLimits,
    memsys: M,
) -> Result<SimResult, SimError> {
    let issue_width = machine.issue_width.max(1);
    // Any per-class limit at or above the issue width can never bind:
    // class counts are bounded by the slot count, which stalls first. The
    // paper's base model (FuLimits::UNLIMITED) takes the specialized
    // engine with no FU accounting at all.
    let fu = [
        machine.fu.int_alu,
        machine.fu.int_mul_div,
        machine.fu.fp,
        machine.fu.mem,
        machine.fu.vec,
    ];
    if fu.iter().all(|&l| l >= issue_width) {
        engine::<M, false>(p, machine, mem, limits, memsys)
    } else {
        engine::<M, true>(p, machine, mem, limits, memsys)
    }
}

/// Read `v[i]` without a bounds check.
///
/// Safety: every index the run loop uses is validated at decode time —
/// operand/destination indices are in `0..file_len()` (out-of-range
/// registers decode to `TrapEarly`, which returns before the interlock
/// stage), and `pc` stays in `0..num_records()` (records that fall
/// through have a successor, and every block ends in a non-falling
/// terminator; targets are block starts or handled sentinels).
#[inline(always)]
fn rd(v: &[u64], i: usize) -> u64 {
    debug_assert!(i < v.len());
    unsafe { *v.get_unchecked(i) }
}

/// Write `v[i]` without a bounds check (same invariants as [`rd`]).
#[inline(always)]
fn wr(v: &mut [u64], i: usize, x: u64) {
    debug_assert!(i < v.len());
    unsafe { *v.get_unchecked_mut(i) = x }
}

/// Read `v[i]` without a bounds check (same invariants as [`rd`]; the
/// side arrays are built in lockstep with `code`, so `pc` indexes them).
#[inline(always)]
fn rd_i64(v: &[i64], i: usize) -> i64 {
    debug_assert!(i < v.len());
    unsafe { *v.get_unchecked(i) }
}

/// Increment `v[i]` without a bounds check (the branch-counter arrays are
/// allocated with one entry per record, and `pc < num_records()`).
#[inline(always)]
fn bump(v: &mut [u64], i: usize) {
    debug_assert!(i < v.len());
    unsafe { *v.get_unchecked_mut(i) += 1 }
}

// The issue prologue (`issue!`) updates the slot/branch accounting in every
// arm; arms that end the cycle themselves (taken branches, halt, trap) then
// overwrite or abandon those counters, which trips `unused_assignments`.
#[allow(unused_assignments)]
fn engine<M: MemModel, const FU: bool>(
    p: &DecodedProgram,
    machine: &Machine,
    mut mem: Vec<u64>,
    limits: SimLimits,
    mut memsys: M,
) -> Result<SimResult, SimError> {
    if mem.len() < p.mem_words {
        mem.resize(p.mem_words, 0);
    }
    let max_cycles = limits.max_cycles;
    let max_dyn_insts = limits.max_dyn_insts;
    let code = &p.code[..];
    let mut file: Vec<u64> = p.file_init.clone();
    // Index-addressed scoreboard: ready time per file entry (constants
    // are never written, so theirs stays 0).
    let mut ready: Vec<u64> = vec![0; file.len()];
    let n = code.len();
    // Dense per-pc branch counters; the profile map is built once at exit.
    let mut br_exec = vec![0u64; n];
    let mut br_taken = vec![0u64; n];
    // Store history for the same-cycle alias stall, with the legacy push
    // and drain behaviour byte-for-byte. Entries are pushed at their issue
    // cycle, and the issue cursor never decreases, so timestamps are
    // non-decreasing along the vector; `rs_start` tracks where the newest
    // same-cycle run begins so a load scans only that suffix (older
    // entries can never equal a candidate cycle `t >= cursor`), and
    // `rs_last` mirrors that run's timestamp so the common no-store case
    // is one compare.
    let mut recent_stores: Vec<(MemLoc, u64)> = Vec::new();
    let mut rs_start: usize = 0;
    let mut rs_last: u64 = u64::MAX;

    let issue_width = machine.issue_width.max(1);
    let branch_slot_limit = machine.branch_slots.max(1);
    // Slot 5 (branch/none) is accounted by `branch_slots`, never here.
    let fu_limit: [u32; 6] = [
        machine.fu.int_alu,
        machine.fu.int_mul_div,
        machine.fu.fp,
        machine.fu.mem,
        machine.fu.vec,
        u32::MAX,
    ];

    let mut cursor: u64 = 0;
    let mut slots: u32 = 0;
    let mut br_used: u32 = 0;
    let mut fu_slots = [0u32; 6];
    let mut dyn_insts: u64 = 0;
    let mut pc: usize = 0;

    loop {
        debug_assert!(pc < n);
        let s = unsafe { *code.get_unchecked(pc) };
        let lat = s.lat as u64;
        let ai = s.a as usize;
        let bi = s.b as usize;

        // Issue-stage prologue, expanded into each opcode's arm so the
        // flag tests fold to constants wherever the opcode implies them
        // (every ALU op has a destination, only loads alias-check, only
        // branches consume a branch slot). Ops whose flags are *not*
        // implied by the opcode — stores/branches/halt may carry a stray
        // destination, a `Trap` record can carry any flags — pass the
        // dynamic flag expression instead, so timing stays bit-for-bit
        // with the legacy engine on malformed input too.
        macro_rules! issue {
            ($has_dst:expr, $is_br:expr, $is_load:expr) => {{
                // 1. Earliest issue by interlocks (RAW on sources, WAW on
                //    the destination). Unused slots point at constants
                //    (ready 0).
                let mut t = cursor;
                t = t.max(rd(&ready, ai));
                t = t.max(rd(&ready, bi));
                t = t.max(rd(&ready, s.c as usize));
                if $has_dst {
                    t = t.max((rd(&ready, s.dst as usize) + 1).saturating_sub(lat));
                }
                if $is_load && t == rs_last {
                    // Same-cycle aliasing store forces +1 (store visible
                    // at issue+1). Earlier-cycle stores are already
                    // visible; every stored timestamp is <= cursor <= t,
                    // so only the newest same-cycle run can match, and
                    // after one +1 nothing can: the legacy re-scan loop
                    // runs at most once.
                    let tag = &p.tags[pc];
                    if recent_stores[rs_start..].iter().any(|(stag, _)| stag.may_alias(tag)) {
                        t += 1;
                    }
                }

                // 2. Slot accounting (in-order issue, issue_width per
                //    cycle, one branch slot, per-class FU limits). On the
                //    no-FU-limit path a cycle can stall issue at most once
                //    (after a reset, `slots == br_used == 0` pass both
                //    checks), so the legacy retry loop reduces to one step.
                if t > cursor {
                    cursor = t;
                    slots = 0;
                    br_used = 0;
                    if FU {
                        fu_slots = [0; 6];
                    }
                }
                if FU {
                    let fi = s.fu as usize;
                    while slots >= issue_width
                        || ($is_br && br_used >= branch_slot_limit)
                        || fu_slots[fi] >= fu_limit[fi]
                    {
                        cursor += 1;
                        slots = 0;
                        br_used = 0;
                        fu_slots = [0; 6];
                    }
                    fu_slots[fi] += 1;
                } else if slots >= issue_width || ($is_br && br_used >= branch_slot_limit) {
                    cursor += 1;
                    slots = 0;
                    br_used = 0;
                }
                let t = cursor;
                slots += 1;
                if $is_br {
                    br_used += 1;
                }
                if t > max_cycles {
                    return Err(SimError::CycleLimit(max_cycles));
                }
                dyn_insts += 1;
                if dyn_insts > max_dyn_insts {
                    return Err(SimError::DynInstLimit(max_dyn_insts));
                }
                t
            }};
        }

        // One fused dispatch per record: issue timing and execute live in
        // the same arm. All register-file accesses go through `rd`/`wr`:
        // the indices were validated at decode time (see `rd`).
        match s.op {
            DOp::Goto => {
                // Control records consume no issue resources.
                pc = s.target as usize;
                continue;
            }
            DOp::FellOff => return Err(SimError::FellOffEnd(BlockId(p.coord[pc].0))),
            DOp::TrapEarly(r) => return Err(p.malformed(pc, r)),
            DOp::Add => {
                let t = issue!(true, false, false);
                let v = (rd(&file, ai) as i64).wrapping_add(rd(&file, bi) as i64);
                let d = s.dst as usize;
                wr(&mut file, d, v as u64);
                wr(&mut ready, d, t + lat);
            }
            DOp::Sub => {
                let t = issue!(true, false, false);
                let v = (rd(&file, ai) as i64).wrapping_sub(rd(&file, bi) as i64);
                let d = s.dst as usize;
                wr(&mut file, d, v as u64);
                wr(&mut ready, d, t + lat);
            }
            DOp::And => {
                let t = issue!(true, false, false);
                let d = s.dst as usize;
                let v = rd(&file, ai) & rd(&file, bi);
                wr(&mut file, d, v);
                wr(&mut ready, d, t + lat);
            }
            DOp::Or => {
                let t = issue!(true, false, false);
                let d = s.dst as usize;
                let v = rd(&file, ai) | rd(&file, bi);
                wr(&mut file, d, v);
                wr(&mut ready, d, t + lat);
            }
            DOp::Xor => {
                let t = issue!(true, false, false);
                let d = s.dst as usize;
                let v = rd(&file, ai) ^ rd(&file, bi);
                wr(&mut file, d, v);
                wr(&mut ready, d, t + lat);
            }
            DOp::Shl => {
                let t = issue!(true, false, false);
                let v = (rd(&file, ai) as i64).wrapping_shl((rd(&file, bi) & 63) as u32);
                let d = s.dst as usize;
                wr(&mut file, d, v as u64);
                wr(&mut ready, d, t + lat);
            }
            DOp::Shr => {
                let t = issue!(true, false, false);
                let v = (rd(&file, ai) as i64).wrapping_shr((rd(&file, bi) & 63) as u32);
                let d = s.dst as usize;
                wr(&mut file, d, v as u64);
                wr(&mut ready, d, t + lat);
            }
            DOp::Mul => {
                let t = issue!(true, false, false);
                let v = (rd(&file, ai) as i64).wrapping_mul(rd(&file, bi) as i64);
                let d = s.dst as usize;
                wr(&mut file, d, v as u64);
                wr(&mut ready, d, t + lat);
            }
            DOp::Div => {
                let t = issue!(true, false, false);
                let (a, b) = (rd(&file, ai) as i64, rd(&file, bi) as i64);
                let v = if b == 0 { 0 } else { a.wrapping_div(b) };
                let d = s.dst as usize;
                wr(&mut file, d, v as u64);
                wr(&mut ready, d, t + lat);
            }
            DOp::Rem => {
                let t = issue!(true, false, false);
                let (a, b) = (rd(&file, ai) as i64, rd(&file, bi) as i64);
                let v = if b == 0 { 0 } else { a.wrapping_rem(b) };
                let d = s.dst as usize;
                wr(&mut file, d, v as u64);
                wr(&mut ready, d, t + lat);
            }
            DOp::FAdd => {
                let t = issue!(true, false, false);
                let v = f64::from_bits(rd(&file, ai)) + f64::from_bits(rd(&file, bi));
                let d = s.dst as usize;
                wr(&mut file, d, v.to_bits());
                wr(&mut ready, d, t + lat);
            }
            DOp::FSub => {
                let t = issue!(true, false, false);
                let v = f64::from_bits(rd(&file, ai)) - f64::from_bits(rd(&file, bi));
                let d = s.dst as usize;
                wr(&mut file, d, v.to_bits());
                wr(&mut ready, d, t + lat);
            }
            DOp::FMul => {
                let t = issue!(true, false, false);
                let v = f64::from_bits(rd(&file, ai)) * f64::from_bits(rd(&file, bi));
                let d = s.dst as usize;
                wr(&mut file, d, v.to_bits());
                wr(&mut ready, d, t + lat);
            }
            DOp::FDiv => {
                let t = issue!(true, false, false);
                let v = f64::from_bits(rd(&file, ai)) / f64::from_bits(rd(&file, bi));
                let d = s.dst as usize;
                wr(&mut file, d, v.to_bits());
                wr(&mut ready, d, t + lat);
            }
            DOp::Mov => {
                let t = issue!(true, false, false);
                let d = s.dst as usize;
                let v = rd(&file, ai);
                wr(&mut file, d, v);
                wr(&mut ready, d, t + lat);
            }
            DOp::CvtIF => {
                let t = issue!(true, false, false);
                let d = s.dst as usize;
                let v = ((rd(&file, ai) as i64) as f64).to_bits();
                wr(&mut file, d, v);
                wr(&mut ready, d, t + lat);
            }
            DOp::CvtFI => {
                let t = issue!(true, false, false);
                let d = s.dst as usize;
                let v = (f64::from_bits(rd(&file, ai)) as i64) as u64;
                wr(&mut file, d, v);
                wr(&mut ready, d, t + lat);
            }
            DOp::Load => {
                let t = issue!(true, false, true);
                let addr = (rd(&file, ai) as i64)
                    .wrapping_add(rd(&file, bi) as i64)
                    .wrapping_add(rd_i64(&p.ext, pc));
                // Non-excepting: out-of-range reads return zero (the
                // address range check stays, it is part of the model).
                let bits = if addr >= 0 && (addr as usize) < mem.len() {
                    mem[addr as usize]
                } else {
                    0
                };
                // A cache miss delays only this load's result (the cache
                // is non-blocking for loads); issue continues.
                let extra = memsys.access(Access::Load, addr as u64);
                let d = s.dst as usize;
                wr(&mut file, d, bits);
                wr(&mut ready, d, t + lat + extra);
            }
            DOp::Store => {
                let t = issue!(s.flags & F_HAS_DST != 0, false, false);
                let addr = (rd(&file, ai) as i64)
                    .wrapping_add(rd(&file, bi) as i64)
                    .wrapping_add(rd_i64(&p.ext, pc));
                if addr >= 0 && (addr as usize) < mem.len() {
                    mem[addr as usize] = rd(&file, s.c as usize);
                }
                // Track the newest same-cycle run for the load-side scan;
                // push/drain thresholds are the legacy ones.
                if rs_last != t {
                    rs_start = recent_stores.len();
                    rs_last = t;
                }
                recent_stores.push((p.tags[pc], t));
                if recent_stores.len() > 64 {
                    recent_stores.drain(..32);
                    rs_start = rs_start.saturating_sub(32);
                }
                // A store miss blocks in-order issue until the
                // write-allocate fill completes (extra = 0 under perfect
                // memory: bit-for-bit legacy timing).
                let extra = memsys.access(Access::Store, addr as u64);
                if extra > 0 {
                    cursor = t + extra;
                    slots = 0;
                    br_used = 0;
                    fu_slots = [0; 6];
                }
            }
            DOp::VAdd(lanes) | DOp::VMul(lanes) => {
                let t = issue!(true, false, false);
                let mul = matches!(s.op, DOp::VMul(_));
                let d = s.dst as usize;
                for l in 0..VL as usize {
                    let v = if l < lanes as usize {
                        let x = f64::from_bits(rd(&file, ai + l));
                        let y = f64::from_bits(rd(&file, bi + l));
                        if mul {
                            x * y
                        } else {
                            x + y
                        }
                    } else {
                        0.0
                    };
                    wr(&mut file, d + l, v.to_bits());
                }
                wr(&mut ready, d, t + lat);
            }
            DOp::VSplat(lanes) => {
                let t = issue!(true, false, false);
                let v = rd(&file, ai);
                let d = s.dst as usize;
                for l in 0..VL as usize {
                    wr(&mut file, d + l, if l < lanes as usize { v } else { 0 });
                }
                wr(&mut ready, d, t + lat);
            }
            DOp::VReduce(lanes) => {
                let t = issue!(true, false, false);
                let mut acc = 0.0f64;
                for l in 0..lanes as usize {
                    acc += f64::from_bits(rd(&file, ai + l));
                }
                let d = s.dst as usize;
                wr(&mut file, d, acc.to_bits());
                wr(&mut ready, d, t + lat);
            }
            DOp::VLoad(lanes) => {
                let t = issue!(true, false, true);
                let addr = (rd(&file, ai) as i64)
                    .wrapping_add(rd(&file, bi) as i64)
                    .wrapping_add(rd_i64(&p.ext, pc));
                let d = s.dst as usize;
                // Per-lane accesses so MemStats count every element; the
                // widest miss delays the whole result.
                let mut extra = 0u64;
                for l in 0..VL as usize {
                    let bits = if l < lanes as usize {
                        let a = addr.wrapping_add(l as i64);
                        let b = if a >= 0 && (a as usize) < mem.len() {
                            mem[a as usize]
                        } else {
                            0
                        };
                        extra = extra.max(memsys.access(Access::Load, a as u64));
                        b
                    } else {
                        0
                    };
                    wr(&mut file, d + l, bits);
                }
                wr(&mut ready, d, t + lat + extra);
            }
            DOp::VStore(lanes) => {
                let t = issue!(s.flags & F_HAS_DST != 0, false, false);
                let addr = (rd(&file, ai) as i64)
                    .wrapping_add(rd(&file, bi) as i64)
                    .wrapping_add(rd_i64(&p.ext, pc));
                let ci = s.c as usize;
                let mut extra = 0u64;
                for l in 0..lanes as usize {
                    let a = addr.wrapping_add(l as i64);
                    if a >= 0 && (a as usize) < mem.len() {
                        mem[a as usize] = rd(&file, ci + l);
                    }
                    extra = extra.max(memsys.access(Access::Store, a as u64));
                }
                if rs_last != t {
                    rs_start = recent_stores.len();
                    rs_last = t;
                }
                recent_stores.push((p.tags[pc], t));
                if recent_stores.len() > 64 {
                    recent_stores.drain(..32);
                    rs_start = rs_start.saturating_sub(32);
                }
                if extra > 0 {
                    cursor = t + extra;
                    slots = 0;
                    br_used = 0;
                    fu_slots = [0; 6];
                }
            }
            DOp::BrI(c) => {
                let t = issue!(s.flags & F_HAS_DST != 0, true, false);
                let taken = c.eval(rd(&file, ai) as i64, rd(&file, bi) as i64);
                bump(&mut br_exec, pc);
                if taken {
                    bump(&mut br_taken, pc);
                    pc = taken_target(p, pc, s.target)?;
                    cursor = t + lat;
                    slots = 0;
                    br_used = 0;
                    fu_slots = [0; 6];
                    continue;
                }
            }
            DOp::BrF(c) => {
                let t = issue!(s.flags & F_HAS_DST != 0, true, false);
                let taken = c.eval(f64::from_bits(rd(&file, ai)), f64::from_bits(rd(&file, bi)));
                bump(&mut br_exec, pc);
                if taken {
                    bump(&mut br_taken, pc);
                    pc = taken_target(p, pc, s.target)?;
                    cursor = t + lat;
                    slots = 0;
                    br_used = 0;
                    fu_slots = [0; 6];
                    continue;
                }
            }
            DOp::Jump => {
                let t = issue!(s.flags & F_HAS_DST != 0, true, false);
                pc = taken_target(p, pc, s.target)?;
                cursor = t + lat;
                slots = 0;
                br_used = 0;
                fu_slots = [0; 6];
                continue;
            }
            DOp::Halt => {
                let t = issue!(s.flags & F_HAS_DST != 0, false, false);
                dyn_insts -= 1; // halt is not work
                let mut branch_profile = HashMap::new();
                for (i, &e) in br_exec.iter().enumerate() {
                    if e > 0 {
                        let (block, index) = p.coord[i];
                        branch_profile.insert((block, index as usize), (e, br_taken[i]));
                    }
                }
                return Ok(SimResult {
                    cycles: t + 1,
                    dyn_insts,
                    memory: mem,
                    branch_profile,
                    mem: memsys.stats(),
                });
            }
            DOp::Trap(r) => {
                // Interlocks, slot accounting and budget checks all run
                // before the execute-stage error fires, exactly like the
                // legacy engine (CycleLimit beats Malformed).
                let _t = issue!(
                    s.flags & F_HAS_DST != 0,
                    s.flags & F_IS_BRANCH != 0,
                    s.flags & F_IS_LOAD != 0
                );
                return Err(p.malformed(pc, r));
            }
        }
        pc += 1;
    }
}

/// Resolve a taken branch's pre-decoded target into the new pc.
fn taken_target(p: &DecodedProgram, pc: usize, target: u32) -> Result<usize, SimError> {
    match target {
        TARGET_MISSING => Err(p.malformed(pc, R_MISSING_TARGET)),
        TARGET_OOB => {
            // The legacy engine indexes the block table and panics; upper
            // layers (grid, guard, campaign) contain panics per point.
            let (block, index) = p.coord[pc];
            panic!("branch target out of range at B{block}[{index}]")
        }
        t => Ok(t as usize),
    }
}
