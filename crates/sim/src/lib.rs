//! # ilpc-sim — execution-driven cycle simulator
//!
//! Models the paper's node processor (§3.1): in-order multi-issue with
//! register interlocks, deterministic Table-1 latencies, one branch slot per
//! cycle, non-excepting loads, and a taken-branch redirect of one cycle.
//! The simulator *executes* the compiled module on real data — trip counts,
//! preconditioning loops and side exits all run — and reports total cycles
//! and dynamic instructions. Architectural results live in a flat
//! word-addressed memory that tests compare against the AST interpreter.
//!
//! Data-memory timing is delegated to the machine's pluggable
//! [`ilpc_mem::MemModel`] (`Machine::mem`). The default,
//! `MemConfig::Perfect`, is the paper's 100 % cache hit rate and charges
//! zero extra cycles, reproducing the original simulator cycle-for-cycle.
//! A finite cache charges extra miss cycles: a missing load's result is
//! simply ready later (non-blocking loads, in the spirit of the paper's
//! non-excepting speculative loads), while a missing store stalls issue
//! until the write-allocate fill completes (blocking, in-order).
//!
//! ## Issue model
//!
//! Instructions issue strictly in scheduled order, up to `issue_width` per
//! cycle (one branch). An instruction stalls until:
//!
//! * every source register is ready (`RAW`, ready = producer issue +
//!   latency);
//! * its own write would not complete before a pending earlier write to the
//!   same register (`WAW` interlock);
//! * no may-aliasing store issued in the same cycle (stores become visible
//!   at issue+1).
//!
//! `WAR` needs no interlock: registers are read at issue and issue is in
//! order. A taken branch redirects fetch to its target starting the next
//! cycle; instructions after it in the block are squashed (never executed —
//! speculation legality is the scheduler's responsibility).
//!
//! ## Two engines, one specification
//!
//! [`simulate_limited`] runs the pre-decoded engine ([`decoded`]): a
//! one-time [`decode`] pass lowers the module to flat struct-of-arrays
//! records with pre-resolved operand indices, latencies and FU classes, and
//! the hot loop runs over those with index-addressed scoreboards. The
//! original tree-walking interpreter survives unchanged in [`reference`]
//! (cargo feature `oracle`, default on) as the executable specification;
//! the differential suite proves both engines cycle- and result-identical
//! across the full evaluation grid.

use ilpc_ir::interp::DataInit;
use ilpc_ir::value::ArrayVal;
use ilpc_ir::{BlockId, Module, RegClass, SymId, SymTab};
use ilpc_machine::Machine;
use ilpc_mem::MemStats;

/// Simulation statistics and final state.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Total execution cycles (issue time of `halt` + 1).
    pub cycles: u64,
    /// Dynamically executed instructions (excluding `halt`).
    pub dyn_insts: u64,
    /// Final memory image (words).
    pub memory: Vec<u64>,
    /// Per-branch execution profile: `(block, inst index) -> (executed,
    /// taken)` counts for every conditional branch, in a dense map keyed by
    /// `(BlockId.0, index)`. Drives profile-based superblock formation.
    pub branch_profile: std::collections::HashMap<(u32, usize), (u64, u64)>,
    /// Memory-hierarchy statistics from the machine's `MemModel` (all-hit
    /// counters under the default perfect memory).
    pub mem: MemStats,
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The cycle budget was exhausted (runaway loop — a compiler bug).
    CycleLimit(u64),
    /// The dynamic-instruction watchdog fired: the program executed more
    /// instructions than any legitimate compilation could need (a runaway
    /// wide-issue loop whose cycle count stays deceptively low).
    DynInstLimit(u64),
    /// Control fell off the end of a block with no fall-through.
    FellOffEnd(BlockId),
    /// An instruction is structurally invalid (e.g. a hand-edited or
    /// truncated `.ilpc` module, or a corrupted pass output): missing
    /// destination register, memory tag or branch target, an empty or
    /// wrong-class operand, or an out-of-range register id.
    Malformed {
        block: BlockId,
        index: usize,
        reason: &'static str,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::CycleLimit(n) => write!(f, "cycle limit {n} exhausted"),
            SimError::DynInstLimit(n) => {
                write!(f, "dynamic instruction limit {n} exhausted")
            }
            SimError::FellOffEnd(b) => write!(f, "fell off the end of {b}"),
            SimError::Malformed { block, index, reason } => {
                write!(f, "malformed instruction {block}[{index}]: {reason}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Execution budgets for one simulation.
///
/// The cycle limit catches runaway loops; the dynamic-instruction watchdog
/// additionally bounds total *work*, which matters on wide machines where a
/// runaway straight-line region can execute many instructions per cycle and
/// ride under a pure cycle budget for a long time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimLimits {
    pub max_cycles: u64,
    pub max_dyn_insts: u64,
}

impl SimLimits {
    /// Limits derived from a cycle budget alone: the watchdog allows up to
    /// 16 executed instructions per budgeted cycle, far above any
    /// legitimate sustained IPC of the modeled machines.
    pub fn cycles(max_cycles: u64) -> SimLimits {
        SimLimits { max_cycles, max_dyn_insts: max_cycles.saturating_mul(16) }
    }
}

/// Build the initial flat memory for `symtab` from `init` (arrays are the
/// leading symbols in declaration order; all other symbols start zeroed).
pub fn memory_from_init(symtab: &SymTab, init: &DataInit) -> Vec<u64> {
    let (bases, total) = symtab.layout();
    let mut mem = vec![0u64; total];
    for (k, arr) in init.arrays.iter().enumerate() {
        let Some(arr) = arr else { continue };
        let sym = SymId(k as u32);
        let decl = symtab.get(sym);
        assert_eq!(decl.elems, arr.len(), "init size for {}", decl.name);
        assert_eq!(decl.class, arr.class(), "init class for {}", decl.name);
        let base = bases[k];
        for i in 0..arr.len() {
            mem[base + i] = arr.get(i as i64).to_bits();
        }
    }
    mem
}

/// Read back one symbol's contents from a memory image.
pub fn read_symbol(symtab: &SymTab, memory: &[u64], sym: SymId) -> ArrayVal {
    let (bases, _) = symtab.layout();
    let decl = symtab.get(sym);
    let base = bases[sym.0 as usize];
    match decl.class {
        RegClass::Int => ArrayVal::I(
            memory[base..base + decl.elems].iter().map(|&w| w as i64).collect(),
        ),
        RegClass::Flt => ArrayVal::F(
            memory[base..base + decl.elems]
                .iter()
                .map(|&w| f64::from_bits(w))
                .collect(),
        ),
        RegClass::Vec => panic!("arrays have no vector element class"),
    }
}

pub mod decoded;
#[cfg(feature = "oracle")]
pub mod reference;

pub use decoded::{decode, simulate_decoded, DecodedProgram};

/// Execute `m` on `machine` starting from `init_mem`, with a cycle budget
/// and the default work watchdog (see [`SimLimits::cycles`]).
pub fn simulate(
    m: &Module,
    machine: &Machine,
    init_mem: Vec<u64>,
    max_cycles: u64,
) -> Result<SimResult, SimError> {
    simulate_limited(m, machine, init_mem, SimLimits::cycles(max_cycles))
}

/// Execute `m` on `machine` starting from `init_mem` under explicit limits.
///
/// Decodes `m` once ([`decode`]) and runs the pre-decoded engine over it
/// ([`simulate_decoded`]). Callers that simulate the same compiled module
/// many times (parameter sweeps varying only simulator-side knobs) should
/// decode once and call [`simulate_decoded`] per point; the harness
/// artifact cache does exactly that.
pub fn simulate_limited(
    m: &Module,
    machine: &Machine,
    init_mem: Vec<u64>,
    limits: SimLimits,
) -> Result<SimResult, SimError> {
    let program = decoded::decode(m, machine);
    decoded::simulate_decoded(&program, machine, init_mem, limits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilpc_ir::inst::Inst;
    use ilpc_ir::{Cond, MemLoc, Opcode, Operand, Reg};

    /// Figure 1b loop: each iteration takes 7 cycles on the unlimited
    /// machine (loads 0, fadd 2, store 5, add 5, blt 6, redirect 7).
    #[test]
    fn fig1b_steady_state_is_seven_cycles_per_iteration() {
        let mut m = Module::new("fig1b");
        let a = m.symtab.declare("A", 16, RegClass::Flt);
        let b = m.symtab.declare("B", 16, RegClass::Flt);
        let c = m.symtab.declare("C", 16, RegClass::Flt);
        let f = &mut m.func;
        let r1 = f.new_reg(RegClass::Int);
        let r5 = f.new_reg(RegClass::Int);
        let r2 = f.new_reg(RegClass::Flt);
        let r3 = f.new_reg(RegClass::Flt);
        let r4 = f.new_reg(RegClass::Flt);
        let entry = f.add_block("entry");
        let body = f.add_block("body");
        let exit = f.add_block("exit");
        f.block_mut(entry).insts.extend([
            Inst::mov(r1, Operand::ImmI(0)),
            Inst::mov(r5, Operand::ImmI(8)),
        ]);
        f.block_mut(body).insts.extend([
            Inst::load(r2, Operand::Sym(a), r1.into(), MemLoc::affine(a, 1, 0)),
            Inst::load(r3, Operand::Sym(b), r1.into(), MemLoc::affine(b, 1, 0)),
            Inst::alu(Opcode::FAdd, r4, r2.into(), r3.into()),
            Inst::store(Operand::Sym(c), r1.into(), r4.into(), MemLoc::affine(c, 1, 0)),
            Inst::alu(Opcode::Add, r1, r1.into(), Operand::ImmI(1)),
            Inst::br(Cond::Lt, r1.into(), r5.into(), body),
        ]);
        f.block_mut(exit).insts.push(Inst::halt());

        let mem = vec![0u64; 48];
        let res = simulate(&m, &Machine::unlimited(), mem, 10_000).unwrap();
        // entry: 2 movs at cycle 0; loop body starts at cycle 0 (fall
        // through, r1 ready at 1...). Just assert steady state: 8
        // iterations at 7 cycles each dominate.
        assert!(res.cycles >= 8 * 7, "cycles = {}", res.cycles);
        assert!(res.cycles <= 8 * 7 + 6, "cycles = {}", res.cycles);
        assert_eq!(res.dyn_insts, 2 + 8 * 6 + 0);
    }

    #[test]
    fn executes_and_stores_correct_values() {
        let mut m = Module::new("t");
        let a = m.symtab.declare("A", 4, RegClass::Flt);
        let out = m.symtab.declare("out", 1, RegClass::Flt);
        let f = &mut m.func;
        let i = f.new_reg(RegClass::Int);
        let s = f.new_reg(RegClass::Flt);
        let x = f.new_reg(RegClass::Flt);
        let entry = f.add_block("entry");
        let body = f.add_block("body");
        let exit = f.add_block("exit");
        f.block_mut(entry).insts.extend([
            Inst::mov(i, Operand::ImmI(0)),
            Inst::mov(s, Operand::ImmF(0.0)),
        ]);
        f.block_mut(body).insts.extend([
            Inst::load(x, Operand::Sym(a), i.into(), MemLoc::affine(a, 1, 0)),
            Inst::alu(Opcode::FAdd, s, s.into(), x.into()),
            Inst::alu(Opcode::Add, i, i.into(), Operand::ImmI(1)),
            Inst::br(Cond::Lt, i.into(), Operand::ImmI(4), body),
        ]);
        f.block_mut(exit).insts.extend([
            Inst::store(Operand::Sym(out), Operand::ImmI(0), s.into(), MemLoc::affine(out, 0, 0)),
            Inst::halt(),
        ]);
        let init = DataInit::new();
        let mut mem = memory_from_init(&m.symtab, &init);
        for (k, v) in [1.5f64, 2.5, 3.0, -1.0].iter().enumerate() {
            mem[k] = v.to_bits();
        }
        let res = simulate(&m, &Machine::issue(2), mem, 10_000).unwrap();
        let out_val = read_symbol(&m.symtab, &res.memory, out);
        assert_eq!(out_val, ArrayVal::F(vec![6.0]));
    }

    #[test]
    fn issue_width_changes_cycles_not_results() {
        // Independent movs: 8-wide finishes faster than 1-wide.
        let mut m = Module::new("t");
        let out = m.symtab.declare("out", 8, RegClass::Int);
        let f = &mut m.func;
        let regs: Vec<Reg> = (0..8).map(|_| f.new_reg(RegClass::Int)).collect();
        let blk = f.add_block("b");
        let mut insts: Vec<Inst> = regs
            .iter()
            .enumerate()
            .map(|(k, &r)| Inst::mov(r, Operand::ImmI(k as i64 * 3)))
            .collect();
        for (k, &r) in regs.iter().enumerate() {
            insts.push(Inst::store(
                Operand::Sym(out),
                Operand::ImmI(k as i64),
                r.into(),
                MemLoc::affine(out, 0, k as i64),
            ));
        }
        insts.push(Inst::halt());
        f.block_mut(blk).insts = insts;

        let r1 = simulate(&m, &Machine::issue(1), vec![0; 8], 1000).unwrap();
        let r8 = simulate(&m, &Machine::issue(8), vec![0; 8], 1000).unwrap();
        assert!(r8.cycles < r1.cycles);
        assert_eq!(r1.memory, r8.memory);
        assert_eq!(read_symbol(&m.symtab, &r8.memory, out), ArrayVal::I(vec![0, 3, 6, 9, 12, 15, 18, 21]));
    }

    #[test]
    fn taken_branch_costs_a_cycle_and_squashes() {
        // br taken at 0; the mov after it must not execute.
        let mut m = Module::new("t");
        let out = m.symtab.declare("out", 1, RegClass::Int);
        let f = &mut m.func;
        let x = f.new_reg(RegClass::Int);
        let b0 = f.add_block("b0");
        let b1 = f.add_block("b1");
        f.block_mut(b0).insts.extend([
            Inst::br(Cond::Eq, Operand::ImmI(0), Operand::ImmI(0), b1),
            Inst::mov(x, Operand::ImmI(99)), // squashed
        ]);
        f.block_mut(b1).insts.extend([
            Inst::store(Operand::Sym(out), Operand::ImmI(0), x.into(), MemLoc::affine(out, 0, 0)),
            Inst::halt(),
        ]);
        let res = simulate(&m, &Machine::issue(8), vec![0], 100).unwrap();
        assert_eq!(read_symbol(&m.symtab, &res.memory, out), ArrayVal::I(vec![0]));
        // br at 0, store at 1, halt at 1 → 2 cycles.
        assert_eq!(res.cycles, 2);
        assert_eq!(res.dyn_insts, 2);
    }

    #[test]
    fn nonexcepting_oob_load_reads_zero() {
        let mut m = Module::new("t");
        let a = m.symtab.declare("A", 2, RegClass::Int);
        let out = m.symtab.declare("out", 1, RegClass::Int);
        let f = &mut m.func;
        let v = f.new_reg(RegClass::Int);
        let blk = f.add_block("b");
        f.block_mut(blk).insts.extend([
            Inst::load(v, Operand::Sym(a), Operand::ImmI(999_999), MemLoc::opaque(a)),
            Inst::store(Operand::Sym(out), Operand::ImmI(0), v.into(), MemLoc::affine(out, 0, 0)),
            Inst::halt(),
        ]);
        let res = simulate(&m, &Machine::issue(1), vec![7, 7, 42], 100).unwrap();
        assert_eq!(read_symbol(&m.symtab, &res.memory, out), ArrayVal::I(vec![0]));
    }

    #[test]
    fn memory_port_limit_slows_but_preserves_results() {
        let mut m = Module::new("t");
        let a = m.symtab.declare("A", 8, RegClass::Flt);
        let out = m.symtab.declare("out", 8, RegClass::Flt);
        let f = &mut m.func;
        let regs: Vec<Reg> = (0..8).map(|_| f.new_reg(RegClass::Flt)).collect();
        let blk = f.add_block("b");
        let mut insts: Vec<Inst> = regs
            .iter()
            .enumerate()
            .map(|(k, &r)| {
                Inst::load(r, Operand::Sym(a), Operand::ImmI(k as i64), MemLoc::affine(a, 0, k as i64))
            })
            .collect();
        for (k, &r) in regs.iter().enumerate() {
            insts.push(Inst::store(
                Operand::Sym(out),
                Operand::ImmI(k as i64),
                r.into(),
                MemLoc::affine(out, 0, k as i64),
            ));
        }
        insts.push(Inst::halt());
        f.block_mut(blk).insts = insts;
        let mem: Vec<u64> = (0..16).map(|k| (k as f64).to_bits()).collect();
        let wide = simulate(&m, &Machine::issue(8), mem.clone(), 1000).unwrap();
        let narrow =
            simulate(&m, &Machine::issue(8).with_mem_ports(1), mem, 1000).unwrap();
        assert!(narrow.cycles > wide.cycles);
        assert_eq!(narrow.memory, wide.memory);
    }

    #[test]
    fn runaway_loop_hits_cycle_limit() {
        let mut m = Module::new("t");
        let f = &mut m.func;
        let b0 = f.add_block("b0");
        let b1 = f.add_block("b1");
        f.block_mut(b0).insts.push(Inst::jump(b0));
        f.block_mut(b1).insts.push(Inst::halt());
        match simulate(&m, &Machine::issue(1), vec![], 100) {
            Err(SimError::CycleLimit(100)) => {}
            other => panic!("expected cycle limit, got {other:?}"),
        }
    }

    /// A hand-edited/truncated module (missing dst, memory tag or branch
    /// target) must surface as `SimError::Malformed`, not a panic.
    #[test]
    fn malformed_module_is_a_structured_error() {
        let build = |tamper: fn(&mut Inst)| {
            let mut m = Module::new("t");
            let a = m.symtab.declare("A", 4, RegClass::Flt);
            let f = &mut m.func;
            let x = f.new_reg(RegClass::Flt);
            let blk = f.add_block("b");
            let mut insts = vec![
                Inst::load(x, Operand::Sym(a), Operand::ImmI(0), MemLoc::affine(a, 1, 0)),
                Inst::alu(Opcode::FAdd, x, x.into(), x.into()),
                Inst::br(Cond::Lt, Operand::ImmI(0), Operand::ImmI(1), blk),
                Inst::halt(),
            ];
            tamper(&mut insts[0]);
            tamper(&mut insts[1]);
            tamper(&mut insts[2]);
            f.block_mut(blk).insts = insts;
            m
        };
        let cases: [(fn(&mut Inst), &str); 3] = [
            (|i| i.dst = None, "missing destination register"),
            (|i| i.mem = None, "missing memory tag"),
            (|i| i.target = None, "missing branch target"),
        ];
        for (tamper, want) in cases {
            let m = build(tamper);
            match simulate(&m, &Machine::issue(2), vec![0; 8], 1000) {
                Err(SimError::Malformed { block, reason, .. }) => {
                    assert_eq!(block, BlockId(0));
                    assert_eq!(reason, want);
                }
                other => panic!("expected Malformed({want}), got {other:?}"),
            }
        }
    }

    /// The watchdog catches runaway *work* under a generous cycle budget:
    /// a wide machine retiring many instructions per cycle trips the
    /// dynamic-instruction limit long before the cycle limit.
    #[test]
    fn dyn_inst_watchdog_fires_on_runaway_wide_loop() {
        let mut m = Module::new("t");
        let f = &mut m.func;
        let regs: Vec<Reg> = (0..16).map(|_| f.new_reg(RegClass::Int)).collect();
        let b0 = f.add_block("b0");
        let mut insts: Vec<Inst> =
            regs.iter().map(|&r| Inst::mov(r, Operand::ImmI(1))).collect();
        insts.push(Inst::jump(b0));
        f.block_mut(b0).insts = insts;
        let limits = SimLimits { max_cycles: 1_000_000, max_dyn_insts: 1_000 };
        match simulate_limited(&m, &Machine::unlimited(), vec![], limits) {
            Err(SimError::DynInstLimit(1_000)) => {}
            other => panic!("expected dyn-inst limit, got {other:?}"),
        }
        // The default derived watchdog never fires on a legitimate run.
        assert_eq!(SimLimits::cycles(100).max_dyn_insts, 1_600);
        assert_eq!(SimLimits::cycles(u64::MAX).max_dyn_insts, u64::MAX);
    }

    /// Wrong-class and empty operands surface as `SimError::Malformed`
    /// (previously panics): an empty ALU slot, a float register fed to an
    /// integer add, a class-mismatched write, a mixed-class branch compare,
    /// and an out-of-range register id.
    #[test]
    fn operand_and_class_corruption_is_a_structured_error() {
        let run = |edit: fn(&mut Inst, Reg, Reg)| {
            let mut m = Module::new("t");
            let out = m.symtab.declare("out", 1, RegClass::Int);
            let f = &mut m.func;
            let ri = f.new_reg(RegClass::Int);
            let rf = f.new_reg(RegClass::Flt);
            let blk = f.add_block("b");
            let mut insts = vec![
                Inst::mov(ri, Operand::ImmI(3)),
                Inst::mov(rf, Operand::ImmF(1.5)),
                Inst::alu(Opcode::Add, ri, ri.into(), Operand::ImmI(1)),
                Inst::br(Cond::Lt, ri.into(), Operand::ImmI(0), blk),
                Inst::store(
                    Operand::Sym(out),
                    Operand::ImmI(0),
                    ri.into(),
                    MemLoc::affine(out, 0, 0),
                ),
                Inst::halt(),
            ];
            edit(&mut insts[2], ri, rf);
            edit(&mut insts[3], ri, rf);
            f.block_mut(blk).insts = insts;
            simulate(&m, &Machine::issue(2), vec![0], 1000)
        };
        let cases: [(fn(&mut Inst, Reg, Reg), &str); 5] = [
            (|i, _, _| i.src[0] = Operand::None, "reading empty operand"),
            (
                |i, _, rf| {
                    if i.op == Opcode::Add {
                        i.src[0] = rf.into();
                    }
                },
                "float operand where integer expected",
            ),
            (
                |i, _, rf| {
                    if i.op == Opcode::Add {
                        i.dst = Some(rf);
                    }
                },
                "class mismatch on register write",
            ),
            (
                |i, _, rf| {
                    if i.op.is_branch() {
                        i.src[0] = rf.into();
                    }
                },
                "mixed-class branch comparison",
            ),
            (
                |i, _, _| {
                    if i.op == Opcode::Add {
                        i.dst = Some(Reg::int(4096));
                    }
                },
                "register id out of range",
            ),
        ];
        for (edit, want) in cases {
            match run(edit) {
                Err(SimError::Malformed { reason, .. }) => assert_eq!(reason, want),
                other => panic!("expected Malformed({want}), got {other:?}"),
            }
        }
    }

    /// A streaming-sum module over `A[0..n]` (serial FP accumulation).
    fn sum_module(n: usize) -> (Module, ilpc_ir::SymId) {
        let mut m = Module::new("sum");
        let a = m.symtab.declare("A", n, RegClass::Flt);
        let out = m.symtab.declare("out", 1, RegClass::Flt);
        let f = &mut m.func;
        let i = f.new_reg(RegClass::Int);
        let s = f.new_reg(RegClass::Flt);
        let x = f.new_reg(RegClass::Flt);
        let entry = f.add_block("entry");
        let body = f.add_block("body");
        let exit = f.add_block("exit");
        f.block_mut(entry).insts.extend([
            Inst::mov(i, Operand::ImmI(0)),
            Inst::mov(s, Operand::ImmF(0.0)),
        ]);
        f.block_mut(body).insts.extend([
            Inst::load(x, Operand::Sym(a), i.into(), MemLoc::affine(a, 1, 0)),
            Inst::alu(Opcode::FAdd, s, s.into(), x.into()),
            Inst::alu(Opcode::Add, i, i.into(), Operand::ImmI(1)),
            Inst::br(Cond::Lt, i.into(), Operand::ImmI(n as i64), body),
        ]);
        f.block_mut(exit).insts.extend([
            Inst::store(Operand::Sym(out), Operand::ImmI(0), s.into(), MemLoc::affine(out, 0, 0)),
            Inst::halt(),
        ]);
        (m, out)
    }

    #[test]
    fn cache_misses_slow_timing_but_never_change_results() {
        use ilpc_machine::CacheParams;
        let n = 64usize;
        let (m, out) = sum_module(n);
        let mut mem = vec![0u64; n + 1];
        for (k, w) in mem.iter_mut().enumerate().take(n) {
            *w = (k as f64).to_bits();
        }
        let perfect = simulate(&m, &Machine::issue(4), mem.clone(), 1_000_000).unwrap();
        // A 4-word-line cache streams A with one miss per line.
        let cached_machine =
            Machine::issue(4).with_cache(CacheParams::new(4, 4, 1, 20, 20));
        let cached = simulate(&m, &cached_machine, mem, 1_000_000).unwrap();

        assert_eq!(perfect.memory, cached.memory, "timing must not change results");
        assert_eq!(perfect.dyn_insts, cached.dyn_insts);
        assert_eq!(
            read_symbol(&m.symtab, &cached.memory, out),
            ArrayVal::F(vec![(0..n).map(|k| k as f64).sum()]),
        );
        // Perfect memory: every access is a hit, zero stall cycles.
        assert_eq!(perfect.mem.loads, n as u64);
        assert_eq!(perfect.mem.stores, 1);
        assert_eq!(perfect.mem.misses(), 0);
        assert_eq!(perfect.mem.miss_cycles, 0);
        // Finite cache: 16 cold line fills for A + the store miss.
        assert_eq!(cached.mem.load_misses, 16);
        assert_eq!(cached.mem.store_misses, 1);
        assert_eq!(cached.mem.miss_cycles, 17 * 20);
        assert_eq!(cached.mem.accesses(), cached.mem.hits() + cached.mem.misses());
        // The serial sum chains load→fadd, so miss cycles surface in time.
        assert!(
            cached.cycles > perfect.cycles,
            "{} !> {}",
            cached.cycles,
            perfect.cycles
        );
    }

    #[test]
    fn store_miss_blocks_in_order_issue() {
        use ilpc_machine::CacheParams;
        let mut m = Module::new("t");
        let out = m.symtab.declare("out", 1, RegClass::Int);
        let f = &mut m.func;
        let blk = f.add_block("b");
        f.block_mut(blk).insts.extend([
            Inst::store(Operand::Sym(out), Operand::ImmI(0), Operand::ImmI(9), MemLoc::affine(out, 0, 0)),
            Inst::halt(),
        ]);
        let perfect = simulate(&m, &Machine::issue(8), vec![0], 100).unwrap();
        let machine = Machine::issue(8).with_cache(CacheParams::new(1, 1, 1, 30, 10));
        let cached = simulate(&m, &machine, vec![0], 100).unwrap();
        // store at 0; halt co-issues at 0 → 1 cycle. The 10-cycle store
        // miss stalls issue: halt at 10 → 11 cycles.
        assert_eq!(perfect.cycles, 1);
        assert_eq!(cached.cycles, 11);
        assert_eq!(read_symbol(&m.symtab, &cached.memory, out), ArrayVal::I(vec![9]));
        assert_eq!(cached.mem.store_misses, 1);
        assert_eq!(cached.mem.miss_cycles, 10);
    }

    #[test]
    fn store_load_forwarding_delay() {
        // A load aliasing a same-cycle store is pushed one cycle.
        let mut m = Module::new("t");
        let a = m.symtab.declare("A", 2, RegClass::Int);
        let out = m.symtab.declare("out", 1, RegClass::Int);
        let f = &mut m.func;
        let v = f.new_reg(RegClass::Int);
        let blk = f.add_block("b");
        let tag = MemLoc::affine(a, 0, 0);
        f.block_mut(blk).insts.extend([
            Inst::store(Operand::Sym(a), Operand::ImmI(0), Operand::ImmI(5), tag),
            Inst::load(v, Operand::Sym(a), Operand::ImmI(0), tag),
            Inst::store(Operand::Sym(out), Operand::ImmI(0), v.into(), MemLoc::affine(out, 0, 0)),
            Inst::halt(),
        ]);
        let res = simulate(&m, &Machine::issue(8), vec![0; 3], 100).unwrap();
        assert_eq!(read_symbol(&m.symtab, &res.memory, out), ArrayVal::I(vec![5]));
        // store at 0; load pushed to 1, ready 3; store out at 3; halt 3 → 4.
        assert_eq!(res.cycles, 4);
    }

    /// The pre-decoded engine and the legacy oracle agree on every
    /// observable — cycles, work, memory image, branch profile, memory
    /// stats — under perfect and cached memory alike. (The exhaustive
    /// version of this check runs over the full grid in
    /// `tests/engine_differential.rs`.)
    #[cfg(feature = "oracle")]
    #[test]
    fn decoded_engine_matches_reference_oracle() {
        use ilpc_machine::CacheParams;
        let n = 64usize;
        let (m, _) = sum_module(n);
        let mut mem = vec![0u64; n + 1];
        for (k, w) in mem.iter_mut().enumerate().take(n) {
            *w = (k as f64 * 0.5).to_bits();
        }
        for machine in [
            Machine::issue(1),
            Machine::issue(4),
            Machine::unlimited(),
            Machine::issue(4).with_cache(CacheParams::new(4, 4, 1, 20, 20)),
        ] {
            let fast = simulate(&m, &machine, mem.clone(), 1_000_000).unwrap();
            let oracle =
                reference::simulate_reference(&m, &machine, mem.clone(), 1_000_000).unwrap();
            assert_eq!(fast.cycles, oracle.cycles);
            assert_eq!(fast.dyn_insts, oracle.dyn_insts);
            assert_eq!(fast.memory, oracle.memory);
            assert_eq!(fast.branch_profile, oracle.branch_profile);
            assert_eq!(fast.mem, oracle.mem);
        }
    }

    /// Decode-once reuse: one `DecodedProgram` serves repeated simulations
    /// (what the harness artifact cache does across sweep points).
    #[test]
    fn decoded_program_is_reusable_across_runs() {
        let (m, out) = sum_module(16);
        let machine = Machine::issue(4);
        let program = decode(&m, &machine);
        assert!(program.num_records() > 0);
        assert_eq!(program.latency(), &machine.latency);
        let mut mem = vec![0u64; 17];
        for (k, w) in mem.iter_mut().enumerate().take(16) {
            *w = (k as f64).to_bits();
        }
        let limits = SimLimits::cycles(10_000);
        let r1 = simulate_decoded(&program, &machine, mem.clone(), limits).unwrap();
        let r2 = simulate_decoded(&program, &machine, mem, limits).unwrap();
        assert_eq!(r1.cycles, r2.cycles);
        assert_eq!(r1.memory, r2.memory);
        assert_eq!(
            read_symbol(&m.symtab, &r1.memory, out),
            ArrayVal::F(vec![(0..16).map(|k| k as f64).sum()]),
        );
    }
}
