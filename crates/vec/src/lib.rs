//! # ilpc-vec — superword-level parallelism (SLP) packing
//!
//! The Lev1–Lev4 ladder (unroll, rename, expand) manufactures exactly the
//! isomorphic, independent statement groups that SLP vectorization wants:
//! an 8×-unrolled DOALL body is eight copies of the same statement over
//! consecutive array elements, and accumulator expansion turns a reduction
//! into independent per-copy accumulators. This crate packs those groups
//! into the IR's vector opcodes (`vld`/`vst`/`vadd`/`vmul`/`vsplat`/
//! `vreduce`), following the bottom-up seed-and-extend scheme of goSLP:
//!
//! 1. **Seeds** are groups of `vlen` adjacent loads: same symbol, affine
//!    stride and outer-loop fingerprint in the alias tag, with the tag
//!    displacement increasing by exactly one element per lane. Renaming
//!    and induction expansion give each unrolled copy its own index
//!    register, so adjacency is proven from the displacement metadata
//!    (the same metadata the list scheduler trusts to reorder memory
//!    operations); the emitted vector access carries lane 0's address
//!    operands.
//! 2. **Extension** follows def-use chains: the consumers of a pack's
//!    lanes become candidate packs when they are isomorphic
//!    (`fadd`/`fmul`), lane-aligned, and their remaining operands are
//!    either another pack's lanes in order or a single loop-invariant
//!    operand (realized with `vsplat`). A load feeding several chains
//!    spawns one candidate per lane-aligned use group; the load pack
//!    commits only if *every* group commits.
//! 3. **Terminals** are adjacent-store packs (sunk to the last member) and
//!    uniform-constant accumulator recurrences, which become a vector
//!    accumulator: `vsplat` in the preheader, `vadd` in the loop, and a
//!    `vreduce` folded into the existing scalar reduction chain in the
//!    exit block.
//!
//! ## Pack legality contract
//!
//! A candidate pack is committed only when all of the following hold,
//! otherwise every member stays scalar (scalar fallback — packs never
//! partially commit):
//!
//! * members are distinct, same-opcode instructions of one block, with
//!   pairwise-distinct destinations, each destination defined exactly
//!   once; every use of a destination is the lane-aligned member of a
//!   committed consumer pack (ALU lanes must be single-use; load lanes
//!   may feed one committed pack per use);
//! * no may-aliasing memory write (for loads, which hoist to the first
//!   member) or any may-aliasing access (for stores, which sink to the
//!   last member) sits between the first and last member;
//! * no control transfer sits between the first and last member, and no
//!   operand register is redefined there (a shared operand must read the
//!   same value at every lane);
//! * accumulator packs additionally require the uniform `mov aK, #c`
//!   initializers to share one predecessor block and every `aK` to be
//!   consumed exactly once more, as `t = t + aK` links of one reduction
//!   chain in the loop's unique exit block.
//!
//! The pass is a no-op for `vlen <= 1`, which keeps Lev6 at VLEN=1
//! bit-identical to Lev4.

use ilpc_ir::inst::{Inst, MAX_VLEN};
use ilpc_ir::{BlockId, Module, Opcode, Operand, Reg, RegClass};
use std::collections::HashMap;

/// What the pass did, for `TransformReport` counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlpReport {
    /// Committed packs (vector instructions emitted, splats excluded).
    pub packs_formed: usize,
    /// Scalar instructions replaced by pack members.
    pub stmts_vectorized: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum LaneOperand {
    /// The operand is lane `k` of this pack, for every lane `k`.
    Pack(usize),
    /// The operand is this same (loop-invariant) scalar at every lane.
    Splat(Operand),
}

#[derive(Debug, Clone, PartialEq)]
enum PackKind {
    Load,
    Alu { op: Opcode, operands: [LaneOperand; 2] },
    /// `aK = aK + xK` recurrences over a uniform-constant init.
    Accum {
        x: LaneOperand,
        /// `mov aK, #c` sites (lane order) in the preheader.
        init_block: BlockId,
        init_positions: Vec<usize>,
        init_const: Operand,
        /// `t = t + aK` sites (lane order) in the exit block.
        chain_block: BlockId,
        chain_positions: Vec<usize>,
        chain_var: Reg,
    },
    Store { value: LaneOperand },
}

#[derive(Debug, Clone)]
struct Pack {
    kind: PackKind,
    block: BlockId,
    /// Member positions in the block, lane order (lane 0 first).
    members: Vec<usize>,
}

/// Pack isomorphic independent statement groups into vector instructions.
/// `vlen` is the target lane count; values `<= 1` disable the pass.
pub fn slp_vectorize(m: &mut Module, vlen: u32) -> SlpReport {
    let lanes = vlen.min(MAX_VLEN as u32) as usize;
    if lanes < 2 {
        return SlpReport::default();
    }

    // Whole-function def/use site maps; the single-def/single-use legality
    // rules make liveness queries unnecessary.
    let mut def_sites: HashMap<Reg, Vec<(BlockId, usize)>> = HashMap::new();
    let mut use_sites: HashMap<Reg, Vec<(BlockId, usize)>> = HashMap::new();
    for &b in m.func.layout_order() {
        for (i, inst) in m.func.block(b).insts.iter().enumerate() {
            if let Some(d) = inst.def() {
                def_sites.entry(d).or_default().push((b, i));
            }
            for u in inst.uses() {
                let v = use_sites.entry(u).or_default();
                // An instruction using a register twice is one use site.
                if v.last() != Some(&(b, i)) {
                    v.push((b, i));
                }
            }
        }
    }

    let preds = m.func.preds();
    let mut packs: Vec<Pack> = Vec::new();
    // resolvers[p] = packs that consume pack p's lanes as an operand.
    let mut resolvers: Vec<Vec<usize>> = Vec::new();

    let blocks: Vec<BlockId> = m.func.layout_order().to_vec();
    for &bid in &blocks {
        form_block_packs(
            &m.func,
            bid,
            lanes,
            &def_sites,
            &use_sites,
            &preds,
            &mut packs,
            &mut resolvers,
        );
    }

    // Closure pruning: a Load/Alu pack survives only if *every* use of
    // every lane result is absorbed, lane-aligned, by a committed pack
    // (the scalar definitions are deleted on commit), and any pack whose
    // lane operand comes from a dead pack dies with it.
    let mut ok = vec![true; packs.len()];
    loop {
        let mut changed = false;
        // Lane destinations of every still-committed pack: a splat may not
        // read one (the defining scalar instruction is about to vanish).
        let packed_dsts: Vec<Reg> = packs
            .iter()
            .enumerate()
            .filter(|&(q, _)| ok[q])
            .flat_map(|(_, pk)| lane_dsts(&m.func, pk))
            .collect();
        for p in 0..packs.len() {
            if !ok[p] {
                continue;
            }
            let needs_consumer = matches!(packs[p].kind, PackKind::Load | PackKind::Alu { .. });
            let covered = !needs_consumer
                || lane_dsts(&m.func, &packs[p]).iter().enumerate().all(|(k, d)| {
                    use_sites.get(d).is_none_or(|sites| {
                        sites.iter().all(|&(b, u)| {
                            resolvers[p].iter().any(|&r| {
                                ok[r] && packs[r].block == b && packs[r].members.get(k) == Some(&u)
                            })
                        })
                    })
                });
            if !covered {
                ok[p] = false;
                changed = true;
                continue;
            }
            let mut operands_ok = true;
            for lo in pack_operands(&packs[p].kind) {
                match lo {
                    LaneOperand::Pack(q) => operands_ok &= ok[q],
                    LaneOperand::Splat(Operand::Reg(r)) => {
                        operands_ok &= !packed_dsts.contains(&r)
                    }
                    LaneOperand::Splat(_) => {}
                }
            }
            if !operands_ok {
                ok[p] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let committed: Vec<usize> = (0..packs.len()).filter(|&p| ok[p]).collect();
    if committed.is_empty() {
        return SlpReport::default();
    }
    let report = SlpReport {
        packs_formed: committed.len(),
        stmts_vectorized: committed.iter().map(|&p| packs[p].members.len()).sum(),
    };

    rewrite(m, &packs, &committed, lanes as u8);
    report
}

fn pack_operands(kind: &PackKind) -> Vec<LaneOperand> {
    match kind {
        PackKind::Load => Vec::new(),
        PackKind::Alu { operands, .. } => operands.to_vec(),
        PackKind::Accum { x, .. } => vec![*x],
        PackKind::Store { value } => vec![*value],
    }
}

fn lane_dsts(f: &ilpc_ir::Function, p: &Pack) -> Vec<Reg> {
    p.members
        .iter()
        .filter_map(|&i| f.block(p.block).insts[i].dst)
        .collect()
}

/// Any control transfer strictly between `lo` and `hi`?
fn control_between(insts: &[Inst], lo: usize, hi: usize) -> bool {
    insts[lo + 1..hi].iter().any(|i| i.op.is_control())
}

/// Any redefinition of `regs` strictly between `lo` and `hi`?
fn defs_between(insts: &[Inst], lo: usize, hi: usize, regs: &[Reg]) -> bool {
    insts[lo + 1..hi]
        .iter()
        .any(|i| i.def().is_some_and(|d| regs.contains(&d)))
}

fn operand_regs(inst: &Inst, skip_value: bool) -> Vec<Reg> {
    let take = if skip_value { 2 } else { inst.src.len() };
    inst.src[..take]
        .iter()
        .filter_map(|o| o.reg())
        .collect()
}

/// Form every pack rooted in block `bid`: load seeds, then their transitive
/// consumers (ALU, accumulator, store packs).
#[allow(clippy::too_many_arguments)]
fn form_block_packs(
    f: &ilpc_ir::Function,
    bid: BlockId,
    lanes: usize,
    def_sites: &HashMap<Reg, Vec<(BlockId, usize)>>,
    use_sites: &HashMap<Reg, Vec<(BlockId, usize)>>,
    preds: &[Vec<BlockId>],
    packs: &mut Vec<Pack>,
    resolvers: &mut Vec<Vec<usize>>,
) {
    let insts = &f.block(bid).insts;

    // --- load seeds -------------------------------------------------------
    // Group by the alias tag's (symbol, stride, outer fingerprint); within
    // a group, lanes are consecutive tag-displacement runs. The tag is the
    // same displacement metadata the list scheduler already trusts to
    // reorder memory operations, so it proves adjacency even when renaming
    // and induction expansion gave every unrolled iteration its own index
    // register (the emitted vector load takes lane 0's address operands).
    let mut groups: Vec<(Inst, Vec<usize>)> = Vec::new();
    for (i, inst) in insts.iter().enumerate() {
        let packable = inst.op == Opcode::Load
            && inst.dst.is_some_and(|d| d.class == RegClass::Flt)
            && inst.mem.is_some_and(|t| t.lin.is_some());
        if !packable {
            continue;
        }
        let key = |a: &Inst, b: &Inst| {
            let (ta, tb) = (a.mem.unwrap(), b.mem.unwrap());
            ta.sym == tb.sym
                && ta.lin.unwrap().0 == tb.lin.unwrap().0
                && ta.outer == tb.outer
        };
        match groups.iter_mut().find(|(proto, _)| key(proto, inst)) {
            Some((_, members)) => members.push(i),
            None => groups.push((inst.clone(), vec![i])),
        }
    }
    let mut seeded: Vec<usize> = Vec::new();
    for (_, mut members) in groups {
        members.sort_by_key(|&i| insts[i].mem.unwrap().lin.unwrap().1);
        // Split into maximal consecutive runs, then chunk each run.
        let mut run: Vec<usize> = Vec::new();
        let mut flush = |run: &mut Vec<usize>, seeded: &mut Vec<usize>| {
            for chunk in run.chunks_exact(lanes) {
                if let Some(p) = try_load_pack(f, bid, chunk, def_sites) {
                    packs.push(p);
                    resolvers.push(Vec::new());
                    seeded.push(packs.len() - 1);
                }
            }
            run.clear();
        };
        for &i in &members {
            let adjacent = run.last().is_some_and(|&prev| {
                let (a, b) = (&insts[prev], &insts[i]);
                b.mem.unwrap().lin.unwrap().1 == a.mem.unwrap().lin.unwrap().1 + 1
            });
            if !adjacent {
                flush(&mut run, &mut seeded);
            }
            run.push(i);
        }
        flush(&mut run, &mut seeded);
    }

    // --- extend: consumers of existing packs ------------------------------
    // One candidate pack per lane-aligned use group. Two producers feeding
    // the same group would form it twice (once per frontier pop); the
    // member list identifies a group, so formed groups are tried once.
    let mut formed: HashMap<Vec<usize>, ()> =
        packs.iter().map(|p| (p.members.clone(), ())).collect();
    let mut frontier = seeded;
    while let Some(pi) = frontier.pop() {
        let Some(groups) = use_groups(f, &packs[pi], use_sites) else { continue };
        for positions in groups {
            if formed.contains_key(&positions) {
                continue;
            }
            if let Some(c) = try_consumer_pack(f, pi, packs, &positions, def_sites, use_sites, preds)
            {
                formed.insert(c.members.clone(), ());
                packs.push(c);
                resolvers.push(Vec::new());
                let ci = packs.len() - 1;
                for lo in pack_operands(&packs[ci].kind) {
                    if let LaneOperand::Pack(q) = lo {
                        resolvers[q].push(ci);
                    }
                }
                frontier.push(ci);
            }
        }
    }
}

/// Lane-aligned use groups of a value pack: every lane destination must
/// have the same number of in-block uses, all after its own definition;
/// group `j` is the `j`-th use of each lane in position order. ALU lanes
/// are restricted to a single use (multi-use support targets loads shared
/// by several expression chains).
fn use_groups(
    f: &ilpc_ir::Function,
    p: &Pack,
    use_sites: &HashMap<Reg, Vec<(BlockId, usize)>>,
) -> Option<Vec<Vec<usize>>> {
    let bid = p.block;
    let dsts = lane_dsts(f, p);
    // Terminal packs (stores) produce no lanes to consume.
    if dsts.len() != p.members.len() {
        return None;
    }
    let max_uses = match p.kind {
        PackKind::Load => usize::MAX,
        _ => 1,
    };
    let mut per_lane: Vec<Vec<usize>> = Vec::with_capacity(dsts.len());
    for (lane, d) in dsts.iter().enumerate() {
        let sites = use_sites.get(d)?;
        if sites.is_empty() || sites.len() > max_uses {
            return None;
        }
        let mut us = Vec::with_capacity(sites.len());
        for &(b, u) in sites {
            // A use in another block, or positioned before its lane's def
            // (a loop-carried read of the previous iteration's value),
            // cannot be lane-aligned with this pack.
            if b != bid || u <= p.members[lane] {
                return None;
            }
            us.push(u);
        }
        us.sort_unstable();
        if per_lane.last().is_some_and(|prev: &Vec<usize>| prev.len() != us.len()) {
            return None;
        }
        per_lane.push(us);
    }
    let n = per_lane[0].len();
    Some((0..n).map(|j| per_lane.iter().map(|us| us[j]).collect()).collect())
}

/// Validate a chunk of adjacent loads as a pack (hoisted to the first
/// member's position).
fn try_load_pack(
    f: &ilpc_ir::Function,
    bid: BlockId,
    chunk: &[usize],
    def_sites: &HashMap<Reg, Vec<(BlockId, usize)>>,
) -> Option<Pack> {
    let insts = &f.block(bid).insts;
    // `chunk` is ordered by displacement, which need not match block
    // position order; the hoist range is positional.
    let (lo, hi) = (*chunk.iter().min().unwrap(), *chunk.iter().max().unwrap());
    let dsts: Vec<Reg> = chunk.iter().map(|&i| insts[i].dst.unwrap()).collect();
    let distinct = dsts.iter().all(|d| dsts.iter().filter(|x| *x == d).count() == 1);
    let single_def = dsts.iter().all(|d| def_sites.get(d).is_some_and(|s| s.len() == 1));
    if !distinct || !single_def {
        return None;
    }
    if control_between(insts, lo, hi)
        || defs_between(insts, lo, hi, &operand_regs(&insts[chunk[0]], false))
    {
        return None;
    }
    // Hoisting every member to `lo` may not cross an aliasing store.
    let crosses_store = insts[lo + 1..hi].iter().any(|mid| {
        mid.op.is_mem_write()
            && chunk.iter().any(|&i| match (mid.mem, insts[i].mem) {
                (Some(a), Some(b)) => a.may_alias(&b),
                _ => true,
            })
    });
    if crosses_store {
        return None;
    }
    Some(Pack { kind: PackKind::Load, block: bid, members: chunk.to_vec() })
}

/// Try to form the pack consuming one lane-aligned use group of
/// `packs[pi]`: distinct positions, isomorphic opcode.
#[allow(clippy::too_many_arguments)]
fn try_consumer_pack(
    f: &ilpc_ir::Function,
    pi: usize,
    packs: &[Pack],
    positions: &[usize],
    def_sites: &HashMap<Reg, Vec<(BlockId, usize)>>,
    use_sites: &HashMap<Reg, Vec<(BlockId, usize)>>,
    preds: &[Vec<BlockId>],
) -> Option<Pack> {
    let p = &packs[pi];
    let bid = p.block;
    let insts = &f.block(bid).insts;
    let dsts = lane_dsts(f, p);

    let distinct = positions.iter().all(|a| positions.iter().filter(|b| *b == a).count() == 1);
    if !distinct {
        return None;
    }
    let op = insts[positions[0]].op;
    if positions.iter().any(|&u| insts[u].op != op) {
        return None;
    }

    match op {
        Opcode::FAdd | Opcode::FMul => {
            try_alu_pack(f, pi, packs, positions, def_sites, use_sites, preds)
        }
        Opcode::Store => try_store_pack(f, pi, packs, positions, &dsts),
        _ => None,
    }
}

/// Resolve one operand position of a candidate group to a lane operand:
/// the lanes of an existing pack, or a uniform (splattable) scalar.
fn resolve_lane_operand(
    f: &ilpc_ir::Function,
    bid: BlockId,
    positions: &[usize],
    idx: usize,
    packs: &[Pack],
    use_sites: &HashMap<Reg, Vec<(BlockId, usize)>>,
) -> Option<LaneOperand> {
    let insts = &f.block(bid).insts;
    let ops: Vec<Operand> = positions.iter().map(|&u| insts[u].src[idx]).collect();
    // Lane results of an existing pack, in order? This position must be a
    // recorded use of each lane (the closure pass separately proves that
    // *every* use of every lane ends up inside some committed pack before
    // the producer's scalar definitions may be deleted).
    for (q, pk) in packs.iter().enumerate() {
        if pk.block != bid || matches!(pk.kind, PackKind::Store { .. }) {
            continue;
        }
        let qd = lane_dsts(f, pk);
        if qd.len() == ops.len()
            && ops.iter().zip(&qd).all(|(o, d)| *o == Operand::Reg(*d))
            && qd.iter().zip(positions).all(|(d, &u)| {
                use_sites.get(d).is_some_and(|s| s.contains(&(bid, u)))
            })
        {
            return Some(LaneOperand::Pack(q));
        }
    }
    // Uniform scalar?
    if ops.iter().all(|o| *o == ops[0]) {
        let (lo, hi) = (*positions.iter().min().unwrap(), *positions.iter().max().unwrap());
        if let Some(r) = ops[0].reg() {
            // The shared register must hold one value across all members.
            if defs_between(insts, lo, hi, &[r]) || positions.iter().any(|&u| insts[u].dst == Some(r)) {
                return None;
            }
        }
        return Some(LaneOperand::Splat(ops[0]));
    }
    None
}

#[allow(clippy::too_many_arguments)]
fn try_alu_pack(
    f: &ilpc_ir::Function,
    pi: usize,
    packs: &[Pack],
    positions: &[usize],
    def_sites: &HashMap<Reg, Vec<(BlockId, usize)>>,
    use_sites: &HashMap<Reg, Vec<(BlockId, usize)>>,
    preds: &[Vec<BlockId>],
) -> Option<Pack> {
    let bid = packs[pi].block;
    let insts = &f.block(bid).insts;
    let (lo, hi) = (*positions.iter().min().unwrap(), *positions.iter().max().unwrap());
    let op = insts[positions[0]].op;
    let dsts: Vec<Reg> = positions.iter().map(|&u| insts[u].dst).collect::<Option<_>>()?;
    let distinct = dsts.iter().all(|d| dsts.iter().filter(|x| *x == d).count() == 1);
    if !distinct || control_between(insts, lo, hi) {
        return None;
    }

    // Accumulator recurrence: one operand position is the member's own
    // destination at every lane (`aK = aK + xK`).
    let self_pos = (0..2).find(|&j| {
        positions
            .iter()
            .all(|&u| insts[u].src[j] == Operand::Reg(insts[u].dst.unwrap()))
    });
    if let Some(j) = self_pos {
        if op != Opcode::FAdd {
            return None;
        }
        let x = resolve_lane_operand(f, bid, positions, 1 - j, packs, use_sites)?;
        if !matches!(x, LaneOperand::Pack(q) if q == pi) {
            return None;
        }
        return try_accum_pack(f, bid, positions, &dsts, x, def_sites, use_sites, preds);
    }

    // Plain element-wise group: every lane result must be single-def and
    // single-use (the closure pass demands a consumer later).
    let legal = dsts.iter().all(|d| {
        def_sites.get(d).is_some_and(|s| s.len() == 1)
            && use_sites.get(d).is_some_and(|s| s.len() == 1)
    });
    if !legal {
        return None;
    }
    let a = resolve_lane_operand(f, bid, positions, 0, packs, use_sites)?;
    let b = resolve_lane_operand(f, bid, positions, 1, packs, use_sites)?;
    if a != LaneOperand::Pack(pi) && b != LaneOperand::Pack(pi) {
        return None;
    }
    Some(Pack {
        kind: PackKind::Alu { op, operands: [a, b] },
        block: bid,
        members: positions.to_vec(),
    })
}

/// Validate an accumulator group: uniform `mov aK, #c` initializers in one
/// preheader, and one `t = t + aK` reduction link per lane in one exit
/// block. See the crate docs for the full contract.
#[allow(clippy::too_many_arguments)]
fn try_accum_pack(
    f: &ilpc_ir::Function,
    bid: BlockId,
    positions: &[usize],
    dsts: &[Reg],
    x: LaneOperand,
    def_sites: &HashMap<Reg, Vec<(BlockId, usize)>>,
    use_sites: &HashMap<Reg, Vec<(BlockId, usize)>>,
    preds: &[Vec<BlockId>],
) -> Option<Pack> {
    let mut init_positions = Vec::with_capacity(dsts.len());
    let mut chain_positions = Vec::with_capacity(dsts.len());
    let mut init_block = None;
    let mut chain_block = None;
    let mut init_const = None;
    let mut chain_var = None;

    for (lane, (&a, &u)) in dsts.iter().zip(positions).enumerate() {
        if a.class != RegClass::Flt {
            return None;
        }
        // Exactly two defs: the preheader init and the recurrence itself.
        let defs = def_sites.get(&a)?;
        let (ib, ip) = *defs.iter().find(|&&(b, i)| (b, i) != (bid, u))?;
        if defs.len() != 2 || ib == bid {
            return None;
        }
        let init = &f.block(ib).insts[ip];
        if init.op != Opcode::Mov || !matches!(init.src[0], Operand::ImmF(_)) {
            return None;
        }
        // Exactly two uses: the recurrence and one reduction-chain link.
        let uses = use_sites.get(&a)?;
        let (cb, cp) = *uses.iter().find(|&&(b, i)| (b, i) != (bid, u))?;
        if uses.len() != 2 || cb == bid || cb == ib {
            return None;
        }
        let link = &f.block(cb).insts[cp];
        let t = link.dst?;
        let is_link = link.op == Opcode::FAdd
            && link.src[0] == Operand::Reg(t)
            && link.src[1] == Operand::Reg(a)
            && !dsts.contains(&t);
        if !is_link {
            return None;
        }
        if lane == 0 {
            init_block = Some(ib);
            chain_block = Some(cb);
            init_const = Some(init.src[0]);
            chain_var = Some(t);
        } else if init_block != Some(ib)
            || chain_block != Some(cb)
            || init_const != Some(init.src[0])
            || chain_var != Some(t)
        {
            return None;
        }
        init_positions.push(ip);
        chain_positions.push(cp);
    }

    // The loop must be a self-loop entered only from the init block, so
    // the vector accumulator's vsplat dominates the vadd.
    let ib = init_block?;
    let ps = &preds[bid.0 as usize];
    let entry_ok = ps.iter().all(|&p| p == bid || p == ib) && ps.contains(&ib);
    if !entry_ok || !ps.contains(&bid) {
        return None;
    }

    Some(Pack {
        kind: PackKind::Accum {
            x,
            init_block: ib,
            init_positions,
            init_const: init_const?,
            chain_block: chain_block?,
            chain_positions,
            chain_var: chain_var?,
        },
        block: bid,
        members: positions.to_vec(),
    })
}

/// Validate a group of adjacent stores as a pack (sunk to the last
/// member's position).
fn try_store_pack(
    f: &ilpc_ir::Function,
    pi: usize,
    packs: &[Pack],
    positions: &[usize],
    value_lanes: &[Reg],
) -> Option<Pack> {
    let bid = packs[pi].block;
    let insts = &f.block(bid).insts;
    // Lane order must follow the producer: member k stores lane k.
    let aligned = positions
        .iter()
        .zip(value_lanes)
        .all(|(&u, v)| insts[u].src[2] == Operand::Reg(*v));
    if !aligned {
        return None;
    }
    let proto = &insts[positions[0]];
    let tag0 = proto.mem?;
    tag0.lin?;
    for (k, &u) in positions.iter().enumerate() {
        let s = &insts[u];
        let tag = s.mem?;
        let adjacent = tag.sym == tag0.sym
            && tag.outer == tag0.outer
            && tag.lin?.0 == tag0.lin?.0
            && tag.lin?.1 == tag0.lin?.1 + k as i64;
        if !adjacent {
            return None;
        }
    }
    let (lo, hi) = (positions[0], *positions.last().unwrap());
    if positions.windows(2).any(|w| w[1] <= w[0]) {
        return None;
    }
    if control_between(insts, lo, hi) || defs_between(insts, lo, hi, &operand_regs(proto, true)) {
        return None;
    }
    // Sinking every member to `hi` may not cross any aliasing access.
    let crosses = insts[lo + 1..hi]
        .iter()
        .enumerate()
        .any(|(off, mid)| {
            let at = lo + 1 + off;
            mid.op.is_mem() && !positions.contains(&at) && {
                positions.iter().any(|&i| match (mid.mem, insts[i].mem) {
                    (Some(a), Some(b)) => a.may_alias(&b),
                    _ => true,
                })
            }
        });
    if crosses {
        return None;
    }
    Some(Pack {
        kind: PackKind::Store { value: LaneOperand::Pack(pi) },
        block: bid,
        members: positions.to_vec(),
    })
}

/// Apply the committed packs: emit vector instructions at their placement
/// points, delete the scalar members, and rewrite accumulator preheaders
/// and reduction chains.
fn rewrite(m: &mut Module, packs: &[Pack], committed: &[usize], lanes: u8) {
    // Fresh vector register per value-producing pack.
    let mut vreg: HashMap<usize, Reg> = HashMap::new();
    for &p in committed {
        if !matches!(packs[p].kind, PackKind::Store { .. }) {
            vreg.insert(p, m.func.new_reg(RegClass::Vec));
        }
    }
    let operand_of = |lo: &LaneOperand, splats: &mut Vec<Inst>, m: &mut Module| match lo {
        LaneOperand::Pack(q) => Operand::Reg(vreg[q]),
        LaneOperand::Splat(o) => {
            let s = m.func.new_reg(RegClass::Vec);
            splats.push(Inst::vsplat(s, *o, lanes));
            Operand::Reg(s)
        }
    };

    // Per-block edit plan: position -> replacement instructions (empty =
    // delete). Untouched positions keep their instruction.
    let mut plan: HashMap<BlockId, HashMap<usize, Vec<Inst>>> = HashMap::new();

    for &p in committed {
        let pk = packs[p].clone();
        let bid = pk.block;
        let insts = &m.func.block(bid).insts;
        let first = *pk.members.iter().min().unwrap();
        let last = *pk.members.iter().max().unwrap();
        let lane0 = insts[pk.members[0]].clone();
        let mut splats = Vec::new();
        let (place, mut emit) = match &pk.kind {
            PackKind::Load => {
                let mut v =
                    Inst::vload(vreg[&p], lane0.src[0], lane0.src[1], lane0.mem.unwrap(), lanes);
                v.ext = lane0.ext;
                (first, vec![v])
            }
            PackKind::Alu { op, operands } => {
                let vop = if *op == Opcode::FMul { Opcode::VMul } else { Opcode::VAdd };
                let a = operand_of(&operands[0], &mut splats, m);
                let b = operand_of(&operands[1], &mut splats, m);
                (first, vec![Inst::vec_alu(vop, vreg[&p], a, b, lanes)])
            }
            PackKind::Accum { x, .. } => {
                let xo = operand_of(x, &mut splats, m);
                (first, vec![Inst::vec_alu(Opcode::VAdd, vreg[&p], vreg[&p].into(), xo, lanes)])
            }
            PackKind::Store { value } => {
                let mut v = Inst::vstore(
                    lane0.src[0],
                    lane0.src[1],
                    operand_of(value, &mut splats, m),
                    lane0.mem.unwrap(),
                    lanes,
                );
                v.ext = lane0.ext;
                (last, vec![v])
            }
        };
        splats.append(&mut emit);
        let block_plan = plan.entry(bid).or_default();
        for &mpos in &pk.members {
            block_plan.insert(mpos, Vec::new());
        }
        block_plan.insert(place, splats);

        if let PackKind::Accum {
            init_block,
            init_positions,
            init_const,
            chain_block,
            chain_positions,
            chain_var,
            ..
        } = &pk.kind
        {
            // Preheader: one vsplat replaces the scalar initializers.
            let ip = plan.entry(*init_block).or_default();
            let place = *init_positions.iter().min().unwrap();
            for &i in init_positions {
                ip.insert(i, Vec::new());
            }
            ip.insert(place, vec![Inst::vsplat(vreg[&p], *init_const, lanes)]);
            // Exit: fold a vreduce into the scalar reduction chain.
            let sum = m.func.new_reg(RegClass::Flt);
            let cp = plan.entry(*chain_block).or_default();
            let place = *chain_positions.iter().min().unwrap();
            for &i in chain_positions {
                cp.insert(i, Vec::new());
            }
            cp.insert(
                place,
                vec![
                    Inst::vreduce(sum, vreg[&p].into(), lanes),
                    Inst::alu(Opcode::FAdd, *chain_var, (*chain_var).into(), sum.into()),
                ],
            );
        }
    }

    for (bid, edits) in plan {
        let old = std::mem::take(&mut m.func.block_mut(bid).insts);
        let mut new = Vec::with_capacity(old.len());
        for (i, inst) in old.into_iter().enumerate() {
            match edits.get(&i) {
                Some(repl) => new.extend(repl.iter().cloned()),
                None => new.push(inst),
            }
        }
        m.func.block_mut(bid).insts = new;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilpc_ir::inst::MemLoc;
    use ilpc_ir::verify::verify_module;
    use ilpc_ir::{Cond, SymId};

    /// `lanes` isomorphic `C[i] = A[i] * B[i]` statement copies in one
    /// block, the canonical post-unroll SLP shape.
    fn elementwise(lanes: usize) -> Module {
        let mut m = Module::new("t");
        let a = m.symtab.declare("A", 16, RegClass::Flt);
        let b = m.symtab.declare("B", 16, RegClass::Flt);
        let c = m.symtab.declare("C", 16, RegClass::Flt);
        let f = &mut m.func;
        let blk = f.add_block("b");
        let mut insts = Vec::new();
        let mut prods = Vec::new();
        for k in 0..lanes as i64 {
            let (x, y, p) = (
                f.new_reg(RegClass::Flt),
                f.new_reg(RegClass::Flt),
                f.new_reg(RegClass::Flt),
            );
            let mut la = Inst::load(x, Operand::Sym(a), Operand::ImmI(0), MemLoc::affine(a, 0, k));
            la.ext = k;
            let mut lb = Inst::load(y, Operand::Sym(b), Operand::ImmI(0), MemLoc::affine(b, 0, k));
            lb.ext = k;
            insts.push(la);
            insts.push(lb);
            prods.push((x, y, p));
        }
        for &(x, y, p) in &prods {
            insts.push(Inst::alu(Opcode::FMul, p, x.into(), y.into()));
        }
        for (k, &(_, _, p)) in prods.iter().enumerate() {
            let mut st = Inst::store(
                Operand::Sym(c),
                Operand::ImmI(0),
                p.into(),
                MemLoc::affine(c, 0, k as i64),
            );
            st.ext = k as i64;
            insts.push(st);
        }
        insts.push(Inst::halt());
        f.block_mut(blk).insts = insts;
        m
    }

    #[test]
    fn vlen_one_is_a_no_op() {
        let mut m = elementwise(4);
        let before = ilpc_ir::text::serialize(&m);
        let r = slp_vectorize(&mut m, 1);
        assert_eq!(r, SlpReport::default());
        assert_eq!(ilpc_ir::text::serialize(&m), before);
    }

    #[test]
    fn elementwise_chain_packs_end_to_end() {
        let mut m = elementwise(4);
        let r = slp_vectorize(&mut m, 4);
        // Two load packs, one multiply pack, one store pack.
        assert_eq!(r.packs_formed, 4, "{}", ilpc_ir::text::serialize(&m));
        assert_eq!(r.stmts_vectorized, 16);
        verify_module(&m).unwrap();
        let ops: Vec<Opcode> = m.func.insts().map(|(_, i)| i.op).collect();
        assert_eq!(ops.iter().filter(|o| **o == Opcode::VLoad).count(), 2);
        assert_eq!(ops.iter().filter(|o| **o == Opcode::VMul).count(), 1);
        assert_eq!(ops.iter().filter(|o| **o == Opcode::VStore).count(), 1);
        assert!(!ops.contains(&Opcode::Load) && !ops.contains(&Opcode::Store));
    }

    #[test]
    fn partial_groups_fall_back_to_scalar() {
        // 6 copies with vlen=4: one pack of 4 commits, 2 copies stay scalar.
        let mut m = elementwise(6);
        let r = slp_vectorize(&mut m, 4);
        assert_eq!(r.packs_formed, 4);
        verify_module(&m).unwrap();
        let ops: Vec<Opcode> = m.func.insts().map(|(_, i)| i.op).collect();
        assert_eq!(ops.iter().filter(|o| **o == Opcode::Load).count(), 4);
        assert_eq!(ops.iter().filter(|o| **o == Opcode::FMul).count(), 2);
    }

    #[test]
    fn aliasing_store_between_loads_blocks_the_pack() {
        let mut m = elementwise(4);
        let blk = m.func.layout_order()[0];
        let a = SymId(0);
        // A store through A between the A-loads: hoisting would cross it.
        let v = m.func.block(blk).insts[4].dst.unwrap();
        let poison = Inst::store(Operand::Sym(a), Operand::ImmI(0), v.into(), MemLoc::opaque(a));
        m.func.block_mut(blk).insts.insert(5, poison);
        let r = slp_vectorize(&mut m, 4);
        verify_module(&m).unwrap();
        let ops: Vec<Opcode> = m.func.insts().map(|(_, i)| i.op).collect();
        // The A-side load pack must not form; B-side loads die in closure
        // because their multiply consumers can't pack without lane inputs.
        assert_eq!(r.packs_formed, 0, "{:?}", ops);
        assert!(!ops.contains(&Opcode::VLoad));
    }

    #[test]
    fn non_adjacent_displacements_do_not_pack() {
        let mut m = elementwise(4);
        let blk = m.func.layout_order()[0];
        // Skew one A-load's displacement: ext 0,1,5,3 is not a lane run.
        let pos = 4; // third A-load (A/B interleaved)
        assert_eq!(m.func.block(blk).insts[pos].op, Opcode::Load);
        m.func.block_mut(blk).insts[pos].ext = 5;
        let t = m.func.block(blk).insts[pos].mem.unwrap();
        m.func.block_mut(blk).insts[pos].mem =
            Some(MemLoc { lin: Some((0, 5)), ..t });
        let r = slp_vectorize(&mut m, 4);
        verify_module(&m).unwrap();
        assert_eq!(r.packs_formed, 0);
    }

    #[test]
    fn integer_loads_do_not_pack() {
        let mut m = Module::new("t");
        let a = m.symtab.declare("N", 8, RegClass::Int);
        let f = &mut m.func;
        let blk = f.add_block("b");
        let mut insts = Vec::new();
        for k in 0..4i64 {
            let x = f.new_reg(RegClass::Int);
            let mut ld = Inst::load(x, Operand::Sym(a), Operand::ImmI(0), MemLoc::affine(a, 0, k));
            ld.ext = k;
            insts.push(ld);
        }
        insts.push(Inst::halt());
        f.block_mut(blk).insts = insts;
        let r = slp_vectorize(&mut m, 4);
        assert_eq!(r.packs_formed, 0);
    }

    #[test]
    fn splat_operand_vectorizes_scaled_copy() {
        // B[k] = s * A[k] — the scale is loop-invariant, so it splats.
        let mut m = Module::new("t");
        let a = m.symtab.declare("A", 8, RegClass::Flt);
        let b = m.symtab.declare("B", 8, RegClass::Flt);
        let f = &mut m.func;
        let s = f.new_reg(RegClass::Flt);
        let blk = f.add_block("b");
        let mut insts = vec![Inst::mov(s, Operand::ImmF(2.5))];
        let mut prods = Vec::new();
        for k in 0..4i64 {
            let (x, p) = (f.new_reg(RegClass::Flt), f.new_reg(RegClass::Flt));
            let mut ld = Inst::load(x, Operand::Sym(a), Operand::ImmI(0), MemLoc::affine(a, 0, k));
            ld.ext = k;
            insts.push(ld);
            prods.push((x, p));
        }
        for &(x, p) in &prods {
            insts.push(Inst::alu(Opcode::FMul, p, s.into(), x.into()));
        }
        for (k, &(_, p)) in prods.iter().enumerate() {
            let mut st = Inst::store(
                Operand::Sym(b),
                Operand::ImmI(0),
                p.into(),
                MemLoc::affine(b, 0, k as i64),
            );
            st.ext = k as i64;
            insts.push(st);
        }
        insts.push(Inst::halt());
        f.block_mut(blk).insts = insts;
        let r = slp_vectorize(&mut m, 4);
        verify_module(&m).unwrap();
        assert_eq!(r.packs_formed, 3, "{}", ilpc_ir::text::serialize(&m));
        let ops: Vec<Opcode> = m.func.insts().map(|(_, i)| i.op).collect();
        assert_eq!(ops.iter().filter(|o| **o == Opcode::VSplat).count(), 1);
        assert_eq!(ops.iter().filter(|o| **o == Opcode::VMul).count(), 1);
    }

    /// Accumulator shape: preheader inits, self-loop body, exit reduction.
    fn reduction(lanes: i64) -> Module {
        let mut m = Module::new("t");
        let a = m.symtab.declare("A", 64, RegClass::Flt);
        let out = m.symtab.declare("out", 1, RegClass::Flt);
        let f = &mut m.func;
        let i = f.new_reg(RegClass::Int);
        let t = f.new_reg(RegClass::Flt);
        let accs: Vec<Reg> = (0..lanes).map(|_| f.new_reg(RegClass::Flt)).collect();
        let pre = f.add_block("pre");
        let body = f.add_block("body");
        let exit = f.add_block("exit");
        let mut pi = vec![Inst::mov(i, Operand::ImmI(0)), Inst::mov(t, Operand::ImmF(0.0))];
        for &acc in &accs {
            pi.push(Inst::mov(acc, Operand::ImmF(0.0)));
        }
        f.block_mut(pre).insts = pi;
        let mut bi = Vec::new();
        let mut loaded = Vec::new();
        for (k, _) in accs.iter().enumerate() {
            let x = f.new_reg(RegClass::Flt);
            let mut ld =
                Inst::load(x, Operand::Sym(a), i.into(), MemLoc::affine(a, 1, k as i64));
            ld.ext = k as i64;
            bi.push(ld);
            loaded.push(x);
        }
        for (&acc, &x) in accs.iter().zip(&loaded) {
            bi.push(Inst::alu(Opcode::FAdd, acc, acc.into(), x.into()));
        }
        bi.push(Inst::alu(Opcode::Add, i, i.into(), Operand::ImmI(lanes)));
        bi.push(Inst::br(Cond::Lt, i.into(), Operand::ImmI(64), body));
        f.block_mut(body).insts = bi;
        let mut ei = Vec::new();
        for &acc in &accs {
            ei.push(Inst::alu(Opcode::FAdd, t, t.into(), acc.into()));
        }
        ei.push(Inst::store(Operand::Sym(out), Operand::ImmI(0), t.into(), MemLoc::affine(out, 0, 0)));
        ei.push(Inst::halt());
        f.block_mut(exit).insts = ei;
        m
    }

    #[test]
    fn uniform_accumulators_become_a_vector_accumulator() {
        let mut m = reduction(4);
        let r = slp_vectorize(&mut m, 4);
        verify_module(&m).unwrap();
        assert_eq!(r.packs_formed, 2, "{}", ilpc_ir::text::serialize(&m));
        let ops: Vec<Opcode> = m.func.insts().map(|(_, i)| i.op).collect();
        assert_eq!(ops.iter().filter(|o| **o == Opcode::VLoad).count(), 1);
        assert_eq!(ops.iter().filter(|o| **o == Opcode::VAdd).count(), 1);
        assert_eq!(ops.iter().filter(|o| **o == Opcode::VSplat).count(), 1);
        assert_eq!(ops.iter().filter(|o| **o == Opcode::VReduce).count(), 1);
        // The scalar chain keeps its running variable and gains the
        // reduced partial sum exactly once.
        assert_eq!(ops.iter().filter(|o| **o == Opcode::FAdd).count(), 1);
    }

    #[test]
    fn accumulator_with_nonuniform_init_stays_scalar() {
        let mut m = reduction(4);
        let pre = m.func.layout_order()[0];
        // Skew one initializer: lanes no longer share a constant.
        m.func.block_mut(pre).insts[3].src[0] = Operand::ImmF(1.0);
        let r = slp_vectorize(&mut m, 4);
        verify_module(&m).unwrap();
        assert_eq!(r.packs_formed, 0);
    }

    /// One load group feeding two expression chains: every use of every
    /// lane is absorbed by a committed pack, so both chains vectorize
    /// and the shared loads are deleted with them.
    #[test]
    fn shared_load_feeding_two_chains_packs_both() {
        let mut m = Module::new("t");
        let a = m.symtab.declare("A", 16, RegClass::Flt);
        let b = m.symtab.declare("B", 16, RegClass::Flt);
        let c = m.symtab.declare("C", 16, RegClass::Flt);
        let d = m.symtab.declare("D", 16, RegClass::Flt);
        let f = &mut m.func;
        let blk = f.add_block("b");
        let mut insts = Vec::new();
        let mut vals = Vec::new();
        for k in 0..4i64 {
            let x = f.new_reg(RegClass::Flt);
            let y = f.new_reg(RegClass::Flt);
            let p = f.new_reg(RegClass::Flt);
            let q = f.new_reg(RegClass::Flt);
            let mut la = Inst::load(x, Operand::Sym(a), Operand::ImmI(0), MemLoc::affine(a, 0, k));
            la.ext = k;
            let mut lb = Inst::load(y, Operand::Sym(b), Operand::ImmI(0), MemLoc::affine(b, 0, k));
            lb.ext = k;
            insts.push(la);
            insts.push(lb);
            vals.push((x, y, p, q));
        }
        for &(x, y, p, _) in &vals {
            insts.push(Inst::alu(Opcode::FMul, p, x.into(), y.into()));
        }
        for &(_, y, _, q) in &vals {
            insts.push(Inst::alu(Opcode::FMul, q, y.into(), Operand::ImmF(2.0)));
        }
        for (k, &(_, _, p, _)) in vals.iter().enumerate() {
            let mut st =
                Inst::store(Operand::Sym(c), Operand::ImmI(0), p.into(), MemLoc::affine(c, 0, k as i64));
            st.ext = k as i64;
            insts.push(st);
        }
        for (k, &(_, _, _, q)) in vals.iter().enumerate() {
            let mut st =
                Inst::store(Operand::Sym(d), Operand::ImmI(0), q.into(), MemLoc::affine(d, 0, k as i64));
            st.ext = k as i64;
            insts.push(st);
        }
        insts.push(Inst::halt());
        f.block_mut(blk).insts = insts;

        let r = slp_vectorize(&mut m, 4);
        verify_module(&m).unwrap();
        // 2 load packs, 2 multiply packs, 2 store packs; no scalar residue.
        assert_eq!(r.packs_formed, 6);
        assert_eq!(r.stmts_vectorized, 24);
        let body = &m.func.block(blk).insts;
        assert!(body.iter().all(|i| i.op != Opcode::Load && i.op != Opcode::FMul));
    }

    /// Renaming/induction expansion give each unrolled copy its own index
    /// register; adjacency is proven from the alias tags and the vector
    /// access carries lane 0's address operands.
    #[test]
    fn distinct_index_registers_pack_via_displacement_tags() {
        let mut m = Module::new("t");
        let a = m.symtab.declare("A", 16, RegClass::Flt);
        let c = m.symtab.declare("C", 16, RegClass::Flt);
        let f = &mut m.func;
        let blk = f.add_block("b");
        let mut insts = Vec::new();
        let mut vals = Vec::new();
        for k in 0..4i64 {
            let idx = f.new_reg(RegClass::Int);
            insts.push(Inst::mov(idx, Operand::ImmI(k)));
            let x = f.new_reg(RegClass::Flt);
            let p = f.new_reg(RegClass::Flt);
            insts.push(Inst::load(x, Operand::Sym(a), idx.into(), MemLoc::affine(a, 1, k)));
            vals.push((idx, x, p));
        }
        for &(_, x, p) in &vals {
            insts.push(Inst::alu(Opcode::FMul, p, x.into(), Operand::ImmF(3.0)));
        }
        for (k, &(idx, _, p)) in vals.iter().enumerate() {
            insts.push(Inst::store(
                Operand::Sym(c),
                idx.into(),
                p.into(),
                MemLoc::affine(c, 1, k as i64),
            ));
        }
        insts.push(Inst::halt());
        f.block_mut(blk).insts = insts;

        let lane0_idx = vals[0].0;
        let r = slp_vectorize(&mut m, 4);
        verify_module(&m).unwrap();
        assert_eq!(r.packs_formed, 3);
        assert_eq!(r.stmts_vectorized, 12);
        let body = &m.func.block(blk).insts;
        let vld = body.iter().find(|i| i.op == Opcode::VLoad).unwrap();
        let vst = body.iter().find(|i| i.op == Opcode::VStore).unwrap();
        assert_eq!(vld.src[1], Operand::Reg(lane0_idx));
        assert_eq!(vst.src[1], Operand::Reg(lane0_idx));
    }
}
