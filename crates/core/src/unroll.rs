//! Loop unrolling with a preconditioning loop.
//!
//! Implements the paper's unrolling scheme: "A loop unrolled N times has
//! N−1 copies of the loop body appended to the original loop. [...] If the
//! iteration count is known on loop entry, it is possible to remove many of
//! these control transfers by using a preconditioning loop to execute the
//! first Mod N iterations."
//!
//! For a counted loop `for (iv; iv ≤ bound; iv += 1)` the transformed shape
//! is:
//!
//! ```text
//! preheader:  ...                          ; original zero-trip guard
//! P0:         tc  = bound - iv (+1)        ; runtime trip count
//!             rem = tc % N
//!             pb  = iv + rem
//!             bge (iv pb) M0               ; skip empty precondition
//! PRE:        <one body copy>              ; executes rem iterations
//!             blt (iv pb) PRE
//! M0:         bgt (iv bound) EXIT          ; skip empty main loop
//! MAIN:       <N body copies, inner exit branches removed>
//!             ble (iv bound) MAIN
//! EXIT:
//! ```
//!
//! Body copy `p` has every memory tag shifted by `p` iterations so the
//! dependence analyzer can disambiguate references between unrolled bodies.

use ilpc_analysis::{as_counted_loop, CountedLoop, LoopForest};
use ilpc_ir::{BlockId, Cond, Function, Inst, Module, Opcode, Operand, RegClass};
use std::collections::HashMap;

/// Outcome of unrolling one loop.
#[derive(Debug, Clone)]
pub struct UnrolledLoop {
    /// Unroll factor actually applied (≥ 2).
    pub factor: usize,
    /// Header of the main unrolled loop.
    pub header: BlockId,
}

/// Configuration for the unroller.
#[derive(Debug, Clone, Copy)]
pub struct UnrollConfig {
    /// Maximum unroll factor (the paper uses 8).
    pub max_factor: usize,
    /// Maximum unrolled body size in IR instructions (the paper's "maximum
    /// loop body size" cap).
    pub max_body_insts: usize,
    /// Target vector length for SLP vectorization (Lev6). `1` disables
    /// packing; the harness threads `Machine::vlen` through here so the
    /// compiled artifact matches the machine it is keyed to.
    pub vlen: u32,
}

impl Default for UnrollConfig {
    fn default() -> UnrollConfig {
        UnrollConfig { max_factor: 8, max_body_insts: 256, vlen: 1 }
    }
}

/// Clone `blocks` (in layout order); internal branch targets are remapped to
/// the clone, external targets are preserved.
fn clone_blocks(
    f: &mut Function,
    blocks: &[BlockId],
    label: &str,
) -> (Vec<BlockId>, HashMap<BlockId, BlockId>) {
    let mut map = HashMap::new();
    let mut clones = Vec::with_capacity(blocks.len());
    for &b in blocks {
        let lbl = format!("{label}.{}", f.block(b).label);
        let c = f.add_block_detached(&lbl);
        map.insert(b, c);
        clones.push(c);
    }
    for &b in blocks {
        let mut insts = f.block(b).insts.clone();
        for i in &mut insts {
            if let Some(t) = i.target {
                if let Some(&nt) = map.get(&t) {
                    i.target = Some(nt);
                }
            }
        }
        let c = map[&b];
        f.block_mut(c).insts = insts;
    }
    (clones, map)
}

/// Shift the memory tags of the given blocks by `iters` iterations.
fn shift_mem_tags(f: &mut Function, blocks: &[BlockId], iters: i64) {
    for &b in blocks {
        for i in &mut f.block_mut(b).insts {
            if let Some(m) = i.mem {
                i.mem = Some(m.shifted(iters));
            }
        }
    }
}

/// Try to unroll one counted loop by up to `cfg.max_factor`.
/// Returns `None` (leaving the function untouched) when the loop shape is
/// unsupported or the body is too large to unroll at least 2×.
pub fn unroll_loop(
    f: &mut Function,
    cl: &CountedLoop,
    cfg: &UnrollConfig,
) -> Option<UnrolledLoop> {
    if cl.step != 1 || !matches!(cl.cond, Cond::Le | Cond::Lt) {
        return None;
    }
    // Loop blocks in layout order; they must be contiguous.
    let mut blocks: Vec<BlockId> = cl.blocks.clone();
    blocks.sort_by_key(|b| f.layout_pos(*b).unwrap_or(usize::MAX));
    let first_pos = f.layout_pos(blocks[0])?;
    for (k, b) in blocks.iter().enumerate() {
        if f.layout_pos(*b) != Some(first_pos + k) {
            return None;
        }
    }
    if *blocks.first().unwrap() != cl.header || *blocks.last().unwrap() != cl.latch {
        return None;
    }

    let body_size: usize = blocks.iter().map(|&b| f.block(b).insts.len()).sum();
    let mut n = cfg.max_factor.min(cfg.max_body_insts / body_size.max(1));
    n = n.min(cfg.max_factor);
    if n < 2 {
        return None;
    }

    // --- P0: trip-count / preconditioning computation -------------------
    let tc = f.new_reg(RegClass::Int);
    let rem = f.new_reg(RegClass::Int);
    let pb = f.new_reg(RegClass::Int);
    let p0 = f.add_block_detached("unroll.pre0");

    // --- Precondition body copy -----------------------------------------
    let (pre_blocks, pre_map) = clone_blocks(f, &blocks, "unroll.pre");
    let pre_header = pre_map[&cl.header];
    let pre_latch = pre_map[&cl.latch];
    {
        // Retarget the precondition backedge: loop while iv < pb.
        let latch = f.block_mut(pre_latch);
        let br = latch.insts.last_mut().expect("latch branch");
        debug_assert!(br.op.is_branch());
        *br = {
            let mut b = Inst::br(Cond::Lt, cl.iv.into(), pb.into(), pre_header);
            b.prob = 0.4; // rem averages (N-1)/2 iterations
            b
        };
    }

    // --- M0: main-loop guard ---------------------------------------------
    let m0 = f.add_block_detached("unroll.main0");
    let skip_cond = match cl.cond {
        Cond::Le => Cond::Gt,
        Cond::Lt => Cond::Ge,
        _ => unreachable!(),
    };

    // --- Main copies 1..n-1 ----------------------------------------------
    let mut main_clone_blocks: Vec<Vec<BlockId>> = Vec::new();
    let mut main_clone_latches: Vec<BlockId> = Vec::new();
    for p in 1..n {
        let (cb, cm) = clone_blocks(f, &blocks, &format!("unroll.c{p}"));
        shift_mem_tags(f, &cb, p as i64);
        main_clone_latches.push(cm[&cl.latch]);
        main_clone_blocks.push(cb);
    }

    // Copy 0 = original blocks: drop its trailing backedge (falls through
    // into copy 1).
    f.block_mut(cl.latch).insts.pop();
    // Copies 1..n-2: drop backedges too. Copy n-1 keeps a backedge to the
    // original header.
    for (k, &lb) in main_clone_latches.iter().enumerate() {
        let is_last = k + 1 == main_clone_latches.len();
        if is_last {
            let br = f.block_mut(lb).insts.last_mut().expect("latch branch");
            br.target = Some(cl.header);
        } else {
            f.block_mut(lb).insts.pop();
        }
    }

    // --- Emit P0 / M0 contents -------------------------------------------
    {
        let insts = &mut f.block_mut(p0).insts;
        insts.push(Inst::alu(Opcode::Sub, tc, cl.bound, cl.iv.into()));
        if cl.cond == Cond::Le {
            insts.push(Inst::alu(Opcode::Add, tc, tc.into(), Operand::ImmI(1)));
        }
        insts.push(Inst::alu(Opcode::Rem, rem, tc.into(), Operand::ImmI(n as i64)));
        insts.push(Inst::alu(Opcode::Add, pb, cl.iv.into(), rem.into()));
        let mut skip_pre = Inst::br(Cond::Ge, cl.iv.into(), pb.into(), m0);
        skip_pre.prob = 1.0 / n as f32;
        insts.push(skip_pre);
    }
    {
        let mut skip_main = Inst::br(skip_cond, cl.iv.into(), cl.bound, cl.exit);
        skip_main.prob = 0.02;
        f.block_mut(m0).insts.push(skip_main);
    }

    // --- Layout surgery ----------------------------------------------------
    // [ ..., P0, PRE..., M0, original blocks ..., clones1.., clonesN-1.., exit ]
    let mut insert_at = first_pos;
    let mut to_insert: Vec<BlockId> = vec![p0];
    to_insert.extend(&pre_blocks);
    to_insert.push(m0);
    for b in to_insert {
        f.layout.insert(insert_at, b);
        insert_at += 1;
    }
    // After the original blocks (which shifted right by the insertions).
    let mut after = insert_at + blocks.len();
    for cb in &main_clone_blocks {
        for &b in cb {
            f.layout.insert(after, b);
            after += 1;
        }
    }

    Some(UnrolledLoop { factor: n, header: cl.header })
}

/// Restore canonical bottom-test form when CSE merged the loop counter's
/// increment with an address computation, leaving the latch as
/// `mov iv, t; ... ; br c (t, bound)` with `t = add iv, #step` defined
/// earlier in the body. Rewrites the `mov` back to `add iv, iv, #step` and
/// the branch to compare `iv` (both hold the same value at those points).
fn normalize_latch(f: &mut Function, lp: &ilpc_analysis::Loop) -> bool {
    let latch_insts = &f.block(lp.latch).insts;
    let Some(br) = latch_insts.last() else { return false };
    let (Opcode::Br(_), Some(t)) = (br.op, br.src[0].reg()) else { return false };
    if br.target != Some(lp.header) || !t.is_int() {
        return false;
    }
    // t's unique def in the loop: `t = add iv, #step`.
    let mut t_def: Option<(BlockId, usize)> = None;
    for &b in &lp.blocks {
        for (i, inst) in f.block(b).insts.iter().enumerate() {
            if inst.def() == Some(t) {
                if t_def.is_some() {
                    return false;
                }
                t_def = Some((b, i));
            }
        }
    }
    let Some((tb, ti)) = t_def else { return false };
    let tdef = &f.block(tb).insts[ti];
    if tdef.op != Opcode::Add {
        return false;
    }
    let (Some(iv), Operand::ImmI(step)) = (tdef.src[0].reg(), tdef.src[1]) else {
        return false;
    };
    // iv's unique def in the loop: `mov iv, t` in the latch.
    let mut iv_def: Option<usize> = None;
    for &b in &lp.blocks {
        for (i, inst) in f.block(b).insts.iter().enumerate() {
            if inst.def() == Some(iv) {
                if iv_def.is_some() || b != lp.latch {
                    return false;
                }
                iv_def = Some(i);
            }
        }
    }
    let Some(mi) = iv_def else { return false };
    let mov = &f.block(lp.latch).insts[mi];
    if mov.op != Opcode::Mov || mov.src[0].reg() != Some(t) {
        return false;
    }
    // Rewrite.
    let latch = f.block_mut(lp.latch);
    latch.insts[mi] = Inst::alu(Opcode::Add, iv, iv.into(), Operand::ImmI(step));
    let last = latch.insts.len() - 1;
    latch.insts[last].src[0] = iv.into();
    true
}

/// Unroll every inner counted loop of `m`; returns per-loop outcomes.
pub fn unroll_inner_loops(m: &mut Module, cfg: &UnrollConfig) -> Vec<UnrolledLoop> {
    let forest = LoopForest::compute(&m.func);
    let inner: Vec<_> = forest.inner_loops().into_iter().cloned().collect();
    let mut out = Vec::new();
    for lp in &inner {
        if as_counted_loop(&m.func, lp).is_none() {
            normalize_latch(&mut m.func, lp);
        }
        let Some(cl) = as_counted_loop(&m.func, lp) else { continue };
        if let Some(u) = unroll_loop(&mut m.func, &cl, cfg) {
            out.push(u);
        }
    }
    debug_assert!(
        ilpc_ir::verify::verify_module(m).is_ok(),
        "unrolling broke the IR: {:?}",
        ilpc_ir::verify::verify_module(m)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilpc_ir::ast::{Bound, Expr, Index, Program, Stmt};
    use ilpc_ir::interp::{interpret, DataInit};
    use ilpc_ir::lower::lower;
    use ilpc_ir::ArrayVal;
    use ilpc_opt::conventional;

    fn vec_add(n: i64) -> Program {
        let mut p = Program::new("add");
        let nn = p.int_var("n");
        let j = p.int_var("j");
        let a = p.flt_arr("A", 70);
        let b = p.flt_arr("B", 70);
        let c = p.flt_arr("C", 70);
        p.body = vec![
            Stmt::SetScalar(nn, Expr::Ci(n)),
            Stmt::For {
                var: j,
                lo: Bound::Const(1),
                hi: Bound::Var(nn),
                body: vec![Stmt::SetArr(
                    c,
                    Index::var(j),
                    Expr::add(Expr::at(a, Index::var(j)), Expr::at(b, Index::var(j))),
                )],
            },
        ];
        p
    }

    #[test]
    fn unrolls_fig1_loop_three_body_copies() {
        let mut l = lower(&vec_add(64));
        conventional(&mut l.module);
        let results = unroll_inner_loops(
            &mut l.module,
            &UnrollConfig { max_factor: 3, ..Default::default() },
        );
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].factor, 3);
        let f = &l.module.func;
        // Main loop now contains 3 loads of A with shifted tags 0,1,2.
        let forest = LoopForest::compute(f);
        let main = forest
            .loops
            .iter()
            .find(|lp| lp.header == results[0].header)
            .unwrap();
        let mut offs: Vec<i64> = main
            .blocks
            .iter()
            .flat_map(|&b| f.block(b).insts.iter())
            .filter(|i| i.op == Opcode::Load && i.mem.unwrap().sym.0 == 0)
            .map(|i| i.mem.unwrap().lin.unwrap().1)
            .collect();
        offs.sort_unstable();
        assert_eq!(offs, vec![0, 1, 2]);
        // Exactly one backedge remains in the main loop.
        let backs = main
            .blocks
            .iter()
            .flat_map(|&b| f.block(b).insts.iter())
            .filter(|i| i.op.is_branch() && i.target == Some(main.header))
            .count();
        assert_eq!(backs, 1);
    }

    /// Unrolling must preserve semantics for every trip count, including
    /// counts not divisible by the factor and zero-trip loops.
    #[test]
    fn preconditioning_preserves_semantics_shape() {
        for n in [0i64, 1, 2, 3, 5, 8, 13, 64] {
            let p = vec_add(n);
            let init = DataInit::new()
                .with_array(
                    ilpc_ir::ast::ArrId(0),
                    ArrayVal::F((0..70).map(|x| x as f64).collect()),
                )
                .with_array(ilpc_ir::ast::ArrId(1), ArrayVal::F(vec![100.0; 70]));
            let reference = interpret(&p, &init);
            // IR-level execution equivalence is established by the
            // simulator-based differential tests; here we check the
            // transformed IR still verifies and has the precondition shape.
            let mut l = lower(&p);
            conventional(&mut l.module);
            let r = unroll_inner_loops(&mut l.module, &UnrollConfig::default());
            if n == 0 {
                // Constant propagation removes the never-entered loop.
                assert!(r.len() <= 1, "n=0");
                continue;
            }
            assert_eq!(r.len(), 1, "n={n}");
            ilpc_ir::verify::verify_module(&l.module).unwrap();
            // A Rem instruction exists (preconditioning computation).
            assert!(l.module.func.insts().any(|(_, i)| i.op == Opcode::Rem));
            let _ = reference;
        }
    }

    #[test]
    fn oversized_bodies_reduce_factor() {
        let mut p = Program::new("big");
        let j = p.int_var("j");
        let a = p.flt_arr("A", 80);
        // Body with many statements.
        let mut body = Vec::new();
        for k in 0..10 {
            body.push(Stmt::SetArr(
                a,
                Index::var(j).offset(k),
                Expr::add(Expr::at(a, Index::var(j).offset(k)), Expr::Cf(1.0)),
            ));
        }
        p.body = vec![Stmt::For {
            var: j,
            lo: Bound::Const(0),
            hi: Bound::Const(63),
            body,
        }];
        let mut l = lower(&p);
        conventional(&mut l.module);
        let r = unroll_inner_loops(
            &mut l.module,
            &UnrollConfig { max_body_insts: 150, ..Default::default() },
        );
        assert_eq!(r.len(), 1);
        assert!(r[0].factor < 8, "factor {} should be capped", r[0].factor);
        assert!(r[0].factor >= 2);
    }
}
