//! Induction variable expansion (paper Figure 4).
//!
//! "Induction variable expansion eliminates flow, anti, and output
//! dependences between definitions of induction variables and their uses
//! within an unrolled loop body by creating k temporary induction variables.
//! [...] the increments of each temporary induction variable are moved to
//! the end of the unrolled loop body."
//!
//! On the renamed chain `v1 = v0+m; v2 = v1+m; v0 = v2+m` this produces
//! exactly the paper's Figure 5d: the chain registers become `k`
//! *independent* induction variables initialized to `v0 + p·m` in the loop
//! preheader and all incremented by `k·m` right before the back edge.

use crate::chains::{find_chains, Chain, ChainKind};
use ilpc_analysis::{invariant_in, DefUse, Liveness, Loop, LoopForest};
use ilpc_ir::{BlockId, Function, Inst, Module, Opcode, Operand, Reg, RegClass};

/// Additional legality for induction expansion (paper Figure 4):
/// the increment is the same loop-invariant value in every link.
fn induct_conditions(f: &Function, lp: &Loop, c: &Chain) -> Option<Operand> {
    if c.kind != ChainKind::IntAdd {
        return None;
    }
    // All links must be `add` (no mixed sub) with one common increment.
    for &d in &c.defs {
        if f.block(c.block).insts[d].op != Opcode::Add {
            return None;
        }
    }
    let m0 = c.increments[0];
    if !c.increments.iter().all(|i| *i == m0) {
        return None;
    }
    match m0 {
        Operand::ImmI(_) => Some(m0),
        Operand::Reg(r) if invariant_in(f, &lp.blocks, r) => Some(m0),
        _ => None,
    }
}

/// Uses of `r` in `b` strictly after instruction `idx`, excluding branches.
fn nonbranch_uses_after(f: &Function, b: BlockId, idx: usize, r: Reg) -> usize {
    f.block(b).insts[idx + 1..]
        .iter()
        .filter(|i| !i.op.is_branch() && i.uses().any(|u| u == r))
        .count()
}

fn insert_point(f: &Function, b: BlockId) -> usize {
    let insts = &f.block(b).insts;
    match insts.last() {
        Some(i) if i.op.is_control() => insts.len() - 1,
        _ => insts.len(),
    }
}

fn preheader(f: &Function, lp: &Loop) -> Option<BlockId> {
    let preds = f.preds();
    let mut outside = preds[lp.header.0 as usize]
        .iter()
        .filter(|p| !lp.contains(**p));
    let ph = *outside.next()?;
    if outside.next().is_some() {
        return None;
    }
    Some(ph)
}

/// Expand one induction chain.
fn expand_chain(f: &mut Function, lp: &Loop, c: &Chain, m_op: Operand) {
    let k = c.len();
    let ph = preheader(f, lp).expect("checked by caller");

    // Preheader: v_p = v0 + p·m (p = 1..k-1) and z = k·m.
    let at = insert_point(f, ph);
    let mut init: Vec<Inst> = Vec::new();
    let z_op: Operand = match m_op {
        Operand::ImmI(mc) => {
            for p in 1..k {
                init.push(Inst::alu(
                    Opcode::Add,
                    c.regs[p],
                    c.carried.into(),
                    Operand::ImmI(mc * p as i64),
                ));
            }
            Operand::ImmI(mc * k as i64)
        }
        Operand::Reg(mr) => {
            // Chained adds: v_p = v_{p-1} + m; z = m * k.
            for p in 1..k {
                init.push(Inst::alu(
                    Opcode::Add,
                    c.regs[p],
                    c.regs[p - 1].into(),
                    mr.into(),
                ));
            }
            let z = f.new_reg(RegClass::Int);
            init.push(Inst::alu(Opcode::Mul, z, mr.into(), Operand::ImmI(k as i64)));
            Operand::Reg(z)
        }
        _ => unreachable!(),
    };
    for (i, inst) in init.into_iter().enumerate() {
        f.block_mut(ph).insts.insert(at + i, inst);
    }

    // Remove the chain definitions from the block (descending order).
    let mut defs = c.defs.clone();
    defs.sort_unstable_by(|a, b| b.cmp(a));
    for d in defs {
        f.block_mut(c.block).insts.remove(d);
    }

    // Increment every temporary right before the block's trailing branch.
    let at = insert_point(f, c.block);
    for (i, &r) in c.regs.iter().enumerate() {
        f.block_mut(c.block)
            .insts
            .insert(at + i, Inst::alu(Opcode::Add, r, r.into(), z_op));
    }
}

/// Apply induction variable expansion to every inner loop of `m`.
/// Returns the number of chains expanded.
pub fn induction_expand(m: &mut Module) -> usize {
    let forest = LoopForest::compute(&m.func);
    let inner: Vec<Loop> = forest.inner_loops().into_iter().cloned().collect();
    let mut count = 0;
    for lp in &inner {
        if preheader(&m.func, lp).is_none() {
            continue;
        }
        loop {
            let lv = Liveness::compute(&m.func);
            let du = DefUse::compute(&m.func);
            let mut applied = false;
            for &b in &lp.blocks {
                // Only expand in the block that ends with the back edge —
                // the increments move before that branch, so the chain must
                // live in the latch block.
                let is_latch = m
                    .func
                    .block(b)
                    .insts
                    .last()
                    .is_some_and(|i| i.op.is_branch() && i.target == Some(lp.header));
                if !is_latch {
                    continue;
                }
                let chains = find_chains(&m.func, &lp.blocks, b, &lv, &du);
                let pick = chains.iter().find_map(|c| {
                    let m_op = induct_conditions(&m.func, lp, c)?;
                    let close = *c.defs.last().unwrap();
                    // After the closing def, chain registers may only be
                    // read by the trailing back-edge branch: other reads
                    // would observe the moved increments at the wrong time.
                    for &r in &c.regs {
                        if nonbranch_uses_after(&m.func, b, close, r) > 0 {
                            return None;
                        }
                    }
                    // If the back-edge branch reads an *intermediate* chain
                    // register (operation combining can retarget the compare
                    // onto one), the comparison bound must be adjusted by z
                    // after the increments move before the branch — only an
                    // immediate bound can absorb that.
                    let br = m.func.block(b).insts.last().unwrap();
                    let needs_adjust = br
                        .uses()
                        .any(|u| c.regs[1..].contains(&u));
                    if needs_adjust {
                        let imm_bound = br
                            .src
                            .iter()
                            .any(|s| matches!(s, Operand::ImmI(_)));
                        let imm_step = matches!(m_op, Operand::ImmI(_));
                        if !imm_bound || !imm_step {
                            return None;
                        }
                    }
                    Some((c.clone(), m_op, needs_adjust))
                });
                if let Some((c, m_op, needs_adjust)) = pick {
                    expand_chain(&mut m.func, lp, &c, m_op);
                    if needs_adjust {
                        let z = match m_op {
                            Operand::ImmI(mc) => mc * c.len() as i64,
                            _ => unreachable!(),
                        };
                        let br =
                            m.func.block_mut(b).insts.last_mut().unwrap();
                        for s in &mut br.src {
                            if let Operand::ImmI(v) = *s {
                                *s = Operand::ImmI(v + z);
                            }
                        }
                    }
                    count += 1;
                    applied = true;
                    break;
                }
            }
            if !applied {
                break;
            }
        }
    }
    debug_assert!(
        ilpc_ir::verify::verify_module(m).is_ok(),
        "induction expansion broke the IR: {:?}",
        ilpc_ir::verify::verify_module(m)
    );
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilpc_ir::inst::MemLoc;
    use ilpc_ir::Cond;

    /// Renamed 3×-unrolled strided loop like the paper's Figure 5c:
    /// r21 chain incremented by the invariant register r7.
    fn fig5_module() -> (Module, BlockId, Reg, Reg, Reg) {
        let mut m = Module::new("fig5");
        let a = m.symtab.declare("A", 64, RegClass::Flt);
        let c = m.symtab.declare("C", 64, RegClass::Flt);
        let f = &mut m.func;
        let r1 = f.new_reg(RegClass::Int); // counter
        let r7 = f.new_reg(RegClass::Int); // invariant stride K
        let r21 = f.new_reg(RegClass::Int); // strided induction (carried)
        let r22 = f.new_reg(RegClass::Int);
        let r23 = f.new_reg(RegClass::Int);
        let v: Vec<Reg> = (0..3).map(|_| f.new_reg(RegClass::Flt)).collect();
        let entry = f.add_block("entry");
        let body = f.add_block("body");
        let exit = f.add_block("exit");
        f.block_mut(entry).insts.extend([
            Inst::mov(r1, Operand::ImmI(0)),
            Inst::mov(r7, Operand::ImmI(2)),
            Inst::mov(r21, Operand::ImmI(0)),
        ]);
        f.block_mut(body).insts.extend([
            Inst::load(v[0], Operand::Sym(a), r21.into(), MemLoc::opaque(a)),
            Inst::store(Operand::Sym(c), r21.into(), v[0].into(), MemLoc::opaque(c)),
            Inst::alu(Opcode::Add, r22, r21.into(), r7.into()),
            Inst::load(v[1], Operand::Sym(a), r22.into(), MemLoc::opaque(a)),
            Inst::store(Operand::Sym(c), r22.into(), v[1].into(), MemLoc::opaque(c)),
            Inst::alu(Opcode::Add, r23, r22.into(), r7.into()),
            Inst::load(v[2], Operand::Sym(a), r23.into(), MemLoc::opaque(a)),
            Inst::store(Operand::Sym(c), r23.into(), v[2].into(), MemLoc::opaque(c)),
            Inst::alu(Opcode::Add, r21, r23.into(), r7.into()),
            Inst::alu(Opcode::Add, r1, r1.into(), Operand::ImmI(3)),
            Inst::br(Cond::Lt, r1.into(), Operand::ImmI(12), body),
        ]);
        f.block_mut(exit).insts.push(Inst::halt());
        (m, body, r21, r22, r23)
    }

    #[test]
    fn expands_fig5_chain_to_independent_increments() {
        let (mut m, body, r21, r22, r23) = fig5_module();
        assert_eq!(induction_expand(&mut m), 1);
        let f = &m.func;
        let insts = &f.block(body).insts;
        // Chain defs removed; three independent increments before the
        // branch, each register incremented by z (= r7 * 3).
        let n = insts.len();
        assert!(insts[n - 1].op.is_branch());
        let incs: Vec<&Inst> = insts[..n - 1]
            .iter()
            .filter(|i| {
                i.op == Opcode::Add && i.def() == i.src[0].reg().map(Some).flatten()
            })
            .collect();
        let inc_dsts: Vec<Reg> = incs
            .iter()
            .filter(|i| i.src[1].reg().is_some())
            .map(|i| i.dst.unwrap())
            .collect();
        // The three chain registers each get a self-increment by z.
        for r in [r21, r22, r23] {
            assert!(inc_dsts.contains(&r), "{r} not incremented by z");
        }
        // No instruction defines r22/r23 except their z-increments.
        let defs_r22 = insts.iter().filter(|i| i.def() == Some(r22)).count();
        assert_eq!(defs_r22, 1);
        // Preheader contains z = r7 * 3.
        let entry = f.entry();
        assert!(f.block(entry).insts.iter().any(|i| {
            i.op == Opcode::Mul && i.src[1] == Operand::ImmI(3)
        }));
    }

    #[test]
    fn constant_step_chain_uses_immediates() {
        // i1 = i+1 (used); i = i1+1 ; with loads using both.
        let mut m = Module::new("t");
        let a = m.symtab.declare("A", 16, RegClass::Flt);
        let f = &mut m.func;
        let i = f.new_reg(RegClass::Int);
        let i1 = f.new_reg(RegClass::Int);
        let v0 = f.new_reg(RegClass::Flt);
        let v1 = f.new_reg(RegClass::Flt);
        let entry = f.add_block("entry");
        let body = f.add_block("body");
        let exit = f.add_block("exit");
        f.block_mut(entry).insts.push(Inst::mov(i, Operand::ImmI(0)));
        f.block_mut(body).insts.extend([
            Inst::load(v0, Operand::Sym(a), i.into(), MemLoc::affine(a, 2, 0)),
            Inst::store(Operand::Sym(a), i.into(), v0.into(), MemLoc::affine(a, 2, 0)),
            Inst::alu(Opcode::Add, i1, i.into(), Operand::ImmI(1)),
            Inst::load(v1, Operand::Sym(a), i1.into(), MemLoc::affine(a, 2, 1)),
            Inst::store(Operand::Sym(a), i1.into(), v1.into(), MemLoc::affine(a, 2, 1)),
            Inst::alu(Opcode::Add, i, i1.into(), Operand::ImmI(1)),
            Inst::br(Cond::Lt, i.into(), Operand::ImmI(14), body),
        ]);
        f.block_mut(exit).insts.push(Inst::halt());
        assert_eq!(induction_expand(&mut m), 1);
        let insts = &m.func.block(body).insts;
        // Increments by 2 before the branch.
        let n = insts.len();
        assert_eq!(insts[n - 2].src[1], Operand::ImmI(2));
        assert_eq!(insts[n - 3].src[1], Operand::ImmI(2));
        // Preheader: i1 = i + 1.
        assert!(m.func.block(m.func.entry()).insts.iter().any(|x| {
            x.op == Opcode::Add && x.dst == Some(i1) && x.src[1] == Operand::ImmI(1)
        }));
        ilpc_ir::verify::verify_module(&m).unwrap();
    }

    #[test]
    fn rejects_varying_increment() {
        // i = i + x where x changes per link.
        let mut m = Module::new("t");
        let f = &mut m.func;
        let i = f.new_reg(RegClass::Int);
        let i1 = f.new_reg(RegClass::Int);
        let x = f.new_reg(RegClass::Int);
        let entry = f.add_block("entry");
        let body = f.add_block("body");
        let exit = f.add_block("exit");
        f.block_mut(entry).insts.extend([
            Inst::mov(i, Operand::ImmI(0)),
            Inst::mov(x, Operand::ImmI(1)),
        ]);
        f.block_mut(body).insts.extend([
            Inst::alu(Opcode::Add, i1, i.into(), x.into()),
            Inst::alu(Opcode::Add, x, x.into(), Operand::ImmI(1)), // x varies!
            Inst::alu(Opcode::Add, i, i1.into(), x.into()),
            Inst::br(Cond::Lt, i.into(), Operand::ImmI(100), body),
        ]);
        f.block_mut(exit).insts.push(Inst::halt());
        assert_eq!(induction_expand(&mut m), 0);
    }
}
