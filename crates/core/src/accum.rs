//! Accumulator variable expansion (paper Figure 2).
//!
//! "Accumulator variable expansion eliminates redefinitions of an
//! accumulator variable within an unrolled loop by creating k temporary
//! accumulators. [...] To recover the value of the original accumulator
//! variable, the temporary accumulators are summed at all exit points of
//! the loop."
//!
//! Operates on the renamed update chain found by [`crate::chains`]:
//! the chain through `v0` becomes `k` independent accumulators `t_p`, with
//! `t_0` seeded from `v0` and the rest from the identity, each chain link
//! rewritten to update its own accumulator, and a reduction inserted at
//! every loop exit. Sum *and product* accumulators are supported
//! (the paper: "accumulates a sum or product in each iteration").

use crate::chains::{find_chains, Chain};
use ilpc_analysis::{DefUse, Liveness, Loop, LoopForest};
use ilpc_ir::{BlockId, Function, Inst, Module, Reg};

/// Additional legality for accumulator expansion: the carried value may be
/// referenced *only* by the chain itself inside the loop (paper condition 2:
/// "V is only referenced in the above inc/dec instructions").
fn accum_conditions(f: &Function, lp: &Loop, c: &Chain, du: &DefUse) -> bool {
    // Intermediates: exactly one use (the next link).
    for r in &c.regs[1..] {
        if du.num_uses(*r) != 1 {
            return false;
        }
    }
    // v0: inside the loop, used once (chain start).
    let uses_in_loop: usize = lp
        .blocks
        .iter()
        .map(|&b| {
            f.block(b)
                .insts
                .iter()
                .flat_map(|i| i.uses())
                .filter(|u| *u == c.carried)
                .count()
        })
        .sum();
    uses_in_loop == 1
}

/// Insertion point before a trailing control transfer.
fn insert_point(f: &Function, b: BlockId) -> usize {
    let insts = &f.block(b).insts;
    match insts.last() {
        Some(i) if i.op.is_control() => insts.len() - 1,
        _ => insts.len(),
    }
}

/// The unique out-of-loop predecessor of the loop header.
fn preheader(f: &Function, lp: &Loop) -> Option<BlockId> {
    let preds = f.preds();
    let mut outside = preds[lp.header.0 as usize]
        .iter()
        .filter(|p| !lp.contains(**p));
    let ph = *outside.next()?;
    if outside.next().is_some() {
        return None;
    }
    Some(ph)
}

/// Expand one chain; assumes conditions hold.
fn expand_chain(f: &mut Function, lp: &Loop, c: &Chain) {
    let k = c.len();
    let temps: Vec<Reg> = (0..k).map(|_| f.new_reg(c.kind.class())).collect();

    // Preheader seeding: t0 = v0, t_p = identity.
    let ph = preheader(f, lp).expect("checked by caller");
    let at = insert_point(f, ph);
    let mut seed = vec![Inst::mov(temps[0], c.carried.into())];
    for &t in &temps[1..] {
        seed.push(Inst::mov(t, c.kind.identity()));
    }
    for (i, inst) in seed.into_iter().enumerate() {
        f.block_mut(ph).insts.insert(at + i, inst);
    }

    // Rewrite links: link p (def index c.defs[p]) becomes
    // `t_p = op(t_p, x_{p+1})`.
    for (p, &didx) in c.defs.iter().enumerate() {
        let inst = &mut f.block_mut(c.block).insts[didx];
        inst.dst = Some(temps[p]);
        // The chain-continuation operand becomes t_p; keep the increment.
        let chain_reg = c.regs[p]; // v_{p} feeds link p+1... regs[p] feeds def p.
        let replaced = inst.replace_use(chain_reg, temps[p].into());
        debug_assert!(replaced > 0, "chain operand not found");
    }

    // Exit reductions: t0 = combine(t0, t_p); v0 = t0.
    for &e in &lp.exits {
        let mut red = Vec::with_capacity(k);
        for &t in &temps[1..] {
            red.push(Inst::alu(c.kind.combine_op(), temps[0], temps[0].into(), t.into()));
        }
        red.push(Inst::mov(c.carried, temps[0].into()));
        for (i, inst) in red.into_iter().enumerate() {
            f.block_mut(e).insts.insert(i, inst);
        }
    }
}

/// Apply accumulator variable expansion to every inner loop of `m`.
/// Returns the number of chains expanded.
pub fn accumulator_expand(m: &mut Module) -> usize {
    let forest = LoopForest::compute(&m.func);
    let inner: Vec<Loop> = forest.inner_loops().into_iter().cloned().collect();
    let mut count = 0;
    for lp in &inner {
        if preheader(&m.func, lp).is_none() || lp.exits.len() != 1 {
            continue;
        }
        // Re-derive analyses per loop (previous expansions change code).
        loop {
            let lv = Liveness::compute(&m.func);
            let du = DefUse::compute(&m.func);
            let mut applied = false;
            for &b in &lp.blocks {
                let chains = find_chains(&m.func, &lp.blocks, b, &lv, &du);
                if let Some(c) = chains
                    .iter()
                    .find(|c| accum_conditions(&m.func, lp, c, &du))
                {
                    expand_chain(&mut m.func, lp, c);
                    count += 1;
                    applied = true;
                    break;
                }
            }
            if !applied {
                break;
            }
        }
    }
    debug_assert!(
        ilpc_ir::verify::verify_module(m).is_ok(),
        "accumulator expansion broke the IR: {:?}",
        ilpc_ir::verify::verify_module(m)
    );
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilpc_ir::inst::MemLoc;
    use ilpc_ir::{Cond, Opcode, Operand, RegClass};

    /// Renamed, 3×-unrolled dot-product-like accumulation.
    fn accum_module() -> (Module, BlockId, BlockId, Reg) {
        let mut m = Module::new("t");
        let a = m.symtab.declare("A", 16, RegClass::Flt);
        let out = m.symtab.declare("out", 1, RegClass::Flt);
        let f = &mut m.func;
        let i = f.new_reg(RegClass::Int);
        let s = f.new_reg(RegClass::Flt);
        let s1 = f.new_reg(RegClass::Flt);
        let s2 = f.new_reg(RegClass::Flt);
        let x: Vec<Reg> = (0..3).map(|_| f.new_reg(RegClass::Flt)).collect();
        let entry = f.add_block("entry");
        let body = f.add_block("body");
        let exit = f.add_block("exit");
        f.block_mut(entry).insts.extend([
            Inst::mov(i, Operand::ImmI(0)),
            Inst::mov(s, Operand::ImmF(0.0)),
        ]);
        f.block_mut(body).insts.extend([
            Inst::load(x[0], Operand::Sym(a), i.into(), MemLoc::affine(a, 1, 0)),
            Inst::alu(Opcode::FAdd, s1, s.into(), x[0].into()),
            Inst::load(x[1], Operand::Sym(a), i.into(), MemLoc::affine(a, 1, 1)),
            Inst::alu(Opcode::FAdd, s2, s1.into(), x[1].into()),
            Inst::load(x[2], Operand::Sym(a), i.into(), MemLoc::affine(a, 1, 2)),
            Inst::alu(Opcode::FAdd, s, s2.into(), x[2].into()),
            Inst::alu(Opcode::Add, i, i.into(), Operand::ImmI(3)),
            Inst::br(Cond::Lt, i.into(), Operand::ImmI(12), body),
        ]);
        f.block_mut(exit).insts.extend([
            Inst::store(Operand::Sym(out), Operand::ImmI(0), s.into(), MemLoc::affine(out, 0, 0)),
            Inst::halt(),
        ]);
        (m, body, exit, s)
    }

    #[test]
    fn expands_accumulator_like_fig3d() {
        let (mut m, body, exit, s) = accum_module();
        assert_eq!(accumulator_expand(&mut m), 1);
        let f = &m.func;
        // The three FAdds in the body now write three distinct registers,
        // each reading only itself + a load (no inter-add dependence).
        let fadds: Vec<&Inst> = f
            .block(body)
            .insts
            .iter()
            .filter(|i| i.op == Opcode::FAdd)
            .collect();
        assert_eq!(fadds.len(), 3);
        let dsts: Vec<Reg> = fadds.iter().map(|i| i.dst.unwrap()).collect();
        assert!(dsts[0] != dsts[1] && dsts[1] != dsts[2] && dsts[0] != dsts[2]);
        for add in &fadds {
            assert_eq!(add.src[0].reg(), add.def(), "self-accumulation only");
        }
        // Exit block: two combining adds then mov s, t0, before the store.
        let einsts = &f.block(exit).insts;
        assert_eq!(einsts[0].op, Opcode::FAdd);
        assert_eq!(einsts[1].op, Opcode::FAdd);
        assert_eq!(einsts[2].op, Opcode::Mov);
        assert_eq!(einsts[2].dst, Some(s));
        assert_eq!(einsts[3].op, Opcode::Store);
    }

    #[test]
    fn rejects_accumulator_read_in_loop() {
        // Body also stores s each iteration -> condition 2 violated.
        let (mut m, body, _, s) = accum_module();
        let a = ilpc_ir::SymId(0);
        m.func.block_mut(body).insts.insert(
            6,
            Inst::store(Operand::Sym(a), Operand::ImmI(5), s.into(), MemLoc::affine(a, 0, 5)),
        );
        assert_eq!(accumulator_expand(&mut m), 0);
    }

    #[test]
    fn expands_product_accumulator() {
        // Product chain with FMul links.
        let mut m = Module::new("t");
        let a = m.symtab.declare("A", 16, RegClass::Flt);
        let out = m.symtab.declare("out", 1, RegClass::Flt);
        let f = &mut m.func;
        let i = f.new_reg(RegClass::Int);
        let s = f.new_reg(RegClass::Flt);
        let s1 = f.new_reg(RegClass::Flt);
        let x0 = f.new_reg(RegClass::Flt);
        let x1 = f.new_reg(RegClass::Flt);
        let entry = f.add_block("entry");
        let body = f.add_block("body");
        let exit = f.add_block("exit");
        f.block_mut(entry).insts.extend([
            Inst::mov(i, Operand::ImmI(0)),
            Inst::mov(s, Operand::ImmF(1.0)),
        ]);
        f.block_mut(body).insts.extend([
            Inst::load(x0, Operand::Sym(a), i.into(), MemLoc::affine(a, 1, 0)),
            Inst::alu(Opcode::FMul, s1, s.into(), x0.into()),
            Inst::load(x1, Operand::Sym(a), i.into(), MemLoc::affine(a, 1, 1)),
            Inst::alu(Opcode::FMul, s, s1.into(), x1.into()),
            Inst::alu(Opcode::Add, i, i.into(), Operand::ImmI(2)),
            Inst::br(Cond::Lt, i.into(), Operand::ImmI(8), body),
        ]);
        f.block_mut(exit).insts.extend([
            Inst::store(Operand::Sym(out), Operand::ImmI(0), s.into(), MemLoc::affine(out, 0, 0)),
            Inst::halt(),
        ]);
        assert_eq!(accumulator_expand(&mut m), 1);
        // Second temp seeded with 1.0.
        let ph = m.func.block(m.func.entry());
        assert!(ph
            .insts
            .iter()
            .any(|i| i.op == Opcode::Mov && i.src[0] == Operand::ImmF(1.0)));
        // Exit combines with FMul.
        assert_eq!(m.func.block(exit).insts[0].op, Opcode::FMul);
    }
}
