//! Operation combining (Nakatani & Ebcioglu, as adopted by the paper).
//!
//! "Flow dependences between pairs of instructions each with a compile-time
//! constant source operand can be eliminated with operation combining."
//!
//! Supported combinations (the paper's table):
//!
//! * `(add i, sub i)` into `(add i, sub i, compare i, load, store, branch i)`
//! * `(mul i)` into `(mul i)`
//! * `(add f, sub f)` into `(add f, sub f, compare f, branch f)`
//! * `(mul f, div f)` into `(mul f, div f)`
//!
//! Integer combinations are skipped on overflow of the folded constant
//! (paper footnote 1). Address combinations fold into the instruction's
//! `ext` displacement field, producing the paper's `MEM(r + C)` form.
//! When the producer is a self-update (`r1 = r1 + C`) and the consumer
//! immediately follows, the two instructions exchange positions, exactly as
//! in the paper's Figure 6.

use ilpc_analysis::DefUse;
use ilpc_ir::{Module, Opcode, Operand};

/// Producer pattern: `r1 = r2 ± C` / `r1 = r2 * C` (integer or float).
#[derive(Debug, Clone, Copy)]
enum Producer {
    /// `r1 = r2 + c` (sub is normalized to a negative constant).
    AddI { src: Operand, c: i64 },
    MulI { src: Operand, c: i64 },
    /// `r1 = r2 + c` floating point.
    AddF { src: Operand, c: f64 },
    /// `r1 = r2 * c^pow` where `pow` is +1 (mul) or −1 (div by c).
    MulF { src: Operand, c: f64, div: bool },
}

fn producer_of(inst: &ilpc_ir::Inst) -> Option<Producer> {
    let (a, b) = (inst.src[0], inst.src[1]);
    match inst.op {
        Opcode::Add => match (a, b) {
            (s, Operand::ImmI(c)) | (Operand::ImmI(c), s) => {
                Some(Producer::AddI { src: s, c })
            }
            _ => None,
        },
        Opcode::Sub => match (a, b) {
            (s, Operand::ImmI(c)) => {
                Some(Producer::AddI { src: s, c: c.checked_neg()? })
            }
            _ => None,
        },
        Opcode::Mul => match (a, b) {
            (s, Operand::ImmI(c)) | (Operand::ImmI(c), s) => {
                Some(Producer::MulI { src: s, c })
            }
            _ => None,
        },
        Opcode::FAdd => match (a, b) {
            (s, Operand::ImmF(c)) | (Operand::ImmF(c), s) => {
                Some(Producer::AddF { src: s, c })
            }
            _ => None,
        },
        Opcode::FSub => match (a, b) {
            (s, Operand::ImmF(c)) => Some(Producer::AddF { src: s, c: -c }),
            _ => None,
        },
        Opcode::FMul => match (a, b) {
            (s, Operand::ImmF(c)) | (Operand::ImmF(c), s) => {
                Some(Producer::MulF { src: s, c, div: false })
            }
            _ => None,
        },
        Opcode::FDiv => match (a, b) {
            (s, Operand::ImmF(c)) => Some(Producer::MulF { src: s, c, div: true }),
            _ => None,
        },
        _ => None,
    }
}

/// Try to combine producer `p` (defining `r1`) into consumer `inst`.
/// Returns true on success.
fn combine_into(inst: &mut ilpc_ir::Inst, r1: ilpc_ir::Reg, p: Producer) -> bool {
    use Producer::*;
    match (inst.op, p) {
        // Integer add/sub into add/sub.
        (Opcode::Add | Opcode::Sub, AddI { src, c }) => {
            // Only through the left operand of Sub (r1 - x keeps shape);
            // for Add either slot works.
            for slot in 0..2 {
                if inst.src[slot].reg() != Some(r1) {
                    continue;
                }
                if inst.op == Opcode::Sub && slot == 1 {
                    // x - r1 = x - r2 - c: fold into constant only if the
                    // other operand is constant — skip for simplicity.
                    continue;
                }
                let adj = match inst.src[1 - slot] {
                    Operand::ImmI(c2) => {
                        // (r2 + c) op c2 → r2 op (c2 ∓ ...): normalize via
                        // total constant: Add: r2 + (c + c2) ; Sub: r2 - (c2 - c)
                        let total = if inst.op == Opcode::Add {
                            c.checked_add(c2)
                        } else {
                            c2.checked_sub(c)
                        };
                        match total {
                            Some(t) => Some((slot, t)),
                            None => None,
                        }
                    }
                    _ => None,
                };
                if let Some((slot, total)) = adj {
                    inst.src[slot] = src;
                    inst.src[1 - slot] = Operand::ImmI(total);
                    return true;
                }
            }
            false
        }
        // Integer add/sub into compare-and-branch.
        (Opcode::Br(_), AddI { src, c }) => {
            for slot in 0..2 {
                if inst.src[slot].reg() != Some(r1) {
                    continue;
                }
                if let Operand::ImmI(c2) = inst.src[1 - slot] {
                    // (r2 + c) cmp c2  ⇔  r2 cmp (c2 − c)
                    if let Some(adj) = c2.checked_sub(c) {
                        inst.src[slot] = src;
                        inst.src[1 - slot] = Operand::ImmI(adj);
                        return true;
                    }
                }
            }
            false
        }
        // Integer add/sub into load/store addressing.
        (Opcode::Load | Opcode::Store, AddI { src, c }) => {
            // Offset operand only (src[1]); base stays.
            if inst.src[1].reg() == Some(r1) {
                if let Some(ext) = inst.ext.checked_add(c) {
                    inst.src[1] = src;
                    inst.ext = ext;
                    return true;
                }
            }
            false
        }
        // Integer multiply into multiply.
        (Opcode::Mul, MulI { src, c }) => {
            for slot in 0..2 {
                if inst.src[slot].reg() != Some(r1) {
                    continue;
                }
                if let Operand::ImmI(c2) = inst.src[1 - slot] {
                    if let Some(total) = c.checked_mul(c2) {
                        inst.src[slot] = src;
                        inst.src[1 - slot] = Operand::ImmI(total);
                        return true;
                    }
                }
            }
            false
        }
        // Float add/sub into add/sub and compare-branches.
        (Opcode::FAdd | Opcode::FSub, AddF { src, c }) => {
            for slot in 0..2 {
                if inst.src[slot].reg() != Some(r1) {
                    continue;
                }
                if inst.op == Opcode::FSub && slot == 1 {
                    continue;
                }
                if let Operand::ImmF(c2) = inst.src[1 - slot] {
                    let total = if inst.op == Opcode::FAdd { c + c2 } else { c2 - c };
                    if !total.is_finite() {
                        return false;
                    }
                    inst.src[slot] = src;
                    inst.src[1 - slot] = Operand::ImmF(total);
                    return true;
                }
            }
            false
        }
        (Opcode::Br(_), AddF { src, c }) => {
            for slot in 0..2 {
                if inst.src[slot].reg() != Some(r1) {
                    continue;
                }
                if let Operand::ImmF(c2) = inst.src[1 - slot] {
                    let adj = c2 - c;
                    if !adj.is_finite() {
                        return false;
                    }
                    inst.src[slot] = src;
                    inst.src[1 - slot] = Operand::ImmF(adj);
                    return true;
                }
            }
            false
        }
        // Float mul/div into mul/div.
        (Opcode::FMul | Opcode::FDiv, MulF { src, c, div }) => {
            for slot in 0..2 {
                if inst.src[slot].reg() != Some(r1) {
                    continue;
                }
                if inst.op == Opcode::FDiv && slot == 1 {
                    continue; // x / (r2*c) changes shape; skip.
                }
                if let Operand::ImmF(c2) = inst.src[1 - slot] {
                    // consumer: (r2 *or/ c) *or/ c2.
                    let total = match (inst.op, div) {
                        (Opcode::FMul, false) => c * c2,
                        (Opcode::FMul, true) => c2 / c,
                        (Opcode::FDiv, false) => c2 / c, // (r2*c)/c2 → r2*(c/c2): keep as div: r2 / (c2/c)
                        (Opcode::FDiv, true) => c * c2,  // (r2/c)/c2 → r2/(c*c2)
                        _ => unreachable!(),
                    };
                    if !total.is_finite() || total == 0.0 {
                        return false;
                    }
                    inst.src[slot] = src;
                    inst.src[1 - slot] = Operand::ImmF(total);
                    return true;
                }
            }
            false
        }
        _ => false,
    }
}

/// Apply operation combining to every block; returns combinations applied.
///
/// ALU-into-ALU combinations (`add→add`, `mul→mul`, ...) are applied only
/// when the producer has a single use at pass entry, i.e. the producer dies
/// once combined. Without this restriction, transitive `add→add` combining
/// would collapse every renamed induction chain already at Lev3, subsuming
/// induction variable expansion — which does not match the behaviour the
/// paper reports for its combiner. Combinations into memory operations,
/// compares and branches (the cases the paper motivates) are unrestricted.
pub fn operation_combine(m: &mut Module) -> usize {
    let mut count = 0;
    let du = DefUse::compute(&m.func);
    let f = &mut m.func;
    for &bid in f.layout_order().to_vec().iter() {
        let insts = &mut f.block_mut(bid).insts;
        let mut j = 0;
        while j < insts.len() {
            // For each register operand of insts[j], look for a combinable
            // producer earlier in the block.
            let mut combined = false;
            let regs: Vec<ilpc_ir::Reg> = insts[j].uses().collect();
            'regs: for r1 in regs {
                let Some(i) =
                    (0..j).rev().find(|&i| insts[i].def() == Some(r1))
                else {
                    continue;
                };
                let Some(p) = producer_of(&insts[i]) else { continue };
                let alu_consumer = !matches!(
                    insts[j].op,
                    Opcode::Load | Opcode::Store | Opcode::Br(_)
                );
                if alu_consumer && du.num_uses(r1) != 1 {
                    continue;
                }
                let (src_reg, self_update) = match p {
                    Producer::AddI { src, .. }
                    | Producer::MulI { src, .. }
                    | Producer::AddF { src, .. }
                    | Producer::MulF { src, .. } => (src.reg(), src.reg() == Some(r1)),
                };
                if self_update {
                    // `r1 = r1 + C`: combining makes the consumer read the
                    // *old* r1, so the consumer must move above the producer
                    // — only done for adjacent pairs (paper Figure 6).
                    // Branches cannot swap (the producer would be skipped on
                    // the taken path).
                    if i + 1 != j || insts[j].op.is_branch() {
                        continue;
                    }
                    let mut consumer = insts[j].clone();
                    if combine_into(&mut consumer, r1, p)
                        && consumer.def() != Some(r1)
                        && consumer.def().is_none_or(|d| {
                            insts[i].uses().all(|u| u != d)
                        })
                    {
                        insts[j] = insts[i].clone();
                        insts[i] = consumer;
                        count += 1;
                        combined = true;
                        break 'regs;
                    }
                    continue;
                }
                // `src` register must not be redefined in (i, j).
                if let Some(sr) = src_reg {
                    if insts[i + 1..j].iter().any(|x| x.def() == Some(sr)) {
                        continue;
                    }
                }
                if combine_into(&mut insts[j], r1, p) {
                    count += 1;
                    combined = true;
                    break 'regs;
                }
            }
            if !combined {
                j += 1;
            }
            // On success, retry the same instruction (chained producers).
        }
    }
    debug_assert!(
        ilpc_ir::verify::verify_module(m).is_ok(),
        "operation combining broke the IR: {:?}",
        ilpc_ir::verify::verify_module(m)
    );
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilpc_ir::inst::{Inst, MemLoc};
    use ilpc_ir::{Cond, Reg, RegClass};

    #[test]
    fn folds_offset_add_into_load() {
        let mut m = Module::new("t");
        let a = m.symtab.declare("A", 16, RegClass::Flt);
        let f = &mut m.func;
        let j = f.new_reg(RegClass::Int);
        let t = f.new_reg(RegClass::Int);
        let v = f.new_reg(RegClass::Flt);
        let b = f.add_block("b");
        f.block_mut(b).insts.extend([
            Inst::mov(j, Operand::ImmI(3)),
            Inst::alu(Opcode::Add, t, j.into(), Operand::ImmI(2)),
            Inst::load(v, Operand::Sym(a), t.into(), MemLoc::affine(a, 1, 2)),
            Inst::store(Operand::Sym(a), t.into(), v.into(), MemLoc::affine(a, 1, 2)),
            Inst::halt(),
        ]);
        assert_eq!(operation_combine(&mut m), 2);
        let insts = &m.func.block(b).insts;
        assert_eq!(insts[2].src[1].reg(), Some(j));
        assert_eq!(insts[2].ext, 2);
        assert_eq!(insts[3].src[1].reg(), Some(j));
        assert_eq!(insts[3].ext, 2);
    }

    #[test]
    fn reproduces_fig6_swap_and_branch_fold() {
        // r1 = r1 + 4 ; r2 = MEM(r1 + 8) ; r3 = r2 - 3.2 ; blt (r3 10.0)
        //   →  r2 = MEM(r1 + 12) ; r1 = r1 + 4 ; r3 = r2 - 3.2 ; blt (r2 13.2)
        let mut m = Module::new("fig6");
        let a = m.symtab.declare("A", 64, RegClass::Flt);
        let f = &mut m.func;
        let r1 = f.new_reg(RegClass::Int);
        let r2 = f.new_reg(RegClass::Flt);
        let r3 = f.new_reg(RegClass::Flt);
        let b = f.add_block("b");
        let exit = f.add_block("exit");
        let mut ld = Inst::load(r2, Operand::Sym(a), r1.into(), MemLoc::opaque(a));
        ld.ext = 8;
        f.block_mut(b).insts.extend([
            Inst::alu(Opcode::Add, r1, r1.into(), Operand::ImmI(4)),
            ld,
            Inst::alu(Opcode::FSub, r3, r2.into(), Operand::ImmF(3.2)),
            Inst::br(Cond::Lt, r3.into(), Operand::ImmF(10.0), b),
        ]);
        f.block_mut(exit).insts.push(Inst::halt());
        let n = operation_combine(&mut m);
        assert!(n >= 2, "expected both combinations, got {n}");
        let insts = &m.func.block(b).insts;
        // Load now first, with displacement 12, reading pre-increment r1.
        assert_eq!(insts[0].op, Opcode::Load);
        assert_eq!(insts[0].ext, 12);
        assert_eq!(insts[1].op, Opcode::Add);
        // Branch compares r2 against 13.2.
        let br = insts.last().unwrap();
        assert_eq!(br.src[0].reg(), Some(r2));
        match br.src[1] {
            Operand::ImmF(v) => assert!((v - 13.2).abs() < 1e-9),
            o => panic!("unexpected operand {o:?}"),
        }
    }

    #[test]
    fn integer_overflow_blocks_combination() {
        let mut m = Module::new("t");
        let f = &mut m.func;
        let x = f.new_reg(RegClass::Int);
        let t = f.new_reg(RegClass::Int);
        let u = f.new_reg(RegClass::Int);
        let b = f.add_block("b");
        f.block_mut(b).insts.extend([
            Inst::mov(x, Operand::ImmI(0)),
            Inst::alu(Opcode::Add, t, x.into(), Operand::ImmI(i64::MAX)),
            Inst::alu(Opcode::Add, u, t.into(), Operand::ImmI(i64::MAX)),
            Inst::halt(),
        ]);
        // Constant folding would overflow: combination must not happen.
        // (const-prop would fold this anyway; combining stays safe.)
        let before = m.func.block(b).insts[2].clone();
        operation_combine(&mut m);
        assert_eq!(m.func.block(b).insts[2].src[0].reg(), before.src[0].reg());
    }

    #[test]
    fn combines_mul_chain() {
        let mut m = Module::new("t");
        let f = &mut m.func;
        let x = f.new_reg(RegClass::Int);
        let t = f.new_reg(RegClass::Int);
        let u = f.new_reg(RegClass::Int);
        let b = f.add_block("b");
        f.block_mut(b).insts.extend([
            Inst::mov(x, Operand::ImmI(7)),
            Inst::alu(Opcode::Mul, t, x.into(), Operand::ImmI(3)),
            Inst::alu(Opcode::Mul, u, t.into(), Operand::ImmI(5)),
            Inst::halt(),
        ]);
        assert_eq!(operation_combine(&mut m), 1);
        let i2 = &m.func.block(b).insts[2];
        assert_eq!(i2.src[0].reg(), Some(x));
        assert_eq!(i2.src[1], Operand::ImmI(15));
    }

    #[test]
    fn no_combine_when_source_redefined_between() {
        let mut m = Module::new("t");
        let f = &mut m.func;
        let x = f.new_reg(RegClass::Int);
        let t = f.new_reg(RegClass::Int);
        let u = f.new_reg(RegClass::Int);
        let b = f.add_block("b");
        f.block_mut(b).insts.extend([
            Inst::mov(x, Operand::ImmI(1)),
            Inst::alu(Opcode::Add, t, x.into(), Operand::ImmI(2)),
            Inst::alu(Opcode::Add, x, x.into(), Operand::ImmI(100)), // redefines x
            Inst::alu(Opcode::Add, u, t.into(), Operand::ImmI(3)),
            Inst::halt(),
        ]);
        operation_combine(&mut m);
        // u must still read t (combining through x would read the new x).
        assert_eq!(m.func.block(b).insts[3].src[0].reg(), Some(t));
        let _ = (Reg::int(0), u);
    }
}
