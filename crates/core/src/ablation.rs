//! Ablation configuration: toggle each of the eight transformations
//! independently.
//!
//! The paper's §3.2 discusses the *individual* contribution of each
//! transformation ("induction variable expansion is the most often applied
//! transformation", "accumulator ... and search variable expansion result
//! in the largest speedup increases beyond unrolling and renaming",
//! "strength reduction is the least effective"). The level pipeline only
//! exposes the cumulative Lev1..Lev4 configurations; this module exposes an
//! arbitrary subset so the harness can regenerate those per-transformation
//! claims as leave-one-out and only-one ablations.

use crate::accum::accumulator_expand;
use crate::combine::operation_combine;
use crate::induct::induction_expand;
use crate::level::{Level, TransformReport};
use crate::rename::rename_loops;
use crate::search::search_expand;
use crate::strength::strength_reduce;
use crate::threduce::tree_height_reduce;
use crate::unroll::{unroll_inner_loops, UnrollConfig};
use ilpc_ir::Module;
use ilpc_opt::{cleanup, conventional, dce, fold_add_chains, simplify_cfg};

/// Which transformations to run (conventional optimization always runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransformSet {
    pub unroll: bool,
    pub rename: bool,
    pub combine: bool,
    pub strength: bool,
    pub threduce: bool,
    pub accum: bool,
    pub induct: bool,
    pub search: bool,
}

impl TransformSet {
    /// Nothing beyond conventional optimization.
    pub fn none() -> TransformSet {
        TransformSet {
            unroll: false,
            rename: false,
            combine: false,
            strength: false,
            threduce: false,
            accum: false,
            induct: false,
            search: false,
        }
    }

    /// Everything (equivalent to Lev4).
    pub fn all() -> TransformSet {
        TransformSet {
            unroll: true,
            rename: true,
            combine: true,
            strength: true,
            threduce: true,
            accum: true,
            induct: true,
            search: true,
        }
    }

    /// The cumulative set of a paper level.
    pub fn of_level(level: Level) -> TransformSet {
        let mut s = TransformSet::none();
        if level >= Level::Lev1 {
            s.unroll = true;
        }
        if level >= Level::Lev2 {
            s.rename = true;
        }
        if level >= Level::Lev3 {
            s.combine = true;
            s.strength = true;
            s.threduce = true;
        }
        if level >= Level::Lev4 {
            s.accum = true;
            s.induct = true;
            s.search = true;
        }
        s
    }

    /// Lev4 with one transformation disabled (leave-one-out ablation).
    /// `name` must be one of the [`TransformSet::NAMES`].
    pub fn all_but(name: &str) -> TransformSet {
        let mut s = TransformSet::all();
        *s.field_mut(name) = false;
        s
    }

    /// Lev2 (unroll+rename) plus exactly one advanced transformation
    /// (only-one ablation).
    pub fn lev2_plus(name: &str) -> TransformSet {
        let mut s = TransformSet::of_level(Level::Lev2);
        *s.field_mut(name) = true;
        s
    }

    /// The toggleable advanced transformations.
    pub const NAMES: [&'static str; 6] =
        ["combine", "strength", "threduce", "accum", "induct", "search"];

    fn field_mut(&mut self, name: &str) -> &mut bool {
        match name {
            "unroll" => &mut self.unroll,
            "rename" => &mut self.rename,
            "combine" => &mut self.combine,
            "strength" => &mut self.strength,
            "threduce" => &mut self.threduce,
            "accum" => &mut self.accum,
            "induct" => &mut self.induct,
            "search" => &mut self.search,
            other => panic!("unknown transformation {other}"),
        }
    }
}

/// Apply an arbitrary transformation subset to freshly lowered IR.
/// Pass ordering matches [`crate::level::apply_level`].
pub fn apply_set(
    m: &mut Module,
    set: &TransformSet,
    ucfg: &UnrollConfig,
) -> TransformReport {
    let mut rep = TransformReport::default();
    conventional(m);

    if set.unroll {
        let unrolled = unroll_inner_loops(m, ucfg);
        rep.loops_unrolled = unrolled.len();
        rep.unroll_factor_total = unrolled.iter().map(|u| u.factor).sum();
        fold_add_chains(&mut m.func);
        dce(&mut m.func);
        simplify_cfg(&mut m.func);
        cleanup(&mut m.func);
    }
    if set.rename {
        rep.defs_renamed = rename_loops(m);
        dce(&mut m.func);
    }
    if set.combine {
        rep.combines = operation_combine(m);
    }
    if set.strength {
        rep.strength_reductions = strength_reduce(m);
    }
    if set.threduce {
        rep.trees_reduced = tree_height_reduce(m);
    }
    if set.combine || set.strength || set.threduce {
        dce(&mut m.func);
    }
    if set.accum {
        rep.accumulators_expanded = accumulator_expand(m);
    }
    if set.induct {
        rep.inductions_expanded = induction_expand(m);
    }
    if set.search {
        rep.searches_expanded = search_expand(m);
    }
    if set.accum || set.induct || set.search {
        dce(&mut m.func);
        if set.combine {
            rep.combines += operation_combine(m);
        }
        if set.threduce {
            rep.trees_reduced += tree_height_reduce(m);
        }
        dce(&mut m.func);
    }

    debug_assert!(
        ilpc_ir::verify::verify_module(m).is_ok(),
        "ablation pipeline broke the IR: {:?}",
        ilpc_ir::verify::verify_module(m)
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::apply_level;
    use ilpc_ir::ast::{Bound, Expr, Index, Program, Stmt};
    use ilpc_ir::lower::lower;

    fn dotprod() -> Program {
        let mut p = Program::new("dot");
        let i = p.int_var("i");
        let s = p.flt_var("s");
        let a = p.flt_arr("A", 64);
        let b = p.flt_arr("B", 64);
        p.body = vec![Stmt::For {
            var: i,
            lo: Bound::Const(0),
            hi: Bound::Const(63),
            body: vec![Stmt::SetScalar(
                s,
                Expr::add(
                    Expr::Var(s),
                    Expr::mul(Expr::at(a, Index::var(i)), Expr::at(b, Index::var(i))),
                ),
            )],
        }];
        p
    }

    #[test]
    fn of_level_matches_level_pipeline() {
        for level in Level::ALL {
            let mut via_level = lower(&dotprod()).module;
            let r1 = apply_level(&mut via_level, level, &UnrollConfig::default());
            let mut via_set = lower(&dotprod()).module;
            let r2 = apply_set(
                &mut via_set,
                &TransformSet::of_level(level),
                &UnrollConfig::default(),
            );
            assert_eq!(r1, r2, "{level}");
            assert_eq!(
                format!("{}", via_level.func),
                format!("{}", via_set.func),
                "{level}: code differs"
            );
        }
    }

    #[test]
    fn leave_one_out_disables_exactly_one() {
        let mut m = lower(&dotprod()).module;
        let rep = apply_set(
            &mut m,
            &TransformSet::all_but("accum"),
            &UnrollConfig::default(),
        );
        assert_eq!(rep.accumulators_expanded, 0);
        assert!(rep.inductions_expanded >= 1);

        let mut m = lower(&dotprod()).module;
        let rep = apply_set(
            &mut m,
            &TransformSet::all_but("induct"),
            &UnrollConfig::default(),
        );
        assert!(rep.accumulators_expanded >= 1);
        assert_eq!(rep.inductions_expanded, 0);
    }

    #[test]
    fn only_one_enables_exactly_one() {
        let mut m = lower(&dotprod()).module;
        let rep = apply_set(
            &mut m,
            &TransformSet::lev2_plus("accum"),
            &UnrollConfig::default(),
        );
        assert!(rep.accumulators_expanded >= 1);
        assert_eq!(rep.combines, 0);
        assert_eq!(rep.trees_reduced, 0);
    }

    #[test]
    #[should_panic(expected = "unknown transformation")]
    fn unknown_name_panics() {
        TransformSet::all_but("vectorize");
    }
}
