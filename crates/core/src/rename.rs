//! Register renaming.
//!
//! "Register renaming assigns unique registers to different definitions of
//! the same register. A common use of register renaming is to rename
//! registers within individual loop bodies of an unrolled loop."
//!
//! The implementation is block-local value renaming: within each block of a
//! loop, every definition receives a fresh virtual register and subsequent
//! uses are rewritten to the newest name. For a register that is live out of
//! the block (loop-carried values like the induction chain), the *final*
//! name is folded back to the original register so code outside the block —
//! and the next iteration — observes the canonical name. This reproduces
//! exactly the paper's Figure 1d/3c shapes: the unrolled induction chain
//! `r12i = r11i+4; r13i = r12i+4; r11i = r13i+4` with per-body loads using
//! distinct registers, and anti/output dependences between bodies removed.

use ilpc_analysis::{Liveness, LoopForest};
use ilpc_ir::{BlockId, Function, Module, Reg};
use std::collections::HashMap;

/// Rename definitions within one block. Returns the number of renamed defs.
fn rename_block(f: &mut Function, b: BlockId, live_out: &ilpc_analysis::RegSet) -> usize {
    // First pass: walk forward, giving each def a fresh name.
    let mut cur: HashMap<Reg, Reg> = HashMap::new();
    let mut renamed = 0usize;
    let n_insts = f.block(b).insts.len();
    for idx in 0..n_insts {
        // Rewrite uses to the newest name.
        let mut inst = f.block(b).insts[idx].clone();
        for s in &mut inst.src {
            if let Some(r) = s.reg() {
                if let Some(&nr) = cur.get(&r) {
                    *s = nr.into();
                }
            }
        }
        if let Some(d) = inst.dst {
            let fresh = f.new_reg(d.class);
            cur.insert(d, fresh);
            inst.dst = Some(fresh);
            renamed += 1;
        }
        f.block_mut(b).insts[idx] = inst;
    }

    // Second pass: for every original register live out of the block, fold
    // its final fresh name back to the original register throughout the
    // block (the fresh name is unique, so a blanket rewrite is safe).
    for (orig, last) in cur {
        if live_out.contains(orig) {
            for inst in &mut f.block_mut(b).insts {
                if inst.dst == Some(last) {
                    inst.dst = Some(orig);
                }
                inst.replace_use(last, orig.into());
            }
        }
    }
    renamed
}

/// Apply register renaming to every block of every loop in `m`.
/// Returns the number of definitions renamed.
pub fn rename_loops(m: &mut Module) -> usize {
    let forest = LoopForest::compute(&m.func);
    let lv = Liveness::compute(&m.func);
    // Collect loop blocks once (a block may belong to nested loops).
    let mut blocks: Vec<BlockId> = forest
        .loops
        .iter()
        .flat_map(|l| l.blocks.iter().copied())
        .collect();
    blocks.sort_unstable();
    blocks.dedup();

    let mut count = 0;
    for b in blocks {
        count += rename_block(&mut m.func, b, lv.live_out(b));
    }
    debug_assert!(
        ilpc_ir::verify::verify_module(m).is_ok(),
        "renaming broke the IR: {:?}",
        ilpc_ir::verify::verify_module(m)
    );
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilpc_ir::inst::{Inst, MemLoc};
    use ilpc_ir::{Cond, Opcode, Operand, RegClass};

    /// Build the paper's Figure 1c unrolled body (3 copies, shared names)
    /// and check renaming produces the Figure 1d structure.
    #[test]
    fn reproduces_fig1d_renaming() {
        let mut m = Module::new("fig1");
        let a = m.symtab.declare("A", 16, RegClass::Flt);
        let c = m.symtab.declare("C", 16, RegClass::Flt);
        let f = &mut m.func;
        let r1 = f.new_reg(RegClass::Int); // induction
        let r5 = f.new_reg(RegClass::Int); // bound
        let r2 = f.new_reg(RegClass::Flt);
        let r4 = f.new_reg(RegClass::Flt);
        let entry = f.add_block("entry");
        let body = f.add_block("body");
        let exit = f.add_block("exit");
        f.block_mut(entry).insts.extend([
            Inst::mov(r1, Operand::ImmI(0)),
            Inst::mov(r5, Operand::ImmI(12)),
        ]);
        let mut insts = Vec::new();
        for p in 0..3 {
            insts.push(Inst::load(r2, Operand::Sym(a), r1.into(), MemLoc::affine(a, 1, p)));
            insts.push(Inst::alu(Opcode::FAdd, r4, r2.into(), r2.into()));
            insts.push(Inst::store(Operand::Sym(c), r1.into(), r4.into(), MemLoc::affine(c, 1, p)));
            insts.push(Inst::alu(Opcode::Add, r1, r1.into(), Operand::ImmI(1)));
        }
        insts.push(Inst::br(Cond::Lt, r1.into(), r5.into(), body));
        f.block_mut(body).insts = insts;
        f.block_mut(exit).insts.push(Inst::halt());

        let renamed = rename_loops(&mut m);
        assert!(renamed > 0);
        let f = &m.func;
        let insts = &f.block(body).insts;

        // All three loads define distinct registers now.
        let load_dsts: Vec<Reg> = insts
            .iter()
            .filter(|i| i.op == Opcode::Load)
            .map(|i| i.dst.unwrap())
            .collect();
        assert_eq!(load_dsts.len(), 3);
        assert!(load_dsts[0] != load_dsts[1] && load_dsts[1] != load_dsts[2]);

        // The induction chain: first two adds write fresh regs, the final
        // add restores the loop-carried name r1 (it is live around the
        // backedge), and the backedge compares r1.
        let add_dsts: Vec<Reg> = insts
            .iter()
            .filter(|i| i.op == Opcode::Add)
            .map(|i| i.dst.unwrap())
            .collect();
        assert_eq!(add_dsts.len(), 3);
        assert_ne!(add_dsts[0], add_dsts[1]);
        assert_eq!(add_dsts[2], r1, "closing def restores carried name");
        let br = insts.last().unwrap();
        assert_eq!(br.src[0].reg(), Some(r1));

        // Chain links: add_p+1 reads add_p's dst.
        let adds: Vec<&Inst> = insts.iter().filter(|i| i.op == Opcode::Add).collect();
        assert_eq!(adds[1].src[0].reg(), Some(adds[0].dst.unwrap()));
        assert_eq!(adds[2].src[0].reg(), Some(adds[1].dst.unwrap()));

        // Loads of body p>0 use the renamed induction values.
        let loads: Vec<&Inst> = insts.iter().filter(|i| i.op == Opcode::Load).collect();
        assert_eq!(loads[1].src[1].reg(), Some(adds[0].dst.unwrap()));
        assert_eq!(loads[2].src[1].reg(), Some(adds[1].dst.unwrap()));
    }

    #[test]
    fn block_local_values_not_restored() {
        // A temp dead at block end keeps its fresh name; the carried
        // accumulator keeps its original name.
        let mut m = Module::new("t");
        let a = m.symtab.declare("A", 8, RegClass::Flt);
        let f = &mut m.func;
        let i = f.new_reg(RegClass::Int);
        let s = f.new_reg(RegClass::Flt);
        let t = f.new_reg(RegClass::Flt);
        let entry = f.add_block("entry");
        let body = f.add_block("body");
        let exit = f.add_block("exit");
        f.block_mut(entry).insts.extend([
            Inst::mov(i, Operand::ImmI(0)),
            Inst::mov(s, Operand::ImmF(0.0)),
        ]);
        f.block_mut(body).insts.extend([
            Inst::load(t, Operand::Sym(a), i.into(), MemLoc::affine(a, 1, 0)),
            Inst::alu(Opcode::FAdd, s, s.into(), t.into()),
            Inst::alu(Opcode::Add, i, i.into(), Operand::ImmI(1)),
            Inst::br(Cond::Lt, i.into(), Operand::ImmI(8), body),
        ]);
        f.block_mut(exit).insts.extend([
            Inst::store(Operand::Sym(a), Operand::ImmI(0), s.into(), MemLoc::affine(a, 0, 0)),
            Inst::halt(),
        ]);
        rename_loops(&mut m);
        let insts = &m.func.block(body).insts;
        // Accumulator def restored to s (carried + used at exit).
        assert_eq!(insts[1].dst, Some(s));
        // i restored (carried).
        assert_eq!(insts[2].dst, Some(i));
        assert_eq!(insts[3].src[0].reg(), Some(i));
    }
}
