//! # ilpc-core — ILP-increasing compiler code transformations
//!
//! The paper's primary contribution: eight transformations that expose
//! instruction-level parallelism to superscalar/VLIW node processors by
//! removing dependences within and across loop iterations.
//!
//! * [`unroll`] — loop unrolling with a preconditioning loop
//! * [`rename`] — register renaming within unrolled bodies
//! * [`accum`] — accumulator variable expansion (Figure 2)
//! * [`induct`] — induction variable expansion (Figure 4)
//! * [`search`] — search variable expansion
//! * [`combine`] — operation combining
//! * [`strength`] — ILP-aware strength reduction
//! * [`threduce`] — tree height reduction
//!
//! [`level`] assembles them into the paper's cumulative configuration
//! levels Conv, Lev1..Lev4.

pub mod ablation;
pub mod accum;
pub mod chains;
pub mod combine;
pub mod induct;
pub mod level;
pub mod rename;
pub mod search;
pub mod strength;
pub mod threduce;
pub mod unroll;

pub use ablation::{apply_set, TransformSet};
pub use accum::accumulator_expand;
pub use combine::operation_combine;
pub use induct::induction_expand;
pub use level::{apply_level, Level, TransformReport};
pub use rename::rename_loops;
pub use search::search_expand;
pub use strength::strength_reduce;
pub use threduce::tree_height_reduce;
pub use unroll::{unroll_inner_loops, UnrollConfig, UnrolledLoop};
