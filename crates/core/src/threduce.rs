//! Tree height reduction (Baer–Bovet style, on intermediate code).
//!
//! "Tree height reduction first constructs an expression tree [...] The tree
//! is then balanced to reduce the height. [...] This tree height reduction
//! algorithm utilizes commutativity and associativity [...] It does not
//! apply the distributive property."
//!
//! Linear chains of `+`/`−` (or `*`/`/`) whose intermediate values are used
//! exactly once are collected into term lists and re-emitted as balanced
//! trees. Division chains use the paper's Figure 7 trick: the denominators
//! are folded into a single divide that runs *in parallel* with the
//! balanced numerator product and is multiplied in at the end
//! (`B*(C+D)*E*F/G` → `((C+D)*(B*E)) * (F/G)`, 22 → 13 cycles).
//!
//! Integer chains reassociate exactly (wrapping arithmetic); floating point
//! chains reassociate with the usual rounding caveat, exactly as the
//! paper's compiler does.

use ilpc_analysis::DefUse;
use ilpc_ir::{Function, Inst, Module, Opcode, Operand, Reg, RegClass};

/// Expression family of a chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Family {
    /// Integer add/sub (recognized for completeness; see [`Family::of`] for
    /// why it is never produced by the matcher).
    #[allow(dead_code)]
    AddI,
    AddF,
    MulI,
    MulF,
}

impl Family {
    fn of(op: Opcode) -> Option<Family> {
        match op {
            // Integer add/sub chains are deliberately NOT rebalanced: the
            // renamed induction chains of unrolled loops are integer add
            // chains, and they belong to induction variable expansion
            // (Lev4), not height reduction (Lev3). The paper's height
            // reducer targets arithmetic *expressions*.
            Opcode::FAdd | Opcode::FSub => Some(Family::AddF),
            Opcode::Mul => Some(Family::MulI),
            Opcode::FMul | Opcode::FDiv => Some(Family::MulF),
            _ => None,
        }
    }

    fn pos_op(self) -> Opcode {
        match self {
            Family::AddI => Opcode::Add,
            Family::AddF => Opcode::FAdd,
            Family::MulI => Opcode::Mul,
            Family::MulF => Opcode::FMul,
        }
    }

    fn neg_op(self) -> Opcode {
        match self {
            Family::AddI => Opcode::Sub,
            Family::AddF => Opcode::FSub,
            Family::MulI => Opcode::Mul, // unused (no integer division chains)
            Family::MulF => Opcode::FDiv,
        }
    }

    fn class(self) -> RegClass {
        match self {
            Family::AddI | Family::MulI => RegClass::Int,
            Family::AddF | Family::MulF => RegClass::Flt,
        }
    }
}

/// A collected term: operand plus polarity (negated / denominator).
#[derive(Debug, Clone, Copy)]
struct Term {
    op: Operand,
    neg: bool,
}

struct Collector<'a> {
    insts: &'a [Inst],
    du: &'a DefUse,
    family: Family,
    /// Indices of collapsed chain instructions.
    collapsed: Vec<usize>,
    terms: Vec<Term>,
}

impl<'a> Collector<'a> {
    /// Definition index of `r` in this block before `before`, if unique-use.
    fn chain_def(&self, r: Reg, before: usize) -> Option<usize> {
        if self.du.num_uses(r) != 1 || self.du.num_defs(r) != 1 {
            return None;
        }
        let di = (0..before).rev().find(|&i| self.insts[i].def() == Some(r))?;
        (Family::of(self.insts[di].op) == Some(self.family)).then_some(di)
    }

    fn collect(&mut self, o: Operand, neg: bool, pos: usize) {
        if let Some(r) = o.reg() {
            if let Some(di) = self.chain_def(r, pos) {
                let inst = &self.insts[di];
                self.collapsed.push(di);
                let flip = matches!(inst.op, Opcode::Sub | Opcode::FSub | Opcode::FDiv);
                self.collect(inst.src[0], neg, di);
                self.collect(inst.src[1], if flip { !neg } else { neg }, di);
                return;
            }
        }
        self.terms.push(Term { op: o, neg });
    }
}

/// Emit a balanced reduction of `terms` with `op`, returning the operand of
/// the result (inserting instructions into `out`).
fn balanced(
    f: &mut Function,
    out: &mut Vec<Inst>,
    op: Opcode,
    class: RegClass,
    mut terms: Vec<Operand>,
) -> Operand {
    assert!(!terms.is_empty());
    while terms.len() > 1 {
        let mut next = Vec::with_capacity(terms.len().div_ceil(2));
        let mut it = terms.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => {
                    let t = f.new_reg(class);
                    out.push(Inst::alu(op, t, a, b));
                    next.push(t.into());
                }
                None => next.push(a),
            }
        }
        terms = next;
    }
    terms.pop().unwrap()
}

/// Rebuild one chain rooted at `root_idx`; returns the replacement sequence
/// (ending with a write to the root destination).
fn rebuild(
    f: &mut Function,
    family: Family,
    dst: Reg,
    terms: &[Term],
) -> Vec<Inst> {
    let mut out = Vec::new();
    let class = family.class();
    let pos: Vec<Operand> = terms.iter().filter(|t| !t.neg).map(|t| t.op).collect();
    let neg: Vec<Operand> = terms.iter().filter(|t| t.neg).map(|t| t.op).collect();

    let result: Operand = match family {
        Family::AddI | Family::AddF => {
            let zero = if class == RegClass::Int {
                Operand::ImmI(0)
            } else {
                Operand::ImmF(0.0)
            };
            let p = if pos.is_empty() {
                zero
            } else {
                balanced(f, &mut out, family.pos_op(), class, pos)
            };
            if neg.is_empty() {
                p
            } else {
                let n = balanced(f, &mut out, family.pos_op(), class, neg);
                let t = f.new_reg(class);
                out.push(Inst::alu(family.neg_op(), t, p, n));
                t.into()
            }
        }
        Family::MulI => {
            debug_assert!(neg.is_empty());
            balanced(f, &mut out, Opcode::Mul, class, pos)
        }
        Family::MulF => {
            if neg.is_empty() {
                balanced(f, &mut out, Opcode::FMul, class, pos)
            } else {
                // Figure 7: fold denominators with one numerator into a
                // divide that overlaps the balanced numerator product.
                let mut nums = pos;
                let d = balanced(f, &mut out, Opcode::FMul, class, neg);
                let seed = nums.pop().unwrap_or(Operand::ImmF(1.0));
                let unit = f.new_reg(class);
                out.push(Inst::alu(Opcode::FDiv, unit, seed, d));
                if nums.is_empty() {
                    unit.into()
                } else {
                    let p = balanced(f, &mut out, Opcode::FMul, class, nums);
                    let t = f.new_reg(class);
                    out.push(Inst::alu(Opcode::FMul, t, p, unit.into()));
                    t.into()
                }
            }
        }
    };
    match out.last_mut() {
        Some(last) if last.def().map(Operand::Reg) == Some(result) => {
            last.dst = Some(dst);
        }
        _ => out.push(Inst::mov(dst, result)),
    }
    out
}

/// Apply tree height reduction to every block; returns chains rebalanced.
pub fn tree_height_reduce(m: &mut Module) -> usize {
    let mut count = 0;
    let f = &mut m.func;
    for &bid in f.layout_order().to_vec().iter() {
        loop {
            let du = DefUse::compute(f);
            let insts = f.block(bid).insts.clone();
            // Find a root: a chain op whose result is NOT itself a
            // single-use operand of a same-family op later in the block.
            let mut plan: Option<(usize, Family, Vec<usize>, Vec<Term>)> = None;
            for (ri, inst) in insts.iter().enumerate() {
                let Some(family) = Family::of(inst.op) else { continue };
                let Some(dst) = inst.def() else { continue };
                // A chain that both reads and rewrites the same register is
                // a loop-carried recurrence (an accumulator), not an
                // arithmetic expression: leave it for accumulator variable
                // expansion (Lev4). Quick pre-filter; the precise check on
                // the collected terms happens below.
                let self_recurrent = inst.uses().any(|u| u == dst);
                if self_recurrent {
                    continue;
                }
                // Root check: not consumed by a same-family chain op.
                let consumed = du.num_uses(dst) == 1
                    && insts.iter().enumerate().any(|(j, u)| {
                        j > ri
                            && Family::of(u.op) == Some(family)
                            && u.uses().any(|x| x == dst)
                            && u.def().is_some()
                    });
                if consumed {
                    continue;
                }
                let mut coll = Collector {
                    insts: &insts,
                    du: &du,
                    family,
                    collapsed: vec![ri],
                    terms: Vec::new(),
                };
                let flip = matches!(inst.op, Opcode::Sub | Opcode::FSub | Opcode::FDiv);
                coll.collect(inst.src[0], false, ri);
                coll.collect(inst.src[1], flip, ri);
                if coll.terms.len() < 4 || coll.collapsed.len() < 3 {
                    continue;
                }
                // Precise recurrence check: the root's destination appearing
                // among the leaves means the chain accumulates into itself.
                if coll.terms.iter().any(|t| t.op.reg() == Some(dst)) {
                    continue;
                }
                // Profitability / termination: the balanced tree must be
                // strictly shallower than the existing one (unit-latency
                // heights; the scheduler realizes the actual latencies).
                let ceil_log2 = |n: usize| -> u32 {
                    usize::BITS - n.max(1).saturating_sub(1).leading_zeros()
                };
                let npos = coll.terms.iter().filter(|t| !t.neg).count();
                let nneg = coll.terms.len() - npos;
                let new_depth = match family {
                    Family::AddI | Family::AddF | Family::MulI => {
                        if nneg == 0 {
                            ceil_log2(npos)
                        } else if npos == 0 {
                            ceil_log2(nneg) + 1
                        } else {
                            ceil_log2(npos).max(ceil_log2(nneg)) + 1
                        }
                    }
                    Family::MulF => {
                        if nneg == 0 {
                            ceil_log2(npos)
                        } else {
                            let unit = ceil_log2(nneg) + 1;
                            let nums = npos.saturating_sub(1);
                            if nums == 0 {
                                unit
                            } else {
                                ceil_log2(nums).max(unit) + 1
                            }
                        }
                    }
                };
                // Existing height of the collapsed tree.
                fn depth_of(
                    insts: &[Inst],
                    collapsed: &[usize],
                    idx: usize,
                ) -> u32 {
                    let mut h = 0;
                    for s in insts[idx].src.iter().filter_map(|s| s.reg()) {
                        if let Some(&di) = collapsed
                            .iter()
                            .find(|&&d| d < idx && insts[d].def() == Some(s))
                        {
                            h = h.max(depth_of(insts, collapsed, di));
                        }
                    }
                    h + 1
                }
                let old_depth = depth_of(&insts, &coll.collapsed, ri);
                if new_depth >= old_depth {
                    continue;
                }
                // Safety: the rebuilt tree reads every leaf at the *root*
                // position. A leaf register whose value changes between a
                // collapsed instruction's original read and the root would
                // change meaning — reject those chains. (A leaf merely
                // *defined* inside the window is fine as long as no
                // collapsed instruction read it before that definition.)
                let leaf_regs: Vec<Reg> =
                    coll.terms.iter().filter_map(|t| t.op.reg()).collect();
                let safe = coll.collapsed.iter().all(|&ci| {
                    insts[ci]
                        .src
                        .iter()
                        .filter_map(|s| s.reg())
                        .filter(|r| leaf_regs.contains(r))
                        .all(|r| {
                            // No non-collapsed def of r in (ci, ri].
                            (ci + 1..=ri).all(|j| {
                                coll.collapsed.contains(&j)
                                    || insts[j].def() != Some(r)
                            })
                        })
                });
                if !safe {
                    continue;
                }
                plan = Some((ri, family, coll.collapsed, coll.terms));
                break;
            }
            let Some((ri, family, collapsed, terms)) = plan else { break };
            let dst = insts[ri].def().unwrap();
            let seq = rebuild(f, family, dst, &terms);
            // Splice: drop collapsed instructions, insert `seq` at the root.
            let block = f.block_mut(bid);
            let mut new_insts = Vec::with_capacity(block.insts.len() + seq.len());
            for (j, inst) in block.insts.iter().enumerate() {
                if j == ri {
                    new_insts.extend(seq.iter().cloned());
                } else if !collapsed.contains(&j) {
                    new_insts.push(inst.clone());
                }
            }
            block.insts = new_insts;
            count += 1;
        }
    }
    debug_assert!(
        ilpc_ir::verify::verify_module(m).is_ok(),
        "tree height reduction broke the IR: {:?}",
        ilpc_ir::verify::verify_module(m)
    );
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 7: A = B * (C + D) * E * F / G, left-associated input.
    fn fig7_module() -> (Module, ilpc_ir::BlockId, Vec<Reg>) {
        let mut m = Module::new("fig7");
        let out = m.symtab.declare("A", 1, RegClass::Flt);
        let f = &mut m.func;
        let regs: Vec<Reg> = (0..6).map(|_| f.new_reg(RegClass::Flt)).collect();
        let (b_, c, d, e, ff, g) =
            (regs[0], regs[1], regs[2], regs[3], regs[4], regs[5]);
        let t1 = f.new_reg(RegClass::Flt);
        let t2 = f.new_reg(RegClass::Flt);
        let t3 = f.new_reg(RegClass::Flt);
        let t4 = f.new_reg(RegClass::Flt);
        let a = f.new_reg(RegClass::Flt);
        let blk = f.add_block("b");
        f.block_mut(blk).insts.extend([
            Inst::alu(Opcode::FAdd, t1, c.into(), d.into()),
            Inst::alu(Opcode::FMul, t2, t1.into(), b_.into()),
            Inst::alu(Opcode::FMul, t3, t2.into(), e.into()),
            Inst::alu(Opcode::FMul, t4, t3.into(), ff.into()),
            Inst::alu(Opcode::FDiv, a, t4.into(), g.into()),
            Inst::store(
                Operand::Sym(out),
                Operand::ImmI(0),
                a.into(),
                ilpc_ir::MemLoc::affine(out, 0, 0),
            ),
            Inst::halt(),
        ]);
        (m, blk, vec![b_, c, d, e, ff, g, a])
    }

    #[test]
    fn rebalances_fig7_with_parallel_divide() {
        let (mut m, blk, regs) = fig7_module();
        assert_eq!(tree_height_reduce(&mut m), 1);
        let insts = &m.func.block(blk).insts;
        let g = regs[5];
        // The divide now reads a *leaf* numerator and G directly (it no
        // longer waits for the whole product).
        let div = insts.iter().find(|i| i.op == Opcode::FDiv).unwrap();
        assert_eq!(div.src[1].reg(), Some(g));
        assert!(regs[..5].iter().any(|r| div.src[0].reg() == Some(*r)));
        // The C+D add survives as a sub-term (not part of the mul chain).
        assert!(insts.iter().any(|i| i.op == Opcode::FAdd));
        // Final write still defines the stored register.
        let a = regs[6];
        assert!(insts.iter().any(|i| i.def() == Some(a)));
        ilpc_ir::verify::verify_module(&m).unwrap();
    }

    #[test]
    fn additive_chain_balances_with_mixed_signs() {
        // t = a + b; t2 = t - c; t3 = t2 + d; root = t3 - e
        // → (a+b+d) - (c+e), floating point.
        let mut m = Module::new("t");
        let f = &mut m.func;
        let regs: Vec<Reg> = (0..5).map(|_| f.new_reg(RegClass::Flt)).collect();
        let t = f.new_reg(RegClass::Flt);
        let t2 = f.new_reg(RegClass::Flt);
        let t3 = f.new_reg(RegClass::Flt);
        let root = f.new_reg(RegClass::Flt);
        let out = m.symtab.declare("out", 1, RegClass::Flt);
        let blk = f.add_block("b");
        f.block_mut(blk).insts.extend([
            Inst::alu(Opcode::FAdd, t, regs[0].into(), regs[1].into()),
            Inst::alu(Opcode::FSub, t2, t.into(), regs[2].into()),
            Inst::alu(Opcode::FAdd, t3, t2.into(), regs[3].into()),
            Inst::alu(Opcode::FSub, root, t3.into(), regs[4].into()),
            Inst::store(
                Operand::Sym(out),
                Operand::ImmI(0),
                root.into(),
                ilpc_ir::MemLoc::affine(out, 0, 0),
            ),
            Inst::halt(),
        ]);
        assert_eq!(tree_height_reduce(&mut m), 1);
        let insts = &m.func.block(blk).insts;
        // Exactly one FSub (the final p - n) and three FAdds (balanced).
        let subs = insts.iter().filter(|i| i.op == Opcode::FSub).count();
        let adds = insts.iter().filter(|i| i.op == Opcode::FAdd).count();
        assert_eq!(subs, 1);
        assert_eq!(adds, 3);
        // The final FSub writes root.
        let last_sub = insts.iter().find(|i| i.op == Opcode::FSub).unwrap();
        assert_eq!(last_sub.def(), Some(root));
        ilpc_ir::verify::verify_module(&m).unwrap();
    }

    #[test]
    fn short_chains_left_alone() {
        // a + b + c: three leaves — no gain, keep.
        let mut m = Module::new("t");
        let f = &mut m.func;
        let regs: Vec<Reg> = (0..3).map(|_| f.new_reg(RegClass::Int)).collect();
        let t = f.new_reg(RegClass::Int);
        let root = f.new_reg(RegClass::Int);
        let out = m.symtab.declare("out", 1, RegClass::Int);
        let blk = f.add_block("b");
        f.block_mut(blk).insts.extend([
            Inst::alu(Opcode::Add, t, regs[0].into(), regs[1].into()),
            Inst::alu(Opcode::Add, root, t.into(), regs[2].into()),
            Inst::store(
                Operand::Sym(out),
                Operand::ImmI(0),
                root.into(),
                ilpc_ir::MemLoc::affine(out, 0, 0),
            ),
            Inst::halt(),
        ]);
        assert_eq!(tree_height_reduce(&mut m), 0);
    }

    #[test]
    fn multi_use_intermediates_block_collapse() {
        // t used twice: cannot be collapsed into the chain.
        let mut m = Module::new("t");
        let f = &mut m.func;
        let regs: Vec<Reg> = (0..4).map(|_| f.new_reg(RegClass::Int)).collect();
        let t = f.new_reg(RegClass::Int);
        let u = f.new_reg(RegClass::Int);
        let v = f.new_reg(RegClass::Int);
        let root = f.new_reg(RegClass::Int);
        let out = m.symtab.declare("out", 2, RegClass::Int);
        let blk = f.add_block("b");
        f.block_mut(blk).insts.extend([
            Inst::alu(Opcode::Add, t, regs[0].into(), regs[1].into()),
            Inst::alu(Opcode::Add, u, t.into(), regs[2].into()),
            Inst::alu(Opcode::Add, v, u.into(), regs[3].into()),
            Inst::alu(Opcode::Add, root, v.into(), t.into()), // t reused!
            Inst::store(
                Operand::Sym(out),
                Operand::ImmI(0),
                root.into(),
                ilpc_ir::MemLoc::affine(out, 0, 0),
            ),
            Inst::halt(),
        ]);
        // Integer add chains are excluded from rebalancing entirely.
        assert_eq!(tree_height_reduce(&mut m), 0);
        let insts = &m.func.block(blk).insts;
        // t's def survives.
        assert!(insts.iter().any(|i| i.def() == Some(t)));
        ilpc_ir::verify::verify_module(&m).unwrap();
    }
}
