//! Detection of loop-carried update chains.
//!
//! After unrolling and renaming, a loop-carried scalar `V` updated once per
//! body copy appears as a *chain* threading fresh names between copies:
//!
//! ```text
//! d1: v1 = op(v0, x1)      ; v0 is the carried register (live in & out)
//! d2: v2 = op(v1, x2)
//! dk: v0 = op(v_{k-1}, xk) ; closing definition restores the carried name
//! ```
//!
//! Accumulator variable expansion, induction variable expansion and (via
//! the guarded-move variant) search variable expansion all start from this
//! shape; this module finds the chains and classifies them.

use ilpc_analysis::{DefUse, Liveness};
use ilpc_ir::{BlockId, Function, Opcode, Operand, Reg, RegClass};

/// The operation family of a chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainKind {
    /// Integer `add`/`sub` links.
    IntAdd,
    /// Floating `fadd`/`fsub` links.
    FltAdd,
    /// Integer multiply links.
    IntMul,
    /// Floating multiply links.
    FltMul,
}

impl ChainKind {
    fn of(op: Opcode) -> Option<ChainKind> {
        match op {
            Opcode::Add | Opcode::Sub => Some(ChainKind::IntAdd),
            Opcode::FAdd | Opcode::FSub => Some(ChainKind::FltAdd),
            Opcode::Mul => Some(ChainKind::IntMul),
            Opcode::FMul => Some(ChainKind::FltMul),
            _ => None,
        }
    }

    /// The operation used to combine per-copy partial results at loop exit.
    pub fn combine_op(self) -> Opcode {
        match self {
            ChainKind::IntAdd => Opcode::Add,
            ChainKind::FltAdd => Opcode::FAdd,
            ChainKind::IntMul => Opcode::Mul,
            ChainKind::FltMul => Opcode::FMul,
        }
    }

    /// Identity element for the non-seed temporaries.
    pub fn identity(self) -> Operand {
        match self {
            ChainKind::IntAdd => Operand::ImmI(0),
            ChainKind::FltAdd => Operand::ImmF(0.0),
            ChainKind::IntMul => Operand::ImmI(1),
            ChainKind::FltMul => Operand::ImmF(1.0),
        }
    }

    /// Register class of chain values.
    pub fn class(self) -> RegClass {
        match self {
            ChainKind::IntAdd | ChainKind::IntMul => RegClass::Int,
            ChainKind::FltAdd | ChainKind::FltMul => RegClass::Flt,
        }
    }
}

/// One detected chain within a block.
#[derive(Debug, Clone)]
pub struct Chain {
    /// Block containing the chain.
    pub block: BlockId,
    /// Carried register (`v0`), written by the closing definition.
    pub carried: Reg,
    /// Chain value registers `v0, v1, ..., v_{k-1}` (the closing def writes
    /// `v0` again, so `regs.len() == k`).
    pub regs: Vec<Reg>,
    /// Instruction indices of `d1..dk` within the block, increasing.
    pub defs: Vec<usize>,
    /// The non-chain operand of each link (`x1..xk`).
    pub increments: Vec<Operand>,
    /// Operation family.
    pub kind: ChainKind,
}

impl Chain {
    /// Number of links (`k`).
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// True when the chain has no links (never produced by the detector).
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }
}

/// Which source slot of `inst` continues the chain from `prev`, if any.
/// Slot 0 always qualifies; slot 1 only for commutative ops.
fn chain_src(inst: &ilpc_ir::Inst, prev: Reg) -> Option<usize> {
    if inst.src[0].reg() == Some(prev) {
        return Some(0);
    }
    if inst.op.is_commutative() && inst.src[1].reg() == Some(prev) {
        return Some(1);
    }
    None
}

/// Find update chains in block `b` of a loop whose blocks are `loop_blocks`.
///
/// Conditions established here (shared by all expansion clients):
/// * the carried register is live into and out of the block and has exactly
///   one definition in the whole loop (the closing link);
/// * every intermediate value register has exactly one definition;
/// * links share one [`ChainKind`] and appear in increasing index order;
/// * `k ≥ 2`.
///
/// Clients impose their own additional conditions (use counts, invariant
/// increments, ...).
pub fn find_chains(
    f: &Function,
    loop_blocks: &[BlockId],
    b: BlockId,
    lv: &Liveness,
    du: &DefUse,
) -> Vec<Chain> {
    let insts = &f.block(b).insts;
    let mut out = Vec::new();

    // Count defs of each register within the loop.
    let defs_in_loop = |r: Reg| -> usize {
        loop_blocks
            .iter()
            .map(|&lb| {
                f.block(lb)
                    .insts
                    .iter()
                    .filter(|i| i.def() == Some(r))
                    .count()
            })
            .sum()
    };

    for (close_idx, close) in insts.iter().enumerate() {
        let Some(kind) = ChainKind::of(close.op) else { continue };
        let Some(v0) = close.def() else { continue };
        // v0 carried through the block.
        if !lv.live_in(b).contains(v0) || !lv.live_out(b).contains(v0) {
            continue;
        }
        if defs_in_loop(v0) != 1 {
            continue;
        }

        // Walk the chain backwards from the closing def.
        let mut defs_rev = vec![close_idx];
        let mut regs_rev: Vec<Reg> = Vec::new();
        let mut incs_rev: Vec<Operand> = Vec::new();
        let mut cur_idx = close_idx;
        let ok = loop {
            let cur = &insts[cur_idx];
            if ChainKind::of(cur.op) != Some(kind) {
                break false;
            }
            // Identify the chain source; the other operand is the increment.
            // First try "previous link register defined in this block".
            let mut link: Option<(usize, Reg, usize)> = None; // (src slot, reg, def idx)
            for slot in 0..2 {
                if slot == 1 && !cur.op.is_commutative() {
                    continue;
                }
                if let Some(r) = cur.src[slot].reg() {
                    if r == v0 {
                        continue; // chain start handled below
                    }
                    if let Some(didx) =
                        (0..cur_idx).rev().find(|&i| insts[i].def() == Some(r))
                    {
                        if ChainKind::of(insts[didx].op) == Some(kind)
                            && du.num_defs(r) == 1
                        {
                            link = Some((slot, r, didx));
                            break;
                        }
                    }
                }
            }
            if let Some((slot, r, didx)) = link {
                incs_rev.push(cur.src[1 - slot]);
                regs_rev.push(r);
                defs_rev.push(didx);
                cur_idx = didx;
                continue;
            }
            // Otherwise the chain must start at v0.
            if let Some(slot) = chain_src(cur, v0) {
                incs_rev.push(cur.src[1 - slot]);
                break true;
            }
            break false;
        };
        if !ok {
            continue;
        }
        let k = defs_rev.len();
        if k < 2 {
            continue;
        }
        defs_rev.reverse();
        // defs must be strictly increasing (walked backwards, so reversed
        // order is increasing by construction).
        debug_assert!(defs_rev.windows(2).all(|w| w[0] < w[1]));
        regs_rev.reverse();
        incs_rev.reverse();
        // Intermediate regs must be defined exactly once in the function.
        if regs_rev.iter().any(|r| du.num_defs(*r) != 1) {
            continue;
        }
        let mut regs = vec![v0];
        regs.extend(regs_rev);
        out.push(Chain {
            block: b,
            carried: v0,
            regs,
            defs: defs_rev,
            increments: incs_rev,
            kind,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilpc_ir::inst::{Inst, MemLoc};
    use ilpc_ir::{Cond, Module, Operand};

    /// Renamed 3×-unrolled accumulation: s1 = s+x1; s2 = s1+x2; s = s2+x3.
    fn chain_module() -> (Module, BlockId, Reg) {
        let mut m = Module::new("t");
        let a = m.symtab.declare("A", 16, RegClass::Flt);
        let f = &mut m.func;
        let i = f.new_reg(RegClass::Int);
        let s = f.new_reg(RegClass::Flt);
        let s1 = f.new_reg(RegClass::Flt);
        let s2 = f.new_reg(RegClass::Flt);
        let x: Vec<Reg> = (0..3).map(|_| f.new_reg(RegClass::Flt)).collect();
        let entry = f.add_block("entry");
        let body = f.add_block("body");
        let exit = f.add_block("exit");
        f.block_mut(entry).insts.extend([
            Inst::mov(i, Operand::ImmI(0)),
            Inst::mov(s, Operand::ImmF(0.0)),
        ]);
        f.block_mut(body).insts.extend([
            Inst::load(x[0], Operand::Sym(a), i.into(), MemLoc::affine(a, 1, 0)),
            Inst::alu(Opcode::FAdd, s1, s.into(), x[0].into()),
            Inst::load(x[1], Operand::Sym(a), i.into(), MemLoc::affine(a, 1, 1)),
            Inst::alu(Opcode::FAdd, s2, s1.into(), x[1].into()),
            Inst::load(x[2], Operand::Sym(a), i.into(), MemLoc::affine(a, 1, 2)),
            Inst::alu(Opcode::FSub, s, s2.into(), x[2].into()),
            Inst::alu(Opcode::Add, i, i.into(), Operand::ImmI(3)),
            Inst::br(Cond::Lt, i.into(), Operand::ImmI(12), body),
        ]);
        f.block_mut(exit).insts.extend([
            Inst::store(Operand::Sym(a), Operand::ImmI(0), s.into(), MemLoc::affine(a, 0, 0)),
            Inst::halt(),
        ]);
        (m, body, s)
    }

    #[test]
    fn detects_fadd_chain() {
        let (m, body, s) = chain_module();
        let lv = Liveness::compute(&m.func);
        let du = DefUse::compute(&m.func);
        let chains = find_chains(&m.func, &[body], body, &lv, &du);
        let c = chains
            .iter()
            .find(|c| c.carried == s)
            .expect("accumulator chain found");
        assert_eq!(c.len(), 3);
        assert_eq!(c.kind, ChainKind::FltAdd);
        assert_eq!(c.defs, vec![1, 3, 5]);
        assert_eq!(c.regs[0], s);
        // Increments are the loaded values.
        assert_eq!(c.increments.len(), 3);
    }

    #[test]
    fn single_link_not_a_chain() {
        // s = s + x once: k = 1 -> no chain.
        let mut m = Module::new("t");
        let a = m.symtab.declare("A", 8, RegClass::Flt);
        let f = &mut m.func;
        let i = f.new_reg(RegClass::Int);
        let s = f.new_reg(RegClass::Flt);
        let x = f.new_reg(RegClass::Flt);
        let entry = f.add_block("entry");
        let body = f.add_block("body");
        let exit = f.add_block("exit");
        f.block_mut(entry).insts.extend([
            Inst::mov(i, Operand::ImmI(0)),
            Inst::mov(s, Operand::ImmF(0.0)),
        ]);
        f.block_mut(body).insts.extend([
            Inst::load(x, Operand::Sym(a), i.into(), MemLoc::affine(a, 1, 0)),
            Inst::alu(Opcode::FAdd, s, s.into(), x.into()),
            Inst::alu(Opcode::Add, i, i.into(), Operand::ImmI(1)),
            Inst::br(Cond::Lt, i.into(), Operand::ImmI(8), body),
        ]);
        f.block_mut(exit).insts.extend([
            Inst::store(Operand::Sym(a), Operand::ImmI(0), s.into(), MemLoc::affine(a, 0, 0)),
            Inst::halt(),
        ]);
        let lv = Liveness::compute(&m.func);
        let du = DefUse::compute(&m.func);
        let chains = find_chains(&m.func, &[body], body, &lv, &du);
        assert!(chains.iter().all(|c| c.carried != s));
    }

    #[test]
    fn detects_induction_chain_with_uses() {
        // Renamed induction chain i1 = i+1 (used by load), i = i1+1.
        let mut m = Module::new("t");
        let a = m.symtab.declare("A", 8, RegClass::Flt);
        let f = &mut m.func;
        let i = f.new_reg(RegClass::Int);
        let i1 = f.new_reg(RegClass::Int);
        let v0 = f.new_reg(RegClass::Flt);
        let v1 = f.new_reg(RegClass::Flt);
        let entry = f.add_block("entry");
        let body = f.add_block("body");
        let exit = f.add_block("exit");
        f.block_mut(entry).insts.push(Inst::mov(i, Operand::ImmI(0)));
        f.block_mut(body).insts.extend([
            Inst::load(v0, Operand::Sym(a), i.into(), MemLoc::affine(a, 1, 0)),
            Inst::alu(Opcode::Add, i1, i.into(), Operand::ImmI(1)),
            Inst::load(v1, Operand::Sym(a), i1.into(), MemLoc::affine(a, 1, 1)),
            Inst::store(Operand::Sym(a), i.into(), v1.into(), MemLoc::affine(a, 1, 0)),
            Inst::store(Operand::Sym(a), i1.into(), v0.into(), MemLoc::affine(a, 1, 1)),
            Inst::alu(Opcode::Add, i, i1.into(), Operand::ImmI(1)),
            Inst::br(Cond::Lt, i.into(), Operand::ImmI(8), body),
        ]);
        f.block_mut(exit).insts.push(Inst::halt());
        let lv = Liveness::compute(&m.func);
        let du = DefUse::compute(&m.func);
        let chains = find_chains(&m.func, &[body], body, &lv, &du);
        let c = chains.iter().find(|c| c.carried == i).expect("chain");
        assert_eq!(c.len(), 2);
        assert_eq!(c.kind, ChainKind::IntAdd);
        assert_eq!(c.increments, vec![Operand::ImmI(1), Operand::ImmI(1)]);
    }
}
