//! Search variable expansion.
//!
//! "Within an unrolled loop body, the chain of flow dependences between
//! successive tests and updates of a search variable often defines a
//! critical path. [...] search variable expansion eliminates this chain by
//! creating k temporary search variables. [...] When the loop is exited,
//! the value of the original search variable is obtained by comparing the
//! values of all temporary search variables."
//!
//! After unrolling and CFG simplification, each body copy's conditional
//! update appears as a *guarded move*:
//!
//! ```text
//! br c (x_p, s) NEXT_p      ; skip the update (e.g. ble x, s for a max)
//! s = x_p                   ; last instruction, falls into NEXT_p
//! ```
//!
//! The transformation gives copy `p` its own search register `t_p` (seeded
//! with `s`), and rebuilds `s = best(t_1..t_k)` with a chain of guarded
//! moves at the loop exit.

use ilpc_analysis::{Liveness, Loop, LoopForest};
use ilpc_ir::{BlockId, Cond, Function, Inst, Module, Opcode, Reg};

/// One detected guarded update of the search variable.
#[derive(Debug, Clone)]
struct Update {
    block: BlockId,
    /// Index of the guard branch (the mov is at `guard + 1`).
    guard: usize,
    /// Guard condition (branch taken ⇒ update skipped).
    cond: Cond,
    /// Which guard operand slot holds the search variable.
    s_slot: usize,
}

fn preheader(f: &Function, lp: &Loop) -> Option<BlockId> {
    let preds = f.preds();
    let mut outside = preds[lp.header.0 as usize]
        .iter()
        .filter(|p| !lp.contains(**p));
    let ph = *outside.next()?;
    if outside.next().is_some() {
        return None;
    }
    Some(ph)
}

fn insert_point(f: &Function, b: BlockId) -> usize {
    let insts = &f.block(b).insts;
    match insts.last() {
        Some(i) if i.op.is_control() => insts.len() - 1,
        _ => insts.len(),
    }
}

/// Try to detect the guarded-update pattern for carried register `s`.
/// Returns the updates in linear (layout) order, or `None` if any def/use
/// of `s` in the loop falls outside the pattern.
fn detect_updates(f: &Function, lp: &Loop, s: Reg) -> Option<Vec<Update>> {
    // Loop blocks in layout order.
    let mut blocks: Vec<BlockId> = lp.blocks.clone();
    blocks.sort_by_key(|b| f.layout_pos(*b).unwrap_or(usize::MAX));

    let mut updates = Vec::new();
    for &b in &blocks {
        let insts = &f.block(b).insts;
        for (idx, inst) in insts.iter().enumerate() {
            if inst.def() != Some(s) {
                continue;
            }
            // Must be a mov guarded by the immediately preceding branch.
            if inst.op != Opcode::Mov || idx == 0 {
                return None;
            }
            let guard = &insts[idx - 1];
            let Opcode::Br(cond) = guard.op else { return None };
            // The guard must jump over exactly this mov: the mov is the
            // block's last instruction and the guard targets the layout
            // successor.
            if idx != insts.len() - 1 {
                return None;
            }
            if guard.target != f.fallthrough(b) {
                return None;
            }
            // Guard compares s against the moved value.
            let x = inst.src[0];
            let s_slot = if guard.src[0].reg() == Some(s) && guard.src[1] == x {
                0
            } else if guard.src[1].reg() == Some(s) && guard.src[0] == x {
                1
            } else {
                return None;
            };
            updates.push(Update { block: b, guard: idx - 1, cond, s_slot });
        }
    }
    if updates.len() < 2 {
        return None;
    }
    // Every use of s in the loop must be inside an identified guard or the
    // value moved by an update (the guards read s; the movs read x).
    for &b in &blocks {
        for (idx, inst) in f.block(b).insts.iter().enumerate() {
            if inst.uses().all(|u| u != s) {
                continue;
            }
            let sanctioned = updates
                .iter()
                .any(|u| u.block == b && (idx == u.guard || idx == u.guard + 1));
            if !sanctioned {
                return None;
            }
        }
    }
    Some(updates)
}

/// Expand one search variable; assumes `detect_updates` succeeded.
///
/// `reduction_entry` is where control currently flows after the loop
/// (initially the loop exit; after a previous expansion, that chain's first
/// reduction block). The new chain is spliced *in front of* it so multiple
/// expanded search variables in one loop each get their reduction executed.
fn expand(
    f: &mut Function,
    lp: &Loop,
    s: Reg,
    updates: &[Update],
    reduction_entry: &mut BlockId,
) {
    let k = updates.len();
    let temps: Vec<Reg> = (0..k).map(|_| f.new_reg(s.class)).collect();

    // Preheader: every temp starts at the incoming search value.
    let ph = preheader(f, lp).expect("checked by caller");
    let at = insert_point(f, ph);
    for (p, &t) in temps.iter().enumerate() {
        f.block_mut(ph).insts.insert(at + p, Inst::mov(t, s.into()));
    }

    // Rewrite update p to use its own temp: the guard compare and the mov.
    for (p, u) in updates.iter().enumerate() {
        let insts = &mut f.block_mut(u.block).insts;
        insts[u.guard].src[u.s_slot] = temps[p].into();
        insts[u.guard + 1].dst = Some(temps[p]);
    }

    // Exit reduction: a chain of guarded moves folding temps into s.
    // G_p: br cond(t_p ? s) -> G_{p+1}; s = t_p
    let cont = *reduction_entry;
    let cont_pos = f.layout_pos(cont).expect("continuation in layout");
    let g_blocks: Vec<BlockId> = (0..k)
        .map(|p| f.add_block_detached(&format!("search.red{p}")))
        .collect();
    for (p, &g) in g_blocks.iter().enumerate() {
        let next = if p + 1 < k { g_blocks[p + 1] } else { cont };
        let u = &updates[p];
        let mut br = Inst::new(Opcode::Br(u.cond));
        br.src[u.s_slot] = s.into();
        br.src[1 - u.s_slot] = temps[p].into();
        br.target = Some(next);
        br.prob = 0.5;
        f.block_mut(g).insts.push(br);
        f.block_mut(g).insts.push(Inst::mov(s, temps[p].into()));
    }
    for (p, &g) in g_blocks.iter().enumerate() {
        f.layout.insert(cont_pos + p, g);
    }
    *reduction_entry = g_blocks[0];
}

/// Apply search variable expansion to every inner loop of `m`.
/// Returns the number of variables expanded.
pub fn search_expand(m: &mut Module) -> usize {
    let forest = LoopForest::compute(&m.func);
    let inner: Vec<Loop> = forest.inner_loops().into_iter().cloned().collect();
    let mut count = 0;
    for lp in &inner {
        if preheader(&m.func, lp).is_none() || lp.exits.len() != 1 {
            continue;
        }
        let lv = Liveness::compute(&m.func);
        // Candidate carried registers: live into the header and defined
        // in the loop.
        let mut cands: Vec<Reg> = lv.live_in(lp.header).iter().collect();
        cands.retain(|r| {
            lp.blocks.iter().any(|&b| {
                m.func.block(b).insts.iter().any(|i| i.def() == Some(*r))
            })
        });
        let mut reduction_entry = lp.exits[0];
        for s in cands {
            if let Some(updates) = detect_updates(&m.func, lp, s) {
                expand(&mut m.func, lp, s, &updates, &mut reduction_entry);
                count += 1;
            }
        }
    }
    debug_assert!(
        ilpc_ir::verify::verify_module(m).is_ok(),
        "search expansion broke the IR: {:?}",
        ilpc_ir::verify::verify_module(m)
    );
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilpc_ir::inst::MemLoc;
    use ilpc_ir::{Operand, RegClass};

    /// 2×-unrolled max search with guarded moves:
    /// body0: [ld x0; ble x0,s -> B1; s = x0]  B1: [ld x1; ble x1,s -> L;
    /// s = x1]  L: [i += 2; blt i,8 -> body0]  exit.
    fn maxval_module() -> (Module, Vec<BlockId>, Reg) {
        let mut m = Module::new("maxval");
        let a = m.symtab.declare("A", 8, RegClass::Flt);
        let out = m.symtab.declare("out", 1, RegClass::Flt);
        let f = &mut m.func;
        let i = f.new_reg(RegClass::Int);
        let s = f.new_reg(RegClass::Flt);
        let x0 = f.new_reg(RegClass::Flt);
        let x1 = f.new_reg(RegClass::Flt);
        let entry = f.add_block("entry");
        let b0 = f.add_block("body0");
        let b1 = f.add_block("body1");
        let latch = f.add_block("latch");
        let exit = f.add_block("exit");
        f.block_mut(entry).insts.extend([
            Inst::mov(i, Operand::ImmI(0)),
            Inst::mov(s, Operand::ImmF(f64::MIN)),
        ]);
        f.block_mut(b0).insts.extend([
            Inst::load(x0, Operand::Sym(a), i.into(), MemLoc::affine(a, 1, 0)),
            Inst::br(Cond::Le, x0.into(), s.into(), b1),
            Inst::mov(s, x0.into()),
        ]);
        f.block_mut(b1).insts.extend([
            Inst::load(x1, Operand::Sym(a), i.into(), MemLoc::affine(a, 1, 1)),
            Inst::br(Cond::Le, x1.into(), s.into(), latch),
            Inst::mov(s, x1.into()),
        ]);
        f.block_mut(latch).insts.extend([
            Inst::alu(Opcode::Add, i, i.into(), Operand::ImmI(2)),
            Inst::br(Cond::Lt, i.into(), Operand::ImmI(8), b0),
        ]);
        f.block_mut(exit).insts.extend([
            Inst::store(Operand::Sym(out), Operand::ImmI(0), s.into(), MemLoc::affine(out, 0, 0)),
            Inst::halt(),
        ]);
        (m, vec![b0, b1, latch, exit], s)
    }

    #[test]
    fn expands_guarded_max_updates() {
        let (mut m, blocks, s) = maxval_module();
        assert_eq!(search_expand(&mut m), 1);
        let f = &m.func;
        let (b0, b1, _latch, exit) = (blocks[0], blocks[1], blocks[2], blocks[3]);
        // The two updates now write distinct temps and compare against them.
        let g0 = &f.block(b0).insts[1];
        let g1 = &f.block(b1).insts[1];
        let t0 = f.block(b0).insts[2].dst.unwrap();
        let t1 = f.block(b1).insts[2].dst.unwrap();
        assert_ne!(t0, t1);
        assert_ne!(t0, s);
        assert_eq!(g0.src[1].reg(), Some(t0));
        assert_eq!(g1.src[1].reg(), Some(t1));
        // Reduction blocks precede the exit in layout and rebuild s.
        let exit_pos = f.layout_pos(exit).unwrap();
        let red1 = f.layout_order()[exit_pos - 1];
        let red0 = f.layout_order()[exit_pos - 2];
        assert!(f.block(red0).insts[0].op.is_branch());
        assert_eq!(f.block(red0).insts[1].dst, Some(s));
        assert_eq!(f.block(red1).insts[1].dst, Some(s));
        // Preheader seeds both temps with s.
        let seeds = f
            .block(f.entry())
            .insts
            .iter()
            .filter(|i| i.op == Opcode::Mov && i.src[0].reg() == Some(s))
            .count();
        assert_eq!(seeds, 2);
        ilpc_ir::verify::verify_module(&m).unwrap();
    }

    #[test]
    fn rejects_unguarded_definition() {
        // s also assigned unconditionally -> not a search variable.
        let (mut m, blocks, s) = maxval_module();
        let latch = blocks[2];
        m.func
            .block_mut(latch)
            .insts
            .insert(0, Inst::mov(s, Operand::ImmF(0.0)));
        assert_eq!(search_expand(&mut m), 0);
    }
}
