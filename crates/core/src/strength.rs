//! Strength reduction for superscalar/VLIW processors.
//!
//! "In many existing compilers, integer multiply by a compile-time constant
//! is replaced by a sequence of left shifts and adds. [...] many of the
//! instructions generated during strength reduction are independent and can
//! be executed concurrently on a superscalar or VLIW processor."
//!
//! A multiply by constant `C` is decomposed over the signed binary
//! representation of `C` (allowing `±2^k` digits) into parallel shifts
//! followed by an add/sub tree. The rewrite is applied only when the tree's
//! critical path is *shorter* than the multiply latency — with Table 1's
//! 3-cycle multiply this admits constants with at most two signed digits
//! (e.g. 10 = 8+2, 7 = 8−1), which is exactly why the paper found strength
//! reduction to be the least effective transformation under this latency
//! model.

use ilpc_ir::{Function, Inst, Module, Opcode, Operand, RegClass};

/// Signed-digit decomposition of `c`: list of `(shift, negative)` terms such
/// that `c = Σ ±2^shift`. Uses the canonical (NAF) recoding, which minimizes
/// the number of digits.
fn signed_digits(mut c: i64) -> Vec<(u32, bool)> {
    let mut out = Vec::new();
    let mut shift = 0u32;
    while c != 0 && shift < 63 {
        if c & 1 != 0 {
            // Non-adjacent form digit: ±1 chosen so (c - d) is divisible by 4.
            let d: i64 = if c & 3 == 3 { -1 } else { 1 };
            out.push((shift, d < 0));
            c -= d;
        }
        c >>= 1;
        shift += 1;
    }
    out
}

/// Latency model used for the profitability check (Table 1).
const MUL_LATENCY: u32 = 3;
const ALU_LATENCY: u32 = 1;

/// Critical path of the shift/add expansion of `terms` digits, assuming
/// unbounded issue: one shift level + ⌈log2(terms)⌉ add levels.
fn expansion_depth(terms: usize) -> u32 {
    let add_levels = (usize::BITS - (terms.max(1) - 1).leading_zeros()) as u32;
    ALU_LATENCY + add_levels * ALU_LATENCY
}

/// Apply strength reduction to every `mul rX, rY, #C` whose expansion is
/// strictly faster than the multiply. Returns rewrites applied.
pub fn strength_reduce(m: &mut Module) -> usize {
    let mut count = 0;
    strength_reduce_func(&mut m.func, &mut count);
    debug_assert!(
        ilpc_ir::verify::verify_module(m).is_ok(),
        "strength reduction broke the IR: {:?}",
        ilpc_ir::verify::verify_module(m)
    );
    count
}

fn strength_reduce_func(f: &mut Function, count: &mut usize) {
    for &bid in f.layout_order().to_vec().iter() {
        let mut idx = 0;
        while idx < f.block(bid).insts.len() {
            let inst = f.block(bid).insts[idx].clone();
            let replace = (|| {
                if inst.op != Opcode::Mul {
                    return None;
                }
                let (src, c) = match (inst.src[0], inst.src[1]) {
                    (s @ Operand::Reg(_), Operand::ImmI(c))
                    | (Operand::ImmI(c), s @ Operand::Reg(_)) => (s, c),
                    _ => return None,
                };
                // 0/±1 handled by constant folding; powers of two are a
                // single shift; general constants via signed digits.
                let digits = signed_digits(c.checked_abs()?);
                if digits.is_empty() || expansion_depth(digits.len()) >= MUL_LATENCY {
                    return None;
                }
                Some((src, c, digits))
            })();
            let Some((src, c, digits)) = replace else {
                idx += 1;
                continue;
            };
            let dst = inst.dst.unwrap();
            // Build shifts.
            let mut seq: Vec<Inst> = Vec::new();
            let mut terms: Vec<(Operand, bool)> = Vec::new();
            for &(sh, neg) in &digits {
                let neg = neg != (c < 0);
                if sh == 0 {
                    terms.push((src, neg));
                } else {
                    let t = f.new_reg(RegClass::Int);
                    seq.push(Inst::alu(Opcode::Shl, t, src, Operand::ImmI(sh as i64)));
                    terms.push((t.into(), neg));
                }
            }
            // Combine terms: positives first with adds, then subtract the
            // negatives. (At most two digits under the Table-1 model, so the
            // tree here is a single add or sub.)
            terms.sort_by_key(|(_, neg)| *neg);
            let mut acc: Option<(Operand, bool)> = None;
            for (op, neg) in terms {
                acc = Some(match acc {
                    None => (op, neg),
                    Some((prev, false)) => {
                        let t = f.new_reg(RegClass::Int);
                        seq.push(Inst::alu(
                            if neg { Opcode::Sub } else { Opcode::Add },
                            t,
                            prev,
                            op,
                        ));
                        (t.into(), false)
                    }
                    Some((prev, true)) => {
                        // All-negative accumulation: -(a + b).
                        let t = f.new_reg(RegClass::Int);
                        seq.push(Inst::alu(Opcode::Add, t, prev, op));
                        (t.into(), true)
                    }
                });
            }
            let (final_op, negated) = acc.unwrap();
            if negated {
                seq.push(Inst::alu(Opcode::Sub, dst, Operand::ImmI(0), final_op));
            } else {
                seq.push(Inst::mov(dst, final_op));
            }
            // Make the last instruction write dst directly when possible.
            if !negated {
                let n = seq.len();
                if n >= 2 {
                    if let Some(last_dst) =
                        seq[n - 2].dst.filter(|d| Operand::Reg(*d) == final_op)
                    {
                        let _ = last_dst;
                        seq[n - 2].dst = Some(dst);
                        seq.pop();
                    }
                }
            }
            // Splice.
            let insts = &mut f.block_mut(bid).insts;
            insts.remove(idx);
            for (k, s) in seq.iter().enumerate() {
                insts.insert(idx + k, s.clone());
            }
            idx += seq.len();
            *count += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilpc_ir::semantics::eval_int;
    use ilpc_ir::Reg;

    #[test]
    fn digit_decomposition_is_exact() {
        for c in [1i64, 2, 3, 5, 7, 8, 10, 12, 100, 1023, 1025, 4096] {
            let v: i64 = signed_digits(c)
                .into_iter()
                .map(|(s, n)| if n { -(1i64 << s) } else { 1i64 << s })
                .sum();
            assert_eq!(v, c, "decomposition of {c}");
        }
    }

    #[test]
    fn ten_becomes_shift_add_like_paper() {
        // Paper: r2 = r1 * 10 → temp1 = r1 << 3; temp2 = r1 << 1; add.
        let mut m = Module::new("t");
        let f = &mut m.func;
        let r1 = f.new_reg(RegClass::Int);
        let r2 = f.new_reg(RegClass::Int);
        let b = f.add_block("b");
        f.block_mut(b).insts.extend([
            Inst::mov(r1, Operand::ImmI(0)), // keep r1 defined
            Inst::alu(Opcode::Mul, r2, r1.into(), Operand::ImmI(10)),
            Inst::halt(),
        ]);
        assert_eq!(strength_reduce(&mut m), 1);
        let insts = &m.func.block(b).insts;
        let shifts = insts.iter().filter(|i| i.op == Opcode::Shl).count();
        assert_eq!(shifts, 2);
        assert!(insts.iter().any(|i| i.op == Opcode::Add && i.dst == Some(r2)));
        assert!(!insts.iter().any(|i| i.op == Opcode::Mul));
    }

    #[test]
    fn seven_uses_sub() {
        let mut m = Module::new("t");
        let f = &mut m.func;
        let r1 = f.new_reg(RegClass::Int);
        let r2 = f.new_reg(RegClass::Int);
        let b = f.add_block("b");
        f.block_mut(b).insts.extend([
            Inst::mov(r1, Operand::ImmI(0)),
            Inst::alu(Opcode::Mul, r2, r1.into(), Operand::ImmI(7)),
            Inst::halt(),
        ]);
        assert_eq!(strength_reduce(&mut m), 1);
        let insts = &m.func.block(b).insts;
        assert!(insts.iter().any(|i| i.op == Opcode::Sub));
    }

    #[test]
    fn dense_constants_keep_multiply() {
        // 1 + 4 + 16 + 64 = 85 needs 4 digits: deeper than the multiply.
        let mut m = Module::new("t");
        let f = &mut m.func;
        let r1 = f.new_reg(RegClass::Int);
        let r2 = f.new_reg(RegClass::Int);
        let b = f.add_block("b");
        f.block_mut(b).insts.extend([
            Inst::mov(r1, Operand::ImmI(0)),
            Inst::alu(Opcode::Mul, r2, r1.into(), Operand::ImmI(85)),
            Inst::halt(),
        ]);
        assert_eq!(strength_reduce(&mut m), 0);
        assert!(m.func.block(b).insts.iter().any(|i| i.op == Opcode::Mul));
    }

    /// The rewritten sequence computes the same product as the machine's
    /// wrapping multiply for a range of inputs and constants.
    #[test]
    fn semantics_match_wrapping_multiply() {
        for c in [2i64, 3, 4, 5, 6, 7, 8, 9, 10, 12, 16, 17, -3, -8, -10] {
            let digits = signed_digits(c.abs());
            if digits.is_empty() || expansion_depth(digits.len()) >= MUL_LATENCY {
                continue;
            }
            let mut m = Module::new("t");
            let f = &mut m.func;
            let r1 = f.new_reg(RegClass::Int);
            let r2 = f.new_reg(RegClass::Int);
            let b = f.add_block("b");
            f.block_mut(b).insts.extend([
                Inst::alu(Opcode::Mul, r2, r1.into(), Operand::ImmI(c)),
                Inst::halt(),
            ]);
            strength_reduce(&mut m);
            // Interpret the tiny sequence directly.
            for x in [-17i64, -1, 0, 1, 2, 5, 1000, i64::MAX / 2] {
                let mut regs = vec![0i64; m.func.vreg_count(RegClass::Int) as usize];
                regs[r1.id as usize] = x;
                for i in &m.func.block(b).insts {
                    let val = |o: Operand| -> i64 {
                        match o {
                            Operand::Reg(Reg { id, .. }) => regs[id as usize],
                            Operand::ImmI(v) => v,
                            _ => unreachable!(),
                        }
                    };
                    match i.op {
                        Opcode::Halt => break,
                        Opcode::Mov => regs[i.dst.unwrap().id as usize] = val(i.src[0]),
                        op => {
                            regs[i.dst.unwrap().id as usize] =
                                eval_int(op, val(i.src[0]), val(i.src[1]))
                        }
                    }
                }
                assert_eq!(
                    regs[r2.id as usize],
                    x.wrapping_mul(c),
                    "c={c}, x={x}"
                );
            }
        }
    }
}
