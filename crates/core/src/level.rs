//! Transformation levels (the paper's §3.2 configurations).
//!
//! * **Conv** — conventional scalar optimizations only (`ilpc-opt`).
//! * **Lev1** — Conv + loop unrolling (max 8×, body-size capped).
//! * **Lev2** — Lev1 + register renaming.
//! * **Lev3** — Lev2 + operation combining, strength reduction, tree height
//!   reduction.
//! * **Lev4** — Lev3 + accumulator / induction / search variable expansion.
//! * **Lev6** — Lev4 + SLP vectorization (`ilpc-vec`). The `Lev5` name is
//!   reserved for software pipelining per the roadmap; the vector level
//!   keeps its roadmap designation so grid artifacts stay comparable.
//!
//! "Each successive level includes all transformations from previous
//! levels."

use crate::accum::accumulator_expand;
use crate::combine::operation_combine;
use crate::induct::induction_expand;
use crate::rename::rename_loops;
use crate::search::search_expand;
use crate::strength::strength_reduce;
use crate::threduce::tree_height_reduce;
use crate::unroll::{unroll_inner_loops, UnrollConfig};
use ilpc_ir::Module;
use ilpc_opt::{cleanup, conventional, dce, fold_add_chains, simplify_cfg};
use std::fmt;

/// Optimization level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    Conv,
    Lev1,
    Lev2,
    Lev3,
    Lev4,
    Lev6,
}

impl Level {
    /// All levels, in increasing order.
    pub const ALL: [Level; 6] = [
        Level::Conv,
        Level::Lev1,
        Level::Lev2,
        Level::Lev3,
        Level::Lev4,
        Level::Lev6,
    ];

    /// Paper-style short name.
    pub fn name(self) -> &'static str {
        match self {
            Level::Conv => "Conv",
            Level::Lev1 => "Lev1",
            Level::Lev2 => "Lev2",
            Level::Lev3 => "Lev3",
            Level::Lev4 => "Lev4",
            Level::Lev6 => "Lev6",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Counts of transformation applications (reported by the harness and used
/// by tests; mirrors the paper's discussion of which transformations fire).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransformReport {
    pub loops_unrolled: usize,
    pub unroll_factor_total: usize,
    pub defs_renamed: usize,
    pub combines: usize,
    pub strength_reductions: usize,
    pub trees_reduced: usize,
    pub accumulators_expanded: usize,
    pub inductions_expanded: usize,
    pub searches_expanded: usize,
    pub packs_formed: usize,
    pub stmts_vectorized: usize,
}

/// One named step of the level pipeline.
///
/// The pipeline is expressed as data so external drivers — most notably the
/// `ilpc-guard` transformation firewall — can interpose snapshotting,
/// verification and rollback around every individual pass. [`apply_level`]
/// runs the exact same pass sequence unguarded; the two must stay
/// behaviourally identical.
pub struct Pass {
    /// Stable pass name (used in guard reports and fault-campaign output).
    pub name: &'static str,
    /// Lowest level whose pipeline includes this pass.
    pub level: Level,
    run: fn(&mut Module, &UnrollConfig, &mut TransformReport),
}

impl Pass {
    /// Run the pass, accumulating application counts into `rep`.
    pub fn execute(&self, m: &mut Module, ucfg: &UnrollConfig, rep: &mut TransformReport) {
        (self.run)(m, ucfg, rep)
    }
}

/// The complete Lev4 pipeline, in execution order. Counters are accumulated
/// with `+=` so a pass stays well-defined if a driver re-runs or skips it.
pub const PASSES: &[Pass] = &[
    // Conventional optimization is the baseline for every level.
    Pass { name: "conventional", level: Level::Conv, run: |m, _, _| { conventional(m); } },
    Pass {
        name: "unroll",
        level: Level::Lev1,
        run: |m, ucfg, rep| {
            let unrolled = unroll_inner_loops(m, ucfg);
            rep.loops_unrolled += unrolled.len();
            rep.unroll_factor_total += unrolled.iter().map(|u| u.factor).sum::<usize>();
        },
    },
    // Post-unroll cleanup: collapse use-free counter chains (classical
    // induction variable elimination, Figure 5c), fold constants in the
    // preconditioning code, merge straight-line copies into superblock
    // seeds.
    Pass {
        name: "post-unroll-cleanup",
        level: Level::Lev1,
        run: |m, _, _| {
            fold_add_chains(&mut m.func);
            dce(&mut m.func);
            simplify_cfg(&mut m.func);
            cleanup(&mut m.func);
        },
    },
    Pass {
        name: "rename",
        level: Level::Lev2,
        run: |m, _, rep| rep.defs_renamed += rename_loops(m),
    },
    // Renaming introduces no new redundancy; a DCE pass tidies up any
    // now-unused restored names.
    Pass { name: "rename-dce", level: Level::Lev2, run: |m, _, _| { dce(&mut m.func); } },
    Pass {
        name: "combine",
        level: Level::Lev3,
        run: |m, _, rep| rep.combines += operation_combine(m),
    },
    Pass {
        name: "strength-reduce",
        level: Level::Lev3,
        run: |m, _, rep| rep.strength_reductions += strength_reduce(m),
    },
    Pass {
        name: "tree-height-reduce",
        level: Level::Lev3,
        run: |m, _, rep| rep.trees_reduced += tree_height_reduce(m),
    },
    Pass { name: "lev3-dce", level: Level::Lev3, run: |m, _, _| { dce(&mut m.func); } },
    Pass {
        name: "accumulator-expand",
        level: Level::Lev4,
        run: |m, _, rep| rep.accumulators_expanded += accumulator_expand(m),
    },
    Pass {
        name: "induction-expand",
        level: Level::Lev4,
        run: |m, _, rep| rep.inductions_expanded += induction_expand(m),
    },
    Pass {
        name: "search-expand",
        level: Level::Lev4,
        run: |m, _, rep| rep.searches_expanded += search_expand(m),
    },
    Pass { name: "expand-dce", level: Level::Lev4, run: |m, _, _| { dce(&mut m.func); } },
    // Expansion exposes more combinable pairs (paper §3.2: "the
    // effectiveness of other transformations ... becomes more apparent
    // with fewer dependences present").
    Pass {
        name: "re-combine",
        level: Level::Lev4,
        run: |m, _, rep| rep.combines += operation_combine(m),
    },
    Pass {
        name: "re-tree-height-reduce",
        level: Level::Lev4,
        run: |m, _, rep| rep.trees_reduced += tree_height_reduce(m),
    },
    Pass { name: "lev4-dce", level: Level::Lev4, run: |m, _, _| { dce(&mut m.func); } },
    // SLP vectorization packs the isomorphic statement groups the unroll +
    // rename + expansion ladder manufactures. A no-op when `ucfg.vlen <= 1`,
    // which keeps Lev6/VLEN=1 bit-identical to Lev4.
    Pass {
        name: "slp-vectorize",
        level: Level::Lev6,
        run: |m, ucfg, rep| {
            let r = ilpc_vec::slp_vectorize(m, ucfg.vlen);
            rep.packs_formed += r.packs_formed;
            rep.stmts_vectorized += r.stmts_vectorized;
        },
    },
    Pass { name: "slp-dce", level: Level::Lev6, run: |m, _, _| { dce(&mut m.func); } },
];

/// The passes `level` runs, in execution order.
pub fn passes(level: Level) -> impl Iterator<Item = &'static Pass> {
    PASSES.iter().filter(move |p| level >= p.level)
}

/// Apply `level` to `m` (which must be freshly lowered, unoptimized IR).
pub fn apply_level(m: &mut Module, level: Level, ucfg: &UnrollConfig) -> TransformReport {
    let mut rep = TransformReport::default();
    for pass in passes(level) {
        pass.execute(m, ucfg, &mut rep);
    }
    debug_assert!(
        ilpc_ir::verify::verify_module(m).is_ok(),
        "level pipeline broke the IR: {:?}",
        ilpc_ir::verify::verify_module(m)
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilpc_ir::ast::{Bound, Expr, Index, Program, Stmt};
    use ilpc_ir::lower::lower;
    use ilpc_ir::Opcode;

    fn dotprod() -> Program {
        let mut p = Program::new("dotprod");
        let i = p.int_var("i");
        let s = p.flt_var("s");
        let a = p.flt_arr("A", 64);
        let b = p.flt_arr("B", 64);
        p.body = vec![Stmt::For {
            var: i,
            lo: Bound::Const(0),
            hi: Bound::Const(63),
            body: vec![Stmt::SetScalar(
                s,
                Expr::add(
                    Expr::Var(s),
                    Expr::mul(Expr::at(a, Index::var(i)), Expr::at(b, Index::var(i))),
                ),
            )],
        }];
        p
    }

    #[test]
    fn levels_are_cumulative_and_verify() {
        for level in Level::ALL {
            let mut l = lower(&dotprod());
            let rep = apply_level(&mut l.module, level, &UnrollConfig::default());
            ilpc_ir::verify::verify_module(&l.module).unwrap();
            match level {
                Level::Conv => assert_eq!(rep.loops_unrolled, 0),
                Level::Lev1 => {
                    assert_eq!(rep.loops_unrolled, 1);
                    assert_eq!(rep.defs_renamed, 0);
                }
                Level::Lev2 => assert!(rep.defs_renamed > 0),
                Level::Lev3 => assert!(rep.defs_renamed > 0),
                Level::Lev4 | Level::Lev6 => {
                    assert!(
                        rep.accumulators_expanded >= 1,
                        "dot product accumulator must expand: {rep:?}"
                    );
                    assert!(
                        rep.inductions_expanded >= 1,
                        "unrolled index chain must expand: {rep:?}"
                    );
                    if level == Level::Lev6 {
                        // Default config has vlen=1: SLP must stay silent.
                        assert_eq!(rep.packs_formed, 0);
                    }
                }
            }
        }
    }

    #[test]
    fn lev4_dotprod_has_independent_multiply_accumulates() {
        let mut l = lower(&dotprod());
        apply_level(&mut l.module, Level::Lev4, &UnrollConfig::default());
        let f = &l.module.func;
        // Find the main unrolled loop: the biggest block with a backedge.
        let forest = ilpc_analysis::LoopForest::compute(f);
        let mut best: Option<(usize, Vec<Opcode>)> = None;
        for lp in forest.inner_loops() {
            let insts: Vec<Opcode> = lp
                .blocks
                .iter()
                .flat_map(|&b| f.block(b).insts.iter().map(|i| i.op))
                .collect();
            if best.as_ref().is_none_or(|(n, _)| insts.len() > *n) {
                best = Some((insts.len(), insts));
            }
        }
        let (_, ops) = best.unwrap();
        let fadds = ops.iter().filter(|o| **o == Opcode::FAdd).count();
        let fmuls = ops.iter().filter(|o| **o == Opcode::FMul).count();
        assert_eq!(fadds, fmuls, "one accumulate per product");
        assert!(fadds >= 4, "unrolled at least 4x, got {fadds}");
    }

    #[test]
    fn pass_table_is_cumulative_and_matches_apply_level() {
        // Each successive level strictly extends the previous one's plan.
        let mut prev = 0;
        for level in Level::ALL {
            let n = passes(level).count();
            assert!(n > prev, "{level}: {n} passes, previous level had {prev}");
            prev = n;
        }
        assert_eq!(passes(Level::Lev6).count(), PASSES.len());
        // Driving the pass table by hand reproduces apply_level exactly.
        let mut via_table = lower(&dotprod());
        let mut rep_table = TransformReport::default();
        for pass in passes(Level::Lev4) {
            pass.execute(&mut via_table.module, &UnrollConfig::default(), &mut rep_table);
        }
        let mut via_apply = lower(&dotprod());
        let rep_apply =
            apply_level(&mut via_apply.module, Level::Lev4, &UnrollConfig::default());
        assert_eq!(rep_table, rep_apply);
        assert_eq!(
            ilpc_ir::text::serialize(&via_table.module),
            ilpc_ir::text::serialize(&via_apply.module)
        );
    }

    #[test]
    fn every_pass_leaves_verifiable_ir() {
        // The guard verifies after *every* pass, so no pass may leave even a
        // transiently malformed module.
        let mut l = lower(&dotprod());
        let mut rep = TransformReport::default();
        for pass in passes(Level::Lev4) {
            pass.execute(&mut l.module, &UnrollConfig::default(), &mut rep);
            ilpc_ir::verify::verify_module(&l.module)
                .unwrap_or_else(|e| panic!("after {}: {e}", pass.name));
        }
    }

    #[test]
    fn level_ordering() {
        assert!(Level::Conv < Level::Lev1);
        assert!(Level::Lev3 < Level::Lev4);
        assert!(Level::Lev4 < Level::Lev6);
        assert_eq!(Level::Lev2.name(), "Lev2");
        assert_eq!(Level::Lev6.name(), "Lev6");
    }
}
