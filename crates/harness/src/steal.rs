//! Work-stealing task scheduler for evaluation sweeps.
//!
//! The fork-join engine the grid shipped with (one shared atomic counter,
//! one item per claim) is fine for the paper's 600-point grid, but the
//! scenario spaces the harness is growing toward — issue rates × latency
//! tables × cache configs × levels over thousands of generated loops —
//! have two properties that punish a central counter:
//!
//! * **skewed per-point costs**: trip counts in Table 2 span two orders of
//!   magnitude, and a cached wide-issue Lev4 point simulates many times
//!   longer than a perfect-memory Conv point, so tail latency is governed
//!   by whoever claims the expensive points last;
//! * **many tiny points**: at small trip-count scales the per-claim
//!   synchronization is a measurable fraction of the work.
//!
//! [`execute`] distributes items into per-worker deques up front
//! (contiguous blocks, preserving the submission order's cache locality),
//! then lets each worker drain its own deque lock-cheaply and **steal half
//! of a victim's remaining items** when it runs dry. Steal-half (rather
//! than steal-one) amortizes synchronization and rebalances skew in
//! O(log n) steals. Everything is `std`-only: one `Mutex<VecDeque<usize>>`
//! per worker; an owner's pop and a thief's steal contend only on that
//! worker's deque, never on a global structure.
//!
//! Results are returned in submission order, so callers can zip them back
//! to their items — the scheduler never reorders observable output, which
//! is what lets the grid prove observable identity with the fork-join
//! engine.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Observability counters for one [`execute`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StealStats {
    /// Successful steal operations (each moved ≥ 1 item).
    pub steals: u64,
    /// Items moved between deques by those steals.
    pub stolen_items: u64,
}

/// Run `eval` over every item on `threads` workers with work stealing.
///
/// Returns one result per item, **in item order**. `eval` receives the
/// item index and the item itself. Panics inside `eval` propagate (the
/// grid wraps each point in `catch_unwind` before it reaches here, exactly
/// as it did under the fork-join engine).
pub fn execute<T, R, F>(items: &[T], threads: usize, eval: F) -> (Vec<R>, StealStats)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return (Vec::new(), StealStats::default());
    }
    let threads = threads.max(1).min(n);

    // Block distribution: worker w owns a contiguous chunk. Stealing takes
    // from the *back* of a victim's deque (the far end of its block), so
    // the owner keeps working the front undisturbed.
    let mut deques: Vec<Mutex<VecDeque<usize>>> = Vec::with_capacity(threads);
    let per = n.div_ceil(threads);
    for w in 0..threads {
        let lo = w * per;
        let hi = ((w + 1) * per).min(n);
        deques.push(Mutex::new((lo..hi.max(lo)).collect()));
    }
    let deques = &deques;

    let steals = AtomicU64::new(0);
    let stolen = AtomicU64::new(0);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));

    std::thread::scope(|scope| {
        for me in 0..threads {
            let eval = &eval;
            let results = &results;
            let steals = &steals;
            let stolen = &stolen;
            scope.spawn(move || {
                let mut local: Vec<(usize, R)> = Vec::new();
                'work: loop {
                    // Drain our own deque from the front.
                    let mine = {
                        let mut dq = lock(&deques[me]);
                        dq.pop_front()
                    };
                    if let Some(i) = mine {
                        local.push((i, eval(i, &items[i])));
                        continue;
                    }
                    // Empty: try to steal half of someone else's backlog.
                    for step in 1..threads {
                        let victim = (me + step) % threads;
                        let grabbed = {
                            let mut v = lock(&deques[victim]);
                            let take = v.len().div_ceil(2);
                            if take == 0 {
                                continue;
                            }
                            // Steal the *back* half: the items farthest
                            // from the victim's working front.
                            let split_at = v.len() - take;
                            v.split_off(split_at)
                        };
                        steals.fetch_add(1, Ordering::Relaxed);
                        stolen.fetch_add(grabbed.len() as u64, Ordering::Relaxed);
                        let mut dq = lock(&deques[me]);
                        *dq = grabbed;
                        drop(dq);
                        continue 'work;
                    }
                    // Every deque we could see was empty. Any remaining
                    // work is already claimed by (and will be finished by)
                    // another worker, so exiting is safe: items leave a
                    // deque only when a worker commits to executing them.
                    break;
                }
                // One merge per worker, recovering from sibling poisoning
                // exactly like the fork-join engine did.
                lock(&results).extend(local);
            });
        }
    });

    let mut collected = results.into_inner().unwrap_or_else(|p| p.into_inner());
    debug_assert_eq!(collected.len(), n, "scheduler lost or duplicated items");
    collected.sort_unstable_by_key(|(i, _)| *i);
    let out = collected.into_iter().map(|(_, r)| r).collect();
    let stats = StealStats {
        steals: steals.load(Ordering::Relaxed),
        stolen_items: stolen.load(Ordering::Relaxed),
    };
    (out, stats)
}

/// Lock a mutex, recovering from poisoning: deque and result state stay
/// consistent because every mutation is a single push/pop/extend.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_preserve_item_order() {
        let items: Vec<u64> = (0..1000).collect();
        let (out, _) = execute(&items, 8, |i, &x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..257).collect();
        let (out, _) = execute(&items, 5, |_, &i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out.len(), 257);
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "item {i}");
        }
    }

    #[test]
    fn skewed_costs_get_rebalanced_by_stealing() {
        // One worker's block is all-expensive; with more than one thread
        // the others must steal from it. (On a single-core host the steal
        // still *happens* — the schedule interleaves — it just cannot cut
        // wall time.)
        let items: Vec<u64> = (0..64)
            .map(|i| if i < 16 { 400_000 } else { 10 })
            .collect();
        let (out, stats) = execute(&items, 4, |_, &cost| {
            // Busy work proportional to cost.
            let mut acc = 0u64;
            for k in 0..cost {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            acc
        });
        assert_eq!(out.len(), 64);
        assert!(
            stats.steals > 0,
            "skewed blocks should force at least one steal: {stats:?}"
        );
        assert_eq!(stats.stolen_items >= stats.steals, true, "{stats:?}");
    }

    #[test]
    fn degenerate_shapes() {
        let empty: Vec<u32> = vec![];
        let (out, stats) = execute(&empty, 4, |_, &x| x);
        assert!(out.is_empty());
        assert_eq!(stats, StealStats::default());

        // One item, many threads: threads clamp to the item count.
        let (out, _) = execute(&[7u32], 16, |_, &x| x + 1);
        assert_eq!(out, vec![8]);

        // Zero threads clamp to one.
        let items: Vec<u32> = (0..10).collect();
        let (out, stats) = execute(&items, 0, |_, &x| x);
        assert_eq!(out, items);
        assert_eq!(stats.steals, 0, "a lone worker has nobody to rob");
    }

    #[test]
    fn more_threads_than_items_is_safe() {
        let items: Vec<u32> = (0..3).collect();
        let (out, _) = execute(&items, 64, |_, &x| x * x);
        assert_eq!(out, vec![0, 1, 4]);
    }
}
