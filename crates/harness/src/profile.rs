//! Profile-driven compilation.
//!
//! IMPACT's superblock formation is profile-based: traces follow the
//! branch directions observed in a profiling run, not static estimates.
//! This module reproduces that flow: compile at Conv / issue-1, simulate
//! once on training data collecting per-branch taken frequencies, map the
//! frequencies back onto the *unoptimized* IR's branches (by stable block
//! id + occurrence), and re-run the full pipeline with measured
//! probabilities replacing the front end's estimates.
//!
//! Because every transformation clones or moves branches *with* their
//! `prob` field, profiling the Conv-level code is enough: unrolled copies
//! and tail duplicates inherit the measured probability of the branch they
//! were cloned from.

use crate::compile::Compiled;
use crate::run::run_compiled;
use ilpc_core::level::{apply_level, Level};
use ilpc_core::unroll::UnrollConfig;
use ilpc_ir::lower::lower;
use ilpc_ir::{Module, Opcode};
use ilpc_machine::Machine;
use ilpc_sched::{form_superblocks, schedule_module, SuperblockConfig};
use ilpc_sim::{memory_from_init, simulate};
use ilpc_workloads::Workload;
use std::collections::HashMap;

/// Measured taken-probabilities, keyed by `(block id, branch occurrence
/// within the block)`. Occurrence (rather than instruction index) survives
/// the optimizer inserting/deleting non-branch instructions around the
/// branch.
pub type BranchProfile = HashMap<(u32, usize), f32>;

/// Occurrence-keyed branch positions of a function.
fn branch_keys(m: &Module) -> HashMap<(u32, usize), (u32, usize)> {
    // (block, inst idx) -> (block, occurrence)
    let mut map = HashMap::new();
    for &bid in m.func.layout_order() {
        let mut occ = 0usize;
        for (idx, inst) in m.func.block(bid).insts.iter().enumerate() {
            if matches!(inst.op, Opcode::Br(_)) {
                map.insert((bid.0, idx), (bid.0, occ));
                occ += 1;
            }
        }
    }
    map
}

/// Run a Conv / issue-1 training simulation and return the measured
/// per-branch taken probabilities of the *Conv-compiled* module.
pub fn collect_profile(w: &Workload) -> Result<(Module, BranchProfile), String> {
    let machine = Machine::base();
    let lowered = lower(&w.program);
    let mut module = lowered.module;
    apply_level(&mut module, Level::Conv, &UnrollConfig::default());
    // NOTE: profiling runs unscheduled code — branch semantics are
    // position-independent, so the profile transfers.
    let mem = memory_from_init(&module.symtab, &w.init);
    let res = simulate(&module, &machine, mem, 4_000_000_000)
        .map_err(|e| format!("{}: training run: {e}", w.meta.name))?;
    let keys = branch_keys(&module);
    let mut profile = BranchProfile::new();
    for ((bid, idx), (executed, taken)) in res.branch_profile {
        if executed == 0 {
            continue;
        }
        if let Some(&key) = keys.get(&(bid, idx)) {
            profile.insert(key, taken as f32 / executed as f32);
        }
    }
    Ok((module, profile))
}

/// Apply a measured profile to a module's branches (by occurrence key).
pub fn apply_profile(m: &mut Module, profile: &BranchProfile) {
    let blocks: Vec<_> = m.func.layout_order().to_vec();
    for bid in blocks {
        let mut occ = 0usize;
        for inst in &mut m.func.block_mut(bid).insts {
            if matches!(inst.op, Opcode::Br(_)) {
                if let Some(&p) = profile.get(&(bid.0, occ)) {
                    inst.prob = p;
                }
                occ += 1;
            }
        }
    }
}

/// Full profile-driven compilation: train at Conv/issue-1, then compile at
/// `level` with the measured branch probabilities steering superblock
/// formation. The profile is applied right after Conv (block ids at that
/// point match the training module's), before the ILP transformations
/// clone the branches.
pub fn compile_with_profile(
    w: &Workload,
    level: Level,
    machine: &Machine,
) -> Result<(Compiled, BranchProfile), String> {
    let (_, profile) = collect_profile(w)?;

    let lowered = lower(&w.program);
    let mut module = lowered.module;
    // Conv first (deterministic: same block ids as the training module).
    apply_level(&mut module, Level::Conv, &UnrollConfig::default());
    apply_profile(&mut module, &profile);
    // The remaining levels run on the profile-annotated module.
    if level > Level::Conv {
        let report = {
            use ilpc_core::ablation::{apply_set, TransformSet};
            let mut set = TransformSet::of_level(level);
            // Conv already ran; apply_set re-runs it harmlessly
            // (idempotent on optimized code).
            let _ = &mut set;
            apply_set(&mut module, &set, &UnrollConfig::default())
        };
        let superblocks =
            form_superblocks(&mut module, &SuperblockConfig::default());
        let schedules = schedule_module(&mut module, machine);
        let regs = ilpc_regalloc::measure(&module.func);
        let static_insts = module.func.num_insts();
        return Ok((
            Compiled {
                module,
                shadow: lowered.shadow_syms,
                report,
                superblocks,
                regs,
                static_insts,
                schedules,
            },
            profile,
        ));
    }
    let superblocks = form_superblocks(&mut module, &SuperblockConfig::default());
    let schedules = schedule_module(&mut module, machine);
    let regs = ilpc_regalloc::measure(&module.func);
    let static_insts = module.func.num_insts();
    Ok((
        Compiled {
            module,
            shadow: lowered.shadow_syms,
            report: Default::default(),
            superblocks,
            regs,
            static_insts,
            schedules,
        },
        profile,
    ))
}

/// Evaluate a workload with profile-driven compilation.
pub fn evaluate_with_profile(
    w: &Workload,
    level: Level,
    machine: &Machine,
) -> Result<crate::run::EvalPoint, String> {
    let (compiled, _) = compile_with_profile(w, level, machine)?;
    run_compiled(w, &compiled, machine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::evaluate;
    use ilpc_workloads::{build, table2};

    #[test]
    fn profile_matches_data_not_estimates() {
        // merge's front-end estimate is 0.5; feed data where A < B is
        // rare and verify the measured probability reflects the data.
        let meta = table2().into_iter().find(|m| m.name == "merge").unwrap();
        let mut w = build(&meta, 0.05);
        // Bias the data: A mostly larger than B.
        use ilpc_ir::ArrayVal;
        if let Some(Some(ArrayVal::F(a))) = w.init.arrays.get_mut(1) {
            for v in a.iter_mut() {
                *v += 10.0;
            }
        }
        let (_, profile) = collect_profile(&w).unwrap();
        // Some branch in the profile should be strongly biased.
        let biased = profile.values().any(|&p| p > 0.9 || p < 0.1);
        assert!(biased, "profile: {profile:?}");
    }

    #[test]
    fn profile_driven_compile_is_correct_and_competitive() {
        for name in ["maxval", "merge", "tomcatv-2", "CSS-1"] {
            let meta = table2().into_iter().find(|m| m.name == name).unwrap();
            let w = build(&meta, 0.05);
            let machine = Machine::issue(8);
            let prof = evaluate_with_profile(&w, Level::Lev4, &machine)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let stat = evaluate(&w, Level::Lev4, &machine).unwrap();
            // Correctness is already asserted inside evaluate_*; the
            // profile-driven build should be in the same performance
            // ballpark (and usually equal or better).
            let ratio = prof.cycles as f64 / stat.cycles as f64;
            assert!(
                ratio < 1.3,
                "{name}: profiled {} vs static {}",
                prof.cycles,
                stat.cycles
            );
        }
    }
}
