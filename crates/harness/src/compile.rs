//! The full compilation pipeline: lower → transformation level →
//! superblock formation → list scheduling → register measurement.
//!
//! Two entry points produce runnable code: [`compile`] (the bare pipeline)
//! and [`compile_guarded`], which routes every transformation pass *and*
//! both backend steps through the `ilpc-guard` transformation firewall. On
//! healthy input the two are bit-identical; on a faulty pass the guarded
//! pipeline rolls back, degrades and reports instead of miscompiling.

use crate::run::{cycle_budget, FLT_TOL};
use ilpc_core::ablation::{apply_set, TransformSet};
use ilpc_core::level::{apply_level, Level, TransformReport};
use ilpc_core::unroll::UnrollConfig;
use ilpc_guard::{guarded_apply_level, Guard, GuardConfig, GuardReport, Oracle, StepHook};
use ilpc_ir::ast::VarId;
use ilpc_ir::interp::interpret;
use ilpc_ir::lower::{lower, Lowered};
use ilpc_ir::value::{ArrayVal, Value};
use ilpc_ir::{Module, SymId};
use ilpc_machine::Machine;
use ilpc_regalloc::RegUsage;
use ilpc_sched::{form_superblocks, schedule_module, BlockSchedule, SuperblockConfig, SuperblockReport};
use ilpc_sim::{memory_from_init, SimLimits};
use ilpc_workloads::Workload;
use std::collections::HashMap;

/// A compiled workload ready for simulation.
#[derive(Debug, Clone)]
pub struct Compiled {
    pub module: Module,
    /// Assigned scalar → shadow output symbol (for result comparison).
    pub shadow: HashMap<VarId, SymId>,
    /// Transformation application counts.
    pub report: TransformReport,
    /// Superblock formation counts.
    pub superblocks: SuperblockReport,
    /// Peak register usage of the scheduled code.
    pub regs: RegUsage,
    /// Static instruction count after compilation.
    pub static_insts: usize,
    /// Per-block issue schedules from list scheduling, indexed like the
    /// function's block table (`None` for unscheduled/detached blocks, or
    /// everywhere when a guarded backend step was rolled back). Kept so
    /// `ilpc-lint`'s schedule auditor can re-validate them against the
    /// machine model without re-running the scheduler.
    pub schedules: Vec<Option<BlockSchedule>>,
}

fn finish(
    mut module: Module,
    shadow: HashMap<VarId, SymId>,
    report: TransformReport,
    machine: &Machine,
) -> Compiled {
    let superblocks = form_superblocks(&mut module, &SuperblockConfig::default());
    let schedules = schedule_module(&mut module, machine);
    let regs = ilpc_regalloc::measure(&module.func);
    let static_insts = module.func.num_insts();
    Compiled { module, shadow, report, superblocks, regs, static_insts, schedules }
}

/// Compile `w` at `level` for `machine`.
pub fn compile(w: &Workload, level: Level, machine: &Machine) -> Compiled {
    let lowered = lower(&w.program);
    let mut module = lowered.module;
    let ucfg = UnrollConfig { vlen: machine.vlen, ..Default::default() };
    let report = apply_level(&mut module, level, &ucfg);
    finish(module, lowered.shadow_syms, report, machine)
}

/// Compile `w` with an arbitrary transformation subset (ablation studies).
pub fn compile_set(w: &Workload, set: &TransformSet, machine: &Machine) -> Compiled {
    let lowered = lower(&w.program);
    let mut module = lowered.module;
    let ucfg = UnrollConfig { vlen: machine.vlen, ..Default::default() };
    let report = apply_set(&mut module, set, &ucfg);
    finish(module, lowered.shadow_syms, report, machine)
}

/// Differential-spot-check oracle for `w`: the AST interpreter's final
/// arrays plus every assigned scalar's shadow symbol, with the workload's
/// own initial data. Any corrupted module whose architectural results
/// diverge from this reference is rejected by the firewall.
pub fn workload_oracle(w: &Workload, lowered: &Lowered) -> Oracle {
    let reference = interpret(&w.program, &w.init);
    let mut expect: Vec<(SymId, ArrayVal)> = reference
        .arrays
        .iter()
        .enumerate()
        .map(|(k, v)| (SymId(k as u32), v.clone()))
        .collect();
    let mut shadows: Vec<_> = lowered.shadow_syms.iter().collect();
    shadows.sort_by_key(|(_, sym)| sym.0);
    for (var, sym) in shadows {
        let want = match reference.scalars[var.0 as usize] {
            Value::I(x) => ArrayVal::I(vec![x]),
            Value::F(x) => ArrayVal::F(vec![x]),
        };
        expect.push((*sym, want));
    }
    Oracle {
        // Architectural results are width-independent; spot-check on a
        // fixed narrow machine regardless of the compilation target.
        machine: Machine::issue(4),
        init_mem: memory_from_init(&lowered.module.symtab, &w.init),
        expect,
        tol: FLT_TOL,
        limits: SimLimits::cycles(cycle_budget(reference.stmts_executed)),
    }
}

/// A guarded compilation: the surviving code plus the firewall's account
/// of what happened.
#[derive(Debug)]
pub struct GuardedCompile {
    pub compiled: Compiled,
    pub guard: GuardReport,
}

/// Number of guarded steps [`compile_guarded`] runs at `level`: every
/// level-pipeline pass plus the two backend steps.
pub fn guarded_step_count(level: Level) -> usize {
    ilpc_core::level::passes(level).count() + 2
}

/// Compile `w` at `level` through the transformation firewall.
///
/// Every level-pipeline pass runs as a guarded step, and so do superblock
/// formation and list scheduling: a corrupted alias tag is architecturally
/// invisible until the scheduler trusts it to reorder memory operations,
/// so the backend must sit inside the firewall too. A failed backend step
/// rolls back to the unscheduled module — a pure performance (never
/// correctness) loss.
///
/// `hook` optionally corrupts the module inside a chosen step, exactly
/// where a buggy pass would strike; the fault-injection campaign drives
/// it. Production callers pass `None`.
pub fn compile_guarded(
    w: &Workload,
    level: Level,
    machine: &Machine,
    cfg: GuardConfig,
    hook: Option<StepHook<'_>>,
) -> GuardedCompile {
    let lowered = lower(&w.program);
    let oracle = workload_oracle(w, &lowered);
    let mut guard = Guard::new(cfg, Some(&oracle));
    if let Some(h) = hook {
        guard = guard.with_hook(h);
    }

    let mut module = lowered.module;
    let ucfg = UnrollConfig { vlen: machine.vlen, ..Default::default() };
    let report = guarded_apply_level(&mut module, level, &ucfg, &mut guard);

    let mut superblocks = SuperblockReport::default();
    let kept = guard.step(&mut module, "superblock-formation", |m| {
        superblocks = form_superblocks(m, &SuperblockConfig::default());
    });
    if !kept {
        superblocks = SuperblockReport::default();
    }
    let mut schedules = Vec::new();
    let kept = guard.step(&mut module, "list-schedule", |m| {
        schedules = schedule_module(m, machine);
    });
    if !kept {
        schedules = Vec::new();
    }

    let regs = ilpc_regalloc::measure(&module.func);
    let static_insts = module.func.num_insts();
    GuardedCompile {
        compiled: Compiled {
            module,
            shadow: lowered.shadow_syms,
            report,
            superblocks,
            regs,
            static_insts,
            schedules,
        },
        guard: guard.report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilpc_workloads::{build, table2};

    #[test]
    fn compiles_dotprod_across_levels() {
        let meta = table2().into_iter().find(|m| m.name == "dotprod").unwrap();
        let w = build(&meta, 0.05);
        let mut prev_regs = 0;
        for level in Level::ALL {
            let c = compile(&w, level, &Machine::issue(8));
            ilpc_ir::verify::verify_module(&c.module).unwrap();
            // Register usage grows (weakly) with transformation level.
            assert!(
                c.regs.total() + 4 >= prev_regs,
                "{level}: regs {} < prev {prev_regs}",
                c.regs.total()
            );
            prev_regs = c.regs.total();
            if level == Level::Lev4 {
                assert!(c.report.accumulators_expanded >= 1);
            }
        }
    }

    #[test]
    fn maxval_gets_search_expansion_and_superblocks() {
        let meta = table2().into_iter().find(|m| m.name == "maxval").unwrap();
        let w = build(&meta, 0.05);
        let c = compile(&w, Level::Lev4, &Machine::issue(8));
        assert!(c.superblocks.merges > 0, "{:?}", c.superblocks);
        assert!(
            c.report.searches_expanded >= 1,
            "search expansion expected: {:?}",
            c.report
        );
    }
}
