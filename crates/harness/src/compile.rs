//! The full compilation pipeline: lower → transformation level →
//! superblock formation → list scheduling → register measurement.

use ilpc_core::ablation::{apply_set, TransformSet};
use ilpc_core::level::{apply_level, Level, TransformReport};
use ilpc_core::unroll::UnrollConfig;
use ilpc_ir::ast::VarId;
use ilpc_ir::lower::lower;
use ilpc_ir::{Module, SymId};
use ilpc_machine::Machine;
use ilpc_regalloc::RegUsage;
use ilpc_sched::{form_superblocks, schedule_module, SuperblockConfig, SuperblockReport};
use ilpc_workloads::Workload;
use std::collections::HashMap;

/// A compiled workload ready for simulation.
#[derive(Debug, Clone)]
pub struct Compiled {
    pub module: Module,
    /// Assigned scalar → shadow output symbol (for result comparison).
    pub shadow: HashMap<VarId, SymId>,
    /// Transformation application counts.
    pub report: TransformReport,
    /// Superblock formation counts.
    pub superblocks: SuperblockReport,
    /// Peak register usage of the scheduled code.
    pub regs: RegUsage,
    /// Static instruction count after compilation.
    pub static_insts: usize,
}

fn finish(
    mut module: Module,
    shadow: HashMap<VarId, SymId>,
    report: TransformReport,
    machine: &Machine,
) -> Compiled {
    let superblocks = form_superblocks(&mut module, &SuperblockConfig::default());
    schedule_module(&mut module, machine);
    let regs = ilpc_regalloc::measure(&module.func);
    let static_insts = module.func.num_insts();
    Compiled { module, shadow, report, superblocks, regs, static_insts }
}

/// Compile `w` at `level` for `machine`.
pub fn compile(w: &Workload, level: Level, machine: &Machine) -> Compiled {
    let lowered = lower(&w.program);
    let mut module = lowered.module;
    let report = apply_level(&mut module, level, &UnrollConfig::default());
    finish(module, lowered.shadow_syms, report, machine)
}

/// Compile `w` with an arbitrary transformation subset (ablation studies).
pub fn compile_set(w: &Workload, set: &TransformSet, machine: &Machine) -> Compiled {
    let lowered = lower(&w.program);
    let mut module = lowered.module;
    let report = apply_set(&mut module, set, &UnrollConfig::default());
    finish(module, lowered.shadow_syms, report, machine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilpc_workloads::{build, table2};

    #[test]
    fn compiles_dotprod_across_levels() {
        let meta = table2().into_iter().find(|m| m.name == "dotprod").unwrap();
        let w = build(&meta, 0.05);
        let mut prev_regs = 0;
        for level in Level::ALL {
            let c = compile(&w, level, &Machine::issue(8));
            ilpc_ir::verify::verify_module(&c.module).unwrap();
            // Register usage grows (weakly) with transformation level.
            assert!(
                c.regs.total() + 4 >= prev_regs,
                "{level}: regs {} < prev {prev_regs}",
                c.regs.total()
            );
            prev_regs = c.regs.total();
            if level == Level::Lev4 {
                assert!(c.report.accumulators_expanded >= 1);
            }
        }
    }

    #[test]
    fn maxval_gets_search_expansion_and_superblocks() {
        let meta = table2().into_iter().find(|m| m.name == "maxval").unwrap();
        let w = build(&meta, 0.05);
        let c = compile(&w, Level::Lev4, &Machine::issue(8));
        assert!(c.superblocks.merges > 0, "{:?}", c.superblocks);
        assert!(
            c.report.searches_expanded >= 1,
            "search expansion expected: {:?}",
            c.report
        );
    }
}
