//! VLEN × issue-width sweep for the SLP vectorization subsystem (Lev6).
//!
//! Crosses the 40-loop grid with vector lengths {1, 2, 4, 8} and issue
//! widths {1, 4, 8} on one work-stealing pool (one scenario per VLEN —
//! VLEN is compile-relevant, so each gets its own artifact-cache keys).
//! Reports, per loop: the Lev4 scalar speedup and the Lev6 speedup at
//! every VLEN (issue-8, over the issue-1 Conv base), plus the number of
//! SLP packs formed. Then checks the subsystem's two structural
//! invariants on the measured data:
//!
//! * **VLEN = 1 is Lev4**: at vector length 1 the SLP pass must be a
//!   structural no-op, so Lev6 cycle counts equal Lev4's on every
//!   (loop, width) point.
//! * **Vectorization never miscompiles**: every point already passed the
//!   differential check against the AST interpreter inside `evaluate`
//!   (a failure would surface as a grid error, and any error aborts).
//!
//! ```text
//! cargo run --release -p ilpc-harness --bin vlen-sweep \
//!     [-- --scale 0.25] [--quick]
//! ```
//!
//! `--quick` shrinks the sweep (VLEN {1, 4}, widths {1, 8}, scale 0.05)
//! for smoke runs; `scripts/verify.sh` runs it that way. Output is
//! deterministic for a given argument set.

use ilpc_core::level::Level;
use ilpc_harness::compile::compile;
use ilpc_harness::sweep::{run_sweep, Scenario, Sweep, SweepConfig};
use ilpc_machine::Machine;
use ilpc_workloads::build_all;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut scale = if quick { 0.05 } else { 0.25f64 };
    if let Some(k) = args.iter().position(|a| a == "--scale") {
        scale = args[k + 1].parse().expect("scale");
    }
    let vlens: Vec<u32> = if quick { vec![1, 4] } else { vec![1, 2, 4, 8] };
    let widths: Vec<u32> = if quick { vec![1, 8] } else { vec![1, 4, 8] };
    let levels = vec![Level::Conv, Level::Lev4, Level::Lev6];

    eprintln!(
        "sweeping {} loops x VLEN {vlens:?} x width {widths:?} (scale {scale})...",
        40
    );
    let sweep: Sweep = run_sweep(&SweepConfig {
        scale,
        levels,
        widths: widths.clone(),
        scenarios: vlens.iter().map(|&v| Scenario::vlen(v)).collect(),
        ..SweepConfig::default()
    })
    .expect("sweep config rejected");
    for (s, g) in sweep.scenarios.iter().zip(&sweep.grids) {
        assert!(g.errors.is_empty(), "scenario {}: {:#?}", s.label, g.errors);
    }

    // Pack census is width-independent: one compile per (loop, VLEN).
    let workloads = build_all(scale);
    let packs: Vec<Vec<usize>> = workloads
        .iter()
        .map(|w| {
            vlens
                .iter()
                .map(|&v| {
                    compile(w, Level::Lev6, &Machine::issue(8).with_vlen(v))
                        .report
                        .packs_formed
                })
                .collect()
        })
        .collect();

    // Per-loop table: issue-8 speedups over the scenario's own issue-1
    // Conv base (Conv is VLEN-insensitive, so the bases agree).
    let w8 = *widths.last().unwrap();
    print!("{:<10} {:>9}", "loop", format!("Lev4/w{w8}"));
    for &v in &vlens {
        print!(" {:>9}", format!("Lev6/v{v}"));
    }
    println!(" {:>6}", "packs");
    let mut vectorized = 0usize;
    for (wi, w) in workloads.iter().enumerate() {
        let g0 = &sweep.grids[0];
        print!(
            "{:<10} {:>8.2}x",
            w.meta.name,
            g0.speedup(w.meta.name, Level::Lev4, w8).unwrap()
        );
        for (si, _) in vlens.iter().enumerate() {
            let s = sweep.grids[si].speedup(w.meta.name, Level::Lev6, w8).unwrap();
            print!(" {:>8.2}x", s);
        }
        let max_packs = *packs[wi].iter().max().unwrap();
        println!(" {:>6}", max_packs);
        if max_packs > 0 {
            vectorized += 1;
        }
    }

    println!();
    for (si, &v) in vlens.iter().enumerate() {
        let g = &sweep.grids[si];
        let names = workloads.iter().map(|w| w.meta.name);
        let mean = g.mean_speedup(names, Level::Lev6, w8);
        println!(
            "VLEN {v}: issue-{w8} mean Lev6 speedup = {:.2}x",
            mean.complete().expect("full coverage")
        );
    }
    println!("{vectorized}/40 loops form at least one SLP pack");

    // Invariant: VLEN = 1 is cycle-identical to Lev4 at every width.
    let v1 = vlens.iter().position(|&v| v == 1).expect("VLEN 1 in sweep");
    let mut mismatches = 0usize;
    for w in &workloads {
        for &width in &widths {
            let c4 = sweep.grids[v1].point(w.meta.name, Level::Lev4, width).unwrap().cycles;
            let c6 = sweep.grids[v1].point(w.meta.name, Level::Lev6, width).unwrap().cycles;
            if c4 != c6 {
                eprintln!(
                    "MISMATCH {} w{width}: Lev4 {c4} cycles, Lev6/v1 {c6} cycles",
                    w.meta.name
                );
                mismatches += 1;
            }
        }
    }
    assert_eq!(mismatches, 0, "VLEN=1 must be cycle-identical to Lev4");
    println!("VLEN=1 cycle-identical to Lev4 on all {} points", 40 * widths.len());
    println!(
        "artifact cache: {} compiles, {} hits; {} steals",
        sweep.cache.compiles, sweep.cache.hits, sweep.steals.steals
    );
}
