//! Print the paper's Table 1 (instruction latencies).
fn main() {
    println!("{}", ilpc_harness::figures::render_table1());
}
