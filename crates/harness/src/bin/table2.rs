//! Print the paper's Table 2 (loop nest descriptions).
fn main() {
    println!("{}", ilpc_harness::figures::render_table2());
}
