//! Software pipelining vs. superblock-scheduled unrolling — the comparison
//! the paper leaves open ("[software pipelining] methods also benefit from
//! dependence elimination but the effect of the transformations on these
//! methods is not evaluated in this study").
//!
//! For every inner loop that is a single block without internal control
//! flow, this study reports:
//!
//! * `swp II` — the initiation interval iterative modulo scheduling
//!   achieves on the *conventional* (not unrolled) loop body, i.e. the
//!   steady-state cycles/iteration of software pipelining;
//! * `resMII` / `recMII` — its resource and recurrence lower bounds;
//! * `unroll c/i` — cycles per original iteration of the Lev4-transformed,
//!   unrolled, superblock-scheduled main loop (schedule length divided by
//!   the unroll factor).
//!
//! ```text
//! cargo run --release -p ilpc-harness --bin swp [-- --scale 0.5]
//! ```

use ilpc_analysis::LoopForest;
use ilpc_core::level::Level;
use ilpc_harness::compile::compile;
use ilpc_machine::Machine;
use ilpc_sched::modulo::{modulo_schedule, pipelinable_loops};
use ilpc_sched::schedule_insts;
use ilpc_workloads::build_all;

fn main() {
    let mut scale = 1.0f64;
    let args: Vec<String> = std::env::args().collect();
    if let Some(k) = args.iter().position(|a| a == "--scale") {
        scale = args[k + 1].parse().expect("scale");
    }
    let machine = Machine::issue(8);

    println!(
        "{:<14}{:>8}{:>8}{:>8}{:>12}{:>10}",
        "loop", "swp II", "resMII", "recMII", "unroll c/i", "winner"
    );
    let mut swp_wins = 0usize;
    let mut unroll_wins = 0usize;
    let mut ties = 0usize;

    for w in build_all(scale) {
        // Software pipelining candidate: the Conv-level inner loop body.
        let conv = compile(&w, Level::Conv, &machine);
        let bodies = pipelinable_loops(&conv.module);
        let Some((insts, carried)) = bodies.into_iter().next() else {
            continue;
        };
        let Some(swp) = modulo_schedule(&insts, &machine, &carried) else {
            continue;
        };

        // Unrolled + Lev4 + superblock comparison point.
        let lev4 = compile(&w, Level::Lev4, &machine);
        let factor = if lev4.report.loops_unrolled > 0 {
            lev4.report.unroll_factor_total as f64
                / lev4.report.loops_unrolled as f64
        } else {
            1.0
        };
        // Largest inner-loop block = the unrolled main body.
        let forest = LoopForest::compute(&lev4.module.func);
        let lv = ilpc_analysis::Liveness::compute(&lev4.module.func);
        let mut best: Option<u32> = None;
        for lp in forest.inner_loops() {
            let total: usize = lp
                .blocks
                .iter()
                .map(|&b| lev4.module.func.block(b).insts.len())
                .sum();
            if lp.blocks.len() == 1 && total > 4 {
                let sched = schedule_insts(
                    &lev4.module.func.block(lp.blocks[0]).insts,
                    &machine,
                    &|t| lv.live_in(t).clone(),
                );
                let len = sched.length();
                if best.is_none_or(|b| len > b) {
                    best = Some(len);
                }
            }
        }
        let Some(main_len) = best else { continue };
        let unroll_rate = main_len as f64 / factor;

        let winner = if (swp.ii as f64) < unroll_rate * 0.95 {
            swp_wins += 1;
            "swp"
        } else if unroll_rate < swp.ii as f64 * 0.95 {
            unroll_wins += 1;
            "unroll"
        } else {
            ties += 1;
            "tie"
        };
        println!(
            "{:<14}{:>8}{:>8}{:>8}{:>12.2}{:>10}",
            w.meta.name, swp.ii, swp.res_mii, swp.rec_mii, unroll_rate, winner
        );
    }
    println!();
    println!(
        "software pipelining wins {swp_wins}, unrolling+Lev4 wins \
         {unroll_wins}, ties {ties}"
    );
    println!();
    println!("note: swp II is measured on the CONVENTIONAL body — it needs no");
    println!("unrolling or renaming, but its recurrence bound contains exactly");
    println!("the chains that accumulator/induction expansion break, so the");
    println!("Lev4 expansions would lower recMII for software pipelining too,");
    println!("confirming the paper's conjecture.");
}
