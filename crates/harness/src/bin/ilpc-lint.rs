//! Static legality audit of the full compiled grid.
//!
//! Usage: ilpc-lint [--quick] [--json] [--verbose] [--scale F]
//!
//! Compiles all 40 workloads at every transformation level for issue
//! widths 1, 4 and 8 (40 × 5 × 3 = 600 artifacts at full size), then runs
//! the `ilpc-lint` dataflow lints on each compiled module and the static
//! schedule auditor on its retained list schedules. Every diagnostic is
//! printed — as text lines, or as JSON lines with `--json` — followed by
//! a per-severity summary. Exits 1 if any error-severity diagnostic
//! appears anywhere in the grid: the healthy pipeline is expected to be
//! lint-clean, so a nonzero exit means a pass or the scheduler produced
//! statically illegal code.
//!
//! `--quick` audits issue width 4 only (200 artifacts) for CI smoke use.
//! Text mode prints errors only unless `--verbose`; JSON mode always
//! emits every diagnostic.

use ilpc_core::level::Level;
use ilpc_harness::compile::compile;
use ilpc_lint::json::{obj, Json};
use ilpc_lint::{audit_schedules, count_severity, lint_module, sort_diagnostics, Severity};
use ilpc_machine::Machine;
use ilpc_workloads::build_all;

fn main() {
    let mut scale = 0.02_f64;
    let mut quick = false;
    let mut json = false;
    let mut verbose = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--json" => json = true,
            "--verbose" => verbose = true,
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale F");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: ilpc-lint [--quick] [--json] [--verbose] [--scale F]");
                std::process::exit(2);
            }
        }
    }

    let widths: &[u32] = if quick { &[4] } else { &[1, 4, 8] };
    let workloads = build_all(scale);

    let mut artifacts = 0usize;
    let mut totals = [0usize; 3]; // note, warning, error
    for w in &workloads {
        for level in Level::ALL {
            for &width in widths {
                let machine = Machine::issue(width);
                let c = compile(w, level, &machine);
                let mut diags = lint_module(&c.module);
                diags.extend(audit_schedules(&c.module, &c.schedules, &machine));
                sort_diagnostics(&mut diags);
                artifacts += 1;
                totals[0] += count_severity(&diags, Severity::Note);
                totals[1] += count_severity(&diags, Severity::Warning);
                totals[2] += count_severity(&diags, Severity::Error);
                for d in &diags {
                    if json {
                        println!(
                            "{}",
                            obj([
                                ("workload", Json::str(w.meta.name)),
                                ("level", Json::str(level.to_string())),
                                ("width", Json::num(width)),
                                ("diag", d.to_json()),
                            ])
                        );
                    } else if verbose || d.severity == Severity::Error {
                        println!("{}/{level}/w{width}: {d}", w.meta.name);
                    }
                }
            }
        }
    }

    let line = format!(
        "{artifacts} artifacts audited: {} error(s), {} warning(s), {} note(s)",
        totals[2], totals[1], totals[0]
    );
    if json {
        println!(
            "{}",
            obj([
                ("artifacts", Json::num(artifacts as f64)),
                ("errors", Json::num(totals[2] as f64)),
                ("warnings", Json::num(totals[1] as f64)),
                ("notes", Json::num(totals[0] as f64)),
            ])
        );
    } else {
        println!("{line}");
    }
    if totals[2] > 0 {
        eprintln!("FAIL: {} error-severity diagnostic(s)", totals[2]);
        std::process::exit(1);
    }
}
