//! Seeded fault-injection campaign against the transformation firewall.
//!
//! Usage: fault-campaign [--quick] [--faults N] [--seed S] [--scale F]
//!
//! Injects N deterministic faults (IR corruptions inside guarded
//! compilation steps, plus machine latency-table corruptions) across the
//! 40 workloads, classifies every outcome, and prints the summary table.
//! Exits nonzero if any fault silently escapes — wrong architectural
//! results with nothing flagged.

use ilpc_harness::campaign::{run_campaign, CampaignConfig};

fn main() {
    let mut cfg = CampaignConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next().unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--quick" => cfg.faults = 120,
            "--faults" => cfg.faults = take("--faults").parse().expect("--faults N"),
            "--seed" => cfg.seed = take("--seed").parse().expect("--seed S"),
            "--scale" => cfg.scale = take("--scale").parse().expect("--scale F"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: fault-campaign [--quick] [--faults N] [--seed S] [--scale F]");
                std::process::exit(2);
            }
        }
    }

    let report = run_campaign(&cfg);
    print!("{}", report.render());

    let escapes = report.silent_escapes();
    if escapes > 0 {
        eprintln!("FAIL: {escapes} silent escape(s)");
        std::process::exit(1);
    }
    println!("OK: zero silent escapes");
}
