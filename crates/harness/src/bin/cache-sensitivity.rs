//! Cache sensitivity study: how much of the Lev1–Lev4 transformation gains
//! survive a finite memory hierarchy.
//!
//! The paper's node processor (§3.1) assumes a 100 % data-cache hit rate,
//! so every headline speedup is an upper bound. This study sweeps L1
//! capacity × miss latency over the 40-workload grid at Conv..Lev4 and
//! reports, per (level, width): the mean speedup over the issue-1 Conv
//! *perfect-memory* baseline, the aggregate L1 hit rate, and the fraction
//! of the perfect-memory speedup retained.
//!
//! ```text
//! cargo run --release -p ilpc-harness --bin cache-sensitivity \
//!     [-- --scale 0.25] [--quick]
//! ```
//!
//! `--quick` shrinks the sweep (fewer cache points, levels and widths) for
//! smoke runs; `scripts/verify.sh` runs it with `--scale 0.02 --quick`.
//! Output is deterministic for a given argument set.

use ilpc_core::level::Level;
use ilpc_harness::artifact::ArtifactCache;
use ilpc_harness::grid::{run_grid, Grid, GridConfig};
use ilpc_machine::{CacheParams, MemConfig};
use std::sync::Arc;

fn grid_for(
    mem: MemConfig,
    scale: f64,
    levels: &[Level],
    widths: &[u32],
    artifacts: &Arc<ArtifactCache>,
) -> Grid {
    let grid = run_grid(&GridConfig {
        scale,
        levels: levels.to_vec(),
        widths: widths.to_vec(),
        mem,
        artifacts: Some(Arc::clone(artifacts)),
        ..GridConfig::default()
    })
    .expect("grid config rejected");
    assert!(grid.errors.is_empty(), "{:#?}", grid.errors);
    // Acceptance invariant: consistent cache statistics on every point.
    for m in &grid.meta {
        for &level in levels {
            for &width in widths {
                let s = grid.point(m.name, level, width).unwrap().mem;
                assert_eq!(
                    s.accesses(),
                    s.hits() + s.misses(),
                    "{} {level} issue-{width}: inconsistent stats {s:?}",
                    m.name
                );
            }
        }
    }
    grid
}

/// Mean speedup of `(level, width)` in `g` over the shared perfect-memory
/// issue-1 Conv baseline.
fn mean_speedup(g: &Grid, base: &Grid, level: Level, width: u32) -> f64 {
    let mut sum = 0.0;
    for m in &g.meta {
        let b = base.point(m.name, Level::Conv, 1).unwrap().cycles as f64;
        let c = g.point(m.name, level, width).unwrap().cycles as f64;
        sum += b / c;
    }
    sum / g.meta.len() as f64
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = 0.25f64;
    if let Some(k) = args.iter().position(|a| a == "--scale") {
        scale = args[k + 1].parse().expect("scale");
    }
    let quick = args.iter().any(|a| a == "--quick");

    let levels: Vec<Level> = if quick {
        vec![Level::Conv, Level::Lev2, Level::Lev4]
    } else {
        Level::ALL.to_vec()
    };
    let widths: Vec<u32> = if quick { vec![8] } else { vec![4, 8] };

    // L1 capacity sweep (4-word = 32-byte lines, 2-way): 0.5 KiB .. 32 KiB.
    let sizes: &[(&str, u32)] = if quick {
        &[("0.5KiB", 8), ("8KiB", 128)]
    } else {
        &[("0.5KiB", 8), ("2KiB", 32), ("8KiB", 128), ("32KiB", 512)]
    };
    let miss_lats: &[u32] = if quick { &[30] } else { &[10, 30, 100] };

    println!("cache-sensitivity: transformation gains under a finite memory hierarchy");
    println!("baseline: issue-1 Conv, perfect memory; scale {scale}");
    println!();

    // Every grid carries the (Conv, issue-1) baseline axes: `run_grid`
    // validates them, and a self-contained grid is what lets the perfect
    // and cached runs share one artifact cache with a clean invariant.
    let mut eval_widths = widths.clone();
    if !eval_widths.contains(&1) {
        eval_widths.push(1);
    }
    let mut eval_levels = levels.clone();
    if !eval_levels.contains(&Level::Conv) {
        eval_levels.push(Level::Conv);
    }
    // One shared artifact cache across the whole sweep: compilation depends
    // only on the machine's compile key, so every memory configuration
    // below reuses the compiled + pre-decoded artifacts built here.
    let artifacts = Arc::new(ArtifactCache::new());
    let perfect = grid_for(MemConfig::Perfect, scale, &eval_levels, &eval_widths, &artifacts);

    let header = |tag: &str| {
        print!("{:<30} {:>5} {:>7}", tag, "width", "hit%");
        for &level in &levels {
            print!(" {:>7}", format!("{level}"));
        }
        println!("   (retained at top level)");
    };
    header("configuration");
    for &width in &widths {
        print!("{:<30} {:>5} {:>7}", "perfect (upper bound)", width, "100.0");
        for &level in &levels {
            print!(" {:>6.2}x", mean_speedup(&perfect, &perfect, level, width));
        }
        println!();
    }
    println!();

    for &(size_name, sets) in sizes {
        for &lat in miss_lats {
            let params = CacheParams::new(4, sets, 2, lat, lat);
            let g =
                grid_for(MemConfig::Cache(params), scale, &eval_levels, &eval_widths, &artifacts);
            let tag = format!("L1 {size_name} ({}) m{lat}", params.name());
            for &width in &widths {
                let hit = g
                    .hit_rate(g.meta.iter().map(|m| m.name), *levels.last().unwrap(), width)
                    .complete()
                    .expect("clean grid must aggregate completely");
                print!("{:<30} {:>5} {:>7.1}", tag, width, hit * 100.0);
                for &level in &levels {
                    print!(" {:>6.2}x", mean_speedup(&g, &perfect, level, width));
                }
                let top = *levels.last().unwrap();
                let retained = mean_speedup(&g, &perfect, top, width)
                    / mean_speedup(&perfect, &perfect, top, width);
                println!("   ({:.0}%)", retained * 100.0);
            }
        }
        println!();
    }

    // The sweep varied only the memory hierarchy, so every (workload,
    // level, width) must have been compiled exactly once — the remaining
    // grid passes are pure artifact-cache hits. This is the acceptance
    // invariant for the compile-artifact cache; fail loudly if it slips.
    let c = artifacts.counters();
    let distinct = 40 * eval_levels.len() * eval_widths.len();
    println!(
        "artifact cache: {} compiles / {} hits ({} distinct artifacts), \
reference interp: {} runs / {} hits",
        c.compiles, c.hits, artifacts.distinct_artifacts(), c.ref_runs, c.ref_hits
    );
    assert_eq!(
        c.compiles as usize, distinct,
        "memory-config sweep must compile once per (workload, level, width)"
    );
    assert_eq!(artifacts.distinct_artifacts(), distinct);
    assert_eq!(c.ref_runs, 40, "one reference interpretation per workload");
    println!();

    println!("speedup = mean over the 40 loops vs the issue-1 Conv perfect-memory");
    println!("baseline; hit% = aggregate L1 hit rate at the highest level shown.");
    println!("Where hit rates fall, unrolling+expansion gains collapse toward the");
    println!("memory bound — the part of the paper's story the 100%-hit model hides.");
}
