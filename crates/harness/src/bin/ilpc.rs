//! `ilpc` — command-line driver for the ILPC compiler.
//!
//! ```text
//! ilpc list                                 # Table 2 workload catalog
//! ilpc emit  <loop> [--level L] [--scale S] # compiled code (text format)
//! ilpc run   <loop> [--level L] [--width W] # compile + simulate + verify
//! ilpc trace <loop> [--level L] [--width W] # per-instruction issue times
//! ilpc exec  <file.ilpc> [--width W]        # simulate a text-format module
//!
//! `--level lev6 --vlen N` compiles through the SLP vectorizer.
//! ```
//!
//! The `emit`/`exec` pair round-trips through the stable text format of
//! `ilpc_ir::text`, so compiled code can be inspected, edited and re-run.

use ilpc_core::level::Level;
use ilpc_harness::compile::compile;
use ilpc_harness::run::run_compiled;
use ilpc_machine::Machine;
use ilpc_sched::schedule_insts;
use ilpc_sim::simulate;
use ilpc_workloads::{build, table2};

struct Args {
    cmd: String,
    target: Option<String>,
    level: Level,
    width: u32,
    vlen: u32,
    scale: f64,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        usage();
    }
    let mut args = Args {
        cmd: argv[0].clone(),
        target: None,
        level: Level::Lev4,
        width: 8,
        vlen: 1,
        scale: 1.0,
    };
    let mut k = 1;
    while k < argv.len() {
        match argv[k].as_str() {
            "--level" => {
                args.level = match argv[k + 1].as_str() {
                    "conv" | "Conv" => Level::Conv,
                    "lev1" | "Lev1" => Level::Lev1,
                    "lev2" | "Lev2" => Level::Lev2,
                    "lev3" | "Lev3" => Level::Lev3,
                    "lev4" | "Lev4" => Level::Lev4,
                    "lev6" | "Lev6" => Level::Lev6,
                    other => die(&format!("unknown level {other}")),
                };
                k += 2;
            }
            "--width" => {
                args.width = argv[k + 1].parse().unwrap_or_else(|_| die("bad width"));
                if args.width == 0 {
                    die("width must be at least 1");
                }
                k += 2;
            }
            "--vlen" => {
                args.vlen = argv[k + 1].parse().unwrap_or_else(|_| die("bad vlen"));
                if args.vlen == 0 {
                    die("vlen must be at least 1");
                }
                k += 2;
            }
            "--scale" => {
                args.scale = argv[k + 1].parse().unwrap_or_else(|_| die("bad scale"));
                k += 2;
            }
            other if args.target.is_none() && !other.starts_with("--") => {
                args.target = Some(other.to_string());
                k += 1;
            }
            other => die(&format!("unknown argument {other}")),
        }
    }
    args
}

fn usage() -> ! {
    eprintln!(
        "usage: ilpc <list|emit|run|trace|exec> [target] \
         [--level conv|lev1..lev4|lev6] [--width N] [--vlen N] [--scale S]"
    );
    std::process::exit(2);
}

fn die(msg: &str) -> ! {
    eprintln!("ilpc: {msg}");
    std::process::exit(2);
}

fn workload(args: &Args) -> ilpc_workloads::Workload {
    let name = args.target.as_deref().unwrap_or_else(|| usage());
    let meta = table2()
        .into_iter()
        .find(|m| m.name == name)
        .unwrap_or_else(|| die(&format!("unknown loop nest {name}; try `ilpc list`")));
    build(&meta, args.scale)
}

fn main() {
    let args = parse_args();
    let machine = Machine::issue(args.width).with_vlen(args.vlen);
    match args.cmd.as_str() {
        "list" => {
            println!(
                "{:<14}{:<9}{:>6}{:>8}{:>6}  {:<10}{:>6}",
                "name", "suite", "size", "iters", "nest", "type", "conds"
            );
            for m in table2() {
                println!(
                    "{:<14}{:<9}{:>6}{:>8}{:>6}  {:<10}{:>6}",
                    m.name,
                    m.suite.to_string(),
                    m.size,
                    m.iters,
                    m.nest,
                    m.ltype.name(),
                    if m.conds { "yes" } else { "no" }
                );
            }
        }
        "emit" => {
            let w = workload(&args);
            let c = compile(&w, args.level, &machine);
            print!("{}", ilpc_ir::text::serialize(&c.module));
        }
        "run" => {
            let w = workload(&args);
            let c = compile(&w, args.level, &machine);
            match run_compiled(&w, &c, &machine) {
                Ok(p) => {
                    println!("loop:          {}", w.meta.name);
                    println!("level/machine: {} on {}", args.level, machine.name());
                    println!("cycles:        {}", p.cycles);
                    println!("dyn insts:     {}", p.dyn_insts);
                    println!("ipc:           {:.2}", p.dyn_insts as f64 / p.cycles as f64);
                    println!("registers:     {} ({} int + {} flt + {} vec)",
                        p.regs.total(), p.regs.int, p.regs.flt, p.regs.vec);
                    println!("static insts:  {}", p.static_insts);
                    println!("transforms:    {:?}", c.report);
                    println!("verified:      results match the AST interpreter");
                }
                Err(e) => die(&format!("verification failed: {e}")),
            }
        }
        "trace" => {
            let w = workload(&args);
            let c = compile(&w, args.level, &machine);
            let lv = ilpc_analysis::Liveness::compute(&c.module.func);
            for &bid in c.module.func.layout_order() {
                let b = c.module.func.block(bid);
                println!("B{} ({}):", bid.0, b.label);
                let sched =
                    schedule_insts(&b.insts, &machine, &|t| lv.live_in(t).clone());
                for (inst, t) in sched.insts.iter().zip(&sched.times) {
                    println!("  IT {t:>4}  {inst}");
                }
            }
        }
        "exec" => {
            let path = args.target.as_deref().unwrap_or_else(|| usage());
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
            let module = ilpc_ir::text::parse(&text)
                .unwrap_or_else(|e| die(&format!("{path}: {e}")));
            ilpc_ir::verify::verify_module(&module)
                .unwrap_or_else(|e| die(&format!("{path}: invalid module: {e}")));
            let (_, total) = module.symtab.layout();
            match simulate(&module, &machine, vec![0; total], 1_000_000_000) {
                Ok(r) => {
                    println!("cycles:    {}", r.cycles);
                    println!("dyn insts: {}", r.dyn_insts);
                    for (id, s) in module.symtab.iter() {
                        let v = ilpc_sim::read_symbol(&module.symtab, &r.memory, id);
                        println!("{}: {v:?}", s.name);
                    }
                }
                Err(e) => die(&format!("simulation failed: {e}")),
            }
        }
        _ => usage(),
    }
}
