//! Print the paper's §3.2/§4 summary statistics (average speedups by level
//! and issue rate, DOALL vs non-DOALL split, register growth).
use ilpc_harness::grid::{run_grid, GridConfig};

fn main() {
    let grid = run_grid(&GridConfig::default()).expect("grid config rejected");
    assert!(grid.errors.is_empty(), "{:#?}", grid.errors);
    println!("{}", ilpc_harness::figures::render_summary(&grid));
}
