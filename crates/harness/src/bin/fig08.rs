//! Regenerate the paper's Figure 08. See `report` for all outputs at once.
use ilpc_harness::figures::*;
use ilpc_harness::grid::{run_grid, GridConfig};

fn main() {
    let cfg = GridConfig::default();
    let grid = run_grid(&cfg).expect("grid config rejected");
    assert!(grid.errors.is_empty(), "{:#?}", grid.errors);
    let out = match "08" {
        "08" => render_histogram(
            "Figure 8: speedup distribution, issue-2",
            &speedup_histogram(&grid, 2, Bins::fig8(), Subset::All),
        ),
        "09" => render_histogram(
            "Figure 9: speedup distribution, issue-4",
            &speedup_histogram(&grid, 4, Bins::fig9(), Subset::All),
        ),
        "10" => render_histogram(
            "Figure 10: speedup distribution, issue-8",
            &speedup_histogram(&grid, 8, Bins::fig10(), Subset::All),
        ),
        "11" => render_histogram(
            "Figure 11: register usage distribution, issue-8",
            &regs_histogram(&grid, 8, Subset::All),
        ),
        "12" => render_histogram(
            "Figure 12: speedup distribution, DOALL loops, issue-8",
            &speedup_histogram(&grid, 8, Bins::fig10(), Subset::Doall),
        ),
        "13" => render_histogram(
            "Figure 13: register usage, DOALL loops, issue-8",
            &regs_histogram(&grid, 8, Subset::Doall),
        ),
        "14" => render_histogram(
            "Figure 14: speedup distribution, non-DOALL loops, issue-8",
            &speedup_histogram(&grid, 8, Bins::fig10(), Subset::NonDoall),
        ),
        "15" => render_histogram(
            "Figure 15: register usage, non-DOALL loops, issue-8",
            &regs_histogram(&grid, 8, Subset::NonDoall),
        ),
        _ => unreachable!(),
    };
    println!("{out}");
}
