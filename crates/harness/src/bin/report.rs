//! Full evaluation report: every table and figure of the paper in one run.
//!
//! ```text
//! cargo run --release -p ilpc-harness --bin report [-- --scale 1.0 --threads N]
//! ```

use ilpc_harness::figures::{
    regs_histogram, render_histogram, render_per_loop, render_summary,
    speedup_histogram, Bins, Subset,
};
use ilpc_harness::grid::{run_grid, GridConfig};

fn parse_args() -> GridConfig {
    let mut cfg = GridConfig::default();
    let args: Vec<String> = std::env::args().collect();
    let mut k = 1;
    while k < args.len() {
        match args[k].as_str() {
            "--scale" => {
                cfg.scale = args[k + 1].parse().expect("scale");
                k += 2;
            }
            "--threads" => {
                cfg.threads = args[k + 1].parse().expect("threads");
                k += 2;
            }
            other => panic!("unknown argument {other}"),
        }
    }
    cfg
}

fn main() {
    let cfg = parse_args();
    eprintln!(
        "running grid: 40 loops x {} levels x {:?} (scale {})...",
        cfg.levels.len(),
        cfg.widths,
        cfg.scale
    );
    let grid = match run_grid(&cfg) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("CONFIG ERROR: {e}");
            std::process::exit(2);
        }
    };
    if !grid.errors.is_empty() {
        eprintln!("EVALUATION ERRORS:");
        for e in &grid.errors {
            eprintln!("  {e}");
        }
        std::process::exit(1);
    }

    println!("{}", ilpc_harness::figures::render_table1());
    println!("{}", ilpc_harness::figures::render_table2());
    for (title, width, bins) in [
        ("Figure 8: speedup distribution, issue-2", 2u32, Bins::fig8()),
        ("Figure 9: speedup distribution, issue-4", 4, Bins::fig9()),
        ("Figure 10: speedup distribution, issue-8", 8, Bins::fig10()),
    ] {
        let h = speedup_histogram(&grid, width, bins, Subset::All);
        println!("{}", render_histogram(title, &h));
    }
    println!(
        "{}",
        render_histogram(
            "Figure 11: register usage distribution, issue-8",
            &regs_histogram(&grid, 8, Subset::All)
        )
    );
    println!(
        "{}",
        render_histogram(
            "Figure 12: speedup distribution, DOALL loops, issue-8",
            &speedup_histogram(&grid, 8, Bins::fig10(), Subset::Doall)
        )
    );
    println!(
        "{}",
        render_histogram(
            "Figure 13: register usage, DOALL loops, issue-8",
            &regs_histogram(&grid, 8, Subset::Doall)
        )
    );
    println!(
        "{}",
        render_histogram(
            "Figure 14: speedup distribution, non-DOALL loops, issue-8",
            &speedup_histogram(&grid, 8, Bins::fig10(), Subset::NonDoall)
        )
    );
    println!(
        "{}",
        render_histogram(
            "Figure 15: register usage, non-DOALL loops, issue-8",
            &regs_histogram(&grid, 8, Subset::NonDoall)
        )
    );
    println!("{}", render_summary(&grid));
    println!("== Per-loop speedups (issue-8) ==");
    println!("{}", render_per_loop(&grid, 8));
}
