//! Per-transformation ablation study (the paper's §3.2 narrative, made
//! quantitative): for each advanced transformation, measure issue-8 mean
//! speedup with it *removed from Lev4* (leave-one-out) and with it as the
//! *only addition to Lev2* (only-one). Also counts how many loops each
//! transformation fires in, reproducing "induction variable expansion is
//! the most often applied transformation".
//!
//! ```text
//! cargo run --release -p ilpc-harness --bin ablation [-- --scale 0.5]
//! ```

use ilpc_core::ablation::TransformSet;
use ilpc_core::level::Level;
use ilpc_harness::compile::compile_set;
use ilpc_harness::run::{evaluate_set, run_compiled};
use ilpc_machine::Machine;
use ilpc_workloads::{build_all, Workload};

fn mean_speedup(workloads: &[Workload], bases: &[u64], set: &TransformSet) -> f64 {
    let machine = Machine::issue(8);
    let mut sum = 0.0;
    for (w, &base) in workloads.iter().zip(bases) {
        let p = evaluate_set(w, set, &machine)
            .unwrap_or_else(|e| panic!("{}: {e}", w.meta.name));
        sum += base as f64 / p.cycles as f64;
    }
    sum / workloads.len() as f64
}

fn main() {
    let mut scale = 1.0f64;
    let args: Vec<String> = std::env::args().collect();
    if let Some(k) = args.iter().position(|a| a == "--scale") {
        scale = args[k + 1].parse().expect("scale");
    }
    let workloads = build_all(scale);
    eprintln!("measuring baselines...");
    let machine1 = Machine::base();
    let bases: Vec<u64> = workloads
        .iter()
        .map(|w| {
            evaluate_set(w, &TransformSet::none(), &machine1)
                .unwrap_or_else(|e| panic!("{}: {e}", w.meta.name))
                .cycles
        })
        .collect();

    let lev2 = mean_speedup(&workloads, &bases, &TransformSet::of_level(Level::Lev2));
    let lev4 = mean_speedup(&workloads, &bases, &TransformSet::all());
    println!("issue-8 mean speedup:  Lev2 = {lev2:.2}x   Lev4 = {lev4:.2}x");
    println!();
    println!(
        "{:<10} {:>13} {:>13} {:>12}",
        "transform", "Lev4 without", "Lev2 + only", "fires in"
    );
    for name in TransformSet::NAMES {
        let without = mean_speedup(&workloads, &bases, &TransformSet::all_but(name));
        let only = mean_speedup(&workloads, &bases, &TransformSet::lev2_plus(name));
        // Application counts at Lev4.
        let machine = Machine::issue(8);
        let fires = workloads
            .iter()
            .filter(|w| {
                let c = compile_set(w, &TransformSet::all(), &machine);
                // Validate while we are here.
                run_compiled(w, &c, &machine).unwrap();
                let r = &c.report;
                match name {
                    "combine" => r.combines > 0,
                    "strength" => r.strength_reductions > 0,
                    "threduce" => r.trees_reduced > 0,
                    "accum" => r.accumulators_expanded > 0,
                    "induct" => r.inductions_expanded > 0,
                    "search" => r.searches_expanded > 0,
                    _ => unreachable!(),
                }
            })
            .count();
        println!(
            "{:<10} {:>12.2}x {:>12.2}x {:>9}/40",
            name, without, only, fires
        );
    }
    println!();
    println!("reading: 'Lev4 without' below Lev4 ({lev4:.2}x) = the");
    println!("transformation contributes; 'Lev2 + only' above Lev2");
    println!("({lev2:.2}x) = it helps even alone.");
}
