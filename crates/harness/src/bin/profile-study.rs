//! Static-estimate vs profile-driven superblock formation (IMPACT used
//! execution profiles to select traces; our front end only estimates
//! branch probabilities). Reported for the loops with conditionals —
//! the only ones where trace selection matters.
//!
//! ```text
//! cargo run --release -p ilpc-harness --bin profile-study [-- --scale 0.5]
//! ```

use ilpc_core::level::Level;
use ilpc_harness::profile::evaluate_with_profile;
use ilpc_harness::run::evaluate;
use ilpc_machine::Machine;
use ilpc_workloads::build_all;

fn main() {
    let mut scale = 1.0f64;
    let args: Vec<String> = std::env::args().collect();
    if let Some(k) = args.iter().position(|a| a == "--scale") {
        scale = args[k + 1].parse().expect("scale");
    }
    let machine = Machine::issue(8);

    println!(
        "{:<12} {:>10} {:>10} {:>8}",
        "loop", "static", "profiled", "ratio"
    );
    for w in build_all(scale) {
        if !w.meta.conds {
            continue;
        }
        let stat = evaluate(&w, Level::Lev4, &machine)
            .unwrap_or_else(|e| panic!("{e}"));
        let prof = evaluate_with_profile(&w, Level::Lev4, &machine)
            .unwrap_or_else(|e| panic!("{e}"));
        println!(
            "{:<12} {:>10} {:>10} {:>8.3}",
            w.meta.name,
            stat.cycles,
            prof.cycles,
            prof.cycles as f64 / stat.cycles as f64
        );
    }
    println!();
    println!("cycles at Lev4/issue-8; ratio < 1 means the measured profile");
    println!("beat the front end's static estimates. Both runs are verified");
    println!("against the interpreter.");
}
