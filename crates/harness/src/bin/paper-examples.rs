//! Reproduce the paper's §2 worked examples (Figures 1, 3, 5, 6, 7):
//! build each kernel, run the real transformation pass, schedule on the
//! unlimited-issue machine, and print measured vs paper cycle counts.

use ilpc_harness::examples_paper::{all_examples, measure};
use ilpc_machine::Machine;
use ilpc_sched::schedule_insts;

fn main() {
    let verbose = std::env::args().any(|a| a == "--verbose");
    println!(
        "{:<8} {:>8} {:>8} {:>6}  description",
        "example", "measured", "paper", "iters"
    );
    for e in all_examples() {
        let got = measure(&e);
        println!(
            "{:<8} {:>8} {:>8} {:>6}  {}",
            e.name, got, e.paper_cycles, e.iterations, e.description
        );
        if verbose {
            let machine = Machine::unlimited();
            let lv = ilpc_analysis::Liveness::compute(&e.module.func);
            let sched = schedule_insts(
                &e.module.func.block(e.body).insts,
                &machine,
                &|t| lv.live_in(t).clone(),
            );
            for (inst, t) in sched.insts.iter().zip(&sched.times) {
                println!("    IT {t:>3}  {inst}");
            }
        }
        assert_eq!(got, e.paper_cycles, "{} diverges from the paper", e.name);
    }
    println!("\nall worked examples match the paper");
}
