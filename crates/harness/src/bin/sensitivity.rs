//! Machine sensitivity study: how the transformation levels behave when the
//! issue-8 processor's functional units are restricted — the "more
//! restricted processor model" the paper alludes to when discussing
//! strength reduction. Memory ports are the binding resource for the
//! unrolled DOALL loops; FP units bind the expanded reductions.
//!
//! ```text
//! cargo run --release -p ilpc-harness --bin sensitivity [-- --scale 0.5]
//! ```

use ilpc_core::level::Level;
use ilpc_harness::run::evaluate;
use ilpc_machine::Machine;
use ilpc_workloads::build_all;

fn main() {
    let mut scale = 1.0f64;
    let args: Vec<String> = std::env::args().collect();
    if let Some(k) = args.iter().position(|a| a == "--scale") {
        scale = args[k + 1].parse().expect("scale");
    }
    let workloads = build_all(scale);

    let slow_loads = |cycles: u32| {
        let mut m = Machine::issue(8);
        m.latency.load = cycles;
        m
    };
    let machines = [
        Machine::issue(8),
        Machine::issue(8).with_mem_ports(4),
        Machine::issue(8).with_mem_ports(2),
        Machine::issue(8).with_mem_ports(1),
        Machine::issue(8).with_fp_units(2),
        Machine::issue(8).with_mem_ports(2).with_fp_units(2),
        slow_loads(4),
        slow_loads(8),
    ];

    eprintln!("measuring baselines...");
    let bases: Vec<u64> = workloads
        .iter()
        .map(|w| {
            evaluate(w, Level::Conv, &Machine::base())
                .unwrap_or_else(|e| panic!("{e}"))
                .cycles
        })
        .collect();

    println!(
        "{:<22} {:>7} {:>7} {:>7}",
        "machine", "Conv", "Lev2", "Lev4"
    );
    for machine in &machines {
        let label = if machine.latency.load != 2 {
            format!("issue-8/load{}", machine.latency.load)
        } else {
            machine.name()
        };
        print!("{label:<22}");
        for level in [Level::Conv, Level::Lev2, Level::Lev4] {
            let mut sum = 0.0;
            for (w, &base) in workloads.iter().zip(&bases) {
                let p = evaluate(w, level, machine)
                    .unwrap_or_else(|e| panic!("{}: {e}", machine.name()));
                sum += base as f64 / p.cycles as f64;
            }
            print!(" {:>6.2}x", sum / workloads.len() as f64);
        }
        println!();
    }
    println!();
    println!("mean issue-8 speedup over the issue-1 Conv baseline; the");
    println!("transformed code's appetite for memory ports and FP units is");
    println!("what the unrestricted model hides.");
}
