//! The paper's §2 worked examples (Figures 1, 3, 5, 6, 7), reproduced with
//! the real transformation passes and the real scheduler.
//!
//! Each example builds the paper's "before" kernel as IR, applies the
//! transformation under discussion (register renaming, accumulator
//! expansion, induction variable expansion, operation combining, tree
//! height reduction), schedules the loop body on the unlimited-issue
//! machine the paper's examples assume, and reports the block completion
//! time — the paper's "N cycles / M iterations" metric.
//!
//! Expected values (from the paper):
//!
//! | Example | before | after |
//! |---------|--------|-------|
//! | Fig. 1 unroll 3 | 7 (1 iter) → 19 (3 iters) | renamed: 8 (3 iters) |
//! | Fig. 3 matmul   | 8 (1 iter) → 14 (3 iters) | accum-expanded: 10    |
//! | Fig. 5 strided  | 6 (1 iter) → 8 (3 iters)  | induction-expanded: 6 |
//! | Fig. 6 combine  | 7                          | 5                     |
//! | Fig. 7 threduce | 22                         | 13                    |

use ilpc_core::{
    accumulator_expand, induction_expand, operation_combine, rename_loops,
    tree_height_reduce,
};
use ilpc_ir::inst::MemLoc;
use ilpc_ir::{BlockId, Cond, Inst, Module, Opcode, Operand, Reg, RegClass};
use ilpc_machine::Machine;
use ilpc_sched::schedule_insts;

/// One worked example: name, module, loop-body block, paper's cycle counts.
pub struct PaperExample {
    pub name: &'static str,
    pub description: &'static str,
    pub module: Module,
    pub body: BlockId,
    /// Paper's cycles for this kernel.
    pub paper_cycles: u32,
    /// Iterations covered by the body (unroll factor).
    pub iterations: u32,
}

/// Completion cycles of the example's loop body on the unlimited machine.
pub fn measure(e: &PaperExample) -> u32 {
    let machine = Machine::unlimited();
    let lv = ilpc_analysis::Liveness::compute(&e.module.func);
    let sched = schedule_insts(&e.module.func.block(e.body).insts, &machine, &|t| {
        lv.live_in(t).clone()
    });
    sched.completion(&machine)
}

/// Figure 1's vector-add loop: `do j: C(j) = A(j) + B(j)`.
///
/// `unroll`=1 builds Figure 1b, `unroll`=3 builds Figure 1c; pass the
/// result of 1c through [`rename_loops`] for Figure 1d.
fn fig1_module(unroll: usize) -> (Module, BlockId) {
    let mut m = Module::new("fig1");
    let a = m.symtab.declare("A", 64, RegClass::Flt);
    let b = m.symtab.declare("B", 64, RegClass::Flt);
    let c = m.symtab.declare("C", 64, RegClass::Flt);
    let f = &mut m.func;
    let r1 = f.new_reg(RegClass::Int);
    let r5 = f.new_reg(RegClass::Int);
    let r2 = f.new_reg(RegClass::Flt);
    let r3 = f.new_reg(RegClass::Flt);
    let r4 = f.new_reg(RegClass::Flt);
    let entry = f.add_block("entry");
    let body = f.add_block("body");
    let exit = f.add_block("exit");
    f.block_mut(entry).insts.extend([
        Inst::mov(r1, Operand::ImmI(0)),
        Inst::mov(r5, Operand::ImmI(60)),
    ]);
    let mut insts = Vec::new();
    for p in 0..unroll as i64 {
        insts.push(Inst::load(r2, Operand::Sym(a), r1.into(), MemLoc::affine(a, 1, p)));
        insts.push(Inst::load(r3, Operand::Sym(b), r1.into(), MemLoc::affine(b, 1, p)));
        insts.push(Inst::alu(Opcode::FAdd, r4, r2.into(), r3.into()));
        insts.push(Inst::store(Operand::Sym(c), r1.into(), r4.into(), MemLoc::affine(c, 1, p)));
        insts.push(Inst::alu(Opcode::Add, r1, r1.into(), Operand::ImmI(1)));
    }
    insts.push(Inst::br(Cond::Lt, r1.into(), r5.into(), body));
    f.block_mut(body).insts = insts;
    f.block_mut(exit).insts.push(Inst::halt());
    (m, body)
}

/// Figure 3's matrix-multiply inner loop after register promotion:
/// `r1 += A(k)*B(k)` with two induction chains (already renamed for the
/// 3×-unrolled variant, exactly as Figure 3c shows).
fn fig3_module(unroll: usize, renamed: bool) -> (Module, BlockId) {
    let mut m = Module::new("fig3");
    let a = m.symtab.declare("A", 64, RegClass::Flt);
    let b = m.symtab.declare("B", 64, RegClass::Flt);
    let cc = m.symtab.declare("C", 4, RegClass::Flt);
    let f = &mut m.func;
    let acc = f.new_reg(RegClass::Flt); // r1f
    let r4 = f.new_reg(RegClass::Int); // A index
    let r6 = f.new_reg(RegClass::Int); // B index
    let r8 = f.new_reg(RegClass::Int); // B stride
    let r9 = f.new_reg(RegClass::Int); // bound
    let entry = f.add_block("entry");
    let body = f.add_block("body");
    let exit = f.add_block("exit");
    f.block_mut(entry).insts.extend([
        Inst::mov(r4, Operand::ImmI(0)),
        Inst::mov(r6, Operand::ImmI(0)),
        Inst::mov(r8, Operand::ImmI(1)),
        Inst::mov(r9, Operand::ImmI(60)),
        Inst::load(acc, Operand::Sym(cc), Operand::ImmI(0), MemLoc::affine(cc, 0, 0)),
    ]);
    let f = &mut m.func;
    let mut insts = Vec::new();
    let mut a_idx = r4;
    let mut b_idx = r6;
    for p in 0..unroll as i64 {
        let last = p + 1 == unroll as i64;
        let (ld_a, ld_b, prod) = (
            f.new_reg(RegClass::Flt),
            f.new_reg(RegClass::Flt),
            f.new_reg(RegClass::Flt),
        );
        insts.push(Inst::load(ld_a, Operand::Sym(a), a_idx.into(), MemLoc::affine(a, 1, p)));
        insts.push(Inst::load(ld_b, Operand::Sym(b), b_idx.into(), MemLoc::affine(b, 1, p)));
        insts.push(Inst::alu(Opcode::FMul, prod, ld_a.into(), ld_b.into()));
        insts.push(Inst::alu(Opcode::FAdd, acc, acc.into(), prod.into()));
        if renamed {
            let na = if last { r4 } else { f.new_reg(RegClass::Int) };
            let nb = if last { r6 } else { f.new_reg(RegClass::Int) };
            insts.push(Inst::alu(Opcode::Add, na, a_idx.into(), Operand::ImmI(1)));
            insts.push(Inst::alu(Opcode::Add, nb, b_idx.into(), r8.into()));
            a_idx = na;
            b_idx = nb;
        } else {
            insts.push(Inst::alu(Opcode::Add, r4, r4.into(), Operand::ImmI(1)));
            insts.push(Inst::alu(Opcode::Add, r6, r6.into(), r8.into()));
        }
    }
    insts.push(Inst::br(Cond::Lt, r4.into(), r9.into(), body));
    f.block_mut(body).insts = insts;
    f.block_mut(exit).insts.extend([
        Inst::store(Operand::Sym(cc), Operand::ImmI(0), acc.into(), MemLoc::affine(cc, 0, 0)),
        Inst::halt(),
    ]);
    (m, body)
}

/// The accumulator chain in Figure 3c threads *renamed* intermediate names;
/// building it faithfully requires running the renamer over the shared-name
/// form, which `fig3(renamed=false→rename_loops)` does.
fn fig3c() -> (Module, BlockId) {
    let (mut m, body) = fig3_module(3, false);
    rename_loops(&mut m);
    (m, body)
}

/// Figure 5: `C(j) = A(j)*B(j); j += K` unrolled 3× and renamed (5c).
fn fig5_module(unroll: usize) -> (Module, BlockId) {
    let mut m = Module::new("fig5");
    let a = m.symtab.declare("A", 80, RegClass::Flt);
    let b = m.symtab.declare("B", 80, RegClass::Flt);
    let cc = m.symtab.declare("C", 80, RegClass::Flt);
    let f = &mut m.func;
    let r1 = f.new_reg(RegClass::Int); // counter
    let r6 = f.new_reg(RegClass::Int); // bound
    let r7 = f.new_reg(RegClass::Int); // stride K
    let r2 = f.new_reg(RegClass::Int); // strided index (carried)
    let entry = f.add_block("entry");
    let body = f.add_block("body");
    let exit = f.add_block("exit");
    f.block_mut(entry).insts.extend([
        Inst::mov(r1, Operand::ImmI(0)),
        Inst::mov(r6, Operand::ImmI(24)),
        Inst::mov(r7, Operand::ImmI(2)),
        Inst::mov(r2, Operand::ImmI(0)),
    ]);
    let f = &mut m.func;
    let mut insts = Vec::new();
    let mut idx = r2;
    for p in 0..unroll {
        let last = p + 1 == unroll;
        let (va, vb, vp) = (
            f.new_reg(RegClass::Flt),
            f.new_reg(RegClass::Flt),
            f.new_reg(RegClass::Flt),
        );
        insts.push(Inst::load(va, Operand::Sym(a), idx.into(), MemLoc::opaque(a)));
        insts.push(Inst::load(vb, Operand::Sym(b), idx.into(), MemLoc::opaque(b)));
        insts.push(Inst::alu(Opcode::FMul, vp, va.into(), vb.into()));
        insts.push(Inst::store(Operand::Sym(cc), idx.into(), vp.into(), MemLoc::opaque(cc)));
        let next = if last { r2 } else { f.new_reg(RegClass::Int) };
        insts.push(Inst::alu(Opcode::Add, next, idx.into(), r7.into()));
        idx = next;
    }
    insts.push(Inst::alu(Opcode::Add, r1, r1.into(), Operand::ImmI(unroll as i64)));
    insts.push(Inst::br(Cond::Lt, r1.into(), r6.into(), body));
    f.block_mut(body).insts = insts;
    f.block_mut(exit).insts.push(Inst::halt());
    (m, body)
}

/// Figure 6: `i++; t = A(i+2) - 3.2; if (t < 10.0) continue`.
fn fig6_module() -> (Module, BlockId) {
    let mut m = Module::new("fig6");
    let a = m.symtab.declare("A", 64, RegClass::Flt);
    let f = &mut m.func;
    let r1 = f.new_reg(RegClass::Int);
    let r2 = f.new_reg(RegClass::Flt);
    let r3 = f.new_reg(RegClass::Flt);
    let entry = f.add_block("entry");
    let body = f.add_block("body");
    let exit = f.add_block("exit");
    f.block_mut(entry).insts.push(Inst::mov(r1, Operand::ImmI(0)));
    let mut ld = Inst::load(r2, Operand::Sym(a), r1.into(), MemLoc::opaque(a));
    ld.ext = 8;
    f.block_mut(body).insts.extend([
        Inst::alu(Opcode::Add, r1, r1.into(), Operand::ImmI(4)),
        ld,
        Inst::alu(Opcode::FSub, r3, r2.into(), Operand::ImmF(3.2)),
        Inst::br(Cond::Lt, r3.into(), Operand::ImmF(10.0), body),
    ]);
    f.block_mut(exit).insts.push(Inst::halt());
    (m, body)
}

/// Figure 7: `A = B * (C + D) * E * F / G`, left-associated.
fn fig7_module() -> (Module, BlockId) {
    let mut m = Module::new("fig7");
    let sym = m.symtab.declare("A", 8, RegClass::Flt);
    let f = &mut m.func;
    let regs: Vec<Reg> = (0..6).map(|_| f.new_reg(RegClass::Flt)).collect();
    let t1 = f.new_reg(RegClass::Flt);
    let t2 = f.new_reg(RegClass::Flt);
    let t3 = f.new_reg(RegClass::Flt);
    let t4 = f.new_reg(RegClass::Flt);
    let res = f.new_reg(RegClass::Flt);
    let entry = f.add_block("entry");
    let body = f.add_block("body");
    let exit = f.add_block("exit");
    // Inputs loaded in the entry block, the store of the result in the exit
    // block: the example counts only the expression computation.
    for (k, &r) in regs.iter().enumerate() {
        let ld = Inst::load(r, Operand::Sym(sym), Operand::ImmI(k as i64), MemLoc::affine(sym, 0, k as i64));
        f.block_mut(entry).insts.push(ld);
    }
    f.block_mut(body).insts.extend([
        Inst::alu(Opcode::FAdd, t1, regs[1].into(), regs[2].into()),
        Inst::alu(Opcode::FMul, t2, t1.into(), regs[0].into()),
        Inst::alu(Opcode::FMul, t3, t2.into(), regs[3].into()),
        Inst::alu(Opcode::FMul, t4, t3.into(), regs[4].into()),
        Inst::alu(Opcode::FDiv, res, t4.into(), regs[5].into()),
    ]);
    f.block_mut(exit).insts.extend([
        Inst::store(Operand::Sym(sym), Operand::ImmI(7), res.into(), MemLoc::affine(sym, 0, 7)),
        Inst::halt(),
    ]);
    (m, body)
}

/// Build every worked example, before and after its transformation.
pub fn all_examples() -> Vec<PaperExample> {
    let mut out = Vec::new();

    let (m, b) = fig1_module(1);
    out.push(PaperExample {
        name: "fig1b",
        description: "vector add, conventional (7 cycles / 1 iteration)",
        module: m,
        body: b,
        paper_cycles: 7,
        iterations: 1,
    });
    let (m, b) = fig1_module(3);
    out.push(PaperExample {
        name: "fig1c",
        description: "unrolled 3x, shared registers (19 cycles / 3 iterations)",
        module: m,
        body: b,
        paper_cycles: 19,
        iterations: 3,
    });
    let (mut m, b) = fig1_module(3);
    rename_loops(&mut m);
    out.push(PaperExample {
        name: "fig1d",
        description: "unrolled 3x + register renaming (8 cycles / 3 iterations)",
        module: m,
        body: b,
        paper_cycles: 8,
        iterations: 3,
    });

    let (m, b) = fig3_module(1, false);
    out.push(PaperExample {
        name: "fig3b",
        description: "matmul inner loop, conventional (8 cycles / 1 iteration)",
        module: m,
        body: b,
        paper_cycles: 8,
        iterations: 1,
    });
    let (m, b) = fig3c();
    out.push(PaperExample {
        name: "fig3c",
        description: "unrolled 3x + renaming (14 cycles / 3 iterations)",
        module: m,
        body: b,
        paper_cycles: 14,
        iterations: 3,
    });
    let (mut m, b) = fig3c();
    let n = accumulator_expand(&mut m);
    assert_eq!(n, 1, "fig3d accumulator must expand");
    out.push(PaperExample {
        name: "fig3d",
        description: "+ accumulator variable expansion (10 cycles / 3 iterations)",
        module: m,
        body: b,
        paper_cycles: 10,
        iterations: 3,
    });

    let (m, b) = fig5_module(1);
    out.push(PaperExample {
        name: "fig5b",
        description: "strided loop, conventional (6 cycles / 1 iteration)",
        module: m,
        body: b,
        paper_cycles: 6,
        iterations: 1,
    });
    let (m, b) = fig5_module(3);
    out.push(PaperExample {
        name: "fig5c",
        description: "unrolled 3x + renaming (8 cycles / 3 iterations)",
        module: m,
        body: b,
        paper_cycles: 8,
        iterations: 3,
    });
    let (mut m, b) = fig5_module(3);
    let n = induction_expand(&mut m);
    assert_eq!(n, 1, "fig5d induction chain must expand");
    out.push(PaperExample {
        name: "fig5d",
        description: "+ induction variable expansion (6 cycles / 3 iterations)",
        module: m,
        body: b,
        paper_cycles: 6,
        iterations: 3,
    });

    let (m, b) = fig6_module();
    out.push(PaperExample {
        name: "fig6b",
        description: "guarded search kernel before combining (7 cycles)",
        module: m,
        body: b,
        paper_cycles: 7,
        iterations: 1,
    });
    let (mut m, b) = fig6_module();
    let n = operation_combine(&mut m);
    assert!(n >= 2, "fig6 needs both combinations, got {n}");
    out.push(PaperExample {
        name: "fig6c",
        description: "after operation combining (5 cycles)",
        module: m,
        body: b,
        paper_cycles: 5,
        iterations: 1,
    });

    let (m, b) = fig7_module();
    out.push(PaperExample {
        name: "fig7b",
        description: "A = B*(C+D)*E*F/G, conventional (22 cycles)",
        module: m,
        body: b,
        paper_cycles: 22,
        iterations: 1,
    });
    let (mut m, b) = fig7_module();
    let n = tree_height_reduce(&mut m);
    assert_eq!(n, 1, "fig7 chain must rebalance");
    out.push(PaperExample {
        name: "fig7c",
        description: "after tree height reduction (13 cycles)",
        module: m,
        body: b,
        paper_cycles: 13,
        iterations: 1,
    });

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every §2 worked example reproduces the paper's cycle count exactly.
    #[test]
    fn paper_cycle_counts_reproduced() {
        for e in all_examples() {
            let got = measure(&e);
            assert_eq!(
                got, e.paper_cycles,
                "{}: {} — got {got}, paper says {}",
                e.name, e.description, e.paper_cycles
            );
        }
    }
}
