//! # ilpc-harness — experimental evaluation harness
//!
//! Drives the full pipeline over the paper's evaluation grid
//! ({Conv..Lev4} × {issue-1,2,4,8} × 40 loop nests), verifies every run
//! against the AST interpreter, and renders each of the paper's tables and
//! figures (Tables 1-2, Figures 8-15, the §3.2/§4 summary statistics, and
//! the §2 worked examples).

pub mod artifact;
pub mod campaign;
pub mod compile;
pub mod examples_paper;
pub mod figures;
pub mod grid;
pub mod profile;
pub mod run;
pub mod steal;
pub mod sweep;

pub use artifact::{Artifact, ArtifactCache, CacheCounters};
pub use campaign::{run_campaign, CampaignConfig, CampaignReport, Outcome};
pub use compile::{compile, compile_guarded, compile_set, Compiled, GuardedCompile};
pub use grid::{
    run_grid, run_grid_forkjoin, Aggregate, Grid, GridConfig, GridConfigError, GridError,
    PointError, Sabotage, SabotageMode,
};
pub use profile::{compile_with_profile, evaluate_with_profile};
pub use run::{evaluate, evaluate_set, run_compiled, EvalPoint};
pub use steal::StealStats;
pub use sweep::{run_sweep, Scenario, Sweep, SweepConfig};
