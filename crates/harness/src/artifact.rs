//! Compile-artifact cache for parameter sweeps.
//!
//! A sweep point is (workload, level, machine) — but compilation only
//! depends on the machine's *compile key* ([`Machine::compile_key`]: issue
//! width, FU limits, latency table, load speculativity), never on the
//! memory hierarchy, which retimes execution without changing code. A
//! cache-sensitivity sweep over N memory configurations therefore
//! re-compiles (and re-decodes, and re-interprets the reference program
//! for) every grid point N times for byte-identical artifacts.
//!
//! [`ArtifactCache`] deduplicates that work across concurrent grid
//! workers: one entry per `(workload, level, compile-config hash)` holding
//! the compiled module *and* its pre-decoded program
//! ([`ilpc_sim::DecodedProgram`]), plus one reference interpreter
//! execution per workload. Exactly-once construction under concurrency
//! comes from a per-key `OnceLock` fetched under a brief map lock: the
//! first thread to arrive compiles while the map stays unlocked, later
//! threads (and blocked racers) reuse the filled cell and count a hit.
//!
//! ## Contract
//!
//! A cache is bound to one workload catalog at one trip-count scale:
//! entries are keyed by workload *name*, so sharing a cache between grids
//! built with different `scale` values would silently mix trip counts.
//! Build one `Arc<ArtifactCache>` per sweep (one scale, many memory
//! configurations) and drop it with the sweep.

use crate::compile::{compile, Compiled};
use crate::run::{cycle_budget, verify_against_reference, EvalPoint};
use ilpc_core::level::Level;
use ilpc_ir::interp::{interpret, ExecState};
use ilpc_machine::Machine;
use ilpc_sim::{decode, memory_from_init, simulate_decoded, DecodedProgram, SimLimits};
use ilpc_workloads::Workload;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// One cached compilation product: the compiled module (register usage,
/// static counts, shadow symbols for verification) and its pre-decoded
/// simulator program.
pub struct Artifact {
    pub compiled: Compiled,
    pub decoded: DecodedProgram,
    /// The machine projection the artifact was built for.
    pub compile_key: Machine,
}

/// Cumulative counter snapshot of one cache (see [`ArtifactCache`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheCounters {
    /// Artifact lookups served from an already-built entry.
    pub hits: u64,
    /// Artifact lookups that compiled (exactly one per distinct key).
    pub compiles: u64,
    /// Reference-interpreter lookups served from cache.
    pub ref_hits: u64,
    /// Reference-interpreter executions (exactly one per workload).
    pub ref_runs: u64,
}

/// Concurrency-safe compile-artifact + reference-execution cache.
pub struct ArtifactCache {
    artifacts: Mutex<HashMap<(String, Level, u64), Arc<OnceLock<Arc<Artifact>>>>>,
    refs: Mutex<HashMap<String, Arc<OnceLock<Arc<ExecState>>>>>,
    hits: AtomicU64,
    compiles: AtomicU64,
    ref_hits: AtomicU64,
    ref_runs: AtomicU64,
}

impl Default for ArtifactCache {
    fn default() -> ArtifactCache {
        ArtifactCache::new()
    }
}

impl fmt::Debug for ArtifactCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = self.counters();
        f.debug_struct("ArtifactCache")
            .field("hits", &c.hits)
            .field("compiles", &c.compiles)
            .field("ref_hits", &c.ref_hits)
            .field("ref_runs", &c.ref_runs)
            .finish()
    }
}

impl ArtifactCache {
    pub fn new() -> ArtifactCache {
        ArtifactCache {
            artifacts: Mutex::new(HashMap::new()),
            refs: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            compiles: AtomicU64::new(0),
            ref_hits: AtomicU64::new(0),
            ref_runs: AtomicU64::new(0),
        }
    }

    /// Counter snapshot (consistent enough for reporting; each counter is
    /// individually exact).
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            compiles: self.compiles.load(Ordering::Relaxed),
            ref_hits: self.ref_hits.load(Ordering::Relaxed),
            ref_runs: self.ref_runs.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct artifacts built so far.
    pub fn distinct_artifacts(&self) -> usize {
        self.artifacts.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// The artifact for `(w, level, machine.compile_key())`, compiling at
    /// most once per key no matter how many threads race here.
    pub fn artifact(&self, w: &Workload, level: Level, machine: &Machine) -> Arc<Artifact> {
        let key = (w.meta.name.to_string(), level, machine.compile_config_hash());
        // Fetch (or plant) the per-key cell under a brief map lock, then
        // build outside it: concurrent misses on *different* keys compile
        // in parallel, racers on the same key block only on that key.
        let cell = {
            let mut map = self.artifacts.lock().unwrap_or_else(|p| p.into_inner());
            map.entry(key).or_insert_with(|| Arc::new(OnceLock::new())).clone()
        };
        let mut built = false;
        let artifact = cell
            .get_or_init(|| {
                built = true;
                self.compiles.fetch_add(1, Ordering::Relaxed);
                let compiled = compile(w, level, machine);
                let decoded = decode(&compiled.module, machine);
                Arc::new(Artifact { compiled, decoded, compile_key: machine.compile_key() })
            })
            .clone();
        if !built {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        artifact
    }

    /// The reference interpreter execution for `w`, run at most once.
    pub fn reference(&self, w: &Workload) -> Arc<ExecState> {
        let cell = {
            let mut map = self.refs.lock().unwrap_or_else(|p| p.into_inner());
            map.entry(w.meta.name.to_string())
                .or_insert_with(|| Arc::new(OnceLock::new()))
                .clone()
        };
        let mut ran = false;
        let state = cell
            .get_or_init(|| {
                ran = true;
                self.ref_runs.fetch_add(1, Ordering::Relaxed);
                Arc::new(interpret(&w.program, &w.init))
            })
            .clone();
        if !ran {
            self.ref_hits.fetch_add(1, Ordering::Relaxed);
        }
        state
    }

    /// Cache-aware equivalent of [`crate::run::evaluate`]: compile/decode
    /// and the reference execution come from the cache, the simulation
    /// runs the pre-decoded engine under this point's (possibly
    /// cache-laden) `machine`, and the result is differentially verified
    /// exactly like the uncached path.
    pub fn evaluate(
        &self,
        w: &Workload,
        level: Level,
        machine: &Machine,
    ) -> Result<EvalPoint, String> {
        let artifact = self.artifact(w, level, machine);
        let reference = self.reference(w);
        let mem = memory_from_init(&artifact.compiled.module.symtab, &w.init);
        let limits = SimLimits::cycles(cycle_budget(reference.stmts_executed));
        let res = simulate_decoded(&artifact.decoded, machine, mem, limits)
            .map_err(|e| format!("{}: {e}", w.meta.name))?;
        verify_against_reference(w, &artifact.compiled, &reference, &res.memory)?;
        Ok(EvalPoint {
            cycles: res.cycles,
            dyn_insts: res.dyn_insts,
            regs: artifact.compiled.regs,
            static_insts: artifact.compiled.static_insts,
            mem: res.mem,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::evaluate;
    use ilpc_mem::{CacheParams, MemConfig};
    use ilpc_workloads::{build, table2};

    fn workload(name: &str) -> Workload {
        let meta = table2().into_iter().find(|m| m.name == name).unwrap();
        build(&meta, 0.04)
    }

    /// Cached evaluation is bit-identical to the uncached path, and a
    /// memory-config sweep compiles each (workload, level, key) once.
    #[test]
    fn cached_evaluation_matches_uncached_and_compiles_once() {
        let cache = ArtifactCache::new();
        let w = workload("dotprod");
        let mems = [
            MemConfig::Perfect,
            MemConfig::Cache(CacheParams::small()),
            MemConfig::Cache(CacheParams::new(4, 8, 2, 30, 10)),
        ];
        for level in [Level::Conv, Level::Lev4] {
            for mem in mems {
                let machine = Machine::issue(8).with_mem(mem);
                let cached = cache.evaluate(&w, level, &machine).unwrap();
                let direct = evaluate(&w, level, &machine).unwrap();
                assert_eq!(cached.cycles, direct.cycles);
                assert_eq!(cached.dyn_insts, direct.dyn_insts);
                assert_eq!(cached.mem, direct.mem);
                assert_eq!(cached.static_insts, direct.static_insts);
            }
        }
        let c = cache.counters();
        // 2 levels × 3 memory configs = 6 lookups, 2 distinct compile keys.
        assert_eq!(c.compiles, 2, "{c:?}");
        assert_eq!(c.hits, 4, "{c:?}");
        assert_eq!(cache.distinct_artifacts(), 2);
        // One reference interpretation serves all 6 points.
        assert_eq!(c.ref_runs, 1, "{c:?}");
        assert_eq!(c.ref_hits, 5, "{c:?}");
    }

    /// Concurrent lookups of the same key build exactly one artifact.
    #[test]
    fn concurrent_lookups_compile_exactly_once() {
        let cache = ArtifactCache::new();
        let w = workload("add");
        let machine = Machine::issue(4);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    cache.evaluate(&w, Level::Lev2, &machine).unwrap();
                });
            }
        });
        let c = cache.counters();
        assert_eq!(c.compiles, 1, "{c:?}");
        assert_eq!(c.hits, 7, "{c:?}");
        assert_eq!(c.ref_runs, 1, "{c:?}");
    }
}
