//! Execution-driven evaluation of one (workload, level, machine) point,
//! with differential verification against the AST interpreter.

use crate::compile::{compile, Compiled};
use ilpc_core::level::Level;
use ilpc_ir::interp::{interpret, ExecState};
use ilpc_ir::value::{ArrayVal, Value};
use ilpc_ir::SymId;
use ilpc_machine::Machine;
use ilpc_mem::MemStats;
use ilpc_regalloc::RegUsage;
use ilpc_sim::{memory_from_init, read_symbol, simulate_limited, SimLimits};
use ilpc_workloads::Workload;

/// Relative tolerance for floating point result comparison. Expansion
/// transformations reassociate reductions (exactly as the paper's do), so
/// results differ in low-order bits.
pub const FLT_TOL: f64 = 1e-9;

/// Simulation cycle budget for a reference execution of `stmts_executed`
/// statements. Generous — issue-1 naive code runs well under 100
/// cycles/instruction — and saturating, so huge `GridConfig::scale`
/// values cannot wrap the budget around to a tiny number.
pub fn cycle_budget(stmts_executed: u64) -> u64 {
    stmts_executed.saturating_mul(4000).max(2_000_000)
}

/// One measured grid point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalPoint {
    pub cycles: u64,
    pub dyn_insts: u64,
    pub regs: RegUsage,
    pub static_insts: usize,
    /// Memory-hierarchy statistics (all hits under perfect memory).
    pub mem: MemStats,
}

/// Differentially verify a simulated memory image against the AST
/// interpreter's reference execution: every array, and every assigned
/// scalar via its shadow symbol. Shared by the compile-per-point path
/// ([`run_compiled`]) and the artifact-cache path
/// (`crate::artifact::ArtifactCache::evaluate`).
pub fn verify_against_reference(
    w: &Workload,
    compiled: &Compiled,
    reference: &ExecState,
    memory: &[u64],
) -> Result<(), String> {
    // Differential check: arrays...
    for (k, want) in reference.arrays.iter().enumerate() {
        let got = read_symbol(&compiled.module.symtab, memory, SymId(k as u32));
        let diff = got.max_rel_diff(want);
        if diff > FLT_TOL {
            return Err(format!(
                "{}: array {} differs by {diff:.2e}",
                w.meta.name,
                w.program.arrays[k].name
            ));
        }
    }
    // ... and assigned scalars via their shadow symbols.
    for (var, sym) in &compiled.shadow {
        let got = read_symbol(&compiled.module.symtab, memory, *sym);
        let want = reference.scalars[var.0 as usize];
        let ok = match (&got, want) {
            (ArrayVal::I(v), Value::I(x)) => v[0] == x,
            (ArrayVal::F(v), Value::F(x)) => {
                let scale = v[0].abs().max(x.abs()).max(1.0);
                (v[0] - x).abs() / scale <= FLT_TOL
            }
            _ => false,
        };
        if !ok {
            return Err(format!(
                "{}: scalar {} = {got:?}, expected {want:?}",
                w.meta.name, w.program.vars[var.0 as usize].name
            ));
        }
    }
    Ok(())
}

/// Simulate `compiled` and check its results against the interpreter.
pub fn run_compiled(
    w: &Workload,
    compiled: &Compiled,
    machine: &Machine,
) -> Result<EvalPoint, String> {
    let mem = memory_from_init(&compiled.module.symtab, &w.init);
    let reference = interpret(&w.program, &w.init);
    // Explicit budgets: the cycle limit bounds wall-clock, the derived
    // dynamic-instruction watchdog catches runaway wide-issue work that
    // burns few cycles but unbounded instructions.
    let limits = SimLimits::cycles(cycle_budget(reference.stmts_executed));
    let res = simulate_limited(&compiled.module, machine, mem, limits)
        .map_err(|e| format!("{}: {e}", w.meta.name))?;

    verify_against_reference(w, compiled, &reference, &res.memory)?;

    Ok(EvalPoint {
        cycles: res.cycles,
        dyn_insts: res.dyn_insts,
        regs: compiled.regs,
        static_insts: compiled.static_insts,
        mem: res.mem,
    })
}

/// Compile + simulate + verify one ablation point.
pub fn evaluate_set(
    w: &Workload,
    set: &ilpc_core::ablation::TransformSet,
    machine: &Machine,
) -> Result<EvalPoint, String> {
    let compiled = crate::compile::compile_set(w, set, machine);
    run_compiled(w, &compiled, machine)
}

/// Compile + simulate + verify one grid point.
pub fn evaluate(
    w: &Workload,
    level: Level,
    machine: &Machine,
) -> Result<EvalPoint, String> {
    let compiled = compile(w, level, machine);
    run_compiled(w, &compiled, machine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilpc_workloads::{build, table2};

    /// The core differential guarantee, exercised on a fast subset here;
    /// the full 40-loop × 5-level × 3-width sweep runs in the integration
    /// test suite.
    #[test]
    fn representative_loops_correct_at_all_levels() {
        // Collect every failing point instead of aborting on the first —
        // one broken configuration shouldn't hide the rest of the matrix.
        let mut failures = Vec::new();
        for name in ["add", "dotprod", "maxval", "merge", "LWS-1", "SDS-4"] {
            let meta = table2().into_iter().find(|m| m.name == name).unwrap();
            let w = build(&meta, 0.04);
            for level in Level::ALL {
                for width in [1, 4] {
                    if let Err(e) = evaluate(&w, level, &Machine::issue(width)) {
                        failures.push(format!("{name} {level} issue-{width}: {e}"));
                    }
                }
            }
        }
        assert!(failures.is_empty(), "{} failing points:\n{}", failures.len(), failures.join("\n"));
    }

    /// The budget never wraps, no matter how large the reference
    /// execution (e.g. an extreme `GridConfig::scale`).
    #[test]
    fn cycle_budget_saturates_instead_of_wrapping() {
        assert_eq!(cycle_budget(0), 2_000_000);
        assert_eq!(cycle_budget(1000), 4_000_000);
        for huge in [u64::MAX, u64::MAX / 2, u64::MAX / 4000 + 1] {
            assert_eq!(cycle_budget(huge), u64::MAX, "stmts = {huge}");
        }
        // Monotone around the saturation knee.
        let knee = u64::MAX / 4000;
        assert!(cycle_budget(knee) <= cycle_budget(knee + 1));
    }

    /// A budget-exceeded simulation surfaces as a clean `Err` from the
    /// differential runner, not a wrap-around or a panic.
    #[test]
    fn budget_exceeded_surfaces_as_clean_err() {
        let meta = table2().into_iter().find(|m| m.name == "add").unwrap();
        let w = build(&meta, 0.04);
        let machine = Machine::issue(1);
        let mut compiled = crate::compile::compile(&w, Level::Conv, &machine);
        // Tamper the compiled module into a runaway loop, the shape a
        // miscompile (or hand-edited `.ilpc`) would produce.
        let entry = compiled.module.func.entry();
        compiled.module.func.block_mut(entry).insts =
            vec![ilpc_ir::inst::Inst::jump(entry)];
        let err = run_compiled(&w, &compiled, &machine)
            .expect_err("runaway loop must not verify");
        assert!(err.contains("cycle limit"), "{err}");
    }

    /// Speedups behave sanely: higher level + wider issue never makes the
    /// canonical DOALL loop slower.
    #[test]
    fn add_speedup_monotone_in_level() {
        let meta = table2().into_iter().find(|m| m.name == "add").unwrap();
        let w = build(&meta, 0.2);
        let base = evaluate(&w, Level::Conv, &Machine::base()).unwrap().cycles;
        let conv8 = evaluate(&w, Level::Conv, &Machine::issue(8)).unwrap().cycles;
        let lev2 = evaluate(&w, Level::Lev2, &Machine::issue(8)).unwrap().cycles;
        let lev4 = evaluate(&w, Level::Lev4, &Machine::issue(8)).unwrap().cycles;
        assert!(conv8 <= base);
        assert!(lev2 < conv8, "renaming must speed up the DOALL loop");
        assert!(lev4 <= lev2 + lev2 / 10);
        // Lev2 on issue-8 should be several times faster than base.
        let speedup = base as f64 / lev2 as f64;
        assert!(speedup > 3.0, "speedup {speedup:.2}");
    }
}
