//! Rendering of the paper's tables and figures as text.
//!
//! Each figure in the paper is a histogram: the number of loops whose
//! speedup (or register usage) falls into each range, with one series per
//! transformation level. The binaries in `src/bin/` print these tables; the
//! integration tests assert their qualitative shape.

use crate::grid::Grid;
use ilpc_core::level::Level;
use ilpc_workloads::WorkloadMeta;
use std::fmt::Write;

/// Bin edges for a histogram; bin `k` covers `[edges[k], edges[k+1])`, the
/// last bin is open-ended.
#[derive(Debug, Clone)]
pub struct Bins {
    pub edges: Vec<f64>,
    pub labels: Vec<String>,
}

impl Bins {
    fn from_edges(edges: Vec<f64>, fmt1: impl Fn(f64, f64) -> String) -> Bins {
        let mut labels = Vec::new();
        for k in 0..edges.len() {
            if k + 1 < edges.len() {
                labels.push(fmt1(edges[k], edges[k + 1]));
            } else {
                labels.push(format!("{:.2}+", edges[k]));
            }
        }
        Bins { edges, labels }
    }

    /// Speedup bins of Figure 8 (issue-2).
    pub fn fig8() -> Bins {
        Bins::from_edges(
            vec![0.0, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0],
            |a, b| format!("{a:.2}-{:.2}", b - 0.01),
        )
    }

    /// Speedup bins of Figure 9 (issue-4).
    pub fn fig9() -> Bins {
        Bins::from_edges(
            vec![0.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 5.0, 6.0],
            |a, b| format!("{a:.2}-{:.2}", b - 0.01),
        )
    }

    /// Speedup bins of Figure 10 (issue-8; also Figures 12 and 14).
    pub fn fig10() -> Bins {
        Bins::from_edges(
            vec![0.0, 2.0, 2.5, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0],
            |a, b| format!("{a:.2}-{:.2}", b - 0.01),
        )
    }

    /// Register usage bins of Figure 11 (also Figures 13 and 15).
    pub fn fig11() -> Bins {
        Bins {
            edges: vec![0.0, 16.0, 32.0, 48.0, 64.0, 96.0, 128.0],
            labels: vec![
                "0-15".into(),
                "16-31".into(),
                "32-47".into(),
                "48-63".into(),
                "64-95".into(),
                "96-127".into(),
                "128+".into(),
            ],
        }
    }

    /// Index of the bin containing `v`.
    pub fn bin_of(&self, v: f64) -> usize {
        let mut k = 0;
        while k + 1 < self.edges.len() && v >= self.edges[k + 1] {
            k += 1;
        }
        k
    }
}

/// Loop subset selector for Figures 12-15.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Subset {
    All,
    Doall,
    NonDoall,
}

impl Subset {
    pub fn includes(self, m: &WorkloadMeta) -> bool {
        match self {
            Subset::All => true,
            Subset::Doall => m.ltype.is_doall(),
            Subset::NonDoall => !m.ltype.is_doall(),
        }
    }
}

/// Histogram counts: `counts[level][bin]`.
pub struct Histogram {
    pub bins: Bins,
    pub levels: Vec<Level>,
    pub counts: Vec<Vec<usize>>,
}

/// Build the speedup distribution histogram for `width` over `subset`.
pub fn speedup_histogram(
    grid: &Grid,
    width: u32,
    bins: Bins,
    subset: Subset,
) -> Histogram {
    let levels = Level::ALL.to_vec();
    let mut counts = vec![vec![0usize; bins.labels.len()]; levels.len()];
    for m in grid.meta.iter().filter(|m| subset.includes(m)) {
        for (li, &level) in levels.iter().enumerate() {
            if let Some(s) = grid.speedup(m.name, level, width) {
                counts[li][bins.bin_of(s)] += 1;
            }
        }
    }
    Histogram { bins, levels, counts }
}

/// Build the register usage histogram for `width` over `subset`.
pub fn regs_histogram(grid: &Grid, width: u32, subset: Subset) -> Histogram {
    let bins = Bins::fig11();
    let levels = Level::ALL.to_vec();
    let mut counts = vec![vec![0usize; bins.labels.len()]; levels.len()];
    for m in grid.meta.iter().filter(|m| subset.includes(m)) {
        for (li, &level) in levels.iter().enumerate() {
            if let Some(p) = grid.point(m.name, level, width) {
                counts[li][bins.bin_of(p.regs.total() as f64)] += 1;
            }
        }
    }
    Histogram { bins, levels, counts }
}

/// Render a histogram as a text table (ranges as rows, levels as columns).
pub fn render_histogram(title: &str, h: &Histogram) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = write!(out, "{:<14}", "range");
    for l in &h.levels {
        let _ = write!(out, "{:>6}", l.name());
    }
    let _ = writeln!(out);
    for (bi, label) in h.bins.labels.iter().enumerate() {
        let _ = write!(out, "{label:<14}");
        for (li, _) in h.levels.iter().enumerate() {
            let _ = write!(out, "{:>6}", h.counts[li][bi]);
        }
        let _ = writeln!(out);
    }
    out
}

/// Per-loop speedup/register dump (useful for EXPERIMENTS.md appendices).
pub fn render_per_loop(grid: &Grid, width: u32) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>9} {:>6} | {:>7} {:>7} {:>7} {:>7} {:>7} | {:>5}",
        "loop", "type", "conds", "Conv", "Lev1", "Lev2", "Lev3", "Lev4", "regs4"
    );
    for m in &grid.meta {
        let _ = write!(
            out,
            "{:<12} {:>9} {:>6} |",
            m.name,
            m.ltype.name(),
            if m.conds { "yes" } else { "no" }
        );
        for level in Level::ALL {
            let s = grid.speedup(m.name, level, width).unwrap_or(f64::NAN);
            let _ = write!(out, " {s:>7.2}");
        }
        let regs = grid
            .point(m.name, Level::Lev4, width)
            .map(|p| p.regs.total())
            .unwrap_or(0);
        let _ = writeln!(out, " | {regs:>5}");
    }
    out
}

/// The paper's §3.2/§4 summary statistics.
pub fn render_summary(grid: &Grid) -> String {
    let mut out = String::new();
    let all = || grid.meta.iter().map(|m| m.name);
    let doall = || {
        grid.meta
            .iter()
            .filter(|m| m.ltype.is_doall())
            .map(|m| m.name)
    };
    let nondoall = || {
        grid.meta
            .iter()
            .filter(|m| !m.ltype.is_doall())
            .map(|m| m.name)
    };

    let _ = writeln!(out, "== Average speedups over issue-1 Conv ==");
    let _ = writeln!(
        out,
        "{:<8} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "config", "Conv", "Lev1", "Lev2", "Lev3", "Lev4"
    );
    for width in [2u32, 4, 8] {
        let _ = write!(out, "issue-{width:<2}");
        for level in Level::ALL {
            let _ = write!(out, " {:>7.2}", grid.mean_speedup(all(), level, width));
        }
        let _ = writeln!(out);
    }

    let _ = writeln!(out, "\n== Issue-8 by loop class (paper §4) ==");
    for (label, iter) in [("DOALL", 0), ("non-DOALL", 1)] {
        let _ = write!(out, "{label:<10}");
        for level in Level::ALL {
            let v = if iter == 0 {
                grid.mean_speedup(doall(), level, 8)
            } else {
                grid.mean_speedup(nondoall(), level, 8)
            };
            let _ = write!(out, " {v:>7.2}");
        }
        let _ = writeln!(out);
    }

    // Transformation cost: dynamic and static instruction overhead.
    let _ = writeln!(out, "\n== Instruction overhead vs Conv (issue-8) ==");
    let _ = writeln!(out, "{:<5} {:>10} {:>10}", "level", "dyn", "static");
    let conv_dyn: f64 = grid
        .meta
        .iter()
        .filter_map(|m| grid.point(m.name, Level::Conv, 8))
        .map(|p| p.dyn_insts as f64)
        .sum();
    let conv_static: f64 = grid
        .meta
        .iter()
        .filter_map(|m| grid.point(m.name, Level::Conv, 8))
        .map(|p| p.static_insts as f64)
        .sum();
    for level in Level::ALL {
        let dynsum: f64 = grid
            .meta
            .iter()
            .filter_map(|m| grid.point(m.name, level, 8))
            .map(|p| p.dyn_insts as f64)
            .sum();
        let stsum: f64 = grid
            .meta
            .iter()
            .filter_map(|m| grid.point(m.name, level, 8))
            .map(|p| p.static_insts as f64)
            .sum();
        let _ = writeln!(
            out,
            "{:<5} {:>9.2}x {:>9.2}x",
            level.name(),
            dynsum / conv_dyn.max(1.0),
            stsum / conv_static.max(1.0)
        );
    }

    let _ = writeln!(out, "\n== Average registers (issue-8) ==");
    for level in Level::ALL {
        let _ = writeln!(
            out,
            "{:<5} {:>7.1}",
            level.name(),
            grid.mean_regs(all(), level, 8)
        );
    }
    // Register growth only over full coverage: a ratio of two partial
    // means (different holes in each) would be meaningless.
    let conv = grid.mean_regs(all(), Level::Conv, 8).complete();
    let lev4 = grid.mean_regs(all(), Level::Lev4, 8).complete();
    match (conv, lev4) {
        (Some(c), Some(l)) if c > 0.0 => {
            let _ = writeln!(out, "register growth Conv -> Lev4: {:.2}x", l / c);
        }
        _ => {
            let _ = writeln!(out, "register growth Conv -> Lev4: n/a (incomplete grid)");
        }
    }
    let under128 = grid
        .meta
        .iter()
        .filter(|m| {
            grid.point(m.name, Level::Lev4, 8)
                .map(|p| p.regs.total() < 128)
                .unwrap_or(false)
        })
        .count();
    let _ = writeln!(out, "loops under 128 registers at Lev4: {under128} / 40");
    out
}

/// The paper's Table 1 (instruction latencies) from the machine model.
pub fn render_table1() -> String {
    let t = ilpc_machine::TABLE1;
    let mut out = String::new();
    let _ = writeln!(out, "Table 1: Instruction latencies");
    let rows = [
        ("Int ALU", t.int_alu.to_string(), "FP ALU", t.fp_alu.to_string()),
        ("Int multiply", t.int_mul.to_string(), "FP conversion", t.fp_cvt.to_string()),
        ("Int divide", t.int_div.to_string(), "FP multiply", t.fp_mul.to_string()),
        ("branch", format!("{} / 1 slot", t.branch), "FP divide", t.fp_div.to_string()),
        ("memory load", t.load.to_string(), "memory store", t.store.to_string()),
    ];
    for (a, av, b, bv) in rows {
        let _ = writeln!(out, "{a:<14}{av:<12}{b:<15}{bv}");
    }
    out
}

/// The paper's Table 2 (loop nest descriptions) from the catalog.
pub fn render_table2() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 2: Description of loop nests");
    let _ = writeln!(
        out,
        "{:<14}{:>6}{:>8}{:>6}  {:<10}{:>6}",
        "Name", "Size", "Iters", "Nest", "Type", "Conds"
    );
    for m in ilpc_workloads::table2() {
        let _ = writeln!(
            out,
            "{:<14}{:>6}{:>8}{:>6}  {:<10}{:>6}",
            m.name,
            m.size,
            m.iters,
            m.nest,
            m.ltype.name(),
            if m.conds { "yes" } else { "no" }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_indexing() {
        let b = Bins::fig10();
        assert_eq!(b.bin_of(0.5), 0);
        assert_eq!(b.bin_of(2.0), 1);
        assert_eq!(b.bin_of(2.49), 1);
        assert_eq!(b.bin_of(7.2), 7);
        assert_eq!(b.bin_of(100.0), 8);
        assert_eq!(b.labels.len(), 9);
        let r = Bins::fig11();
        assert_eq!(r.bin_of(15.0), 0);
        assert_eq!(r.bin_of(16.0), 1);
        assert_eq!(r.bin_of(130.0), 6);
    }

    #[test]
    fn subset_filters() {
        let t = ilpc_workloads::table2();
        let doall = t.iter().filter(|m| Subset::Doall.includes(m)).count();
        let non = t.iter().filter(|m| Subset::NonDoall.includes(m)).count();
        assert_eq!(doall + non, 40);
        assert_eq!(doall, 18);
        assert!(t.iter().all(|m| Subset::All.includes(m)));
    }
}
