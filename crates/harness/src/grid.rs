//! The evaluation grid: every (loop, level, issue width) combination.
//!
//! The grid is embarrassingly parallel; points are distributed over worker
//! threads with `std::thread::scope` and an atomic work counter (fork-join,
//! no shared mutable state beyond the counter — data-race free by
//! construction).

use crate::run::{evaluate, EvalPoint};
use ilpc_core::level::Level;
use ilpc_machine::{Machine, MemConfig};
use ilpc_mem::MemStats;
use ilpc_workloads::{build_all, Workload, WorkloadMeta};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Grid configuration.
#[derive(Debug, Clone)]
pub struct GridConfig {
    /// Trip-count scale (1.0 = the paper's Table 2 counts).
    pub scale: f64,
    /// Levels to evaluate.
    pub levels: Vec<Level>,
    /// Issue widths to evaluate (1 is required: it is the speedup base).
    pub widths: Vec<u32>,
    /// Worker threads.
    pub threads: usize,
    /// Memory hierarchy applied to every machine in the grid (perfect by
    /// default — the paper's model).
    pub mem: MemConfig,
}

impl Default for GridConfig {
    fn default() -> GridConfig {
        GridConfig {
            scale: 1.0,
            levels: Level::ALL.to_vec(),
            widths: vec![1, 2, 4, 8],
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            mem: MemConfig::Perfect,
        }
    }
}

/// Results over the grid.
#[derive(Debug)]
pub struct Grid {
    pub meta: Vec<WorkloadMeta>,
    points: HashMap<(String, Level, u32), EvalPoint>,
    /// Evaluation failures, if any (fail loudly in reports).
    pub errors: Vec<String>,
}

impl Grid {
    /// Measured point for `(loop, level, width)`.
    pub fn point(&self, name: &str, level: Level, width: u32) -> Option<&EvalPoint> {
        self.points.get(&(name.to_string(), level, width))
    }

    /// Speedup of `(level, width)` over the paper's base configuration
    /// (issue-1, Conv) for one loop.
    pub fn speedup(&self, name: &str, level: Level, width: u32) -> Option<f64> {
        let base = self.point(name, Level::Conv, 1)?.cycles as f64;
        let this = self.point(name, level, width)?.cycles as f64;
        Some(base / this)
    }

    /// Arithmetic-mean speedup over a subset of loops.
    pub fn mean_speedup<'a>(
        &self,
        names: impl Iterator<Item = &'a str>,
        level: Level,
        width: u32,
    ) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for name in names {
            if let Some(s) = self.speedup(name, level, width) {
                sum += s;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Aggregate memory-hierarchy counters over a subset of loops.
    pub fn mem_stats<'a>(
        &self,
        names: impl Iterator<Item = &'a str>,
        level: Level,
        width: u32,
    ) -> MemStats {
        let mut sum = MemStats::default();
        for name in names {
            if let Some(p) = self.point(name, level, width) {
                sum.merge(&p.mem);
            }
        }
        sum
    }

    /// Aggregate L1 hit rate over a subset of loops (1.0 when perfect).
    pub fn hit_rate<'a>(
        &self,
        names: impl Iterator<Item = &'a str>,
        level: Level,
        width: u32,
    ) -> f64 {
        self.mem_stats(names, level, width).hit_rate()
    }

    /// Mean total register usage over a subset of loops.
    pub fn mean_regs<'a>(
        &self,
        names: impl Iterator<Item = &'a str>,
        level: Level,
        width: u32,
    ) -> f64 {
        let mut sum = 0u64;
        let mut n = 0usize;
        for name in names {
            if let Some(p) = self.point(name, level, width) {
                sum += p.regs.total() as u64;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }
}

/// Run the grid.
pub fn run_grid(cfg: &GridConfig) -> Grid {
    let workloads: Vec<Workload> = build_all(cfg.scale);
    let meta: Vec<WorkloadMeta> = workloads.iter().map(|w| w.meta.clone()).collect();

    // Work items: (workload idx, level, width).
    let mut items: Vec<(usize, Level, u32)> = Vec::new();
    for (i, _) in workloads.iter().enumerate() {
        for &level in &cfg.levels {
            for &width in &cfg.widths {
                items.push((i, level, width));
            }
        }
    }

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<((String, Level, u32), Result<EvalPoint, String>)>> =
        Mutex::new(Vec::with_capacity(items.len()));

    std::thread::scope(|scope| {
        for _ in 0..cfg.threads.max(1) {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= items.len() {
                        break;
                    }
                    let (wi, level, width) = items[k];
                    let w = &workloads[wi];
                    let r = evaluate(w, level, &Machine::issue(width).with_mem(cfg.mem));
                    local.push(((w.meta.name.to_string(), level, width), r));
                }
                results.lock().unwrap().extend(local);
            });
        }
    });

    let mut points = HashMap::new();
    let mut errors = Vec::new();
    for (key, r) in results.into_inner().unwrap() {
        match r {
            Ok(p) => {
                points.insert(key, p);
            }
            Err(e) => errors.push(format!("{key:?}: {e}")),
        }
    }
    Grid { meta, points, errors }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature grid end-to-end; the full-scale grid runs in integration
    /// tests and the figure binaries.
    #[test]
    fn mini_grid_runs_clean() {
        let cfg = GridConfig {
            scale: 0.02,
            levels: vec![Level::Conv, Level::Lev2],
            widths: vec![1, 8],
            threads: 4,
            mem: MemConfig::Perfect,
        };
        let grid = run_grid(&cfg);
        assert!(grid.errors.is_empty(), "{:#?}", grid.errors);
        assert_eq!(grid.meta.len(), 40);
        // Every point present.
        for m in &grid.meta {
            for level in [Level::Conv, Level::Lev2] {
                for width in [1u32, 8] {
                    assert!(
                        grid.point(m.name, level, width).is_some(),
                        "missing {} {level} issue-{width}",
                        m.name
                    );
                }
            }
        }
        // Speedups of Lev2/issue-8 exceed 1 for most DOALL loops.
        let fast = grid
            .meta
            .iter()
            .filter(|m| m.ltype.is_doall())
            .filter(|m| grid.speedup(m.name, Level::Lev2, 8).unwrap() > 1.5)
            .count();
        assert!(fast >= 10, "only {fast} DOALL loops sped up");
        // Perfect memory: every access a hit on every point.
        let stats = grid.mem_stats(grid.meta.iter().map(|m| m.name), Level::Lev2, 8);
        assert!(stats.accesses() > 0);
        assert_eq!(stats.misses(), 0);
        assert_eq!(grid.hit_rate(grid.meta.iter().map(|m| m.name), Level::Lev2, 8), 1.0);
    }

    /// The grid under a finite cache: still differentially correct, with
    /// consistent per-point cache statistics.
    #[test]
    fn cached_mini_grid_is_correct_with_consistent_stats() {
        use ilpc_machine::CacheParams;
        let cfg = GridConfig {
            scale: 0.02,
            levels: vec![Level::Conv, Level::Lev4],
            widths: vec![1, 8],
            threads: 4,
            mem: MemConfig::Cache(CacheParams::small()),
        };
        let grid = run_grid(&cfg);
        assert!(grid.errors.is_empty(), "{:#?}", grid.errors);
        let mut missed_somewhere = false;
        for m in &grid.meta {
            for level in [Level::Conv, Level::Lev4] {
                for width in [1u32, 8] {
                    let p = grid.point(m.name, level, width).unwrap();
                    let s = &p.mem;
                    assert_eq!(
                        s.accesses(),
                        s.hits() + s.misses(),
                        "{} {level} issue-{width}",
                        m.name
                    );
                    assert!(s.accesses() > 0, "{} executes no memory ops?", m.name);
                    missed_somewhere |= s.misses() > 0;
                }
            }
        }
        assert!(missed_somewhere, "a 1 KiB cache must miss somewhere");
    }
}
