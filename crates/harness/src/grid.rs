//! The evaluation grid: every (loop, level, issue width) combination.
//!
//! Points are distributed over worker threads by the work-stealing
//! scheduler in [`crate::steal`] (per-worker deques, steal-half), which
//! handles the skewed per-point costs of multi-configuration sweeps; the
//! original fork-join engine (one shared atomic counter) is retained as
//! [`run_grid_forkjoin`], the scheduling oracle the differential suite
//! compares against. Both engines produce an observably identical [`Grid`]:
//! same points, same cycles, same memory statistics, same typed errors.
//!
//! Each point is additionally **fault-isolated**: a panic inside one
//! point's compile/simulate path is contained with `catch_unwind` and
//! becomes a typed [`GridError`] in the report, and the result merge
//! recovers from poisoning — one bad point can never take down the other
//! 599 or abort the whole sweep.
//!
//! Aggregations over the grid ([`Grid::mean_speedup`], [`Grid::mem_stats`],
//! [`Grid::mean_regs`], [`Grid::hit_rate`]) return an [`Aggregate`] that
//! carries the covered/requested point counts, so a grid with holes (failed
//! points in [`Grid::errors`], or a subset the grid never evaluated) can
//! never be mistaken for a complete one: callers choose
//! [`Aggregate::complete`] (value only at full coverage) or
//! [`Aggregate::partial`] (best-effort value plus visible coverage).

use crate::artifact::ArtifactCache;
use crate::run::{evaluate, EvalPoint};
use crate::steal;
use ilpc_core::level::Level;
use ilpc_guard::panic_message;
use ilpc_ir::{Module, Opcode};
use ilpc_machine::{Machine, MemConfig};
use ilpc_mem::MemStats;
use ilpc_workloads::{build_all, Workload, WorkloadMeta};
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Grid configuration.
#[derive(Debug, Clone)]
pub struct GridConfig {
    /// Trip-count scale (1.0 = the paper's Table 2 counts).
    pub scale: f64,
    /// Levels to evaluate. [`Level::Conv`] is required: it anchors the
    /// speedup baseline. Duplicates are deduplicated up front.
    pub levels: Vec<Level>,
    /// Issue widths to evaluate. Width 1 is required: it is the speedup
    /// base. Duplicates are deduplicated up front.
    pub widths: Vec<u32>,
    /// Worker threads.
    pub threads: usize,
    /// Memory hierarchy applied to every machine in the grid (perfect by
    /// default — the paper's model).
    pub mem: MemConfig,
    /// Deliberately break one point (fault drills and tests only).
    pub sabotage: Option<Sabotage>,
    /// Shared compile-artifact cache. `None` (the default) compiles per
    /// point; `Some` reuses compiled + pre-decoded artifacts and reference
    /// executions across points — and across *grids*, which is the payoff:
    /// a multi-memory-config sweep passes one cache to every `run_grid`
    /// call and compiles each (workload, level, compile key) exactly once.
    /// The cache's workload-name keying binds it to one catalog and scale
    /// (see [`ArtifactCache`]); sabotaged points bypass it entirely.
    pub artifacts: Option<Arc<ArtifactCache>>,
}

impl Default for GridConfig {
    fn default() -> GridConfig {
        GridConfig {
            scale: 1.0,
            levels: Level::ALL.to_vec(),
            widths: vec![1, 2, 4, 8],
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            mem: MemConfig::Perfect,
            sabotage: None,
            artifacts: None,
        }
    }
}

/// Why a [`GridConfig`] (or sweep configuration) was rejected before any
/// point ran. Surfaced by [`run_grid`] instead of silently producing a
/// grid whose aggregations are meaningless.
#[derive(Debug, Clone, PartialEq)]
pub enum GridConfigError {
    /// `levels` is empty.
    NoLevels,
    /// `widths` is empty.
    NoWidths,
    /// `widths` lacks the required base width 1 — without it every
    /// `speedup()` is `None` and mean speedups would quietly aggregate
    /// nothing.
    MissingBaseWidth,
    /// `levels` lacks [`Level::Conv`] — the other half of the (Conv,
    /// issue-1) speedup baseline.
    MissingBaseLevel,
    /// A width of 0: `Machine::issue` would silently clamp it to 1,
    /// aliasing the base configuration under a different key.
    ZeroWidth,
    /// `scale` is not a finite positive number.
    BadScale(f64),
    /// A sweep was configured with an empty scenario list.
    NoScenarios,
}

impl fmt::Display for GridConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridConfigError::NoLevels => write!(f, "config: `levels` is empty"),
            GridConfigError::NoWidths => write!(f, "config: `widths` is empty"),
            GridConfigError::MissingBaseWidth => {
                write!(f, "config: `widths` must include the base width 1 (speedup baseline)")
            }
            GridConfigError::MissingBaseLevel => {
                write!(f, "config: `levels` must include Conv (speedup baseline)")
            }
            GridConfigError::ZeroWidth => {
                write!(f, "config: width 0 is invalid (it would alias the base width 1)")
            }
            GridConfigError::BadScale(s) => {
                write!(f, "config: scale {s} must be finite and > 0")
            }
            GridConfigError::NoScenarios => {
                write!(f, "config: sweep has no scenarios")
            }
        }
    }
}

impl std::error::Error for GridConfigError {}

/// Validate grid axes shared by [`run_grid`] and the sweep engine:
/// returns the deduplicated (order-preserving) levels and widths, or the
/// first typed configuration error.
pub(crate) fn validate_axes(
    scale: f64,
    levels: &[Level],
    widths: &[u32],
) -> Result<(Vec<Level>, Vec<u32>), GridConfigError> {
    if !(scale.is_finite() && scale > 0.0) {
        return Err(GridConfigError::BadScale(scale));
    }
    if levels.is_empty() {
        return Err(GridConfigError::NoLevels);
    }
    if widths.is_empty() {
        return Err(GridConfigError::NoWidths);
    }
    if widths.contains(&0) {
        return Err(GridConfigError::ZeroWidth);
    }
    if !widths.contains(&1) {
        return Err(GridConfigError::MissingBaseWidth);
    }
    if !levels.contains(&Level::Conv) {
        return Err(GridConfigError::MissingBaseLevel);
    }
    // Dedupe preserving first-occurrence order: duplicates would
    // double-evaluate points and silently overwrite map entries.
    let mut seen_l = Vec::new();
    let levels = levels
        .iter()
        .copied()
        .filter(|l| !seen_l.contains(l) && {
            seen_l.push(*l);
            true
        })
        .collect();
    let mut seen_w = Vec::new();
    let widths = widths
        .iter()
        .copied()
        .filter(|w| !seen_w.contains(w) && {
            seen_w.push(*w);
            true
        })
        .collect();
    Ok((levels, widths))
}

/// Deliberate sabotage of one grid point. Used by tests and fault drills
/// to prove the isolation property: the matching point degrades to a
/// typed [`GridError`] while every other point completes normally.
#[derive(Debug, Clone)]
pub struct Sabotage {
    pub workload: String,
    pub level: Level,
    pub width: u32,
    pub mode: SabotageMode,
}

/// How a sabotaged point fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SabotageMode {
    /// The point's evaluation panics mid-flight; per-point `catch_unwind`
    /// must contain it.
    Panic,
    /// The compiled module's arithmetic is corrupted before execution; the
    /// differential check must flag it.
    Corrupt,
}

/// Why one grid point failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PointError {
    /// The differential evaluation rejected the point (wrong results,
    /// simulator rejection, budget exhaustion).
    Eval(String),
    /// The point's compile/simulate path panicked; the panic was contained.
    Panic(String),
}

impl fmt::Display for PointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PointError::Eval(e) => write!(f, "evaluation failed: {e}"),
            PointError::Panic(e) => write!(f, "panicked (contained): {e}"),
        }
    }
}

/// A typed per-point failure in an otherwise-complete grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridError {
    pub workload: String,
    pub level: Level,
    pub width: u32,
    pub error: PointError,
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} issue-{}: {}", self.workload, self.level, self.width, self.error)
    }
}

/// An aggregation result that cannot hide holes: the value travels with
/// how many of the requested points actually contributed.
///
/// Produced by [`Grid::mean_speedup`], [`Grid::mem_stats`],
/// [`Grid::mean_regs`] and [`Grid::hit_rate`]. A partial grid (failed
/// points, or a name subset the grid never contained) yields
/// `covered < requested`; an empty subset yields `covered == 0` instead of
/// a fabricated `0.0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aggregate<T> {
    covered: usize,
    requested: usize,
    value: T,
}

impl<T> Aggregate<T> {
    fn new(covered: usize, requested: usize, value: T) -> Aggregate<T> {
        Aggregate { covered, requested, value }
    }

    /// Points that contributed to the value.
    pub fn covered(&self) -> usize {
        self.covered
    }

    /// Points the caller asked to aggregate over.
    pub fn requested(&self) -> usize {
        self.requested
    }

    /// True when every requested point contributed (and there was at
    /// least one).
    pub fn is_complete(&self) -> bool {
        self.covered == self.requested && self.covered > 0
    }

    /// The value, only when coverage is complete — the safe default for
    /// reports that must not average over holes.
    pub fn complete(self) -> Option<T> {
        if self.is_complete() {
            Some(self.value)
        } else {
            None
        }
    }

    /// The best-effort value over whatever was covered; `None` when
    /// nothing was. Callers that accept partial coverage must surface
    /// [`Aggregate::covered`]/[`Aggregate::requested`] alongside it.
    pub fn partial(self) -> Option<T> {
        if self.covered > 0 {
            Some(self.value)
        } else {
            None
        }
    }
}

impl<T: fmt::Display> fmt::Display for Aggregate<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.covered == 0 {
            write!(f, "n/a (0/{} points)", self.requested)
        } else if self.is_complete() {
            self.value.fmt(f)
        } else {
            self.value.fmt(f)?;
            write!(f, " ({}/{} points)", self.covered, self.requested)
        }
    }
}

/// Results over the grid.
#[derive(Debug)]
pub struct Grid {
    pub meta: Vec<WorkloadMeta>,
    /// Levels evaluated (validated, deduplicated, in request order).
    pub levels: Vec<Level>,
    /// Widths evaluated (validated, deduplicated, in request order).
    pub widths: Vec<u32>,
    /// Workload name → completed points. Two-level map so lookups borrow
    /// the caller's `&str` instead of allocating a fresh `String` per
    /// probe (the lookup sits inside figure bins and bench hot loops).
    points: HashMap<String, HashMap<(Level, u32), EvalPoint>>,
    /// Per-point failures, if any (fail loudly in reports). The grid
    /// itself always completes: failed points are typed entries here, not
    /// aborts.
    pub errors: Vec<GridError>,
}

impl Grid {
    /// Measured point for `(loop, level, width)`. Borrows `name` — no
    /// allocation per lookup.
    pub fn point(&self, name: &str, level: Level, width: u32) -> Option<&EvalPoint> {
        self.points.get(name)?.get(&(level, width))
    }

    /// Completed points in deterministic (name, level, width) order —
    /// the observable the engine-differential suite compares.
    pub fn iter_points(
        &self,
    ) -> impl Iterator<Item = (&str, Level, u32, &EvalPoint)> + '_ {
        let mut names: Vec<&String> = self.points.keys().collect();
        names.sort();
        names.into_iter().flat_map(move |name| {
            let inner = &self.points[name];
            let mut keys: Vec<&(Level, u32)> = inner.keys().collect();
            keys.sort();
            keys.into_iter()
                .map(move |k| (name.as_str(), k.0, k.1, &inner[k]))
        })
    }

    /// Number of completed points.
    pub fn completed(&self) -> usize {
        self.points.values().map(|m| m.len()).sum()
    }

    /// Speedup of `(level, width)` over the paper's base configuration
    /// (issue-1, Conv) for one loop.
    pub fn speedup(&self, name: &str, level: Level, width: u32) -> Option<f64> {
        let base = self.point(name, Level::Conv, 1)?.cycles as f64;
        let this = self.point(name, level, width)?.cycles as f64;
        Some(base / this)
    }

    /// Arithmetic-mean speedup over a subset of loops. A loop covers the
    /// aggregate only if both its base point (Conv, issue-1) and the
    /// requested point completed.
    pub fn mean_speedup<'a>(
        &self,
        names: impl Iterator<Item = &'a str>,
        level: Level,
        width: u32,
    ) -> Aggregate<f64> {
        let mut sum = 0.0;
        let mut covered = 0usize;
        let mut requested = 0usize;
        for name in names {
            requested += 1;
            if let Some(s) = self.speedup(name, level, width) {
                sum += s;
                covered += 1;
            }
        }
        let value = if covered == 0 { 0.0 } else { sum / covered as f64 };
        Aggregate::new(covered, requested, value)
    }

    /// Aggregate memory-hierarchy counters over a subset of loops.
    pub fn mem_stats<'a>(
        &self,
        names: impl Iterator<Item = &'a str>,
        level: Level,
        width: u32,
    ) -> Aggregate<MemStats> {
        let mut sum = MemStats::default();
        let mut covered = 0usize;
        let mut requested = 0usize;
        for name in names {
            requested += 1;
            if let Some(p) = self.point(name, level, width) {
                sum.merge(&p.mem);
                covered += 1;
            }
        }
        Aggregate::new(covered, requested, sum)
    }

    /// Aggregate L1 hit rate over a subset of loops (1.0 when perfect).
    pub fn hit_rate<'a>(
        &self,
        names: impl Iterator<Item = &'a str>,
        level: Level,
        width: u32,
    ) -> Aggregate<f64> {
        let stats = self.mem_stats(names, level, width);
        Aggregate::new(stats.covered, stats.requested, stats.value.hit_rate())
    }

    /// Mean total register usage over a subset of loops.
    pub fn mean_regs<'a>(
        &self,
        names: impl Iterator<Item = &'a str>,
        level: Level,
        width: u32,
    ) -> Aggregate<f64> {
        let mut sum = 0u64;
        let mut covered = 0usize;
        let mut requested = 0usize;
        for name in names {
            requested += 1;
            if let Some(p) = self.point(name, level, width) {
                sum += p.regs.total() as u64;
                covered += 1;
            }
        }
        let value = if covered == 0 { 0.0 } else { sum as f64 / covered as f64 };
        Aggregate::new(covered, requested, value)
    }
}

/// Flip every addition to a subtraction — the kind of systematic
/// miscompile a corrupted pass would produce. Guaranteed to be caught by
/// the differential check (or the simulator) on any workload that
/// computes anything.
fn corrupt_arithmetic(m: &mut Module) {
    let blocks: Vec<_> = m.func.layout_order().to_vec();
    for b in blocks {
        for inst in &mut m.func.block_mut(b).insts {
            match inst.op {
                Opcode::Add => inst.op = Opcode::Sub,
                Opcode::FAdd => inst.op = Opcode::FSub,
                _ => {}
            }
        }
    }
}

/// Evaluate one point, honouring a matching sabotage directive.
pub(crate) fn eval_point(
    w: &Workload,
    level: Level,
    width: u32,
    machine: &Machine,
    sabotage: Option<&Sabotage>,
    artifacts: Option<&ArtifactCache>,
) -> Result<EvalPoint, String> {
    if let Some(s) = sabotage {
        if s.workload == w.meta.name && s.level == level && s.width == width {
            match s.mode {
                SabotageMode::Panic => {
                    panic!("sabotaged grid point: {} {level} issue-{width}", w.meta.name)
                }
                SabotageMode::Corrupt => {
                    // Sabotage must never pollute (or be masked by) the
                    // shared cache: compile privately and corrupt that.
                    let mut c = crate::compile::compile(w, level, machine);
                    corrupt_arithmetic(&mut c.module);
                    return crate::run::run_compiled(w, &c, machine);
                }
            }
        }
    }
    match artifacts {
        Some(cache) => cache.evaluate(w, level, machine),
        None => evaluate(w, level, machine),
    }
}

/// Evaluate one point with per-point panic containment: the shared
/// fault-isolation wrapper of both engines and the sweep.
pub(crate) fn eval_point_contained(
    w: &Workload,
    level: Level,
    width: u32,
    machine: &Machine,
    sabotage: Option<&Sabotage>,
    artifacts: Option<&ArtifactCache>,
) -> Result<EvalPoint, PointError> {
    match catch_unwind(AssertUnwindSafe(|| {
        eval_point(w, level, width, machine, sabotage, artifacts)
    })) {
        Ok(Ok(p)) => Ok(p),
        Ok(Err(e)) => Err(PointError::Eval(e)),
        Err(payload) => Err(PointError::Panic(panic_message(payload))),
    }
}

/// Assemble a [`Grid`] from per-point outcomes.
pub(crate) fn collect_grid(
    meta: Vec<WorkloadMeta>,
    levels: Vec<Level>,
    widths: Vec<u32>,
    outcomes: impl IntoIterator<Item = ((String, Level, u32), Result<EvalPoint, PointError>)>,
) -> Grid {
    let mut points: HashMap<String, HashMap<(Level, u32), EvalPoint>> = HashMap::new();
    let mut errors = Vec::new();
    for ((workload, level, width), r) in outcomes {
        match r {
            Ok(p) => {
                points.entry(workload).or_default().insert((level, width), p);
            }
            Err(error) => errors.push(GridError { workload, level, width, error }),
        }
    }
    Grid { meta, levels, widths, points, errors }
}

/// Run the grid on the work-stealing engine.
pub fn run_grid(cfg: &GridConfig) -> Result<Grid, GridConfigError> {
    let (levels, widths) = validate_axes(cfg.scale, &cfg.levels, &cfg.widths)?;
    let workloads: Vec<Workload> = build_all(cfg.scale);
    let meta: Vec<WorkloadMeta> = workloads.iter().map(|w| w.meta.clone()).collect();

    // Work items: (workload idx, level, width).
    let mut items: Vec<(usize, Level, u32)> = Vec::new();
    for (i, _) in workloads.iter().enumerate() {
        for &level in &levels {
            for &width in &widths {
                items.push((i, level, width));
            }
        }
    }

    let (results, _stats) = steal::execute(&items, cfg.threads.max(1), |_, &(wi, level, width)| {
        let w = &workloads[wi];
        let machine = Machine::issue(width).with_mem(cfg.mem);
        let r = eval_point_contained(
            w,
            level,
            width,
            &machine,
            cfg.sabotage.as_ref(),
            cfg.artifacts.as_deref(),
        );
        ((w.meta.name.to_string(), level, width), r)
    });

    Ok(collect_grid(meta, levels, widths, results))
}

/// Run the grid on the original fork-join engine (one shared atomic work
/// counter, one item per claim). Retained as the scheduling oracle: the
/// differential suite and the sweep benchmark prove the work-stealing
/// engine's [`Grid`] is observably identical to this one.
pub fn run_grid_forkjoin(cfg: &GridConfig) -> Result<Grid, GridConfigError> {
    let (levels, widths) = validate_axes(cfg.scale, &cfg.levels, &cfg.widths)?;
    let workloads: Vec<Workload> = build_all(cfg.scale);
    let meta: Vec<WorkloadMeta> = workloads.iter().map(|w| w.meta.clone()).collect();

    let mut items: Vec<(usize, Level, u32)> = Vec::new();
    for (i, _) in workloads.iter().enumerate() {
        for &level in &levels {
            for &width in &widths {
                items.push((i, level, width));
            }
        }
    }

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<((String, Level, u32), Result<EvalPoint, PointError>)>> =
        Mutex::new(Vec::with_capacity(items.len()));

    std::thread::scope(|scope| {
        for _ in 0..cfg.threads.max(1) {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= items.len() {
                        break;
                    }
                    let (wi, level, width) = items[k];
                    let w = &workloads[wi];
                    let machine = Machine::issue(width).with_mem(cfg.mem);
                    let r = eval_point_contained(
                        w,
                        level,
                        width,
                        &machine,
                        cfg.sabotage.as_ref(),
                        cfg.artifacts.as_deref(),
                    );
                    local.push(((w.meta.name.to_string(), level, width), r));
                }
                // A sibling worker that panicked outside the contained
                // region poisons the mutex; the data is still consistent
                // (extend is all-or-nothing per point list), so recover.
                results
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .extend(local);
            });
        }
    });

    let collected =
        results.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner());
    Ok(collect_grid(meta, levels, widths, collected))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature grid end-to-end; the full-scale grid runs in integration
    /// tests and the figure binaries.
    #[test]
    fn mini_grid_runs_clean() {
        let cfg = GridConfig {
            scale: 0.02,
            levels: vec![Level::Conv, Level::Lev2],
            widths: vec![1, 8],
            threads: 4,
            mem: MemConfig::Perfect,
            sabotage: None,
            artifacts: None,
        };
        let grid = run_grid(&cfg).unwrap();
        assert!(grid.errors.is_empty(), "{:#?}", grid.errors);
        assert_eq!(grid.meta.len(), 40);
        // Every point present.
        for m in &grid.meta {
            for level in [Level::Conv, Level::Lev2] {
                for width in [1u32, 8] {
                    assert!(
                        grid.point(m.name, level, width).is_some(),
                        "missing {} {level} issue-{width}",
                        m.name
                    );
                }
            }
        }
        assert_eq!(grid.completed(), 40 * 2 * 2);
        // Speedups of Lev2/issue-8 exceed 1 for most DOALL loops.
        let fast = grid
            .meta
            .iter()
            .filter(|m| m.ltype.is_doall())
            .filter(|m| grid.speedup(m.name, Level::Lev2, 8).unwrap() > 1.5)
            .count();
        assert!(fast >= 10, "only {fast} DOALL loops sped up");
        // Perfect memory: every access a hit on every point.
        let stats = grid
            .mem_stats(grid.meta.iter().map(|m| m.name), Level::Lev2, 8)
            .complete()
            .expect("clean grid must aggregate completely");
        assert!(stats.accesses() > 0);
        assert_eq!(stats.misses(), 0);
        let hit = grid.hit_rate(grid.meta.iter().map(|m| m.name), Level::Lev2, 8);
        assert!(hit.is_complete());
        assert_eq!(hit.complete(), Some(1.0));
    }

    /// Invalid configurations are rejected with typed errors before any
    /// point runs — the fail-silent `mean_speedup == 0.0` trap is gone.
    #[test]
    fn invalid_configs_are_typed_errors() {
        let base = GridConfig {
            scale: 0.02,
            levels: vec![Level::Conv, Level::Lev2],
            widths: vec![1, 8],
            threads: 2,
            ..GridConfig::default()
        };
        let cases: Vec<(GridConfig, GridConfigError)> = vec![
            (
                GridConfig { widths: vec![2, 8], ..base.clone() },
                GridConfigError::MissingBaseWidth,
            ),
            (
                GridConfig { levels: vec![Level::Lev2], ..base.clone() },
                GridConfigError::MissingBaseLevel,
            ),
            (GridConfig { widths: vec![], ..base.clone() }, GridConfigError::NoWidths),
            (GridConfig { levels: vec![], ..base.clone() }, GridConfigError::NoLevels),
            (
                GridConfig { widths: vec![1, 0], ..base.clone() },
                GridConfigError::ZeroWidth,
            ),
            (
                GridConfig { scale: 0.0, ..base.clone() },
                GridConfigError::BadScale(0.0),
            ),
            (
                GridConfig { scale: f64::NAN, ..base.clone() },
                GridConfigError::BadScale(f64::NAN),
            ),
        ];
        for (cfg, want) in cases {
            let got = run_grid(&cfg).expect_err("config must be rejected");
            // NaN != NaN, so compare the discriminant via Display.
            assert_eq!(
                std::mem::discriminant(&got),
                std::mem::discriminant(&want),
                "{got} vs {want}"
            );
            // Both engines agree on validation.
            let fj = run_grid_forkjoin(&cfg).expect_err("fork-join must also reject");
            assert_eq!(std::mem::discriminant(&fj), std::mem::discriminant(&want));
        }
    }

    /// Duplicate levels/widths are deduplicated up front: each point is
    /// evaluated once and the grid's axes record the deduplicated shape.
    #[test]
    fn duplicate_axes_are_deduplicated() {
        let cfg = GridConfig {
            scale: 0.02,
            levels: vec![Level::Conv, Level::Lev2, Level::Conv],
            widths: vec![1, 8, 1, 8],
            threads: 2,
            ..GridConfig::default()
        };
        let grid = run_grid(&cfg).unwrap();
        assert!(grid.errors.is_empty(), "{:#?}", grid.errors);
        assert_eq!(grid.levels, vec![Level::Conv, Level::Lev2]);
        assert_eq!(grid.widths, vec![1, 8]);
        assert_eq!(grid.completed(), 40 * 2 * 2);
    }

    /// The aggregate of an empty subset is visibly empty, not 0.0.
    #[test]
    fn empty_subset_aggregates_are_not_zero() {
        let cfg = GridConfig {
            scale: 0.02,
            levels: vec![Level::Conv, Level::Lev2],
            widths: vec![1, 8],
            threads: 4,
            ..GridConfig::default()
        };
        let grid = run_grid(&cfg).unwrap();
        let none = grid.mean_speedup(std::iter::empty(), Level::Lev2, 8);
        assert_eq!(none.covered(), 0);
        assert_eq!(none.requested(), 0);
        assert!(!none.is_complete());
        assert_eq!(none.complete(), None);
        assert_eq!(none.partial(), None);
        assert!(format!("{none}").contains("n/a"));
        // A subset of unknown names is counted as requested-but-uncovered.
        let ghost = grid.mean_speedup(["no-such-loop"].into_iter(), Level::Lev2, 8);
        assert_eq!((ghost.covered(), ghost.requested()), (0, 1));
        assert_eq!(ghost.partial(), None);
        // A width the grid never evaluated is likewise visible.
        let missing = grid.mean_speedup(grid.meta.iter().map(|m| m.name), Level::Lev2, 4);
        assert_eq!(missing.covered(), 0);
        assert_eq!(missing.requested(), 40);
        assert_eq!(missing.complete(), None);
    }

    /// One sabotaged point must degrade to a typed error while every
    /// other point completes — for both failure shapes (contained panic
    /// and corrupted-output rejection) — and partial aggregates must say
    /// so instead of passing for complete.
    #[test]
    fn sabotaged_point_is_isolated_and_typed() {
        for mode in [SabotageMode::Panic, SabotageMode::Corrupt] {
            let cfg = GridConfig {
                scale: 0.02,
                levels: vec![Level::Conv, Level::Lev2],
                widths: vec![1, 8],
                threads: 4,
                mem: MemConfig::Perfect,
                sabotage: Some(Sabotage {
                    workload: "dotprod".to_string(),
                    level: Level::Lev2,
                    width: 8,
                    mode,
                }),
                artifacts: None,
            };
            let grid = run_grid(&cfg).unwrap();
            assert_eq!(grid.errors.len(), 1, "{mode:?}: {:#?}", grid.errors);
            let err = &grid.errors[0];
            assert_eq!(err.workload, "dotprod");
            assert_eq!((err.level, err.width), (Level::Lev2, 8));
            match (mode, &err.error) {
                (SabotageMode::Panic, PointError::Panic(msg)) => {
                    assert!(msg.contains("sabotaged grid point"), "{msg}");
                }
                (SabotageMode::Corrupt, PointError::Eval(_)) => {}
                other => panic!("wrong error shape: {other:?}"),
            }
            // The sabotaged point is absent; every other point completed.
            assert!(grid.point("dotprod", Level::Lev2, 8).is_none());
            assert_eq!(grid.completed(), 40 * 2 * 2 - 1, "{mode:?}");
            // The holed aggregate is visibly partial: it cannot pass for a
            // complete mean any more.
            let agg = grid.mean_speedup(grid.meta.iter().map(|m| m.name), Level::Lev2, 8);
            assert_eq!((agg.covered(), agg.requested()), (39, 40), "{mode:?}");
            assert!(!agg.is_complete());
            assert_eq!(agg.complete(), None);
            assert!(agg.partial().unwrap() > 1.0);
            assert!(format!("{agg}").contains("39/40"), "{agg}");
        }
    }

    /// The grid under a finite cache: still differentially correct, with
    /// consistent per-point cache statistics.
    #[test]
    fn cached_mini_grid_is_correct_with_consistent_stats() {
        use ilpc_machine::CacheParams;
        let cfg = GridConfig {
            scale: 0.02,
            levels: vec![Level::Conv, Level::Lev4],
            widths: vec![1, 8],
            threads: 4,
            mem: MemConfig::Cache(CacheParams::small()),
            sabotage: None,
            artifacts: None,
        };
        let grid = run_grid(&cfg).unwrap();
        assert!(grid.errors.is_empty(), "{:#?}", grid.errors);
        let mut missed_somewhere = false;
        for m in &grid.meta {
            for level in [Level::Conv, Level::Lev4] {
                for width in [1u32, 8] {
                    let p = grid.point(m.name, level, width).unwrap();
                    let s = &p.mem;
                    assert_eq!(
                        s.accesses(),
                        s.hits() + s.misses(),
                        "{} {level} issue-{width}",
                        m.name
                    );
                    assert!(s.accesses() > 0, "{} executes no memory ops?", m.name);
                    missed_somewhere |= s.misses() > 0;
                }
            }
        }
        assert!(missed_somewhere, "a 1 KiB cache must miss somewhere");
    }

    /// Both engines produce observably identical grids on a mini grid;
    /// the full 600-point differential runs in the integration suite.
    #[test]
    fn engines_agree_on_mini_grid() {
        let cfg = GridConfig {
            scale: 0.02,
            levels: vec![Level::Conv, Level::Lev2],
            widths: vec![1, 8],
            threads: 4,
            ..GridConfig::default()
        };
        let ws = run_grid(&cfg).unwrap();
        let fj = run_grid_forkjoin(&cfg).unwrap();
        let a: Vec<_> = ws.iter_points().map(|(n, l, w, p)| (n.to_string(), l, w, *p)).collect();
        let b: Vec<_> = fj.iter_points().map(|(n, l, w, p)| (n.to_string(), l, w, *p)).collect();
        assert_eq!(a.len(), 160);
        assert_eq!(a, b);
        assert_eq!(ws.errors, fj.errors);
    }
}
