//! The evaluation grid: every (loop, level, issue width) combination.
//!
//! The grid is embarrassingly parallel; points are distributed over worker
//! threads with `std::thread::scope` and an atomic work counter (fork-join,
//! no shared mutable state beyond the counter — data-race free by
//! construction).
//!
//! Each point is additionally **fault-isolated**: a panic inside one
//! point's compile/simulate path is contained with `catch_unwind` and
//! becomes a typed [`GridError`] in the report, and the result mutex
//! recovers from poisoning — one bad point can never take down the other
//! 599 or abort the whole sweep.

use crate::artifact::ArtifactCache;
use crate::run::{evaluate, EvalPoint};
use ilpc_core::level::Level;
use ilpc_guard::panic_message;
use ilpc_ir::{Module, Opcode};
use ilpc_machine::{Machine, MemConfig};
use ilpc_mem::MemStats;
use ilpc_workloads::{build_all, Workload, WorkloadMeta};
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Grid configuration.
#[derive(Debug, Clone)]
pub struct GridConfig {
    /// Trip-count scale (1.0 = the paper's Table 2 counts).
    pub scale: f64,
    /// Levels to evaluate.
    pub levels: Vec<Level>,
    /// Issue widths to evaluate (1 is required: it is the speedup base).
    pub widths: Vec<u32>,
    /// Worker threads.
    pub threads: usize,
    /// Memory hierarchy applied to every machine in the grid (perfect by
    /// default — the paper's model).
    pub mem: MemConfig,
    /// Deliberately break one point (fault drills and tests only).
    pub sabotage: Option<Sabotage>,
    /// Shared compile-artifact cache. `None` (the default) compiles per
    /// point; `Some` reuses compiled + pre-decoded artifacts and reference
    /// executions across points — and across *grids*, which is the payoff:
    /// a multi-memory-config sweep passes one cache to every `run_grid`
    /// call and compiles each (workload, level, compile key) exactly once.
    /// The cache's workload-name keying binds it to one catalog and scale
    /// (see [`ArtifactCache`]); sabotaged points bypass it entirely.
    pub artifacts: Option<Arc<ArtifactCache>>,
}

impl Default for GridConfig {
    fn default() -> GridConfig {
        GridConfig {
            scale: 1.0,
            levels: Level::ALL.to_vec(),
            widths: vec![1, 2, 4, 8],
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            mem: MemConfig::Perfect,
            sabotage: None,
            artifacts: None,
        }
    }
}

/// Deliberate sabotage of one grid point. Used by tests and fault drills
/// to prove the isolation property: the matching point degrades to a
/// typed [`GridError`] while every other point completes normally.
#[derive(Debug, Clone)]
pub struct Sabotage {
    pub workload: String,
    pub level: Level,
    pub width: u32,
    pub mode: SabotageMode,
}

/// How a sabotaged point fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SabotageMode {
    /// The point's evaluation panics mid-flight; per-point `catch_unwind`
    /// must contain it.
    Panic,
    /// The compiled module's arithmetic is corrupted before execution; the
    /// differential check must flag it.
    Corrupt,
}

/// Why one grid point failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PointError {
    /// The differential evaluation rejected the point (wrong results,
    /// simulator rejection, budget exhaustion).
    Eval(String),
    /// The point's compile/simulate path panicked; the panic was contained.
    Panic(String),
}

impl fmt::Display for PointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PointError::Eval(e) => write!(f, "evaluation failed: {e}"),
            PointError::Panic(e) => write!(f, "panicked (contained): {e}"),
        }
    }
}

/// A typed per-point failure in an otherwise-complete grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridError {
    pub workload: String,
    pub level: Level,
    pub width: u32,
    pub error: PointError,
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} issue-{}: {}", self.workload, self.level, self.width, self.error)
    }
}

/// Results over the grid.
#[derive(Debug)]
pub struct Grid {
    pub meta: Vec<WorkloadMeta>,
    points: HashMap<(String, Level, u32), EvalPoint>,
    /// Per-point failures, if any (fail loudly in reports). The grid
    /// itself always completes: failed points are typed entries here, not
    /// aborts.
    pub errors: Vec<GridError>,
}

impl Grid {
    /// Measured point for `(loop, level, width)`.
    pub fn point(&self, name: &str, level: Level, width: u32) -> Option<&EvalPoint> {
        self.points.get(&(name.to_string(), level, width))
    }

    /// Speedup of `(level, width)` over the paper's base configuration
    /// (issue-1, Conv) for one loop.
    pub fn speedup(&self, name: &str, level: Level, width: u32) -> Option<f64> {
        let base = self.point(name, Level::Conv, 1)?.cycles as f64;
        let this = self.point(name, level, width)?.cycles as f64;
        Some(base / this)
    }

    /// Arithmetic-mean speedup over a subset of loops.
    pub fn mean_speedup<'a>(
        &self,
        names: impl Iterator<Item = &'a str>,
        level: Level,
        width: u32,
    ) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for name in names {
            if let Some(s) = self.speedup(name, level, width) {
                sum += s;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Aggregate memory-hierarchy counters over a subset of loops.
    pub fn mem_stats<'a>(
        &self,
        names: impl Iterator<Item = &'a str>,
        level: Level,
        width: u32,
    ) -> MemStats {
        let mut sum = MemStats::default();
        for name in names {
            if let Some(p) = self.point(name, level, width) {
                sum.merge(&p.mem);
            }
        }
        sum
    }

    /// Aggregate L1 hit rate over a subset of loops (1.0 when perfect).
    pub fn hit_rate<'a>(
        &self,
        names: impl Iterator<Item = &'a str>,
        level: Level,
        width: u32,
    ) -> f64 {
        self.mem_stats(names, level, width).hit_rate()
    }

    /// Mean total register usage over a subset of loops.
    pub fn mean_regs<'a>(
        &self,
        names: impl Iterator<Item = &'a str>,
        level: Level,
        width: u32,
    ) -> f64 {
        let mut sum = 0u64;
        let mut n = 0usize;
        for name in names {
            if let Some(p) = self.point(name, level, width) {
                sum += p.regs.total() as u64;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }
}

/// Flip every addition to a subtraction — the kind of systematic
/// miscompile a corrupted pass would produce. Guaranteed to be caught by
/// the differential check (or the simulator) on any workload that
/// computes anything.
fn corrupt_arithmetic(m: &mut Module) {
    let blocks: Vec<_> = m.func.layout_order().to_vec();
    for b in blocks {
        for inst in &mut m.func.block_mut(b).insts {
            match inst.op {
                Opcode::Add => inst.op = Opcode::Sub,
                Opcode::FAdd => inst.op = Opcode::FSub,
                _ => {}
            }
        }
    }
}

/// Evaluate one point, honouring a matching sabotage directive.
fn eval_point(
    w: &Workload,
    level: Level,
    width: u32,
    machine: &Machine,
    sabotage: Option<&Sabotage>,
    artifacts: Option<&ArtifactCache>,
) -> Result<EvalPoint, String> {
    if let Some(s) = sabotage {
        if s.workload == w.meta.name && s.level == level && s.width == width {
            match s.mode {
                SabotageMode::Panic => {
                    panic!("sabotaged grid point: {} {level} issue-{width}", w.meta.name)
                }
                SabotageMode::Corrupt => {
                    // Sabotage must never pollute (or be masked by) the
                    // shared cache: compile privately and corrupt that.
                    let mut c = crate::compile::compile(w, level, machine);
                    corrupt_arithmetic(&mut c.module);
                    return crate::run::run_compiled(w, &c, machine);
                }
            }
        }
    }
    match artifacts {
        Some(cache) => cache.evaluate(w, level, machine),
        None => evaluate(w, level, machine),
    }
}

/// Run the grid.
pub fn run_grid(cfg: &GridConfig) -> Grid {
    let workloads: Vec<Workload> = build_all(cfg.scale);
    let meta: Vec<WorkloadMeta> = workloads.iter().map(|w| w.meta.clone()).collect();

    // Work items: (workload idx, level, width).
    let mut items: Vec<(usize, Level, u32)> = Vec::new();
    for (i, _) in workloads.iter().enumerate() {
        for &level in &cfg.levels {
            for &width in &cfg.widths {
                items.push((i, level, width));
            }
        }
    }

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<((String, Level, u32), Result<EvalPoint, PointError>)>> =
        Mutex::new(Vec::with_capacity(items.len()));

    std::thread::scope(|scope| {
        for _ in 0..cfg.threads.max(1) {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= items.len() {
                        break;
                    }
                    let (wi, level, width) = items[k];
                    let w = &workloads[wi];
                    let machine = Machine::issue(width).with_mem(cfg.mem);
                    // Per-point containment: a panic anywhere in this
                    // point's pipeline becomes a typed error, not a dead
                    // worker thread.
                    let r = match catch_unwind(AssertUnwindSafe(|| {
                        eval_point(
                            w,
                            level,
                            width,
                            &machine,
                            cfg.sabotage.as_ref(),
                            cfg.artifacts.as_deref(),
                        )
                    })) {
                        Ok(Ok(p)) => Ok(p),
                        Ok(Err(e)) => Err(PointError::Eval(e)),
                        Err(payload) => Err(PointError::Panic(panic_message(payload))),
                    };
                    local.push(((w.meta.name.to_string(), level, width), r));
                }
                // A sibling worker that panicked outside the contained
                // region poisons the mutex; the data is still consistent
                // (extend is all-or-nothing per point list), so recover.
                results
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .extend(local);
            });
        }
    });

    let mut points = HashMap::new();
    let mut errors = Vec::new();
    let collected =
        results.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner());
    for ((workload, level, width), r) in collected {
        match r {
            Ok(p) => {
                points.insert((workload, level, width), p);
            }
            Err(error) => errors.push(GridError { workload, level, width, error }),
        }
    }
    Grid { meta, points, errors }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature grid end-to-end; the full-scale grid runs in integration
    /// tests and the figure binaries.
    #[test]
    fn mini_grid_runs_clean() {
        let cfg = GridConfig {
            scale: 0.02,
            levels: vec![Level::Conv, Level::Lev2],
            widths: vec![1, 8],
            threads: 4,
            mem: MemConfig::Perfect,
            sabotage: None,
            artifacts: None,
        };
        let grid = run_grid(&cfg);
        assert!(grid.errors.is_empty(), "{:#?}", grid.errors);
        assert_eq!(grid.meta.len(), 40);
        // Every point present.
        for m in &grid.meta {
            for level in [Level::Conv, Level::Lev2] {
                for width in [1u32, 8] {
                    assert!(
                        grid.point(m.name, level, width).is_some(),
                        "missing {} {level} issue-{width}",
                        m.name
                    );
                }
            }
        }
        // Speedups of Lev2/issue-8 exceed 1 for most DOALL loops.
        let fast = grid
            .meta
            .iter()
            .filter(|m| m.ltype.is_doall())
            .filter(|m| grid.speedup(m.name, Level::Lev2, 8).unwrap() > 1.5)
            .count();
        assert!(fast >= 10, "only {fast} DOALL loops sped up");
        // Perfect memory: every access a hit on every point.
        let stats = grid.mem_stats(grid.meta.iter().map(|m| m.name), Level::Lev2, 8);
        assert!(stats.accesses() > 0);
        assert_eq!(stats.misses(), 0);
        assert_eq!(grid.hit_rate(grid.meta.iter().map(|m| m.name), Level::Lev2, 8), 1.0);
    }

    /// One sabotaged point must degrade to a typed error while every
    /// other point completes — for both failure shapes (contained panic
    /// and corrupted-output rejection).
    #[test]
    fn sabotaged_point_is_isolated_and_typed() {
        for mode in [SabotageMode::Panic, SabotageMode::Corrupt] {
            let cfg = GridConfig {
                scale: 0.02,
                levels: vec![Level::Conv, Level::Lev2],
                widths: vec![1, 8],
                threads: 4,
                mem: MemConfig::Perfect,
                sabotage: Some(Sabotage {
                    workload: "dotprod".to_string(),
                    level: Level::Lev2,
                    width: 8,
                    mode,
                }),
                artifacts: None,
            };
            let grid = run_grid(&cfg);
            assert_eq!(grid.errors.len(), 1, "{mode:?}: {:#?}", grid.errors);
            let err = &grid.errors[0];
            assert_eq!(err.workload, "dotprod");
            assert_eq!((err.level, err.width), (Level::Lev2, 8));
            match (mode, &err.error) {
                (SabotageMode::Panic, PointError::Panic(msg)) => {
                    assert!(msg.contains("sabotaged grid point"), "{msg}");
                }
                (SabotageMode::Corrupt, PointError::Eval(_)) => {}
                other => panic!("wrong error shape: {other:?}"),
            }
            // The sabotaged point is absent; every other point completed.
            assert!(grid.point("dotprod", Level::Lev2, 8).is_none());
            let mut present = 0;
            for m in &grid.meta {
                for level in [Level::Conv, Level::Lev2] {
                    for width in [1u32, 8] {
                        present += grid.point(m.name, level, width).is_some() as usize;
                    }
                }
            }
            assert_eq!(present, 40 * 2 * 2 - 1, "{mode:?}");
        }
    }

    /// The grid under a finite cache: still differentially correct, with
    /// consistent per-point cache statistics.
    #[test]
    fn cached_mini_grid_is_correct_with_consistent_stats() {
        use ilpc_machine::CacheParams;
        let cfg = GridConfig {
            scale: 0.02,
            levels: vec![Level::Conv, Level::Lev4],
            widths: vec![1, 8],
            threads: 4,
            mem: MemConfig::Cache(CacheParams::small()),
            sabotage: None,
            artifacts: None,
        };
        let grid = run_grid(&cfg);
        assert!(grid.errors.is_empty(), "{:#?}", grid.errors);
        let mut missed_somewhere = false;
        for m in &grid.meta {
            for level in [Level::Conv, Level::Lev4] {
                for width in [1u32, 8] {
                    let p = grid.point(m.name, level, width).unwrap();
                    let s = &p.mem;
                    assert_eq!(
                        s.accesses(),
                        s.hits() + s.misses(),
                        "{} {level} issue-{width}",
                        m.name
                    );
                    assert!(s.accesses() > 0, "{} executes no memory ops?", m.name);
                    missed_somewhere |= s.misses() > 0;
                }
            }
        }
        assert!(missed_somewhere, "a 1 KiB cache must miss somewhere");
    }
}
