//! Deterministic fault-injection campaign.
//!
//! Injects seeded faults ([`ilpc_guard::inject`]) into random steps of
//! guarded compilations across the 40 workloads — plus machine
//! latency-table corruptions — and classifies every outcome. The headline
//! invariant the campaign demonstrates is **zero silent escapes**: no
//! fault may produce wrong architectural results without some layer of
//! the firewall (verifier, differential spot-check, panic containment,
//! budget watchdog, or the simulator itself) flagging it.
//!
//! Everything is driven by one `ilpc-testkit` PRNG seed: the same
//! `(seed, faults, scale, level, width)` configuration always yields the
//! same fault sites and the same outcome counts.

use crate::compile::{compile_guarded, guarded_step_count, workload_oracle, GuardedCompile};
use ilpc_core::level::Level;
use ilpc_guard::inject::{inject, Fault, FaultKind};
use ilpc_guard::{GuardConfig, GuardErrorKind, Oracle, StepHook};
use ilpc_ir::lower::lower;
use ilpc_ir::SymTab;
use ilpc_machine::Machine;
use ilpc_sim::{read_symbol, simulate_limited, SimError};
use ilpc_testkit::TestRng;
use ilpc_workloads::{build_all, Workload};
use std::cell::RefCell;
use std::fmt;

/// Classification of one injected fault's fate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Outcome {
    /// The IR verifier rejected the faulted step.
    FlaggedVerifier,
    /// A static pass-delta lint (`ilpc-lint`) rejected the faulted step —
    /// caught without executing anything.
    FlaggedLint,
    /// The per-step differential spot-check rejected the faulted step.
    FlaggedDifferential,
    /// The fault made a pass panic; the firewall contained it.
    FlaggedPanic,
    /// A growth/cycle/dynamic-instruction budget flagged the fault.
    FlaggedBudget,
    /// The final full simulation rejected the module at execution time.
    FlaggedSim,
    /// The fault was architecturally harmless (dead code, commutative
    /// swap, metadata-only) — results stayed correct.
    Tolerated,
    /// **The failure mode that must never happen**: wrong architectural
    /// results and nothing flagged anything.
    SilentEscape,
}

impl Outcome {
    /// Every outcome, flagged classes first.
    pub const ALL: [Outcome; 8] = [
        Outcome::FlaggedVerifier,
        Outcome::FlaggedLint,
        Outcome::FlaggedDifferential,
        Outcome::FlaggedPanic,
        Outcome::FlaggedBudget,
        Outcome::FlaggedSim,
        Outcome::Tolerated,
        Outcome::SilentEscape,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Outcome::FlaggedVerifier => "flagged-verifier",
            Outcome::FlaggedLint => "flagged-lint",
            Outcome::FlaggedDifferential => "flagged-differential",
            Outcome::FlaggedPanic => "flagged-panic",
            Outcome::FlaggedBudget => "flagged-budget",
            Outcome::FlaggedSim => "flagged-sim",
            Outcome::Tolerated => "tolerated",
            Outcome::SilentEscape => "SILENT-ESCAPE",
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Faults to inject.
    pub faults: usize,
    /// PRNG seed; fixes every site choice.
    pub seed: u64,
    /// Workload trip-count scale (small keeps spot-checks fast).
    pub scale: f64,
    /// Transformation level compiled under guard.
    pub level: Level,
    /// Issue width of the target machine.
    pub width: u32,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig { faults: 500, seed: 0xC0FFEE, scale: 0.02, level: Level::Lev4, width: 8 }
    }
}

/// One trial's record.
#[derive(Debug, Clone)]
pub struct FaultRecord {
    pub workload: &'static str,
    /// Fault class name (`operand-swap`, …, or `latency`).
    pub kind: &'static str,
    /// Guarded step the fault was injected into (`None` for latency
    /// faults, which corrupt the machine description, not a step).
    pub step: Option<usize>,
    /// Site description, or why nothing was injected.
    pub fault: String,
    /// Whether the module/machine was actually mutated.
    pub injected: bool,
    pub outcome: Outcome,
}

/// Full campaign results.
#[derive(Debug)]
pub struct CampaignReport {
    pub cfg: CampaignConfig,
    pub records: Vec<FaultRecord>,
}

impl CampaignReport {
    pub fn count(&self, o: Outcome) -> usize {
        self.records.iter().filter(|r| r.outcome == o).count()
    }

    /// The number that must be zero.
    pub fn silent_escapes(&self) -> usize {
        self.count(Outcome::SilentEscape)
    }

    /// Trials where a fault was actually injected (some classes find no
    /// eligible site in some modules).
    pub fn injected(&self) -> usize {
        self.records.iter().filter(|r| r.injected).count()
    }

    /// Static-vs-dynamic catch breakdown over injected faults:
    /// `(static, verifier, dynamic)` counts, where *static* is the
    /// pass-delta lints, *verifier* the structural IR verifier (also
    /// static, but a separate layer), and *dynamic* everything that had to
    /// execute the module (differential, sim, budgets, panics are counted
    /// with the dynamic side since containment happens at run time).
    pub fn static_catch(&self) -> (usize, usize, usize) {
        let lint = self.count(Outcome::FlaggedLint);
        let verifier = self.count(Outcome::FlaggedVerifier);
        let dynamic = [
            Outcome::FlaggedDifferential,
            Outcome::FlaggedPanic,
            Outcome::FlaggedBudget,
            Outcome::FlaggedSim,
        ]
        .into_iter()
        .map(|o| self.count(o))
        .sum();
        (lint, verifier, dynamic)
    }

    /// Render the outcome × fault-class summary table.
    pub fn render(&self) -> String {
        let mut kinds: Vec<&'static str> =
            FaultKind::ALL.iter().map(|k| k.name()).collect();
        kinds.push("latency");
        let mut out = String::new();
        out.push_str(&format!(
            "fault campaign: {} faults, seed {:#x}, {} issue-{}, scale {}\n\n",
            self.cfg.faults, self.cfg.seed, self.cfg.level, self.cfg.width, self.cfg.scale
        ));
        out.push_str(&format!("{:<22}", "outcome"));
        for k in &kinds {
            out.push_str(&format!("{k:>15}"));
        }
        out.push_str(&format!("{:>8}\n", "total"));
        for o in Outcome::ALL {
            out.push_str(&format!("{:<22}", o.name()));
            for k in &kinds {
                let n = self
                    .records
                    .iter()
                    .filter(|r| r.outcome == o && r.kind == *k)
                    .count();
                out.push_str(&format!("{n:>15}"));
            }
            out.push_str(&format!("{:>8}\n", self.count(o)));
        }
        out.push_str(&format!(
            "\ninjected: {} / {} trials; silent escapes: {}\n",
            self.injected(),
            self.records.len(),
            self.silent_escapes()
        ));
        let (lint, verifier, dynamic) = self.static_catch();
        out.push_str(&format!(
            "static catch rate: {lint} lint + {verifier} verifier static, {dynamic} dynamic\n"
        ));
        out
    }
}

/// Final ground-truth check: do the module's architectural results match
/// the oracle's expectations? (NaNs compare unequal, hence the negated
/// comparison.)
fn results_match(oracle: &Oracle, symtab: &SymTab, memory: &[u64]) -> bool {
    oracle.expect.iter().all(|(sym, want)| {
        let got = read_symbol(symtab, memory, *sym);
        got.class() == want.class() && got.max_rel_diff(want) <= oracle.tol
    })
}

/// Classify one guarded compile: incidents first, then the full end-to-end
/// execution as ground truth.
fn classify(w: &Workload, gc: &GuardedCompile, machine: &Machine) -> Outcome {
    if let Some(inc) = gc.guard.incidents.first() {
        return match inc.error.kind {
            GuardErrorKind::VerifierReject => Outcome::FlaggedVerifier,
            GuardErrorKind::StaticLintReject => Outcome::FlaggedLint,
            GuardErrorKind::DifferentialMismatch => Outcome::FlaggedDifferential,
            GuardErrorKind::PassPanic => Outcome::FlaggedPanic,
            GuardErrorKind::BudgetExceeded => Outcome::FlaggedBudget,
        };
    }
    // Nothing flagged during compilation: execute the surviving module on
    // the *target* machine and compare against the reference.
    let lowered = lower(&w.program);
    let oracle = workload_oracle(w, &lowered);
    match simulate_limited(&gc.compiled.module, machine, oracle.init_mem.clone(), oracle.limits)
    {
        Err(SimError::CycleLimit(_) | SimError::DynInstLimit(_)) => Outcome::FlaggedBudget,
        Err(_) => Outcome::FlaggedSim,
        Ok(res) => {
            if results_match(&oracle, &gc.compiled.module.symtab, &res.memory) {
                Outcome::Tolerated
            } else {
                Outcome::SilentEscape
            }
        }
    }
}

/// Corrupt one random latency-table entry (metadata corruption: changes
/// scheduling and timing, never architectural results).
fn perturb_latency(machine: &mut Machine, rng: &mut TestRng) -> String {
    let delta = rng.gen_range(1u32..8);
    let lat = &mut machine.latency;
    let slot = rng.gen_range(0usize..10);
    let (name, field): (&str, &mut u32) = match slot {
        0 => ("int_alu", &mut lat.int_alu),
        1 => ("int_mul", &mut lat.int_mul),
        2 => ("int_div", &mut lat.int_div),
        3 => ("branch", &mut lat.branch),
        4 => ("load", &mut lat.load),
        5 => ("store", &mut lat.store),
        6 => ("fp_alu", &mut lat.fp_alu),
        7 => ("fp_cvt", &mut lat.fp_cvt),
        8 => ("fp_mul", &mut lat.fp_mul),
        _ => ("fp_div", &mut lat.fp_div),
    };
    *field += delta;
    format!("latency {name} skewed by +{delta}")
}

/// Run the campaign. Single-threaded by design: the PRNG stream, and
/// therefore every fault site and count, is a pure function of the seed.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let workloads: Vec<Workload> = build_all(cfg.scale);
    let mut rng = TestRng::seed_from_u64(cfg.seed);
    let mut records = Vec::with_capacity(cfg.faults);

    for _ in 0..cfg.faults {
        let w = &workloads[rng.gen_range(0..workloads.len())];
        let choice = rng.gen_range(0..FaultKind::ALL.len() + 1);

        let record = if choice == FaultKind::ALL.len() {
            // Machine-description fault.
            let mut machine = Machine::issue(cfg.width);
            let desc = perturb_latency(&mut machine, &mut rng);
            let gc = compile_guarded(w, cfg.level, &machine, GuardConfig::default(), None);
            let outcome = classify(w, &gc, &machine);
            FaultRecord {
                workload: w.meta.name,
                kind: "latency",
                step: None,
                fault: desc,
                injected: true,
                outcome,
            }
        } else {
            // IR fault inside a random guarded step.
            let kind = FaultKind::ALL[choice];
            let at_step = rng.gen_range(0..guarded_step_count(cfg.level));
            let mut hook_rng = TestRng::seed_from_u64(rng.next_u64());
            let injected: RefCell<Option<Fault>> = RefCell::new(None);
            let machine = Machine::issue(cfg.width);
            let hook = StepHook {
                at_step,
                action: Box::new(|m| {
                    *injected.borrow_mut() = inject(m, kind, &mut hook_rng);
                }),
            };
            let gc = compile_guarded(w, cfg.level, &machine, GuardConfig::default(), Some(hook));
            let outcome = classify(w, &gc, &machine);
            let injected = injected.into_inner();
            FaultRecord {
                workload: w.meta.name,
                kind: kind.name(),
                step: Some(at_step),
                fault: injected
                    .as_ref()
                    .map(|f| f.to_string())
                    .unwrap_or_else(|| "no eligible site".to_string()),
                injected: injected.is_some(),
                outcome,
            }
        };
        records.push(record);
    }

    CampaignReport { cfg: cfg.clone(), records }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small campaign: deterministic, broad, and — the invariant — free
    /// of silent escapes. The full ≥500-fault campaign runs in the
    /// `fault-campaign` binary and the integration suite.
    #[test]
    fn mini_campaign_has_zero_silent_escapes() {
        let cfg = CampaignConfig { faults: 48, seed: 7, ..CampaignConfig::default() };
        let report = run_campaign(&cfg);
        assert_eq!(report.records.len(), 48);
        assert_eq!(report.silent_escapes(), 0, "\n{}", report.render());
        // The campaign must actually inject most of the time, and at
        // least some faults must be flagged (an all-tolerated campaign
        // would mean the detectors never fired).
        assert!(report.injected() >= 40, "\n{}", report.render());
        let flagged: usize = [
            Outcome::FlaggedVerifier,
            Outcome::FlaggedLint,
            Outcome::FlaggedDifferential,
            Outcome::FlaggedPanic,
            Outcome::FlaggedBudget,
            Outcome::FlaggedSim,
        ]
        .into_iter()
        .map(|o| report.count(o))
        .sum();
        assert!(flagged >= 10, "only {flagged} flagged:\n{}", report.render());
    }

    /// The static pre-check must actually catch faults — a nonzero lint
    /// share of the catch-rate breakdown, deterministically per seed.
    #[test]
    fn static_lints_catch_some_faults() {
        let cfg = CampaignConfig { faults: 120, seed: 7, ..CampaignConfig::default() };
        let report = run_campaign(&cfg);
        let (lint, verifier, dynamic) = report.static_catch();
        assert!(
            lint > 0,
            "static lints caught nothing (verifier {verifier}, dynamic {dynamic}):\n{}",
            report.render()
        );
        assert_eq!(report.silent_escapes(), 0, "\n{}", report.render());
    }

    /// Same seed → byte-identical records.
    #[test]
    fn campaign_is_deterministic() {
        let cfg = CampaignConfig { faults: 16, seed: 99, ..CampaignConfig::default() };
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.workload, y.workload);
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.step, y.step);
            assert_eq!(x.fault, y.fault);
            assert_eq!(x.outcome, y.outcome);
        }
        assert_eq!(a.render(), b.render());
    }
}
