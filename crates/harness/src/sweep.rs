//! Multi-scenario parameter sweeps on one work-stealing pool.
//!
//! A **sweep** crosses the evaluation grid (40 loops × levels × widths)
//! with N *scenarios* — memory configurations and/or latency tables — in
//! one call. Compared with calling [`crate::grid::run_grid`] once per
//! scenario it differs in two ways that matter at scale:
//!
//! * **one scheduler, no barriers**: every (scenario, loop, level, width)
//!   point goes into a single work-stealing pool, so a scenario whose
//!   points are expensive (a cold cache, a slow latency table) is drained
//!   by workers that finished a cheap scenario early, instead of
//!   serializing behind a per-grid fork-join barrier;
//! * **one artifact cache**: compilation depends only on the machine's
//!   compile key, so all memory-config scenarios share compiled and
//!   pre-decoded artifacts (latency-table scenarios get their own keys
//!   automatically — the table is compile-relevant).
//!
//! The result splits back into one observably ordinary [`Grid`] per
//! scenario, so every existing aggregation, figure and report works
//! unchanged on sweep output.

use crate::artifact::{ArtifactCache, CacheCounters};
use crate::grid::{
    collect_grid, eval_point_contained, validate_axes, Grid, GridConfigError, Sabotage,
};
use crate::steal::{self, StealStats};
use ilpc_core::level::Level;
use ilpc_machine::{LatencyTable, Machine, MemConfig, TABLE1};
use ilpc_workloads::{build_all, Workload, WorkloadMeta};
use std::sync::Arc;

/// One scenario of a sweep: a memory hierarchy, a latency table, and a
/// vector length for the SLP subsystem.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Display label (defaults to the memory config's name).
    pub label: String,
    pub mem: MemConfig,
    pub latency: LatencyTable,
    /// Vector length handed to the machine (`1` = scalar; only `Lev6`
    /// reacts to it). Compile-relevant, so each VLEN gets its own
    /// artifact-cache keys automatically.
    pub vlen: u32,
}

impl Scenario {
    /// A scenario varying only the memory hierarchy (Table 1 latencies).
    pub fn mem(mem: MemConfig) -> Scenario {
        Scenario { label: mem.name(), mem, latency: TABLE1, vlen: 1 }
    }

    /// A scenario with an explicit latency table.
    pub fn with_latency(label: impl Into<String>, mem: MemConfig, latency: LatencyTable) -> Scenario {
        Scenario { label: label.into(), mem, latency, vlen: 1 }
    }

    /// A scenario varying only the vector length (perfect memory,
    /// Table 1 latencies) — the axis the `vlen-sweep` harness crosses
    /// with issue width.
    pub fn vlen(vlen: u32) -> Scenario {
        Scenario { label: format!("v{vlen}"), mem: MemConfig::Perfect, latency: TABLE1, vlen }
    }
}

/// Sweep configuration: the grid axes plus the scenario list.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Trip-count scale (1.0 = the paper's Table 2 counts).
    pub scale: f64,
    /// Levels to evaluate (validated exactly like [`crate::grid::GridConfig`]).
    pub levels: Vec<Level>,
    /// Issue widths to evaluate (must include the base width 1).
    pub widths: Vec<u32>,
    /// Worker threads for the shared pool.
    pub threads: usize,
    /// Scenarios to cross with the grid. Must be non-empty.
    pub scenarios: Vec<Scenario>,
    /// Deliberately break matching points (fault drills and tests only).
    /// A sabotage directive matches its (workload, level, width) in
    /// *every* scenario.
    pub sabotage: Option<Sabotage>,
    /// Shared compile-artifact cache. `None` (the default) creates a
    /// fresh cache for this sweep; pass `Some` to share artifacts across
    /// sweeps of the same catalog and scale (see [`ArtifactCache`]).
    pub artifacts: Option<Arc<ArtifactCache>>,
}

impl SweepConfig {
    /// Split into one single-scenario config per scenario — the shard
    /// unit the `ilpc-serve` pool supervisor distributes across worker
    /// processes. Each split shares this config's artifact cache handle
    /// (within one process; across processes each worker holds its own),
    /// keeps the axes and sabotage directive verbatim, and is therefore
    /// equivalent to the original: running the splits and concatenating
    /// their grids in order yields exactly `run_sweep(self)`'s grids,
    /// because scenarios never interact — only the stealing pool and the
    /// cache are shared, and neither changes results.
    pub fn split_per_scenario(&self) -> Vec<SweepConfig> {
        self.scenarios
            .iter()
            .map(|s| SweepConfig { scenarios: vec![s.clone()], ..self.clone() })
            .collect()
    }
}

impl Default for SweepConfig {
    fn default() -> SweepConfig {
        SweepConfig {
            scale: 1.0,
            levels: Level::ALL.to_vec(),
            widths: vec![1, 2, 4, 8],
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            scenarios: vec![Scenario::mem(MemConfig::Perfect)],
            sabotage: None,
            artifacts: None,
        }
    }
}

/// Results of a sweep: one [`Grid`] per scenario (parallel vectors), plus
/// scheduler and cache observability.
#[derive(Debug)]
pub struct Sweep {
    pub scenarios: Vec<Scenario>,
    pub grids: Vec<Grid>,
    /// Artifact-cache counters after the sweep (hits/compiles across all
    /// scenarios — the dedup the shared cache bought).
    pub cache: CacheCounters,
    /// Work-stealing scheduler counters.
    pub steals: StealStats,
}

impl Sweep {
    /// The grid for the scenario labelled `label`, if any.
    pub fn grid(&self, label: &str) -> Option<&Grid> {
        self.scenarios
            .iter()
            .position(|s| s.label == label)
            .map(|i| &self.grids[i])
    }

    /// Total failed points across all scenarios.
    pub fn total_errors(&self) -> usize {
        self.grids.iter().map(|g| g.errors.len()).sum()
    }
}

/// Run a multi-scenario sweep on one work-stealing pool with one shared
/// artifact cache. Grid axes are validated exactly like [`crate::grid::run_grid`].
pub fn run_sweep(cfg: &SweepConfig) -> Result<Sweep, GridConfigError> {
    let (levels, widths) = validate_axes(cfg.scale, &cfg.levels, &cfg.widths)?;
    if cfg.scenarios.is_empty() {
        return Err(GridConfigError::NoScenarios);
    }
    let workloads: Vec<Workload> = build_all(cfg.scale);
    let meta: Vec<WorkloadMeta> = workloads.iter().map(|w| w.meta.clone()).collect();
    let artifacts: Arc<ArtifactCache> =
        cfg.artifacts.clone().unwrap_or_else(|| Arc::new(ArtifactCache::new()));

    // Work items: (scenario, workload, level, width) — scenario-major so
    // early scenarios warm the artifact cache for later ones.
    let mut items: Vec<(usize, usize, Level, u32)> = Vec::new();
    for (si, _) in cfg.scenarios.iter().enumerate() {
        for (wi, _) in workloads.iter().enumerate() {
            for &level in &levels {
                for &width in &widths {
                    items.push((si, wi, level, width));
                }
            }
        }
    }

    let (results, steals) =
        steal::execute(&items, cfg.threads.max(1), |_, &(si, wi, level, width)| {
            let scenario = &cfg.scenarios[si];
            let w = &workloads[wi];
            let machine = Machine {
                latency: scenario.latency,
                ..Machine::issue(width).with_mem(scenario.mem).with_vlen(scenario.vlen)
            };
            let r = eval_point_contained(
                w,
                level,
                width,
                &machine,
                cfg.sabotage.as_ref(),
                Some(&artifacts),
            );
            (si, (w.meta.name.to_string(), level, width), r)
        });

    // Split per scenario, preserving engine-observable ordering.
    let mut buckets: Vec<Vec<_>> = cfg.scenarios.iter().map(|_| Vec::new()).collect();
    for (si, key, r) in results {
        buckets[si].push((key, r));
    }
    let grids = buckets
        .into_iter()
        .map(|b| collect_grid(meta.clone(), levels.clone(), widths.clone(), b))
        .collect();

    Ok(Sweep {
        scenarios: cfg.scenarios.clone(),
        grids,
        cache: artifacts.counters(),
        steals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{run_grid, GridConfig, PointError, SabotageMode};
    use ilpc_machine::CacheParams;

    fn mini_axes() -> (Vec<Level>, Vec<u32>) {
        (vec![Level::Conv, Level::Lev2], vec![1, 8])
    }

    /// A two-scenario sweep equals two independent grid runs, while
    /// compiling each (workload, level, width) exactly once across both.
    #[test]
    fn sweep_matches_independent_grids_and_shares_artifacts() {
        let (levels, widths) = mini_axes();
        let scenarios = vec![
            Scenario::mem(MemConfig::Perfect),
            Scenario::mem(MemConfig::Cache(CacheParams::small())),
        ];
        let sweep = run_sweep(&SweepConfig {
            scale: 0.02,
            levels: levels.clone(),
            widths: widths.clone(),
            threads: 4,
            scenarios: scenarios.clone(),
            sabotage: None,
            artifacts: None,
        })
        .unwrap();
        assert_eq!(sweep.grids.len(), 2);
        assert_eq!(sweep.total_errors(), 0);

        for (i, scenario) in scenarios.iter().enumerate() {
            let alone = run_grid(&GridConfig {
                scale: 0.02,
                levels: levels.clone(),
                widths: widths.clone(),
                threads: 4,
                mem: scenario.mem,
                sabotage: None,
                artifacts: None,
            })
            .unwrap();
            let got: Vec<_> = sweep.grids[i].iter_points().collect();
            let want: Vec<_> = alone.iter_points().collect();
            assert_eq!(got, want, "scenario {}", scenario.label);
            assert_eq!(sweep.grid(&scenario.label).unwrap().completed(), alone.completed());
        }

        // One compile per (workload, level, width): the cached scenario
        // reused every artifact (memory config is not compile-relevant).
        let distinct = (40 * levels.len() * widths.len()) as u64;
        assert_eq!(sweep.cache.compiles, distinct, "{:?}", sweep.cache);
        assert_eq!(sweep.cache.hits, distinct, "{:?}", sweep.cache);
    }

    /// Splitting a sweep per scenario and concatenating the split grids
    /// reproduces the unsplit sweep exactly — the equivalence the pool
    /// supervisor's sweep sharding rests on.
    #[test]
    fn split_per_scenario_is_equivalent_to_the_whole() {
        let (levels, widths) = mini_axes();
        let cfg = SweepConfig {
            scale: 0.02,
            levels,
            widths,
            threads: 4,
            scenarios: vec![
                Scenario::mem(MemConfig::Perfect),
                Scenario::mem(MemConfig::Cache(CacheParams::small())),
            ],
            sabotage: None,
            artifacts: None,
        };
        let whole = run_sweep(&cfg).unwrap();

        let splits = cfg.split_per_scenario();
        assert_eq!(splits.len(), 2);
        for (i, split) in splits.iter().enumerate() {
            assert_eq!(split.scenarios.len(), 1);
            assert_eq!(split.scenarios[0].label, cfg.scenarios[i].label);
            assert_eq!(split.scale, cfg.scale);
            assert_eq!(split.levels, cfg.levels);
            assert_eq!(split.widths, cfg.widths);
            let part = run_sweep(split).unwrap();
            assert_eq!(part.grids.len(), 1);
            let got: Vec<_> = part.grids[0].iter_points().collect();
            let want: Vec<_> = whole.grids[i].iter_points().collect();
            assert_eq!(got, want, "split {i} diverged from the unsplit sweep");
            assert_eq!(part.grids[0].completed(), whole.grids[i].completed());
            assert_eq!(part.grids[0].errors.len(), whole.grids[i].errors.len());
        }
    }

    /// A latency-table scenario gets its own compile keys: the table is
    /// compile-relevant (list scheduling reads it), so artifacts must NOT
    /// be shared across tables — and results must differ.
    #[test]
    fn latency_scenarios_do_not_share_artifacts() {
        let (levels, widths) = mini_axes();
        let slow_fp = LatencyTable { fp_alu: 9, ..TABLE1 };
        let sweep = run_sweep(&SweepConfig {
            scale: 0.02,
            levels,
            widths,
            threads: 4,
            scenarios: vec![
                Scenario::mem(MemConfig::Perfect),
                Scenario::with_latency("slow-fp", MemConfig::Perfect, slow_fp),
            ],
            sabotage: None,
            artifacts: None,
        })
        .unwrap();
        assert_eq!(sweep.total_errors(), 0);
        // Two latency tables → two compile keys per (workload, level, width).
        assert_eq!(sweep.cache.compiles, 2 * 40 * 2 * 2, "{:?}", sweep.cache);
        assert_eq!(sweep.cache.hits, 0, "{:?}", sweep.cache);
        // Slower FP must cost cycles somewhere (dotprod is FP-bound).
        let fast = sweep.grids[0].point("dotprod", Level::Lev2, 8).unwrap().cycles;
        let slow = sweep.grids[1].point("dotprod", Level::Lev2, 8).unwrap().cycles;
        assert!(slow > fast, "slow-fp {slow} vs table1 {fast}");
    }

    /// A sabotaged point degrades in every scenario it matches while the
    /// rest of the sweep completes — per-scenario typed errors, no abort.
    #[test]
    fn sabotage_degrades_per_scenario() {
        let (levels, widths) = mini_axes();
        let sweep = run_sweep(&SweepConfig {
            scale: 0.02,
            levels,
            widths,
            threads: 4,
            scenarios: vec![
                Scenario::mem(MemConfig::Perfect),
                Scenario::mem(MemConfig::Cache(CacheParams::small())),
            ],
            sabotage: Some(Sabotage {
                workload: "dotprod".to_string(),
                level: Level::Lev2,
                width: 8,
                mode: SabotageMode::Panic,
            }),
            artifacts: None,
        })
        .unwrap();
        for g in &sweep.grids {
            assert_eq!(g.errors.len(), 1, "{:#?}", g.errors);
            assert!(matches!(&g.errors[0].error, PointError::Panic(m) if m.contains("sabotaged")));
            assert_eq!(g.completed(), 40 * 2 * 2 - 1);
        }
    }

    /// Sweep validation reuses the grid's typed errors and adds its own.
    #[test]
    fn sweep_validation_is_typed() {
        let bad = SweepConfig {
            scale: 0.02,
            widths: vec![2, 8],
            ..SweepConfig::default()
        };
        assert_eq!(run_sweep(&bad).unwrap_err(), GridConfigError::MissingBaseWidth);
        let none = SweepConfig { scale: 0.02, scenarios: vec![], ..SweepConfig::default() };
        assert_eq!(run_sweep(&none).unwrap_err(), GridConfigError::NoScenarios);
    }
}
