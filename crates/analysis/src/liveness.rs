//! Live-variable analysis.
//!
//! Classic backward may-analysis over the CFG. Works on blocks containing
//! mid-block side exits (superblocks): a block's `gen` set contains every
//! register read before being written *anywhere in the block* — this is
//! conservative for uses that only happen after a side exit, which is the
//! safe direction for both dead-code elimination and speculation checks.

use crate::regset::RegSet;
use ilpc_ir::{BlockId, Function, RegClass};

/// Per-block liveness sets.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Registers live on entry to each block (indexed by `BlockId.0`).
    pub live_in: Vec<RegSet>,
    /// Registers live on exit from each block.
    pub live_out: Vec<RegSet>,
}

impl Liveness {
    /// Compute liveness for `f`.
    pub fn compute(f: &Function) -> Liveness {
        let n = f.num_blocks();
        let caps = [
            f.vreg_count(RegClass::Int),
            f.vreg_count(RegClass::Flt),
            f.vreg_count(RegClass::Vec),
        ];

        // gen/kill per block.
        let mut gen = vec![RegSet::with_capacity(caps); n];
        let mut kill = vec![RegSet::with_capacity(caps); n];
        for &bid in f.layout_order() {
            let g = &mut gen[bid.0 as usize];
            let k = &mut kill[bid.0 as usize];
            for inst in &f.block(bid).insts {
                for u in inst.uses() {
                    if !k.contains(u) {
                        g.insert(u);
                    }
                }
                if let Some(d) = inst.def() {
                    k.insert(d);
                }
            }
        }

        let mut live_in = vec![RegSet::with_capacity(caps); n];
        let mut live_out = vec![RegSet::with_capacity(caps); n];

        // Iterate to fixpoint, sweeping blocks in reverse layout order.
        let order: Vec<BlockId> = f.layout_order().iter().rev().copied().collect();
        let mut changed = true;
        while changed {
            changed = false;
            for &bid in &order {
                let i = bid.0 as usize;
                let mut out = std::mem::take(&mut live_out[i]);
                for s in f.succs(bid) {
                    out.union_with(&live_in[s.0 as usize]);
                }
                let in_changed = {
                    let inn = &mut live_in[i];
                    let mut c = inn.union_with_minus(&out, &kill[i]);
                    c |= inn.union_with(&gen[i]);
                    c
                };
                live_out[i] = out;
                changed |= in_changed;
            }
        }
        Liveness { live_in, live_out }
    }

    /// Registers live on entry to `b`.
    pub fn live_in(&self, b: BlockId) -> &RegSet {
        &self.live_in[b.0 as usize]
    }

    /// Registers live on exit from `b`.
    pub fn live_out(&self, b: BlockId) -> &RegSet {
        &self.live_out[b.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilpc_ir::inst::{Inst, MemLoc};
    use ilpc_ir::{Cond, Module, Operand, RegClass};

    /// Build a counted loop: s accumulates A[i] (registers only).
    fn loop_func() -> (Module, BlockId, BlockId, BlockId) {
        let mut m = Module::new("t");
        let a = m.symtab.declare("A", 8, RegClass::Flt);
        let f = &mut m.func;
        let i = f.new_reg(RegClass::Int);
        let n = f.new_reg(RegClass::Int);
        let s = f.new_reg(RegClass::Flt);
        let t = f.new_reg(RegClass::Flt);
        let entry = f.add_block("entry");
        let body = f.add_block("body");
        let exit = f.add_block("exit");
        f.block_mut(entry).insts.extend([
            Inst::mov(i, Operand::ImmI(0)),
            Inst::mov(n, Operand::ImmI(8)),
            Inst::mov(s, Operand::ImmF(0.0)),
        ]);
        f.block_mut(body).insts.extend([
            Inst::load(t, Operand::Sym(a), i.into(), MemLoc::affine(a, 1, 0)),
            Inst::alu(ilpc_ir::Opcode::FAdd, s, s.into(), t.into()),
            Inst::alu(ilpc_ir::Opcode::Add, i, i.into(), Operand::ImmI(1)),
            Inst::br(Cond::Lt, i.into(), n.into(), body),
        ]);
        f.block_mut(exit).insts.extend([
            Inst::store(Operand::Sym(a), Operand::ImmI(0), s.into(), MemLoc::affine(a, 0, 0)),
            Inst::halt(),
        ]);
        (m, entry, body, exit)
    }

    #[test]
    fn loop_carried_values_live_around_backedge() {
        let (m, entry, body, exit) = loop_func();
        let lv = Liveness::compute(&m.func);
        let i = ilpc_ir::Reg::int(0);
        let n = ilpc_ir::Reg::int(1);
        let s = ilpc_ir::Reg::flt(0);
        let t = ilpc_ir::Reg::flt(1);
        // i, n, s live into the body (loop-carried); t is block-local.
        assert!(lv.live_in(body).contains(i));
        assert!(lv.live_in(body).contains(n));
        assert!(lv.live_in(body).contains(s));
        assert!(!lv.live_in(body).contains(t));
        // s live out of the loop into exit; i/n dead after the loop.
        assert!(lv.live_in(exit).contains(s));
        assert!(!lv.live_in(exit).contains(i));
        // nothing live into entry
        assert!(lv.live_in(entry).is_empty());
        // nothing live out of exit
        assert!(lv.live_out(exit).is_empty());
    }
}
