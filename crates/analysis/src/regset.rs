//! Dense register sets.
//!
//! Liveness and dataflow work over sets of virtual registers. Since register
//! ids are dense per class, a pair of bit vectors is both compact and fast —
//! the hot operations (union, difference-union in the liveness fixpoint) are
//! word-parallel, per the hpc-parallel guidance of avoiding per-element hash
//! operations in inner analysis loops.

use ilpc_ir::{Reg, RegClass};

/// A set of virtual registers, represented as one bit vector per register
/// class.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RegSet {
    words: [Vec<u64>; 3],
}

impl RegSet {
    /// Empty set.
    pub fn new() -> RegSet {
        RegSet::default()
    }

    /// Empty set pre-sized for `counts` registers per class.
    pub fn with_capacity(counts: [u32; 3]) -> RegSet {
        RegSet {
            words: counts.map(|c| vec![0; (c as usize + 63) / 64]),
        }
    }

    #[inline]
    fn slot(r: Reg) -> (usize, usize, u64) {
        (r.class.index(), (r.id / 64) as usize, 1u64 << (r.id % 64))
    }

    /// Insert `r`; returns true if newly inserted.
    pub fn insert(&mut self, r: Reg) -> bool {
        let (c, w, b) = Self::slot(r);
        let words = &mut self.words[c];
        if words.len() <= w {
            words.resize(w + 1, 0);
        }
        let was = words[w] & b != 0;
        words[w] |= b;
        !was
    }

    /// Remove `r`; returns true if it was present.
    pub fn remove(&mut self, r: Reg) -> bool {
        let (c, w, b) = Self::slot(r);
        if let Some(word) = self.words[c].get_mut(w) {
            let was = *word & b != 0;
            *word &= !b;
            return was;
        }
        false
    }

    /// Membership test.
    pub fn contains(&self, r: Reg) -> bool {
        let (c, w, b) = Self::slot(r);
        self.words[c].get(w).is_some_and(|word| word & b != 0)
    }

    /// `self |= other`; returns true if `self` changed.
    pub fn union_with(&mut self, other: &RegSet) -> bool {
        let mut changed = false;
        for c in 0..3 {
            let (dst, src) = (&mut self.words[c], &other.words[c]);
            if dst.len() < src.len() {
                dst.resize(src.len(), 0);
            }
            for (d, s) in dst.iter_mut().zip(src) {
                let next = *d | s;
                changed |= next != *d;
                *d = next;
            }
        }
        changed
    }

    /// `self |= other \ minus`; returns true if `self` changed.
    /// This is the liveness transfer `in = gen ∪ (out − kill)` inner step.
    pub fn union_with_minus(&mut self, other: &RegSet, minus: &RegSet) -> bool {
        let mut changed = false;
        for c in 0..3 {
            let dst = &mut self.words[c];
            let src = &other.words[c];
            if dst.len() < src.len() {
                dst.resize(src.len(), 0);
            }
            for (w, s) in src.iter().enumerate() {
                let m = minus.words[c].get(w).copied().unwrap_or(0);
                let next = dst[w] | (s & !m);
                changed |= next != dst[w];
                dst[w] = next;
            }
        }
        changed
    }

    /// Number of registers in the set.
    pub fn len(&self) -> usize {
        self.words
            .iter()
            .flat_map(|v| v.iter())
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|v| v.iter().all(|w| *w == 0))
    }

    /// Iterate members.
    pub fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
        RegClass::ALL.iter().flat_map(move |&class| {
            self.words[class.index()]
                .iter()
                .enumerate()
                .flat_map(move |(wi, &word)| {
                    (0..64).filter_map(move |bit| {
                        if word & (1 << bit) != 0 {
                            Some(Reg { id: (wi * 64 + bit) as u32, class })
                        } else {
                            None
                        }
                    })
                })
        })
    }
}

impl FromIterator<Reg> for RegSet {
    fn from_iter<T: IntoIterator<Item = Reg>>(iter: T) -> RegSet {
        let mut s = RegSet::new();
        for r in iter {
            s.insert(r);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = RegSet::new();
        assert!(s.insert(Reg::int(3)));
        assert!(!s.insert(Reg::int(3)));
        assert!(s.insert(Reg::flt(3)));
        assert!(s.contains(Reg::int(3)));
        assert!(s.contains(Reg::flt(3)));
        assert!(!s.contains(Reg::int(4)));
        assert_eq!(s.len(), 2);
        assert!(s.remove(Reg::int(3)));
        assert!(!s.remove(Reg::int(3)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn union_and_transfer() {
        let a: RegSet = [Reg::int(1), Reg::int(100)].into_iter().collect();
        let b: RegSet = [Reg::int(1), Reg::flt(2)].into_iter().collect();
        let mut c = a.clone();
        assert!(c.union_with(&b));
        assert_eq!(c.len(), 3);
        assert!(!c.union_with(&b)); // idempotent

        // in = gen ∪ (out − kill)
        let out: RegSet = [Reg::int(5), Reg::int(6)].into_iter().collect();
        let kill: RegSet = [Reg::int(6)].into_iter().collect();
        let mut inn: RegSet = [Reg::int(7)].into_iter().collect();
        inn.union_with_minus(&out, &kill);
        assert!(inn.contains(Reg::int(5)));
        assert!(!inn.contains(Reg::int(6)));
        assert!(inn.contains(Reg::int(7)));
    }

    #[test]
    fn iter_roundtrip() {
        let regs = vec![Reg::int(0), Reg::int(64), Reg::flt(1), Reg::flt(65)];
        let s: RegSet = regs.iter().copied().collect();
        let back: Vec<Reg> = s.iter().collect();
        assert_eq!(back.len(), 4);
        for r in regs {
            assert!(back.contains(&r));
        }
    }
}
