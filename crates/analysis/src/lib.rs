//! # ilpc-analysis — program analyses for the ILPC compiler
//!
//! Dataflow and structural analyses shared by the classical optimizer
//! (`ilpc-opt`), the ILP transformations (`ilpc-core`), the superblock
//! scheduler (`ilpc-sched`) and the register usage estimator
//! (`ilpc-regalloc`): register sets, liveness, def/use summaries,
//! dominators, natural/counted loops, and intra-block dependence graphs.

pub mod defuse;
pub mod deps;
pub mod dom;
pub mod liveness;
pub mod loops;
pub mod regset;

pub use defuse::{invariant_in, DefUse};
pub use deps::{build_block_deps, Dep, DepGraph, DepKind};
pub use dom::Dominators;
pub use liveness::Liveness;
pub use loops::{as_counted_loop, CountedLoop, Loop, LoopForest};
pub use regset::RegSet;
