//! Def/use summaries.
//!
//! Cheap whole-function counts of definitions and uses per virtual register,
//! used by copy propagation, dead-code elimination, the renamer and the
//! expansion transformations (e.g. "V is only referenced by its own
//! increment instructions" in the paper's Figure 2 algorithm).

use ilpc_ir::{BlockId, Function, Reg, RegClass};

/// Definition and use counts per register.
#[derive(Debug, Clone)]
pub struct DefUse {
    defs: [Vec<u32>; 3],
    uses: [Vec<u32>; 3],
}

impl DefUse {
    /// Compute counts over the whole function.
    pub fn compute(f: &Function) -> DefUse {
        let counts = RegClass::ALL.map(|c| vec![0; f.vreg_count(c) as usize]);
        let mut du = DefUse { defs: counts.clone(), uses: counts };
        for (_, inst) in f.insts() {
            if let Some(d) = inst.def() {
                du.defs[d.class.index()][d.id as usize] += 1;
            }
            for u in inst.uses() {
                du.uses[u.class.index()][u.id as usize] += 1;
            }
        }
        du
    }

    /// Number of definitions of `r`.
    pub fn num_defs(&self, r: Reg) -> u32 {
        self.defs[r.class.index()].get(r.id as usize).copied().unwrap_or(0)
    }

    /// Number of uses of `r`.
    pub fn num_uses(&self, r: Reg) -> u32 {
        self.uses[r.class.index()].get(r.id as usize).copied().unwrap_or(0)
    }
}

/// True if `r` has no definitions within the given loop blocks
/// (i.e. is invariant with respect to that loop).
pub fn invariant_in(f: &Function, blocks: &[BlockId], r: Reg) -> bool {
    blocks
        .iter()
        .all(|&b| f.block(b).insts.iter().all(|i| i.def() != Some(r)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilpc_ir::inst::Inst;
    use ilpc_ir::{Function, Opcode, Operand};

    #[test]
    fn counts_defs_and_uses() {
        let mut f = Function::new("t");
        let a = f.new_reg(RegClass::Int);
        let b = f.new_reg(RegClass::Int);
        let blk = f.add_block("entry");
        f.block_mut(blk).insts.extend([
            Inst::mov(a, Operand::ImmI(1)),
            Inst::alu(Opcode::Add, b, a.into(), a.into()),
            Inst::alu(Opcode::Add, a, a.into(), b.into()),
            Inst::halt(),
        ]);
        let du = DefUse::compute(&f);
        assert_eq!(du.num_defs(a), 2);
        assert_eq!(du.num_uses(a), 3);
        assert_eq!(du.num_defs(b), 1);
        assert_eq!(du.num_uses(b), 1);
    }

    #[test]
    fn invariance() {
        let mut f = Function::new("t");
        let a = f.new_reg(RegClass::Int);
        let b = f.new_reg(RegClass::Int);
        let b0 = f.add_block("b0");
        let b1 = f.add_block("b1");
        f.block_mut(b0).insts.push(Inst::mov(a, Operand::ImmI(1)));
        f.block_mut(b1).insts.push(Inst::mov(b, Operand::ImmI(2)));
        f.block_mut(b1).insts.push(Inst::halt());
        assert!(invariant_in(&f, &[b1], a));
        assert!(!invariant_in(&f, &[b1], b));
    }
}
