//! Dominator computation.
//!
//! Straightforward iterative dataflow dominators over reachable blocks —
//! functions in this workspace have at most a few hundred blocks, where the
//! simple algorithm is both fast and obviously correct.

use ilpc_ir::{BlockId, Function};

/// Dominator sets per block.
#[derive(Debug, Clone)]
pub struct Dominators {
    /// `doms[b]` = blocks dominating `b` (as a bit vector over block ids).
    doms: Vec<Vec<bool>>,
    /// Reachability from entry.
    reachable: Vec<bool>,
}

impl Dominators {
    /// Compute dominators of `f` from its entry block. A function with an
    /// empty layout has no entry: every block is unreachable and nothing
    /// dominates anything.
    pub fn compute(f: &Function) -> Dominators {
        let n = f.num_blocks();
        if f.layout_order().is_empty() {
            return Dominators { doms: vec![vec![false; n]; n], reachable: vec![false; n] };
        }
        let entry = f.entry();

        // Reachability (blocks outside the layout or unreachable don't get
        // dominator info).
        let mut reachable = vec![false; n];
        let mut stack = vec![entry];
        while let Some(b) = stack.pop() {
            if std::mem::replace(&mut reachable[b.0 as usize], true) {
                continue;
            }
            stack.extend(f.succs(b));
        }

        let mut doms = vec![vec![true; n]; n];
        doms[entry.0 as usize] = vec![false; n];
        doms[entry.0 as usize][entry.0 as usize] = true;

        let preds = f.preds();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in f.layout_order() {
                let bi = b.0 as usize;
                if b == entry || !reachable[bi] {
                    continue;
                }
                // new = {b} ∪ ∩ preds
                let mut new = vec![true; n];
                let mut any_pred = false;
                for p in preds[bi].iter().filter(|p| reachable[p.0 as usize]) {
                    any_pred = true;
                    for (nw, pd) in new.iter_mut().zip(&doms[p.0 as usize]) {
                        *nw &= *pd;
                    }
                }
                if !any_pred {
                    new = vec![false; n];
                }
                new[bi] = true;
                if new != doms[bi] {
                    doms[bi] = new;
                    changed = true;
                }
            }
        }
        Dominators { doms, reachable }
    }

    /// True if `a` dominates `b`.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        self.reachable[b.0 as usize] && self.doms[b.0 as usize][a.0 as usize]
    }

    /// True if `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.reachable[b.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilpc_ir::inst::Inst;
    use ilpc_ir::{Cond, Function, Operand};

    #[test]
    fn diamond_dominators() {
        // entry -> {then | else} -> join -> (halt)
        let mut f = Function::new("t");
        let entry = f.add_block("entry");
        let then = f.add_block("then");
        let els = f.add_block("else");
        let join = f.add_block("join");
        f.block_mut(entry).insts.push(Inst::br(
            Cond::Eq,
            Operand::ImmI(0),
            Operand::ImmI(0),
            els,
        ));
        f.block_mut(then).insts.push(Inst::jump(join));
        // els falls through to join
        f.block_mut(join).insts.push(Inst::halt());

        let d = Dominators::compute(&f);
        assert!(d.dominates(entry, join));
        assert!(d.dominates(entry, then));
        assert!(!d.dominates(then, join));
        assert!(!d.dominates(els, join));
        assert!(d.dominates(join, join));
    }

    #[test]
    fn loop_header_dominates_latch() {
        let mut f = Function::new("t");
        let entry = f.add_block("entry");
        let header = f.add_block("header");
        let latch = f.add_block("latch");
        let exit = f.add_block("exit");
        let _ = entry;
        f.block_mut(latch).insts.push(Inst::br(
            Cond::Lt,
            Operand::ImmI(0),
            Operand::ImmI(1),
            header,
        ));
        f.block_mut(exit).insts.push(Inst::halt());
        let d = Dominators::compute(&f);
        assert!(d.dominates(header, latch));
        assert!(d.dominates(header, exit));
        assert!(!d.dominates(latch, header));
    }
}
