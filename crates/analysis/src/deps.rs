//! Intra-block dependence graph construction.
//!
//! Builds the DAG that drives list scheduling of a (super)block. Edges carry
//! a `min_delay`: the consumer may issue no earlier than `producer issue +
//! min_delay` cycles. A zero delay still constrains *linear order* — the
//! scheduler emits same-cycle instructions respecting edge direction, which
//! the in-order simulator then executes sequentially within the cycle.
//!
//! Edge rules (matching the simulator's interlock semantics exactly):
//!
//! * **Flow** (RAW): delay = producer latency.
//! * **Anti** (WAR): delay = 0 (registers are read at issue).
//! * **Output** (WAW): delay = `max(1, lat(from) + 1 − lat(to))` so the
//!   later write also *completes* later.
//! * **Memory**: `store→load` on may-aliasing locations gets delay 1
//!   (store visibility is issue+1); `load→store` and `store→store` get
//!   delay 0 — order-only edges. Same-cycle instructions execute in linear
//!   order on the modeled machine, so an ordered aliasing store pair may
//!   share a cycle (the paper's Figure 5d issues all three `C` stores at
//!   cycle 5).
//! * **Control**: a later instruction may be hoisted above an earlier
//!   branch only when the caller-provided policy allows it (non-excepting
//!   loads, no side effects, destination dead on the taken path); otherwise
//!   an order edge (delay 0) pins it. Stores and register writes that are
//!   live at a branch target are likewise pinned *before* later branches.
//! * **Halt** is a full barrier.

use ilpc_ir::{Inst, Opcode};

/// Dependence kind (for diagnostics and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepKind {
    Flow,
    Anti,
    Output,
    MemFlow,
    MemAnti,
    MemOutput,
    Control,
}

/// One dependence edge: `to` may issue no earlier than
/// `issue(from) + min_delay`.
#[derive(Debug, Clone, Copy)]
pub struct Dep {
    pub from: usize,
    pub to: usize,
    pub kind: DepKind,
    pub min_delay: u32,
}

/// Dependence DAG over the instructions of one block.
#[derive(Debug, Clone)]
pub struct DepGraph {
    pub n: usize,
    pub edges: Vec<Dep>,
    /// For each node, indices into `edges` of incoming edges.
    pub preds: Vec<Vec<usize>>,
    /// For each node, indices into `edges` of outgoing edges.
    pub succs: Vec<Vec<usize>>,
}

impl DepGraph {
    fn add(&mut self, from: usize, to: usize, kind: DepKind, min_delay: u32) {
        debug_assert!(from < to, "dependence edges point forward");
        let idx = self.edges.len();
        self.edges.push(Dep { from, to, kind, min_delay });
        self.preds[to].push(idx);
        self.succs[from].push(idx);
    }

    /// Longest path (in delay) from each node to any sink, used as the
    /// list-scheduling priority ("critical path" heuristic). The latency of
    /// the node itself is added so long-latency roots rank high.
    pub fn critical_path(&self, latency_of: impl Fn(usize) -> u32) -> Vec<u32> {
        let mut height = vec![0u32; self.n];
        for i in (0..self.n).rev() {
            let mut h = latency_of(i);
            for &e in &self.succs[i] {
                let d = &self.edges[e];
                h = h.max(d.min_delay + height[d.to]);
            }
            height[i] = h;
        }
        height
    }
}

/// Policy hook: may instruction `later` be hoisted above `branch`?
pub type CrossBranchPolicy<'a> = dyn Fn(&Inst, &Inst) -> bool + 'a;

/// Build the dependence DAG for `insts`.
///
/// `latency_of` gives the machine latency per instruction; `can_cross`
/// decides speculation legality (see [`CrossBranchPolicy`]).
pub fn build_block_deps(
    insts: &[Inst],
    latency_of: &dyn Fn(&Inst) -> u32,
    can_cross: &CrossBranchPolicy,
) -> DepGraph {
    let n = insts.len();
    let mut g = DepGraph {
        n,
        edges: Vec::with_capacity(n * 2),
        preds: vec![Vec::new(); n],
        succs: vec![Vec::new(); n],
    };

    for j in 0..n {
        let ij = &insts[j];

        // Register dependences: scan backwards for the most recent def /
        // intervening uses of each register j touches.
        for u in ij.uses() {
            for i in (0..j).rev() {
                if insts[i].def() == Some(u) {
                    g.add(i, j, DepKind::Flow, latency_of(&insts[i]));
                    break;
                }
            }
        }
        if let Some(d) = ij.def() {
            for i in (0..j).rev() {
                let prev = &insts[i];
                if prev.def() == Some(d) {
                    let delay =
                        (latency_of(prev) + 1).saturating_sub(latency_of(ij)).max(1);
                    g.add(i, j, DepKind::Output, delay);
                    break;
                }
                if prev.uses().any(|u| u == d) {
                    g.add(i, j, DepKind::Anti, 0);
                }
            }
        }

        // Memory dependences.
        if ij.op.is_mem() {
            let mj = ij.mem.expect("memory op without tag");
            for i in (0..j).rev() {
                let ii = &insts[i];
                if !ii.op.is_mem() {
                    continue;
                }
                let mi = ii.mem.expect("memory op without tag");
                if !mi.may_alias(&mj) {
                    continue;
                }
                match (ii.op.is_mem_write(), ij.op.is_mem_write()) {
                    (true, false) => g.add(i, j, DepKind::MemFlow, 1),
                    (false, true) => g.add(i, j, DepKind::MemAnti, 0),
                    (true, true) => g.add(i, j, DepKind::MemOutput, 0),
                    (false, false) => {} // read/read: no constraint
                }
            }
        }

        // Control dependences.
        match ij.op {
            Opcode::Halt => {
                // Full barrier: everything before stays before.
                for i in 0..j {
                    g.add(i, j, DepKind::Control, 0);
                }
            }
            Opcode::Br(_) | Opcode::Jump => {
                for i in 0..j {
                    let ii = &insts[i];
                    let pinned = match ii.op {
                        // Branches stay ordered among themselves; stores may
                        // not sink below a branch (they would be skipped).
                        Opcode::Br(_) | Opcode::Jump | Opcode::Halt | Opcode::Store
                        | Opcode::VStore => true,
                        // A register write needed on the taken path may not
                        // sink below the branch. The policy callback answers
                        // "may `ii` cross `ij`?" for sinking as well.
                        _ => !can_cross(ij, ii),
                    };
                    if pinned && !has_edge(&g, i, j) {
                        g.add(i, j, DepKind::Control, 0);
                    }
                }
            }
            _ => {
                // May j be hoisted above earlier branches?
                for i in (0..j).rev() {
                    let ii = &insts[i];
                    if ii.op.is_branch() && !can_cross(ii, ij) && !has_edge(&g, i, j)
                    {
                        g.add(i, j, DepKind::Control, 0);
                    }
                }
            }
        }
    }
    g
}

fn has_edge(g: &DepGraph, from: usize, to: usize) -> bool {
    g.preds[to].iter().any(|&e| g.edges[e].from == from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilpc_ir::inst::MemLoc;
    use ilpc_ir::{Cond, Operand, Reg, SymId};

    fn lat(i: &Inst) -> u32 {
        match i.op {
            Opcode::Load => 2,
            Opcode::FAdd => 3,
            _ => 1,
        }
    }

    #[test]
    fn flow_anti_output_edges() {
        let r1 = Reg::int(1);
        let r2 = Reg::int(2);
        let insts = vec![
            Inst::mov(r1, Operand::ImmI(1)),                       // 0: def r1
            Inst::alu(Opcode::Add, r2, r1.into(), Operand::ImmI(1)), // 1: use r1
            Inst::mov(r1, Operand::ImmI(2)),                       // 2: redef r1
        ];
        let g = build_block_deps(&insts, &lat, &|_, _| true);
        let kinds: Vec<(usize, usize, DepKind)> =
            g.edges.iter().map(|e| (e.from, e.to, e.kind)).collect();
        assert!(kinds.contains(&(0, 1, DepKind::Flow)));
        assert!(kinds.contains(&(0, 2, DepKind::Output)));
        assert!(kinds.contains(&(1, 2, DepKind::Anti)));
    }

    #[test]
    fn memory_edges_respect_alias_info() {
        let a = SymId(0);
        let r = Reg::flt(0);
        let st0 = Inst::store(Operand::Sym(a), Operand::ImmI(0), Operand::ImmF(1.0), MemLoc::affine(a, 1, 0));
        let ld_same = Inst::load(r, Operand::Sym(a), Operand::ImmI(0), MemLoc::affine(a, 1, 0));
        let ld_diff = Inst::load(Reg::flt(1), Operand::Sym(a), Operand::ImmI(1), MemLoc::affine(a, 1, 1));
        let g = build_block_deps(
            &[st0.clone(), ld_same, ld_diff],
            &lat,
            &|_, _| true,
        );
        let pairs: Vec<(usize, usize, DepKind)> =
            g.edges.iter().map(|e| (e.from, e.to, e.kind)).collect();
        assert!(pairs.contains(&(0, 1, DepKind::MemFlow)));
        assert!(!pairs.iter().any(|&(f, t, _)| f == 0 && t == 2));
    }

    #[test]
    fn branch_pins_stores_and_speculation_policy() {
        let a = SymId(0);
        let r = Reg::flt(0);
        let insts = vec![
            Inst::br(Cond::Lt, Operand::ImmI(0), Operand::ImmI(1), ilpc_ir::BlockId(0)),
            Inst::load(r, Operand::Sym(a), Operand::ImmI(0), MemLoc::affine(a, 1, 0)),
            Inst::store(Operand::Sym(a), Operand::ImmI(1), Operand::ImmF(0.0), MemLoc::affine(a, 1, 1)),
        ];
        // Policy allows loads to cross, nothing else.
        let g = build_block_deps(&insts, &lat, &|_, later| later.op == Opcode::Load);
        let pairs: Vec<(usize, usize, DepKind)> =
            g.edges.iter().map(|e| (e.from, e.to, e.kind)).collect();
        // Load is free; store is control-pinned after the branch.
        assert!(!pairs.iter().any(|&(f, t, _)| f == 0 && t == 1));
        assert!(pairs.contains(&(0, 2, DepKind::Control)));
    }

    #[test]
    fn critical_path_heights() {
        let r1 = Reg::flt(1);
        let r2 = Reg::flt(2);
        let a = SymId(0);
        let insts = vec![
            Inst::load(r1, Operand::Sym(a), Operand::ImmI(0), MemLoc::affine(a, 1, 0)), // lat 2
            Inst::alu(Opcode::FAdd, r2, r1.into(), r1.into()),                          // lat 3
        ];
        let g = build_block_deps(&insts, &lat, &|_, _| true);
        let h = g.critical_path(|i| lat(&insts[i]));
        assert_eq!(h[1], 3);
        assert_eq!(h[0], 5); // 2 (load) + 3 (fadd chain)
    }
}
