//! Natural loop detection and counted-loop derivation.
//!
//! The ILP transformations all operate on *inner loops* (the paper's
//! execution model exploits multiprocessor parallelism in outer loops and
//! ILP in inner loops). This module finds natural loops from back edges,
//! nests them, and — for the loops the unroller can handle — derives the
//! *counted loop* shape: a single induction register stepped by a constant
//! and compared against a loop-invariant bound by a bottom-test branch.

use crate::dom::Dominators;
use ilpc_ir::{BlockId, Cond, Function, Opcode, Operand, Reg};
use std::collections::BTreeSet;

/// A natural loop.
#[derive(Debug, Clone)]
pub struct Loop {
    /// Loop header (target of the back edge).
    pub header: BlockId,
    /// Block containing the back edge branch (assumed unique; lowering
    /// produces single-latch loops and all passes preserve that shape).
    pub latch: BlockId,
    /// All blocks in the loop (header and latch included), sorted.
    pub blocks: Vec<BlockId>,
    /// Blocks outside the loop targeted by branches inside it.
    pub exits: Vec<BlockId>,
}

impl Loop {
    /// True if `b` is inside the loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.binary_search(&b).is_ok()
    }
}

/// All natural loops of a function.
#[derive(Debug, Clone, Default)]
pub struct LoopForest {
    /// Loops, outermost-first within each nest.
    pub loops: Vec<Loop>,
}

impl LoopForest {
    /// Detect natural loops of `f`.
    pub fn compute(f: &Function) -> LoopForest {
        let dom = Dominators::compute(f);
        let mut loops: Vec<Loop> = Vec::new();

        for &b in f.layout_order() {
            if !dom.is_reachable(b) {
                continue;
            }
            for s in f.succs(b) {
                if dom.dominates(s, b) {
                    // Back edge b -> s. Collect the natural loop of (b, s).
                    let header = s;
                    let latch = b;
                    let mut body: BTreeSet<BlockId> = BTreeSet::new();
                    body.insert(header);
                    body.insert(latch);
                    let preds = f.preds();
                    let mut stack = vec![latch];
                    while let Some(x) = stack.pop() {
                        if x == header {
                            continue;
                        }
                        for &p in &preds[x.0 as usize] {
                            if dom.is_reachable(p) && body.insert(p) {
                                stack.push(p);
                            }
                        }
                    }
                    let blocks: Vec<BlockId> = body.iter().copied().collect();
                    let mut exits: Vec<BlockId> = Vec::new();
                    for &lb in &blocks {
                        for t in f.succs(lb) {
                            if !body.contains(&t) && !exits.contains(&t) {
                                exits.push(t);
                            }
                        }
                    }
                    loops.push(Loop { header, latch, blocks, exits });
                }
            }
        }

        // Merge loops sharing a header (multiple back edges): union bodies.
        loops.sort_by_key(|l| (l.header, l.latch));
        let mut merged: Vec<Loop> = Vec::new();
        for l in loops {
            if let Some(prev) = merged.last_mut() {
                if prev.header == l.header {
                    let mut set: BTreeSet<BlockId> =
                        prev.blocks.iter().copied().collect();
                    set.extend(l.blocks.iter().copied());
                    prev.blocks = set.into_iter().collect();
                    for e in l.exits {
                        if !prev.exits.contains(&e) {
                            prev.exits.push(e);
                        }
                    }
                    continue;
                }
            }
            merged.push(l);
        }
        // Sort outer loops before inner ones (more blocks first).
        merged.sort_by_key(|l| std::cmp::Reverse(l.blocks.len()));
        LoopForest { loops: merged }
    }

    /// Inner loops: loops containing no other loop's header.
    pub fn inner_loops(&self) -> Vec<&Loop> {
        self.loops
            .iter()
            .filter(|l| {
                !self
                    .loops
                    .iter()
                    .any(|o| o.header != l.header && l.contains(o.header))
            })
            .collect()
    }
}

/// A loop in canonical counted form, eligible for unrolling with a
/// preconditioning loop (the paper: "If the iteration count is known on loop
/// entry ... a preconditioning loop executes the first Mod N iterations").
#[derive(Debug, Clone)]
pub struct CountedLoop {
    /// The underlying natural loop.
    pub header: BlockId,
    pub latch: BlockId,
    pub blocks: Vec<BlockId>,
    /// Induction register tested by the back edge.
    pub iv: Reg,
    /// Constant step added to `iv` once per iteration.
    pub step: i64,
    /// Index (block, inst) of the `iv = iv + step` instruction.
    pub iv_update: usize,
    /// Loop-invariant bound operand of the back-edge compare.
    pub bound: Operand,
    /// Back-edge condition (`iv cond bound` continues the loop).
    pub cond: Cond,
    /// The block the back edge falls through to when the loop exits.
    pub exit: BlockId,
}

/// Try to put `lp` into counted form.
///
/// Requirements (all guaranteed by lowering and preserved by the classical
/// passes for the loops we unroll):
/// * the latch's final instruction is `br cond (iv, bound) header`;
/// * `iv` is an integer register defined exactly once in the loop, by an
///   `add iv, iv, #step` in the latch *before* the branch;
/// * `bound` is an immediate or a register with no definitions in the loop;
/// * the branch falls through to the loop exit.
pub fn as_counted_loop(f: &Function, lp: &Loop) -> Option<CountedLoop> {
    let latch_insts = &f.block(lp.latch).insts;
    let br = latch_insts.last()?;
    let (cond, target) = match (br.op, br.target) {
        (Opcode::Br(c), Some(t)) => (c, t),
        _ => return None,
    };
    if target != lp.header {
        return None;
    }
    let iv = br.src[0].reg()?;
    if !iv.is_int() {
        return None;
    }
    let bound = br.src[1];
    // Bound must be loop-invariant.
    if let Some(r) = bound.reg() {
        for &b in &lp.blocks {
            if f.block(b).insts.iter().any(|i| i.def() == Some(r)) {
                return None;
            }
        }
    }
    // iv defined exactly once in the loop: `add iv, iv, #step` in the latch.
    let mut defs = 0usize;
    for &b in &lp.blocks {
        for i in &f.block(b).insts {
            if i.def() == Some(iv) {
                defs += 1;
            }
        }
    }
    if defs != 1 {
        return None;
    }
    let (iv_update, step) = latch_insts.iter().enumerate().find_map(|(idx, i)| {
        if i.def() == Some(iv) && i.op == Opcode::Add && i.src[0].reg() == Some(iv) {
            if let Operand::ImmI(s) = i.src[1] {
                return Some((idx, s));
            }
        }
        None
    })?;
    if step == 0 {
        return None;
    }
    // The exit is the fall-through of the latch.
    let exit = f.fallthrough(lp.latch)?;
    if lp.contains(exit) {
        return None;
    }
    Some(CountedLoop {
        header: lp.header,
        latch: lp.latch,
        blocks: lp.blocks.clone(),
        iv,
        step,
        iv_update,
        bound,
        cond,
        exit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilpc_ir::ast::{Bound, Expr, Index, Program, Stmt};
    use ilpc_ir::lower::lower;

    fn two_level_nest() -> Program {
        let mut p = Program::new("nest");
        let i = p.int_var("i");
        let j = p.int_var("j");
        let a = p.flt_arr("A", 64);
        p.body = vec![Stmt::For {
            var: i,
            lo: Bound::Const(0),
            hi: Bound::Const(3),
            body: vec![Stmt::For {
                var: j,
                lo: Bound::Const(0),
                hi: Bound::Const(7),
                body: vec![Stmt::SetArr(
                    a,
                    Index::var(j).plus(i, 8),
                    Expr::add(Expr::at(a, Index::var(j).plus(i, 8)), Expr::Cf(1.0)),
                )],
            }],
        }];
        p
    }

    #[test]
    fn finds_nested_loops_and_inner() {
        let l = lower(&two_level_nest());
        let forest = LoopForest::compute(&l.module.func);
        assert_eq!(forest.loops.len(), 2);
        let inner = forest.inner_loops();
        assert_eq!(inner.len(), 1);
        // Inner loop is strictly contained in the outer loop.
        let outer = &forest.loops[0];
        assert!(outer.blocks.len() > inner[0].blocks.len());
        for b in &inner[0].blocks {
            assert!(outer.contains(*b));
        }
    }

    #[test]
    fn derives_counted_form() {
        let l = lower(&two_level_nest());
        let forest = LoopForest::compute(&l.module.func);
        let inner = forest.inner_loops()[0].clone();
        let counted = as_counted_loop(&l.module.func, &inner).expect("counted");
        assert_eq!(counted.step, 1);
        assert_eq!(counted.cond, Cond::Le);
        assert_eq!(counted.bound, Operand::ImmI(7));
        assert_eq!(counted.header, counted.latch); // single-block body
    }

    #[test]
    fn non_invariant_bound_rejected() {
        // do i: n = n + 1; A(i) = 0  with bound n  (bound varies)
        let mut p = Program::new("t");
        let i = p.int_var("i");
        let n = p.int_var("n");
        let a = p.flt_arr("A", 64);
        p.body = vec![
            Stmt::SetScalar(n, Expr::Ci(10)),
            Stmt::For {
                var: i,
                lo: Bound::Const(0),
                hi: Bound::Var(n),
                body: vec![
                    Stmt::SetScalar(n, Expr::sub(Expr::Var(n), Expr::Ci(0))),
                    Stmt::SetArr(a, Index::var(i), Expr::Cf(0.0)),
                ],
            },
        ];
        let l = lower(&p);
        let forest = LoopForest::compute(&l.module.func);
        let inner = forest.inner_loops()[0].clone();
        assert!(as_counted_loop(&l.module.func, &inner).is_none());
    }
}
