//! Degenerate-CFG edge cases for the analysis layer: the dataflow and
//! structure analyses must stay total (no panics, sensible answers) on
//! the shapes real pass pipelines produce in their corners — empty
//! functions, single-block bodies, self-loops, and unreachable layout
//! blocks. `ilpc-lint` runs these analyses on every artifact it audits,
//! so totality here is what keeps the linter itself crash-free.

use ilpc_analysis::{as_counted_loop, Dominators, Liveness, LoopForest, RegSet};
use ilpc_ir::inst::Inst;
use ilpc_ir::{BlockId, Cond, Module, Opcode, Operand, RegClass};

#[test]
fn empty_function_analyses_are_total() {
    let m = Module::new("empty");
    let f = &m.func;
    assert!(f.layout_order().is_empty());

    let live = Liveness::compute(f);
    let _ = live; // no blocks to query, but compute must not panic

    let dom = Dominators::compute(f);
    let _ = dom;

    let forest = LoopForest::compute(f);
    assert!(forest.loops.is_empty());
    assert!(forest.inner_loops().is_empty());
}

#[test]
fn single_block_function_has_trivial_structure() {
    let mut m = Module::new("single");
    let b = m.func.add_block("entry");
    let r = m.func.new_reg(RegClass::Int);
    m.func
        .block_mut(b)
        .insts
        .extend([Inst::mov(r, Operand::ImmI(7)), Inst::halt()]);

    let dom = Dominators::compute(&m.func);
    assert!(dom.is_reachable(b));
    assert!(dom.dominates(b, b), "a block dominates itself");

    let live = Liveness::compute(&m.func);
    assert!(live.live_in(b).is_empty(), "nothing is live into a closed block");
    assert!(live.live_out(b).is_empty());

    let forest = LoopForest::compute(&m.func);
    assert!(forest.loops.is_empty(), "no back edge, no loop");
}

/// A single-block self-loop: the block is simultaneously header and
/// latch, and the counted-loop canonicalizer must still recognize it.
#[test]
fn self_loop_is_its_own_header_and_latch() {
    let mut m = Module::new("selfloop");
    let entry = m.func.add_block("entry");
    let body = m.func.add_block("body");
    let exit = m.func.add_block("exit");
    let i = m.func.new_reg(RegClass::Int);
    m.func.block_mut(entry).insts.push(Inst::mov(i, Operand::ImmI(0)));
    m.func.block_mut(body).insts.extend([
        Inst::alu(Opcode::Add, i, i.into(), Operand::ImmI(1)),
        Inst::br(Cond::Lt, i.into(), Operand::ImmI(4), body),
    ]);
    m.func.block_mut(exit).insts.push(Inst::halt());

    let forest = LoopForest::compute(&m.func);
    let inner = forest.inner_loops();
    assert_eq!(inner.len(), 1);
    let lp = inner[0];
    assert_eq!(lp.header, body);
    assert_eq!(lp.latch, body);
    assert_eq!(lp.blocks, vec![body]);

    let cl = as_counted_loop(&m.func, lp).expect("canonical counted self-loop");
    assert_eq!(cl.iv, i);
    assert_eq!(cl.step, 1);
    assert_eq!(cl.exit, exit);

    // The induction variable is live around the back edge.
    let live = Liveness::compute(&m.func);
    assert!(live.live_in(body).contains(i));
}

/// Unreachable layout blocks: reachability reports them, dominance holds
/// vacuously from every reachable block, liveness ignores paths through
/// them, and the loop forest does not invent loops from their back edges.
#[test]
fn unreachable_blocks_do_not_poison_the_analyses() {
    let mut m = Module::new("orphaned");
    let entry = m.func.add_block("entry");
    let exit = m.func.add_block("exit");
    let orphan = m.func.add_block("orphan");
    let r = m.func.new_reg(RegClass::Int);
    m.func.block_mut(entry).insts.extend([
        Inst::mov(r, Operand::ImmI(1)),
        Inst::jump(exit),
    ]);
    m.func.block_mut(exit).insts.push(Inst::halt());
    // The orphan self-loops, which must not register as a function loop.
    m.func
        .block_mut(orphan)
        .insts
        .push(Inst::br(Cond::Lt, r.into(), Operand::ImmI(9), orphan));

    let dom = Dominators::compute(&m.func);
    assert!(dom.is_reachable(entry));
    assert!(dom.is_reachable(exit));
    assert!(!dom.is_reachable(orphan));
    assert!(dom.dominates(entry, exit));

    let forest = LoopForest::compute(&m.func);
    assert!(
        forest.loops.iter().all(|l| l.header != orphan),
        "a back edge in unreachable code is not a loop: {:?}",
        forest.loops
    );

    // `r` is read only by the orphan, so no reachable block keeps it live.
    let live = Liveness::compute(&m.func);
    assert!(!live.live_out(entry).contains(r));
}

/// RegSet honors class separation and set algebra on the boundary ids a
/// function actually allocates.
#[test]
fn regset_separates_classes_at_equal_ids() {
    let mut m = Module::new("classes");
    let _ = m.func.add_block("entry");
    let i0 = m.func.new_reg(RegClass::Int);
    let f0 = m.func.new_reg(RegClass::Flt);
    assert_eq!(i0.id, f0.id, "both counters start at zero");

    let mut s = RegSet::new();
    s.insert(i0);
    assert!(s.contains(i0));
    assert!(!s.contains(f0), "same id, different class, different member");
    s.insert(f0);
    assert_eq!(s.len(), 2);
    s.remove(i0);
    assert!(!s.contains(i0));
    assert!(s.contains(f0));
    assert_eq!(s.iter().count(), 1);
}

/// Liveness on a diamond: a register defined in one arm only is live out
/// of the fork (the join reads it), and dominance sees through the join.
#[test]
fn diamond_join_liveness_and_dominance() {
    let mut m = Module::new("diamond");
    let fork = m.func.add_block("fork");
    let left = m.func.add_block("left");
    let right = m.func.add_block("right");
    let join = m.func.add_block("join");
    let c = m.func.new_reg(RegClass::Int);
    let v = m.func.new_reg(RegClass::Int);
    let d = m.func.new_reg(RegClass::Int);
    m.func.block_mut(fork).insts.extend([
        Inst::mov(c, Operand::ImmI(0)),
        Inst::mov(v, Operand::ImmI(5)),
        Inst::br(Cond::Eq, c.into(), Operand::ImmI(0), right),
    ]);
    m.func.block_mut(left).insts.extend([
        Inst::mov(v, Operand::ImmI(6)),
        Inst::jump(join),
    ]);
    m.func.block_mut(right).insts.push(Inst::jump(join));
    m.func.block_mut(join).insts.extend([
        Inst::alu(Opcode::Add, d, v.into(), Operand::ImmI(1)),
        Inst::halt(),
    ]);

    let live = Liveness::compute(&m.func);
    assert!(live.live_out(fork).contains(v), "join's read keeps v live through both arms");
    assert!(live.live_in(right).contains(v));
    assert!(!live.live_out(join).contains(d));

    let dom = Dominators::compute(&m.func);
    assert!(dom.dominates(fork, join));
    assert!(!dom.dominates(left, join), "join is reachable around either arm");
    assert!(!dom.dominates(right, join));
    let _ = BlockId(0);
}
