//! The 40 loop nests of the paper's Table 2.
//!
//! The original loop nests were extracted from the PERFECT club benchmark
//! suite, the SPEC benchmark suite, and vector library routines — sources we
//! do not have. Each loop is re-synthesized to match **every attribute the
//! paper reports** (Table 2): the number of source lines in the innermost
//! loop body (`size`), the average inner iteration count (`iters`), the
//! nesting depth (`nest`), the KAP classification (DOALL / DOACROSS /
//! serial) and whether the inner loop contains conditional branches
//! (`conds`). Bodies are idiomatic for the benchmark each row came from
//! (stencils, reductions, recurrences, searches, merges, ...), because the
//! transformations' effectiveness depends exactly on these dependence
//! structures.

use std::fmt;

/// Benchmark suite of origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    Perfect,
    Spec,
    Vector,
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Suite::Perfect => "PERFECT",
            Suite::Spec => "SPEC",
            Suite::Vector => "VECTOR",
        })
    }
}

/// KAP loop classification (Table 2 "Type").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoopType {
    Doall,
    Doacross,
    Serial,
}

impl LoopType {
    /// Paper-style lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            LoopType::Doall => "doall",
            LoopType::Doacross => "doacross",
            LoopType::Serial => "serial",
        }
    }

    /// The paper's DOALL vs non-DOALL split (Figures 12-15).
    pub fn is_doall(self) -> bool {
        self == LoopType::Doall
    }
}

impl fmt::Display for LoopType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One Table 2 row.
#[derive(Debug, Clone)]
pub struct WorkloadMeta {
    /// Loop nest identifier (`APS-1`, `dotprod`, ...).
    pub name: &'static str,
    pub suite: Suite,
    /// Lines of FORTRAN in the innermost loop body.
    pub size: usize,
    /// Average iterations of the innermost loop.
    pub iters: usize,
    /// Nesting depth of the innermost loop.
    pub nest: usize,
    pub ltype: LoopType,
    /// Innermost loop contains conditional branches.
    pub conds: bool,
}

/// The paper's Table 2, verbatim.
pub fn table2() -> Vec<WorkloadMeta> {
    use LoopType::*;
    use Suite::*;
    let row = |name, suite, size, iters, nest, ltype, conds| WorkloadMeta {
        name,
        suite,
        size,
        iters,
        nest,
        ltype,
        conds,
    };
    vec![
        row("APS-1", Perfect, 2, 64, 2, Doall, false),
        row("APS-2", Perfect, 8, 31, 2, Doall, false),
        row("APS-3", Perfect, 2, 776, 1, Doall, false),
        row("CSS-1", Perfect, 6, 67, 1, Serial, true),
        row("LWS-1", Perfect, 2, 343, 2, Serial, false),
        row("LWS-2", Perfect, 1, 3087, 2, Serial, false),
        row("MTS-1", Perfect, 2, 423, 2, Serial, true),
        row("MTS-2", Perfect, 2, 24, 3, Serial, true),
        row("NAS-1", Perfect, 22, 1500, 1, Doall, false),
        row("NAS-2", Perfect, 5, 1520, 1, Doall, false),
        row("NAS-3", Perfect, 6, 6000, 1, Doall, false),
        row("NAS-4", Perfect, 2, 1204, 1, Serial, false),
        row("NAS-5", Perfect, 71, 1500, 2, Serial, false),
        row("NAS-6", Perfect, 24, 635, 2, Doacross, false),
        row("SDS-1", Perfect, 1, 25, 2, Serial, false),
        row("SDS-2", Perfect, 1, 32, 3, Serial, false),
        row("SDS-3", Perfect, 1, 25, 2, Serial, false),
        row("SDS-4", Perfect, 3, 25, 2, Doacross, false),
        row("SRS-1", Perfect, 3, 287, 1, Doall, false),
        row("SRS-2", Perfect, 5, 287, 2, Doacross, false),
        row("SRS-3", Perfect, 1, 287, 2, Doall, false),
        row("SRS-4", Perfect, 9, 87, 3, Doall, false),
        row("SRS-5", Perfect, 21, 287, 2, Doall, false),
        row("SRS-6", Perfect, 1, 287, 2, Serial, false),
        row("TFS-1", Perfect, 11, 89, 2, Doall, false),
        row("TFS-2", Perfect, 7, 120, 2, Doacross, false),
        row("TFS-3", Perfect, 2, 49, 3, Doall, false),
        row("WSS-1", Perfect, 1, 96, 2, Doall, false),
        row("WSS-2", Perfect, 4, 39, 2, Doacross, false),
        row("doduc-1", Spec, 38, 13, 1, Serial, true),
        row("matrix300-1", Spec, 1, 300, 1, Doall, false),
        row("nasa7-1", Spec, 1, 256, 3, Doall, false),
        row("nasa7-2", Spec, 3, 1000, 3, Doacross, false),
        row("tomcatv-1", Spec, 21, 255, 2, Doall, false),
        row("tomcatv-2", Spec, 8, 255, 2, Serial, true),
        row("add", Vector, 1, 1024, 1, Doall, false),
        row("dotprod", Vector, 1, 1024, 1, Serial, false),
        row("maxval", Vector, 3, 1024, 1, Serial, true),
        row("merge", Vector, 4, 1024, 1, Doall, true),
        row("sum", Vector, 1, 1024, 1, Serial, false),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forty_loops_with_paper_distribution() {
        let t = table2();
        assert_eq!(t.len(), 40);
        let doall = t.iter().filter(|m| m.ltype == LoopType::Doall).count();
        let doacross = t.iter().filter(|m| m.ltype == LoopType::Doacross).count();
        let serial = t.iter().filter(|m| m.ltype == LoopType::Serial).count();
        assert_eq!(doall + doacross + serial, 40);
        assert_eq!(doall, 18);
        assert_eq!(doacross, 6);
        assert_eq!(serial, 16);
        let conds = t.iter().filter(|m| m.conds).count();
        assert_eq!(conds, 7);
        let perfect = t.iter().filter(|m| m.suite == Suite::Perfect).count();
        assert_eq!(perfect, 29);
        assert_eq!(t.iter().filter(|m| m.suite == Suite::Spec).count(), 6);
        assert_eq!(t.iter().filter(|m| m.suite == Suite::Vector).count(), 5);
    }

    #[test]
    fn names_unique() {
        let t = table2();
        let mut names: Vec<&str> = t.iter().map(|m| m.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 40);
    }
}
