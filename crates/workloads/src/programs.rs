//! Synthesized loop-nest programs for every Table 2 row.
//!
//! See [`crate::catalog`] for the substitution rationale. Construction
//! conventions shared by all 40 workloads:
//!
//! * the inner loop bound is a **runtime value** loaded from a parameter
//!   array, so trip counts are known on loop entry but not at compile time
//!   (preconditioning code must really execute, as in the paper);
//! * outer loops have small constant trip counts (2-4) so execution-driven
//!   simulation stays fast while inner-loop behaviour dominates;
//! * multi-dimensional arrays use explicit leading dimensions, exactly as
//!   FORTRAN lays them out;
//! * input data is deterministic per workload (seeded by the name), values
//!   kept in ranges that avoid overflow and keep products bounded.

use crate::catalog::{table2, WorkloadMeta};
use ilpc_ir::ast::{ArrId, Bound, Expr, Index, Program, Stmt, VarId};
use ilpc_ir::interp::DataInit;
use ilpc_ir::op::Cond;
use ilpc_ir::ArrayVal;
use ilpc_testkit::TestRng;

/// A fully-instantiated workload: metadata, program and input data.
#[derive(Debug, Clone)]
pub struct Workload {
    pub meta: WorkloadMeta,
    pub program: Program,
    pub init: DataInit,
}

/// Construction context: program plus data initialization under build.
struct Ctx {
    p: Program,
    init: DataInit,
    rng: TestRng,
    /// Inner loop trip count (after scaling).
    #[allow(dead_code)]
    pub n: usize,
    /// Leading dimension for 2-D arrays (inner extent + padding).
    ld: i64,
    /// Parameter array holding the runtime inner bound.
    params: ArrId,
}

/// Outer loop trip counts by nest depth (inner loop excluded).
fn outer_trips(nest: usize) -> Vec<i64> {
    match nest {
        1 => vec![],
        2 => vec![3],
        _ => vec![2, 2],
    }
}

impl Ctx {
    fn new(meta: &WorkloadMeta, scale: f64) -> Ctx {
        let n = ((meta.iters as f64 * scale) as usize).max(8);
        let mut p = Program::new(meta.name);
        let params = p.int_arr("PARAM", 4);
        let mut init = DataInit::new();
        init = init.with_array(params, ArrayVal::I(vec![n as i64, 0, 0, 0]));
        let mut seed = 0u64;
        for b in meta.name.bytes() {
            seed = seed.wrapping_mul(31).wrapping_add(b as u64);
        }
        Ctx {
            p,
            init,
            rng: TestRng::seed_from_u64(seed),
            n,
            ld: n as i64 + 32,
            params,
        }
    }

    /// Elements needed to cover the loop nest for a given nest depth.
    ///
    /// Index shape (see [`Ctx::at2`]): `i + PAD + off + o0*ld + o1*4*ld`.
    /// The reach of the outer terms is `ld * Σ stride_k * (trip_k − 1)`,
    /// plus one leading dimension for the inner extent itself.
    fn extent(&self, nest: usize) -> usize {
        let mut reach = 0i64;
        let mut stride = 1i64;
        for trip in outer_trips(nest) {
            reach += stride * (trip - 1);
            stride *= 4;
        }
        (self.ld * (reach + 1)) as usize
    }

    /// Declare a float array with random contents in `[lo, hi)`.
    fn farr(&mut self, name: &str, nest: usize, lo: f64, hi: f64) -> ArrId {
        let len = self.extent(nest);
        let a = self.p.flt_arr(name, len);
        let data: Vec<f64> =
            (0..len).map(|_| self.rng.gen_range(lo..hi)).collect();
        self.init = std::mem::take(&mut self.init).with_array(a, ArrayVal::F(data));
        a
    }

    /// Declare a zeroed float array (output).
    fn fout(&mut self, name: &str, nest: usize) -> ArrId {
        let len = self.extent(nest);
        self.p.flt_arr(name, len)
    }

    /// Wrap `body` in the loop nest prescribed by `meta.nest`: outer loops
    /// get constant bounds, the inner loop runs `0 ..= n-1` with a runtime
    /// bound loaded from the parameter array.
    fn nest(
        &mut self,
        nest: usize,
        build: impl FnOnce(&mut Ctx, VarId, &[VarId]) -> Vec<Stmt>,
    ) -> Vec<Stmt> {
        let bound_var = self.p.int_var("nbound");
        let inner = self.p.int_var("i");
        let outers: Vec<VarId> = outer_trips(nest)
            .iter()
            .enumerate()
            .map(|(k, _)| self.p.int_var(&format!("o{k}")))
            .collect();
        let body = build(self, inner, &outers);
        let mut stmts = vec![Stmt::For {
            var: inner,
            lo: Bound::Const(0),
            hi: Bound::Var(bound_var),
            body,
        }];
        for (var, trip) in outers.iter().rev().zip(outer_trips(nest).iter().rev())
        {
            stmts = vec![Stmt::For {
                var: *var,
                lo: Bound::Const(0),
                hi: Bound::Const(trip - 1),
                body: stmts,
            }];
        }
        // nbound = PARAM(0) - 1  (loop runs 0 ..= n-1)
        let mut out = vec![Stmt::SetScalar(
            bound_var,
            Expr::sub(Expr::at(self.params, Index::at(0)), Expr::Ci(1)),
        )];
        out.extend(stmts);
        out
    }

    /// Index `i + PAD + off + outer0*ld [+ outer1*4*ld]`.
    ///
    /// A constant leading pad keeps recurrence reads (`i - dist`) and
    /// stencil reads (`i - 1`) inside the array for the first iterations,
    /// so the flat-memory simulator and the bounds-checked interpreter
    /// always touch the same elements.
    fn at2(&self, i: VarId, outers: &[VarId], off: i64) -> Index {
        const PAD: i64 = 8;
        let mut idx = Index::var(i).offset(off + PAD);
        let mut stride = self.ld;
        for &o in outers {
            idx = idx.plus(o, stride);
            stride *= 4;
        }
        idx
    }
}

/// `dst(i,...) = a(i,...) op b(i,...)`-style statement.
fn ew(
    c: &Ctx,
    dst: ArrId,
    i: VarId,
    outers: &[VarId],
    off: i64,
    e: Expr,
) -> Stmt {
    Stmt::SetArr(dst, c.at2(i, outers, off), e)
}

// --------------------------------------------------------------------------
// Body generators for the workload families.
// --------------------------------------------------------------------------

/// `k` independent element-wise statements over disjoint arrays (DOALL).
fn doall_elementwise(c: &mut Ctx, k: usize, nest: usize) -> Vec<Stmt> {
    let nsrc = 3.max(k.div_ceil(3)).min(6);
    let srcs: Vec<ArrId> = (0..nsrc)
        .map(|s| c.farr(&format!("S{s}"), nest, 0.1, 2.0))
        .collect();
    let dsts: Vec<ArrId> = (0..k.min(6)).map(|d| c.fout(&format!("D{d}"), nest)).collect();
    let coefs: Vec<f64> = (0..k).map(|_| c.rng.gen_range(0.25..1.75)).collect();
    c.nest(nest, move |c, i, outers| {
        (0..k)
            .map(|s| {
                let a = srcs[s % srcs.len()];
                let b = srcs[(s + 1) % srcs.len()];
                let d = dsts[s % dsts.len()];
                let short = Expr::add(
                    Expr::mul(Expr::at(a, c.at2(i, outers, 0)), Expr::Cf(coefs[s])),
                    Expr::at(b, c.at2(i, outers, (s % 2) as i64)),
                );
                // Every few statements use a longer multi-term expression
                // (a*x + b*y + a2 + b2), the shape the paper's tree height
                // reducer targets.
                let e = if s % 4 == 3 {
                    let a2 = srcs[(s + 2) % srcs.len()];
                    Expr::add(
                        Expr::add(
                            short.clone(),
                            Expr::mul(
                                Expr::at(a2, c.at2(i, outers, 1)),
                                Expr::Cf(0.75),
                            ),
                        ),
                        Expr::add(
                            Expr::at(a, c.at2(i, outers, 1)),
                            Expr::at(b, c.at2(i, outers, 1)),
                        ),
                    )
                } else {
                    short
                };
                ew(c, d, i, outers, 0, e)
            })
            .collect()
    })
}

/// Sum/product reduction plus `k-1` element-wise statements (serial, but
/// fully recoverable by Lev4 expansion).
fn reduction(c: &mut Ctx, k: usize, nest: usize, product: bool) -> Vec<Stmt> {
    let (lo, hi) = if product { (0.995, 1.005) } else { (0.1, 1.9) };
    let a = c.farr("A", nest, lo, hi);
    let b = c.farr("B", nest, 0.1, 1.9);
    let d = c.fout("D", nest);
    let s = c.p.flt_var("s");
    let mut body = c.nest(nest, move |c, i, outers| {
        let mut stmts = vec![if product {
            // Product accumulator over values near 1 (SDS-3 shape).
            Stmt::SetScalar(
                s,
                Expr::mul(Expr::Var(s), Expr::at(a, c.at2(i, outers, 0))),
            )
        } else {
            Stmt::SetScalar(
                s,
                Expr::add(
                    Expr::Var(s),
                    Expr::mul(
                        Expr::at(a, c.at2(i, outers, 0)),
                        Expr::at(b, c.at2(i, outers, 0)),
                    ),
                ),
            )
        }];
        for q in 1..k {
            let e = Expr::add(
                Expr::at(a, c.at2(i, outers, q as i64 % 2)),
                Expr::at(b, c.at2(i, outers, 0)),
            );
            stmts.push(ew(c, d, i, outers, 0, e));
        }
        stmts
    });
    // Seed the product accumulator with the multiplicative identity.
    if product {
        body.insert(0, Stmt::SetScalar(s, Expr::Cf(1.0)));
    }
    body
}

/// First-order linear recurrence `X(i) = X(i-1)*alpha + B(i)` plus `k-1`
/// element-wise statements (serial, NOT breakable by any transformation).
fn recurrence(c: &mut Ctx, k: usize, nest: usize, dist: i64) -> Vec<Stmt> {
    let x = c.farr("X", nest, 0.0, 1.0);
    let b = c.farr("B", nest, 0.0, 1.0);
    let d = c.fout("D", nest);
    let alpha = c.rng.gen_range(0.4..0.6);
    c.nest(nest, move |c, i, outers| {
        let mut stmts = vec![Stmt::SetArr(
            x,
            c.at2(i, outers, 0),
            Expr::add(
                Expr::mul(Expr::at(x, c.at2(i, outers, -dist)), Expr::Cf(alpha)),
                Expr::at(b, c.at2(i, outers, 0)),
            ),
        )];
        for q in 1..k {
            let e = Expr::mul(
                Expr::at(b, c.at2(i, outers, q as i64 % 3)),
                Expr::Cf(0.5 + q as f64 * 0.1),
            );
            stmts.push(ew(c, d, i, outers, 0, e));
        }
        stmts
    })
}

/// Guarded max search plus a running sum (serial with conds; Lev4's search
/// and accumulator expansions both apply).
fn search(c: &mut Ctx, extra_accum: bool, nest: usize) -> Vec<Stmt> {
    let a = c.farr("A", nest, 0.0, 10.0);
    let big = c.p.flt_var("big");
    let s = c.p.flt_var("s");
    c.nest(nest, move |c, i, outers| {
        let mut stmts = vec![Stmt::If {
            cond: (Cond::Gt, Expr::at(a, c.at2(i, outers, 0)), Expr::Var(big)),
            then: vec![Stmt::SetScalar(big, Expr::at(a, c.at2(i, outers, 0)))],
            els: vec![],
            prob: 0.08,
        }];
        if extra_accum {
            stmts.push(Stmt::SetScalar(
                s,
                Expr::add(Expr::Var(s), Expr::at(a, c.at2(i, outers, 0))),
            ));
        }
        stmts
    })
}

// --------------------------------------------------------------------------
// Individual workloads
// --------------------------------------------------------------------------

/// Build one workload by Table 2 name.
pub fn build(meta: &WorkloadMeta, scale: f64) -> Workload {
    let mut c = Ctx::new(meta, scale);
    let nest = meta.nest;
    let body = match meta.name {
        // ---------------- PERFECT ----------------
        "APS-1" => doall_elementwise(&mut c, 2, nest),
        "APS-2" => doall_elementwise(&mut c, 8, nest),
        "APS-3" => doall_elementwise(&mut c, 2, nest),
        "CSS-1" => css1(&mut c),
        "LWS-1" => recurrence(&mut c, 2, nest, 1),
        "LWS-2" => recurrence(&mut c, 1, nest, 1),
        "MTS-1" => search(&mut c, true, nest),
        "MTS-2" => search(&mut c, true, nest),
        "NAS-1" => doall_elementwise(&mut c, 22, nest),
        "NAS-2" => doall_elementwise(&mut c, 5, nest),
        "NAS-3" => doall_elementwise(&mut c, 6, nest),
        "NAS-4" => reduction(&mut c, 2, nest, false),
        "NAS-5" => nas5(&mut c),
        "NAS-6" => doacross(&mut c, 24, nest, 4),
        "SDS-1" => reduction(&mut c, 1, nest, false),
        "SDS-2" => reduction(&mut c, 1, nest, false),
        "SDS-3" => reduction(&mut c, 1, nest, true),
        "SDS-4" => doacross(&mut c, 3, nest, 2),
        "SRS-1" => doall_elementwise(&mut c, 3, nest),
        "SRS-2" => doacross(&mut c, 5, nest, 3),
        "SRS-3" => doall_elementwise(&mut c, 1, nest),
        "SRS-4" => doall_elementwise(&mut c, 9, nest),
        "SRS-5" => doall_elementwise(&mut c, 21, nest),
        "SRS-6" => reduction(&mut c, 1, nest, false),
        "TFS-1" => doall_elementwise(&mut c, 11, nest),
        "TFS-2" => doacross(&mut c, 7, nest, 2),
        "TFS-3" => doall_elementwise(&mut c, 2, nest),
        "WSS-1" => inplace_doall(&mut c, 1, nest),
        "WSS-2" => doacross(&mut c, 4, nest, 2),
        // ---------------- SPEC ----------------
        "doduc-1" => doduc1(&mut c),
        "matrix300-1" => saxpy(&mut c, nest),
        "nasa7-1" => inplace_doall(&mut c, 1, nest),
        "nasa7-2" => doacross(&mut c, 3, nest, 2),
        "tomcatv-1" => tomcatv1(&mut c),
        "tomcatv-2" => tomcatv2(&mut c),
        // ---------------- VECTOR ----------------
        "add" => vec_add(&mut c),
        "dotprod" => reduction(&mut c, 1, nest, false),
        "maxval" => search(&mut c, true, nest),
        "merge" => merge(&mut c),
        "sum" => vec_sum(&mut c),
        other => panic!("unknown workload {other}"),
    };
    c.p.body = body;
    Workload { meta: meta.clone(), program: c.p, init: c.init }
}

/// Build all 40 workloads at `scale` (1.0 = paper trip counts).
pub fn build_all(scale: f64) -> Vec<Workload> {
    table2().iter().map(|m| build(m, scale)).collect()
}

/// DOACROSS: a distance-`dist` recurrence plus `k-1` independent statements.
fn doacross(c: &mut Ctx, k: usize, nest: usize, dist: i64) -> Vec<Stmt> {
    let x = c.farr("X", nest, 0.0, 1.0);
    let a = c.farr("A", nest, 0.1, 1.9);
    let b = c.farr("B", nest, 0.1, 1.9);
    let d = c.fout("D", nest);
    c.nest(nest, move |c, i, outers| {
        let mut stmts = vec![Stmt::SetArr(
            x,
            c.at2(i, outers, 0),
            Expr::add(
                Expr::mul(Expr::at(x, c.at2(i, outers, -dist)), Expr::Cf(0.5)),
                Expr::at(b, c.at2(i, outers, 0)),
            ),
        )];
        for q in 1..k {
            let e = Expr::add(
                Expr::mul(
                    Expr::at(a, c.at2(i, outers, (q % 3) as i64)),
                    Expr::Cf(0.3 + 0.1 * q as f64),
                ),
                Expr::at(b, c.at2(i, outers, (q % 2) as i64)),
            );
            stmts.push(ew(c, d, i, outers, 0, e));
        }
        stmts
    })
}

/// In-place element-wise update (still DOALL: iterations independent).
fn inplace_doall(c: &mut Ctx, k: usize, nest: usize) -> Vec<Stmt> {
    let a = c.farr("A", nest, 0.1, 2.0);
    let b = c.farr("B", nest, 0.1, 2.0);
    c.nest(nest, move |c, i, outers| {
        (0..k)
            .map(|_| {
                Stmt::SetArr(
                    a,
                    c.at2(i, outers, 0),
                    Expr::add(
                        Expr::mul(Expr::at(a, c.at2(i, outers, 0)), Expr::Cf(0.75)),
                        Expr::at(b, c.at2(i, outers, 0)),
                    ),
                )
            })
            .collect()
    })
}

/// `Y(i) = Y(i) + a * X(i)` (matrix300's DAXPY inner loop).
fn saxpy(c: &mut Ctx, nest: usize) -> Vec<Stmt> {
    let y = c.farr("Y", nest, 0.0, 1.0);
    let x = c.farr("X", nest, 0.0, 1.0);
    c.nest(nest, move |c, i, outers| {
        vec![Stmt::SetArr(
            y,
            c.at2(i, outers, 0),
            Expr::add(
                Expr::at(y, c.at2(i, outers, 0)),
                Expr::mul(Expr::Cf(1.25), Expr::at(x, c.at2(i, outers, 0))),
            ),
        )]
    })
}

/// Figure 1a: `C(j) = A(j) + B(j)`.
fn vec_add(c: &mut Ctx) -> Vec<Stmt> {
    let a = c.farr("A", 1, 0.0, 2.0);
    let b = c.farr("B", 1, 0.0, 2.0);
    let out = c.fout("C", 1);
    c.nest(1, move |c, i, outers| {
        vec![ew(
            c,
            out,
            i,
            outers,
            0,
            Expr::add(
                Expr::at(a, c.at2(i, outers, 0)),
                Expr::at(b, c.at2(i, outers, 0)),
            ),
        )]
    })
}

/// `s = s + A(i)`.
fn vec_sum(c: &mut Ctx) -> Vec<Stmt> {
    let a = c.farr("A", 1, 0.0, 2.0);
    let s = c.p.flt_var("s");
    c.nest(1, move |c, i, outers| {
        vec![Stmt::SetScalar(
            s,
            Expr::add(Expr::Var(s), Expr::at(a, c.at2(i, outers, 0))),
        )]
    })
}

/// Vector merge: `C(i) = min-ish select of A(i), B(i)` with a flag output.
fn merge(c: &mut Ctx) -> Vec<Stmt> {
    let a = c.farr("A", 1, 0.0, 2.0);
    let b = c.farr("B", 1, 0.0, 2.0);
    let out = c.fout("C", 1);
    let flag = c.fout("F", 1);
    c.nest(1, move |c, i, outers| {
        vec![Stmt::If {
            cond: (
                Cond::Lt,
                Expr::at(a, c.at2(i, outers, 0)),
                Expr::at(b, c.at2(i, outers, 0)),
            ),
            then: vec![
                Stmt::SetArr(out, c.at2(i, outers, 0), Expr::at(a, c.at2(i, outers, 0))),
                Stmt::SetArr(flag, c.at2(i, outers, 0), Expr::Cf(1.0)),
            ],
            els: vec![
                Stmt::SetArr(out, c.at2(i, outers, 0), Expr::at(b, c.at2(i, outers, 0))),
                Stmt::SetArr(flag, c.at2(i, outers, 0), Expr::Cf(0.0)),
            ],
            prob: 0.5,
        }]
    })
}

/// CSS-1: residual check with a violation counter and accumulations.
fn css1(c: &mut Ctx) -> Vec<Stmt> {
    let a = c.farr("A", 1, 0.0, 2.0);
    let b = c.farr("B", 1, 0.0, 2.0);
    let d = c.fout("D", 1);
    let r = c.p.flt_var("r");
    let s = c.p.flt_var("s");
    let t = c.p.flt_var("t");
    let nv = c.p.flt_var("nviol");
    c.nest(1, move |c, i, outers| {
        vec![
            Stmt::SetScalar(
                r,
                Expr::sub(
                    Expr::at(a, c.at2(i, outers, 0)),
                    Expr::at(b, c.at2(i, outers, 0)),
                ),
            ),
            Stmt::SetArr(d, c.at2(i, outers, 0), Expr::mul(Expr::Var(r), Expr::Cf(0.9))),
            Stmt::SetScalar(s, Expr::add(Expr::Var(s), Expr::mul(Expr::Var(r), Expr::Var(r)))),
            Stmt::If {
                cond: (Cond::Gt, Expr::Var(r), Expr::Cf(1.5)),
                then: vec![Stmt::SetScalar(nv, Expr::add(Expr::Var(nv), Expr::Cf(1.0)))],
                els: vec![],
                prob: 0.1,
            },
            Stmt::SetScalar(t, Expr::add(Expr::Var(t), Expr::at(b, c.at2(i, outers, 0)))),
        ]
    })
}

/// NAS-5: 71-statement body — element-wise sweeps plus two accumulators.
fn nas5(c: &mut Ctx) -> Vec<Stmt> {
    let srcs: Vec<ArrId> = (0..4).map(|s| c.farr(&format!("S{s}"), 2, 0.1, 1.9)).collect();
    let dsts: Vec<ArrId> = (0..6).map(|d| c.fout(&format!("D{d}"), 2)).collect();
    let s1 = c.p.flt_var("s1");
    let s2 = c.p.flt_var("s2");
    c.nest(2, move |c, i, outers| {
        let mut stmts: Vec<Stmt> = (0..69usize)
            .map(|q| {
                let a = srcs[q % srcs.len()];
                let b = srcs[(q + 1) % srcs.len()];
                let d = dsts[q % dsts.len()];
                ew(
                    c,
                    d,
                    i,
                    outers,
                    (q % 3) as i64,
                    Expr::add(
                        Expr::mul(Expr::at(a, c.at2(i, outers, 0)), Expr::Cf(0.1 + (q % 7) as f64 * 0.1)),
                        Expr::at(b, c.at2(i, outers, (q % 2) as i64)),
                    ),
                )
            })
            .collect();
        stmts.push(Stmt::SetScalar(
            s1,
            Expr::add(Expr::Var(s1), Expr::at(srcs[0], c.at2(i, outers, 0))),
        ));
        stmts.push(Stmt::SetScalar(
            s2,
            Expr::add(Expr::Var(s2), Expr::at(srcs[1], c.at2(i, outers, 0))),
        ));
        stmts
    })
}

/// doduc-1: long arithmetic expression chains (tree-height fodder), guarded
/// updates and several accumulators in one 38-statement serial body.
fn doduc1(c: &mut Ctx) -> Vec<Stmt> {
    let a = c.farr("A", 1, 0.2, 1.8);
    let b = c.farr("B", 1, 0.2, 1.8);
    let e = c.farr("E", 1, 0.5, 1.5);
    let d = c.fout("D", 1);
    let temps: Vec<VarId> = (0..6).map(|k| c.p.flt_var(&format!("t{k}"))).collect();
    let accs: Vec<VarId> = (0..3).map(|k| c.p.flt_var(&format!("acc{k}"))).collect();
    let big = c.p.flt_var("big");
    c.nest(1, move |c, i, outers| {
        let at = |arr, off| Expr::at(arr, c.at2(i, outers, off));
        let mut stmts = Vec::new();
        for round in 0..5i64 {
            let t0 = temps[(round as usize) % 6];
            let t1 = temps[(round as usize + 1) % 6];
            let t2 = temps[(round as usize + 2) % 6];
            // Figure-7-shaped expression: b*(c+d)*e*f/g.
            stmts.push(Stmt::SetScalar(
                t0,
                Expr::div(
                    Expr::mul(
                        Expr::mul(
                            Expr::mul(
                                at(a, round % 3),
                                Expr::add(at(b, 0), at(b, 1)),
                            ),
                            at(a, (round + 1) % 3),
                        ),
                        at(b, round % 2),
                    ),
                    at(e, 0),
                ),
            ));
            stmts.push(Stmt::SetScalar(
                t1,
                Expr::add(
                    Expr::mul(Expr::Var(t0), Expr::Cf(0.5)),
                    Expr::mul(at(a, 0), at(b, round % 2)),
                ),
            ));
            stmts.push(Stmt::SetScalar(
                t2,
                Expr::sub(Expr::Var(t1), Expr::mul(Expr::Var(t0), Expr::Cf(0.25))),
            ));
            stmts.push(Stmt::SetArr(
                d,
                c.at2(i, outers, round % 2),
                Expr::Var(t2),
            ));
            stmts.push(Stmt::SetScalar(
                accs[(round as usize) % 3],
                Expr::add(Expr::Var(accs[(round as usize) % 3]), Expr::Var(t2)),
            ));
            stmts.push(Stmt::If {
                cond: (Cond::Gt, Expr::Var(t2), Expr::Var(big)),
                then: vec![Stmt::SetScalar(big, Expr::Var(t2))],
                els: vec![],
                prob: 0.15,
            });
        }
        // 5 rounds x 6 statements = 30; pad to ~38 with element-wise work.
        for q in 0..8i64 {
            stmts.push(ew(
                c,
                d,
                i,
                outers,
                2 + q % 2,
                Expr::mul(at(a, q % 3), Expr::Cf(0.4 + q as f64 * 0.05)),
            ));
        }
        stmts
    })
}

/// tomcatv-1: mesh-generation style DOALL — neighbor reads from arrays that
/// are never written, writes to result arrays, through scalar temps.
fn tomcatv1(c: &mut Ctx) -> Vec<Stmt> {
    let x = c.farr("X", 2, 0.5, 1.5);
    let y = c.farr("Y", 2, 0.5, 1.5);
    let rx = c.fout("RX", 2);
    let ry = c.fout("RY", 2);
    let temps: Vec<VarId> = (0..8).map(|k| c.p.flt_var(&format!("t{k}"))).collect();
    c.nest(2, move |c, i, outers| {
        let at = |arr, off| Expr::at(arr, c.at2(i, outers, off));
        let t = |k: usize| Expr::Var(temps[k]);
        vec![
            // central differences
            Stmt::SetScalar(temps[0], Expr::sub(at(x, 1), at(x, -1))),
            Stmt::SetScalar(temps[1], Expr::sub(at(y, 1), at(y, -1))),
            Stmt::SetScalar(temps[2], Expr::add(Expr::sub(at(x, 1), Expr::mul(at(x, 0), Expr::Cf(2.0))), at(x, -1))),
            Stmt::SetScalar(temps[3], Expr::add(Expr::sub(at(y, 1), Expr::mul(at(y, 0), Expr::Cf(2.0))), at(y, -1))),
            // metric terms
            Stmt::SetScalar(temps[4], Expr::add(Expr::mul(t(0), t(0)), Expr::mul(t(1), t(1)))),
            Stmt::SetScalar(temps[5], Expr::mul(t(0), t(1))),
            Stmt::SetScalar(temps[6], Expr::sub(Expr::mul(t(4), t(2)), Expr::mul(t(5), t(3)))),
            Stmt::SetScalar(temps[7], Expr::sub(Expr::mul(t(4), t(3)), Expr::mul(t(5), t(2)))),
            // residuals
            Stmt::SetArr(rx, c.at2(i, outers, 0), t(6)),
            Stmt::SetArr(ry, c.at2(i, outers, 0), t(7)),
            // smoothing passes (element-wise, padding the body to 21 lines)
            ew(c, rx, i, outers, 1, Expr::mul(t(6), Expr::Cf(0.3))),
            ew(c, ry, i, outers, 1, Expr::mul(t(7), Expr::Cf(0.3))),
            ew(c, rx, i, outers, 2, Expr::add(Expr::mul(t(6), Expr::Cf(0.1)), at(x, 0))),
            ew(c, ry, i, outers, 2, Expr::add(Expr::mul(t(7), Expr::Cf(0.1)), at(y, 0))),
            ew(c, rx, i, outers, 3, Expr::sub(at(x, 0), Expr::mul(t(0), Expr::Cf(0.05)))),
            ew(c, ry, i, outers, 3, Expr::sub(at(y, 0), Expr::mul(t(1), Expr::Cf(0.05)))),
            ew(c, rx, i, outers, 4, Expr::add(Expr::mul(t(2), Expr::Cf(0.2)), at(y, 1))),
            ew(c, ry, i, outers, 4, Expr::add(Expr::mul(t(3), Expr::Cf(0.2)), at(x, 1))),
            ew(c, rx, i, outers, 5, Expr::mul(Expr::add(t(4), t(5)), Expr::Cf(0.5))),
            ew(c, ry, i, outers, 5, Expr::mul(Expr::sub(t(4), t(5)), Expr::Cf(0.5))),
            ew(c, rx, i, outers, 6, Expr::add(t(6), t(7))),
        ]
    })
}

/// tomcatv-2: residual maxima search (serial with conds).
fn tomcatv2(c: &mut Ctx) -> Vec<Stmt> {
    let rx = c.farr("RX", 2, 0.0, 2.0);
    let ry = c.farr("RY", 2, 0.0, 2.0);
    let x = c.fout("XO", 2);
    let y = c.fout("YO", 2);
    let rxv = c.p.flt_var("rxv");
    let ryv = c.p.flt_var("ryv");
    let rxm = c.p.flt_var("rxm");
    let rym = c.p.flt_var("rym");
    let sx = c.p.flt_var("sx");
    c.nest(2, move |c, i, outers| {
        vec![
            Stmt::SetScalar(rxv, Expr::mul(Expr::at(rx, c.at2(i, outers, 0)), Expr::Cf(0.9))),
            Stmt::SetScalar(ryv, Expr::mul(Expr::at(ry, c.at2(i, outers, 0)), Expr::Cf(0.9))),
            Stmt::If {
                cond: (Cond::Gt, Expr::Var(rxv), Expr::Var(rxm)),
                then: vec![Stmt::SetScalar(rxm, Expr::Var(rxv))],
                els: vec![],
                prob: 0.05,
            },
            Stmt::If {
                cond: (Cond::Gt, Expr::Var(ryv), Expr::Var(rym)),
                then: vec![Stmt::SetScalar(rym, Expr::Var(ryv))],
                els: vec![],
                prob: 0.05,
            },
            Stmt::SetArr(x, c.at2(i, outers, 0), Expr::Var(rxv)),
            Stmt::SetArr(y, c.at2(i, outers, 0), Expr::Var(ryv)),
            Stmt::SetScalar(sx, Expr::add(Expr::Var(sx), Expr::Var(rxv))),
        ]
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilpc_ir::ast::{innermost_size, nest_depth};
    use ilpc_ir::interp::interpret;
    use ilpc_ir::lower::lower;
    use ilpc_ir::verify::verify_module;

    #[test]
    fn all_forty_build_lower_and_verify() {
        let ws = build_all(0.05);
        assert_eq!(ws.len(), 40);
        for w in &ws {
            let l = lower(&w.program);
            verify_module(&l.module)
                .unwrap_or_else(|e| panic!("{}: {e}", w.meta.name));
        }
    }

    #[test]
    fn nest_depth_matches_table2() {
        for w in build_all(0.05) {
            assert_eq!(
                nest_depth(&w.program.body),
                w.meta.nest,
                "{}",
                w.meta.name
            );
        }
    }

    #[test]
    fn inner_body_size_tracks_table2() {
        // Sizes are a line-count analogue; require the synthesized body to
        // be within a factor-of-2 band of the paper's count (small bodies
        // get a small absolute allowance).
        for w in build_all(0.05) {
            let size = innermost_size(&w.program.body);
            let want = w.meta.size;
            assert!(
                size + 2 >= want / 2 && size <= want * 2 + 2,
                "{}: synthesized {size} vs table {want}",
                w.meta.name
            );
        }
    }

    #[test]
    fn interpreter_runs_all_workloads() {
        for w in build_all(0.05) {
            let st = interpret(&w.program, &w.init);
            assert!(st.stmts_executed > 0, "{}", w.meta.name);
            // All values finite.
            for arr in &st.arrays {
                if let ilpc_ir::ArrayVal::F(v) = arr {
                    assert!(
                        v.iter().all(|x| x.is_finite()),
                        "{} produced non-finite values",
                        w.meta.name
                    );
                }
            }
        }
    }

    #[test]
    fn conds_flag_matches_if_presence() {
        fn has_if(stmts: &[Stmt]) -> bool {
            stmts.iter().any(|s| match s {
                Stmt::If { .. } => true,
                Stmt::For { body, .. } => has_if(body),
                _ => false,
            })
        }
        for w in build_all(0.05) {
            assert_eq!(has_if(&w.program.body), w.meta.conds, "{}", w.meta.name);
        }
    }

    #[test]
    fn deterministic_data() {
        let a = build(&table2()[0], 0.1);
        let b = build(&table2()[0], 0.1);
        assert_eq!(format!("{:?}", a.init), format!("{:?}", b.init));
    }

    /// Bit-exact representation of one init array (f64 → raw bits).
    fn init_bits(w: &Workload) -> Vec<Vec<u64>> {
        w.init
            .arrays
            .iter()
            .flatten()
            .map(|arr| match arr {
                ilpc_ir::ArrayVal::F(v) => v.iter().map(|x| x.to_bits()).collect(),
                ilpc_ir::ArrayVal::I(v) => v.iter().map(|&x| x as u64).collect(),
            })
            .collect()
    }

    /// The differential verifier in `ilpc-harness` relies on workload
    /// inputs being identical run-to-run: two `build_all` invocations
    /// must produce byte-identical initial arrays for all 40 loops.
    #[test]
    fn build_all_inputs_byte_identical_across_runs() {
        let a = build_all(0.05);
        let b = build_all(0.05);
        assert_eq!(a.len(), b.len());
        for (wa, wb) in a.iter().zip(&b) {
            assert_eq!(init_bits(wa), init_bits(wb), "{}", wa.meta.name);
        }
    }

    /// Golden fingerprint (FNV-1a over every init word of all 40
    /// workloads) pinning *cross-platform* determinism of the generated
    /// inputs. If this changes, every simulated cycle count in the grid
    /// may silently shift — update only on a deliberate PRNG or workload
    /// change, alongside the testkit PRNG goldens.
    #[test]
    fn build_all_inputs_match_golden_fingerprint() {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for w in build_all(0.05) {
            for arr in init_bits(&w) {
                for word in arr {
                    for byte in word.to_le_bytes() {
                        h = (h ^ byte as u64).wrapping_mul(0x100_0000_01b3);
                    }
                }
            }
        }
        assert_eq!(h, 0x171C_FE74_D3AA_75C4, "fingerprint {h:#X}");
    }
}
