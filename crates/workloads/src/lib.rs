//! # ilpc-workloads — the 40 loop nests of the paper's Table 2
//!
//! Metadata ([`catalog`]) reproduces Table 2 verbatim; [`programs`]
//! synthesizes a mini-FORTRAN program for each row matching its size,
//! iteration count, nesting depth, DOALL/DOACROSS/serial classification
//! and conditional-branch structure, together with deterministic input
//! data.

pub mod catalog;
pub mod programs;

pub use catalog::{table2, LoopType, Suite, WorkloadMeta};
pub use programs::{build, build_all, Workload};
