//! Deterministic fault-injection engine.
//!
//! Mutates a well-formed module the way a buggy transformation pass, a
//! truncated `.ilpc` file or a corrupted build artifact would: operand
//! swaps, opcode/condition flips, register-class flips, dropped CFG edges,
//! alias-tag corruption, addressing-displacement and branch-probability
//! metadata corruption. All randomness comes from the `ilpc-testkit`
//! xoshiro256++ PRNG, so a `(module, kind, seed)` triple always produces
//! the same fault — campaign classifications are exactly reproducible.
//!
//! The classes deliberately span the firewall's detection layers:
//!
//! | class          | typical detector                                   |
//! |----------------|----------------------------------------------------|
//! | `OperandSwap`  | differential (or benign when commutative)          |
//! | `OpcodeFlip`   | differential                                       |
//! | `RegClassFlip` | verifier                                           |
//! | `DropEdge`     | verifier / simulator / differential                |
//! | `AliasTag`     | differential after scheduling (or timing-benign)   |
//! | `ExtDisp`      | differential (wrong address)                       |
//! | `VecLane`      | verifier (`lane-count`) / differential             |
//! | `ProbMeta`     | benign for correctness (performance metadata only) |

use ilpc_ir::{BlockId, Inst, MemLoc, Module, Opcode, Operand, Reg, RegClass};
use ilpc_testkit::TestRng;
use std::fmt;

/// Fault classes the engine can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// Swap two source operands of one instruction.
    OperandSwap,
    /// Flip an opcode (or branch condition) within its result class.
    OpcodeFlip,
    /// Flip the register class of one register operand or destination.
    RegClassFlip,
    /// Corrupt control flow: dangle a branch target or delete the branch.
    DropEdge,
    /// Corrupt a load/store memory-disambiguation tag.
    AliasTag,
    /// Corrupt a load/store constant addressing displacement.
    ExtDisp,
    /// Corrupt the lane count of a vector (SLP) instruction.
    VecLane,
    /// Corrupt branch-probability metadata (drives superblock selection).
    ProbMeta,
}

impl FaultKind {
    /// Every fault class, in stable order.
    pub const ALL: [FaultKind; 8] = [
        FaultKind::OperandSwap,
        FaultKind::OpcodeFlip,
        FaultKind::RegClassFlip,
        FaultKind::DropEdge,
        FaultKind::AliasTag,
        FaultKind::ExtDisp,
        FaultKind::VecLane,
        FaultKind::ProbMeta,
    ];

    /// Stable name used in campaign tables.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::OperandSwap => "operand-swap",
            FaultKind::OpcodeFlip => "opcode-flip",
            FaultKind::RegClassFlip => "reg-class-flip",
            FaultKind::DropEdge => "drop-edge",
            FaultKind::AliasTag => "alias-tag",
            FaultKind::ExtDisp => "ext-disp",
            FaultKind::VecLane => "vec-lane",
            FaultKind::ProbMeta => "prob-meta",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Record of one injected fault.
#[derive(Debug, Clone)]
pub struct Fault {
    pub kind: FaultKind,
    pub block: BlockId,
    pub index: usize,
    /// What was done, for campaign logs.
    pub desc: String,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}[{}]: {}", self.kind, self.block, self.index, self.desc)
    }
}

/// All `(block, index)` sites whose instruction satisfies `pred`, in layout
/// order (deterministic).
fn sites(m: &Module, pred: impl Fn(&Inst) -> bool) -> Vec<(BlockId, usize)> {
    let mut out = Vec::new();
    for &b in m.func.layout_order() {
        for (i, inst) in m.func.block(b).insts.iter().enumerate() {
            if pred(inst) {
                out.push((b, i));
            }
        }
    }
    out
}

fn pick(rng: &mut TestRng, sites: &[(BlockId, usize)]) -> Option<(BlockId, usize)> {
    if sites.is_empty() {
        None
    } else {
        Some(sites[rng.gen_range(0..sites.len())])
    }
}

/// Opcode flip within the same result class (keeps the verifier happy so
/// the corruption can only be caught architecturally).
fn flipped_op(op: Opcode) -> Option<Opcode> {
    Some(match op {
        Opcode::Add => Opcode::Sub,
        Opcode::Sub => Opcode::Add,
        Opcode::Mul => Opcode::Add,
        Opcode::Div => Opcode::Mul,
        Opcode::Rem => Opcode::Div,
        Opcode::And => Opcode::Or,
        Opcode::Or => Opcode::Xor,
        Opcode::Xor => Opcode::And,
        Opcode::Shl => Opcode::Shr,
        Opcode::Shr => Opcode::Shl,
        Opcode::FAdd => Opcode::FSub,
        Opcode::FSub => Opcode::FAdd,
        Opcode::FMul => Opcode::FAdd,
        Opcode::FDiv => Opcode::FMul,
        Opcode::Br(c) => Opcode::Br(c.negated()),
        _ => return None,
    })
}

/// Inject one fault of `kind` into `m` at a PRNG-chosen site. Returns
/// `None` when the module has no eligible site for this class (e.g. no
/// conditional branches for `DropEdge`); the module is unchanged then.
pub fn inject(m: &mut Module, kind: FaultKind, rng: &mut TestRng) -> Option<Fault> {
    let fault = |block, index, desc: String| Fault { kind, block, index, desc };
    match kind {
        FaultKind::OperandSwap => {
            // Two used source operands to swap; for stores prefer swapping
            // offset and value (base+offset addition is symmetric).
            let cand = sites(m, |i| match i.op {
                Opcode::Store => true,
                _ => i.src[0].is_some() && i.src[1].is_some(),
            });
            let (b, idx) = pick(rng, &cand)?;
            let inst = &mut m.func.block_mut(b).insts[idx];
            let (x, y) = if inst.op == Opcode::Store { (1, 2) } else { (0, 1) };
            inst.src.swap(x, y);
            Some(fault(b, idx, format!("swapped src[{x}] and src[{y}]")))
        }
        FaultKind::OpcodeFlip => {
            let cand = sites(m, |i| flipped_op(i.op).is_some());
            let (b, idx) = pick(rng, &cand)?;
            let inst = &mut m.func.block_mut(b).insts[idx];
            let from = inst.op;
            inst.op = flipped_op(from).unwrap();
            Some(fault(b, idx, format!("{from} -> {}", inst.op)))
        }
        FaultKind::RegClassFlip => {
            let cand = sites(m, |i| i.dst.is_some() || i.uses().next().is_some());
            let (b, idx) = pick(rng, &cand)?;
            let inst = &mut m.func.block_mut(b).insts[idx];
            let flip = |r: Reg| Reg {
                class: match r.class {
                    RegClass::Int => RegClass::Flt,
                    RegClass::Flt => RegClass::Int,
                    // A vector register misread as scalar float — the
                    // closest analogue of a truncated class byte.
                    RegClass::Vec => RegClass::Flt,
                },
                ..r
            };
            let first_use = inst.uses().next();
            if let Some(d) = inst
                .dst
                .filter(|_| first_use.is_none() || rng.gen_range(0u32..2) == 0)
            {
                inst.dst = Some(flip(d));
                Some(fault(b, idx, format!("dst {d} class flipped")))
            } else {
                let r = first_use?;
                inst.replace_use(r, Operand::Reg(flip(r)));
                Some(fault(b, idx, format!("use {r} class flipped")))
            }
        }
        FaultKind::DropEdge => {
            let cand = sites(m, |i| i.op.is_branch() && i.target.is_some());
            let (b, idx) = pick(rng, &cand)?;
            let inst = &mut m.func.block_mut(b).insts[idx];
            if rng.gen_range(0u32..2) == 0 {
                inst.target = Some(BlockId(u32::MAX - 1));
                Some(fault(b, idx, "branch target dangled".to_string()))
            } else {
                *inst = Inst::new(Opcode::Nop);
                Some(fault(b, idx, "branch deleted (edge dropped)".to_string()))
            }
        }
        FaultKind::AliasTag => {
            let cand = sites(m, |i| i.mem.is_some());
            let (b, idx) = pick(rng, &cand)?;
            let inst = &mut m.func.block_mut(b).insts[idx];
            let tag = inst.mem.unwrap();
            let desc = match rng.gen_range(0u32..3) {
                // Claim a bogus affine shape: "this reference never
                // aliases anything" — a scheduler trusting it may reorder
                // a dependent store/load pair.
                0 => {
                    inst.mem = Some(MemLoc {
                        lin: Some((0, i64::MAX / 2)),
                        ..tag
                    });
                    "alias tag forged to a never-aliasing shape"
                }
                // Forge the outer-loop fingerprint.
                1 => {
                    inst.mem = Some(MemLoc { outer: tag.outer ^ 0xDEAD_BEEF, ..tag });
                    "outer-loop fingerprint corrupted"
                }
                // Drop the tag entirely (truncated serialization).
                _ => {
                    inst.mem = None;
                    "memory tag dropped"
                }
            };
            Some(fault(b, idx, desc.to_string()))
        }
        FaultKind::ExtDisp => {
            let cand = sites(m, |i| i.op.is_mem());
            let (b, idx) = pick(rng, &cand)?;
            let delta = rng.gen_range(1i64..64);
            let inst = &mut m.func.block_mut(b).insts[idx];
            inst.ext = inst.ext.wrapping_add(delta);
            Some(fault(b, idx, format!("displacement skewed by {delta}")))
        }
        FaultKind::VecLane => {
            // Any lanes-carrying instruction: result is vector, or the op
            // consumes one (vreduce/vstore).
            let cand = sites(m, |i| i.lanes > 1);
            let (b, idx) = pick(rng, &cand)?;
            let inst = &mut m.func.block_mut(b).insts[idx];
            let old = inst.lanes;
            // Pick a different count in 1..=MAX_VLEN so vld/vst widths and
            // ALU lane counts disagree with their tags and neighbours.
            let mut lanes = rng.gen_range(1..ilpc_ir::inst::MAX_VLEN as usize + 1) as u8;
            if lanes == old {
                lanes = if lanes == 1 { 2 } else { lanes - 1 };
            }
            inst.lanes = lanes;
            Some(fault(b, idx, format!("lane count {old} -> {lanes}")))
        }
        FaultKind::ProbMeta => {
            let cand = sites(m, |i| i.op.is_branch());
            let (b, idx) = pick(rng, &cand)?;
            let p = rng.next_f64() as f32;
            let inst = &mut m.func.block_mut(b).insts[idx];
            let old = inst.prob;
            inst.prob = p;
            Some(fault(b, idx, format!("branch probability {old} -> {p}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilpc_ir::text::serialize;
    use ilpc_ir::Cond;

    fn sample_module() -> Module {
        let mut m = Module::new("t");
        let a = m.symtab.declare("A", 8, RegClass::Flt);
        let out = m.symtab.declare("out", 1, RegClass::Flt);
        let f = &mut m.func;
        let i = f.new_reg(RegClass::Int);
        let s = f.new_reg(RegClass::Flt);
        let x = f.new_reg(RegClass::Flt);
        let entry = f.add_block("entry");
        let body = f.add_block("body");
        let exit = f.add_block("exit");
        f.block_mut(entry).insts.extend([
            Inst::mov(i, Operand::ImmI(0)),
            Inst::mov(s, Operand::ImmF(0.0)),
        ]);
        f.block_mut(body).insts.extend([
            Inst::load(x, Operand::Sym(a), i.into(), MemLoc::affine(a, 1, 0)),
            Inst::alu(Opcode::FAdd, s, s.into(), x.into()),
            Inst::alu(Opcode::Add, i, i.into(), Operand::ImmI(1)),
            Inst::br(Cond::Lt, i.into(), Operand::ImmI(8), body),
        ]);
        let v = f.new_reg(RegClass::Vec);
        f.block_mut(exit).insts.extend([
            Inst::store(
                Operand::Sym(out),
                Operand::ImmI(0),
                s.into(),
                MemLoc::affine(out, 0, 0),
            ),
            Inst::vload(v, Operand::Sym(a), Operand::ImmI(0), MemLoc::affine(a, 1, 0), 2),
            Inst::vstore(Operand::Sym(a), Operand::ImmI(4), v.into(), MemLoc::affine(a, 1, 4), 2),
            Inst::halt(),
        ]);
        m
    }

    #[test]
    fn every_kind_finds_a_site_and_mutates() {
        for kind in FaultKind::ALL {
            let mut m = sample_module();
            let before = serialize(&m);
            let mut rng = TestRng::seed_from_u64(7);
            let fault = inject(&mut m, kind, &mut rng)
                .unwrap_or_else(|| panic!("{kind}: no site found"));
            assert_eq!(fault.kind, kind);
            // ProbMeta only changes non-serialized metadata; every other
            // class must visibly change the module text.
            if kind != FaultKind::ProbMeta {
                assert_ne!(serialize(&m), before, "{kind} did not mutate the module");
            }
        }
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        for kind in FaultKind::ALL {
            for seed in [0u64, 1, 99] {
                let mut m1 = sample_module();
                let mut m2 = sample_module();
                let f1 = inject(&mut m1, kind, &mut TestRng::seed_from_u64(seed)).unwrap();
                let f2 = inject(&mut m2, kind, &mut TestRng::seed_from_u64(seed)).unwrap();
                assert_eq!(f1.desc, f2.desc);
                assert_eq!((f1.block, f1.index), (f2.block, f2.index));
                assert_eq!(serialize(&m1), serialize(&m2));
            }
        }
    }
}
