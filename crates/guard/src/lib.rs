//! # ilpc-guard — the transformation firewall
//!
//! The paper's whole premise is that the Lev1–Lev4 transformations preserve
//! semantics while exposing ILP (§2); a single buggy or corrupted pass that
//! silently produces wrong architectural results would invalidate every
//! number downstream. This crate makes per-transformation validation a
//! first-class subsystem: a [`Guard`] wraps every step of the compilation
//! pipeline and, around each one,
//!
//! 1. **snapshots** the IR,
//! 2. runs the [`ilpc_ir::verify`] verifier — in release builds too (the
//!    bare pipeline only verifies under `debug_assertions`),
//! 3. runs the **static pass-delta lints** (`ilpc_lint::delta`) over the
//!    snapshot/output pair — translation-validation rules that need no
//!    execution at all,
//! 4. **spot-checks architectural results** against a reference oracle
//!    (the AST interpreter's output) by executing the module on the cycle
//!    simulator, and
//! 5. isolates pass **panics** with `catch_unwind`.
//!
//! On any failure the guard rolls the module back to the last good
//! snapshot, records a typed incident, and the driver continues with the
//! remaining passes — graceful degradation to the highest achievable
//! transformation level instead of a crashed or silently-wrong run.
//!
//! The error taxonomy ([`GuardErrorKind`]) is deliberately small:
//!
//! * [`VerifierReject`](GuardErrorKind::VerifierReject) — structurally
//!   malformed IR (wrong operand arity/class, dangling target, …);
//! * [`StaticLintReject`](GuardErrorKind::StaticLintReject) — well-formed
//!   IR whose before/after delta breaks a translation-validation rule
//!   (`ilpc_lint::delta`), caught statically before anything executes;
//! * [`DifferentialMismatch`](GuardErrorKind::DifferentialMismatch) —
//!   well-formed IR that computes the wrong answer, or IR the simulator
//!   rejects at execution time;
//! * [`PassPanic`](GuardErrorKind::PassPanic) — the pass itself panicked;
//! * [`BudgetExceeded`](GuardErrorKind::BudgetExceeded) — runaway code
//!   growth, cycle budget or dynamic-instruction watchdog exhaustion.
//!
//! [`inject`] pairs the guard with a deterministic fault-injection engine
//! (seeded by the `ilpc-testkit` PRNG) used by the `fault-campaign`
//! harness to demonstrate the headline invariant: **zero silent escapes**
//! — no corrupted run reports a wrong architectural result unflagged.

pub mod inject;

use ilpc_core::level::{passes, Level, TransformReport};
use ilpc_core::unroll::UnrollConfig;
use ilpc_ir::value::ArrayVal;
use ilpc_ir::verify::verify_module;
use ilpc_ir::{Module, SymId};
use ilpc_machine::Machine;
use ilpc_sim::{read_symbol, simulate_limited, SimError, SimLimits};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Classification of a guarded-step failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GuardErrorKind {
    /// The IR verifier rejected the pass output.
    VerifierReject,
    /// A static translation-validation lint rejected the pass's
    /// before/after delta (no execution involved).
    StaticLintReject,
    /// The pass output computes wrong architectural results (or the
    /// simulator rejected it at execution time).
    DifferentialMismatch,
    /// The pass panicked; the panic was contained by the firewall.
    PassPanic,
    /// A resource budget was exhausted: runaway code growth, the cycle
    /// budget, or the dynamic-instruction watchdog.
    BudgetExceeded,
}

impl GuardErrorKind {
    /// Stable name used in reports and campaign tables.
    pub fn name(self) -> &'static str {
        match self {
            GuardErrorKind::VerifierReject => "VerifierReject",
            GuardErrorKind::StaticLintReject => "StaticLintReject",
            GuardErrorKind::DifferentialMismatch => "DifferentialMismatch",
            GuardErrorKind::PassPanic => "PassPanic",
            GuardErrorKind::BudgetExceeded => "BudgetExceeded",
        }
    }
}

impl fmt::Display for GuardErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A typed guarded-step failure.
#[derive(Debug, Clone)]
pub struct GuardError {
    pub kind: GuardErrorKind,
    /// Human-readable detail (verifier message, mismatch magnitude, panic
    /// payload, …).
    pub detail: String,
}

impl GuardError {
    fn new(kind: GuardErrorKind, detail: impl Into<String>) -> GuardError {
        GuardError { kind, detail: detail.into() }
    }
}

impl fmt::Display for GuardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

impl std::error::Error for GuardError {}

/// One contained failure: which step failed, and how.
#[derive(Debug, Clone)]
pub struct Incident {
    /// Zero-based index of the step in the guarded sequence.
    pub step: usize,
    /// Step name (a `ilpc_core::level` pass name, or a backend step such
    /// as `"superblock-formation"` / `"list-schedule"`).
    pub pass: &'static str,
    pub error: GuardError,
}

impl fmt::Display for Incident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "step {} ({}): {}", self.step, self.pass, self.error)
    }
}

/// Outcome summary of a guarded pipeline run.
#[derive(Debug, Clone, Default)]
pub struct GuardReport {
    /// Steps attempted (passes + backend steps).
    pub steps_attempted: usize,
    /// Steps whose output was kept.
    pub steps_kept: usize,
    /// Contained failures, in execution order. Empty on a healthy run.
    pub incidents: Vec<Incident>,
    /// Level the driver asked for (set by [`guarded_apply_level`]).
    pub requested: Option<Level>,
    /// Highest level whose passes all ran clean — `None` if even the
    /// baseline conventional optimization had to be rolled back.
    pub achieved: Option<Level>,
}

impl GuardReport {
    /// True if every step was kept.
    pub fn clean(&self) -> bool {
        self.incidents.is_empty()
    }

    /// Names of the steps that were rolled back.
    pub fn skipped(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.incidents.iter().map(|i| i.pass)
    }

    /// Flat, owned incident records for wire formats and logs (the
    /// `ilpc-serve` protocol reports these per request).
    pub fn records(&self) -> Vec<IncidentRecord> {
        self.incidents.iter().map(IncidentRecord::from).collect()
    }
}

/// A flattened [`Incident`] for transport: plain owned fields, stable
/// [`GuardErrorKind::name`] string, no lifetimes — what a serving layer
/// puts on the wire per request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncidentRecord {
    pub step: usize,
    pub pass: String,
    pub kind: String,
    pub detail: String,
}

impl From<&Incident> for IncidentRecord {
    fn from(i: &Incident) -> IncidentRecord {
        IncidentRecord {
            step: i.step,
            pass: i.pass.to_string(),
            kind: i.error.kind.name().to_string(),
            detail: i.error.detail.clone(),
        }
    }
}

/// Supervision-level incident taxonomy for multi-process serving: what a
/// pool supervisor observed about a worker *shard* (as opposed to the
/// in-process pass incidents above). Same [`IncidentRecord`] transport, so
/// shard incidents ride the same wire shape as pass incidents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardIncidentKind {
    /// The worker process exited or its pipe closed unexpectedly.
    Crash,
    /// The worker stopped answering health pings (or sat on a request past
    /// its deadline) and was reaped.
    Hang,
    /// Spawning the worker process failed outright.
    SpawnFailed,
    /// The worker emitted a line that was not a valid reply.
    Garbage,
    /// The supervisor respawned the worker (follows a crash/hang).
    Restart,
    /// The shard's restart-storm circuit breaker opened.
    CircuitOpen,
}

impl ShardIncidentKind {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            ShardIncidentKind::Crash => "shard-crash",
            ShardIncidentKind::Hang => "shard-hang",
            ShardIncidentKind::SpawnFailed => "shard-spawn-failed",
            ShardIncidentKind::Garbage => "shard-garbage",
            ShardIncidentKind::Restart => "shard-restart",
            ShardIncidentKind::CircuitOpen => "shard-circuit-open",
        }
    }
}

impl IncidentRecord {
    /// A supervision incident for worker shard `shard`. `step` carries the
    /// shard index so existing record consumers sort/group sensibly.
    pub fn shard(shard: usize, kind: ShardIncidentKind, detail: impl Into<String>) -> IncidentRecord {
        IncidentRecord {
            step: shard,
            pass: format!("shard-{shard}"),
            kind: kind.name().to_string(),
            detail: detail.into(),
        }
    }
}

/// Architectural-result oracle for differential spot-checks.
///
/// Holds everything needed to execute a module under guard and compare its
/// results against ground truth (in practice: the AST interpreter's output
/// for the workload being compiled). Timing is irrelevant here — any
/// machine width yields the same architectural results — so `machine` can
/// be a fixed narrow configuration regardless of the compilation target.
///
/// Spot-checks execute via `ilpc_sim::simulate_limited` and therefore ride
/// the pre-decoded fast engine; its cycle-for-cycle equivalence to the
/// legacy interpreter (proved by the engine differential suite) keeps
/// guard verdicts — including budget-exceeded classifications, which *do*
/// depend on exact cycle counts — byte-identical to the pre-engine ones.
#[derive(Debug, Clone)]
pub struct Oracle {
    /// Machine to execute the spot-check on.
    pub machine: Machine,
    /// Initial flat memory image for the module.
    pub init_mem: Vec<u64>,
    /// Expected final contents per checked symbol (arrays and scalar
    /// shadow symbols).
    pub expect: Vec<(SymId, ArrayVal)>,
    /// Relative FP tolerance (expansion transformations reassociate
    /// reductions, exactly as the paper's do).
    pub tol: f64,
    /// Simulation budgets for one spot-check execution.
    pub limits: SimLimits,
}

impl Oracle {
    /// Execute `m` and compare its architectural results against the
    /// expectations. `Ok(())` means every checked symbol matched.
    pub fn check(&self, m: &Module) -> Result<(), GuardError> {
        let res = match simulate_limited(m, &self.machine, self.init_mem.clone(), self.limits)
        {
            Ok(res) => res,
            Err(e @ (SimError::CycleLimit(_) | SimError::DynInstLimit(_))) => {
                return Err(GuardError::new(
                    GuardErrorKind::BudgetExceeded,
                    format!("spot-check {e}"),
                ))
            }
            Err(e) => {
                return Err(GuardError::new(
                    GuardErrorKind::DifferentialMismatch,
                    format!("spot-check simulation rejected the module: {e}"),
                ))
            }
        };
        for (sym, want) in &self.expect {
            let got = read_symbol(&m.symtab, &res.memory, *sym);
            if got.class() != want.class() {
                return Err(GuardError::new(
                    GuardErrorKind::DifferentialMismatch,
                    format!("symbol @{} changed class", sym.0),
                ));
            }
            let diff = got.max_rel_diff(want);
            if !(diff <= self.tol) {
                return Err(GuardError::new(
                    GuardErrorKind::DifferentialMismatch,
                    format!("symbol @{} differs from reference by {diff:.2e}", sym.0),
                ));
            }
        }
        Ok(())
    }
}

/// Firewall configuration. The default enables every protection.
#[derive(Debug, Clone, Copy)]
pub struct GuardConfig {
    /// Run the IR verifier after every step (release builds included).
    pub verify: bool,
    /// Spot-check architectural results after every step (requires an
    /// [`Oracle`]).
    pub differential: bool,
    /// Run the static pass-delta lints (`ilpc_lint::delta`) after every
    /// step, before the differential spot-check.
    pub static_lints: bool,
    /// Contain pass panics with `catch_unwind`. Disable to let panics
    /// propagate (useful under a debugger).
    pub catch_panics: bool,
    /// Maximum static instructions a step may leave behind; exceeding it is
    /// a [`BudgetExceeded`](GuardErrorKind::BudgetExceeded) failure
    /// (catches runaway unrolling/expansion before it eats the machine).
    pub max_insts: usize,
}

impl Default for GuardConfig {
    fn default() -> GuardConfig {
        GuardConfig {
            verify: true,
            differential: true,
            static_lints: true,
            catch_panics: true,
            max_insts: 1 << 20,
        }
    }
}

/// Best-effort string form of a `catch_unwind` payload.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A sabotage hook: corrupt the module right after step `at_step` runs,
/// *inside* the guarded region — exactly where a buggy pass would strike.
/// Used by the fault-injection campaign; never set in production.
pub struct StepHook<'a> {
    pub at_step: usize,
    pub action: Box<dyn FnMut(&mut Module) + 'a>,
}

/// The transformation firewall. Drive it with [`Guard::step`] around every
/// mutation of the module; it snapshots, checks, rolls back and records.
pub struct Guard<'a> {
    pub cfg: GuardConfig,
    oracle: Option<&'a Oracle>,
    hook: Option<StepHook<'a>>,
    pub report: GuardReport,
}

impl<'a> Guard<'a> {
    /// New firewall. Without an oracle the differential spot-check is
    /// skipped (the verifier, panic containment and budgets still apply).
    pub fn new(cfg: GuardConfig, oracle: Option<&'a Oracle>) -> Guard<'a> {
        Guard { cfg, oracle, hook: None, report: GuardReport::default() }
    }

    /// Install a fault-injection hook (see [`StepHook`]).
    pub fn with_hook(mut self, hook: StepHook<'a>) -> Guard<'a> {
        self.hook = Some(hook);
        self
    }

    /// Run one guarded step. Returns `true` if the step's output was kept,
    /// `false` if it failed a check and the module was rolled back to its
    /// state on entry.
    pub fn step(
        &mut self,
        m: &mut Module,
        name: &'static str,
        f: impl FnOnce(&mut Module),
    ) -> bool {
        let idx = self.report.steps_attempted;
        self.report.steps_attempted += 1;
        let snapshot = m.clone();

        let hook = match &mut self.hook {
            Some(h) if h.at_step == idx => Some(&mut h.action),
            _ => None,
        };
        let body = move |m: &mut Module| {
            f(m);
            if let Some(action) = hook {
                action(m);
            }
        };
        let error = if self.cfg.catch_panics {
            match catch_unwind(AssertUnwindSafe(|| body(m))) {
                Ok(()) => self.check(m, &snapshot, name),
                Err(payload) => Some(GuardError::new(
                    GuardErrorKind::PassPanic,
                    panic_message(payload),
                )),
            }
        } else {
            body(m);
            self.check(m, &snapshot, name)
        };

        match error {
            None => {
                self.report.steps_kept += 1;
                true
            }
            Some(error) => {
                *m = snapshot;
                self.report.incidents.push(Incident { step: idx, pass: name, error });
                false
            }
        }
    }

    /// Post-step checks, in escalating cost order: growth budget, then the
    /// verifier, then the static pass-delta lints (the snapshot taken for
    /// rollback doubles as the "before" module), then the differential
    /// spot-check — the only one that has to execute anything.
    fn check(&self, m: &Module, before: &Module, pass: &'static str) -> Option<GuardError> {
        let insts = m.func.num_insts();
        if insts > self.cfg.max_insts {
            return Some(GuardError::new(
                GuardErrorKind::BudgetExceeded,
                format!("module grew to {insts} instructions (budget {})", self.cfg.max_insts),
            ));
        }
        if self.cfg.verify {
            if let Err(e) = verify_module(m) {
                return Some(GuardError::new(GuardErrorKind::VerifierReject, e.to_string()));
            }
        }
        if self.cfg.static_lints {
            let diags = ilpc_lint::delta::check_step(before, m, pass);
            if let Some(d) = diags.first() {
                return Some(GuardError::new(GuardErrorKind::StaticLintReject, d.to_string()));
            }
        }
        if self.cfg.differential {
            if let Some(oracle) = self.oracle {
                if let Err(e) = oracle.check(m) {
                    return Some(e);
                }
            }
        }
        None
    }
}

/// Apply `level` to `m` through the firewall: every pass of the level
/// pipeline runs as a guarded step. Failed passes are rolled back and
/// skipped; the module always leaves this function verifiable and (given an
/// oracle) architecturally correct.
pub fn guarded_apply_level(
    m: &mut Module,
    level: Level,
    ucfg: &UnrollConfig,
    guard: &mut Guard,
) -> TransformReport {
    guard.report.requested = Some(level);
    let incidents_before = guard.report.incidents.len();
    let mut rep = TransformReport::default();
    for pass in passes(level) {
        let saved = rep.clone();
        let kept = guard.step(m, pass.name, |m| pass.execute(m, ucfg, &mut rep));
        if !kept {
            rep = saved;
        }
    }
    // Highest level all of whose passes (at that and lower levels) ran
    // clean. A skipped Conv pass means not even the baseline held.
    let skipped: Vec<&'static str> = guard.report.incidents[incidents_before..]
        .iter()
        .map(|i| i.pass)
        .collect();
    let mut achieved = None;
    'levels: for l in Level::ALL.into_iter().take_while(|l| *l <= level) {
        for pass in passes(level).filter(|p| p.level == l) {
            if skipped.contains(&pass.name) {
                break 'levels;
            }
        }
        achieved = Some(l);
    }
    guard.report.achieved = achieved;
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilpc_ir::ast::{Bound, Expr, Index, Program, Stmt};
    use ilpc_ir::interp::{interpret, DataInit};
    use ilpc_ir::lower::lower;
    use ilpc_ir::text::serialize;
    use ilpc_ir::value::Value;
    use ilpc_ir::Opcode;
    use ilpc_sim::memory_from_init;

    fn dotprod() -> (Program, DataInit) {
        let mut p = Program::new("dotprod");
        let i = p.int_var("i");
        let s = p.flt_var("s");
        let a = p.flt_arr("A", 32);
        let b = p.flt_arr("B", 32);
        p.body = vec![Stmt::For {
            var: i,
            lo: Bound::Const(0),
            hi: Bound::Const(31),
            body: vec![Stmt::SetScalar(
                s,
                Expr::add(
                    Expr::Var(s),
                    Expr::mul(Expr::at(a, Index::var(i)), Expr::at(b, Index::var(i))),
                ),
            )],
        }];
        // Nonzero, varied data: an all-zero environment would mask
        // value-corrupting faults (e.g. FAdd vs FSub of zeros agree).
        let init = DataInit::new()
            .with_array(a, ArrayVal::F((0..32).map(|k| 0.5 + k as f64).collect()))
            .with_array(b, ArrayVal::F((0..32).map(|k| 1.25 - k as f64 * 0.125).collect()));
        (p, init)
    }

    /// Oracle for the dotprod program: all arrays plus shadow scalars.
    fn oracle_for(p: &Program, init: &DataInit, l: &ilpc_ir::lower::Lowered) -> Oracle {
        let reference = interpret(p, init);
        let mut expect: Vec<(SymId, ArrayVal)> = reference
            .arrays
            .iter()
            .enumerate()
            .map(|(k, v)| (SymId(k as u32), v.clone()))
            .collect();
        let mut shadows: Vec<_> = l.shadow_syms.iter().collect();
        shadows.sort_by_key(|(_, sym)| sym.0);
        for (var, sym) in shadows {
            let want = match reference.scalars[var.0 as usize] {
                Value::I(x) => ArrayVal::I(vec![x]),
                Value::F(x) => ArrayVal::F(vec![x]),
            };
            expect.push((*sym, want));
        }
        Oracle {
            machine: Machine::issue(4),
            init_mem: memory_from_init(&l.module.symtab, init),
            expect,
            tol: 1e-9,
            limits: SimLimits::cycles(1_000_000),
        }
    }

    #[test]
    fn clean_run_is_bit_identical_to_unguarded() {
        let (p, init) = dotprod();
        let mut plain = lower(&p);
        let plain_rep =
            ilpc_core::level::apply_level(&mut plain.module, Level::Lev4, &UnrollConfig::default());

        let mut guarded = lower(&p);
        let oracle = oracle_for(&p, &init, &guarded);
        let mut guard = Guard::new(GuardConfig::default(), Some(&oracle));
        let rep = guarded_apply_level(
            &mut guarded.module,
            Level::Lev4,
            &UnrollConfig::default(),
            &mut guard,
        );

        assert!(guard.report.clean(), "{:#?}", guard.report.incidents);
        assert_eq!(guard.report.requested, Some(Level::Lev4));
        assert_eq!(guard.report.achieved, Some(Level::Lev4));
        assert_eq!(guard.report.steps_kept, guard.report.steps_attempted);
        assert_eq!(rep, plain_rep);
        assert_eq!(serialize(&guarded.module), serialize(&plain.module));
    }

    #[test]
    fn panicking_pass_is_contained_rolled_back_and_skipped() {
        let (p, init) = dotprod();
        let mut l = lower(&p);
        let oracle = oracle_for(&p, &init, &l);
        // Sabotage step 3 ("rename") with a panic.
        let mut guard = Guard::new(GuardConfig::default(), Some(&oracle)).with_hook(StepHook {
            at_step: 3,
            action: Box::new(|_| panic!("injected pass bug")),
        });
        let rep = guarded_apply_level(
            &mut l.module,
            Level::Lev4,
            &UnrollConfig::default(),
            &mut guard,
        );
        let incidents = &guard.report.incidents;
        assert_eq!(incidents.len(), 1, "{incidents:#?}");
        assert_eq!(incidents[0].error.kind, GuardErrorKind::PassPanic);
        assert_eq!(incidents[0].pass, "rename");
        assert!(incidents[0].error.detail.contains("injected pass bug"));
        // Degraded below Lev2 (rename is the Lev2 pass), but Lev3/Lev4
        // passes still ran on the rolled-back module.
        assert_eq!(guard.report.achieved, Some(Level::Lev1));
        assert_eq!(rep.defs_renamed, 0);
        assert!(rep.combines >= 1, "later passes should still run: {rep:?}");
        // The surviving module is verifiable and architecturally correct.
        verify_module(&l.module).unwrap();
        oracle.check(&l.module).unwrap();
    }

    #[test]
    fn corrupting_pass_output_is_flagged_and_rolled_back() {
        let (p, init) = dotprod();
        let mut l = lower(&p);
        let oracle = oracle_for(&p, &init, &l);
        // Corrupt the module right after the unroll pass (step 1): flip
        // every FAdd to FSub — structurally valid, architecturally wrong.
        // (All of them: after unrolling, one FAdd lives in a remainder loop
        // that executes zero iterations for this trip count, so flipping
        // only the first in layout order can be architecturally invisible.)
        let mut guard = Guard::new(GuardConfig::default(), Some(&oracle)).with_hook(StepHook {
            at_step: 1,
            action: Box::new(|m: &mut Module| {
                let mut flipped = 0;
                let blocks: Vec<_> = m.func.layout_order().to_vec();
                for b in blocks {
                    for inst in &mut m.func.block_mut(b).insts {
                        if inst.op == Opcode::FAdd {
                            inst.op = Opcode::FSub;
                            flipped += 1;
                        }
                    }
                }
                assert!(flipped > 0, "no FAdd to corrupt");
            }),
        });
        guarded_apply_level(&mut l.module, Level::Lev4, &UnrollConfig::default(), &mut guard);
        assert_eq!(guard.report.incidents.len(), 1, "{:#?}", guard.report.incidents);
        let inc = &guard.report.incidents[0];
        assert_eq!(inc.error.kind, GuardErrorKind::DifferentialMismatch);
        assert_eq!(inc.pass, "unroll");
        assert_eq!(guard.report.achieved, Some(Level::Conv));
        oracle.check(&l.module).unwrap();
    }

    #[test]
    fn trip_count_corruption_is_caught_statically() {
        let (p, init) = dotprod();
        let mut l = lower(&p);
        let oracle = oracle_for(&p, &init, &l);
        // Corrupt the module right after "rename" (step 3, trip-preserving):
        // negate every conditional branch. Structurally valid — only the
        // static delta lints or the differential can catch it, and the
        // static check runs first.
        let mut guard = Guard::new(GuardConfig::default(), Some(&oracle)).with_hook(StepHook {
            at_step: 3,
            action: Box::new(|m: &mut Module| {
                let blocks: Vec<_> = m.func.layout_order().to_vec();
                for b in blocks {
                    for inst in &mut m.func.block_mut(b).insts {
                        if let Opcode::Br(c) = inst.op {
                            inst.op = Opcode::Br(c.negated());
                        }
                    }
                }
            }),
        });
        guarded_apply_level(&mut l.module, Level::Lev4, &UnrollConfig::default(), &mut guard);
        assert_eq!(guard.report.incidents.len(), 1, "{:#?}", guard.report.incidents);
        let inc = &guard.report.incidents[0];
        assert_eq!(inc.error.kind, GuardErrorKind::StaticLintReject);
        assert_eq!(inc.pass, "rename");
        assert!(inc.error.detail.contains("delta-counted-loops"), "{}", inc.error.detail);
        // Rolled back: the surviving module is still correct.
        oracle.check(&l.module).unwrap();
    }

    #[test]
    fn growth_budget_rejects_runaway_pass() {
        let (p, _) = dotprod();
        let mut l = lower(&p);
        let cfg = GuardConfig { max_insts: 8, ..GuardConfig::default() };
        let mut guard = Guard::new(cfg, None);
        guarded_apply_level(&mut l.module, Level::Lev1, &UnrollConfig::default(), &mut guard);
        assert!(
            guard
                .report
                .incidents
                .iter()
                .any(|i| i.error.kind == GuardErrorKind::BudgetExceeded),
            "{:#?}",
            guard.report.incidents
        );
    }
}
