//! # ilpc-regalloc — register usage measurement
//!
//! The paper's processor has "an unlimited supply of registers, however the
//! register allocator attempts to utilize the least number of registers
//! required for a given loop. Therefore, registers are reused as soon as
//! they become available." (§3.1)
//!
//! With reuse-as-soon-as-available allocation, the number of physical
//! registers a loop needs equals the maximum number of *simultaneously
//! live* virtual registers at any program point (MAXLIVE), computed here
//! per register class with precise per-instruction liveness. Figure 11/13/15
//! report the sum of the integer and floating point counts.

use ilpc_analysis::{Liveness, RegSet};
use ilpc_ir::{Function, Operand, Reg};
use std::collections::{HashMap, HashSet};

/// Register usage of a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegUsage {
    /// Peak simultaneously-live integer registers.
    pub int: u32,
    /// Peak simultaneously-live floating point registers.
    pub flt: u32,
    /// Peak simultaneously-live vector registers (zero for scalar code).
    pub vec: u32,
}

impl RegUsage {
    /// Total registers (the paper's reported metric; vector registers are
    /// counted once each regardless of lane width).
    pub fn total(self) -> u32 {
        self.int + self.flt + self.vec
    }
}

fn count_classes(set: &RegSet) -> [u32; 3] {
    let mut n = [0u32; 3];
    for r in set.iter() {
        n[r.class.index()] += 1;
    }
    n
}

/// Measure peak register pressure over the whole function.
pub fn measure(f: &Function) -> RegUsage {
    let lv = Liveness::compute(f);
    let mut usage = RegUsage::default();

    for &bid in f.layout_order() {
        // Walk the block backwards maintaining the precise live set.
        let mut live = lv.live_out(bid).clone();
        let record = |live: &RegSet, usage: &mut RegUsage| {
            let [i, fl, v] = count_classes(live);
            usage.int = usage.int.max(i);
            usage.flt = usage.flt.max(fl);
            usage.vec = usage.vec.max(v);
        };
        record(&live, &mut usage);
        for inst in f.block(bid).insts.iter().rev() {
            if let Some(d) = inst.def() {
                live.remove(d);
            }
            for u in inst.uses() {
                live.insert(u);
            }
            record(&live, &mut usage);
        }
    }
    usage
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilpc_ir::inst::{Inst, MemLoc};
    use ilpc_ir::{Cond, Module, Opcode, Operand, Reg, RegClass, SymId};

    #[test]
    fn straight_line_pressure() {
        let mut f = Function::new("t");
        let a = f.new_reg(RegClass::Int);
        let b = f.new_reg(RegClass::Int);
        let c = f.new_reg(RegClass::Int);
        let out = SymId(0);
        let blk = f.add_block("b");
        f.block_mut(blk).insts.extend([
            Inst::mov(a, Operand::ImmI(1)),
            Inst::mov(b, Operand::ImmI(2)),
            Inst::alu(Opcode::Add, c, a.into(), b.into()),
            Inst::store(Operand::Sym(out), Operand::ImmI(0), c.into(), MemLoc::affine(out, 0, 0)),
            Inst::halt(),
        ]);
        let u = measure(&f);
        assert_eq!(u.int, 2);
        assert_eq!(u.flt, 0);
        assert_eq!(u.total(), 2);
    }

    #[test]
    fn sequential_reuse_counts_once() {
        // Two values never live simultaneously need one register's worth.
        let mut f = Function::new("t");
        let a = f.new_reg(RegClass::Int);
        let b = f.new_reg(RegClass::Int);
        let out = SymId(0);
        let blk = f.add_block("b");
        f.block_mut(blk).insts.extend([
            Inst::mov(a, Operand::ImmI(1)),
            Inst::store(Operand::Sym(out), Operand::ImmI(0), a.into(), MemLoc::affine(out, 0, 0)),
            Inst::mov(b, Operand::ImmI(2)),
            Inst::store(Operand::Sym(out), Operand::ImmI(1), b.into(), MemLoc::affine(out, 0, 1)),
            Inst::halt(),
        ]);
        assert_eq!(measure(&f).int, 1);
    }

    #[test]
    fn loop_carried_values_counted_through_loop() {
        let mut m = Module::new("t");
        let a = m.symtab.declare("A", 8, RegClass::Flt);
        let f = &mut m.func;
        let i = f.new_reg(RegClass::Int);
        let s = f.new_reg(RegClass::Flt);
        let t = f.new_reg(RegClass::Flt);
        let entry = f.add_block("entry");
        let body = f.add_block("body");
        let exit = f.add_block("exit");
        f.block_mut(entry).insts.extend([
            Inst::mov(i, Operand::ImmI(0)),
            Inst::mov(s, Operand::ImmF(0.0)),
        ]);
        f.block_mut(body).insts.extend([
            Inst::load(t, Operand::Sym(a), i.into(), MemLoc::affine(a, 1, 0)),
            Inst::alu(Opcode::FAdd, s, s.into(), t.into()),
            Inst::alu(Opcode::Add, i, i.into(), Operand::ImmI(1)),
            Inst::br(Cond::Lt, i.into(), Operand::ImmI(8), body),
        ]);
        f.block_mut(exit).insts.extend([
            Inst::store(Operand::Sym(a), Operand::ImmI(0), s.into(), MemLoc::affine(a, 0, 0)),
            Inst::halt(),
        ]);
        let u = measure(&m.func);
        // i carried, s carried, t transient: peak 1 int + 2 flt.
        assert_eq!(u.int, 1);
        assert_eq!(u.flt, 2);
        assert_eq!(u.total(), 3);
    }

    #[test]
    fn disjoint_temporaries_need_distinct_registers() {
        // 3 float temps live across a fadd chain need 3 registers at peak.
        let mut f = Function::new("t");
        let a = SymId(0);
        let regs: Vec<Reg> = (0..3).map(|_| f.new_reg(RegClass::Flt)).collect();
        let acc = f.new_reg(RegClass::Flt);
        let blk = f.add_block("b");
        let mut insts: Vec<Inst> = regs
            .iter()
            .enumerate()
            .map(|(k, &r)| {
                Inst::load(r, Operand::Sym(a), Operand::ImmI(k as i64), MemLoc::affine(a, 0, k as i64))
            })
            .collect();
        insts.push(Inst::alu(Opcode::FAdd, acc, regs[0].into(), regs[1].into()));
        insts.push(Inst::alu(Opcode::FAdd, acc, acc.into(), regs[2].into()));
        insts.push(Inst::store(Operand::Sym(a), Operand::ImmI(7), acc.into(), MemLoc::affine(a, 0, 7)));
        insts.push(Inst::halt());
        f.block_mut(blk).insts = insts;
        assert_eq!(measure(&f).flt, 3);
    }
}

/// A physical register assignment: virtual register → color, per class.
#[derive(Debug, Clone)]
pub struct Assignment {
    colors: [HashMap<u32, u32>; 3],
    /// Colors used per class.
    pub used: RegUsage,
}

impl Assignment {
    /// Physical register for a virtual register.
    pub fn color(&self, r: Reg) -> Reg {
        Reg {
            id: self.colors[r.class.index()][&r.id],
            class: r.class,
        }
    }
}

/// Build the interference graph with precise per-point liveness and color
/// it greedily (highest-degree-first), the "graph-coloring-based register
/// allocation" of the paper's code generator. The machine has unlimited
/// registers, so no spilling is ever needed; the allocator's job is to
/// *minimize* the count ("the register allocator attempts to utilize the
/// least number of registers required").
pub fn color(f: &Function) -> Assignment {
    let lv = Liveness::compute(f);
    let mut interf: [HashMap<u32, HashSet<u32>>; 3] =
        [HashMap::new(), HashMap::new(), HashMap::new()];
    let mut seen: [HashSet<u32>; 3] = Default::default();

    let mut note = |r: Reg| {
        seen[r.class.index()].insert(r.id);
    };
    let mut edge = |a: Reg, b: Reg| {
        if a.class != b.class || a.id == b.id {
            return;
        }
        let g = &mut interf[a.class.index()];
        g.entry(a.id).or_default().insert(b.id);
        g.entry(b.id).or_default().insert(a.id);
    };

    for &bid in f.layout_order() {
        let mut live = lv.live_out(bid).clone();
        for inst in f.block(bid).insts.iter().rev() {
            if let Some(d) = inst.def() {
                note(d);
                // The def interferes with everything live across it.
                for l in live.iter() {
                    edge(d, l);
                }
                live.remove(d);
            }
            for u in inst.uses() {
                note(u);
                live.insert(u);
            }
        }
    }

    // Definition order (first def point in layout order): live ranges are
    // near-intervals, so coloring in definition order approaches the
    // perfect-elimination behavior of interval graphs (loop-carried ranges
    // wrap around the back edge and can cost a small excess).
    let mut def_pos: [HashMap<u32, usize>; 3] = Default::default();
    let mut pos = 0usize;
    for &bid in f.layout_order() {
        for inst in &f.block(bid).insts {
            if let Some(d) = inst.def() {
                def_pos[d.class.index()].entry(d.id).or_insert(pos);
            }
            pos += 1;
        }
    }

    let mut colors: [HashMap<u32, u32>; 3] = Default::default();
    let mut used = RegUsage::default();
    for ci in 0..3 {
        let mut order: Vec<u32> = seen[ci].iter().copied().collect();
        order.sort_by_key(|id| def_pos[ci].get(id).copied().unwrap_or(usize::MAX));
        let mut max_color = 0u32;
        for id in order {
            let neighbors = interf[ci].get(&id);
            let taken: HashSet<u32> = neighbors
                .map(|ns| {
                    ns.iter().filter_map(|n| colors[ci].get(n).copied()).collect()
                })
                .unwrap_or_default();
            let mut c = 0u32;
            while taken.contains(&c) {
                c += 1;
            }
            colors[ci].insert(id, c);
            max_color = max_color.max(c + 1);
        }
        match ci {
            0 => used.int = max_color,
            1 => used.flt = max_color,
            _ => used.vec = max_color,
        }
    }
    Assignment { colors, used }
}

/// Rewrite `f` onto the colored physical registers. Returns the register
/// usage. The rewritten function computes exactly the same results (the
/// coloring respects every interference); tests verify by simulation.
pub fn assign_registers(f: &mut Function) -> RegUsage {
    let a = color(f);
    let blocks: Vec<_> = f.layout_order().to_vec();
    for bid in blocks {
        for inst in &mut f.block_mut(bid).insts {
            if let Some(d) = inst.dst {
                inst.dst = Some(a.color(d));
            }
            for s in &mut inst.src {
                if let Operand::Reg(r) = *s {
                    *s = Operand::Reg(a.color(r));
                }
            }
        }
    }
    a.used
}

#[cfg(test)]
mod color_tests {
    use super::*;
    use ilpc_ir::inst::{Inst, MemLoc};
    use ilpc_ir::{Cond, Module, Opcode, Operand, RegClass, SymId};

    /// Coloring of a straight-line block equals MAXLIVE.
    #[test]
    fn coloring_matches_maxlive_on_straight_line() {
        let mut f = Function::new("t");
        let out = SymId(0);
        let regs: Vec<Reg> = (0..5).map(|_| f.new_reg(RegClass::Int)).collect();
        let blk = f.add_block("b");
        let mut insts: Vec<Inst> = regs
            .iter()
            .enumerate()
            .map(|(k, &r)| Inst::mov(r, Operand::ImmI(k as i64)))
            .collect();
        for &r in &regs {
            insts.push(Inst::store(
                Operand::Sym(out),
                r.into(),
                r.into(),
                MemLoc::opaque(out),
            ));
        }
        insts.push(Inst::halt());
        f.block_mut(blk).insts = insts;
        let m = measure(&f);
        let a = color(&f);
        assert_eq!(a.used.int, m.int);
        assert_eq!(a.used.int, 5);
    }

    /// Rewriting onto physical registers preserves simulated results.
    #[test]
    fn assignment_preserves_semantics() {
        let mut m = Module::new("t");
        let arr = m.symtab.declare("A", 8, RegClass::Flt);
        let out = m.symtab.declare("out", 1, RegClass::Flt);
        let f = &mut m.func;
        let i = f.new_reg(RegClass::Int);
        let s = f.new_reg(RegClass::Flt);
        let x = f.new_reg(RegClass::Flt);
        let entry = f.add_block("entry");
        let body = f.add_block("body");
        let exit = f.add_block("exit");
        f.block_mut(entry).insts.extend([
            Inst::mov(i, Operand::ImmI(0)),
            Inst::mov(s, Operand::ImmF(0.0)),
        ]);
        f.block_mut(body).insts.extend([
            Inst::load(x, Operand::Sym(arr), i.into(), MemLoc::affine(arr, 1, 0)),
            Inst::alu(Opcode::FAdd, s, s.into(), x.into()),
            Inst::alu(Opcode::Add, i, i.into(), Operand::ImmI(1)),
            Inst::br(Cond::Lt, i.into(), Operand::ImmI(8), body),
        ]);
        f.block_mut(exit).insts.extend([
            Inst::store(Operand::Sym(out), Operand::ImmI(0), s.into(), MemLoc::affine(out, 0, 0)),
            Inst::halt(),
        ]);
        // (Simulation-based equivalence is covered by the cross-crate
        // integration tests; here check the rewrite is complete and legal.)
        let before_usage = measure(&m.func);
        let usage = assign_registers(&mut m.func);
        assert_eq!(usage.total(), before_usage.total());
        ilpc_ir::verify::verify_module(&m).unwrap();
        // All register ids now < colors used.
        for (_, inst) in m.func.insts() {
            for r in inst.uses().chain(inst.def()) {
                let lim = if r.is_int() { usage.int } else { usage.flt };
                assert!(r.id < lim, "{r} >= {lim}");
            }
        }
    }
}
