//! `pool-chaos` — deterministic chaos campaign against the shard pool.
//!
//! Builds a seeded request script, runs it twice — once through a plain
//! single-process server (ground truth), once through a supervised pool
//! whose workers are armed with a seeded [`ilpc_serve::chaos`] plan
//! (kills, stalls, garbage lines, torn partial writes, silent drops) —
//! and asserts the supervision contract:
//!
//! * **zero lost replies**: every request id gets exactly one reply;
//! * **zero duplicated replies**: no id is answered twice;
//! * **agreement**: every `ok` reply matches the undisturbed run
//!   byte-for-byte (sweep replies compare per-scenario aggregates, since
//!   cache/steal counters legitimately differ across process splits);
//! * **typed failure**: every non-`ok` reply is `timeout`/`unavailable`
//!   (`overloaded` when the campaign oversubscribes the queue) — never a
//!   raw line, a hang, or a process exit;
//! * **visibility**: injected faults show up as shard incidents in the
//!   final `status` reply.
//!
//! Exit status 0 = contract held; 1 = violation (printed); 2 = bad usage.
//!
//! ```text
//! pool-chaos --quick                 # CI smoke (seconds)
//! pool-chaos --shards 4 --requests 120 --seed 7
//! ```

use ilpc_serve::json::{parse, Json};
use ilpc_serve::{pool_lines, serve_script, PoolConfig, ServeConfig};
use ilpc_testkit::stream::{ChannelReader, SharedBuf};
use ilpc_testkit::TestRng;
use std::collections::BTreeMap;
use std::io::BufReader;

struct Args {
    shards: usize,
    requests: usize,
    seed: u64,
    scale: f64,
    deadline_ms: u64,
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let mut a = Args { shards: 3, requests: 60, seed: 42, scale: 0.02, deadline_ms: 20_000 };
    let mut k = 1;
    while k < argv.len() {
        let val = |k: usize| argv.get(k + 1).cloned().unwrap_or_default();
        match argv[k].as_str() {
            "--quick" => {
                a.requests = 24;
                k += 1;
                continue;
            }
            "--shards" => a.shards = val(k).parse().unwrap_or_else(|_| usage()),
            "--requests" => a.requests = val(k).parse().unwrap_or_else(|_| usage()),
            "--seed" => a.seed = val(k).parse().unwrap_or_else(|_| usage()),
            "--scale" => a.scale = val(k).parse().unwrap_or_else(|_| usage()),
            "--deadline-ms" => a.deadline_ms = val(k).parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
        k += 2;
    }

    let script = build_script(&a);
    let ids = a.requests + 2; // + sweep + status

    eprintln!(
        "pool-chaos: {} requests, {} shards, seed {} — ground-truth run...",
        ids, a.shards, a.seed
    );
    let truth = serve_script(
        &ServeConfig { workers: 2, queue: ids.max(64), ..Default::default() },
        &script,
    );
    let truth_by_id = index_by_id("truth", &truth);

    let chaos = format!(
        "seed={},kill=0.08,stall=0.05,garbage=0.08,partial=0.04,drop=0.05,salt={{shard}}g{{gen}}",
        a.seed
    );
    eprintln!("pool-chaos: chaos run ({chaos})...");
    let cfg = PoolConfig {
        shards: a.shards,
        worker_args: vec![
            "--workers".into(),
            "2".into(),
            "--queue".into(),
            ids.max(64).to_string(),
            "--sweep-threads".into(),
            "1".into(),
            "--chaos".into(),
            chaos,
        ],
        queue: ids + 8,
        deadline_ms: a.deadline_ms,
        ping_interval_ms: 200,
        ping_misses: 3,
        max_attempts: 2,
        tick_ms: 10,
        ..Default::default()
    };
    // Drive the pool interactively: fire the whole workload, wait for
    // every reply, and only then probe `status` — so the incident ring it
    // reports has actually witnessed the campaign's faults.
    let (line_tx, reader) = ChannelReader::new();
    let out = SharedBuf::new();
    let pool_thread = {
        let cfg = cfg.clone();
        let mut out = out.clone();
        std::thread::spawn(move || {
            let mut input = BufReader::new(reader);
            pool_lines(&cfg, &mut input, &mut out).expect("pool run");
        })
    };
    line_tx.send(script.into_bytes()).expect("pool alive");
    let workload_ids = ids - 1; // status is sent separately below
    let deadline = std::time::Instant::now()
        + std::time::Duration::from_millis(a.deadline_ms * 4 + 60_000);
    while out.lines().len() < workload_ids {
        if std::time::Instant::now() > deadline {
            eprintln!(
                "pool-chaos: VIOLATION: pool produced {} of {workload_ids} replies before \
                 the campaign deadline (lost replies or a wedged pool)",
                out.lines().len()
            );
            std::process::exit(1);
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    line_tx
        .send(format!("{{\"id\":{},\"op\":\"status\"}}\n", ids - 1).into_bytes())
        .expect("pool alive");
    drop(line_tx);
    pool_thread.join().expect("pool thread");
    let chaotic = out.lines();
    let chaotic_by_id = index_by_id("pool", &chaotic);

    let mut violations: Vec<String> = Vec::new();
    let mut ok_count = 0usize;
    let mut fault_count = 0usize;

    // Lost / duplicated replies.
    for id in 0..ids {
        let key = id.to_string();
        match chaotic_by_id.get(&key).map(Vec::len) {
            None => violations.push(format!("id {key}: reply LOST")),
            Some(1) => {}
            Some(n) => violations.push(format!("id {key}: {n} replies (DUPLICATED)")),
        }
    }

    // Agreement + typed failure.
    for (key, replies) in &chaotic_by_id {
        let Some(reply) = replies.first() else { continue };
        let v = parse(reply).expect("indexed replies parse");
        if v.get("ok") == Some(&Json::Bool(true)) {
            ok_count += 1;
            if *key == (ids - 1).to_string() {
                continue; // status: pool-side, no ground-truth counterpart
            }
            let truth_line = truth_by_id.get(key).and_then(|t| t.first());
            match truth_line {
                None => violations.push(format!("id {key}: ok reply but no ground truth")),
                Some(t) => check_agreement(key, reply, t, &mut violations),
            }
        } else {
            fault_count += 1;
            let kind = v
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string();
            if !matches!(kind.as_str(), "timeout" | "unavailable" | "overloaded") {
                violations.push(format!("id {key}: untyped chaos failure kind {kind:?}"));
            }
        }
    }

    // Visibility: the status reply (last id) must expose shard incidents
    // whenever any fault reply occurred. (A lucky seed can draw no
    // faults; then zero incidents is legitimate.)
    let status_id = (ids - 1).to_string();
    let incidents_total = chaotic_by_id
        .get(&status_id)
        .and_then(|r| r.first())
        .and_then(|l| parse(l).ok())
        .and_then(|v| {
            v.get("result").and_then(|r| r.get("incidents_total")).and_then(Json::as_f64)
        })
        .unwrap_or(-1.0);
    if incidents_total < 0.0 {
        violations.push("status reply missing incidents_total".to_string());
    } else if fault_count > 0 && incidents_total == 0.0 {
        violations.push(format!(
            "{fault_count} fault replies but zero shard incidents recorded"
        ));
    }

    eprintln!(
        "pool-chaos: {ok_count} ok, {fault_count} typed-fault replies, \
         {incidents_total} shard incidents"
    );
    if violations.is_empty() {
        eprintln!("pool-chaos: PASS — no lost or duplicated replies, contract held");
        return;
    }
    for v in &violations {
        eprintln!("pool-chaos: VIOLATION: {v}");
    }
    std::process::exit(1);
}

/// Seeded request script: a mix of simulate/compile points, one
/// multi-scenario sweep mid-stream, and a final `status`. Ids are
/// 0..n+1, each used exactly once.
fn build_script(a: &Args) -> String {
    let mut rng = TestRng::seed_from_u64(a.seed);
    let workloads =
        ["add", "dotprod", "sum", "maxval", "merge", "APS-2", "SDS-1", "MTS-2"];
    let levels = ["Conv", "Lev1", "Lev2", "Lev3", "Lev4"];
    let mut lines = Vec::new();
    for id in 0..a.requests {
        let w = workloads[rng.gen_range(0..workloads.len() as u64) as usize];
        let l = levels[rng.gen_range(0..levels.len() as u64) as usize];
        let width = [1u32, 2, 4, 8][rng.gen_range(0..4u64) as usize];
        let line = if rng.gen_range(0..3u64) == 0 {
            format!(
                r#"{{"id":{id},"op":"compile","workload":"{w}","level":"{l}","width":{width},"scale":{}}}"#,
                a.scale
            )
        } else {
            format!(
                r#"{{"id":{id},"op":"simulate","workload":"{w}","level":"{l}","width":{width},"scale":{}}}"#,
                a.scale
            )
        };
        lines.push(line);
    }
    lines.push(format!(
        r#"{{"id":{},"op":"sweep","scale":{},"levels":["Conv","Lev2"],"widths":[1,8],"mems":[{{"kind":"perfect"}},{{"kind":"cache","sets":16}}]}}"#,
        a.requests, a.scale
    ));
    lines.join("\n") + "\n"
}

/// Group reply lines by their id rendered as a string.
fn index_by_id(tag: &str, replies: &[String]) -> BTreeMap<String, Vec<String>> {
    let mut map: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for line in replies {
        let Ok(v) = parse(line) else {
            eprintln!("pool-chaos: {tag}: unparseable reply line {line:?}");
            continue;
        };
        let id = match v.get("id") {
            Some(Json::Num(n)) => format!("{n}"),
            Some(Json::Str(s)) => s.clone(),
            _ => "null".to_string(),
        };
        map.entry(id).or_default().push(line.clone());
    }
    map
}

/// An `ok` pool reply must agree with ground truth. Point requests
/// (simulate/compile) are deterministic → byte equality. Sweep replies
/// carry machinery counters (cache hits, steals) that differ across
/// process splits → compare per-scenario aggregates and coverage. The
/// status op is pool-side, never compared.
fn check_agreement(id: &str, got: &str, want: &str, violations: &mut Vec<String>) {
    let g = parse(got).expect("got parses");
    let w = parse(want).expect("want parses");
    let g_res = g.get("result");
    let w_res = w.get("result");
    if g_res.and_then(|r| r.get("role")).is_some() {
        return; // status reply: pool-side, shape differs by design
    }
    let g_scen = g_res.and_then(|r| r.get("scenarios")).and_then(Json::as_arr);
    let w_scen = w_res.and_then(|r| r.get("scenarios")).and_then(Json::as_arr);
    match (g_scen, w_scen) {
        (Some(gs), Some(ws)) => {
            if gs.len() != ws.len() {
                violations.push(format!(
                    "id {id}: sweep scenario count {} != truth {}",
                    gs.len(),
                    ws.len()
                ));
                return;
            }
            for (k, (gsc, wsc)) in gs.iter().zip(ws).enumerate() {
                if gsc.get("shard_error").is_some() {
                    continue; // typed partial coverage, not a mismatch
                }
                let pick = |v: &Json, key: &str| v.get(key).cloned().unwrap_or(Json::Null);
                for key in ["label", "completed", "mean_speedup"] {
                    if pick(gsc, key) != pick(wsc, key) {
                        violations.push(format!(
                            "id {id}: sweep scenario {k} field {key:?} diverges from truth"
                        ));
                    }
                }
            }
        }
        _ => {
            if got != want {
                violations.push(format!("id {id}: reply diverges from ground truth"));
            }
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: pool-chaos [--quick] [--shards N] [--requests N] [--seed S] \
         [--scale F] [--deadline-ms MS]"
    );
    std::process::exit(2)
}
