//! `ilpc-serve` — the long-running evaluation service.
//!
//! ```text
//! # JSON-lines over stdin/stdout (default):
//! printf '%s\n' \
//!   '{"id":1,"op":"simulate","workload":"dotprod","level":"Lev4","width":8}' \
//!   | cargo run --release -p ilpc-serve --bin ilpc-serve
//!
//! # TCP mode:
//! cargo run --release -p ilpc-serve --bin ilpc-serve -- --tcp 127.0.0.1:7199
//!
//! # Supervised multi-process pool (N worker shards over stdin/stdout):
//! cargo run --release -p ilpc-serve --bin ilpc-serve -- --pool 4
//! ```
//!
//! Flags: `--workers N` (job workers, default 2), `--queue N` (bounded
//! queue capacity, default 64), `--sweep-threads N` (stealing pool per
//! sweep, default = cores), `--tcp ADDR` (serve TCP instead of stdin),
//! `--chaos SPEC` (seeded fault injection, stdin worker mode only — see
//! `ilpc_serve::chaos`).
//!
//! Pool mode (`--pool N`) re-execs this binary N times as worker shards
//! and supervises them: health pings, per-request deadlines (typed
//! `timeout` replies), crash respawn under seeded exponential backoff
//! with a restart-storm circuit breaker, and bounded retry of idempotent
//! requests on a different worker. Pool knobs: `--deadline-ms`,
//! `--ping-interval-ms`, `--ping-misses`, `--retry N` (total attempts),
//! `--backoff-base-ms`, `--backoff-max-ms`, `--backoff-jitter-ms`,
//! `--breaker-max`, `--breaker-window-ms`, `--breaker-cooloff-ms`,
//! `--seed`. With `--chaos`, the spec is forwarded to every worker with
//! `salt={shard}g{gen}` appended, so each worker generation draws its own
//! deterministic fault stream.
//!
//! The process never exits on bad input: malformed lines, invalid configs
//! and failed evaluations come back as typed error replies, and a full
//! queue rejects with `overloaded` instead of buffering without bound.

use ilpc_serve::{pool_lines, serve_lines, serve_tcp, ChaosPlan, PoolConfig, ServeConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut cfg = ServeConfig::default();
    let mut pool = PoolConfig::default();
    let mut tcp: Option<String> = None;
    let mut shards: Option<usize> = None;
    let mut chaos: Option<String> = None;
    let mut k = 1;
    let num = |args: &[String], k: usize, what: &str| -> u64 {
        args.get(k + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| die(&format!("{what} needs an integer value")))
    };
    while k < args.len() {
        match args[k].as_str() {
            "--workers" => cfg.workers = num(&args, k, "--workers") as usize,
            "--queue" => cfg.queue = num(&args, k, "--queue") as usize,
            "--sweep-threads" => cfg.sweep_threads = num(&args, k, "--sweep-threads") as usize,
            "--tcp" => {
                tcp = Some(args.get(k + 1).cloned().unwrap_or_else(|| die("--tcp ADDR")))
            }
            "--pool" => shards = Some(num(&args, k, "--pool") as usize),
            "--chaos" => {
                chaos = Some(args.get(k + 1).cloned().unwrap_or_else(|| die("--chaos SPEC")))
            }
            "--deadline-ms" => pool.deadline_ms = num(&args, k, "--deadline-ms"),
            "--ping-interval-ms" => pool.ping_interval_ms = num(&args, k, "--ping-interval-ms"),
            "--ping-misses" => pool.ping_misses = num(&args, k, "--ping-misses") as u32,
            "--retry" => pool.max_attempts = num(&args, k, "--retry") as u32,
            "--backoff-base-ms" => pool.backoff.base_ms = num(&args, k, "--backoff-base-ms"),
            "--backoff-max-ms" => pool.backoff.max_ms = num(&args, k, "--backoff-max-ms"),
            "--backoff-jitter-ms" => {
                pool.backoff.jitter_ms = num(&args, k, "--backoff-jitter-ms")
            }
            "--breaker-max" => pool.breaker.max_restarts = num(&args, k, "--breaker-max") as u32,
            "--breaker-window-ms" => {
                pool.breaker.window_ms = num(&args, k, "--breaker-window-ms")
            }
            "--breaker-cooloff-ms" => {
                pool.breaker.cooloff_ms = num(&args, k, "--breaker-cooloff-ms")
            }
            "--seed" => pool.backoff.seed = num(&args, k, "--seed"),
            other => {
                eprintln!("unknown argument {other}");
                eprintln!(
                    "usage: ilpc-serve [--workers N] [--queue N] [--sweep-threads N] \
                     [--tcp ADDR] [--chaos SPEC] [--pool N ...pool knobs...]"
                );
                std::process::exit(2);
            }
        }
        k += 2;
    }

    match (tcp, shards) {
        (Some(_), Some(_)) => die("--tcp and --pool are mutually exclusive"),
        (Some(addr), None) => {
            if chaos.is_some() {
                die("--chaos is a stdin-mode flag (workers and pool drills), not TCP");
            }
            let (local, accept_loop) = serve_tcp(&cfg, &addr, None).expect("bind TCP listener");
            eprintln!("ilpc-serve listening on {local}");
            accept_loop.join().expect("accept loop");
        }
        (None, Some(shards)) => {
            pool.shards = shards;
            pool.worker_exe =
                std::env::current_exe().expect("current_exe for worker re-exec");
            pool.worker_args = vec![
                "--workers".into(),
                cfg.workers.to_string(),
                "--queue".into(),
                cfg.queue.to_string(),
                "--sweep-threads".into(),
                cfg.sweep_threads.to_string(),
            ];
            if let Some(spec) = &chaos {
                // Validate here so a typo'd spec fails fast instead of
                // crash-looping every worker it is forwarded to.
                if let Err(e) = ChaosPlan::parse(spec) {
                    die(&e);
                }
                pool.worker_args.push("--chaos".into());
                pool.worker_args.push(format!("{spec},salt={{shard}}g{{gen}}"));
            }
            pool.log_incidents = true;
            let mut input = std::io::BufReader::new(std::io::stdin());
            if let Err(e) = pool_lines(&pool, &mut input, &mut std::io::stdout()) {
                if e.kind() == std::io::ErrorKind::BrokenPipe {
                    return;
                }
                eprintln!("ilpc-serve --pool: {e}");
                std::process::exit(1);
            }
        }
        (None, None) => {
            if let Some(spec) = chaos {
                cfg.chaos = Some(ChaosPlan::parse(&spec).unwrap_or_else(|e| die(&e)));
            }
            let stdin = std::io::stdin();
            let mut input = stdin.lock();
            if let Err(e) = serve_lines(&cfg, &mut input, &mut std::io::stdout()) {
                // A reader that hangs up early (head, a dead pipe) is a
                // normal way for a stream session to end, not a failure.
                if e.kind() == std::io::ErrorKind::BrokenPipe {
                    return;
                }
                eprintln!("ilpc-serve: {e}");
                std::process::exit(1);
            }
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("ilpc-serve: {msg}");
    std::process::exit(2)
}
