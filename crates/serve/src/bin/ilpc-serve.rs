//! `ilpc-serve` — the long-running evaluation service.
//!
//! ```text
//! # JSON-lines over stdin/stdout (default):
//! printf '%s\n' \
//!   '{"id":1,"op":"simulate","workload":"dotprod","level":"Lev4","width":8}' \
//!   | cargo run --release -p ilpc-serve --bin ilpc-serve
//!
//! # TCP mode:
//! cargo run --release -p ilpc-serve --bin ilpc-serve -- --tcp 127.0.0.1:7199
//! ```
//!
//! Flags: `--workers N` (job workers, default 2), `--queue N` (bounded
//! queue capacity, default 64), `--sweep-threads N` (stealing pool per
//! sweep, default = cores), `--tcp ADDR` (serve TCP instead of stdin).
//!
//! The process never exits on bad input: malformed lines, invalid configs
//! and failed evaluations come back as typed error replies, and a full
//! queue rejects with `overloaded` instead of buffering without bound.

use ilpc_serve::{serve_lines, serve_tcp, ServeConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut cfg = ServeConfig::default();
    let mut tcp: Option<String> = None;
    let mut k = 1;
    while k < args.len() {
        match args[k].as_str() {
            "--workers" => {
                cfg.workers = args[k + 1].parse().expect("--workers N");
                k += 2;
            }
            "--queue" => {
                cfg.queue = args[k + 1].parse().expect("--queue N");
                k += 2;
            }
            "--sweep-threads" => {
                cfg.sweep_threads = args[k + 1].parse().expect("--sweep-threads N");
                k += 2;
            }
            "--tcp" => {
                tcp = Some(args[k + 1].clone());
                k += 2;
            }
            other => {
                eprintln!("unknown argument {other}");
                eprintln!(
                    "usage: ilpc-serve [--workers N] [--queue N] [--sweep-threads N] \
                     [--tcp ADDR]"
                );
                std::process::exit(2);
            }
        }
    }

    match tcp {
        Some(addr) => {
            let (local, accept_loop) =
                serve_tcp(&cfg, &addr, None).expect("bind TCP listener");
            eprintln!("ilpc-serve listening on {local}");
            accept_loop.join().expect("accept loop");
        }
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            if let Err(e) = serve_lines(&cfg, &mut stdin.lock(), &mut stdout.lock()) {
                // A reader that hangs up early (head, a dead pipe) is a
                // normal way for a stream session to end, not a failure.
                if e.kind() == std::io::ErrorKind::BrokenPipe {
                    return;
                }
                eprintln!("ilpc-serve: {e}");
                std::process::exit(1);
            }
        }
    }
}
