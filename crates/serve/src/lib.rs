//! # ilpc-serve — long-running evaluation service
//!
//! Turns the harness into a service: JSON-lines requests (`compile`,
//! `simulate`, `sweep`, `batch`) over stdin or TCP, executed by a worker
//! pool behind a bounded queue with reject-on-full backpressure. Sweeps
//! run on the work-stealing engine (`ilpc_harness::sweep`) and share
//! per-scale compile-artifact caches across requests; guard incidents ride
//! each `compile` reply as typed records.
//!
//! `--pool N` runs the [`pool`] supervisor instead: N worker *processes*
//! behind a router that holds the reply contract through crashes, hangs
//! and garbage (deadlines, health pings, seeded backoff + circuit
//! breaker, bounded retry), verified by the seeded [`chaos`] harness
//! (`pool-chaos` bin).
//!
//! See `crates/serve/src/proto.rs` for the wire format and DESIGN.md §15
//! (protocol) / §18 (pool supervision) for the full contract.

pub use ilpc_lint::json;
pub mod chaos;
pub mod pool;
pub mod proto;
pub mod server;
pub mod supervisor;

pub use chaos::{ChaosPlan, ChaosVerdict};
pub use json::{obj, parse, Json};
pub use pool::{pool_lines, pool_script, PoolConfig};
pub use proto::{err_reply, ok_reply, parse_request, ErrorKind, Op, Request};
pub use server::{serve_lines, serve_script, serve_tcp, ServeConfig, Server, MAX_LINE_BYTES};
pub use supervisor::{BackoffCfg, BreakerCfg, ShardPhase, ShardSupervisor};
