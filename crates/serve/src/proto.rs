//! The `ilpc-serve` wire protocol: JSON-lines requests and replies.
//!
//! One request object per line. Every request carries a caller-chosen
//! `id` that is echoed verbatim in the reply, so clients can pipeline
//! requests and match replies out of order:
//!
//! ```text
//! {"id":1,"op":"compile","workload":"dotprod","level":"Lev4","width":8}
//! {"id":1,"op":"compile","workload":"dotprod","level":"Lev6","width":8,"vlen":4}
//! {"id":2,"op":"simulate","workload":"add","level":"Lev2","width":4,
//!  "mem":{"kind":"cache","line_words":4,"sets":16,"ways":2,
//!         "load_miss":30,"store_miss":30}}
//! {"id":3,"op":"sweep","scale":0.02,"levels":["Conv","Lev2"],
//!  "widths":[1,8],"mems":[{"kind":"perfect"},{"kind":"cache","sets":16}]}
//! {"id":4,"op":"batch","requests":[{...},{...}]}
//! {"id":5,"op":"ping"}
//! {"id":6,"op":"status"}
//! ```
//!
//! `ping` and `status` are answered immediately without queue admission
//! (a health probe must not bounce off a full queue); the pool front end
//! (`--pool N`) answers them itself with per-shard supervision state.
//!
//! Replies are `{"id":…,"ok":true,"result":{…}}` or
//! `{"id":…,"ok":false,"error":{"kind":"<kind>","detail":"…"}}` with one
//! of the typed kinds in [`ErrorKind`]. A request the server cannot even
//! parse is answered with `id: null` and `kind: "bad-request"` — the
//! process never exits on bad input.

use crate::json::{obj, Json};
use ilpc_core::level::Level;
use ilpc_harness::grid::{Sabotage, SabotageMode};
use ilpc_machine::{CacheParams, MemConfig};
use std::fmt;

/// Typed error taxonomy of the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line was not valid JSON, or not a valid request shape.
    BadRequest,
    /// The bounded queue is full; retry later (backpressure, never OOM).
    Overloaded,
    /// The evaluation itself failed (differential mismatch, budget,
    /// contained panic) — reported per request, the server keeps serving.
    EvalFailed,
    /// A structurally valid request with rejected semantics (unknown
    /// workload/level, invalid grid axes, bad scale).
    BadConfig,
    /// A contained internal failure (a panic inside the handler).
    Internal,
    /// The request's per-request deadline expired before a worker shard
    /// produced a reply (pool mode). The evaluation may still be running
    /// or its shard may have been reaped — the *reply* is authoritative:
    /// exactly one per request, and this one says "gave up waiting".
    Timeout,
    /// No shard could complete the request: every attempt landed on a
    /// worker that died, or all shards are circuit-open (pool mode).
    Unavailable,
}

impl ErrorKind {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad-request",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::EvalFailed => "eval-failed",
            ErrorKind::BadConfig => "bad-config",
            ErrorKind::Internal => "internal",
            ErrorKind::Timeout => "timeout",
            ErrorKind::Unavailable => "unavailable",
        }
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A typed request error: kind plus human-readable detail.
pub type ReqError = (ErrorKind, String);

fn bad(detail: impl Into<String>) -> ReqError {
    (ErrorKind::BadRequest, detail.into())
}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Echoed verbatim in the reply (`null` if absent).
    pub id: Json,
    pub op: Op,
}

/// Request operations.
#[derive(Debug, Clone)]
pub enum Op {
    /// Compile one (workload, level, width) point under the guard and
    /// report achieved level + typed incidents. With `lint`, the reply
    /// also carries the `ilpc-lint` audit of the compiled artifact.
    Compile { workload: String, level: Level, width: u32, vlen: u32, scale: f64, lint: bool },
    /// Compile + simulate + differentially verify one point.
    Simulate { workload: String, level: Level, width: u32, vlen: u32, scale: f64, mem: MemConfig },
    /// Multi-scenario sweep over the whole catalog on the work-stealing
    /// pool (see `ilpc_harness::sweep`).
    Sweep {
        scale: f64,
        levels: Vec<Level>,
        widths: Vec<u32>,
        mems: Vec<MemConfig>,
        sabotage: Option<Sabotage>,
    },
    /// Several requests executed as one job; replies come back as one
    /// array in submission order.
    Batch(Vec<Request>),
    /// Health probe: answered immediately, *bypassing* the bounded queue,
    /// so a busy-but-alive process still pongs. The pool supervisor
    /// drives its hang detection off this op.
    Ping,
    /// Service introspection: queue depth and worker count for a single
    /// process; per-shard supervision state when answered by a pool.
    Status,
}

impl Request {
    /// Whether re-executing this request is observably identical to
    /// executing it once. Every current op is a pure evaluation (compile,
    /// simulate, sweep and their batches mutate nothing but caches), so
    /// the pool may re-dispatch it after a worker crash. Any future
    /// mutating op must return `false` here to opt out of retry.
    pub fn is_idempotent(&self) -> bool {
        match &self.op {
            Op::Compile { .. } | Op::Simulate { .. } | Op::Sweep { .. } => true,
            Op::Ping | Op::Status => true,
            Op::Batch(reqs) => reqs.iter().all(Request::is_idempotent),
        }
    }
}

/// Parse one request line (already validated as JSON by the caller).
pub fn parse_request(v: &Json) -> Result<Request, ReqError> {
    parse_request_inner(v, false)
}

fn parse_request_inner(v: &Json, in_batch: bool) -> Result<Request, ReqError> {
    let id = v.get("id").cloned().unwrap_or(Json::Null);
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing or non-string \"op\""))?;
    let op = match op {
        "compile" => {
            let (workload, level, width, vlen, scale) = point_fields(v)?;
            let lint = match v.get("lint") {
                None => false,
                Some(l) => l
                    .as_bool()
                    .ok_or_else(|| bad("\"lint\" must be a boolean"))?,
            };
            Op::Compile { workload, level, width, vlen, scale, lint }
        }
        "simulate" => {
            let (workload, level, width, vlen, scale) = point_fields(v)?;
            let mem = match v.get("mem") {
                None => MemConfig::Perfect,
                Some(m) => parse_mem(m)?,
            };
            Op::Simulate { workload, level, width, vlen, scale, mem }
        }
        "sweep" => {
            let scale = opt_f64(v, "scale")?.unwrap_or(0.05);
            let levels = match v.get("levels") {
                None => Level::ALL.to_vec(),
                Some(l) => l
                    .as_arr()
                    .ok_or_else(|| bad("\"levels\" must be an array"))?
                    .iter()
                    .map(parse_level)
                    .collect::<Result<_, _>>()?,
            };
            let widths = match v.get("widths") {
                None => vec![1, 8],
                Some(w) => w
                    .as_arr()
                    .ok_or_else(|| bad("\"widths\" must be an array"))?
                    .iter()
                    .map(|x| {
                        x.as_u64()
                            .and_then(|n| u32::try_from(n).ok())
                            .ok_or_else(|| bad("widths must be non-negative integers"))
                    })
                    .collect::<Result<_, _>>()?,
            };
            let mems = match v.get("mems") {
                None => vec![MemConfig::Perfect],
                Some(m) => m
                    .as_arr()
                    .ok_or_else(|| bad("\"mems\" must be an array"))?
                    .iter()
                    .map(parse_mem)
                    .collect::<Result<_, _>>()?,
            };
            let sabotage = match v.get("sabotage") {
                None => None,
                Some(s) => Some(parse_sabotage(s)?),
            };
            Op::Sweep { scale, levels, widths, mems, sabotage }
        }
        "ping" => Op::Ping,
        "status" => Op::Status,
        "batch" => {
            if in_batch {
                return Err(bad("nested \"batch\" requests are not allowed"));
            }
            let reqs = v
                .get("requests")
                .and_then(Json::as_arr)
                .ok_or_else(|| bad("\"batch\" needs a \"requests\" array"))?;
            if reqs.is_empty() {
                return Err(bad("\"batch\" with no requests"));
            }
            let parsed = reqs
                .iter()
                .map(|r| parse_request_inner(r, true))
                .collect::<Result<Vec<_>, _>>()?;
            Op::Batch(parsed)
        }
        other => return Err(bad(format!("unknown op {other:?}"))),
    };
    Ok(Request { id, op })
}

fn point_fields(v: &Json) -> Result<(String, Level, u32, u32, f64), ReqError> {
    let workload = v
        .get("workload")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing or non-string \"workload\""))?
        .to_string();
    let level = parse_level(
        v.get("level").ok_or_else(|| bad("missing \"level\""))?,
    )?;
    let width = v
        .get("width")
        .and_then(Json::as_u64)
        .and_then(|n| u32::try_from(n).ok())
        .ok_or_else(|| bad("missing or invalid \"width\""))?;
    // Optional vector length for Lev6 points (1 = scalar machine; the
    // SLP pass itself clamps to the IR's MAX_VLEN).
    let vlen = match v.get("vlen") {
        None => 1,
        Some(n) => n
            .as_u64()
            .and_then(|n| u32::try_from(n).ok())
            .filter(|&n| n >= 1)
            .ok_or_else(|| bad("\"vlen\" must be a positive integer"))?,
    };
    let scale = opt_f64(v, "scale")?.unwrap_or(0.05);
    Ok((workload, level, width, vlen, scale))
}

fn opt_f64(v: &Json, key: &str) -> Result<Option<f64>, ReqError> {
    match v.get(key) {
        None => Ok(None),
        Some(x) => x
            .as_f64()
            .map(Some)
            .ok_or_else(|| bad(format!("\"{key}\" must be a number"))),
    }
}

fn parse_level(v: &Json) -> Result<Level, ReqError> {
    let s = v.as_str().ok_or_else(|| bad("level must be a string"))?;
    Level::ALL
        .into_iter()
        .find(|l| l.name().eq_ignore_ascii_case(s))
        .ok_or_else(|| bad(format!("unknown level {s:?} (Conv, Lev1..Lev4, Lev6)")))
}

fn parse_mem(v: &Json) -> Result<MemConfig, ReqError> {
    let kind = v
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("mem config needs a \"kind\""))?;
    match kind {
        "perfect" => Ok(MemConfig::Perfect),
        "cache" => {
            let field = |key: &str, default: u32| -> Result<u32, ReqError> {
                match v.get(key) {
                    None => Ok(default),
                    Some(x) => x
                        .as_u64()
                        .and_then(|n| u32::try_from(n).ok())
                        .ok_or_else(|| bad(format!("cache \"{key}\" must be an integer"))),
                }
            };
            Ok(MemConfig::Cache(CacheParams::new(
                field("line_words", 4)?,
                field("sets", 16)?,
                field("ways", 2)?,
                field("load_miss", 30)?,
                field("store_miss", 30)?,
            )))
        }
        other => Err(bad(format!("unknown mem kind {other:?}"))),
    }
}

fn parse_sabotage(v: &Json) -> Result<Sabotage, ReqError> {
    let workload = v
        .get("workload")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("sabotage needs \"workload\""))?
        .to_string();
    let level = parse_level(v.get("level").ok_or_else(|| bad("sabotage needs \"level\""))?)?;
    let width = v
        .get("width")
        .and_then(Json::as_u64)
        .and_then(|n| u32::try_from(n).ok())
        .ok_or_else(|| bad("sabotage needs an integer \"width\""))?;
    let mode = match v.get("mode").and_then(Json::as_str) {
        None | Some("panic") => SabotageMode::Panic,
        Some("corrupt") => SabotageMode::Corrupt,
        Some(other) => return Err(bad(format!("unknown sabotage mode {other:?}"))),
    };
    Ok(Sabotage { workload, level, width, mode })
}

/// Success reply line.
pub fn ok_reply(id: &Json, result: Json) -> String {
    obj([("id", id.clone()), ("ok", Json::Bool(true)), ("result", result)]).to_string()
}

/// Typed error reply line.
pub fn err_reply(id: &Json, kind: ErrorKind, detail: &str) -> String {
    obj([
        ("id", id.clone()),
        ("ok", Json::Bool(false)),
        (
            "error",
            obj([("kind", Json::str(kind.name())), ("detail", Json::str(detail))]),
        ),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn parses_the_three_ops_and_batch() {
        let r = parse_request(
            &parse(r#"{"id":1,"op":"compile","workload":"dotprod","level":"Lev4","width":8}"#)
                .unwrap(),
        )
        .unwrap();
        assert!(matches!(r.op, Op::Compile { ref workload, level: Level::Lev4, width: 8, vlen: 1, .. }
            if workload == "dotprod"));

        let r = parse_request(
            &parse(r#"{"id":2,"op":"compile","workload":"dotprod","level":"Lev6","width":8,"vlen":4}"#)
                .unwrap(),
        )
        .unwrap();
        assert!(matches!(r.op, Op::Compile { level: Level::Lev6, width: 8, vlen: 4, .. }));

        let r = parse_request(
            &parse(
                r#"{"op":"simulate","workload":"add","level":"conv","width":1,
                   "mem":{"kind":"cache","sets":8}}"#,
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(r.id, Json::Null);
        assert!(matches!(r.op, Op::Simulate { level: Level::Conv, mem: MemConfig::Cache(_), .. }));

        let r = parse_request(
            &parse(
                r#"{"id":"s","op":"sweep","scale":0.02,"levels":["Conv","Lev2"],
                   "widths":[1,8],"mems":[{"kind":"perfect"}],
                   "sabotage":{"workload":"add","level":"Lev2","width":8}}"#,
            )
            .unwrap(),
        )
        .unwrap();
        match r.op {
            Op::Sweep { scale, levels, widths, mems, sabotage } => {
                assert_eq!(scale, 0.02);
                assert_eq!(levels, vec![Level::Conv, Level::Lev2]);
                assert_eq!(widths, vec![1, 8]);
                assert_eq!(mems.len(), 1);
                assert_eq!(sabotage.unwrap().mode, SabotageMode::Panic);
            }
            other => panic!("{other:?}"),
        }

        let r = parse_request(
            &parse(
                r#"{"id":9,"op":"batch","requests":[
                    {"id":"a","op":"compile","workload":"add","level":"Conv","width":1},
                    {"id":"b","op":"compile","workload":"add","level":"Lev2","width":8}]}"#,
            )
            .unwrap(),
        )
        .unwrap();
        assert!(matches!(r.op, Op::Batch(ref v) if v.len() == 2));
    }

    #[test]
    fn ping_and_status_parse_and_are_idempotent() {
        let r = parse_request(&parse(r#"{"id":"p","op":"ping"}"#).unwrap()).unwrap();
        assert!(matches!(r.op, Op::Ping));
        assert!(r.is_idempotent());
        let r = parse_request(&parse(r#"{"op":"status"}"#).unwrap()).unwrap();
        assert!(matches!(r.op, Op::Status));
        // A batch of pure evaluations is idempotent as a whole — the
        // property the pool's crash-retry rule keys on.
        let r = parse_request(
            &parse(
                r#"{"op":"batch","requests":[{"op":"ping"},
                    {"op":"compile","workload":"add","level":"Conv","width":1}]}"#,
            )
            .unwrap(),
        )
        .unwrap();
        assert!(r.is_idempotent());
    }

    #[test]
    fn pool_error_kinds_have_stable_names() {
        assert_eq!(ErrorKind::Timeout.name(), "timeout");
        assert_eq!(ErrorKind::Unavailable.name(), "unavailable");
    }

    #[test]
    fn typed_rejections() {
        for (line, needle) in [
            (r#"{"id":1}"#, "op"),
            (r#"{"op":"warp"}"#, "unknown op"),
            (r#"{"op":"compile","workload":"add","level":"Lev9","width":8}"#, "unknown level"),
            (r#"{"op":"compile","workload":"add","level":"Lev2"}"#, "width"),
            (r#"{"op":"compile","workload":"add","level":"Lev6","width":8,"vlen":0}"#, "vlen"),
            (r#"{"op":"compile","level":"Lev2","width":8}"#, "workload"),
            (r#"{"op":"sweep","mems":[{"kind":"quantum"}]}"#, "mem kind"),
            (r#"{"op":"sweep","widths":[1,-8]}"#, "widths"),
            (r#"{"op":"batch","requests":[]}"#, "no requests"),
            (
                r#"{"op":"batch","requests":[{"op":"batch","requests":[
                    {"op":"compile","workload":"a","level":"Conv","width":1}]}]}"#,
                "nested",
            ),
        ] {
            let (kind, detail) = parse_request(&parse(line).unwrap()).unwrap_err();
            assert_eq!(kind, ErrorKind::BadRequest, "{line}");
            assert!(detail.contains(needle), "{line}: {detail}");
        }
    }

    #[test]
    fn replies_are_single_parseable_lines() {
        let ok = ok_reply(&Json::num(3.0), obj([("cycles", Json::num(12.0))]));
        assert!(!ok.contains('\n'));
        let v = parse(&ok).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("result").and_then(|r| r.get("cycles")), Some(&Json::Num(12.0)));

        let err = err_reply(&Json::Null, ErrorKind::Overloaded, "queue full (4 jobs)");
        let v = parse(&err).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            v.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
            Some("overloaded")
        );
    }
}
