//! `ilpc-pool` — supervised multi-process shard pool.
//!
//! One supervisor process, N `ilpc-serve` worker processes speaking the
//! JSON-lines protocol over piped stdin/stdout. The supervisor is a pure
//! router: it never evaluates anything itself, it keeps the *pool*
//! healthy and the reply contract intact:
//!
//! * **exactly one reply per request** — client ids are rewritten to
//!   internal ids for correlation and restored on the way out; a retry is
//!   re-issued under a *fresh* internal id, so a straggler reply from a
//!   reaped worker can never produce a duplicate;
//! * **per-request deadlines** — a request that outlives its deadline is
//!   answered with a typed `timeout` reply, and the shard sitting on it
//!   is reaped (the reply is authoritative; late results are discarded);
//! * **health probes** — idle or not, every worker is pinged on an
//!   interval; a worker that misses `ping_misses` pongs in a row is
//!   declared hung and reaped exactly like a crash;
//! * **crash recovery** — worker death (pipe EOF, failed write) triggers
//!   respawn under seeded-deterministic exponential backoff
//!   ([`crate::supervisor`]), with a restart-storm circuit breaker so a
//!   crash-looping binary cannot fork-bomb the host;
//! * **bounded retry** — an in-flight request on a dead worker is retried
//!   at most `max_attempts` times total, only if idempotent
//!   ([`crate::proto::Request::is_idempotent`]), and only on a *different*
//!   worker (a different shard, or a later generation of the same shard);
//!   past the budget it is answered `unavailable`;
//! * **graceful degradation** — multi-scenario sweeps are split into
//!   per-scenario shard jobs and re-merged; if a shard dies past its
//!   retry budget the merged reply still arrives, carrying
//!   `shards:{covered,requested}` coverage and a typed per-scenario
//!   `shard_error` instead of silently dropping scenarios.
//!
//! `ping` and `status` are answered by the pool itself: `status` reports
//! per-shard supervision state (phase, generation, restart/crash/hang
//! counters) plus the recent shard incident ring
//! ([`ilpc_guard::IncidentRecord::shard`]).
//!
//! Everything is event-driven around one mpsc channel: a stdin reader
//! thread, a ticker thread, and one reader thread per live worker
//! generation all feed [`Event`]s to a single-threaded router that owns
//! all state — no locks, no reply interleaving hazards.

use crate::json::{obj, parse, Json};
use crate::proto::{err_reply, ok_reply, parse_request, ErrorKind, Op};
use crate::server::{is_disconnect, read_line_capped};
use crate::supervisor::{BackoffCfg, BreakerCfg, ShardPhase, ShardSupervisor};
use ilpc_guard::{IncidentRecord, ShardIncidentKind};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Pool tuning knobs.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Worker shard processes.
    pub shards: usize,
    /// Worker executable (default: `ilpc-serve` next to the current exe).
    pub worker_exe: PathBuf,
    /// Worker argv; `{shard}` and `{gen}` are substituted at spawn time
    /// (e.g. a chaos salt of `{shard}g{gen}` gives each worker generation
    /// its own deterministic fault stream).
    pub worker_args: Vec<String>,
    /// Extra per-shard argv appended after `worker_args` (index = shard);
    /// lets tests arm chaos on one shard only.
    pub worker_extra: Vec<Vec<String>>,
    /// Max outstanding requests (pending + in flight); beyond it new
    /// requests are rejected `overloaded`.
    pub queue: usize,
    /// Per-request deadline; expiry produces a typed `timeout` reply.
    pub deadline_ms: u64,
    /// Interval between health pings per worker.
    pub ping_interval_ms: u64,
    /// Consecutive unanswered pings before a worker is declared hung.
    pub ping_misses: u32,
    /// Total dispatch attempts per request (1 = no retry).
    pub max_attempts: u32,
    pub backoff: BackoffCfg,
    pub breaker: BreakerCfg,
    /// Supervision timer granularity.
    pub tick_ms: u64,
    /// Log shard incidents to stderr as they happen.
    pub log_incidents: bool,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            shards: 2,
            worker_exe: default_worker_exe(),
            worker_args: vec![
                "--workers".into(),
                "2".into(),
                "--queue".into(),
                "64".into(),
            ],
            worker_extra: Vec::new(),
            queue: 128,
            deadline_ms: 30_000,
            ping_interval_ms: 500,
            ping_misses: 4,
            max_attempts: 2,
            backoff: BackoffCfg::default(),
            breaker: BreakerCfg::default(),
            tick_ms: 20,
            log_incidents: false,
        }
    }
}

/// The `ilpc-serve` binary expected to sit next to the running
/// executable (release bin layout), or one directory up (test binaries
/// live in `target/<profile>/deps/`).
pub fn default_worker_exe() -> PathBuf {
    let exe = std::env::current_exe().unwrap_or_default();
    let dir = exe.parent().map(PathBuf::from).unwrap_or_default();
    let sibling = dir.join("ilpc-serve");
    if sibling.exists() {
        return sibling;
    }
    dir.parent()
        .map(|p| p.join("ilpc-serve"))
        .filter(|p| p.exists())
        .unwrap_or(sibling)
}

/// Everything that can wake the router.
enum Event {
    /// One complete request line from the client.
    Client(String),
    /// The client sent a line past the size cap (already drained).
    ClientOversized,
    /// Client input ended.
    ClientEof,
    /// One line from worker `shard`'s stdout, tagged with the generation
    /// whose reader produced it (stale generations are ignored).
    Worker(usize, u64, String),
    /// Worker `shard`'s stdout closed (process death), same tagging.
    WorkerGone(usize, u64),
    /// Supervision timer.
    Tick,
}

/// What a finished job does with its reply.
enum JobKind {
    /// Forward to the client with its original id restored.
    Direct,
    /// One scenario of a split sweep: fold into the parent aggregate.
    SweepShard { parent: u64, idx: usize },
}

/// One outstanding request (pending or in flight).
struct PoolJob {
    client_id: Json,
    /// Request object with the *internal* id installed; re-serialized at
    /// each dispatch (a retry rewrites the id first).
    body: Json,
    deadline_ms: u64,
    idempotent: bool,
    attempts: u32,
    /// (shard, generation) pairs already attempted — a retry must go
    /// somewhere else.
    tried: Vec<(usize, u64)>,
    /// Shard currently executing it, if dispatched.
    shard: Option<usize>,
    kind: JobKind,
}

/// A split sweep being re-merged.
struct SweepParent {
    client_id: Json,
    total: usize,
    parts: Vec<Option<Json>>,
    covered: usize,
    done: usize,
    cache_compiles: f64,
    cache_hits: f64,
    steals: f64,
    stolen_items: f64,
}

/// One worker shard: process handles + supervision state.
struct WorkerSlot {
    sup: ShardSupervisor,
    child: Option<Child>,
    stdin: Option<ChildStdin>,
    generation: u64,
    busy: Option<u64>,
    pings_outstanding: u32,
    last_ping_ms: u64,
    hangs: u64,
    garbage: u64,
}

const PING_LINE: &str = r#"{"id":"hb","op":"ping"}"#;
const INCIDENT_RING: usize = 64;

struct Pool {
    cfg: PoolConfig,
    slots: Vec<WorkerSlot>,
    jobs: HashMap<u64, PoolJob>,
    pending: VecDeque<u64>,
    sweeps: HashMap<u64, SweepParent>,
    incidents: VecDeque<IncidentRecord>,
    incidents_total: u64,
    next_internal: u64,
    next_sweep: u64,
    requested: u64,
    client_eof: bool,
    outbox: Vec<String>,
    started: Instant,
    tx: mpsc::Sender<Event>,
}

impl Pool {
    fn new(cfg: PoolConfig, tx: mpsc::Sender<Event>) -> Pool {
        let slots = (0..cfg.shards.max(1))
            .map(|shard| WorkerSlot {
                sup: ShardSupervisor::new(shard, cfg.backoff.clone(), cfg.breaker.clone()),
                child: None,
                stdin: None,
                generation: 0,
                busy: None,
                pings_outstanding: 0,
                last_ping_ms: 0,
                hangs: 0,
                garbage: 0,
            })
            .collect();
        Pool {
            cfg,
            slots,
            jobs: HashMap::new(),
            pending: VecDeque::new(),
            sweeps: HashMap::new(),
            incidents: VecDeque::new(),
            incidents_total: 0,
            next_internal: 1,
            next_sweep: 1,
            requested: 0,
            client_eof: false,
            outbox: Vec::new(),
            started: Instant::now(),
            tx,
        }
    }

    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    fn emit(&mut self, line: String) {
        self.outbox.push(line);
    }

    fn incident(&mut self, shard: usize, kind: ShardIncidentKind, detail: &str) {
        if self.cfg.log_incidents {
            eprintln!("[ilpc-pool] shard {shard} {}: {detail}", kind.name());
        }
        if self.incidents.len() == INCIDENT_RING {
            self.incidents.pop_front();
        }
        self.incidents.push_back(IncidentRecord::shard(shard, kind, detail));
        self.incidents_total += 1;
    }

    fn next_id(&mut self) -> u64 {
        let id = self.next_internal;
        self.next_internal += 1;
        id
    }

    // ---- admission ------------------------------------------------------

    fn admit_line(&mut self, line: &str) {
        let line = line.trim();
        if line.is_empty() {
            return;
        }
        self.requested += 1;
        let parsed = match parse(line) {
            Ok(v) => v,
            Err(e) => {
                self.emit(err_reply(
                    &Json::Null,
                    ErrorKind::BadRequest,
                    &format!("invalid JSON: {e}"),
                ));
                return;
            }
        };
        let req = match parse_request(&parsed) {
            Ok(r) => r,
            Err((kind, detail)) => {
                let id = parsed.get("id").cloned().unwrap_or(Json::Null);
                self.emit(err_reply(&id, kind, &detail));
                return;
            }
        };
        // The pool answers health/introspection itself: these must work
        // even with every shard down — that is precisely when the
        // operator needs them.
        match req.op {
            Op::Ping => {
                self.emit(ok_reply(&req.id, obj([("pong", Json::Bool(true))])));
                return;
            }
            Op::Status => {
                let status = self.build_status();
                self.emit(ok_reply(&req.id, status));
                return;
            }
            _ => {}
        }
        if self
            .slots
            .iter()
            .all(|s| matches!(s.sup.phase(), ShardPhase::Open { .. }))
        {
            self.emit(err_reply(
                &req.id,
                ErrorKind::Unavailable,
                "all shards circuit-open (restart storm); retry after cooloff",
            ));
            return;
        }
        // Split a multi-scenario sweep into one job per scenario so it
        // spans shards and degrades per scenario instead of whole-hog.
        let mems = parsed
            .get("mems")
            .and_then(Json::as_arr)
            .filter(|m| m.len() > 1 && matches!(req.op, Op::Sweep { .. }))
            .map(|m| m.to_vec());
        if let Some(mems) = mems {
            if self.jobs.len() + mems.len() > self.cfg.queue {
                self.emit(err_reply(
                    &req.id,
                    ErrorKind::Overloaded,
                    &format!(
                        "pool queue full ({} outstanding, cap {}); retry later",
                        self.jobs.len(),
                        self.cfg.queue
                    ),
                ));
                return;
            }
            let parent = self.next_sweep;
            self.next_sweep += 1;
            self.sweeps.insert(
                parent,
                SweepParent {
                    client_id: req.id.clone(),
                    total: mems.len(),
                    parts: (0..mems.len()).map(|_| None).collect(),
                    covered: 0,
                    done: 0,
                    cache_compiles: 0.0,
                    cache_hits: 0.0,
                    steals: 0.0,
                    stolen_items: 0.0,
                },
            );
            for (idx, mem) in mems.into_iter().enumerate() {
                let mut body = parsed.clone();
                if let Json::Obj(m) = &mut body {
                    m.insert("mems".to_string(), Json::Arr(vec![mem]));
                }
                self.enqueue(req.id.clone(), body, true, JobKind::SweepShard { parent, idx });
            }
        } else {
            if self.jobs.len() >= self.cfg.queue {
                self.emit(err_reply(
                    &req.id,
                    ErrorKind::Overloaded,
                    &format!(
                        "pool queue full ({} outstanding, cap {}); retry later",
                        self.jobs.len(),
                        self.cfg.queue
                    ),
                ));
                return;
            }
            let idempotent = req.is_idempotent();
            self.enqueue(req.id, parsed, idempotent, JobKind::Direct);
        }
        self.dispatch();
    }

    fn enqueue(&mut self, client_id: Json, mut body: Json, idempotent: bool, kind: JobKind) {
        let internal = self.next_id();
        if let Json::Obj(m) = &mut body {
            m.insert("id".to_string(), Json::num(internal as f64));
        }
        let deadline_ms = self.now_ms() + self.cfg.deadline_ms;
        self.jobs.insert(
            internal,
            PoolJob {
                client_id,
                body,
                deadline_ms,
                idempotent,
                attempts: 0,
                tried: Vec::new(),
                shard: None,
                kind,
            },
        );
        self.pending.push_back(internal);
    }

    // ---- dispatch -------------------------------------------------------

    fn dispatch(&mut self) {
        loop {
            let next = self
                .pending
                .iter()
                .copied()
                .find_map(|jid| self.pick_shard(jid).map(|s| (jid, s)));
            let Some((jid, shard)) = next else { break };
            self.pending.retain(|&p| p != jid);
            self.send_job(jid, shard);
        }
    }

    /// An idle healthy shard this job has not yet tried in its current
    /// generation — the "retry on a different worker" rule.
    fn pick_shard(&self, jid: u64) -> Option<usize> {
        let job = self.jobs.get(&jid)?;
        self.slots.iter().enumerate().find_map(|(i, s)| {
            let idle = matches!(s.sup.phase(), ShardPhase::Up)
                && s.stdin.is_some()
                && s.busy.is_none();
            let fresh = !job.tried.iter().any(|&(sh, g)| sh == i && g == s.generation);
            (idle && fresh).then_some(i)
        })
    }

    fn send_job(&mut self, jid: u64, shard: usize) {
        let gen = self.slots[shard].generation;
        let line = {
            let Some(job) = self.jobs.get_mut(&jid) else { return };
            job.attempts += 1;
            job.tried.push((shard, gen));
            job.shard = Some(shard);
            job.body.to_string()
        };
        self.slots[shard].busy = Some(jid);
        let ok = {
            let stdin = self.slots[shard].stdin.as_mut().expect("picked shard has stdin");
            writeln!(stdin, "{line}").and_then(|_| stdin.flush()).is_ok()
        };
        if !ok {
            // The busy job (this one) is requeued or failed by the
            // crash path; its attempt is already counted.
            self.fail_worker(shard, ShardIncidentKind::Crash, "write to worker stdin failed");
        }
    }

    // ---- worker events --------------------------------------------------

    fn worker_line(&mut self, shard: usize, gen: u64, line: String) {
        if self.slots[shard].generation != gen {
            return; // stale reader of a reaped generation
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            self.slots[shard].garbage += 1;
            self.incident(shard, ShardIncidentKind::Garbage, "empty or oversized reply line");
            return;
        }
        let Ok(reply) = parse(trimmed) else {
            self.slots[shard].garbage += 1;
            let head: String = trimmed.chars().take(80).collect();
            self.incident(
                shard,
                ShardIncidentKind::Garbage,
                &format!("unparseable reply line: {head:?}"),
            );
            return;
        };
        match reply.get("id") {
            Some(Json::Str(s)) if s == "hb" => {
                self.slots[shard].pings_outstanding = 0;
                self.slots[shard].sup.on_healthy();
            }
            Some(Json::Num(_)) => {
                let jid = reply.get("id").and_then(Json::as_u64).unwrap_or(0);
                if self.slots[shard].busy == Some(jid) {
                    self.slots[shard].busy = None;
                }
                // A reply for an id we no longer track is a straggler
                // from a request already answered `timeout` — discarded,
                // because the client already has its one reply.
                if self.jobs.contains_key(&jid) {
                    self.slots[shard].sup.on_healthy();
                    self.deliver(jid, reply);
                }
            }
            _ => {
                self.slots[shard].garbage += 1;
                self.incident(
                    shard,
                    ShardIncidentKind::Garbage,
                    "reply with missing or foreign id",
                );
            }
        }
    }

    fn deliver(&mut self, jid: u64, mut reply: Json) {
        let Some(job) = self.remove_job(jid) else { return };
        match job.kind {
            JobKind::Direct => {
                if let Json::Obj(m) = &mut reply {
                    m.insert("id".to_string(), job.client_id.clone());
                }
                self.emit(reply.to_string());
            }
            JobKind::SweepShard { parent, idx } => {
                let outcome = if reply.get("ok") == Some(&Json::Bool(true)) {
                    match reply
                        .get("result")
                        .and_then(|r| r.get("scenarios"))
                        .and_then(Json::as_arr)
                        .and_then(|a| a.first())
                    {
                        Some(scenario) => Ok((scenario.clone(), reply.clone())),
                        None => Err((
                            ErrorKind::Internal.name().to_string(),
                            "malformed sweep shard reply".to_string(),
                        )),
                    }
                } else {
                    let kind = reply
                        .get("error")
                        .and_then(|e| e.get("kind"))
                        .and_then(Json::as_str)
                        .unwrap_or("internal")
                        .to_string();
                    let detail = reply
                        .get("error")
                        .and_then(|e| e.get("detail"))
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_string();
                    Err((kind, detail))
                };
                self.sweep_part(parent, idx, outcome);
            }
        }
        self.dispatch();
    }

    /// Fold one scenario outcome into its parent sweep; emit the merged
    /// reply when the last part lands. `Ok` carries (scenario object,
    /// full shard reply — for the cache/steal counters); `Err` carries a
    /// typed (kind, detail).
    fn sweep_part(
        &mut self,
        parent: u64,
        idx: usize,
        outcome: Result<(Json, Json), (String, String)>,
    ) {
        let Some(sw) = self.sweeps.get_mut(&parent) else { return };
        if sw.parts[idx].is_some() {
            return; // already resolved (defensive; ids make this unreachable)
        }
        match outcome {
            Ok((scenario, full)) => {
                sw.covered += 1;
                let counter = |path: [&str; 2]| {
                    full.get("result")
                        .and_then(|r| r.get(path[0]))
                        .and_then(|c| c.get(path[1]))
                        .and_then(Json::as_f64)
                        .unwrap_or(0.0)
                };
                sw.cache_compiles += counter(["cache", "compiles"]);
                sw.cache_hits += counter(["cache", "hits"]);
                sw.steals += counter(["steals", "steals"]);
                sw.stolen_items += counter(["steals", "stolen_items"]);
                sw.parts[idx] = Some(scenario);
            }
            Err((kind, detail)) => {
                sw.parts[idx] = Some(obj([
                    ("scenario_index", Json::num(idx as f64)),
                    (
                        "shard_error",
                        obj([("kind", Json::str(&kind)), ("detail", Json::str(&detail))]),
                    ),
                ]));
            }
        }
        sw.done += 1;
        if sw.done == sw.total {
            let sw = self.sweeps.remove(&parent).expect("parent present");
            let scenarios: Vec<Json> =
                sw.parts.into_iter().map(|p| p.unwrap_or(Json::Null)).collect();
            let result = obj([
                ("scenarios", Json::Arr(scenarios)),
                (
                    "cache",
                    obj([
                        ("compiles", Json::num(sw.cache_compiles)),
                        ("hits", Json::num(sw.cache_hits)),
                    ]),
                ),
                (
                    "steals",
                    obj([
                        ("steals", Json::num(sw.steals)),
                        ("stolen_items", Json::num(sw.stolen_items)),
                    ]),
                ),
                (
                    "shards",
                    obj([
                        ("covered", Json::num(sw.covered as f64)),
                        ("requested", Json::num(sw.total as f64)),
                    ]),
                ),
            ]);
            self.emit(ok_reply(&sw.client_id, result));
        }
    }

    fn worker_gone(&mut self, shard: usize, gen: u64) {
        if self.slots[shard].generation != gen || self.slots[shard].child.is_none() {
            return; // stale notification, or already reaped proactively
        }
        self.fail_worker(shard, ShardIncidentKind::Crash, "worker stdout closed (process died)");
        self.dispatch();
    }

    /// Reap a worker (crash observed or hang declared): kill + wait the
    /// process, record the failure with the supervisor, and requeue or
    /// fail its in-flight job.
    fn fail_worker(&mut self, shard: usize, kind: ShardIncidentKind, detail: &str) {
        let now = self.now_ms();
        let (phase, busy) = {
            let slot = &mut self.slots[shard];
            if let Some(mut child) = slot.child.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
            slot.stdin = None;
            slot.pings_outstanding = 0;
            if kind == ShardIncidentKind::Hang {
                slot.hangs += 1;
            }
            (slot.sup.on_failure(now), slot.busy.take())
        };
        self.incident(shard, kind, detail);
        if let ShardPhase::Open { until_ms } = phase {
            self.incident(
                shard,
                ShardIncidentKind::CircuitOpen,
                &format!("restart storm; circuit open until t+{}ms", until_ms.saturating_sub(now)),
            );
        }
        if let Some(jid) = busy {
            self.requeue_or_fail(jid);
        }
    }

    /// A dispatched job lost its worker. Retry it under a fresh internal
    /// id (straggler replies to the old id can then never duplicate), or
    /// answer `unavailable` when out of budget.
    fn requeue_or_fail(&mut self, jid: u64) {
        let now = self.now_ms();
        let Some(mut job) = self.remove_job(jid) else { return };
        if job.idempotent && job.attempts < self.cfg.max_attempts && now < job.deadline_ms {
            job.shard = None;
            let fresh = self.next_id();
            if let Json::Obj(m) = &mut job.body {
                m.insert("id".to_string(), Json::num(fresh as f64));
            }
            self.jobs.insert(fresh, job);
            self.pending.push_front(fresh);
            return;
        }
        let detail = format!(
            "worker died with the request in flight ({} of {} attempts used{})",
            job.attempts,
            self.cfg.max_attempts,
            if job.idempotent { "" } else { "; op is not idempotent" },
        );
        match job.kind {
            JobKind::Direct => {
                self.emit(err_reply(&job.client_id, ErrorKind::Unavailable, &detail))
            }
            JobKind::SweepShard { parent, idx } => {
                self.sweep_part(parent, idx, Err((ErrorKind::Unavailable.name().into(), detail)))
            }
        }
    }

    /// Remove a job from every index (jobs map, pending queue, the busy
    /// marker of whichever slot holds it).
    fn remove_job(&mut self, jid: u64) -> Option<PoolJob> {
        let job = self.jobs.remove(&jid)?;
        self.pending.retain(|&p| p != jid);
        if let Some(shard) = job.shard {
            if self.slots[shard].busy == Some(jid) {
                self.slots[shard].busy = None;
            }
        }
        Some(job)
    }

    // ---- supervision timer ----------------------------------------------

    fn tick(&mut self) {
        let now = self.now_ms();

        // Deadlines: the authoritative `timeout` reply, then reap the
        // shard still sitting on the request (it is wedged or crawling;
        // either way its eventual output is already worthless).
        let expired: Vec<u64> = self
            .jobs
            .iter()
            .filter(|(_, j)| now >= j.deadline_ms)
            .map(|(&k, _)| k)
            .collect();
        for jid in expired {
            let Some(job) = self.remove_job(jid) else { continue };
            let detail = format!(
                "deadline {}ms expired after {} attempt(s)",
                self.cfg.deadline_ms, job.attempts
            );
            match job.kind {
                JobKind::Direct => {
                    self.emit(err_reply(&job.client_id, ErrorKind::Timeout, &detail))
                }
                JobKind::SweepShard { parent, idx } => {
                    self.sweep_part(parent, idx, Err((ErrorKind::Timeout.name().into(), detail)))
                }
            }
            if let Some(shard) = job.shard {
                if self.slots[shard].child.is_some() {
                    self.fail_worker(
                        shard,
                        ShardIncidentKind::Hang,
                        "request deadline expired in flight; reaping worker",
                    );
                }
            }
        }

        // Health pings: probe every live worker; reap after ping_misses
        // consecutive silences.
        for shard in 0..self.slots.len() {
            let due = {
                let s = &self.slots[shard];
                s.stdin.is_some()
                    && now.saturating_sub(s.last_ping_ms) >= self.cfg.ping_interval_ms
            };
            if !due {
                continue;
            }
            if self.slots[shard].pings_outstanding >= self.cfg.ping_misses {
                let misses = self.slots[shard].pings_outstanding;
                self.fail_worker(
                    shard,
                    ShardIncidentKind::Hang,
                    &format!("{misses} consecutive pings unanswered; reaping worker"),
                );
                continue;
            }
            let ok = {
                let stdin = self.slots[shard].stdin.as_mut().expect("due shard has stdin");
                writeln!(stdin, "{PING_LINE}").and_then(|_| stdin.flush()).is_ok()
            };
            if ok {
                self.slots[shard].pings_outstanding += 1;
                self.slots[shard].last_ping_ms = now;
            } else {
                self.fail_worker(shard, ShardIncidentKind::Crash, "ping write failed");
            }
        }

        self.spawn_ready();
        self.dispatch();
    }

    fn spawn_ready(&mut self) {
        let now = self.now_ms();
        for shard in 0..self.slots.len() {
            if self.slots[shard].child.is_none() && self.slots[shard].sup.ready_to_spawn(now) {
                self.spawn_shard(shard);
            }
        }
    }

    fn spawn_shard(&mut self, shard: usize) {
        let now = self.now_ms();
        self.slots[shard].generation += 1;
        let gen = self.slots[shard].generation;
        let subst = |a: &String| {
            a.replace("{shard}", &shard.to_string()).replace("{gen}", &gen.to_string())
        };
        let mut cmd = Command::new(&self.cfg.worker_exe);
        cmd.args(self.cfg.worker_args.iter().map(subst));
        if let Some(extra) = self.cfg.worker_extra.get(shard) {
            cmd.args(extra.iter().map(subst));
        }
        cmd.stdin(Stdio::piped()).stdout(Stdio::piped()).stderr(Stdio::null());
        match cmd.spawn() {
            Ok(mut child) => {
                let stdin = child.stdin.take().expect("piped stdin");
                let stdout = child.stdout.take().expect("piped stdout");
                spawn_reader(self.tx.clone(), shard, gen, stdout);
                let respawn = {
                    let s = &mut self.slots[shard];
                    s.child = Some(child);
                    s.stdin = Some(stdin);
                    s.busy = None;
                    s.pings_outstanding = 0;
                    s.last_ping_ms = now;
                    s.sup.on_spawned();
                    s.sup.spawns > 1
                };
                if respawn {
                    self.incident(
                        shard,
                        ShardIncidentKind::Restart,
                        &format!("respawned as generation {gen}"),
                    );
                }
            }
            Err(e) => {
                let phase = self.slots[shard].sup.on_failure(now);
                self.incident(
                    shard,
                    ShardIncidentKind::SpawnFailed,
                    &format!("spawn {:?} failed: {e}", self.cfg.worker_exe),
                );
                if let ShardPhase::Open { .. } = phase {
                    self.incident(
                        shard,
                        ShardIncidentKind::CircuitOpen,
                        "restart storm while spawning; circuit open",
                    );
                }
            }
        }
    }

    // ---- introspection --------------------------------------------------

    fn build_status(&self) -> Json {
        let shards: Vec<Json> = self
            .slots
            .iter()
            .enumerate()
            .map(|(i, s)| {
                obj([
                    ("shard", Json::num(i as f64)),
                    ("phase", Json::str(s.sup.phase().name())),
                    ("generation", Json::num(s.generation as f64)),
                    ("busy", Json::Bool(s.busy.is_some())),
                    ("spawns", Json::num(s.sup.spawns as f64)),
                    ("failures", Json::num(s.sup.failures as f64)),
                    ("hangs", Json::num(s.hangs as f64)),
                    ("garbage", Json::num(s.garbage as f64)),
                    ("circuit_opens", Json::num(s.sup.circuit_opens as f64)),
                ])
            })
            .collect();
        let healthy =
            self.slots.iter().filter(|s| matches!(s.sup.phase(), ShardPhase::Up)).count();
        let inflight = self.slots.iter().filter(|s| s.busy.is_some()).count();
        let incidents: Vec<Json> = self
            .incidents
            .iter()
            .map(|r| {
                obj([
                    ("step", Json::num(r.step as f64)),
                    ("pass", Json::str(&r.pass)),
                    ("kind", Json::str(&r.kind)),
                    ("detail", Json::str(&r.detail)),
                ])
            })
            .collect();
        obj([
            ("role", Json::str("pool")),
            ("shards", Json::Arr(shards)),
            ("healthy", Json::num(healthy as f64)),
            ("pending", Json::num(self.pending.len() as f64)),
            ("inflight", Json::num(inflight as f64)),
            ("queue_cap", Json::num(self.cfg.queue as f64)),
            ("requested", Json::num(self.requested as f64)),
            ("incidents_total", Json::num(self.incidents_total as f64)),
            ("incidents", Json::Arr(incidents)),
        ])
    }

    fn finished(&self) -> bool {
        self.client_eof && self.jobs.is_empty() && self.sweeps.is_empty()
    }

    fn kill_all(&mut self) {
        for slot in &mut self.slots {
            slot.stdin = None;
            if let Some(mut child) = slot.child.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

/// Pump one worker generation's stdout into the event channel. Detached
/// (not scoped): it parks in a blocking read on the child pipe and exits
/// on EOF — which the router forces by killing the child.
fn spawn_reader(
    tx: mpsc::Sender<Event>,
    shard: usize,
    gen: u64,
    stdout: std::process::ChildStdout,
) {
    std::thread::spawn(move || {
        let mut reader = std::io::BufReader::new(stdout);
        loop {
            match read_line_capped(&mut reader, false) {
                Ok(Some((line, true))) => {
                    if tx.send(Event::Worker(shard, gen, line)).is_err() {
                        return;
                    }
                }
                Ok(Some((_, false))) => {
                    // Oversized reply: surfaced as a garbage line.
                    if tx.send(Event::Worker(shard, gen, String::new())).is_err() {
                        return;
                    }
                }
                Ok(None) | Err(_) => break,
            }
        }
        let _ = tx.send(Event::WorkerGone(shard, gen));
    });
}

/// Run the supervised pool over arbitrary client streams (the `--pool`
/// mode of the binary, and directly testable). Returns after client EOF
/// once every outstanding request has its reply.
pub fn pool_lines(
    cfg: &PoolConfig,
    input: &mut (impl BufRead + Send),
    output: &mut impl Write,
) -> std::io::Result<()> {
    let (tx, rx) = mpsc::channel::<Event>();
    let mut pool = Pool::new(cfg.clone(), tx.clone());
    let tick_ms = cfg.tick_ms.clamp(1, 1_000);

    std::thread::scope(|scope| -> std::io::Result<()> {
        let tick_tx = tx.clone();
        scope.spawn(move || loop {
            std::thread::sleep(Duration::from_millis(tick_ms));
            if tick_tx.send(Event::Tick).is_err() {
                return;
            }
        });
        let read_tx = tx;
        scope.spawn(move || loop {
            match read_line_capped(input, false) {
                Ok(Some((line, true))) => {
                    if read_tx.send(Event::Client(line)).is_err() {
                        return;
                    }
                }
                Ok(Some((_, false))) => {
                    if read_tx.send(Event::ClientOversized).is_err() {
                        return;
                    }
                }
                Ok(None) | Err(_) => {
                    let _ = read_tx.send(Event::ClientEof);
                    return;
                }
            }
        });

        pool.spawn_ready();
        let mut write_err: Option<std::io::Error> = None;
        let mut client_gone = false;
        for ev in &rx {
            match ev {
                Event::Client(line) => pool.admit_line(&line),
                Event::ClientOversized => pool.emit(err_reply(
                    &Json::Null,
                    ErrorKind::BadRequest,
                    &format!(
                        "request line exceeds {} bytes",
                        crate::server::MAX_LINE_BYTES
                    ),
                )),
                Event::ClientEof => pool.client_eof = true,
                Event::Worker(shard, gen, line) => pool.worker_line(shard, gen, line),
                Event::WorkerGone(shard, gen) => pool.worker_gone(shard, gen),
                Event::Tick => pool.tick(),
            }
            for line in pool.outbox.drain(..) {
                if client_gone {
                    continue;
                }
                if let Err(e) = writeln!(output, "{line}").and_then(|_| output.flush()) {
                    // A vanished client stops replies, not supervision:
                    // outstanding work still drains so workers end clean.
                    client_gone = true;
                    if !is_disconnect(e.kind()) {
                        write_err = Some(e);
                    }
                }
            }
            if pool.finished() {
                break;
            }
        }
        pool.kill_all();
        drop(rx); // ticker notices within one tick and exits
        match write_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    })
}

/// Convenience for tests: run one batch of lines through a fresh pool and
/// return every reply line.
pub fn pool_script(cfg: &PoolConfig, script: &str) -> Vec<String> {
    let mut out: Vec<u8> = Vec::new();
    let mut input = std::io::Cursor::new(script.as_bytes().to_vec());
    pool_lines(cfg, &mut input, &mut out).expect("in-memory pool serving cannot fail");
    String::from_utf8(out).unwrap().lines().map(str::to_string).collect()
}
