//! The serving engine: a bounded job queue, a worker pool, and the
//! request handlers.
//!
//! Three invariants a long-running evaluation service must keep:
//!
//! * **never exit on input**: malformed lines, invalid configs and failed
//!   evaluations all become typed error replies ([`crate::proto::ErrorKind`]);
//!   handler panics are contained with `catch_unwind` and reported as
//!   `internal`;
//! * **never OOM**: admission happens through a bounded queue — when it is
//!   full the request is *rejected immediately* with an `overloaded`
//!   reply (backpressure by rejection, not by buffering), and incoming
//!   lines are length-capped ([`MAX_LINE_BYTES`]) with the oversized
//!   remainder drained, not stored;
//! * **reuse work**: one [`ArtifactCache`] per trip-count scale, shared by
//!   every worker, so repeated `simulate`/`sweep` requests against the
//!   same scale skip recompilation entirely (the cache's contract binds it
//!   to one catalog + scale — hence the per-scale map).

use crate::chaos::{ChaosPlan, ChaosVerdict};
use crate::json::{obj, parse, Json};
use crate::proto::{err_reply, ok_reply, parse_request, ErrorKind, Op, Request};
use ilpc_guard::GuardConfig;
use ilpc_harness::grid::PointError;
use ilpc_harness::sweep::{run_sweep, Scenario, SweepConfig};
use ilpc_harness::ArtifactCache;
use ilpc_machine::Machine;
use ilpc_workloads::{build, table2, Workload};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};

/// Hard cap on one request line. A line larger than this is answered with
/// a typed `bad-request` and drained from the stream without buffering.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it are rejected with
    /// `overloaded`.
    pub queue: usize,
    /// Worker threads available to each sweep job's stealing pool.
    pub sweep_threads: usize,
    /// Seeded fault injection for chaos drills (stdin mode only); `None`
    /// in production. See [`crate::chaos`].
    pub chaos: Option<ChaosPlan>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        ServeConfig { workers: 2, queue: 64, sweep_threads: cpus, chaos: None }
    }
}

/// One queued job: a parsed request plus where its reply goes.
struct Job {
    req: Request,
    reply: mpsc::Sender<String>,
}

/// Bounded MPMC queue: reject-on-full admission, blocking removal.
struct BoundedQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    cap: usize,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl BoundedQueue {
    fn new(cap: usize) -> BoundedQueue {
        BoundedQueue {
            state: Mutex::new(QueueState { jobs: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Admit a job, or reject it immediately when the queue is full —
    /// the backpressure contract: the caller replies `overloaded` and the
    /// server's memory use stays bounded no matter how fast clients push.
    fn push(&self, job: Job) -> Result<(), Job> {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if st.jobs.len() >= self.cap {
            return Err(job);
        }
        st.jobs.push_back(job);
        drop(st);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocking removal; `None` once closed and drained.
    fn pop(&self) -> Option<Job> {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(job) = st.jobs.pop_front() {
                return Some(job);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn close(&self) {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        st.closed = true;
        drop(st);
        self.ready.notify_all();
    }

    fn len(&self) -> usize {
        self.state.lock().unwrap_or_else(|p| p.into_inner()).jobs.len()
    }
}

/// Shared evaluation state: one artifact cache per trip-count scale.
struct Engine {
    sweep_threads: usize,
    workers: usize,
    /// Back-reference to the admission queue so `status` can report
    /// depth/capacity (introspection only — the queue owns admission).
    queue: Arc<BoundedQueue>,
    caches: Mutex<HashMap<u64, Arc<ArtifactCache>>>,
}

impl Engine {
    fn cache_for(&self, scale: f64) -> Arc<ArtifactCache> {
        let mut m = self.caches.lock().unwrap_or_else(|p| p.into_inner());
        Arc::clone(m.entry(scale.to_bits()).or_insert_with(|| Arc::new(ArtifactCache::new())))
    }
}

/// The server: worker pool + bounded queue. Front ends ([`serve_lines`],
/// [`serve_tcp`]) feed it request lines and forward its replies.
pub struct Server {
    queue: Arc<BoundedQueue>,
    engine: Arc<Engine>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    pub fn start(cfg: &ServeConfig) -> Server {
        let queue = Arc::new(BoundedQueue::new(cfg.queue));
        let engine = Arc::new(Engine {
            sweep_threads: cfg.sweep_threads.max(1),
            workers: cfg.workers.max(1),
            queue: Arc::clone(&queue),
            caches: Mutex::new(HashMap::new()),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let queue = Arc::clone(&queue);
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || {
                    while let Some(job) = queue.pop() {
                        let line = handle_job(&engine, &job.req);
                        // A gone receiver means the client hung up; drop
                        // the reply and keep serving.
                        let _ = job.reply.send(line);
                    }
                })
            })
            .collect();
        Server { queue, engine, workers }
    }

    /// Handle one raw request line: parse, admit, or reply immediately
    /// with a typed error. Replies (including the typed rejections
    /// produced here) arrive on `reply`.
    pub fn submit_line(&self, line: &str, reply: &mpsc::Sender<String>) {
        let line = line.trim();
        if line.is_empty() {
            return;
        }
        let parsed = match parse(line) {
            Ok(v) => v,
            Err(e) => {
                let _ = reply.send(err_reply(
                    &Json::Null,
                    ErrorKind::BadRequest,
                    &format!("invalid JSON: {e}"),
                ));
                return;
            }
        };
        let req = match parse_request(&parsed) {
            Ok(r) => r,
            Err((kind, detail)) => {
                let id = parsed.get("id").cloned().unwrap_or(Json::Null);
                let _ = reply.send(err_reply(&id, kind, &detail));
                return;
            }
        };
        // Health probes bypass the bounded queue: a busy-but-alive server
        // must still pong, and introspection must not bounce off a full
        // queue with `overloaded`. Both handlers are O(1).
        if matches!(req.op, Op::Ping | Op::Status) {
            let _ = reply.send(handle_job(&self.engine, &req));
            return;
        }
        if let Err(job) = self.queue.push(Job { req, reply: reply.clone() }) {
            let _ = job.reply.send(err_reply(
                &job.req.id,
                ErrorKind::Overloaded,
                &format!("queue full ({} jobs); retry later", self.queue.len()),
            ));
        }
    }

    /// Close admission and wait for queued jobs to finish.
    pub fn shutdown(self) {
        self.queue.close();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// Execute one job with panic containment: a crash in a handler becomes a
/// typed `internal` reply, never a dead worker or a dead process.
fn handle_job(engine: &Engine, req: &Request) -> String {
    match catch_unwind(AssertUnwindSafe(|| handle_op(engine, &req.op))) {
        Ok(Ok(result)) => ok_reply(&req.id, result),
        Ok(Err((kind, detail))) => err_reply(&req.id, kind, &detail),
        Err(payload) => err_reply(
            &req.id,
            ErrorKind::Internal,
            &format!("handler panicked (contained): {}", ilpc_guard::panic_message(payload)),
        ),
    }
}

fn handle_op(engine: &Engine, op: &Op) -> Result<Json, (ErrorKind, String)> {
    match op {
        Op::Compile { workload, level, width, vlen, scale, lint } => {
            let w = find_workload(workload, *scale)?;
            let machine = Machine::issue(*width).with_vlen(*vlen);
            let g = ilpc_harness::compile_guarded(
                &w,
                *level,
                &machine,
                GuardConfig::default(),
                None,
            );
            // Per-request incident reporting: every contained firewall
            // incident rides the reply as a typed record.
            let incidents: Vec<Json> = g
                .guard
                .records()
                .into_iter()
                .map(|r| {
                    obj([
                        ("step", Json::num(r.step as f64)),
                        ("pass", Json::str(r.pass)),
                        ("kind", Json::str(r.kind)),
                        ("detail", Json::str(r.detail)),
                    ])
                })
                .collect();
            let mut reply = obj([
                ("workload", Json::str(workload.as_str())),
                ("level", Json::str(level.name())),
                ("width", Json::num(*width)),
                ("static_insts", Json::num(g.compiled.static_insts as f64)),
                ("regs", Json::num(g.compiled.regs.total())),
                (
                    "achieved",
                    g.guard
                        .achieved
                        .map(|l| Json::str(l.name()))
                        .unwrap_or(Json::Null),
                ),
                ("clean", Json::Bool(g.guard.clean())),
                ("incidents", Json::Arr(incidents)),
            ]);
            if *lint {
                let mut diags = ilpc_lint::lint_module(&g.compiled.module);
                diags.extend(ilpc_lint::audit_schedules(
                    &g.compiled.module,
                    &g.compiled.schedules,
                    &machine,
                ));
                ilpc_lint::sort_diagnostics(&mut diags);
                let count = |s| ilpc_lint::count_severity(&diags, s) as f64;
                let audit = obj([
                    ("errors", Json::num(count(ilpc_lint::Severity::Error))),
                    ("warnings", Json::num(count(ilpc_lint::Severity::Warning))),
                    ("notes", Json::num(count(ilpc_lint::Severity::Note))),
                    (
                        "diags",
                        Json::Arr(diags.iter().map(|d| d.to_json()).collect()),
                    ),
                ]);
                if let Json::Obj(fields) = &mut reply {
                    fields.insert("lint".to_string(), audit);
                }
            }
            Ok(reply)
        }
        Op::Simulate { workload, level, width, vlen, scale, mem } => {
            let w = find_workload(workload, *scale)?;
            let machine = Machine::issue(*width).with_mem(*mem).with_vlen(*vlen);
            let cache = engine.cache_for(*scale);
            let p = cache
                .evaluate(&w, *level, &machine)
                .map_err(|e| (ErrorKind::EvalFailed, e))?;
            Ok(obj([
                ("workload", Json::str(workload.as_str())),
                ("level", Json::str(level.name())),
                ("width", Json::num(*width)),
                ("cycles", Json::num(p.cycles as f64)),
                ("dyn_insts", Json::num(p.dyn_insts as f64)),
                ("static_insts", Json::num(p.static_insts as f64)),
                ("regs", Json::num(p.regs.total())),
                (
                    "mem",
                    obj([
                        ("accesses", Json::num(p.mem.accesses() as f64)),
                        ("hits", Json::num(p.mem.hits() as f64)),
                        ("misses", Json::num(p.mem.misses() as f64)),
                    ]),
                ),
            ]))
        }
        Op::Sweep { scale, levels, widths, mems, sabotage } => {
            let cfg = SweepConfig {
                scale: *scale,
                levels: levels.clone(),
                widths: widths.clone(),
                threads: engine.sweep_threads,
                scenarios: mems.iter().copied().map(Scenario::mem).collect(),
                sabotage: sabotage.clone(),
                artifacts: Some(engine.cache_for(*scale)),
            };
            let sweep =
                run_sweep(&cfg).map_err(|e| (ErrorKind::BadConfig, e.to_string()))?;
            let scenarios: Vec<Json> = sweep
                .scenarios
                .iter()
                .zip(&sweep.grids)
                .map(|(s, g)| {
                    let all = || g.meta.iter().map(|m| m.name);
                    let top = *g.levels.last().unwrap();
                    let wide = *g.widths.iter().max().unwrap();
                    let mean = g.mean_speedup(all(), top, wide);
                    let errors: Vec<Json> = g
                        .errors
                        .iter()
                        .map(|e| {
                            let kind = match &e.error {
                                PointError::Eval(_) => "eval",
                                PointError::Panic(_) => "panic",
                            };
                            obj([
                                ("workload", Json::str(e.workload.as_str())),
                                ("level", Json::str(e.level.name())),
                                ("width", Json::num(e.width)),
                                ("kind", Json::str(kind)),
                                ("detail", Json::str(e.error.to_string())),
                            ])
                        })
                        .collect();
                    obj([
                        ("label", Json::str(s.label.as_str())),
                        ("completed", Json::num(g.completed() as f64)),
                        ("errors", Json::Arr(errors)),
                        (
                            "mean_speedup",
                            obj([
                                (
                                    "value",
                                    mean.partial().map(Json::Num).unwrap_or(Json::Null),
                                ),
                                ("level", Json::str(top.name())),
                                ("width", Json::num(wide)),
                                ("covered", Json::num(mean.covered() as f64)),
                                ("requested", Json::num(mean.requested() as f64)),
                            ]),
                        ),
                    ])
                })
                .collect();
            Ok(obj([
                ("scenarios", Json::Arr(scenarios)),
                (
                    "cache",
                    obj([
                        ("compiles", Json::num(sweep.cache.compiles as f64)),
                        ("hits", Json::num(sweep.cache.hits as f64)),
                    ]),
                ),
                (
                    "steals",
                    obj([
                        ("steals", Json::num(sweep.steals.steals as f64)),
                        ("stolen_items", Json::num(sweep.steals.stolen_items as f64)),
                    ]),
                ),
            ]))
        }
        Op::Ping => Ok(obj([("pong", Json::Bool(true))])),
        Op::Status => Ok(obj([
            ("role", Json::str("single")),
            ("workers", Json::num(engine.workers as f64)),
            ("queue_depth", Json::num(engine.queue.len() as f64)),
            ("queue_cap", Json::num(engine.queue.cap as f64)),
        ])),
        Op::Batch(reqs) => {
            // One job, several requests: replies in submission order,
            // each with its own id and ok/error envelope.
            let replies: Vec<Json> = reqs
                .iter()
                .map(|r| {
                    let line = match catch_unwind(AssertUnwindSafe(|| handle_op(engine, &r.op)))
                    {
                        Ok(Ok(result)) => ok_reply(&r.id, result),
                        Ok(Err((kind, detail))) => err_reply(&r.id, kind, &detail),
                        Err(p) => err_reply(
                            &r.id,
                            ErrorKind::Internal,
                            &format!(
                                "handler panicked (contained): {}",
                                ilpc_guard::panic_message(p)
                            ),
                        ),
                    };
                    parse(&line).expect("replies are valid JSON")
                })
                .collect();
            Ok(obj([("replies", Json::Arr(replies))]))
        }
    }
}

fn find_workload(name: &str, scale: f64) -> Result<Workload, (ErrorKind, String)> {
    if !(scale.is_finite() && scale > 0.0) {
        return Err((ErrorKind::BadConfig, format!("scale {scale} must be finite and > 0")));
    }
    table2()
        .into_iter()
        .find(|m| m.name == name)
        .map(|m| build(&m, scale))
        .ok_or_else(|| {
            (ErrorKind::BadConfig, format!("unknown workload {name:?} (see Table 2)"))
        })
}

/// Read one line with the [`MAX_LINE_BYTES`] cap. Returns `Ok(None)` at
/// EOF, `Ok(Some((line, true)))` for an in-budget line and
/// `Ok(Some(("", false)))` when the line was oversized — its remainder is
/// drained in bounded chunks and discarded, so a hostile multi-gigabyte
/// line costs O(chunk) memory, never an allocation proportional to it.
///
/// With `strict_eol`, a final line with no terminating newline is treated
/// as a mid-line disconnect and *discarded* (clean EOF, no reply): that is
/// the TCP contract, where a client dying halfway through a request must
/// not be answered with a `bad-request` fired into a dead socket. Stream
/// mode keeps `strict_eol` off so a trailing unterminated request typed at
/// an interactive stdin still gets served.
pub(crate) fn read_line_capped(
    r: &mut impl BufRead,
    strict_eol: bool,
) -> std::io::Result<Option<(String, bool)>> {
    use std::io::Read;
    let mut buf: Vec<u8> = Vec::new();
    let n = r.by_ref().take(MAX_LINE_BYTES as u64 + 1).read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(None);
    }
    if buf.len() > MAX_LINE_BYTES && !buf.ends_with(b"\n") {
        // Drain to the newline in fixed-size bites; `read_until` through
        // a `take` stops exactly at the newline, never consuming the
        // start of the next line.
        loop {
            let mut junk: Vec<u8> = Vec::new();
            let k = r.by_ref().take(8192).read_until(b'\n', &mut junk)?;
            if k == 0 || junk.ends_with(b"\n") {
                break;
            }
        }
        return Ok(Some((String::new(), false)));
    }
    if strict_eol && !buf.ends_with(b"\n") {
        return Ok(None);
    }
    Ok(Some((String::from_utf8_lossy(&buf).into_owned(), true)))
}

/// True for the error kinds a peer produces by going away: these end a
/// connection cleanly instead of surfacing as an internal error.
pub(crate) fn is_disconnect(kind: std::io::ErrorKind) -> bool {
    use std::io::ErrorKind::*;
    matches!(kind, ConnectionReset | ConnectionAborted | BrokenPipe | UnexpectedEof)
}

/// Private sentinel prefix carried over the reply channel for the chaos
/// `partial` verdict: the writer thread emits the payload *without* a
/// newline, flushes the torn bytes, then aborts the process.
const CHAOS_PARTIAL_MARK: &str = "\u{1}chaos-partial\u{1}";

/// Serve JSON-lines over arbitrary reader/writer streams (the stdin mode
/// of the binary, and directly testable). A dedicated writer thread
/// flushes every reply the moment it completes — the pool front end paces
/// requests off replies, so buffering replies until the next input line
/// would deadlock a one-in-flight client. At EOF the queue is drained
/// before returning.
pub fn serve_lines(
    cfg: &ServeConfig,
    input: &mut impl BufRead,
    output: &mut (impl Write + Send),
) -> std::io::Result<()> {
    let server = Server::start(cfg);
    let mut chaos = cfg.chaos.clone();
    let (tx, rx) = mpsc::channel::<String>();

    std::thread::scope(|scope| {
        let writer = scope.spawn(move || -> std::io::Result<()> {
            for line in rx {
                if let Some(torn) = line.strip_prefix(CHAOS_PARTIAL_MARK) {
                    let _ = output.write_all(torn.as_bytes());
                    let _ = output.flush();
                    std::process::abort();
                }
                writeln!(output, "{line}")?;
                output.flush()?;
            }
            output.flush()
        });

        let read_result = (|| -> std::io::Result<()> {
            loop {
                match read_line_capped(input, false)? {
                    None => return Ok(()),
                    Some((_, false)) => {
                        let _ = tx.send(err_reply(
                            &Json::Null,
                            ErrorKind::BadRequest,
                            &format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                        ));
                    }
                    Some((line, true)) => match chaos_verdict(&mut chaos, &line) {
                        ChaosVerdict::Forward => server.submit_line(&line, &tx),
                        ChaosVerdict::Kill => std::process::abort(),
                        ChaosVerdict::Stall => loop {
                            // The SIGSTOP analogue: stop reading forever.
                            // Pongs cease with everything else; only the
                            // supervisor can recover this process.
                            std::thread::sleep(std::time::Duration::from_secs(3600));
                        },
                        ChaosVerdict::Garbage => {
                            let _ = tx.send("#chaos garbage {{{not json".to_string());
                        }
                        ChaosVerdict::Partial => {
                            let _ = tx.send(format!(
                                "{CHAOS_PARTIAL_MARK}{{\"id\":4242,\"ok\":tru"
                            ));
                        }
                        ChaosVerdict::Drop => {}
                    },
                }
            }
        })();

        // EOF (or a read error): finish queued work, close the reply
        // channel, and let the writer drain everything that remains.
        server.shutdown();
        drop(tx);
        let write_result = writer.join().expect("reply writer thread");
        read_result.and(write_result)
    })
}

/// Consult the chaos plan for one raw request line, if a plan is armed.
fn chaos_verdict(chaos: &mut Option<ChaosPlan>, line: &str) -> ChaosVerdict {
    match chaos {
        None => ChaosVerdict::Forward,
        Some(plan) => {
            let parsed = parse(line).ok();
            let op = parsed.as_ref().and_then(|v| v.get("op")).and_then(Json::as_str);
            plan.decide(op)
        }
    }
}

/// Serve JSON-lines over TCP: one reader thread and one writer channel per
/// connection, all feeding the shared bounded queue. Returns the bound
/// address; serving continues on background threads for `conn_limit`
/// connections (`None` = forever — the binary's mode).
pub fn serve_tcp(
    cfg: &ServeConfig,
    addr: &str,
    conn_limit: Option<usize>,
) -> std::io::Result<(std::net::SocketAddr, std::thread::JoinHandle<()>)> {
    let listener = std::net::TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let cfg = cfg.clone();
    let accept_loop = std::thread::spawn(move || {
        let server = Arc::new(Server::start(&cfg));
        let mut handles = Vec::new();
        let mut accepted = 0usize;
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            accepted += 1;
            let server = Arc::clone(&server);
            handles.push(std::thread::spawn(move || {
                let _ = serve_connection(&server, stream);
            }));
            if conn_limit.is_some_and(|n| accepted >= n) {
                break;
            }
        }
        for h in handles {
            let _ = h.join();
        }
    });
    Ok((local, accept_loop))
}

/// One TCP connection: requests in, replies out, isolation by channel —
/// a reply can only ever reach the connection whose request produced it.
///
/// A client that goes away is a normal end of session, not a failure:
/// EOF, a mid-line disconnect (unterminated final fragment) and
/// reset/abort errors all close the connection cleanly with no error
/// reply attempted at the dead socket.
fn serve_connection(server: &Server, stream: std::net::TcpStream) -> std::io::Result<()> {
    let mut reader = std::io::BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let (tx, rx) = mpsc::channel::<String>();
    let writer_thread = std::thread::spawn(move || -> std::io::Result<()> {
        for line in rx {
            writeln!(writer, "{line}")?;
            writer.flush()?;
        }
        Ok(())
    });
    let result = loop {
        match read_line_capped(&mut reader, true) {
            Err(e) if is_disconnect(e.kind()) => break Ok(()),
            Err(e) => break Err(e),
            Ok(None) => break Ok(()),
            Ok(Some((_, false))) => {
                let _ = tx.send(err_reply(
                    &Json::Null,
                    ErrorKind::BadRequest,
                    &format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                ));
            }
            Ok(Some((line, true))) => server.submit_line(&line, &tx),
        }
    };
    drop(tx);
    let _ = writer_thread.join();
    result
}

/// Convenience for tests: run one batch of lines through a fresh server
/// and return every reply line.
pub fn serve_script(cfg: &ServeConfig, script: &str) -> Vec<String> {
    let mut out: Vec<u8> = Vec::new();
    let mut input = std::io::Cursor::new(script.as_bytes());
    serve_lines(cfg, &mut input, &mut out).expect("in-memory serving cannot fail");
    String::from_utf8(out).unwrap().lines().map(str::to_string).collect()
}
