//! Per-shard supervision: restart backoff and a restart-storm breaker.
//!
//! [`ShardSupervisor`] is the *decision* half of pool supervision — a
//! pure state machine over virtual time (`now_ms` is always an argument,
//! never read from a clock), so every restart/backoff/circuit sequence
//! is unit-testable deterministically. The pool feeds it wall-clock
//! milliseconds; tests feed it a script.
//!
//! The life of a shard:
//!
//! ```text
//!          spawn                failure                 until_ms reached
//!  Down ──────────▶ Up ──────────────────▶ Backoff ──────────────▶ (spawn)
//!                    ▲                        │
//!                    │   > max_restarts failures inside window_ms
//!                    │                        ▼
//!                    └──────────────────── Open ─── cooloff ─────▶ (spawn)
//! ```
//!
//! * **Backoff** delays double per *consecutive* failure (a healthy
//!   reply or pong resets the streak), capped at `max_ms`, plus a seeded
//!   jitter drawn from the `ilpc-testkit` PRNG — deterministic per
//!   (seed, shard), so a chaos campaign replays exactly, yet distinct
//!   shards never thundering-herd their respawns.
//! * The **circuit breaker** counts failures in a sliding window; one
//!   failure too many opens the circuit for `cooloff_ms`, during which
//!   the shard is not respawned at all — a crash-looping worker binary
//!   must not burn the host with fork storms. Expiry clears the window
//!   (half-open: the next failure streak re-opens it quickly via
//!   backoff growth).

use ilpc_testkit::rng::splitmix64;
use ilpc_testkit::TestRng;
use std::collections::VecDeque;

/// Exponential-backoff parameters for shard respawns.
#[derive(Debug, Clone)]
pub struct BackoffCfg {
    /// Delay before the first respawn (doubles per consecutive failure).
    pub base_ms: u64,
    /// Upper bound on the exponential part.
    pub max_ms: u64,
    /// Uniform jitter in `[0, jitter_ms]` added on top, drawn from the
    /// seeded PRNG.
    pub jitter_ms: u64,
    /// PRNG seed; each shard folds its index in, so schedules are
    /// per-shard deterministic and mutually decorrelated.
    pub seed: u64,
}

impl Default for BackoffCfg {
    fn default() -> BackoffCfg {
        BackoffCfg { base_ms: 50, max_ms: 2_000, jitter_ms: 50, seed: 0x5EED }
    }
}

/// Restart-storm circuit breaker parameters.
#[derive(Debug, Clone)]
pub struct BreakerCfg {
    /// Failures tolerated inside `window_ms`; one more opens the circuit.
    pub max_restarts: u32,
    /// Sliding window the failures are counted in.
    pub window_ms: u64,
    /// How long an open circuit refuses respawns.
    pub cooloff_ms: u64,
}

impl Default for BreakerCfg {
    fn default() -> BreakerCfg {
        BreakerCfg { max_restarts: 5, window_ms: 10_000, cooloff_ms: 5_000 }
    }
}

/// Where a shard is in its supervision lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPhase {
    /// Never spawned (initial state).
    Down,
    /// Process running and believed healthy.
    Up,
    /// Process dead; respawn scheduled at `until_ms`.
    Backoff { until_ms: u64 },
    /// Circuit open after a restart storm; no respawn before `until_ms`.
    Open { until_ms: u64 },
}

impl ShardPhase {
    /// Stable name for the `status` op and logs.
    pub fn name(&self) -> &'static str {
        match self {
            ShardPhase::Down => "down",
            ShardPhase::Up => "up",
            ShardPhase::Backoff { .. } => "backoff",
            ShardPhase::Open { .. } => "open",
        }
    }
}

/// The supervision state machine for one shard.
#[derive(Debug, Clone)]
pub struct ShardSupervisor {
    /// Shard index (for seed derivation and reports).
    pub shard: usize,
    phase: ShardPhase,
    consecutive_failures: u32,
    failure_times: VecDeque<u64>,
    rng: TestRng,
    backoff: BackoffCfg,
    breaker: BreakerCfg,
    /// Successful (re)spawns, including the first.
    pub spawns: u64,
    /// Failures recorded (crashes, hangs, spawn errors).
    pub failures: u64,
    /// Times the circuit opened.
    pub circuit_opens: u64,
}

impl ShardSupervisor {
    pub fn new(shard: usize, backoff: BackoffCfg, breaker: BreakerCfg) -> ShardSupervisor {
        let mut seed = backoff.seed ^ splitmix64(&mut (shard as u64 + 1));
        ShardSupervisor {
            shard,
            phase: ShardPhase::Down,
            consecutive_failures: 0,
            failure_times: VecDeque::new(),
            rng: TestRng::seed_from_u64(splitmix64(&mut seed)),
            backoff,
            breaker,
            spawns: 0,
            failures: 0,
            circuit_opens: 0,
        }
    }

    pub fn phase(&self) -> ShardPhase {
        self.phase
    }

    /// The shard process is up.
    pub fn on_spawned(&mut self) {
        self.phase = ShardPhase::Up;
        self.spawns += 1;
    }

    /// Evidence of health (a reply or a pong): resets the consecutive
    /// failure streak so the next backoff starts from `base_ms` again.
    pub fn on_healthy(&mut self) {
        self.consecutive_failures = 0;
    }

    /// The shard failed (crash, hang verdict, or spawn error) at
    /// `now_ms`. Returns the phase the shard moves to: either a
    /// [`ShardPhase::Backoff`] with the respawn time, or
    /// [`ShardPhase::Open`] if this failure tips the breaker.
    pub fn on_failure(&mut self, now_ms: u64) -> ShardPhase {
        self.failures += 1;
        self.consecutive_failures += 1;
        self.failure_times.push_back(now_ms);
        let horizon = now_ms.saturating_sub(self.breaker.window_ms);
        while self.failure_times.front().is_some_and(|&t| t < horizon) {
            self.failure_times.pop_front();
        }
        self.phase = if self.failure_times.len() > self.breaker.max_restarts as usize {
            self.circuit_opens += 1;
            ShardPhase::Open { until_ms: now_ms + self.breaker.cooloff_ms }
        } else {
            let exp = self.consecutive_failures.saturating_sub(1).min(20);
            let delay = self
                .backoff
                .base_ms
                .saturating_mul(1u64 << exp)
                .min(self.backoff.max_ms)
                + self.rng.gen_range(0..self.backoff.jitter_ms + 1);
            ShardPhase::Backoff { until_ms: now_ms + delay }
        };
        self.phase
    }

    /// Whether the pool should (re)spawn the shard process now. Open
    /// circuits clear their failure window on expiry (half-open).
    pub fn ready_to_spawn(&mut self, now_ms: u64) -> bool {
        match self.phase {
            ShardPhase::Down => true,
            ShardPhase::Up => false,
            ShardPhase::Backoff { until_ms } => now_ms >= until_ms,
            ShardPhase::Open { until_ms } => {
                if now_ms >= until_ms {
                    self.failure_times.clear();
                    true
                } else {
                    false
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sup(seed: u64, max_restarts: u32, window_ms: u64, cooloff_ms: u64) -> ShardSupervisor {
        ShardSupervisor::new(
            0,
            BackoffCfg { base_ms: 50, max_ms: 2_000, jitter_ms: 50, seed },
            BreakerCfg { max_restarts, window_ms, cooloff_ms },
        )
    }

    /// The full restart/backoff sequence under a pinned seed is exact:
    /// delays double from base to cap, each plus the jitter the seeded
    /// PRNG yields, and a healthy signal resets the streak.
    #[test]
    fn backoff_sequence_is_seed_deterministic_and_doubles() {
        // Twin supervisor with the same derivation to predict jitters.
        let mut jitter_rng = {
            let mut seed = 7u64 ^ splitmix64(&mut 1u64);
            TestRng::seed_from_u64(splitmix64(&mut seed))
        };
        let mut s = sup(7, 100, 1_000_000, 5_000);
        s.on_spawned();

        let mut now = 0u64;
        let mut delays = Vec::new();
        for _ in 0..8 {
            let ShardPhase::Backoff { until_ms } = s.on_failure(now) else {
                panic!("breaker must not trip (window allows 100)");
            };
            delays.push(until_ms - now);
            assert!(!s.ready_to_spawn(until_ms - 1), "not before until_ms");
            assert!(s.ready_to_spawn(until_ms), "due at until_ms");
            now = until_ms;
            s.on_spawned();
        }
        let expect: Vec<u64> = [50u64, 100, 200, 400, 800, 1600, 2000, 2000]
            .iter()
            .map(|exp| exp + jitter_rng.gen_range(0..51u64))
            .collect();
        assert_eq!(delays, expect, "pinned seed pins the whole schedule");

        // A healthy signal resets the doubling.
        s.on_healthy();
        let ShardPhase::Backoff { until_ms } = s.on_failure(now) else { panic!() };
        let delay = until_ms - now;
        assert!((50..=100).contains(&delay), "back to base after health: {delay}");

        // Identical twin replays identically.
        let mut t = sup(7, 100, 1_000_000, 5_000);
        t.on_spawned();
        let mut tnow = 0u64;
        let mut tdelays = Vec::new();
        for _ in 0..8 {
            let ShardPhase::Backoff { until_ms } = t.on_failure(tnow) else { panic!() };
            tdelays.push(until_ms - tnow);
            tnow = until_ms;
            t.on_spawned();
        }
        assert_eq!(tdelays, delays);

        // A different shard index decorrelates the jitter stream.
        let mut other = ShardSupervisor::new(
            1,
            BackoffCfg { base_ms: 50, max_ms: 2_000, jitter_ms: 50, seed: 7 },
            BreakerCfg { max_restarts: 100, window_ms: 1_000_000, cooloff_ms: 5_000 },
        );
        other.on_spawned();
        let ShardPhase::Backoff { until_ms } = other.on_failure(0) else { panic!() };
        let _ = until_ms; // same structure; stream is decorrelated via seed
    }

    /// One failure too many inside the window opens the circuit; failures
    /// outside the window do not count; cooloff expiry clears the window.
    #[test]
    fn circuit_opens_after_m_restarts_in_window() {
        let mut s = sup(3, 3, 1_000, 5_000);
        s.on_spawned();

        // Three failures inside the window: tolerated (backoff each time).
        for now in [0, 100, 200] {
            assert!(
                matches!(s.on_failure(now), ShardPhase::Backoff { .. }),
                "failure at {now} must back off, not open"
            );
            s.on_spawned();
        }
        // The fourth within the same window trips the breaker.
        let ShardPhase::Open { until_ms } = s.on_failure(300) else {
            panic!("4th failure in window must open the circuit");
        };
        assert_eq!(until_ms, 300 + 5_000);
        assert_eq!(s.circuit_opens, 1);
        assert_eq!(s.phase().name(), "open");
        assert!(!s.ready_to_spawn(until_ms - 1));
        assert!(s.ready_to_spawn(until_ms), "cooloff expiry allows respawn");
        s.on_spawned();

        // The window was cleared on expiry: three fresh failures are
        // tolerated again before the next open.
        for (k, now) in [6_000, 6_100, 6_200].into_iter().enumerate() {
            assert!(
                matches!(s.on_failure(now), ShardPhase::Backoff { .. }),
                "post-cooloff failure {k} must back off"
            );
            s.on_spawned();
        }
        assert!(matches!(s.on_failure(6_300), ShardPhase::Open { .. }));

        // Sparse failures never open: 4 failures, each in its own window.
        let mut sparse = sup(3, 3, 1_000, 5_000);
        sparse.on_spawned();
        for now in [0, 2_000, 4_000, 6_000, 8_000, 10_000] {
            assert!(
                matches!(sparse.on_failure(now), ShardPhase::Backoff { .. }),
                "sparse failures must never trip the breaker"
            );
            sparse.on_spawned();
        }
        assert_eq!(sparse.circuit_opens, 0);
    }

    /// Phase names are the stable strings the `status` op reports.
    #[test]
    fn phase_names_are_stable() {
        let mut s = sup(1, 1, 1_000, 1_000);
        assert_eq!(s.phase().name(), "down");
        assert!(s.ready_to_spawn(0));
        s.on_spawned();
        assert_eq!(s.phase().name(), "up");
        assert!(!s.ready_to_spawn(0));
        s.on_failure(0);
        assert_eq!(s.phase().name(), "backoff");
        s.on_spawned();
        s.on_failure(10);
        assert_eq!(s.phase().name(), "open");
    }
}
