//! Deterministic chaos injection for the serving layer.
//!
//! A [`ChaosPlan`] makes an `ilpc-serve` worker process misbehave on a
//! seeded PRNG schedule — the service-layer analogue of the guard's
//! fault-injection campaign (`ilpc_guard::inject`). The pool supervisor
//! is the system under test: a chaotic worker may crash mid-request,
//! stall like a `SIGSTOP`'d process, write garbage or half a reply line —
//! and the pool must still deliver exactly one typed reply per client
//! request.
//!
//! The plan is parsed from a compact spec string (the `--chaos` flag):
//!
//! ```text
//! seed=42,kill=0.05,stall=0.02,garbage=0.1,partial=0.02,drop=0.05
//! kill-op=sweep,kill-nth=2,salt=0g1
//! ```
//!
//! * `kill=P` — abort the process *instead of* handling a request
//!   (crash mid-request; the reply never happens);
//! * `stall=P` — stop reading input forever (the `SIGSTOP` analogue:
//!   in-flight work and health pongs both cease; only the supervisor's
//!   ping timeout can recover the shard);
//! * `garbage=P` — emit a non-JSON line instead of handling the request;
//! * `partial=P` — write half a reply line, flush, then abort (a torn
//!   write followed by process death);
//! * `drop=P` — silently discard the request (never reply, but keep
//!   ponging: the hardest fault to tell from "just slow");
//! * `kill-op=OP` / `kill-nth=N` — deterministic rules for tests: abort
//!   while handling the `N`-th request whose op is `OP` (any op if
//!   `kill-op` is absent; every matching request if `kill-nth` absent);
//! * `seed=S`, `salt=TEXT` — PRNG seeding; `salt` is hashed into the
//!   seed so a pool can give each (shard, generation) its own stream via
//!   `{shard}`/`{gen}` argv templates without computing seeds itself.
//!
//! `ping`/`status` requests are never chaos-eligible: health probes are
//! disturbed only by whole-process faults (kill/stall), exactly like a
//! real crash or freeze.

use ilpc_testkit::rng::splitmix64;

/// What to do with one incoming request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosVerdict {
    /// Handle the request normally.
    Forward,
    /// Abort the process now (crash mid-request).
    Kill,
    /// Stop reading input forever (freeze; pongs cease).
    Stall,
    /// Emit a non-JSON garbage line instead of a reply.
    Garbage,
    /// Write a torn half-reply, flush, then abort.
    Partial,
    /// Discard the request silently (never reply, keep ponging).
    Drop,
}

/// A seeded chaos schedule for one worker process.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// The spec this plan was parsed from (for logs).
    pub spec: String,
    rng: ilpc_testkit::TestRng,
    kill: f64,
    stall: f64,
    garbage: f64,
    partial: f64,
    drop: f64,
    kill_op: Option<String>,
    kill_nth: Option<u64>,
    eligible_seen: u64,
}

/// FNV-1a over the salt text: cheap, stable, endian-free — folds the
/// pool's `{shard}`/`{gen}` template into the PRNG seed.
fn fnv1a(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl ChaosPlan {
    /// Parse a `key=value,key=value` spec. Unknown keys are errors —
    /// a typo'd chaos campaign must not silently test nothing.
    pub fn parse(spec: &str) -> Result<ChaosPlan, String> {
        let mut seed: u64 = 0;
        let mut salt: Option<String> = None;
        let (mut kill, mut stall, mut garbage, mut partial, mut drop) = (0.0, 0.0, 0.0, 0.0, 0.0);
        let mut kill_op = None;
        let mut kill_nth = None;
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("chaos spec entry {part:?} is not key=value"))?;
            let prob = |v: &str| -> Result<f64, String> {
                v.parse::<f64>()
                    .ok()
                    .filter(|p| (0.0..=1.0).contains(p))
                    .ok_or_else(|| format!("chaos {key}={v:?} must be a probability in [0,1]"))
            };
            match key {
                "seed" => {
                    seed = value
                        .parse()
                        .map_err(|_| format!("chaos seed={value:?} must be a u64"))?
                }
                "salt" => salt = Some(value.to_string()),
                "kill" => kill = prob(value)?,
                "stall" => stall = prob(value)?,
                "garbage" => garbage = prob(value)?,
                "partial" => partial = prob(value)?,
                "drop" => drop = prob(value)?,
                "kill-op" => kill_op = Some(value.to_string()),
                "kill-nth" => {
                    kill_nth = Some(
                        value
                            .parse::<u64>()
                            .ok()
                            .filter(|&n| n >= 1)
                            .ok_or_else(|| format!("chaos kill-nth={value:?} must be >= 1"))?,
                    )
                }
                other => return Err(format!("unknown chaos key {other:?}")),
            }
        }
        if kill + stall + garbage + partial + drop > 1.0 {
            return Err("chaos probabilities sum past 1.0".to_string());
        }
        if let Some(s) = &salt {
            seed ^= fnv1a(s);
        }
        Ok(ChaosPlan {
            spec: spec.to_string(),
            rng: ilpc_testkit::TestRng::seed_from_u64(splitmix64(&mut { seed })),
            kill,
            stall,
            garbage,
            partial,
            drop,
            kill_op,
            kill_nth,
            eligible_seen: 0,
        })
    }

    /// Decide the fate of one request. `op` is the request's `"op"`
    /// field when the line parsed as a request (`None` for unparseable
    /// lines, which are always forwarded — the typed `bad-request` reply
    /// is itself behavior under test).
    pub fn decide(&mut self, op: Option<&str>) -> ChaosVerdict {
        let Some(op) = op else { return ChaosVerdict::Forward };
        if op == "ping" || op == "status" {
            return ChaosVerdict::Forward;
        }
        // Deterministic kill rules first: they don't consume PRNG output,
        // so `kill-nth` schedules are exact regardless of probabilities.
        if self.kill_op.as_deref().is_none_or(|k| k == op) {
            self.eligible_seen += 1;
            match self.kill_nth {
                Some(n) if self.eligible_seen == n => return ChaosVerdict::Kill,
                None if self.kill_op.is_some() => return ChaosVerdict::Kill,
                _ => {}
            }
        }
        let r = self.rng.next_f64();
        let mut edge = self.kill;
        if r < edge {
            return ChaosVerdict::Kill;
        }
        edge += self.stall;
        if r < edge {
            return ChaosVerdict::Stall;
        }
        edge += self.garbage;
        if r < edge {
            return ChaosVerdict::Garbage;
        }
        edge += self.partial;
        if r < edge {
            return ChaosVerdict::Partial;
        }
        edge += self.drop;
        if r < edge {
            return ChaosVerdict::Drop;
        }
        ChaosVerdict::Forward
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_spec_and_rejects_typos() {
        let p = ChaosPlan::parse("seed=7,kill=0.1,stall=0.05,garbage=0.1,partial=0.05,drop=0.1")
            .unwrap();
        assert_eq!(p.kill, 0.1);
        assert_eq!(p.drop, 0.1);
        assert!(ChaosPlan::parse("kil=0.1").is_err(), "typo'd keys must not pass");
        assert!(ChaosPlan::parse("kill=1.5").is_err());
        assert!(ChaosPlan::parse("kill=0.9,stall=0.9").is_err(), "probabilities must fit");
        assert!(ChaosPlan::parse("kill-nth=0").is_err());
    }

    #[test]
    fn kill_nth_is_exact_and_op_filtered() {
        let mut p = ChaosPlan::parse("kill-op=sweep,kill-nth=2").unwrap();
        assert_eq!(p.decide(Some("sweep")), ChaosVerdict::Forward);
        assert_eq!(p.decide(Some("compile")), ChaosVerdict::Forward);
        assert_eq!(p.decide(Some("ping")), ChaosVerdict::Forward);
        assert_eq!(p.decide(Some("sweep")), ChaosVerdict::Kill);
        // Past the nth: no further kills from the deterministic rule.
        assert_eq!(p.decide(Some("sweep")), ChaosVerdict::Forward);

        // kill-op without kill-nth: every matching request dies.
        let mut p = ChaosPlan::parse("kill-op=sweep").unwrap();
        assert_eq!(p.decide(Some("compile")), ChaosVerdict::Forward);
        assert_eq!(p.decide(Some("sweep")), ChaosVerdict::Kill);
        assert_eq!(p.decide(Some("sweep")), ChaosVerdict::Kill);
    }

    #[test]
    fn probability_stream_is_seed_deterministic_and_salted() {
        let run = |spec: &str| -> Vec<ChaosVerdict> {
            let mut p = ChaosPlan::parse(spec).unwrap();
            (0..64).map(|_| p.decide(Some("simulate"))).collect()
        };
        let spec = "seed=42,kill=0.2,garbage=0.2,drop=0.2";
        assert_eq!(run(spec), run(spec), "same seed, same schedule");
        assert_ne!(run(spec), run("seed=43,kill=0.2,garbage=0.2,drop=0.2"));
        assert_ne!(
            run("seed=42,salt=0g1,kill=0.2,garbage=0.2,drop=0.2"),
            run("seed=42,salt=0g2,kill=0.2,garbage=0.2,drop=0.2"),
            "salt must fork the stream"
        );
        let got = run(spec);
        assert!(got.iter().any(|v| *v != ChaosVerdict::Forward), "faults do occur");
        assert!(got.iter().any(|v| *v == ChaosVerdict::Forward), "not everything faults");
    }

    #[test]
    fn health_probes_are_never_eligible() {
        let mut p = ChaosPlan::parse("kill=1.0").unwrap();
        assert_eq!(p.decide(Some("ping")), ChaosVerdict::Forward);
        assert_eq!(p.decide(Some("status")), ChaosVerdict::Forward);
        assert_eq!(p.decide(None), ChaosVerdict::Forward);
        assert_eq!(p.decide(Some("simulate")), ChaosVerdict::Kill);
    }
}
