//! System tests for `ilpc-serve`: the service must answer every input —
//! well-formed, malformed, hostile or overloading — with a typed JSON
//! reply, and must never die or cross-deliver between clients.

use ilpc_serve::{parse, serve_script, serve_tcp, Json, ServeConfig};
use std::io::{BufRead, BufReader, Write};

fn cfg_small() -> ServeConfig {
    ServeConfig { workers: 2, queue: 8, sweep_threads: 4, ..Default::default() }
}

/// Reply lines all parse, and each maps id → (ok, payload).
fn index_replies(lines: &[String]) -> Vec<(Json, bool, Json)> {
    lines
        .iter()
        .map(|l| {
            let v = parse(l).unwrap_or_else(|e| panic!("unparseable reply {l:?}: {e}"));
            let id = v.get("id").cloned().unwrap_or(Json::Null);
            let ok = v.get("ok") == Some(&Json::Bool(true));
            let payload = if ok {
                v.get("result").cloned().unwrap()
            } else {
                v.get("error").cloned().unwrap()
            };
            (id, ok, payload)
        })
        .collect()
}

fn error_kind(payload: &Json) -> String {
    payload.get("kind").and_then(Json::as_str).unwrap_or("<none>").to_string()
}

/// Malformed JSON, malformed requests and unknown names produce typed
/// error replies — and the server keeps serving afterwards.
#[test]
fn malformed_input_yields_typed_errors_not_a_crash() {
    let script = [
        "not json at all",
        r#"{"id":1,"op":"warp"}"#,
        r#"{"id":2,"op":"compile","workload":"no-such-loop","level":"Lev2","width":8}"#,
        r#"{"id":3,"op":"compile","workload":"add","level":"Lev2","width":8,"scale":-1}"#,
        r#"{"id":4,"op":"sweep","scale":0.02,"widths":[8]}"#,
        r#"{"id":5,"op":"compile","workload":"add","level":"Conv","width":1,"scale":0.02}"#,
    ]
    .join("\n");
    let replies = index_replies(&serve_script(&cfg_small(), &script));
    assert_eq!(replies.len(), 6);

    let by_id = |want: &Json| {
        replies
            .iter()
            .find(|(id, _, _)| id == want)
            .unwrap_or_else(|| panic!("no reply for id {want:?}"))
    };
    let (_, ok, e) = by_id(&Json::Null);
    assert!(!ok);
    assert_eq!(error_kind(e), "bad-request");
    assert_eq!(error_kind(&by_id(&Json::Num(1.0)).2), "bad-request");
    assert_eq!(error_kind(&by_id(&Json::Num(2.0)).2), "bad-config");
    assert_eq!(error_kind(&by_id(&Json::Num(3.0)).2), "bad-config");
    // Sweep axes are validated by the grid's typed validation (missing
    // base width 1).
    let (_, ok, e) = by_id(&Json::Num(4.0));
    assert!(!ok);
    assert_eq!(error_kind(e), "bad-config");
    assert!(e.get("detail").and_then(Json::as_str).unwrap().contains("base width"));
    // The request *after* all the garbage still succeeds: nothing died.
    let (_, ok, r) = by_id(&Json::Num(5.0));
    assert!(ok, "{r:?}");
    assert_eq!(r.get("achieved").and_then(Json::as_str), Some("Conv"));
}

/// An oversized request line is rejected with a typed error and bounded
/// memory; the next line is served normally.
#[test]
fn oversized_line_is_rejected_and_stream_continues() {
    let huge = format!("{{\"id\":9,\"junk\":\"{}\"}}", "x".repeat(2 * 1024 * 1024));
    let script = format!(
        "{huge}\n{}",
        r#"{"id":10,"op":"compile","workload":"add","level":"Conv","width":1,"scale":0.02}"#
    );
    let replies = index_replies(&serve_script(&cfg_small(), &script));
    assert_eq!(replies.len(), 2);
    let (id, ok, e) = &replies.iter().find(|(_, ok, _)| !ok).unwrap();
    assert_eq!(*id, Json::Null);
    assert!(!ok);
    assert_eq!(error_kind(e), "bad-request");
    assert!(e.get("detail").and_then(Json::as_str).unwrap().contains("exceeds"));
    let (_, ok, _) = replies.iter().find(|(id, _, _)| *id == Json::Num(10.0)).unwrap();
    assert!(ok, "the line after the oversized one must still be served");
}

/// Filling the bounded queue yields `overloaded` backpressure replies —
/// admission is rejected, nothing buffers without bound, nothing dies.
#[test]
fn queue_overflow_produces_backpressure_replies() {
    // One worker, one queue slot. The first job is a slow sweep that
    // occupies the worker, so the flood behind it must overflow.
    let cfg = ServeConfig { workers: 1, queue: 1, sweep_threads: 2, ..Default::default() };
    let slow =
        r#"{"id":"slow","op":"sweep","scale":0.02,"levels":["Conv","Lev2"],"widths":[1,8]}"#;
    let fast =
        r#"{"id":"fastN","op":"compile","workload":"add","level":"Conv","width":1,"scale":0.02}"#;
    let mut script = vec![slow.to_string()];
    for k in 0..4 {
        script.push(fast.replace("fastN", &format!("fast{k}")));
    }
    let replies = index_replies(&serve_script(&cfg, &script.join("\n")));
    assert_eq!(replies.len(), 5, "every request gets exactly one reply");

    let (_, ok, r) = replies.iter().find(|(id, _, _)| *id == Json::str("slow")).unwrap();
    assert!(ok, "the admitted sweep must complete: {r:?}");
    let overloaded: Vec<_> = replies
        .iter()
        .filter(|(_, ok, e)| !ok && error_kind(e) == "overloaded")
        .collect();
    let served = replies.iter().filter(|(_, ok, _)| *ok).count();
    // The worker is busy with the sweep, so at most one follower fits the
    // queue slot; at least three of four must be rejected with the typed
    // backpressure error.
    assert!(overloaded.len() >= 3, "got {} overloaded replies", overloaded.len());
    assert_eq!(served + overloaded.len(), 5);
    for (_, _, e) in &overloaded {
        assert!(e.get("detail").and_then(Json::as_str).unwrap().contains("queue full"));
    }
}

/// A sabotaged point inside a served sweep degrades that request only:
/// typed per-point errors in the reply, coverage visibly partial, and the
/// server healthy for the next request.
#[test]
fn sabotaged_sweep_degrades_per_request() {
    let script = [
        r#"{"id":"s","op":"sweep","scale":0.02,"levels":["Conv","Lev2"],"widths":[1,8],
            "mems":[{"kind":"perfect"},{"kind":"cache","sets":8}],
            "sabotage":{"workload":"dotprod","level":"Lev2","width":8,"mode":"panic"}}"#
            .replace('\n', " "),
        r#"{"id":"after","op":"simulate","workload":"dotprod","level":"Lev2","width":8,"scale":0.02}"#
            .to_string(),
    ]
    .join("\n");
    let replies = index_replies(&serve_script(&cfg_small(), &script));
    assert_eq!(replies.len(), 2);

    let (_, ok, r) = replies.iter().find(|(id, _, _)| *id == Json::str("s")).unwrap();
    assert!(ok, "a sweep with a broken point still replies ok: {r:?}");
    let scenarios = r.get("scenarios").and_then(Json::as_arr).unwrap();
    assert_eq!(scenarios.len(), 2);
    for s in scenarios {
        let errors = s.get("errors").and_then(Json::as_arr).unwrap();
        assert_eq!(errors.len(), 1, "{s:?}");
        assert_eq!(errors[0].get("workload").and_then(Json::as_str), Some("dotprod"));
        assert_eq!(errors[0].get("kind").and_then(Json::as_str), Some("panic"));
        assert_eq!(s.get("completed").and_then(Json::as_u64), Some(40 * 2 * 2 - 1));
        // Aggregate coverage carries the hole: 39/40 at (Lev2, 8).
        let mean = s.get("mean_speedup").unwrap();
        assert_eq!(mean.get("covered").and_then(Json::as_u64), Some(39));
        assert_eq!(mean.get("requested").and_then(Json::as_u64), Some(40));
    }
    // The very point that was sabotaged in the sweep works fine in the
    // next request — the degradation was strictly per-request.
    let (_, ok, r) = replies.iter().find(|(id, _, _)| *id == Json::str("after")).unwrap();
    assert!(ok, "{r:?}");
    assert!(r.get("cycles").and_then(Json::as_u64).unwrap() > 0);
}

/// Batch: one line in, one line out, per-request envelopes inside —
/// including a failing request that doesn't poison its siblings.
#[test]
fn batch_requests_reply_in_order_with_isolated_failures() {
    let script = r#"{"id":"b","op":"batch","requests":[
        {"id":"b1","op":"compile","workload":"add","level":"Conv","width":1,"scale":0.02},
        {"id":"b2","op":"compile","workload":"no-such","level":"Conv","width":1},
        {"id":"b3","op":"simulate","workload":"add","level":"Lev2","width":8,"scale":0.02}]}"#
        .replace('\n', " ");
    let replies = index_replies(&serve_script(&cfg_small(), &script));
    assert_eq!(replies.len(), 1);
    let (id, ok, r) = &replies[0];
    assert_eq!(*id, Json::str("b"));
    assert!(ok);
    let inner = r.get("replies").and_then(Json::as_arr).unwrap();
    assert_eq!(inner.len(), 3);
    assert_eq!(inner[0].get("id"), Some(&Json::str("b1")));
    assert_eq!(inner[0].get("ok"), Some(&Json::Bool(true)));
    assert_eq!(inner[1].get("id"), Some(&Json::str("b2")));
    assert_eq!(inner[1].get("ok"), Some(&Json::Bool(false)));
    assert_eq!(
        inner[1].get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
        Some("bad-config")
    );
    assert_eq!(inner[2].get("id"), Some(&Json::str("b3")));
    assert_eq!(inner[2].get("ok"), Some(&Json::Bool(true)));
}

/// `compile` with `"lint": true` attaches the static audit to the reply;
/// a healthy point is free of error-severity findings, and without the
/// flag the reply shape is unchanged.
#[test]
fn compile_with_lint_attaches_clean_audit() {
    let script = [
        r#"{"id":"l","op":"compile","workload":"dotprod","level":"Lev4","width":8,"scale":0.02,"lint":true}"#,
        r#"{"id":"n","op":"compile","workload":"dotprod","level":"Lev4","width":8,"scale":0.02}"#,
    ]
    .join("\n");
    let replies = index_replies(&serve_script(&cfg_small(), &script));
    assert_eq!(replies.len(), 2);

    let (_, ok, r) = replies.iter().find(|(id, _, _)| *id == Json::str("l")).unwrap();
    assert!(ok, "{r:?}");
    assert_eq!(r.get("achieved").and_then(Json::as_str), Some("Lev4"));
    let lint = r.get("lint").expect("lint audit attached");
    assert_eq!(lint.get("errors").and_then(Json::as_u64), Some(0), "{lint:?}");
    let diags = lint.get("diags").and_then(Json::as_arr).unwrap();
    let warnings = lint.get("warnings").and_then(Json::as_u64).unwrap();
    let notes = lint.get("notes").and_then(Json::as_u64).unwrap();
    assert_eq!(diags.len() as u64, warnings + notes);
    for d in diags {
        assert!(d.get("lint").and_then(Json::as_str).is_some(), "{d:?}");
        assert!(d.get("severity").and_then(Json::as_str).is_some(), "{d:?}");
    }

    let (_, ok, r) = replies.iter().find(|(id, _, _)| *id == Json::str("n")).unwrap();
    assert!(ok, "{r:?}");
    assert!(r.get("lint").is_none(), "lint must be opt-in: {r:?}");
}

/// The reply `id` is the request `id` echoed **verbatim** — numbers,
/// strings, even structured values, and absent ids come back as `null`.
/// The pool router relies on this contract for correlation: it rewrites
/// client ids to internal ones and must get exactly those bytes back.
#[test]
fn reply_id_is_echoed_verbatim_for_every_json_shape() {
    let script = [
        r#"{"id":7,"op":"ping"}"#,
        r#"{"id":7.5,"op":"ping"}"#,
        r#"{"id":"seven","op":"ping"}"#,
        r#"{"id":[7,"x"],"op":"ping"}"#,
        r#"{"id":{"client":"a","seq":7},"op":"ping"}"#,
        r#"{"id":null,"op":"ping"}"#,
        r#"{"op":"ping"}"#,
        r#"{"id":{"client":"a","seq":8},"op":"warp"}"#,
    ]
    .join("\n");
    let replies = serve_script(&cfg_small(), &script);
    assert_eq!(replies.len(), 8);
    let ids: Vec<Json> =
        replies.iter().map(|l| parse(l).unwrap().get("id").cloned().unwrap()).collect();
    assert!(ids.contains(&Json::Num(7.0)));
    assert!(ids.contains(&Json::Num(7.5)));
    assert!(ids.contains(&Json::str("seven")));
    assert!(ids.contains(&Json::Arr(vec![Json::Num(7.0), Json::str("x")])));
    // Structured ids are echoed on ok replies AND on typed errors.
    let structured = |seq: f64| {
        ids.iter()
            .filter(|id| {
                id.get("client").and_then(Json::as_str) == Some("a")
                    && id.get("seq").and_then(Json::as_f64) == Some(seq)
            })
            .count()
    };
    assert_eq!(structured(7.0), 1);
    assert_eq!(structured(8.0), 1, "error replies echo structured ids too");
    assert_eq!(ids.iter().filter(|id| **id == Json::Null).count(), 2);
}

/// `ping` and `status` answer immediately even when the queue is
/// saturated — health probes must not bounce off a full queue.
#[test]
fn ping_and_status_bypass_a_full_queue() {
    let cfg = ServeConfig { workers: 1, queue: 1, sweep_threads: 2, ..Default::default() };
    let slow =
        r#"{"id":"slow","op":"sweep","scale":0.02,"levels":["Conv","Lev2"],"widths":[1,8]}"#;
    let script = [
        slow,
        slow, // fills the single queue slot (or rejects — either way busy)
        r#"{"id":"hb","op":"ping"}"#,
        r#"{"id":"st","op":"status"}"#,
    ]
    .join("\n");
    let replies = index_replies(&serve_script(&cfg, &script));
    assert_eq!(replies.len(), 4);
    let (_, ok, r) = replies.iter().find(|(id, _, _)| *id == Json::str("hb")).unwrap();
    assert!(ok, "{r:?}");
    assert_eq!(r.get("pong"), Some(&Json::Bool(true)));
    let (_, ok, r) = replies.iter().find(|(id, _, _)| *id == Json::str("st")).unwrap();
    assert!(ok, "{r:?}");
    assert_eq!(r.get("role").and_then(Json::as_str), Some("single"));
    assert_eq!(r.get("queue_cap").and_then(Json::as_u64), Some(1));
    assert!(r.get("queue_depth").and_then(Json::as_u64).is_some());
}

/// A TCP client that dies mid-line (unterminated final fragment, then
/// reset) is a clean end of session: the fragment is not answered, the
/// connection closes without error, and the server serves the next
/// client untouched.
#[test]
fn tcp_mid_line_disconnect_closes_cleanly() {
    let cfg = ServeConfig { workers: 1, queue: 4, sweep_threads: 1, ..Default::default() };
    let (addr, accept_loop) = serve_tcp(&cfg, "127.0.0.1:0", Some(2)).unwrap();

    // Client 1: one good request, then half a request and a hard reset.
    {
        let stream = std::net::TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        writeln!(writer, r#"{{"id":"good","op":"ping"}}"#).unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let v = parse(line.trim()).unwrap();
        assert_eq!(v.get("id"), Some(&Json::str("good")));
        // Unterminated fragment, then the socket just goes away.
        writer.write_all(br#"{"id":"torn","op":"comp"#).unwrap();
        writer.flush().unwrap();
        drop(writer);
        drop(stream);
    }

    // Client 2 is served normally after the messy disconnect; it also
    // proves the torn fragment produced no stray reply (fresh channel
    // per connection — nothing rides over).
    let stream = std::net::TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writeln!(
        writer,
        r#"{{"id":"after","op":"simulate","workload":"add","level":"Lev2","width":8,"scale":0.02}}"#
    )
    .unwrap();
    writer.shutdown(std::net::Shutdown::Write).unwrap();
    let mut lines = Vec::new();
    let mut line = String::new();
    while reader.read_line(&mut line).unwrap() > 0 {
        lines.push(line.trim().to_string());
        line.clear();
    }
    assert_eq!(lines.len(), 1, "exactly one reply, no torn-request error: {lines:?}");
    let v = parse(&lines[0]).unwrap();
    assert_eq!(v.get("id"), Some(&Json::str("after")));
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
    accept_loop.join().unwrap();
}

/// Two concurrent TCP clients with interleaved traffic: each receives
/// exactly the replies to its own requests.
#[test]
fn concurrent_tcp_clients_are_isolated() {
    let cfg = ServeConfig { workers: 2, queue: 16, sweep_threads: 2, ..Default::default() };
    let (addr, accept_loop) = serve_tcp(&cfg, "127.0.0.1:0", Some(2)).unwrap();

    let client = |tag: &'static str, n: usize| {
        std::thread::spawn(move || -> Vec<(Json, bool, Json)> {
            let stream = std::net::TcpStream::connect(addr).unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            for k in 0..n {
                writeln!(
                    writer,
                    r#"{{"id":"{tag}-{k}","op":"simulate","workload":"add","level":"Lev2","width":8,"scale":0.02}}"#
                )
                .unwrap();
            }
            writer.shutdown(std::net::Shutdown::Write).unwrap();
            let mut lines = Vec::new();
            let mut line = String::new();
            while reader.read_line(&mut line).unwrap() > 0 {
                lines.push(line.trim().to_string());
                line.clear();
                if lines.len() == n {
                    break;
                }
            }
            index_replies(&lines)
        })
    };

    let a = client("alpha", 5);
    let b = client("beta", 5);
    let got_a = a.join().unwrap();
    let got_b = b.join().unwrap();

    for (tag, got) in [("alpha", got_a), ("beta", got_b)] {
        assert_eq!(got.len(), 5, "{tag}");
        for (k, (id, ok, r)) in got.iter().enumerate() {
            // Replies may arrive out of submission order (ids pair them),
            // but every id must belong to THIS client.
            let id = id.as_str().unwrap();
            assert!(id.starts_with(tag), "{tag} received foreign reply {id}");
            assert!(ok, "{tag} request {k}: {r:?}");
            assert!(r.get("cycles").and_then(Json::as_u64).unwrap() > 0);
        }
        // All five distinct ids came back.
        let mut ids: Vec<&str> = got.iter().map(|(id, _, _)| id.as_str().unwrap()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 5, "{tag}");
    }
    accept_loop.join().unwrap();
}
