//! Superblock formation.
//!
//! Superblock scheduling (Hwu et al.) schedules a *trace with a single entry
//! and multiple side exits* as one unit. After lowering and CFG
//! simplification, a loop body with conditionals has the shape
//!
//! ```text
//! H : [... br c0 → E0 ; <then0>]      ; triangle guard + update
//! E0: [... br c1 → E1 ; <then1>]
//! E1: [latch: iv update ; backedge]
//! ```
//!
//! where each rejoin block `E_p` is reached only from its predecessor (by
//! fall-through *and* by the guard branch). Formation proceeds bottom-up:
//! each rejoin block is merged into its predecessor, and the guard branch is
//! retargeted to a **tail duplicate** — a clone of the merged continuation
//! placed after the function body, ending with the back edge and an explicit
//! jump to the loop exit. The result is one superblock covering the entire
//! likely path, with side exits to the (cold) duplicates; this removes the
//! "side entrance" bookkeeping exactly as the superblock paper prescribes.

use ilpc_analysis::LoopForest;
use ilpc_ir::{BlockId, Function, Inst, Module, Opcode};

/// Configuration for superblock formation.
#[derive(Debug, Clone, Copy)]
pub struct SuperblockConfig {
    /// Cap on total instructions added by tail duplication per function.
    pub max_duplicated_insts: usize,
}

impl Default for SuperblockConfig {
    fn default() -> SuperblockConfig {
        SuperblockConfig { max_duplicated_insts: 4096 }
    }
}

/// Count of blocks merged during formation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SuperblockReport {
    pub merges: usize,
    pub duplicated_insts: usize,
}

/// Merge `x` (layout successor of `p`, reached only from `p`) into `p`.
///
/// Trace selection is probability-aware:
///
/// * If the guard `p → x` is *unlikely* taken (the fall-through path is
///   hot), the guard becomes a side exit to a **tail duplicate** of `x`.
/// * If the guard is *likely* taken (e.g. a rarely-true update skipped by
///   a 90 %-taken branch), the guard is **inverted**: the hot path falls
///   straight into `x`'s instructions, and the rarely-executed tail of `p`
///   moves to a cold block that re-executes a duplicate of `x` before
///   rejoining. This keeps the frequent path inside one superblock instead
///   of bouncing through duplicates every iteration.
fn merge_with_tail_dup(
    f: &mut Function,
    p: BlockId,
    x: BlockId,
    rep: &mut SuperblockReport,
) {
    // The duplicate: clone of x's instructions plus an explicit jump to x's
    // fall-through continuation (if x does not already end in a transfer).
    let mut x_dup: Vec<Inst> = f.block(x).insts.clone();
    if !f.block(x).ends_in_transfer() {
        let cont = f
            .fallthrough(x)
            .expect("mergeable block must have a continuation");
        x_dup.push(Inst::jump(cont));
    }

    // Likely-taken single conditional guard → invert the trace.
    let guards: Vec<usize> = f
        .block(p)
        .insts
        .iter()
        .enumerate()
        .filter(|(_, i)| i.target == Some(x))
        .map(|(k, _)| k)
        .collect();
    let invertible = guards.len() == 1 && {
        let g = &f.block(p).insts[guards[0]];
        matches!(g.op, Opcode::Br(_)) && g.prob > 0.5
    };

    if invertible {
        let gi = guards[0];
        // Cold block: the skipped tail of `p`, then the duplicate of `x`.
        let mut cold_insts: Vec<Inst> = f.block_mut(p).insts.split_off(gi + 1);
        cold_insts.extend(x_dup.iter().cloned());
        rep.duplicated_insts += cold_insts.len();
        let cold = f.add_block_detached(&format!("cold.{}", f.block(x).label));
        f.block_mut(cold).insts = cold_insts;
        f.layout.push(cold);
        // Invert the guard: fall through into `x`'s content when taken
        // before, jump to the cold path otherwise.
        let guard = f.block_mut(p).insts.last_mut().expect("guard");
        if let Opcode::Br(c) = guard.op {
            guard.op = Opcode::Br(c.negated());
            guard.prob = 1.0 - guard.prob;
            guard.target = Some(cold);
        }
        let moved = std::mem::take(&mut f.block_mut(x).insts);
        f.block_mut(p).insts.extend(moved);
        let pos = f.layout_pos(x).expect("x in layout");
        f.layout.remove(pos);
        rep.merges += 1;
        return;
    }

    rep.duplicated_insts += x_dup.len();
    let dup = f.add_block_detached(&format!("tail.{}", f.block(x).label));
    f.block_mut(dup).insts = x_dup;
    // Place the duplicate at the end of the layout (cold code).
    f.layout.push(dup);

    // Retarget branches p → x to the duplicate, then merge x into p.
    for inst in &mut f.block_mut(p).insts {
        if inst.target == Some(x) {
            inst.target = Some(dup);
        }
    }
    let moved = std::mem::take(&mut f.block_mut(x).insts);
    f.block_mut(p).insts.extend(moved);
    let pos = f.layout_pos(x).expect("x in layout");
    f.layout.remove(pos);
    rep.merges += 1;
}

/// Form superblocks in every loop of `m`.
pub fn form_superblocks(m: &mut Module, cfg: &SuperblockConfig) -> SuperblockReport {
    let mut rep = SuperblockReport::default();
    loop {
        let f = &mut m.func;
        let forest = LoopForest::compute(f);
        let preds = f.preds();

        // Find the latest mergeable (p, x) pair in layout order, so the
        // formation runs bottom-up and tail duplicates nest correctly.
        let mut pick: Option<(BlockId, BlockId)> = None;
        for lp in &forest.loops {
            for &x in &lp.blocks {
                if x == lp.header {
                    continue;
                }
                let Some(xpos) = f.layout_pos(x) else { continue };
                if xpos == 0 {
                    continue;
                }
                let p = f.layout[xpos - 1];
                if !lp.contains(p) {
                    continue;
                }
                // x reached only from p (fall-through and/or p's branches).
                let xpreds = &preds[x.0 as usize];
                if !(xpreds.len() == 1 && xpreds[0] == p) {
                    continue;
                }
                if f.block(p).ends_in_transfer() {
                    continue;
                }
                // The continuation after x must be out-of-loop or x must end
                // in a transfer, so the tail duplicate's continuation jump
                // leaves the duplicated region.
                let ok_cont = f.block(x).ends_in_transfer()
                    || f.fallthrough(x).is_some_and(|c| !lp.contains(c));
                if !ok_cont {
                    continue;
                }
                // No branch from *outside* p targets x (preds check covers
                // blocks; double-check instructions for self-loops).
                let targeted_elsewhere = f.insts().any(|(b, i)| {
                    b != p && i.target == Some(x)
                });
                if targeted_elsewhere {
                    continue;
                }
                if pick.is_none_or(|(_, px)| {
                    f.layout_pos(px).unwrap_or(0) < xpos
                }) {
                    pick = Some((p, x));
                }
            }
        }

        let Some((p, x)) = pick else { break };
        if rep.duplicated_insts + f.block(x).insts.len() + 1
            > cfg.max_duplicated_insts
        {
            break;
        }
        merge_with_tail_dup(f, p, x, &mut rep);
    }
    debug_assert!(
        ilpc_ir::verify::verify_module(m).is_ok(),
        "superblock formation broke the IR: {:?}",
        ilpc_ir::verify::verify_module(m)
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilpc_ir::inst::MemLoc;
    use ilpc_ir::{Cond, Operand, RegClass};

    /// 2×-unrolled guarded-update loop (maxval shape).
    fn guarded_loop() -> (Module, BlockId, BlockId) {
        let mut m = Module::new("t");
        let a = m.symtab.declare("A", 8, RegClass::Flt);
        let out = m.symtab.declare("out", 1, RegClass::Flt);
        let f = &mut m.func;
        let i = f.new_reg(RegClass::Int);
        let s = f.new_reg(RegClass::Flt);
        let x0 = f.new_reg(RegClass::Flt);
        let x1 = f.new_reg(RegClass::Flt);
        let entry = f.add_block("entry");
        let h = f.add_block("h");
        let e0 = f.add_block("e0");
        let e1 = f.add_block("e1");
        let exit = f.add_block("exit");
        f.block_mut(entry).insts.extend([
            Inst::mov(i, Operand::ImmI(0)),
            Inst::mov(s, Operand::ImmF(-1e300)),
        ]);
        f.block_mut(h).insts.extend([
            Inst::load(x0, Operand::Sym(a), i.into(), MemLoc::affine(a, 1, 0)),
            Inst::br(Cond::Le, x0.into(), s.into(), e0),
            Inst::mov(s, x0.into()),
        ]);
        f.block_mut(e0).insts.extend([
            Inst::load(x1, Operand::Sym(a), i.into(), MemLoc::affine(a, 1, 1)),
            Inst::br(Cond::Le, x1.into(), s.into(), e1),
            Inst::mov(s, x1.into()),
        ]);
        f.block_mut(e1).insts.extend([
            Inst::alu(Opcode::Add, i, i.into(), Operand::ImmI(2)),
            Inst::br(Cond::Lt, i.into(), Operand::ImmI(8), h),
        ]);
        f.block_mut(exit).insts.extend([
            Inst::store(Operand::Sym(out), Operand::ImmI(0), s.into(), MemLoc::affine(out, 0, 0)),
            Inst::halt(),
        ]);
        (m, h, exit)
    }

    #[test]
    fn forms_single_superblock_with_tail_duplicates() {
        let (mut m, h, exit) = guarded_loop();
        let rep = form_superblocks(&mut m, &SuperblockConfig::default());
        assert_eq!(rep.merges, 2);
        let f = &m.func;
        // The hot path is one block: loads, guards, movs, latch, backedge.
        let insts = &f.block(h).insts;
        assert_eq!(insts.len(), 8, "{insts:#?}");
        assert!(insts.last().unwrap().op.is_branch());
        // Side exits now target tail duplicates, not the old rejoins.
        let side_targets: Vec<BlockId> = insts
            .iter()
            .filter(|i| i.op.is_branch() && i.target != Some(h))
            .map(|i| i.target.unwrap())
            .collect();
        assert_eq!(side_targets.len(), 2);
        for t in &side_targets {
            assert!(f.block(*t).label.starts_with("tail."));
        }
        // Duplicates end with a control transfer (backedge + jump exit).
        for t in side_targets {
            let d = f.block(t);
            assert!(d.ends_in_transfer() || d.insts.last().unwrap().op.is_branch());
        }
        // The hot block falls through to the exit.
        assert_eq!(f.fallthrough(h), Some(exit));
    }

    #[test]
    fn duplication_budget_respected() {
        let (mut m, _, _) = guarded_loop();
        let rep = form_superblocks(
            &mut m,
            &SuperblockConfig { max_duplicated_insts: 3 },
        );
        // First merge would duplicate 2-3 instructions; budget limits total.
        assert!(rep.duplicated_insts <= 3);
    }
}
