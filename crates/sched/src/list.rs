//! List scheduling of (super)blocks.
//!
//! Standard cycle-driven list scheduling over the dependence DAG of
//! `ilpc-analysis::deps`, with critical-path priority. The scheduler models
//! the same machine constraints the simulator enforces (issue width, one
//! branch slot per cycle, RAW/WAW/memory delays), so the issue times it
//! predicts are the times the execution-driven simulation realizes on the
//! fall-through path.
//!
//! Speculation policy: an instruction may be hoisted above an earlier
//! branch (or sunk below it) iff it has no side effects, is non-excepting
//! under the machine (loads), and its destination is not live into the
//! branch target.

use ilpc_analysis::{build_block_deps, DepGraph, Liveness};
use ilpc_ir::{BlockId, Inst, Module};
use ilpc_machine::{fu_kind, FuKind, Machine};

/// Result of scheduling one block: the new instruction order plus the issue
/// time of each instruction (parallel arrays).
#[derive(Debug, Clone)]
pub struct BlockSchedule {
    pub insts: Vec<Inst>,
    pub times: Vec<u32>,
    /// For each scheduled position, the index of that instruction in the
    /// original program order (used by the schedule validator).
    pub perm: Vec<usize>,
}

impl BlockSchedule {
    /// Schedule length in cycles (last issue + 1).
    pub fn length(&self) -> u32 {
        self.times.last().map_or(0, |t| t + 1)
    }

    /// Block completion time: `max(issue + latency)` over all instructions.
    /// This is the paper's per-body "cycles / N iterations" metric for the
    /// worked examples of §2 (e.g. Figure 3b's 8 cycles are the issue-5
    /// accumulate plus its 3-cycle FP latency).
    pub fn completion(&self, machine: &Machine) -> u32 {
        self.insts
            .iter()
            .zip(&self.times)
            .map(|(i, t)| t + machine.latency.of(i))
            .max()
            .unwrap_or(0)
    }
}

/// Schedule the instructions of one block for `machine`.
pub fn schedule_insts(
    insts: &[Inst],
    machine: &Machine,
    live_in_target: &dyn Fn(BlockId) -> ilpc_analysis::RegSet,
) -> BlockSchedule {
    let lat = |i: &Inst| machine.latency.of(i);
    let can_cross = |branch: &Inst, later: &Inst| -> bool {
        if !later.can_speculate(machine.nonexcepting_loads) {
            return false;
        }
        match (later.def(), branch.target) {
            (Some(d), Some(t)) => !live_in_target(t).contains(d),
            _ => true,
        }
    };
    let g: DepGraph = build_block_deps(insts, &lat, &can_cross);
    let height = g.critical_path(|i| lat(&insts[i]));
    // Guard against degenerate machines built by hand (pub fields): a
    // 0-wide machine would never issue anything and loop forever.
    let issue_width = machine.issue_width.max(1);
    let branch_slots = machine.branch_slots.max(1);

    let n = insts.len();
    let mut time = vec![0u32; n];
    let mut done = vec![false; n];
    let mut preds_left: Vec<usize> = (0..n).map(|i| g.preds[i].len()).collect();
    let mut earliest = vec![0u32; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);

    let mut cycle: u32 = 0;
    let mut slots_used: u32 = 0;
    let mut branches_used: u32 = 0;
    // Per-functional-unit slot accounting (restricted machine models).
    let mut fu_used = [0u32; 5]; // IntAlu, IntMulDiv, Fp, Mem, Vec
    let fu_index = |k: FuKind| match k {
        FuKind::IntAlu => Some(0),
        FuKind::IntMulDiv => Some(1),
        FuKind::Fp => Some(2),
        FuKind::Mem => Some(3),
        FuKind::Vec => Some(4),
        FuKind::Branch => None,
    };
    let mut scheduled = 0usize;

    while scheduled < n {
        // Ready nodes: all predecessors scheduled and earliest <= cycle.
        let mut best: Option<usize> = None;
        for i in 0..n {
            if done[i] || preds_left[i] != 0 || earliest[i] > cycle {
                continue;
            }
            if insts[i].op.is_branch() && branches_used >= branch_slots {
                continue;
            }
            let kind = fu_kind(&insts[i]);
            if let Some(fi) = fu_index(kind) {
                if fu_used[fi] >= machine.fu.of(kind) {
                    continue;
                }
            }
            match best {
                None => best = Some(i),
                Some(b) => {
                    // Critical path first; ties broken by program order
                    // (keeps memory order edges' same-cycle sequencing).
                    if height[i] > height[b] {
                        best = Some(i);
                    }
                }
            }
        }
        match best {
            Some(i) if slots_used < issue_width => {
                done[i] = true;
                time[i] = cycle;
                order.push(i);
                scheduled += 1;
                slots_used += 1;
                if insts[i].op.is_branch() {
                    branches_used += 1;
                }
                if let Some(fi) = fu_index(fu_kind(&insts[i])) {
                    fu_used[fi] += 1;
                }
                for &e in &g.succs[i] {
                    let d = &g.edges[e];
                    preds_left[d.to] -= 1;
                    earliest[d.to] = earliest[d.to].max(cycle + d.min_delay);
                }
            }
            _ => {
                // Advance to the next cycle with something to do.
                let next = (0..n)
                    .filter(|&i| !done[i] && preds_left[i] == 0)
                    .map(|i| earliest[i])
                    .min()
                    .unwrap_or(cycle + 1)
                    .max(cycle + 1);
                cycle = next;
                slots_used = 0;
                branches_used = 0;
                fu_used = [0; 5];
            }
        }
    }

    BlockSchedule {
        insts: order.iter().map(|&i| insts[i].clone()).collect(),
        times: order.iter().map(|&i| time[i]).collect(),
        perm: order,
    }
}

/// Schedule every block of `m` in place; returns per-block schedules
/// (indexed by `BlockId.0`).
pub fn schedule_module(m: &mut Module, machine: &Machine) -> Vec<Option<BlockSchedule>> {
    let lv = Liveness::compute(&m.func);
    let mut out: Vec<Option<BlockSchedule>> = vec![None; m.func.num_blocks()];
    let blocks: Vec<BlockId> = m.func.layout_order().to_vec();
    for b in blocks {
        let insts = m.func.block(b).insts.clone();
        let sched = schedule_insts(&insts, machine, &|t: BlockId| {
            lv.live_in(t).clone()
        });
        m.func.block_mut(b).insts = sched.insts.clone();
        out[b.0 as usize] = Some(sched);
    }
    debug_assert!(
        ilpc_ir::verify::verify_module(m).is_ok(),
        "scheduling broke the IR: {:?}",
        ilpc_ir::verify::verify_module(m)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilpc_ir::inst::MemLoc;
    use ilpc_ir::{Cond, Opcode, Operand, Reg, SymId};

    fn live_none(_: BlockId) -> ilpc_analysis::RegSet {
        ilpc_analysis::RegSet::new()
    }

    /// The paper's Figure 1b body on an unlimited machine: 7 cycles.
    #[test]
    fn fig1b_is_seven_cycles() {
        let a = SymId(0);
        let b = SymId(1);
        let c = SymId(2);
        let r1 = Reg::int(1);
        let r5 = Reg::int(5);
        let r2 = Reg::flt(2);
        let r3 = Reg::flt(3);
        let r4 = Reg::flt(4);
        let body = vec![
            Inst::load(r2, Operand::Sym(a), r1.into(), MemLoc::affine(a, 1, 0)),
            Inst::load(r3, Operand::Sym(b), r1.into(), MemLoc::affine(b, 1, 0)),
            Inst::alu(Opcode::FAdd, r4, r2.into(), r3.into()),
            Inst::store(Operand::Sym(c), r1.into(), r4.into(), MemLoc::affine(c, 1, 0)),
            Inst::alu(Opcode::Add, r1, r1.into(), Operand::ImmI(1)),
            Inst::br(Cond::Lt, r1.into(), r5.into(), BlockId(0)),
        ];
        let s = schedule_insts(&body, &Machine::unlimited(), &live_none);
        // Issue times: loads 0, fadd 2, store 5, add 5, blt 6 → length 7.
        assert_eq!(s.length(), 7, "times: {:?}", s.times);
    }

    /// Issue-width limits force serialization.
    #[test]
    fn issue_width_one_serializes() {
        let r: Vec<Reg> = (0..4).map(Reg::int).collect();
        let body: Vec<Inst> = (0..4)
            .map(|i| Inst::mov(r[i], Operand::ImmI(i as i64)))
            .chain([Inst::halt()])
            .collect();
        let s = schedule_insts(&body, &Machine::issue(1), &live_none);
        assert_eq!(s.times, vec![0, 1, 2, 3, 4]);
        let s = schedule_insts(&body, &Machine::issue(4), &live_none);
        assert_eq!(s.times[..4], [0, 0, 0, 0]);
    }

    /// Memory-port limits serialize independent loads.
    #[test]
    fn fu_limits_restrict_memory_ports() {
        let a = SymId(0);
        let body: Vec<Inst> = (0..4)
            .map(|k| {
                Inst::load(
                    Reg::flt(k),
                    Operand::Sym(a),
                    Operand::ImmI(k as i64),
                    MemLoc::affine(a, 0, k as i64),
                )
            })
            .chain([Inst::halt()])
            .collect();
        let s = schedule_insts(&body, &Machine::issue(8), &live_none);
        assert_eq!(s.times[..4], [0, 0, 0, 0]);
        let m = Machine::issue(8).with_mem_ports(2);
        let s = schedule_insts(&body, &m, &live_none);
        assert_eq!(s.times[..4], [0, 0, 1, 1]);
        let m = Machine::issue(8).with_mem_ports(1);
        let s = schedule_insts(&body, &m, &live_none);
        assert_eq!(s.times[..4], [0, 1, 2, 3]);
    }

    /// Only one branch can issue per cycle.
    #[test]
    fn branch_slot_limit() {
        let body = vec![
            Inst::br(Cond::Lt, Operand::ImmI(0), Operand::ImmI(1), BlockId(0)),
            Inst::br(Cond::Lt, Operand::ImmI(2), Operand::ImmI(1), BlockId(0)),
        ];
        let s = schedule_insts(&body, &Machine::issue(8), &live_none);
        assert_eq!(s.times, vec![0, 1]);
    }

    /// Speculation: loads may hoist above a branch when their target is not
    /// live at the branch target; stores never do.
    #[test]
    fn load_hoists_store_does_not() {
        let a = SymId(0);
        let v = Reg::flt(0);
        let body = vec![
            Inst::br(Cond::Lt, Operand::ImmI(0), Operand::ImmI(1), BlockId(0)),
            Inst::load(v, Operand::Sym(a), Operand::ImmI(0), MemLoc::affine(a, 0, 0)),
            Inst::store(Operand::Sym(a), Operand::ImmI(1), v.into(), MemLoc::affine(a, 0, 1)),
        ];
        let s = schedule_insts(&body, &Machine::issue(8), &live_none);
        // The load issues with (or before) the branch; order places it
        // by priority. The store waits for the load (flow) but also must
        // not precede the branch in linear order.
        let load_pos = s.insts.iter().position(|i| i.op == Opcode::Load).unwrap();
        let br_pos = s.insts.iter().position(|i| i.op.is_branch()).unwrap();
        let store_pos = s.insts.iter().position(|i| i.op == Opcode::Store).unwrap();
        assert!(load_pos < br_pos, "load speculated above branch");
        assert!(store_pos > br_pos, "store pinned after branch");
    }

    /// Same test with the destination live at the branch target: no hoist.
    #[test]
    fn no_speculation_when_dest_live_at_target() {
        let a = SymId(0);
        let v = Reg::flt(0);
        let body = vec![
            Inst::br(Cond::Lt, Operand::ImmI(0), Operand::ImmI(1), BlockId(0)),
            Inst::load(v, Operand::Sym(a), Operand::ImmI(0), MemLoc::affine(a, 0, 0)),
        ];
        let live = |_: BlockId| -> ilpc_analysis::RegSet {
            [v].into_iter().collect()
        };
        let s = schedule_insts(&body, &Machine::issue(8), &live);
        let load_pos = s.insts.iter().position(|i| i.op == Opcode::Load).unwrap();
        let br_pos = s.insts.iter().position(|i| i.op.is_branch()).unwrap();
        assert!(load_pos > br_pos);
    }

    /// Figure 1d: unrolled + renamed body schedules to 8 cycles.
    #[test]
    fn fig1d_is_eight_cycles() {
        let a = SymId(0);
        let bs = SymId(1);
        let c = SymId(2);
        // Registers: induction chain r11,r12,r13; per-body floats.
        let r11 = Reg::int(11);
        let r12 = Reg::int(12);
        let r13 = Reg::int(13);
        let r5 = Reg::int(5);
        let f = |i: u32| Reg::flt(i);
        let body = vec![
            Inst::load(f(21), Operand::Sym(a), r11.into(), MemLoc::affine(a, 1, 0)),
            Inst::load(f(31), Operand::Sym(bs), r11.into(), MemLoc::affine(bs, 1, 0)),
            Inst::alu(Opcode::FAdd, f(41), f(21).into(), f(31).into()),
            Inst::store(Operand::Sym(c), r11.into(), f(41).into(), MemLoc::affine(c, 1, 0)),
            Inst::alu(Opcode::Add, r12, r11.into(), Operand::ImmI(1)),
            Inst::load(f(22), Operand::Sym(a), r12.into(), MemLoc::affine(a, 1, 1)),
            Inst::load(f(32), Operand::Sym(bs), r12.into(), MemLoc::affine(bs, 1, 1)),
            Inst::alu(Opcode::FAdd, f(42), f(22).into(), f(32).into()),
            Inst::store(Operand::Sym(c), r12.into(), f(42).into(), MemLoc::affine(c, 1, 1)),
            Inst::alu(Opcode::Add, r13, r12.into(), Operand::ImmI(1)),
            Inst::load(f(23), Operand::Sym(a), r13.into(), MemLoc::affine(a, 1, 2)),
            Inst::load(f(33), Operand::Sym(bs), r13.into(), MemLoc::affine(bs, 1, 2)),
            Inst::alu(Opcode::FAdd, f(43), f(23).into(), f(33).into()),
            Inst::store(Operand::Sym(c), r13.into(), f(43).into(), MemLoc::affine(c, 1, 2)),
            Inst::alu(Opcode::Add, r11, r13.into(), Operand::ImmI(1)),
            Inst::br(Cond::Lt, r11.into(), r5.into(), BlockId(0)),
        ];
        let s = schedule_insts(&body, &Machine::unlimited(), &live_none);
        // Paper: 8 cycles / 3 iterations.
        assert_eq!(s.length(), 8, "times: {:?}", s.times);
    }
}
