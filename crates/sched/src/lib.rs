//! # ilpc-sched — superblock formation and list scheduling
//!
//! The code generation strategy of the paper's compiler: superblock
//! scheduling (trace selection with tail duplication) followed by
//! dependence-DAG list scheduling with critical-path priority, modeling the
//! target's in-order multi-issue constraints.

pub mod list;
pub mod modulo;
pub mod validate;
pub mod superblock;

pub use list::{schedule_insts, schedule_module, BlockSchedule};
pub use superblock::{form_superblocks, SuperblockConfig, SuperblockReport};
pub use modulo::{modulo_schedule, pipelinable_loops, ModuloSchedule};
pub use validate::{validate_schedule, ScheduleViolation};
