//! Iterative modulo scheduling (software pipelining).
//!
//! The paper's related work discusses software pipelining (Rau's Cydra 5,
//! Lam, Aiken/Nicolau) as the other way to overlap loop iterations, and
//! notes that those methods "also benefit from dependence elimination but
//! the effect of the transformations on these methods is not evaluated in
//! this study." This module evaluates exactly that question analytically:
//! it computes, for a single-block inner loop, the **initiation interval**
//! (II) a modulo scheduler can achieve — before and after the ILP
//! transformations — so the steady-state throughput of software pipelining
//! (II cycles/iteration) can be compared against superblock scheduling of
//! the unrolled loop (schedule length / unroll factor).
//!
//! Implementation: classic iterative modulo scheduling.
//!
//! 1. `MII = max(ResMII, RecMII)`: resource-constrained II from issue
//!    width, branch slot and FU limits; recurrence-constrained II from the
//!    maximum over dependence cycles of `ceil(delay(cycle) /
//!    distance(cycle))`, found by binary search over II with a
//!    longest-path feasibility check (Bellman-Ford style).
//! 2. For `II = MII, MII+1, ...`: height-priority list placement into a
//!    modulo reservation table, with the standard eviction-free bounded
//!    retry (restart at the next II on failure).

use ilpc_analysis::{build_block_deps, DepKind, Liveness, Loop, LoopForest};
use ilpc_ir::{Inst, Module, Opcode, Reg};
use ilpc_machine::{fu_kind, FuKind, Machine};

/// A cross- or intra-iteration dependence edge for modulo scheduling:
/// `t(to) ≥ t(from) + delay − II·distance`.
#[derive(Debug, Clone, Copy)]
pub struct ModuloDep {
    pub from: usize,
    pub to: usize,
    pub delay: u32,
    /// Iteration distance (0 = same iteration).
    pub distance: u32,
}

/// Result of modulo-scheduling one loop body.
#[derive(Debug, Clone)]
pub struct ModuloSchedule {
    /// Achieved initiation interval (cycles per iteration, steady state).
    pub ii: u32,
    /// Lower bound from resources.
    pub res_mii: u32,
    /// Lower bound from recurrences.
    pub rec_mii: u32,
    /// Issue slot of each instruction (absolute; stage = t / II).
    pub times: Vec<u32>,
}

/// Build intra- + inter-iteration dependences for a single-block loop body.
///
/// Intra-iteration edges come from the ordinary dependence DAG. Carried
/// register edges connect the definition of each loop-carried register to
/// its uses in the *next* iteration (distance 1). Carried memory edges are
/// derived from the affine tags: a store `A[c·i+o1]` and an access
/// `A[c·i+o2]` conflict at distance `(o1−o2)/c` when that is a positive
/// integer; opaque pairs get a conservative distance-1 edge.
pub fn build_modulo_deps(
    insts: &[Inst],
    machine: &Machine,
    carried: &[Reg],
) -> Vec<ModuloDep> {
    let lat = |i: &Inst| machine.latency.of(i);
    let g = build_block_deps(insts, &lat, &|_, _| true);
    // Register anti/output dependences are excluded: modulo variable
    // expansion (or the Cydra 5's rotating register files) renames
    // per-stage values, which is precisely how software pipelining escapes
    // the WAR/WAW constraints that bound the unrolled-loop scheduler.
    let mut deps: Vec<ModuloDep> = g
        .edges
        .iter()
        .filter(|e| !matches!(e.kind, DepKind::Anti | DepKind::Output))
        .map(|e| ModuloDep {
            from: e.from,
            to: e.to,
            delay: e.min_delay,
            distance: 0,
        })
        .collect();

    // Carried register dependences: last def -> first use, next iteration.
    for &r in carried {
        let Some(def) = insts.iter().rposition(|i| i.def() == Some(r)) else {
            continue;
        };
        for (ui, inst) in insts.iter().enumerate() {
            if inst.uses().any(|u| u == r) {
                deps.push(ModuloDep {
                    from: def,
                    to: ui,
                    delay: lat(&insts[def]),
                    distance: 1,
                });
            }
        }
    }

    // Carried memory dependences.
    for (si, st) in insts.iter().enumerate() {
        if st.op != Opcode::Store {
            continue;
        }
        let sm = st.mem.expect("store tag");
        for (li, other) in insts.iter().enumerate() {
            if li == si || !other.op.is_mem() {
                continue;
            }
            let om = other.mem.expect("mem tag");
            if sm.sym != om.sym {
                continue;
            }
            let distance = match (sm.lin, om.lin, sm.outer == om.outer) {
                (Some((c1, o1)), Some((c2, o2)), true) if c1 == c2 && c1 != 0 => {
                    let d = o1 - o2;
                    if d > 0 && d % c1 == 0 {
                        Some((d / c1) as u32)
                    } else {
                        None // never conflicts across iterations
                    }
                }
                (Some((c1, o1)), Some((c2, o2)), true) if c1 == c2 && c1 == 0 => {
                    // Same invariant location every iteration.
                    (o1 == o2).then_some(1)
                }
                _ => Some(1), // opaque / mismatched: conservative
            };
            if let Some(d) = distance.filter(|&d| d >= 1) {
                let (from, to) = (si, li);
                deps.push(ModuloDep {
                    from,
                    to,
                    delay: 1, // store visible next cycle
                    distance: d,
                });
            }
        }
    }
    deps
}

/// Resource-constrained minimum II.
pub fn res_mii(insts: &[Inst], machine: &Machine) -> u32 {
    let n = insts.len() as u32;
    let mut mii = n.div_ceil(machine.issue_width.max(1));
    let branches = insts.iter().filter(|i| i.op.is_branch()).count() as u32;
    mii = mii.max(branches.div_ceil(machine.branch_slots.max(1)));
    for (kind, limit) in [
        (FuKind::IntAlu, machine.fu.int_alu),
        (FuKind::IntMulDiv, machine.fu.int_mul_div),
        (FuKind::Fp, machine.fu.fp),
        (FuKind::Mem, machine.fu.mem),
        (FuKind::Vec, machine.fu.vec),
    ] {
        if limit != u32::MAX {
            let count = insts.iter().filter(|i| fu_kind(i) == kind).count() as u32;
            mii = mii.max(count.div_ceil(limit.max(1)));
        }
    }
    mii.max(1)
}

/// Recurrence-constrained minimum II: the smallest II for which the
/// constraint graph `t(to) − t(from) ≥ delay − II·distance` has no positive
/// cycle. Checked with Bellman-Ford over longest paths.
pub fn rec_mii(n: usize, deps: &[ModuloDep]) -> u32 {
    let feasible = |ii: u32| -> bool {
        let mut dist = vec![0i64; n];
        for _ in 0..=n {
            let mut changed = false;
            for d in deps {
                let bound = dist[d.from] + d.delay as i64 - (ii as i64) * d.distance as i64;
                if bound > dist[d.to] {
                    dist[d.to] = bound;
                    changed = true;
                }
            }
            if !changed {
                return true;
            }
        }
        false
    };
    let mut lo = 1u32;
    let mut hi = 1u32;
    while !feasible(hi) {
        hi *= 2;
        if hi > 1 << 16 {
            return hi; // pathological; caller will fail gracefully
        }
    }
    while lo < hi {
        let mid = (lo + hi) / 2;
        if feasible(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

fn fu_index(k: FuKind) -> Option<usize> {
    match k {
        FuKind::IntAlu => Some(0),
        FuKind::IntMulDiv => Some(1),
        FuKind::Fp => Some(2),
        FuKind::Mem => Some(3),
        FuKind::Vec => Some(4),
        FuKind::Branch => None,
    }
}

/// Attempt a modulo schedule at a fixed `ii`; returns issue times or None.
fn try_schedule(
    insts: &[Inst],
    deps: &[ModuloDep],
    machine: &Machine,
    ii: u32,
    budget: usize,
) -> Option<Vec<u32>> {
    let n = insts.len();
    // Height priority: longest delay-path to any sink (distances relaxed).
    let mut height = vec![0i64; n];
    for _ in 0..n {
        for d in deps {
            if d.distance == 0 {
                height[d.from] =
                    height[d.from].max(d.delay as i64 + height[d.to]);
            }
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(height[i]));

    // Modulo reservation table: per slot (mod ii): total, branch, fu[5].
    let mut table = vec![(0u32, 0u32, [0u32; 5]); ii as usize];
    let mut time: Vec<Option<u32>> = vec![None; n];
    let mut attempts = 0usize;

    // Iterative placement: schedule in priority order; on conflict bump the
    // start cycle; give up after `budget` placements.
    let mut pending = order.clone();
    while let Some(i) = pending.first().copied() {
        attempts += 1;
        if attempts > budget {
            return None;
        }
        // Earliest start from placed predecessors.
        let mut est = 0i64;
        for d in deps.iter().filter(|d| d.to == i) {
            if let Some(tf) = time[d.from] {
                est = est.max(
                    tf as i64 + d.delay as i64 - (ii as i64) * d.distance as i64,
                );
            }
        }
        let mut t = est.max(0) as u32;
        let max_t = est.max(0) as u32 + ii; // one full wrap of the table
        let placed = loop {
            if t >= max_t {
                break false;
            }
            let slot = (t % ii) as usize;
            let (total, br, fu) = table[slot];
            let kind = fu_kind(&insts[i]);
            let fu_ok = match fu_index(kind) {
                Some(fi) => fu[fi] < machine.fu.of(kind),
                None => true,
            };
            let br_ok = !insts[i].op.is_branch() || br < machine.branch_slots;
            if total < machine.issue_width && br_ok && fu_ok {
                break true;
            }
            t += 1;
        };
        if !placed {
            return None; // restart at a larger II (caller)
        }
        // Check placed successors are still satisfied; if not, fail (the
        // bounded-retry variant: no eviction, let the caller raise II).
        for d in deps.iter().filter(|d| d.from == i) {
            if let Some(tt) = time[d.to] {
                if (tt as i64)
                    < t as i64 + d.delay as i64 - (ii as i64) * d.distance as i64
                {
                    return None;
                }
            }
        }
        let slot = (t % ii) as usize;
        table[slot].0 += 1;
        if insts[i].op.is_branch() {
            table[slot].1 += 1;
        }
        if let Some(fi) = fu_index(fu_kind(&insts[i])) {
            table[slot].2[fi] += 1;
        }
        time[i] = Some(t);
        pending.remove(0);
    }
    Some(time.into_iter().map(Option::unwrap).collect())
}

/// Modulo-schedule a single-block loop body.
pub fn modulo_schedule(
    insts: &[Inst],
    machine: &Machine,
    carried: &[Reg],
) -> Option<ModuloSchedule> {
    if insts.is_empty() {
        return None;
    }
    let deps = build_modulo_deps(insts, machine, carried);
    let res = res_mii(insts, machine);
    let rec = rec_mii(insts.len(), &deps);
    let mii = res.max(rec);
    for ii in mii..mii + 64 {
        if let Some(times) = try_schedule(insts, &deps, machine, ii, 4096) {
            return Some(ModuloSchedule { ii, res_mii: res, rec_mii: rec, times });
        }
    }
    None
}

/// Find the innermost single-block loops of `m` eligible for software
/// pipelining and return `(body instructions minus the back edge, carried
/// registers, trip-weight)` for each.
pub fn pipelinable_loops(m: &Module) -> Vec<(Vec<Inst>, Vec<Reg>)> {
    let forest = LoopForest::compute(&m.func);
    let lv = Liveness::compute(&m.func);
    let mut out = Vec::new();
    for lp in forest.inner_loops() {
        let single: Vec<&Loop> = vec![lp];
        let _ = single;
        if lp.blocks.len() != 1 {
            continue;
        }
        let b = lp.blocks[0];
        let insts = m.func.block(b).insts.clone();
        // Exclude loops with internal control flow (side exits other than
        // the final back edge).
        let branches = insts.iter().filter(|i| i.op.is_branch()).count();
        if branches != 1 || !insts.last().is_some_and(|i| i.op.is_branch()) {
            continue;
        }
        let carried: Vec<Reg> = lv
            .live_in(b)
            .iter()
            .filter(|r| insts.iter().any(|i| i.def() == Some(*r)))
            .collect();
        out.push((insts, carried));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilpc_ir::inst::MemLoc;
    use ilpc_ir::{Cond, Operand, SymId};

    /// A dot-product body: the carried fadd forces RecMII = 3 (FP latency).
    #[test]
    fn recurrence_bounds_ii() {
        let a = SymId(0);
        let b = SymId(1);
        let acc = Reg::flt(0);
        let i = Reg::int(0);
        let insts = vec![
            Inst::load(Reg::flt(1), Operand::Sym(a), i.into(), MemLoc::affine(a, 1, 0)),
            Inst::load(Reg::flt(2), Operand::Sym(b), i.into(), MemLoc::affine(b, 1, 0)),
            Inst::alu(Opcode::FMul, Reg::flt(3), Reg::flt(1).into(), Reg::flt(2).into()),
            Inst::alu(Opcode::FAdd, acc, acc.into(), Reg::flt(3).into()),
            Inst::alu(Opcode::Add, i, i.into(), Operand::ImmI(1)),
            Inst::br(Cond::Lt, i.into(), Operand::ImmI(64), ilpc_ir::BlockId(0)),
        ];
        let m = Machine::issue(8);
        let s = modulo_schedule(&insts, &m, &[acc, i]).expect("schedulable");
        assert_eq!(s.rec_mii, 3, "fadd self-recurrence: {s:?}");
        assert_eq!(s.ii, 3);
        // Superblock scheduling of ONE iteration takes ~10 cycles; software
        // pipelining sustains one iteration every 3.
    }

    /// A DOALL body pipelines down to the resource bound.
    #[test]
    fn doall_reaches_resource_bound() {
        let a = SymId(0);
        let c = SymId(2);
        let i = Reg::int(0);
        let insts = vec![
            Inst::load(Reg::flt(1), Operand::Sym(a), i.into(), MemLoc::affine(a, 1, 0)),
            Inst::alu(Opcode::FAdd, Reg::flt(2), Reg::flt(1).into(), Operand::ImmF(1.0)),
            Inst::store(Operand::Sym(c), i.into(), Reg::flt(2).into(), MemLoc::affine(c, 1, 0)),
            Inst::alu(Opcode::Add, i, i.into(), Operand::ImmI(1)),
            Inst::br(Cond::Lt, i.into(), Operand::ImmI(64), ilpc_ir::BlockId(0)),
        ];
        let m = Machine::issue(8);
        let s = modulo_schedule(&insts, &m, &[i]).expect("schedulable");
        // Int add self-recurrence (latency 1) and branch slot give II = 1;
        // 5 instructions over width 8 also allow II = 1.
        assert_eq!(s.ii, 1, "{s:?}");

        // Narrower machine: resources dominate.
        let m2 = Machine::issue(2);
        let s2 = modulo_schedule(&insts, &m2, &[i]).expect("schedulable");
        assert_eq!(s2.res_mii, 3); // ceil(5/2) = 3
        assert!(s2.ii >= 3);
    }

    /// Loop-carried memory recurrences bound the II.
    #[test]
    fn memory_recurrence_detected() {
        let x = SymId(0);
        let i = Reg::int(0);
        // X[i+1] = X[i] * 0.5  (distance-1 store->load recurrence)
        let insts = vec![
            Inst::load(Reg::flt(1), Operand::Sym(x), i.into(), MemLoc::affine(x, 1, 0)),
            Inst::alu(Opcode::FMul, Reg::flt(2), Reg::flt(1).into(), Operand::ImmF(0.5)),
            Inst::store(Operand::Sym(x), i.into(), Reg::flt(2).into(), MemLoc::affine(x, 1, 1)),
            Inst::alu(Opcode::Add, i, i.into(), Operand::ImmI(1)),
            Inst::br(Cond::Lt, i.into(), Operand::ImmI(64), ilpc_ir::BlockId(0)),
        ];
        let m = Machine::issue(8);
        let s = modulo_schedule(&insts, &m, &[i]).expect("schedulable");
        // load(2) + fmul(3) + store->load(1) = 6 per iteration around the
        // memory cycle.
        assert!(s.rec_mii >= 6, "{s:?}");
    }

    /// The modulo schedule respects the reservation table at every slot.
    #[test]
    fn reservation_table_never_overflows() {
        let a = SymId(0);
        let i = Reg::int(0);
        let mut insts: Vec<Inst> = (0..6)
            .map(|k| {
                Inst::load(
                    Reg::flt(k + 1),
                    Operand::Sym(a),
                    i.into(),
                    MemLoc::affine(a, 1, k as i64),
                )
            })
            .collect();
        insts.push(Inst::alu(Opcode::Add, i, i.into(), Operand::ImmI(1)));
        insts.push(Inst::br(Cond::Lt, i.into(), Operand::ImmI(64), ilpc_ir::BlockId(0)));
        let m = Machine::issue(8).with_mem_ports(2);
        let s = modulo_schedule(&insts, &m, &[i]).expect("schedulable");
        assert!(s.ii >= 3, "6 loads over 2 ports: {s:?}");
        // Count per modulo slot.
        let mut mem_per_slot = vec![0u32; s.ii as usize];
        for (inst, &t) in insts.iter().zip(&s.times) {
            if inst.op.is_mem() {
                mem_per_slot[(t % s.ii) as usize] += 1;
            }
        }
        assert!(mem_per_slot.iter().all(|&c| c <= 2), "{mem_per_slot:?}");
    }
}
